#ifndef CHRONOQUEL_TYPES_TIMEPOINT_H_
#define CHRONOQUEL_TYPES_TIMEPOINT_H_

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace tdb {

/// Output granularity for formatting a TimePoint (paper Section 4:
/// "resolutions ranging from a second to a year are selectable for output").
enum class TimeResolution {
  kSecond,
  kMinute,
  kHour,
  kDay,
  kMonth,
  kYear,
};

/// A point in time with one-second resolution, stored as a signed 32-bit
/// count of seconds since 1970-01-01 00:00:00 UTC.  This mirrors the
/// prototype's representation ("a 32 bit integer with a resolution of one
/// second") and is a distinct type from Int4 in the value system.
class TimePoint {
 public:
  constexpr TimePoint() : secs_(0) {}
  constexpr explicit TimePoint(int32_t secs) : secs_(secs) {}

  /// The distinguished value "forever", used as the open upper bound of the
  /// transaction-stop / valid-to attributes of current versions.
  static constexpr TimePoint Forever() { return TimePoint(INT32_MAX); }
  /// The earliest representable instant ("beginning of time").
  static constexpr TimePoint Beginning() { return TimePoint(INT32_MIN); }

  /// Builds a TimePoint from a civil (proleptic Gregorian, UTC) date-time.
  /// Returns an error if the fields are out of range or unrepresentable.
  static Result<TimePoint> FromCivil(int year, int month, int day,
                                     int hour = 0, int minute = 0,
                                     int second = 0);

  /// Parses the input formats accepted by the prototype:
  ///   "forever"                 | "now" is NOT accepted here (it is resolved
  ///   "1981"                    |  by the query evaluator, which knows the
  ///   "1/1/80"                  |  current logical time)
  ///   "08:00 1/1/80"
  ///   "08:00:30 1/1/1980"
  /// Two-digit years are interpreted as 19xx.
  static Result<TimePoint> Parse(std::string_view text);

  constexpr int32_t seconds() const { return secs_; }
  constexpr bool is_forever() const { return secs_ == INT32_MAX; }

  /// Formats at the requested resolution, e.g. kSecond ->
  /// "08:00:30 1/1/1980", kDay -> "1/1/1980", kYear -> "1980".
  /// Forever / Beginning format as "forever" / "beginning".
  std::string ToString(TimeResolution res = TimeResolution::kSecond) const;

  /// This + n seconds (saturating at Forever / Beginning).
  TimePoint AddSeconds(int64_t n) const;

  friend constexpr auto operator<=>(TimePoint a, TimePoint b) {
    return a.secs_ <=> b.secs_;
  }
  friend constexpr bool operator==(TimePoint a, TimePoint b) {
    return a.secs_ == b.secs_;
  }

 private:
  int32_t secs_;
};

/// Breaks a TimePoint into civil fields (UTC).
struct CivilTime {
  int year;
  int month;   // 1..12
  int day;     // 1..31
  int hour;    // 0..23
  int minute;  // 0..59
  int second;  // 0..59
};

/// Converts seconds-since-epoch into civil fields.
CivilTime ToCivil(TimePoint tp);

/// Days since 1970-01-01 for a civil date (Howard Hinnant's algorithm).
int64_t DaysFromCivil(int year, int month, int day);

}  // namespace tdb

#endif  // CHRONOQUEL_TYPES_TIMEPOINT_H_
