#include "types/value.h"

#include "util/stringx.h"

namespace tdb {

const char* TypeIdName(TypeId t) {
  switch (t) {
    case TypeId::kInt1:
      return "i1";
    case TypeId::kInt2:
      return "i2";
    case TypeId::kInt4:
      return "i4";
    case TypeId::kFloat8:
      return "f8";
    case TypeId::kChar:
      return "c";
    case TypeId::kTime:
      return "time";
  }
  return "?";
}

bool Value::TryCompare(const Value& a, const Value& b, int* out) {
  if (a.is_numeric() && b.is_numeric()) {
    if (a.type() == TypeId::kFloat8 || b.type() == TypeId::kFloat8) {
      double x = a.AsDouble();
      double y = b.AsDouble();
      *out = x < y ? -1 : (x > y ? 1 : 0);
      return true;
    }
    int64_t x = a.AsInt();
    int64_t y = b.AsInt();
    *out = x < y ? -1 : (x > y ? 1 : 0);
    return true;
  }
  if (a.type() == TypeId::kChar && b.type() == TypeId::kChar) {
    // Fixed-width char attributes are blank padded on disk; comparisons
    // ignore trailing blanks so "abc" == "abc   ".
    std::string_view x = TrimView(a.AsString());
    std::string_view y = TrimView(b.AsString());
    int c = x.compare(y);
    *out = c < 0 ? -1 : (c > 0 ? 1 : 0);
    return true;
  }
  if (a.type() == TypeId::kTime && b.type() == TypeId::kTime) {
    TimePoint x = a.AsTime();
    TimePoint y = b.AsTime();
    *out = x < y ? -1 : (x > y ? 1 : 0);
    return true;
  }
  return false;
}

Result<int> Value::Compare(const Value& a, const Value& b) {
  int c = 0;
  if (TryCompare(a, b, &c)) return c;
  return Status::Invalid(StrPrintf("cannot compare %s with %s",
                                   TypeIdName(a.type()), TypeIdName(b.type())));
}

bool Value::Equals(const Value& other) const {
  int c = 0;
  return TryCompare(*this, other, &c) && c == 0;
}

std::string Value::ToString(TimeResolution res) const {
  switch (type_) {
    case TypeId::kInt1:
    case TypeId::kInt2:
    case TypeId::kInt4:
      return StrPrintf("%lld", static_cast<long long>(AsInt()));
    case TypeId::kFloat8:
      return StrPrintf("%g", AsDouble());
    case TypeId::kChar:
      return std::string(TrimView(AsString()));
    case TypeId::kTime:
      return AsTime().ToString(res);
  }
  return "";
}

uint64_t Value::Hash() const {
  auto mix = [](uint64_t z) {
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  };
  switch (type_) {
    case TypeId::kInt1:
    case TypeId::kInt2:
    case TypeId::kInt4:
      return mix(static_cast<uint64_t>(AsInt()));
    case TypeId::kFloat8:
      return mix(static_cast<uint64_t>(AsDouble() * 1e6));
    case TypeId::kTime:
      return mix(static_cast<uint64_t>(
          static_cast<uint32_t>(AsTime().seconds())));
    case TypeId::kChar: {
      // FNV-1a over the trimmed payload, then mixed.
      std::string_view s = TrimView(AsString());
      uint64_t h = 1469598103934665603ULL;
      for (char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ULL;
      }
      return mix(h);
    }
  }
  return 0;
}

}  // namespace tdb
