#ifndef CHRONOQUEL_TYPES_VALUE_H_
#define CHRONOQUEL_TYPES_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "types/timepoint.h"
#include "util/status.h"

namespace tdb {

/// Attribute types supported by the engine; the Quel surface names are
/// i1, i2, i4, f8, c<N>, and (new in TQuel) the distinct temporal type.
enum class TypeId : uint8_t {
  kInt1,
  kInt2,
  kInt4,
  kFloat8,
  kChar,  // fixed width, blank padded, width carried by the Attribute
  kTime,  // 32-bit seconds, the paper's temporal attribute representation
};

/// "i4", "c96", ... (for kChar the width must be appended by the caller).
const char* TypeIdName(TypeId t);

/// A runtime value of one of the supported attribute types.  Values are
/// small and freely copyable; Char payloads are stored un-padded.
class Value {
 public:
  /// Default-constructed value is Int4 zero.
  Value() : type_(TypeId::kInt4), rep_(int64_t{0}) {}

  static Value Int1(int64_t v) { return Value(TypeId::kInt1, v); }
  static Value Int2(int64_t v) { return Value(TypeId::kInt2, v); }
  static Value Int4(int64_t v) { return Value(TypeId::kInt4, v); }
  static Value Float8(double v) { return Value(TypeId::kFloat8, v); }
  static Value Char(std::string v) {
    return Value(TypeId::kChar, std::move(v));
  }
  static Value Time(TimePoint tp) { return Value(TypeId::kTime, tp); }

  TypeId type() const { return type_; }
  bool is_integer() const {
    return type_ == TypeId::kInt1 || type_ == TypeId::kInt2 ||
           type_ == TypeId::kInt4;
  }
  bool is_numeric() const { return is_integer() || type_ == TypeId::kFloat8; }

  /// Accessors require the matching type.
  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  double AsDouble() const {
    return type_ == TypeId::kFloat8 ? std::get<double>(rep_)
                                    : static_cast<double>(AsInt());
  }
  const std::string& AsString() const { return std::get<std::string>(rep_); }
  TimePoint AsTime() const { return std::get<TimePoint>(rep_); }

  /// Three-way comparison of two values of compatible types (numeric with
  /// numeric, char with char, time with time).  Returns an error otherwise.
  static Result<int> Compare(const Value& a, const Value& b);

  /// Non-allocating fast path for the per-tuple hot loops: writes the
  /// three-way comparison into `*out` and returns true when the types are
  /// comparable; returns false (leaving `*out` untouched) otherwise, in
  /// which case callers fall back to Compare() for the error Status.
  static bool TryCompare(const Value& a, const Value& b, int* out);

  /// Equality via Compare; values of incompatible types are never equal.
  bool Equals(const Value& other) const;

  /// Human-readable rendering; times use the given resolution.
  std::string ToString(TimeResolution res = TimeResolution::kSecond) const;

  /// Stable 64-bit hash used by the hash access method and hash indexes.
  uint64_t Hash() const;

 private:
  Value(TypeId t, int64_t v) : type_(t), rep_(v) {}
  Value(TypeId t, double v) : type_(t), rep_(v) {}
  Value(TypeId t, std::string v) : type_(t), rep_(std::move(v)) {}
  Value(TypeId t, TimePoint v) : type_(t), rep_(v) {}

  TypeId type_;
  std::variant<int64_t, double, std::string, TimePoint> rep_;
};

}  // namespace tdb

#endif  // CHRONOQUEL_TYPES_VALUE_H_
