#include "types/timepoint.h"

#include <cstdlib>

#include "util/stringx.h"

namespace tdb {

namespace {

constexpr int kDaysInMonth[12] = {31, 28, 31, 30, 31, 30,
                                  31, 31, 30, 31, 30, 31};

bool IsLeap(int y) { return (y % 4 == 0 && y % 100 != 0) || y % 400 == 0; }

int DaysInMonth(int year, int month) {
  if (month == 2 && IsLeap(year)) return 29;
  return kDaysInMonth[month - 1];
}

// Parses "h:m" or "h:m:s" into seconds-of-day; returns false on bad input.
bool ParseTimeOfDay(std::string_view text, int64_t* out) {
  std::vector<std::string> parts = Split(text, ':');
  if (parts.size() != 2 && parts.size() != 3) return false;
  int64_t h = 0;
  int64_t m = 0;
  int64_t s = 0;
  if (!ParseInt64(parts[0], &h) || !ParseInt64(parts[1], &m)) return false;
  if (parts.size() == 3 && !ParseInt64(parts[2], &s)) return false;
  if (h < 0 || h > 23 || m < 0 || m > 59 || s < 0 || s > 59) return false;
  *out = h * 3600 + m * 60 + s;
  return true;
}

// Parses "m/d/yy" or "m/d/yyyy"; two-digit years map to 19xx.
bool ParseDate(std::string_view text, int* year, int* month, int* day) {
  std::vector<std::string> parts = Split(text, '/');
  if (parts.size() != 3) return false;
  int64_t m = 0;
  int64_t d = 0;
  int64_t y = 0;
  if (!ParseInt64(parts[0], &m) || !ParseInt64(parts[1], &d) ||
      !ParseInt64(parts[2], &y)) {
    return false;
  }
  if (y >= 0 && y < 100) y += 1900;
  if (m < 1 || m > 12) return false;
  if (y < 1902 || y > 2037) return false;  // representable range for 32 bits
  if (d < 1 || d > DaysInMonth(static_cast<int>(y), static_cast<int>(m))) {
    return false;
  }
  *year = static_cast<int>(y);
  *month = static_cast<int>(m);
  *day = static_cast<int>(d);
  return true;
}

}  // namespace

int64_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);            // [0, 399]
  const unsigned doy = (153u * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;  // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;           // [0, 146096]
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

namespace {

void CivilFromDays(int64_t z, int* y_out, int* m_out, int* d_out) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);  // [0, 146096]
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;  // [0, 399]
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);  // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                       // [0, 11]
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;               // [1, 31]
  const unsigned m = mp + (mp < 10 ? 3 : -9);                    // [1, 12]
  *y_out = static_cast<int>(y + (m <= 2));
  *m_out = static_cast<int>(m);
  *d_out = static_cast<int>(d);
}

}  // namespace

Result<TimePoint> TimePoint::FromCivil(int year, int month, int day, int hour,
                                       int minute, int second) {
  if (month < 1 || month > 12 || day < 1 ||
      day > DaysInMonth(year, month) || hour < 0 || hour > 23 || minute < 0 ||
      minute > 59 || second < 0 || second > 59) {
    return Status::Invalid(StrPrintf("bad civil time %d-%d-%d %d:%d:%d", year,
                                     month, day, hour, minute, second));
  }
  int64_t days = DaysFromCivil(year, month, day);
  int64_t secs = days * 86400 + hour * 3600 + minute * 60 + second;
  if (secs < INT32_MIN || secs >= INT32_MAX) {
    return Status::OutOfRange(
        StrPrintf("time %d-%d-%d not representable in 32 bits", year, month,
                  day));
  }
  return TimePoint(static_cast<int32_t>(secs));
}

Result<TimePoint> TimePoint::Parse(std::string_view raw) {
  std::string_view text = TrimView(raw);
  if (text.empty()) return Status::ParseError("empty time literal");
  if (EqualsIgnoreCase(text, "forever")) return Forever();
  if (EqualsIgnoreCase(text, "beginning")) return Beginning();

  // Split an optional leading time-of-day from the date part.
  std::string_view time_part;
  std::string_view date_part = text;
  size_t space = text.find(' ');
  if (space != std::string_view::npos) {
    time_part = TrimView(text.substr(0, space));
    date_part = TrimView(text.substr(space + 1));
  }

  int64_t tod = 0;
  if (!time_part.empty() && !ParseTimeOfDay(time_part, &tod)) {
    return Status::ParseError("bad time of day in '" + std::string(raw) + "'");
  }

  // "1981" — a bare year denotes Jan 1 of that year.
  if (date_part.find('/') == std::string_view::npos) {
    int64_t y = 0;
    if (!ParseInt64(date_part, &y) || y < 1902 || y > 2037) {
      return Status::ParseError("bad time literal '" + std::string(raw) + "'");
    }
    auto tp = FromCivil(static_cast<int>(y), 1, 1);
    if (!tp.ok()) return tp.status();
    return tp->AddSeconds(tod);
  }

  int year = 0;
  int month = 0;
  int day = 0;
  if (!ParseDate(date_part, &year, &month, &day)) {
    return Status::ParseError("bad date in '" + std::string(raw) + "'");
  }
  auto tp = FromCivil(year, month, day);
  if (!tp.ok()) return tp.status();
  return tp->AddSeconds(tod);
}

CivilTime ToCivil(TimePoint tp) {
  int64_t secs = tp.seconds();
  int64_t days = secs / 86400;
  int64_t sod = secs % 86400;
  if (sod < 0) {
    sod += 86400;
    days -= 1;
  }
  CivilTime c;
  CivilFromDays(days, &c.year, &c.month, &c.day);
  c.hour = static_cast<int>(sod / 3600);
  c.minute = static_cast<int>((sod % 3600) / 60);
  c.second = static_cast<int>(sod % 60);
  return c;
}

std::string TimePoint::ToString(TimeResolution res) const {
  if (secs_ == INT32_MAX) return "forever";
  if (secs_ == INT32_MIN) return "beginning";
  CivilTime c = ToCivil(*this);
  switch (res) {
    case TimeResolution::kSecond:
      return StrPrintf("%02d:%02d:%02d %d/%d/%d", c.hour, c.minute, c.second,
                       c.month, c.day, c.year);
    case TimeResolution::kMinute:
      return StrPrintf("%02d:%02d %d/%d/%d", c.hour, c.minute, c.month, c.day,
                       c.year);
    case TimeResolution::kHour:
      return StrPrintf("%02d:00 %d/%d/%d", c.hour, c.month, c.day, c.year);
    case TimeResolution::kDay:
      return StrPrintf("%d/%d/%d", c.month, c.day, c.year);
    case TimeResolution::kMonth:
      return StrPrintf("%d/%d", c.month, c.year);
    case TimeResolution::kYear:
      return StrPrintf("%d", c.year);
  }
  return "";
}

TimePoint TimePoint::AddSeconds(int64_t n) const {
  if (secs_ == INT32_MAX || secs_ == INT32_MIN) return *this;
  int64_t v = static_cast<int64_t>(secs_) + n;
  if (v >= INT32_MAX) return Forever();
  if (v <= INT32_MIN) return Beginning();
  return TimePoint(static_cast<int32_t>(v));
}

}  // namespace tdb
