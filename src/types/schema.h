#ifndef CHRONOQUEL_TYPES_SCHEMA_H_
#define CHRONOQUEL_TYPES_SCHEMA_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "temporal/db_type.h"
#include "types/value.h"
#include "util/status.h"

namespace tdb {

/// Names of the implicit temporal attributes appended to tuples according to
/// the relation's type (the embedding chosen in Section 4 of the paper).
inline constexpr const char* kAttrTxStart = "transaction_start";
inline constexpr const char* kAttrTxStop = "transaction_stop";
inline constexpr const char* kAttrValidFrom = "valid_from";
inline constexpr const char* kAttrValidTo = "valid_to";
inline constexpr const char* kAttrValidAt = "valid_at";

/// One attribute of a relation schema.
struct Attribute {
  std::string name;
  TypeId type = TypeId::kInt4;
  /// On-disk width in bytes.  Fixed by the type except for kChar, where it
  /// is the declared c<N> width.
  uint16_t width = 4;
  /// True for the implicit time attributes added by the system.
  bool implicit = false;
};

/// Returns the on-disk width of a non-char type.
uint16_t TypeWidth(TypeId t);

/// A fixed-width record layout: ordered attributes with byte offsets.
///
/// A Schema covers the *stored* tuple: the user-declared attributes followed
/// by the implicit temporal attributes implied by the relation's DbType and
/// EntityKind.  Static relations have no implicit attributes; rollback adds
/// transaction_start/stop; historical adds valid_from/to (interval) or
/// valid_at (event); temporal adds both sets.  With the paper's 108-byte
/// user payload this yields 9 tuples per 1024-byte page for static relations
/// and 8 for the other three types, exactly as measured in Section 5.1.
class Schema {
 public:
  Schema() = default;

  /// Builds a schema from user attributes plus the implicit attributes for
  /// (`type`, `kind`).  Fails on duplicate or reserved attribute names.
  static Result<Schema> Create(std::vector<Attribute> user_attrs, DbType type,
                               EntityKind kind = EntityKind::kInterval);

  /// Schema with no implicit attributes (temp relations, indexes).
  static Result<Schema> CreateStatic(std::vector<Attribute> attrs);

  const std::vector<Attribute>& attrs() const { return attrs_; }
  size_t num_attrs() const { return attrs_.size(); }
  size_t num_user_attrs() const { return num_user_attrs_; }
  const Attribute& attr(size_t i) const { return attrs_[i]; }
  uint16_t offset(size_t i) const { return offsets_[i]; }
  uint16_t record_size() const { return record_size_; }
  DbType db_type() const { return db_type_; }
  EntityKind entity_kind() const { return entity_kind_; }

  /// Index of the attribute named `name` (case-insensitive), or -1.
  int FindAttr(std::string_view name) const;

  /// Indexes of the implicit attributes, or -1 when absent.
  int tx_start_index() const { return tx_start_; }
  int tx_stop_index() const { return tx_stop_; }
  int valid_from_index() const { return valid_from_; }
  int valid_to_index() const { return valid_to_; }

  /// Serialization for the catalog file.
  std::string Serialize() const;
  static Result<Schema> Deserialize(std::string_view text);

 private:
  std::vector<Attribute> attrs_;
  std::vector<uint16_t> offsets_;
  uint16_t record_size_ = 0;
  size_t num_user_attrs_ = 0;
  DbType db_type_ = DbType::kStatic;
  EntityKind entity_kind_ = EntityKind::kInterval;
  int tx_start_ = -1;
  int tx_stop_ = -1;
  int valid_from_ = -1;
  int valid_to_ = -1;

  Status Finish();  // computes offsets and implicit indexes
};

/// A decoded tuple: one Value per schema attribute.
using Row = std::vector<Value>;

/// Encodes `row` (which must match `schema`) into a fixed-width record.
/// Integers are little-endian; chars are blank padded / truncated to the
/// declared width; times are their 32-bit second count.
Result<std::vector<uint8_t>> EncodeRecord(const Schema& schema,
                                          const Row& row);

/// Decodes a record previously produced by EncodeRecord.
Result<Row> DecodeRecord(const Schema& schema, const uint8_t* data,
                         size_t size);

/// Decodes only attribute `idx` of the record (cheap point access).
Value DecodeAttr(const Schema& schema, size_t idx, const uint8_t* data);

/// Overwrites attribute `idx` in-place in an encoded record.
void EncodeAttrInPlace(const Schema& schema, size_t idx, const Value& v,
                       uint8_t* data);

}  // namespace tdb

#endif  // CHRONOQUEL_TYPES_SCHEMA_H_
