#include "types/schema.h"

#include <cstring>

#include "util/stringx.h"

namespace tdb {

uint16_t TypeWidth(TypeId t) {
  switch (t) {
    case TypeId::kInt1:
      return 1;
    case TypeId::kInt2:
      return 2;
    case TypeId::kInt4:
      return 4;
    case TypeId::kFloat8:
      return 8;
    case TypeId::kTime:
      return 4;
    case TypeId::kChar:
      return 0;  // width is per-attribute
  }
  return 0;
}

namespace {

Attribute TimeAttr(const char* name) {
  Attribute a;
  a.name = name;
  a.type = TypeId::kTime;
  a.width = 4;
  a.implicit = true;
  return a;
}

bool IsReservedName(std::string_view name) {
  return EqualsIgnoreCase(name, kAttrTxStart) ||
         EqualsIgnoreCase(name, kAttrTxStop) ||
         EqualsIgnoreCase(name, kAttrValidFrom) ||
         EqualsIgnoreCase(name, kAttrValidTo) ||
         EqualsIgnoreCase(name, kAttrValidAt);
}

}  // namespace

Result<Schema> Schema::Create(std::vector<Attribute> user_attrs, DbType type,
                              EntityKind kind) {
  Schema s;
  for (const Attribute& a : user_attrs) {
    if (IsReservedName(a.name)) {
      return Status::Invalid("attribute name '" + a.name + "' is reserved");
    }
  }
  s.attrs_ = std::move(user_attrs);
  s.num_user_attrs_ = s.attrs_.size();
  s.db_type_ = type;
  s.entity_kind_ = kind;

  if (HasValidTime(type)) {
    if (kind == EntityKind::kInterval) {
      s.attrs_.push_back(TimeAttr(kAttrValidFrom));
      s.attrs_.push_back(TimeAttr(kAttrValidTo));
    } else {
      s.attrs_.push_back(TimeAttr(kAttrValidAt));
    }
  }
  if (HasTransactionTime(type)) {
    s.attrs_.push_back(TimeAttr(kAttrTxStart));
    s.attrs_.push_back(TimeAttr(kAttrTxStop));
  }
  TDB_RETURN_NOT_OK(s.Finish());
  return s;
}

Result<Schema> Schema::CreateStatic(std::vector<Attribute> attrs) {
  Schema s;
  s.attrs_ = std::move(attrs);
  s.num_user_attrs_ = s.attrs_.size();
  s.db_type_ = DbType::kStatic;
  TDB_RETURN_NOT_OK(s.Finish());
  return s;
}

Status Schema::Finish() {
  offsets_.clear();
  uint16_t off = 0;
  for (size_t i = 0; i < attrs_.size(); ++i) {
    Attribute& a = attrs_[i];
    if (a.name.empty()) return Status::Invalid("empty attribute name");
    for (size_t j = 0; j < i; ++j) {
      if (EqualsIgnoreCase(attrs_[j].name, a.name)) {
        return Status::Invalid("duplicate attribute '" + a.name + "'");
      }
    }
    if (a.type != TypeId::kChar) {
      a.width = TypeWidth(a.type);
    } else if (a.width == 0) {
      return Status::Invalid("char attribute '" + a.name + "' needs a width");
    }
    offsets_.push_back(off);
    off = static_cast<uint16_t>(off + a.width);
  }
  record_size_ = off;
  if (record_size_ == 0) return Status::Invalid("schema has no attributes");

  tx_start_ = FindAttr(kAttrTxStart);
  tx_stop_ = FindAttr(kAttrTxStop);
  if (entity_kind_ == EntityKind::kInterval) {
    valid_from_ = FindAttr(kAttrValidFrom);
    valid_to_ = FindAttr(kAttrValidTo);
  } else {
    valid_from_ = FindAttr(kAttrValidAt);
    valid_to_ = valid_from_;  // events: from == to == the instant
  }
  return Status::OK();
}

int Schema::FindAttr(std::string_view name) const {
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (EqualsIgnoreCase(attrs_[i].name, name)) return static_cast<int>(i);
  }
  return -1;
}

std::string Schema::Serialize() const {
  // "dbtype|kind|nuser|name:type:width,name:type:width,..."
  std::string out = StrPrintf("%d|%d|%zu|", static_cast<int>(db_type_),
                              static_cast<int>(entity_kind_),
                              num_user_attrs_);
  for (size_t i = 0; i < num_user_attrs_; ++i) {
    const Attribute& a = attrs_[i];
    if (i > 0) out += ",";
    out += StrPrintf("%s:%d:%u", a.name.c_str(), static_cast<int>(a.type),
                     a.width);
  }
  return out;
}

Result<Schema> Schema::Deserialize(std::string_view text) {
  std::vector<std::string> head = Split(text, '|');
  if (head.size() != 4) return Status::Corruption("bad schema record");
  int64_t dbt = 0;
  int64_t kind = 0;
  int64_t nuser = 0;
  if (!ParseInt64(head[0], &dbt) || !ParseInt64(head[1], &kind) ||
      !ParseInt64(head[2], &nuser)) {
    return Status::Corruption("bad schema header");
  }
  std::vector<Attribute> attrs;
  if (!head[3].empty()) {
    for (const std::string& piece : Split(head[3], ',')) {
      std::vector<std::string> f = Split(piece, ':');
      if (f.size() != 3) return Status::Corruption("bad attribute record");
      int64_t t = 0;
      int64_t w = 0;
      if (!ParseInt64(f[1], &t) || !ParseInt64(f[2], &w)) {
        return Status::Corruption("bad attribute fields");
      }
      Attribute a;
      a.name = f[0];
      a.type = static_cast<TypeId>(t);
      a.width = static_cast<uint16_t>(w);
      attrs.push_back(std::move(a));
    }
  }
  if (static_cast<int64_t>(attrs.size()) != nuser) {
    return Status::Corruption("schema attribute count mismatch");
  }
  return Create(std::move(attrs), static_cast<DbType>(dbt),
                static_cast<EntityKind>(kind));
}

namespace {

void PutIntLE(uint8_t* p, uint64_t v, size_t width) {
  for (size_t i = 0; i < width; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
}

uint64_t GetIntLE(const uint8_t* p, size_t width) {
  uint64_t v = 0;
  for (size_t i = 0; i < width; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

int64_t SignExtend(uint64_t v, size_t width) {
  if (width >= 8) return static_cast<int64_t>(v);
  uint64_t sign = 1ULL << (8 * width - 1);
  if (v & sign) v |= ~((sign << 1) - 1);
  return static_cast<int64_t>(v);
}

}  // namespace

Result<std::vector<uint8_t>> EncodeRecord(const Schema& schema,
                                          const Row& row) {
  if (row.size() != schema.num_attrs()) {
    return Status::Invalid(
        StrPrintf("row has %zu values, schema has %zu attributes", row.size(),
                  schema.num_attrs()));
  }
  std::vector<uint8_t> rec(schema.record_size(), 0);
  for (size_t i = 0; i < row.size(); ++i) {
    const Attribute& a = schema.attr(i);
    const Value& v = row[i];
    uint8_t* p = rec.data() + schema.offset(i);
    switch (a.type) {
      case TypeId::kInt1:
      case TypeId::kInt2:
      case TypeId::kInt4: {
        if (!v.is_integer()) {
          return Status::Invalid("attribute '" + a.name + "' expects integer");
        }
        PutIntLE(p, static_cast<uint64_t>(v.AsInt()), a.width);
        break;
      }
      case TypeId::kFloat8: {
        if (!v.is_numeric()) {
          return Status::Invalid("attribute '" + a.name + "' expects numeric");
        }
        double d = v.AsDouble();
        std::memcpy(p, &d, 8);
        break;
      }
      case TypeId::kChar: {
        if (v.type() != TypeId::kChar) {
          return Status::Invalid("attribute '" + a.name + "' expects char");
        }
        const std::string& s = v.AsString();
        size_t n = std::min<size_t>(s.size(), a.width);
        std::memcpy(p, s.data(), n);
        std::memset(p + n, ' ', a.width - n);
        break;
      }
      case TypeId::kTime: {
        if (v.type() != TypeId::kTime) {
          return Status::Invalid("attribute '" + a.name + "' expects time");
        }
        PutIntLE(p, static_cast<uint32_t>(v.AsTime().seconds()), 4);
        break;
      }
    }
  }
  return rec;
}

Value DecodeAttr(const Schema& schema, size_t idx, const uint8_t* data) {
  const Attribute& a = schema.attr(idx);
  const uint8_t* p = data + schema.offset(idx);
  switch (a.type) {
    case TypeId::kInt1:
      return Value::Int1(SignExtend(GetIntLE(p, 1), 1));
    case TypeId::kInt2:
      return Value::Int2(SignExtend(GetIntLE(p, 2), 2));
    case TypeId::kInt4:
      return Value::Int4(SignExtend(GetIntLE(p, 4), 4));
    case TypeId::kFloat8: {
      double d = 0;
      std::memcpy(&d, p, 8);
      return Value::Float8(d);
    }
    case TypeId::kChar:
      return Value::Char(std::string(reinterpret_cast<const char*>(p),
                                     a.width));
    case TypeId::kTime:
      return Value::Time(
          TimePoint(static_cast<int32_t>(GetIntLE(p, 4))));
  }
  return Value();
}

Result<Row> DecodeRecord(const Schema& schema, const uint8_t* data,
                         size_t size) {
  if (size < schema.record_size()) {
    return Status::Corruption(StrPrintf("record too short: %zu < %u", size,
                                        schema.record_size()));
  }
  Row row;
  row.reserve(schema.num_attrs());
  for (size_t i = 0; i < schema.num_attrs(); ++i) {
    row.push_back(DecodeAttr(schema, i, data));
  }
  return row;
}

void EncodeAttrInPlace(const Schema& schema, size_t idx, const Value& v,
                       uint8_t* data) {
  const Attribute& a = schema.attr(idx);
  uint8_t* p = data + schema.offset(idx);
  switch (a.type) {
    case TypeId::kInt1:
    case TypeId::kInt2:
    case TypeId::kInt4:
      PutIntLE(p, static_cast<uint64_t>(v.AsInt()), a.width);
      break;
    case TypeId::kFloat8: {
      double d = v.AsDouble();
      std::memcpy(p, &d, 8);
      break;
    }
    case TypeId::kChar: {
      const std::string& s = v.AsString();
      size_t n = std::min<size_t>(s.size(), a.width);
      std::memcpy(p, s.data(), n);
      std::memset(p + n, ' ', a.width - n);
      break;
    }
    case TypeId::kTime:
      PutIntLE(p, static_cast<uint32_t>(v.AsTime().seconds()), 4);
      break;
  }
}

}  // namespace tdb
