#ifndef CHRONOQUEL_BENCHLIB_WORKLOAD_H_
#define CHRONOQUEL_BENCHLIB_WORKLOAD_H_

#include <memory>
#include <string>
#include <vector>

#include "core/database.h"
#include "env/env.h"
#include "util/random.h"

namespace tdb {
namespace bench {

/// Configuration of one of the paper's test databases (Section 5.1): a
/// database type and a loading factor, with optional Section 6
/// enhancements (two-level store, secondary index on `amount`).
struct WorkloadConfig {
  DbType type = DbType::kTemporal;
  int fillfactor = 100;  // 100 or 50 in the paper
  int ntuples = 1024;
  uint64_t seed = 42;

  /// Buffer frames per relation (the paper fixes 1).
  int buffer_frames = 1;

  // Section 6 variants.
  bool two_level = false;
  bool clustered_history = false;
  std::string index_structure;  // "" (none), "heap", or "hash" on `amount`
  int index_levels = 1;

  // Production storage mode (forwarded to DatabaseOptions; every default
  // keeps the paper configuration).
  uint32_t page_size = 0;        // 0 = paper 1024
  int pool_frames = 0;           // >0 enables the shared buffer pool
  int pool_file_cap = 0;         // 0 = paper parity (1/file); -1 = uncapped
  int exec_threads = 0;          // 0 = default (1)
  std::string vacuum_partition;  // "" = default ("single")
  bool plan_cache = false;       // shared plan cache (paper default: off)
};

/// Measured I/O for one query execution.
struct Measure {
  uint64_t input_pages = 0;   // all page reads (incl. temp re-reads)
  uint64_t output_pages = 0;  // temp-relation page writes
  uint64_t fixed_pages = 0;   // ISAM directory + temp reads (Fig. 9 split)
  uint64_t rows = 0;
  // Disk-model estimate of the trace (random/sequential split + total ms).
  uint64_t random_accesses = 0;
  uint64_t sequential_accesses = 0;
  double modeled_ms = 0;
  /// Wall-clock of the Execute call (monotonic).  Diagnostic only — never
  /// printed to figure stdout, which reports the paper's page counts and
  /// must stay deterministic.
  double wall_ms = 0;
  /// One-line summary of the plan that produced these counts (e.g.
  /// "bench_h:keyed(current)"), so figure output is self-documenting.
  std::string plan;
  /// The annotated plan tree (Describe(true) of the executed plan).
  std::string plan_tree;
};

/// The paper's benchmark database: two relations `bench_h` (hashed on id)
/// and `bench_i` (ISAM on id), each with `ntuples` 108-byte tuples
///   id = i4 (key, 0..n-1), amount = i4, seq = i4 (starts 0), string = c96
/// plus the implicit time attributes of the configured type.  Transaction
/// start / valid from are randomized between Jan 1 and Feb 15, 1980.
///
/// Tuple id 500 carries amount 69400 and id 600 carries amount 73700 so the
/// benchmark's selective amount probes (Q07/Q08/Q12) match exactly one
/// tuple, as in the paper.
class BenchmarkDb {
 public:
  static Result<std::unique_ptr<BenchmarkDb>> Create(
      const WorkloadConfig& config);

  Database* db() { return db_.get(); }
  const WorkloadConfig& config() const { return config_; }

  /// One uniform update round: replaces every current version of both
  /// relations (seq += 1), raising the average update count by one.
  Status UniformUpdateRound();

  /// Replaces the single tuple `id` in both relations `times` times (the
  /// Section 5.4 maximum-variance experiment).
  Status UpdateSingleTuple(int id, int times);

  /// Q01..Q12 adapted to the database type (Figure 4); "" if the query is
  /// not applicable to this type.
  std::string QueryText(int qnum) const;

  /// Runs Qnn and reports its I/O.  Fails on inapplicable queries.
  Result<Measure> RunQuery(int qnum);

  /// Runs arbitrary TQuel under measurement.
  Result<Measure> RunText(const std::string& text);

  /// Total pages of one relation (primary + history + anchors), the Fig. 5
  /// space metric.
  Result<uint64_t> PagesOf(const std::string& suffix);  // "h" or "i"

  /// The current average update count applied via UniformUpdateRound.
  int update_count() const { return update_count_; }

  /// The key probed by Q01/Q02/Q05/Q06/Q12 (500 at paper scale, scaled
  /// down for smaller ntuples) and the ids carrying the pinned amounts.
  int probe_id() const { return probe_id_; }
  int amount_q7_id() const { return probe_id_; }
  int amount_q8_id() const { return probe2_id_; }

 private:
  BenchmarkDb() = default;

  WorkloadConfig config_;
  std::unique_ptr<MemEnv> env_;
  std::unique_ptr<Database> db_;
  int update_count_ = 0;
  int probe_id_ = 500;
  int probe2_id_ = 600;
};

/// Simple fixed-width column table printer for the bench binaries.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);
  void AddRow(std::vector<std::string> cells);
  std::string ToString() const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

/// Formats u64 / double cells.
std::string Cell(uint64_t v);
std::string Cell(double v, int precision = 2);

}  // namespace bench
}  // namespace tdb

#endif  // CHRONOQUEL_BENCHLIB_WORKLOAD_H_
