#include "benchlib/workload.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <set>

#include "diskmodel/disk_model.h"
#include "exec/plan.h"
#include "util/stringx.h"

namespace tdb {
namespace bench {

namespace {

// Jan 1 1980 00:00 UTC and the 45-day randomization window of Section 5.1.
constexpr int64_t kEpoch1980 = 315532800;
constexpr int64_t kInitWindowSeconds = 45LL * 86400;
// The benchmark clock starts at Mar 1 1980, after every initial timestamp.
constexpr int64_t kBenchStart = kEpoch1980 + 60LL * 86400;

constexpr int kAmountQ7 = 69400;   // carried by tuple id 500
constexpr int kAmountQ8 = 73700;   // carried by tuple id 600

std::string CreatePrefix(DbType type) {
  switch (type) {
    case DbType::kStatic:
      return "create";
    case DbType::kRollback:
      return "create persistent";
    case DbType::kHistorical:
      return "create interval";
    case DbType::kTemporal:
      return "create persistent interval";
  }
  return "create";
}

}  // namespace

Result<std::unique_ptr<BenchmarkDb>> BenchmarkDb::Create(
    const WorkloadConfig& config) {
  std::unique_ptr<BenchmarkDb> bench(new BenchmarkDb());
  bench->config_ = config;
  // At paper scale the probed tuples are ids 500 and 600; smaller
  // configurations scale them into range.
  bench->probe_id_ = config.ntuples > 600 ? 500 : config.ntuples / 2;
  bench->probe2_id_ = config.ntuples > 600 ? 600 : config.ntuples * 3 / 4;
  bench->env_ = std::make_unique<MemEnv>();

  DatabaseOptions options;
  options.env = bench->env_.get();
  options.start_time = TimePoint(static_cast<int32_t>(kBenchStart));
  options.buffer_frames = config.buffer_frames;
  options.page_size = config.page_size;
  options.pool_frames = config.pool_frames;
  options.pool_file_cap = config.pool_file_cap;
  options.exec_threads = config.exec_threads;
  options.vacuum_partition = config.vacuum_partition;
  options.plan_cache = config.plan_cache;
  TDB_ASSIGN_OR_RETURN(bench->db_, Database::Open("/bench", options));
  Database* db = bench->db_.get();

  for (const char* suffix : {"h", "i"}) {
    TDB_RETURN_NOT_OK(
        db->Execute(CreatePrefix(config.type) + " bench_" + suffix +
                    " (id = i4, amount = i4, seq = i4, string = c96)")
            .status());
  }

  // Generate the load file: random amounts (with the two probe values
  // pinned and unique), random 96-char strings, randomized initial times.
  Random rng(config.seed);
  std::string tsv;
  bool tx = HasTransactionTime(config.type);
  bool vt = HasValidTime(config.type);
  for (int id = 0; id < config.ntuples; ++id) {
    int64_t amount;
    if (id == bench->probe_id_) {
      amount = kAmountQ7;
    } else if (id == bench->probe2_id_) {
      amount = kAmountQ8;
    } else {
      do {
        amount = rng.UniformRange(0, 99999);
      } while (amount == kAmountQ7 || amount == kAmountQ8);
    }
    std::string line = StrPrintf("%d\t%lld\t0\t%s", id,
                                 static_cast<long long>(amount),
                                 rng.NextString(96).c_str());
    TimePoint start(static_cast<int32_t>(
        kEpoch1980 + rng.UniformRange(0, kInitWindowSeconds - 1)));
    std::string start_text = start.ToString(TimeResolution::kSecond);
    if (vt) line += "\t" + start_text + "\tforever";
    if (tx) line += "\t" + start_text + "\tforever";
    tsv += line + "\n";
  }
  TDB_RETURN_NOT_OK(bench->env_->WriteStringToFile("/bench_load.tsv", tsv));
  TDB_RETURN_NOT_OK(db->Execute("copy bench_h from \"/bench_load.tsv\"")
                        .status());
  TDB_RETURN_NOT_OK(db->Execute("copy bench_i from \"/bench_load.tsv\"")
                        .status());

  // Organize per Figure 3: bench_h hashed on id, bench_i ISAM on id.
  std::string twolevel = config.two_level ? "twolevel " : "";
  std::string history =
      config.two_level
          ? StrPrintf(", history = %s",
                      config.clustered_history ? "clustered" : "simple")
          : "";
  TDB_RETURN_NOT_OK(
      db->Execute(StrPrintf("modify bench_h to %shash on id where "
                            "fillfactor = %d%s",
                            twolevel.c_str(), config.fillfactor,
                            history.c_str()))
          .status());
  TDB_RETURN_NOT_OK(
      db->Execute(StrPrintf("modify bench_i to %sisam on id where "
                            "fillfactor = %d%s",
                            twolevel.c_str(), config.fillfactor,
                            history.c_str()))
          .status());

  if (!config.index_structure.empty()) {
    for (const char* suffix : {"h", "i"}) {
      TDB_RETURN_NOT_OK(
          db->Execute(StrPrintf(
                          "index on bench_%s is amount_%s (amount) with "
                          "structure = %s, levels = %d",
                          suffix, suffix, config.index_structure.c_str(),
                          config.index_levels))
              .status());
    }
  }

  TDB_RETURN_NOT_OK(db->Execute("range of h is bench_h").status());
  TDB_RETURN_NOT_OK(db->Execute("range of i is bench_i").status());
  db->SetNow(TimePoint(static_cast<int32_t>(kBenchStart)));
  return bench;
}

Status BenchmarkDb::UniformUpdateRound() {
  // A day passes between rounds so version timestamps are well separated;
  // within the round the clock is frozen so both relations evolve at the
  // same instant (the paper updates the whole database "at a time").
  db_->AdvanceSeconds(86400);
  int saved = db_->auto_advance_seconds();
  db_->set_auto_advance_seconds(0);
  Status s = db_->Execute("replace h (seq = h.seq + 1)").status();
  if (s.ok()) s = db_->Execute("replace i (seq = i.seq + 1)").status();
  db_->set_auto_advance_seconds(saved);
  TDB_RETURN_NOT_OK(s);
  ++update_count_;
  return Status::OK();
}

Status BenchmarkDb::UpdateSingleTuple(int id, int times) {
  for (int k = 0; k < times; ++k) {
    db_->AdvanceSeconds(60);
    TDB_RETURN_NOT_OK(
        db_->Execute(StrPrintf("replace h (seq = h.seq + 1) where h.id = %d",
                               id))
            .status());
    TDB_RETURN_NOT_OK(
        db_->Execute(StrPrintf("replace i (seq = i.seq + 1) where i.id = %d",
                               id))
            .status());
  }
  return Status::OK();
}

std::string BenchmarkDb::QueryText(int qnum) const {
  DbType type = config_.type;
  bool tx = HasTransactionTime(type);
  bool vt = HasValidTime(type);
  // The "current state" qualifier of Q05-Q10: `when v overlap "now"` where
  // valid time exists, `as of "now"` for rollback, nothing for static.
  auto current = [&](const std::string& var) -> std::string {
    if (vt) return " when " + var + " overlap \"now\"";
    if (tx) return " as of \"now\"";
    return "";
  };
  switch (qnum) {
    case 1:
      return StrPrintf("retrieve (h.id, h.seq) where h.id = %d", probe_id_);
    case 2:
      return StrPrintf("retrieve (i.id, i.seq) where i.id = %d", probe_id_);
    case 3:
      return tx ? "retrieve (h.id, h.seq) as of \"08:00 1/1/80\"" : "";
    case 4:
      return tx ? "retrieve (i.id, i.seq) as of \"08:00 1/1/80\"" : "";
    case 5:
      return StrPrintf("retrieve (h.id, h.seq) where h.id = %d", probe_id_) +
             current("h");
    case 6:
      return StrPrintf("retrieve (i.id, i.seq) where i.id = %d", probe_id_) +
             current("i");
    case 7:
      return StrPrintf("retrieve (h.id, h.seq) where h.amount = %d",
                       kAmountQ7) +
             current("h");
    case 8:
      return StrPrintf("retrieve (i.id, i.seq) where i.amount = %d",
                       kAmountQ8) +
             current("i");
    case 9: {
      std::string q = "retrieve (h.id, i.id, i.amount) where h.id = i.amount";
      if (vt) return q + " when h overlap i and i overlap \"now\"";
      if (tx) return q + " as of \"now\"";
      return q;
    }
    case 10: {
      std::string q = "retrieve (i.id, h.id, h.amount) where i.id = h.amount";
      if (vt) return q + " when h overlap i and h overlap \"now\"";
      if (tx) return q + " as of \"now\"";
      return q;
    }
    case 11:
      if (type != DbType::kTemporal) return "";
      return "retrieve (h.id, h.seq, i.id, i.seq, i.amount) "
             "valid from start of h to end of i "
             "when start of h precede i as of \"4:00 1/1/80\"";
    case 12:
      if (type != DbType::kTemporal) return "";
      return StrPrintf(
          "retrieve (h.id, h.seq, i.id, i.seq, i.amount) "
          "valid from start of (h overlap i) to end of (h extend i) "
          "where h.id = %d and i.amount = %d "
          "when h overlap i as of \"now\"",
          probe_id_, kAmountQ8);
    default:
      return "";
  }
}

Result<Measure> BenchmarkDb::RunText(const std::string& text) {
  TDB_RETURN_NOT_OK(db_->DropAllBuffers());
  db_->io()->ResetAll();
  IoTrace* trace = db_->io()->trace();
  trace->Clear();
  trace->set_enabled(true);
  auto wall0 = std::chrono::steady_clock::now();
  auto result = db_->Execute(text);
  auto wall1 = std::chrono::steady_clock::now();
  trace->set_enabled(false);
  TDB_RETURN_NOT_OK(result.status());
  IoCounters totals = db_->io()->Total();
  Measure m;
  m.input_pages = totals.TotalReads();
  m.output_pages = totals.TotalWrites();
  m.fixed_pages = totals.reads[static_cast<int>(IoCategory::kDirectory)] +
                  totals.reads[static_cast<int>(IoCategory::kTemp)];
  m.rows = static_cast<uint64_t>(result->affected);
  if (result->plan != nullptr) {
    m.plan = result->plan->Summary();
    m.plan_tree = result->plan->Describe(/*with_stats=*/true);
  }
  DiskEstimate estimate = DiskModel().Estimate(trace->events());
  m.random_accesses = estimate.random_accesses;
  m.sequential_accesses = estimate.sequential_accesses;
  m.modeled_ms = estimate.total_ms;
  m.wall_ms =
      std::chrono::duration<double, std::milli>(wall1 - wall0).count();
  trace->Clear();
  return m;
}

Result<Measure> BenchmarkDb::RunQuery(int qnum) {
  std::string text = QueryText(qnum);
  if (text.empty()) {
    return Status::Invalid(StrPrintf("Q%02d is not applicable to a %s "
                                     "database",
                                     qnum, DbTypeName(config_.type)));
  }
  return RunText(text);
}

Result<uint64_t> BenchmarkDb::PagesOf(const std::string& suffix) {
  TDB_ASSIGN_OR_RETURN(Relation * rel, db_->GetRelation("bench_" + suffix));
  uint64_t pages = rel->primary()->page_count();
  if (rel->history() != nullptr) pages += rel->history()->page_count();
  if (rel->anchors() != nullptr) pages += rel->anchors()->page_count();
  return pages;
}

// ---------------------------------------------------------------------------
// TablePrinter
// ---------------------------------------------------------------------------

TablePrinter::TablePrinter(std::vector<std::string> headers) {
  rows_.push_back(std::move(headers));
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths;
  for (const auto& row : rows_) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::string out;
  for (size_t r = 0; r < rows_.size(); ++r) {
    std::string line;
    for (size_t i = 0; i < widths.size(); ++i) {
      std::string cell = i < rows_[r].size() ? rows_[r][i] : "";
      bool numeric = !cell.empty() && (std::isdigit(
          static_cast<unsigned char>(cell[0])) || cell[0] == '-');
      if (numeric) {
        line += std::string(widths[i] - cell.size(), ' ') + cell;
      } else {
        cell.resize(widths[i], ' ');
        line += cell;
      }
      line += "  ";
    }
    out += line + "\n";
    if (r == 0) {
      std::string rule;
      for (size_t w : widths) rule += std::string(w, '-') + "  ";
      out += rule + "\n";
    }
  }
  return out;
}

std::string Cell(uint64_t v) {
  return StrPrintf("%llu", static_cast<unsigned long long>(v));
}

std::string Cell(double v, int precision) {
  return StrPrintf("%.*f", precision, v);
}

}  // namespace bench
}  // namespace tdb
