#include "util/status.h"

namespace tdb {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotSupported:
      return "Not supported";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kParseError:
      return "Parse error";
    case StatusCode::kBindError:
      return "Bind error";
    case StatusCode::kInternal:
      return "Internal error";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  if (context_.has_value()) {
    out += " (statement " + std::to_string(context_->statement_index) +
           ", offset " + std::to_string(context_->source_offset) + ")";
  }
  return out;
}

}  // namespace tdb
