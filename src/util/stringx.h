#ifndef CHRONOQUEL_UTIL_STRINGX_H_
#define CHRONOQUEL_UTIL_STRINGX_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tdb {

/// printf-style formatting into a std::string.
std::string StrPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// ASCII lower/upper-casing (locale independent).
std::string ToLower(std::string_view s);
std::string ToUpper(std::string_view s);

/// Removes leading and trailing ASCII whitespace.
std::string_view TrimView(std::string_view s);
std::string Trim(std::string_view s);

/// Splits `s` on `sep`; empty pieces are kept.
std::vector<std::string> Split(std::string_view s, char sep);

/// True if `s` begins / ends with the given prefix / suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Case-insensitive ASCII string equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Joins `parts` with `sep` between elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Parses a signed decimal integer; returns false on any non-numeric input
/// or overflow.
bool ParseInt64(std::string_view s, int64_t* out);

/// Parses a decimal floating point number; returns false on bad input.
bool ParseDouble(std::string_view s, double* out);

}  // namespace tdb

#endif  // CHRONOQUEL_UTIL_STRINGX_H_
