#ifndef CHRONOQUEL_UTIL_RANDOM_H_
#define CHRONOQUEL_UTIL_RANDOM_H_

#include <cstdint>
#include <string>

namespace tdb {

/// Deterministic pseudo-random generator (splitmix64 core).  Used by the
/// benchmark workload generator so every run of a paper experiment sees the
/// same data, independent of platform and standard library.
class Random {
 public:
  explicit Random(uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ULL) {}

  /// Next raw 64-bit value.
  uint64_t Next64() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform value in [0, n).  Requires n > 0.
  uint64_t Uniform(uint64_t n) { return Next64() % n; }

  /// Uniform value in [lo, hi] inclusive.  Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Random lower-case alphabetic string of exactly `len` characters.
  std::string NextString(size_t len) {
    std::string s(len, 'a');
    for (char& c : s) c = static_cast<char>('a' + Uniform(26));
    return s;
  }

 private:
  uint64_t state_;
};

}  // namespace tdb

#endif  // CHRONOQUEL_UTIL_RANDOM_H_
