#ifndef CHRONOQUEL_UTIL_STATUS_H_
#define CHRONOQUEL_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace tdb {

/// Machine-readable classification of an error.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kIOError,
  kCorruption,
  kNotSupported,
  kOutOfRange,
  kParseError,
  kBindError,
  kInternal,
};

/// Returns a short human-readable name for `code` ("Invalid argument", ...).
const char* StatusCodeName(StatusCode code);

/// Locates an error within a multi-statement script: which statement failed
/// (1-based, in script order) and where its text begins in the source.
/// Attached to a Status by Database::ExecuteScript so callers can map an
/// error back to the offending statement without re-parsing.
struct StatementContext {
  int statement_index = 0;   // 1-based position in the script
  size_t source_offset = 0;  // byte offset of the statement's first token

  bool operator==(const StatementContext& o) const {
    return statement_index == o.statement_index &&
           source_offset == o.source_offset;
  }
};

/// Result of an operation that can fail.  The library does not use
/// exceptions; every fallible operation returns a Status (or a Result<T>).
///
/// Typical use:
///   Status s = file.ReadPage(3, &page);
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status Invalid(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Returns a copy of this status carrying `ctx`.  No-op on OK statuses;
  /// an already-attached context is preserved (the innermost statement that
  /// reported the error wins).
  Status WithStatementContext(const StatementContext& ctx) const {
    if (ok() || context_.has_value()) return *this;
    Status s = *this;
    s.context_ = ctx;
    return s;
  }

  /// The statement context, or nullptr when none was attached.
  const StatementContext* statement_context() const {
    return context_.has_value() ? &*context_ : nullptr;
  }

  /// "OK" or "<code name>: <message>", with the statement context rendered
  /// as a "(statement N, offset M)" suffix when present.
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
  std::optional<StatementContext> context_;
};

/// Either a value of type T or an error Status.  Analogous to
/// absl::StatusOr / arrow::Result.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or an error keeps call sites terse:
  ///   Result<int> F() { return 42; }
  ///   Result<int> G() { return Status::Invalid("nope"); }
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Requires ok().
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

  /// Returns the value, or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace tdb

/// Propagates a non-OK Status to the caller.
#define TDB_RETURN_NOT_OK(expr)                 \
  do {                                          \
    ::tdb::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                  \
  } while (0)

#define TDB_CONCAT_IMPL(x, y) x##y
#define TDB_CONCAT(x, y) TDB_CONCAT_IMPL(x, y)

/// Evaluates a Result<T> expression; on error propagates the Status,
/// otherwise moves the value into `lhs` (which may be a declaration).
#define TDB_ASSIGN_OR_RETURN(lhs, rexpr)                       \
  TDB_ASSIGN_OR_RETURN_IMPL(TDB_CONCAT(_res_, __LINE__), lhs, rexpr)

#define TDB_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                              \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value();

#endif  // CHRONOQUEL_UTIL_STATUS_H_
