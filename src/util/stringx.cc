#include "util/stringx.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace tdb {

std::string StrPrintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string_view TrimView(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string Trim(std::string_view s) { return std::string(TrimView(s)); }

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  s = TrimView(s);
  if (s.empty()) return false;
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE || end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

bool ParseDouble(std::string_view s, double* out) {
  s = TrimView(s);
  if (s.empty()) return false;
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE || end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

}  // namespace tdb
