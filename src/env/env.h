#ifndef CHRONOQUEL_ENV_ENV_H_
#define CHRONOQUEL_ENV_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace tdb {

/// A file supporting positioned reads and writes.  Relation files are
/// page-structured on top of this interface.
class RandomRWFile {
 public:
  virtual ~RandomRWFile() = default;

  /// Reads exactly `n` bytes at `offset` into `buf`.  Reading past EOF is
  /// an error.
  virtual Status Read(uint64_t offset, size_t n, uint8_t* buf) const = 0;

  /// Writes `n` bytes at `offset`, extending the file if needed.
  virtual Status Write(uint64_t offset, const uint8_t* data, size_t n) = 0;

  /// Current size in bytes.
  virtual Result<uint64_t> Size() const = 0;

  /// Shrinks or extends (zero filled) the file to `size` bytes.
  virtual Status Truncate(uint64_t size) = 0;

  /// Flushes to stable storage (no-op for the in-memory env).
  virtual Status Sync() = 0;
};

/// File-system abstraction (RocksDB-style).  The Posix implementation backs
/// durable databases; the in-memory implementation backs tests and the
/// benchmark harness, keeping every experiment hermetic and fast while the
/// I/O *accounting* (the paper's metric) is done above this layer.
class Env {
 public:
  virtual ~Env() = default;

  virtual Result<std::unique_ptr<RandomRWFile>> OpenOrCreate(
      const std::string& path) = 0;
  virtual bool FileExists(const std::string& path) = 0;
  virtual Status DeleteFile(const std::string& path) = 0;
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;
  virtual Status CreateDirIfMissing(const std::string& path) = 0;
  virtual Result<std::vector<std::string>> ListDir(
      const std::string& path) = 0;

  /// Whole-file helpers used by the catalog.
  virtual Result<std::string> ReadFileToString(const std::string& path) = 0;
  virtual Status WriteStringToFile(const std::string& path,
                                   const std::string& data) = 0;

  /// The shared Posix environment (never deleted).
  static Env* Default();
};

/// An Env that keeps all files in process memory.
class MemEnv : public Env {
 public:
  MemEnv() = default;

  Result<std::unique_ptr<RandomRWFile>> OpenOrCreate(
      const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Status DeleteFile(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status CreateDirIfMissing(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& path) override;
  Result<std::string> ReadFileToString(const std::string& path) override;
  Status WriteStringToFile(const std::string& path,
                           const std::string& data) override;

 private:
  friend class MemFile;
  std::mutex mu_;
  // Shared so open handles survive DeleteFile, matching Posix semantics.
  std::map<std::string, std::shared_ptr<std::vector<uint8_t>>> files_;
};

}  // namespace tdb

#endif  // CHRONOQUEL_ENV_ENV_H_
