#ifndef CHRONOQUEL_ENV_FAULT_ENV_H_
#define CHRONOQUEL_ENV_FAULT_ENV_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "env/env.h"

namespace tdb {

/// An Env wrapper that injects storage failures, used to prove the journal's
/// crash story (tests/crash_recovery_test.cc) and exercisable from any test
/// that wants hostile I/O.
///
/// Every *mutating* operation that reaches the wrapped env — RandomRWFile
/// Write / Truncate / Sync, and env-level DeleteFile / RenameFile /
/// WriteStringToFile — consumes one operation index, counted from 0 in
/// execution order.  Reads never count and never fail, so a test can always
/// inspect the resulting file image.
///
/// Three fault styles:
///   * CrashAt(k): operation k and everything after it fail with an
///     IOError and leave the wrapped env untouched — the file image is
///     frozen exactly as it was after operation k-1, like a power cut.
///     With set_torn_write_bytes(b), if operation k is a Write (or
///     WriteStringToFile) its first b bytes are applied before the freeze,
///     modeling a torn page / short sector write.
///   * FailSyncAt(n): the nth Sync (1-based) returns an IOError once;
///     state is not frozen — later operations succeed.  Models a transient
///     EIO from fsync.
///   * FailWriteShort(n, b): the nth Write (1-based) persists only its
///     first b bytes and returns an IOError once.  Models ENOSPC-style
///     short writes.
///
/// The wrapper is intended for single-threaded tests but guards its counter
/// with a mutex so accidental cross-thread use stays well-defined.
class FaultEnv : public Env {
 public:
  explicit FaultEnv(Env* base) : base_(base) {}

  // --- fault script -------------------------------------------------------

  /// Freeze the file image at operation `k` (0-based; the k-th mutating
  /// operation is the first to fail).
  void CrashAt(uint64_t k);

  /// When the crashing operation is a write, apply its first `n` bytes.
  void set_torn_write_bytes(uint64_t n);

  /// Fail the `n`th Sync (1-based) once with an IOError.
  void FailSyncAt(uint64_t n);

  /// The `n`th Write (1-based) persists only `bytes` bytes and fails once.
  void FailWriteShort(uint64_t n, uint64_t bytes);

  /// Clears the script and all counters (the wrapped env is untouched).
  void Reset();

  /// Mutating operations seen so far (failed ones included).
  uint64_t op_count() const;

  /// True once CrashAt has triggered.
  bool crashed() const;

  // --- Env ----------------------------------------------------------------

  Result<std::unique_ptr<RandomRWFile>> OpenOrCreate(
      const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Status DeleteFile(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status CreateDirIfMissing(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& path) override;
  Result<std::string> ReadFileToString(const std::string& path) override;
  Status WriteStringToFile(const std::string& path,
                           const std::string& data) override;

 private:
  friend class FaultFile;

  /// What one mutating operation is allowed to do.
  struct Decision {
    bool fail = false;
    /// For writes when failing: bytes to apply before reporting the fault
    /// (UINT64_MAX = none).
    uint64_t partial_bytes = UINT64_MAX;
  };

  /// Consumes one operation index and scores it against the script.
  /// `is_write` enables torn/short-write semantics; `is_sync` enables
  /// FailSyncAt.
  Decision NextOp(bool is_write, bool is_sync);

  static Status InjectedError() {
    return Status::IOError("injected fault: storage is unavailable");
  }

  Env* base_;
  mutable std::mutex mu_;
  uint64_t ops_ = 0;
  uint64_t syncs_ = 0;
  uint64_t writes_ = 0;
  uint64_t crash_at_ = UINT64_MAX;
  uint64_t torn_write_bytes_ = UINT64_MAX;
  uint64_t fail_sync_at_ = 0;    // 1-based; 0 = disabled
  uint64_t fail_write_at_ = 0;   // 1-based; 0 = disabled
  uint64_t fail_write_bytes_ = 0;
  bool crashed_ = false;
};

}  // namespace tdb

#endif  // CHRONOQUEL_ENV_FAULT_ENV_H_
