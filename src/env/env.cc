#include "env/env.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/stringx.h"

namespace tdb {

namespace {

Status ErrnoStatus(const std::string& op, const std::string& path) {
  return Status::IOError(op + " '" + path + "': " + std::strerror(errno));
}

/// Positioned-I/O file over a POSIX descriptor.
class PosixFile : public RandomRWFile {
 public:
  PosixFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  ~PosixFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Read(uint64_t offset, size_t n, uint8_t* buf) const override {
    size_t done = 0;
    while (done < n) {
      ssize_t r = ::pread(fd_, buf + done, n - done,
                          static_cast<off_t>(offset + done));
      if (r < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("pread", path_);
      }
      if (r == 0) {
        return Status::IOError("short read past EOF in '" + path_ + "'");
      }
      done += static_cast<size_t>(r);
    }
    return Status::OK();
  }

  Status Write(uint64_t offset, const uint8_t* data, size_t n) override {
    size_t done = 0;
    while (done < n) {
      ssize_t r = ::pwrite(fd_, data + done, n - done,
                           static_cast<off_t>(offset + done));
      if (r < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("pwrite", path_);
      }
      done += static_cast<size_t>(r);
    }
    return Status::OK();
  }

  Result<uint64_t> Size() const override {
    struct stat st;
    if (::fstat(fd_, &st) != 0) return ErrnoStatus("fstat", path_);
    return static_cast<uint64_t>(st.st_size);
  }

  Status Truncate(uint64_t size) override {
    if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
      return ErrnoStatus("ftruncate", path_);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) return ErrnoStatus("fsync", path_);
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixEnv : public Env {
 public:
  Result<std::unique_ptr<RandomRWFile>> OpenOrCreate(
      const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd < 0) return ErrnoStatus("open", path);
    return std::unique_ptr<RandomRWFile>(new PosixFile(fd, path));
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  Status DeleteFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) return ErrnoStatus("unlink", path);
    return Status::OK();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus("rename", from);
    }
    return Status::OK();
  }

  Status CreateDirIfMissing(const std::string& path) override {
    if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
      return ErrnoStatus("mkdir", path);
    }
    return Status::OK();
  }

  Result<std::vector<std::string>> ListDir(const std::string& path) override {
    DIR* d = ::opendir(path.c_str());
    if (d == nullptr) return ErrnoStatus("opendir", path);
    std::vector<std::string> names;
    while (struct dirent* e = ::readdir(d)) {
      std::string name = e->d_name;
      if (name != "." && name != "..") names.push_back(std::move(name));
    }
    ::closedir(d);
    return names;
  }

  Result<std::string> ReadFileToString(const std::string& path) override {
    TDB_ASSIGN_OR_RETURN(auto file, OpenOrCreate(path));
    TDB_ASSIGN_OR_RETURN(uint64_t size, file->Size());
    std::string out(size, '\0');
    if (size > 0) {
      TDB_RETURN_NOT_OK(
          file->Read(0, size, reinterpret_cast<uint8_t*>(out.data())));
    }
    return out;
  }

  Status WriteStringToFile(const std::string& path,
                           const std::string& data) override {
    TDB_ASSIGN_OR_RETURN(auto file, OpenOrCreate(path));
    TDB_RETURN_NOT_OK(file->Truncate(0));
    TDB_RETURN_NOT_OK(file->Write(
        0, reinterpret_cast<const uint8_t*>(data.data()), data.size()));
    return file->Sync();
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv();
  return env;
}

/// In-memory file: a shared byte vector guarded by the owning env's mutex.
class MemFile : public RandomRWFile {
 public:
  MemFile(MemEnv* env, std::shared_ptr<std::vector<uint8_t>> data)
      : env_(env), data_(std::move(data)) {}

  Status Read(uint64_t offset, size_t n, uint8_t* buf) const override {
    std::lock_guard<std::mutex> lock(env_->mu_);
    if (offset + n > data_->size()) {
      return Status::IOError("read past EOF in memory file");
    }
    std::memcpy(buf, data_->data() + offset, n);
    return Status::OK();
  }

  Status Write(uint64_t offset, const uint8_t* data, size_t n) override {
    std::lock_guard<std::mutex> lock(env_->mu_);
    if (offset + n > data_->size()) data_->resize(offset + n, 0);
    std::memcpy(data_->data() + offset, data, n);
    return Status::OK();
  }

  Result<uint64_t> Size() const override {
    std::lock_guard<std::mutex> lock(env_->mu_);
    return static_cast<uint64_t>(data_->size());
  }

  Status Truncate(uint64_t size) override {
    std::lock_guard<std::mutex> lock(env_->mu_);
    data_->resize(size, 0);
    return Status::OK();
  }

  Status Sync() override { return Status::OK(); }

 private:
  MemEnv* env_;
  std::shared_ptr<std::vector<uint8_t>> data_;
};

Result<std::unique_ptr<RandomRWFile>> MemEnv::OpenOrCreate(
    const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) {
    it = files_.emplace(path, std::make_shared<std::vector<uint8_t>>()).first;
  }
  return std::unique_ptr<RandomRWFile>(new MemFile(this, it->second));
}

bool MemEnv::FileExists(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(path) > 0;
}

Status MemEnv::DeleteFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (files_.erase(path) == 0) {
    return Status::NotFound("no memory file '" + path + "'");
  }
  return Status::OK();
}

Status MemEnv::RenameFile(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(from);
  if (it == files_.end()) {
    return Status::NotFound("no memory file '" + from + "'");
  }
  files_[to] = it->second;
  files_.erase(it);
  return Status::OK();
}

Status MemEnv::CreateDirIfMissing(const std::string&) { return Status::OK(); }

Result<std::vector<std::string>> MemEnv::ListDir(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string prefix = path;
  if (!prefix.empty() && prefix.back() != '/') prefix += '/';
  std::vector<std::string> names;
  for (const auto& [name, _] : files_) {
    if (StartsWith(name, prefix)) {
      std::string rest = name.substr(prefix.size());
      if (rest.find('/') == std::string::npos) names.push_back(rest);
    }
  }
  return names;
}

Result<std::string> MemEnv::ReadFileToString(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound("no memory file '" + path + "'");
  }
  return std::string(it->second->begin(), it->second->end());
}

Status MemEnv::WriteStringToFile(const std::string& path,
                                 const std::string& data) {
  std::lock_guard<std::mutex> lock(mu_);
  files_[path] = std::make_shared<std::vector<uint8_t>>(data.begin(),
                                                        data.end());
  return Status::OK();
}

}  // namespace tdb
