#include "env/fault_env.h"

#include <algorithm>

namespace tdb {

/// RandomRWFile wrapper routing every mutation through FaultEnv::NextOp.
class FaultFile : public RandomRWFile {
 public:
  FaultFile(FaultEnv* env, std::unique_ptr<RandomRWFile> base)
      : env_(env), base_(std::move(base)) {}

  Status Read(uint64_t offset, size_t n, uint8_t* buf) const override {
    return base_->Read(offset, n, buf);
  }

  Status Write(uint64_t offset, const uint8_t* data, size_t n) override {
    FaultEnv::Decision d = env_->NextOp(/*is_write=*/true, /*is_sync=*/false);
    if (!d.fail) return base_->Write(offset, data, n);
    if (d.partial_bytes != UINT64_MAX && d.partial_bytes > 0) {
      size_t keep = static_cast<size_t>(
          std::min<uint64_t>(d.partial_bytes, static_cast<uint64_t>(n)));
      (void)base_->Write(offset, data, keep);  // the torn prefix lands
    }
    return FaultEnv::InjectedError();
  }

  Result<uint64_t> Size() const override { return base_->Size(); }

  Status Truncate(uint64_t size) override {
    FaultEnv::Decision d = env_->NextOp(/*is_write=*/false, /*is_sync=*/false);
    if (d.fail) return FaultEnv::InjectedError();
    return base_->Truncate(size);
  }

  Status Sync() override {
    FaultEnv::Decision d = env_->NextOp(/*is_write=*/false, /*is_sync=*/true);
    if (d.fail) return FaultEnv::InjectedError();
    return base_->Sync();
  }

 private:
  FaultEnv* env_;
  std::unique_ptr<RandomRWFile> base_;
};

void FaultEnv::CrashAt(uint64_t k) {
  std::lock_guard<std::mutex> lock(mu_);
  crash_at_ = k;
}

void FaultEnv::set_torn_write_bytes(uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  torn_write_bytes_ = n;
}

void FaultEnv::FailSyncAt(uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_sync_at_ = n;
}

void FaultEnv::FailWriteShort(uint64_t n, uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_write_at_ = n;
  fail_write_bytes_ = bytes;
}

void FaultEnv::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  ops_ = syncs_ = writes_ = 0;
  crash_at_ = UINT64_MAX;
  torn_write_bytes_ = UINT64_MAX;
  fail_sync_at_ = fail_write_at_ = fail_write_bytes_ = 0;
  crashed_ = false;
}

uint64_t FaultEnv::op_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ops_;
}

bool FaultEnv::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

FaultEnv::Decision FaultEnv::NextOp(bool is_write, bool is_sync) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t index = ops_++;
  if (is_write) ++writes_;
  if (is_sync) ++syncs_;
  Decision d;
  if (index >= crash_at_) {
    d.fail = true;
    // Only the crashing operation itself may tear; once frozen, nothing
    // else reaches the base env at all.
    if (!crashed_ && is_write && torn_write_bytes_ != UINT64_MAX) {
      d.partial_bytes = torn_write_bytes_;
    }
    crashed_ = true;
    return d;
  }
  if (is_sync && fail_sync_at_ != 0 && syncs_ == fail_sync_at_) {
    d.fail = true;
    return d;
  }
  if (is_write && fail_write_at_ != 0 && writes_ == fail_write_at_) {
    d.fail = true;
    d.partial_bytes = fail_write_bytes_;
    return d;
  }
  return d;
}

Result<std::unique_ptr<RandomRWFile>> FaultEnv::OpenOrCreate(
    const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Creating a file mutates the image; opening an existing one does not.
    if (crashed_ && !base_->FileExists(path)) return InjectedError();
  }
  TDB_ASSIGN_OR_RETURN(auto base, base_->OpenOrCreate(path));
  return std::unique_ptr<RandomRWFile>(new FaultFile(this, std::move(base)));
}

bool FaultEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Status FaultEnv::DeleteFile(const std::string& path) {
  Decision d = NextOp(/*is_write=*/false, /*is_sync=*/false);
  if (d.fail) return InjectedError();
  return base_->DeleteFile(path);
}

Status FaultEnv::RenameFile(const std::string& from, const std::string& to) {
  Decision d = NextOp(/*is_write=*/false, /*is_sync=*/false);
  if (d.fail) return InjectedError();
  return base_->RenameFile(from, to);
}

Status FaultEnv::CreateDirIfMissing(const std::string& path) {
  return base_->CreateDirIfMissing(path);
}

Result<std::vector<std::string>> FaultEnv::ListDir(const std::string& path) {
  return base_->ListDir(path);
}

Result<std::string> FaultEnv::ReadFileToString(const std::string& path) {
  return base_->ReadFileToString(path);
}

Status FaultEnv::WriteStringToFile(const std::string& path,
                                   const std::string& data) {
  Decision d = NextOp(/*is_write=*/true, /*is_sync=*/false);
  if (!d.fail) return base_->WriteStringToFile(path, data);
  if (d.partial_bytes != UINT64_MAX) {
    // A torn whole-file rewrite leaves only the prefix, exactly as a crash
    // between truncate and the final write would.
    size_t keep = static_cast<size_t>(std::min<uint64_t>(
        d.partial_bytes, static_cast<uint64_t>(data.size())));
    (void)base_->WriteStringToFile(path, data.substr(0, keep));
  }
  return InjectedError();
}

}  // namespace tdb
