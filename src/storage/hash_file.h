#ifndef CHRONOQUEL_STORAGE_HASH_FILE_H_
#define CHRONOQUEL_STORAGE_HASH_FILE_H_

#include <memory>

#include "storage/storage_file.h"

namespace tdb {

/// Static hashing with overflow chains — Ingres's `modify ... to hash`
/// organization.  The bucket count is fixed at creation from the expected
/// tuple count and the fill factor; every insert for a key goes to the
/// key's bucket chain, so all versions of a tuple share one chain and the
/// chain "ever lengthens" as the update count grows (the paper's central
/// performance effect).
class HashFile : public StorageFile {
 public:
  /// Formats a fresh file with `nbuckets` empty primary pages.
  static Result<std::unique_ptr<HashFile>> Create(std::unique_ptr<Pager> pager,
                                                  const RecordLayout& layout,
                                                  uint32_t nbuckets);

  /// Opens an existing file created with the same `nbuckets`.
  static Result<std::unique_ptr<HashFile>> Open(std::unique_ptr<Pager> pager,
                                                const RecordLayout& layout,
                                                uint32_t nbuckets);

  /// Bucket count for `ntuples` records at `fillfactor` percent loading —
  /// ceil(ntuples / (capacity * fillfactor/100)).
  static uint32_t BucketsFor(uint64_t ntuples, uint16_t record_size,
                             uint32_t usable,
                             int fillfactor);

  Organization org() const override { return Organization::kHash; }
  uint32_t nbuckets() const { return nbuckets_; }

  /// Bucket a key hashes to.  Integer (and time) keys use division hashing
  /// (value mod buckets) like Ingres, so dense key ranges spread evenly;
  /// other types hash their bytes first.
  uint32_t BucketOf(const Value& key) const {
    uint64_t h;
    if (key.is_integer()) {
      h = static_cast<uint64_t>(key.AsInt());
    } else if (key.type() == TypeId::kTime) {
      h = static_cast<uint64_t>(
          static_cast<uint32_t>(key.AsTime().seconds()));
    } else {
      h = key.Hash();
    }
    return static_cast<uint32_t>(h % nbuckets_);
  }

  Status Insert(const uint8_t* rec, size_t size, Tid* tid) override;
  Status UpdateInPlace(const Tid& tid, const uint8_t* rec,
                       size_t size) override;
  Status Erase(const Tid& tid) override;
  Result<std::unique_ptr<Cursor>> Scan() override;
  Result<std::unique_ptr<Cursor>> ScanKey(const Value& key) override;
  Result<std::vector<uint8_t>> Fetch(const Tid& tid) override;
  Pager* pager() override { return pager_.get(); }

  /// Category of a page: primary bucket pages are data, the rest overflow.
  IoCategory CategoryOf(uint32_t pno) const {
    return pno < nbuckets_ ? IoCategory::kData : IoCategory::kOverflow;
  }

  bool LinearScan() const override { return true; }
  IoCategory ScanCategory(uint32_t pno) const override {
    return CategoryOf(pno);
  }

 private:
  HashFile(std::unique_ptr<Pager> pager, const RecordLayout& layout,
           uint32_t nbuckets)
      : StorageFile(layout), pager_(std::move(pager)), nbuckets_(nbuckets) {}

  std::unique_ptr<Pager> pager_;
  uint32_t nbuckets_;
};

}  // namespace tdb

#endif  // CHRONOQUEL_STORAGE_HASH_FILE_H_
