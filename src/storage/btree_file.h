#ifndef CHRONOQUEL_STORAGE_BTREE_FILE_H_
#define CHRONOQUEL_STORAGE_BTREE_FILE_H_

#include <memory>

#include "storage/storage_file.h"

namespace tdb {

/// A B+-tree organization (`modify R to btree on k`) — the Section 6
/// extension the paper contemplates: an access method that "adapts to
/// dynamic growth better" than static hashing / ISAM, at the price of
/// "complex algorithms and significant overhead to maintain certain
/// structures as new records are added".
///
/// Layout: the root lives permanently at page 0 (so no metadata beyond the
/// organization tag is needed).  Internal nodes hold (separator key, child)
/// entries; leaves are bitmap-slotted record pages linked left-to-right.
/// When every record of a full leaf shares one key — the multi-version
/// pile-up of temporal relations — the leaf cannot split and grows a
/// per-leaf overflow chain instead, reproducing exactly the degradation the
/// paper predicts for B-trees on version-heavy data (see
/// `bench/ablation_btree`).
///
/// Record slots are stable under inserts into non-full leaves, but SPLITS
/// MOVE RECORDS (their Tids change); mutators that capture Tids before
/// triggering inserts must re-locate records afterwards (the DML executor
/// does).  Deletes clear slots without rebalancing.
class BtreeFile : public StorageFile {
 public:
  /// Formats a fresh file with an empty root leaf.
  static Result<std::unique_ptr<BtreeFile>> Create(
      std::unique_ptr<Pager> pager, const RecordLayout& layout);

  /// Opens an existing tree.
  static Result<std::unique_ptr<BtreeFile>> Open(std::unique_ptr<Pager> pager,
                                                 const RecordLayout& layout);

  Organization org() const override { return Organization::kBtree; }

  Status Insert(const uint8_t* rec, size_t size, Tid* tid) override;
  Status UpdateInPlace(const Tid& tid, const uint8_t* rec,
                       size_t size) override;
  Status Erase(const Tid& tid) override;

  /// All records in key order: leftmost leaf, then the leaf chain (each
  /// leaf's overflow pages included).  Internal nodes are not touched.
  Result<std::unique_ptr<Cursor>> Scan() override;

  /// Root-to-leaf descent, then the covering leaf and its overflow chain.
  Result<std::unique_ptr<Cursor>> ScanKey(const Value& key) override;

  /// Descent to the first covering leaf, then the leaf chain until the
  /// range is exhausted.
  Result<std::unique_ptr<Cursor>> ScanRange(
      const std::optional<Value>& lo, bool lo_inclusive,
      const std::optional<Value>& hi, bool hi_inclusive) override;

  Result<std::vector<uint8_t>> Fetch(const Tid& tid) override;
  Pager* pager() override { return pager_.get(); }

  /// Tree height (1 = root is a leaf); walks the leftmost path.
  Result<int> Height();

 private:
  BtreeFile(std::unique_ptr<Pager> pager, const RecordLayout& layout)
      : StorageFile(layout), pager_(std::move(pager)) {}

  /// Descends from the root to the leaf covering `key`.
  Result<uint32_t> FindLeaf(const Value& key);
  /// Leftmost leaf of the tree.
  Result<uint32_t> LeftmostLeaf();

  /// Recursive insert; on split of `pno`, returns the separator key bytes
  /// and the new right sibling for the caller to install in the parent.
  struct SplitResult {
    bool split = false;
    std::vector<uint8_t> sep_key;
    uint32_t right = 0;
  };
  Result<SplitResult> InsertRec(uint32_t pno, const uint8_t* rec, Tid* tid);

  /// Splits the full leaf `pno` (which has >1 distinct key), moving records
  /// >= the median distinct key to a fresh right sibling.
  Result<SplitResult> SplitLeaf(uint32_t pno);

  std::unique_ptr<Pager> pager_;
};

}  // namespace tdb

#endif  // CHRONOQUEL_STORAGE_BTREE_FILE_H_
