#ifndef CHRONOQUEL_STORAGE_ISAM_FILE_H_
#define CHRONOQUEL_STORAGE_ISAM_FILE_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/storage_file.h"

namespace tdb {

/// Shape of an ISAM file's static directory, persisted in the catalog.
/// Disk layout of the file:
///   pages [0, data_pages)                     sorted primary data pages
///   pages [data_pages, data_pages+dir_total)  directory, level 0 first,
///                                             root (single page) last
///   pages beyond                              overflow pages
struct IsamMeta {
  uint32_t data_pages = 0;
  /// Pages per directory level, bottom (pointing at data pages) first.
  /// The last level always has exactly one page (the root).
  std::vector<uint32_t> level_counts;

  uint32_t dir_total() const {
    uint32_t t = 0;
    for (uint32_t c : level_counts) t += c;
    return t;
  }

  std::string Serialize() const;
  static Result<IsamMeta> Parse(std::string_view text);
};

/// Ingres-style ISAM: records sorted by key into fixed primary pages at
/// `modify` time, a static multi-level directory of (first key, page)
/// entries, and per-data-page overflow chains for records added afterwards.
/// Like hashing, the directory never reorganizes, so a growing relation
/// degrades via lengthening overflow chains (Section 6: "Reorganization
/// does not help ... because all versions of a tuple share the same key").
class IsamFile : public StorageFile {
 public:
  /// Directory entries per page: key bytes + 4-byte page number, packed
  /// with no page header (an i4 key gives the fanout of 128 implied by the
  /// paper's directory sizes).
  static uint32_t Fanout(const RecordLayout& layout,
                         uint32_t usable = kPageSize) {
    return usable / (layout.key_width + 4u);
  }

  /// Rebuilds the file from `records` (any order; sorted internally) at the
  /// given fill factor and returns the opened file; `*meta` receives the
  /// directory shape for the catalog.
  static Result<std::unique_ptr<IsamFile>> BulkLoad(
      std::unique_ptr<Pager> pager, const RecordLayout& layout,
      std::vector<std::vector<uint8_t>> records, int fillfactor,
      IsamMeta* meta);

  /// Opens an existing file with a known directory shape.
  static Result<std::unique_ptr<IsamFile>> Open(std::unique_ptr<Pager> pager,
                                                const RecordLayout& layout,
                                                const IsamMeta& meta);

  Organization org() const override { return Organization::kIsam; }
  const IsamMeta& meta() const { return meta_; }

  Status Insert(const uint8_t* rec, size_t size, Tid* tid) override;
  Status UpdateInPlace(const Tid& tid, const uint8_t* rec,
                       size_t size) override;
  Status Erase(const Tid& tid) override;

  /// Sequential scan: primary data pages in key order, each followed by its
  /// overflow chain.  Directory pages are never touched (a Quel sequential
  /// scan of an ISAM file reads data + overflow only).
  Result<std::unique_ptr<Cursor>> Scan() override;

  /// Directory traversal + full read of the covering page group (the data
  /// page and its overflow chain), filtered to records equal to `key`.
  /// Implemented as the degenerate range [key, key] so that bulk-loaded
  /// multi-version keys are always found.
  Result<std::unique_ptr<Cursor>> ScanKey(const Value& key) override;

  /// Range scan: directory traversal to the first covering data page, then
  /// data pages (and their chains) in key order until the range is passed.
  Result<std::unique_ptr<Cursor>> ScanRange(
      const std::optional<Value>& lo, bool lo_inclusive,
      const std::optional<Value>& hi, bool hi_inclusive) override;

  Result<std::vector<uint8_t>> Fetch(const Tid& tid) override;
  Pager* pager() override { return pager_.get(); }

  IoCategory CategoryOf(uint32_t pno) const {
    if (pno < meta_.data_pages) return IoCategory::kData;
    if (pno < meta_.data_pages + meta_.dir_total()) {
      return IoCategory::kDirectory;
    }
    return IoCategory::kOverflow;
  }

  /// Resolves the primary data page whose key range covers `key` by walking
  /// the directory root-to-leaf (the reads are the query's *fixed* cost).
  Result<uint32_t> LookupDataPage(const Value& key);

 private:
  IsamFile(std::unique_ptr<Pager> pager, const RecordLayout& layout,
           IsamMeta meta)
      : StorageFile(layout), pager_(std::move(pager)), meta_(std::move(meta)) {}

  /// First page number of directory level `level` (0 = bottom).
  uint32_t LevelStart(size_t level) const;
  /// Number of entries across directory level `level`.
  uint32_t LevelEntries(size_t level) const;

  std::unique_ptr<Pager> pager_;
  IsamMeta meta_;
};

}  // namespace tdb

#endif  // CHRONOQUEL_STORAGE_ISAM_FILE_H_
