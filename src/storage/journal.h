#ifndef CHRONOQUEL_STORAGE_JOURNAL_H_
#define CHRONOQUEL_STORAGE_JOURNAL_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "env/env.h"
#include "storage/page.h"
#include "util/status.h"

namespace tdb {

namespace obs {
class Counter;
class MetricsRegistry;
}  // namespace obs

/// How much crash protection the database applies to mutating statements.
///
/// The paper's page-I/O metric is measured with durability OFF (the
/// default): the journal performs no I/O and the accounting to user
/// relations is byte-identical to the seed benchmarks.
enum class DurabilityMode : uint8_t {
  /// No journal.  A crash mid-statement can tear pages.  Benchmark default.
  kOff,
  /// Pre-image journal without fsync: every statement is atomic across
  /// process crashes (kill -9), but not across power loss.
  kJournal,
  /// Journal plus ordered fsyncs: the journal is synced before any data
  /// page is overwritten in place and the data files are synced before the
  /// commit mark, so statements are atomic across power loss too.
  kJournalSync,
};

/// "off", "journal", or "journal+sync".
const char* DurabilityModeName(DurabilityMode mode);

/// CRC-32 (IEEE 802.3 polynomial) of `n` bytes, seedable for chaining.
uint32_t Crc32(const uint8_t* data, size_t n, uint32_t seed = 0);

/// Write-ahead *undo* journal for one database directory.
///
/// Protocol (one batch per statement):
///   1. Begin() empties the journal.
///   2. Before any byte of database state is overwritten in place, the
///      owner of that state calls a Before*() hook and the journal appends
///      the *pre-image* — the first time only, per page / file per batch:
///        * BeforePageWrite: the 1024-byte on-disk page payload,
///        * BeforeTruncate (shrink) / BeforeDeleteFile / BeforeFileRewrite:
///          the whole file,
///        * any first mutation: the file's batch-start size (so rollback
///          can truncate away pages appended mid-batch, or delete files
///          created mid-batch).
///      In kJournalSync mode the appended records are fsynced before the
///      hook returns, so the pre-image always reaches stable storage
///      before the overwrite it protects.
///   3. Commit() appends a commit-mark record (after the caller has
///      flushed — and in kJournalSync synced — the data files) and then
///      empties the journal.
///   4. Rollback() re-applies the batch's pre-images in reverse order,
///      returning every file to its batch-start image.
///
/// Recover() reads a journal left behind by a crash: a journal that is
/// empty or ends with a commit mark is discarded (the statement committed);
/// anything else is rolled back.  A torn tail (short or CRC-mismatched
/// record) marks the exact point the crash interrupted an append; since
/// every append precedes the write it protects, the torn record's data
/// write never happened and the tail is simply ignored.  Recovery only
/// writes batch-start images, so running it any number of times — including
/// crashing *during* recovery and recovering again — converges to the same
/// state (idempotence).
class Journal {
 public:
  /// The journal file of a database directory.
  static std::string PathFor(const std::string& dir) {
    return dir + "/journal";
  }

  /// Opens (creating if missing) the journal for `dir`.  Call Recover()
  /// first: Open() assumes any previous batch has been resolved and
  /// truncates leftovers.
  static Result<std::unique_ptr<Journal>> Open(Env* env,
                                               const std::string& dir,
                                               DurabilityMode mode);

  /// Rolls back (or discards, if committed) whatever a crashed session left
  /// in `dir`'s journal.  A no-op when no journal file exists.
  static Status Recover(Env* env, const std::string& dir);

  DurabilityMode mode() const { return mode_; }

  /// True between a successful Begin() and the matching Commit()/Rollback().
  bool active() const { return active_; }

  /// True until a rollback fails (leaving disk state only recoverable by
  /// Recover() on reopen).
  bool healthy() const { return healthy_; }

  /// Wires (or unwires, with nullptr) observability counters:
  /// journal.{batches,commits,rollbacks,records,pre_image_bytes,replay_ops}.
  void set_metrics(obs::MetricsRegistry* metrics);

  /// Page size BeforePageWrite captures (the database's resolved storage
  /// page size).  Replay needs no setter: each kPageImage record carries
  /// its payload length, so recovery derives offsets from the record.
  void set_page_size(uint32_t page_size) { page_size_ = page_size; }
  uint32_t page_size() const { return page_size_; }

  /// Starts a statement batch: empties the journal and forgets per-batch
  /// dedup state.
  Status Begin();

  /// Seals the batch: appends the commit mark, syncs it (kJournalSync), and
  /// empties the journal.  The caller must have flushed (and, in
  /// kJournalSync, synced) all data files first.
  Status Commit();

  /// Undoes the batch on disk by applying its pre-images in reverse.  The
  /// caller must discard all in-memory state derived from the rolled-back
  /// files (buffer frames, open relations, the catalog image).
  Status Rollback();

  // --- group commit -------------------------------------------------------
  //
  // The concurrent service layer serializes whole batches (Begin .. seal)
  // under one writer mutex but moves the commit-mark fsync OUT of that
  // critical section, so N overlapping kJournalSync commits share one
  // journal fsync instead of paying one each.  Protocol per writer:
  //
  //   lock   -> Begin(); execute; flush + sync data files; CommitGroup()
  //   unlock -> WaitDurable(ticket)   // durability point for the client
  //
  // Data files MUST be synced before CommitGroup appends the mark: a
  // durable mark asserts the batch's data is durable too.  The journal is
  // not truncated while sealed-but-unsynced marks remain; the next Begin()
  // reclaims the file once every sealed batch is covered by a sync.

  /// Seals the batch like Commit() but defers the commit-mark fsync and the
  /// truncate.  Returns a ticket for WaitDurable().  An empty (read-only)
  /// batch returns an already-durable ticket.
  Result<uint64_t> CommitGroup();

  /// Blocks until every batch sealed at or before `ticket` has its commit
  /// mark on stable storage.  One caller is elected to fsync on behalf of
  /// all batches sealed so far (counted by journal.group_syncs); the rest
  /// return without touching the file.  No-op below kJournalSync.
  Status WaitDurable(uint64_t ticket);

  /// Group-commit window: how long an elected leader waits before its
  /// fsync so concurrent committers can land marks and share it.  The
  /// fsync itself dominates real devices; the window matters on fast
  /// storage where commits would otherwise each pay their own sync.
  void set_group_window_micros(int micros) { group_window_micros_ = micros; }

  // --- pre-image hooks (no-ops outside an active batch) -------------------

  /// Called by the pager before overwriting page `pno` of `path` in place.
  /// Reads the pre-image through `file` without touching any I/O counters.
  Status BeforePageWrite(const std::string& path, RandomRWFile* file,
                         uint32_t pno);

  /// Called before `path` is truncated to `new_size` (either direction;
  /// a shrink captures the whole current file).
  Status BeforeTruncate(const std::string& path, RandomRWFile* file,
                        uint64_t new_size);

  /// Called before `path` is rewritten wholesale (catalog, clock).
  Status BeforeFileRewrite(const std::string& path);

  /// Called before `path` is deleted.
  Status BeforeDeleteFile(const std::string& path);

 private:
  enum RecordType : uint8_t {
    kFileSize = 1,   // batch-start size of a file (0/absent when !existed)
    kPageImage = 2,  // pre-image of one page (length-prefixed payload)
    kFileImage = 3,  // pre-image of a whole file
    kCommit = 4,     // batch committed; nothing to undo
  };

  struct Record {
    RecordType type = kCommit;
    std::string path;
    bool existed = true;     // kFileSize / kFileImage
    uint64_t size = 0;       // kFileSize: batch-start size
    uint32_t pno = 0;        // kPageImage
    std::vector<uint8_t> payload;  // kPageImage / kFileImage bytes
  };

  /// Per-file dedup state for the active batch.
  struct FileState {
    bool whole_file_captured = false;
    uint64_t batch_start_size = 0;
    bool existed = false;
    std::set<uint32_t> pages_logged;
  };

  Journal(Env* env, std::string path, std::unique_ptr<RandomRWFile> file,
          DurabilityMode mode)
      : env_(env), path_(std::move(path)), file_(std::move(file)),
        mode_(mode) {}

  /// Logs the batch-start size of `path` once per batch and returns its
  /// dedup state.  `file` may be null (size probed through the env).
  Result<FileState*> EnsureFileLogged(const std::string& path,
                                      RandomRWFile* file);

  /// Captures the whole current content of `path` once per batch.
  Status CaptureWholeFile(const std::string& path, FileState* fs);

  Status AppendRecord(const Record& rec);
  Status SyncPending();

  static std::vector<uint8_t> EncodeRecord(const Record& rec);
  /// Decodes the record at `*offset`, advancing it.  Returns false on a
  /// torn / corrupt tail (parsing must stop there).
  static bool DecodeRecord(const std::vector<uint8_t>& buf, size_t* offset,
                           Record* out);

  /// Applies `records` (a batch's pre-images) in reverse order through
  /// `env`, then syncs every touched file.
  static Status ApplyReversed(Env* env, const std::vector<Record>& records);

  Env* env_;
  std::string path_;
  std::unique_ptr<RandomRWFile> file_;
  DurabilityMode mode_;
  uint32_t page_size_ = kPageSize;
  bool active_ = false;
  bool healthy_ = true;
  bool sync_pending_ = false;
  uint64_t write_offset_ = 0;
  /// File offset where the active batch's first record starts.  0 in the
  /// single-session protocol (Begin truncates); non-zero when sealed
  /// batches from the group-commit protocol still precede it.
  uint64_t batch_start_offset_ = 0;
  /// Batches sealed with a commit mark / batches whose mark reached stable
  /// storage.  Begin/Commit/CommitGroup run under the owner's writer mutex;
  /// WaitDurable runs outside it, hence atomics plus a sync leader mutex.
  std::atomic<uint64_t> committed_seq_{0};
  std::atomic<uint64_t> synced_seq_{0};
  std::mutex sync_mu_;
  std::atomic<int> group_window_micros_{0};
  std::vector<Record> batch_;  // in-memory mirror for in-session rollback
  std::map<std::string, FileState> files_;

  // Resolved once by set_metrics(); all null when metrics are disabled.
  obs::Counter* m_batches_ = nullptr;
  obs::Counter* m_commits_ = nullptr;
  obs::Counter* m_rollbacks_ = nullptr;
  obs::Counter* m_records_ = nullptr;
  obs::Counter* m_pre_image_bytes_ = nullptr;
  obs::Counter* m_replay_ops_ = nullptr;
  obs::Counter* m_group_syncs_ = nullptr;
};

}  // namespace tdb

#endif  // CHRONOQUEL_STORAGE_JOURNAL_H_
