#include "storage/isam_file.h"

#include <algorithm>
#include <cstring>

#include "storage/chain_cursor.h"
#include "util/stringx.h"

namespace tdb {

std::string IsamMeta::Serialize() const {
  std::string out = StrPrintf("%u", data_pages);
  for (uint32_t c : level_counts) out += StrPrintf(":%u", c);
  return out;
}

Result<IsamMeta> IsamMeta::Parse(std::string_view text) {
  IsamMeta meta;
  std::vector<std::string> parts = Split(text, ':');
  if (parts.empty()) return Status::Corruption("empty isam meta");
  int64_t v = 0;
  if (!ParseInt64(parts[0], &v) || v < 0) {
    return Status::Corruption("bad isam data page count");
  }
  meta.data_pages = static_cast<uint32_t>(v);
  for (size_t i = 1; i < parts.size(); ++i) {
    if (!ParseInt64(parts[i], &v) || v <= 0) {
      return Status::Corruption("bad isam level count");
    }
    meta.level_counts.push_back(static_cast<uint32_t>(v));
  }
  if (meta.level_counts.empty() || meta.level_counts.back() != 1) {
    return Status::Corruption("isam meta lacks a root level");
  }
  return meta;
}

namespace {

/// Writes directory entry `i` of a raw (header-less) directory page.
void PutDirEntry(uint8_t* page, uint32_t entry_size, uint32_t i,
                 const uint8_t* key, uint32_t key_width, uint32_t pno) {
  uint8_t* p = page + i * entry_size;
  std::memcpy(p, key, key_width);
  std::memcpy(p + key_width, &pno, 4);
}

uint32_t DirEntryPage(const uint8_t* page, uint32_t entry_size, uint32_t i,
                      uint32_t key_width) {
  uint32_t pno;
  std::memcpy(&pno, page + i * entry_size + key_width, 4);
  return pno;
}

const uint8_t* DirEntryKey(const uint8_t* page, uint32_t entry_size,
                           uint32_t i) {
  return page + i * entry_size;
}

/// Primary data pages in order, each followed by its overflow chain,
/// optionally restricted to a key range.
class IsamScanCursor : public Cursor {
 public:
  /// Iterates primary pages [first_primary, last_primary] and their
  /// chains.  `last_primary` comes from a directory lookup of the upper
  /// bound, so a keyed probe never reads past its covering page group.
  IsamScanCursor(IsamFile* file, Pager* pager, const RecordLayout& layout,
                 uint32_t first_primary, uint32_t last_primary,
                 uint32_t data_pages)
      : file_(file),
        pager_(pager),
        layout_(layout),
        data_pages_(data_pages),
        primary_(first_primary),
        last_primary_(last_primary) {}

  void SetBounds(std::optional<Value> lo, bool lo_inclusive,
                 std::optional<Value> hi, bool hi_inclusive) {
    lo_ = std::move(lo);
    lo_inclusive_ = lo_inclusive;
    hi_ = std::move(hi);
    hi_inclusive_ = hi_inclusive;
  }

  Result<bool> Next() override {
    while (true) {
      if (page_ == kNoPage) {
        // Move on to the next primary page.  If the previous primary page
        // (or its chain) held any record above the upper bound, the pages
        // beyond — all of whose records sort after this page's key range —
        // cannot contribute, so the walk stops without reading them.
        if (primary_ >= data_pages_ || primary_ > last_primary_ ||
            past_range_) {
          return false;
        }
        page_ = primary_++;
        slot_ = 0;
      }
      TDB_ASSIGN_OR_RETURN(uint8_t* frame,
                           pager_->ReadPage(page_, file_->CategoryOf(page_)));
      Page page(frame, layout_.record_size, pager_->usable_size());
      while (slot_ < page.capacity()) {
        uint16_t s = slot_++;
        if (!page.SlotUsed(s)) continue;
        if (lo_.has_value() || hi_.has_value()) {
          Value key = layout_.KeyOf(page.RecordAt(s));
          if (hi_.has_value()) {
            TDB_ASSIGN_OR_RETURN(int c, Value::Compare(key, *hi_));
            if (c > 0 || (c == 0 && !hi_inclusive_)) {
              past_range_ = true;  // later primary pages are all larger
              continue;
            }
          }
          if (lo_.has_value()) {
            TDB_ASSIGN_OR_RETURN(int c, Value::Compare(key, *lo_));
            if (c < 0 || (c == 0 && !lo_inclusive_)) continue;
          }
        }
        record_.assign(page.RecordAt(s),
                       page.RecordAt(s) + layout_.record_size);
        tid_ = Tid{page_, s};
        return true;
      }
      page_ = page.next_overflow();
      slot_ = 0;
    }
  }

  Result<size_t> NextBatch(RecordBatch* batch, size_t max) override {
    // Same walk as Next() — primary pages then their chains, bounds checked
    // per record — but gathering zero-copy slices one page at a time.
    while (true) {
      if (page_ == kNoPage) {
        if (primary_ >= data_pages_ || primary_ > last_primary_ ||
            past_range_) {
          return 0;
        }
        page_ = primary_++;
        slot_ = 0;
      }
      TDB_ASSIGN_OR_RETURN(uint8_t* frame,
                           pager_->ReadPage(page_, file_->CategoryOf(page_)));
      Page page(frame, layout_.record_size, pager_->usable_size());
      size_t n = 0;
      while (slot_ < page.capacity() && n < max) {
        uint16_t s = slot_++;
        if (!page.SlotUsed(s)) continue;
        if (lo_.has_value() || hi_.has_value()) {
          Value key = layout_.KeyOf(page.RecordAt(s));
          if (hi_.has_value()) {
            TDB_ASSIGN_OR_RETURN(int c, Value::Compare(key, *hi_));
            if (c > 0 || (c == 0 && !hi_inclusive_)) {
              past_range_ = true;  // later primary pages are all larger
              continue;
            }
          }
          if (lo_.has_value()) {
            TDB_ASSIGN_OR_RETURN(int c, Value::Compare(key, *lo_));
            if (c < 0 || (c == 0 && !lo_inclusive_)) continue;
          }
        }
        batch->AppendSlice(page.RecordAt(s), Tid{page_, s});
        ++n;
      }
      if (slot_ >= page.capacity()) {
        page_ = page.next_overflow();
        slot_ = 0;
      }
      if (n > 0) {
        batch->SetSource(pager_);
        return n;
      }
    }
  }

 private:
  IsamFile* file_;
  Pager* pager_;
  RecordLayout layout_;
  uint32_t data_pages_;
  uint32_t primary_ = 0;       // next primary page to start
  uint32_t last_primary_ = 0;  // last primary page that may qualify
  uint32_t page_ = kNoPage;    // current page in the active chain
  uint16_t slot_ = 0;
  std::optional<Value> lo_;
  std::optional<Value> hi_;
  bool lo_inclusive_ = true;
  bool hi_inclusive_ = true;
  bool past_range_ = false;
};

}  // namespace

Result<std::unique_ptr<IsamFile>> IsamFile::BulkLoad(
    std::unique_ptr<Pager> pager, const RecordLayout& layout,
    std::vector<std::vector<uint8_t>> records, int fillfactor,
    IsamMeta* meta_out) {
  if (!layout.has_key()) return Status::Invalid("isam file needs a key");
  if (fillfactor < 1 || fillfactor > 100) {
    return Status::Invalid("fillfactor must be in [1,100]");
  }

  // Sort by key.
  Status sort_error = Status::OK();
  std::stable_sort(records.begin(), records.end(),
                   [&](const std::vector<uint8_t>& a,
                       const std::vector<uint8_t>& b) {
                     auto c = Value::Compare(layout.KeyOf(a.data()),
                                             layout.KeyOf(b.data()));
                     if (!c.ok()) {
                       sort_error = c.status();
                       return false;
                     }
                     return *c < 0;
                   });
  TDB_RETURN_NOT_OK(sort_error);

  uint16_t cap = Page::Capacity(layout.record_size, pager->usable_size());
  uint16_t per_page = static_cast<uint16_t>(cap * fillfactor / 100);
  if (per_page == 0) per_page = 1;

  TDB_RETURN_NOT_OK(pager->Reset());

  // --- pass 1: group records into primary pages ---
  // A primary page never STARTS in the middle of a key run: when a page
  // fills and the next record continues the key of the last one placed,
  // the run's remainder is diverted into the page's overflow chain.  This
  // keeps every key's versions inside one page group, so keyed access is
  // one directory descent plus one chain — also after a `modify` of a
  // relation that already carries many versions per key.
  struct Group {
    size_t begin = 0;          // first record of the primary page
    size_t primary_count = 0;  // records on the primary page
    size_t overflow_count = 0; // run continuation in the overflow chain
  };
  std::vector<Group> groups;
  {
    size_t i = 0;
    do {
      Group group;
      group.begin = i;
      while (group.primary_count < per_page && i < records.size()) {
        ++group.primary_count;
        ++i;
      }
      if (i > 0) {
        while (i < records.size() &&
               layout.KeyOf(records[i].data())
                   .Equals(layout.KeyOf(records[i - 1].data()))) {
          ++group.overflow_count;
          ++i;
        }
      }
      groups.push_back(group);
    } while (i < records.size());
  }

  // Overflow pages live after the directory; compute the directory size up
  // front so their page numbers are known while writing the primaries.
  IsamMeta meta;
  meta.data_pages = static_cast<uint32_t>(groups.size());
  {
    uint32_t entry_size = layout.key_width + 4;
    uint32_t fanout = pager->usable_size() / entry_size;
    uint32_t level = meta.data_pages;
    do {
      level = (level + fanout - 1) / fanout;
      meta.level_counts.push_back(level);
    } while (level > 1);
  }
  uint32_t next_overflow_page = meta.data_pages + meta.dir_total();

  // --- pass 2a: primary data pages ---
  std::vector<std::vector<uint8_t>> first_keys;  // first key per data page
  struct OverflowPlan {
    uint32_t first_page;
    size_t begin;
    size_t count;
  };
  std::vector<OverflowPlan> overflow_plans;
  for (const Group& group : groups) {
    TDB_ASSIGN_OR_RETURN(uint32_t pno, pager->AllocatePage(IoCategory::kData));
    TDB_ASSIGN_OR_RETURN(uint8_t* frame,
                         pager->ReadPage(pno, IoCategory::kData));
    Page page(frame, layout.record_size, pager->usable_size());
    page.Format();
    std::vector<uint8_t> first_key(layout.key_width, 0);
    for (size_t r = 0; r < group.primary_count; ++r) {
      const auto& rec = records[group.begin + r];
      if (r == 0) {
        std::memcpy(first_key.data(), rec.data() + layout.key_offset,
                    layout.key_width);
      }
      std::memcpy(page.RecordAt(static_cast<uint16_t>(r)), rec.data(),
                  layout.record_size);
      page.SetSlotUsed(static_cast<uint16_t>(r), true);
    }
    if (group.overflow_count > 0) {
      page.set_next_overflow(next_overflow_page);
      overflow_plans.push_back({next_overflow_page,
                                group.begin + group.primary_count,
                                group.overflow_count});
      next_overflow_page += static_cast<uint32_t>(
          (group.overflow_count + cap - 1) / cap);
    }
    pager->MarkDirty();
    first_keys.push_back(std::move(first_key));
  }

  // --- pass 2b: directory, bottom-up (recomputes the level counts; the
  // arithmetic matches the pass-1 estimate by construction) ---
  meta.level_counts.clear();
  uint32_t entry_size = layout.key_width + 4;
  uint32_t fanout = pager->usable_size() / entry_size;
  // Entries of the level being built: (first key, page number).
  std::vector<std::pair<std::vector<uint8_t>, uint32_t>> entries;
  for (uint32_t p = 0; p < meta.data_pages; ++p) {
    entries.emplace_back(first_keys[p], p);
  }
  while (true) {
    uint32_t level_pages = static_cast<uint32_t>(
        (entries.size() + fanout - 1) / fanout);
    std::vector<std::pair<std::vector<uint8_t>, uint32_t>> next;
    for (uint32_t dp = 0; dp < level_pages; ++dp) {
      TDB_ASSIGN_OR_RETURN(uint32_t pno,
                           pager->AllocatePage(IoCategory::kDirectory));
      TDB_ASSIGN_OR_RETURN(uint8_t* frame,
                           pager->ReadPage(pno, IoCategory::kDirectory));
      std::memset(frame, 0, pager->page_size());
      uint32_t base = dp * fanout;
      uint32_t n = std::min<uint32_t>(fanout,
                                      static_cast<uint32_t>(entries.size()) -
                                          base);
      for (uint32_t e = 0; e < n; ++e) {
        PutDirEntry(frame, entry_size, e, entries[base + e].first.data(),
                    layout.key_width, entries[base + e].second);
      }
      pager->MarkDirty();
      next.emplace_back(entries[base].first, pno);
    }
    meta.level_counts.push_back(level_pages);
    if (level_pages == 1) break;
    entries = std::move(next);
  }

  // --- pass 2c: overflow chains for runs diverted in pass 1 ---
  for (const OverflowPlan& plan : overflow_plans) {
    size_t remaining = plan.count;
    size_t next_record = plan.begin;
    uint32_t pno = plan.first_page;
    while (remaining > 0) {
      TDB_ASSIGN_OR_RETURN(uint32_t allocated,
                           pager->AllocatePage(IoCategory::kOverflow));
      if (allocated != pno) {
        return Status::Internal("isam bulkload overflow planning mismatch");
      }
      TDB_ASSIGN_OR_RETURN(uint8_t* frame,
                           pager->ReadPage(pno, IoCategory::kOverflow));
      Page page(frame, layout.record_size, pager->usable_size());
      page.Format();
      uint16_t placed = 0;
      while (placed < cap && remaining > 0) {
        std::memcpy(page.RecordAt(placed), records[next_record].data(),
                    layout.record_size);
        page.SetSlotUsed(placed, true);
        ++placed;
        ++next_record;
        --remaining;
      }
      if (remaining > 0) page.set_next_overflow(pno + 1);
      pager->MarkDirty();
      ++pno;
    }
  }
  TDB_RETURN_NOT_OK(pager->Flush());

  if (meta_out != nullptr) *meta_out = meta;
  return Open(std::move(pager), layout, meta);
}

Result<std::unique_ptr<IsamFile>> IsamFile::Open(std::unique_ptr<Pager> pager,
                                                 const RecordLayout& layout,
                                                 const IsamMeta& meta) {
  if (!layout.has_key()) return Status::Invalid("isam file needs a key");
  if (meta.level_counts.empty() || meta.level_counts.back() != 1) {
    return Status::Corruption("isam meta lacks a root level");
  }
  if (pager->page_count() < meta.data_pages + meta.dir_total()) {
    return Status::Corruption("isam file shorter than data + directory");
  }
  return std::unique_ptr<IsamFile>(
      new IsamFile(std::move(pager), layout, meta));
}

uint32_t IsamFile::LevelStart(size_t level) const {
  uint32_t start = meta_.data_pages;
  for (size_t l = 0; l < level; ++l) start += meta_.level_counts[l];
  return start;
}

uint32_t IsamFile::LevelEntries(size_t level) const {
  return level == 0 ? meta_.data_pages : meta_.level_counts[level - 1];
}

Result<uint32_t> IsamFile::LookupDataPage(const Value& key) {
  uint32_t entry_size = layout_.key_width + 4;
  uint32_t fanout = pager_->usable_size() / entry_size;

  size_t level = meta_.level_counts.size() - 1;  // root
  uint32_t pno = LevelStart(level);              // root page
  uint32_t page_first_entry = 0;                 // index of entry 0 in level
  while (true) {
    uint32_t total_entries = LevelEntries(level);
    uint32_t n = std::min<uint32_t>(fanout, total_entries - page_first_entry);
    TDB_ASSIGN_OR_RETURN(uint8_t* frame,
                         pager_->ReadPage(pno, IoCategory::kDirectory));
    // Last entry whose first key <= key; entry 0 if key sorts before all.
    uint32_t chosen = 0;
    for (uint32_t e = 1; e < n; ++e) {
      Value first = layout_.KeyFromBytes(DirEntryKey(frame, entry_size, e));
      TDB_ASSIGN_OR_RETURN(int c, Value::Compare(first, key));
      if (c <= 0) {
        chosen = e;
      } else {
        break;
      }
    }
    uint32_t child = DirEntryPage(frame, entry_size, chosen, layout_.key_width);
    if (level == 0) return child;  // entry points at a data page
    // Descend: entries store absolute page numbers of the level below.
    --level;
    page_first_entry = (child - LevelStart(level)) * fanout;
    pno = child;
  }
}

Status IsamFile::Insert(const uint8_t* rec, size_t size, Tid* tid) {
  if (size != layout_.record_size) {
    return Status::Invalid("record size mismatch on insert");
  }
  Value key = layout_.KeyOf(rec);
  TDB_ASSIGN_OR_RETURN(uint32_t pno, LookupDataPage(key));
  while (true) {
    TDB_ASSIGN_OR_RETURN(uint8_t* frame,
                         pager_->ReadPage(pno, CategoryOf(pno)));
    Page page(frame, layout_.record_size, pager_->usable_size());
    int slot = page.FirstFreeSlot();
    if (slot >= 0) {
      std::memcpy(page.RecordAt(static_cast<uint16_t>(slot)), rec, size);
      page.SetSlotUsed(static_cast<uint16_t>(slot), true);
      pager_->MarkDirty();
      if (tid != nullptr) *tid = Tid{pno, static_cast<uint16_t>(slot)};
      return Status::OK();
    }
    uint32_t next = page.next_overflow();
    if (next == kNoPage) break;
    pno = next;
  }
  TDB_ASSIGN_OR_RETURN(uint32_t fresh,
                       pager_->AllocatePage(IoCategory::kOverflow));
  {
    TDB_ASSIGN_OR_RETURN(uint8_t* frame,
                         pager_->ReadPage(fresh, IoCategory::kOverflow));
    Page page(frame, layout_.record_size, pager_->usable_size());
    page.Format();
    std::memcpy(page.RecordAt(0), rec, size);
    page.SetSlotUsed(0, true);
    pager_->MarkDirty();
  }
  {
    TDB_ASSIGN_OR_RETURN(uint8_t* frame,
                         pager_->ReadPage(pno, CategoryOf(pno)));
    Page page(frame, layout_.record_size, pager_->usable_size());
    page.set_next_overflow(fresh);
    pager_->MarkDirty();
  }
  if (tid != nullptr) *tid = Tid{fresh, 0};
  return Status::OK();
}

Status IsamFile::UpdateInPlace(const Tid& tid, const uint8_t* rec,
                               size_t size) {
  if (size != layout_.record_size) {
    return Status::Invalid("record size mismatch on update");
  }
  TDB_ASSIGN_OR_RETURN(uint8_t* frame,
                       pager_->ReadPage(tid.page, CategoryOf(tid.page)));
  Page page(frame, layout_.record_size, pager_->usable_size());
  if (!page.SlotUsed(tid.slot)) return Status::NotFound("update of unused slot");
  std::memcpy(page.RecordAt(tid.slot), rec, size);
  pager_->MarkDirty();
  return Status::OK();
}

Status IsamFile::Erase(const Tid& tid) {
  TDB_ASSIGN_OR_RETURN(uint8_t* frame,
                       pager_->ReadPage(tid.page, CategoryOf(tid.page)));
  Page page(frame, layout_.record_size, pager_->usable_size());
  if (!page.SlotUsed(tid.slot)) return Status::NotFound("erase of unused slot");
  page.SetSlotUsed(tid.slot, false);
  pager_->MarkDirty();
  return Status::OK();
}

Result<std::unique_ptr<Cursor>> IsamFile::Scan() {
  uint32_t last = meta_.data_pages == 0 ? 0 : meta_.data_pages - 1;
  return std::unique_ptr<Cursor>(new IsamScanCursor(
      this, pager_.get(), layout_, 0, last, meta_.data_pages));
}

Result<std::unique_ptr<Cursor>> IsamFile::ScanRange(
    const std::optional<Value>& lo, bool lo_inclusive,
    const std::optional<Value>& hi, bool hi_inclusive) {
  uint32_t first = 0;
  if (lo.has_value()) {
    TDB_ASSIGN_OR_RETURN(first, LookupDataPage(*lo));
  }
  // Pages past the one covering `hi` only hold larger keys.  A keyed probe
  // (lo == hi) reuses the first descent so it costs exactly one directory
  // traversal, as in the paper.
  uint32_t last = meta_.data_pages == 0 ? 0 : meta_.data_pages - 1;
  if (hi.has_value()) {
    if (lo.has_value() && lo->Equals(*hi)) {
      last = first;
    } else {
      TDB_ASSIGN_OR_RETURN(last, LookupDataPage(*hi));
    }
  }
  auto cursor = std::make_unique<IsamScanCursor>(this, pager_.get(), layout_,
                                                 first, last,
                                                 meta_.data_pages);
  cursor->SetBounds(lo, lo_inclusive, hi, hi_inclusive);
  return std::unique_ptr<Cursor>(std::move(cursor));
}

Result<std::unique_ptr<Cursor>> IsamFile::ScanKey(const Value& key) {
  // A keyed access is the degenerate range [key, key].  This matters after
  // a `modify`: bulk loading can spread many versions of one key across
  // adjacent primary pages, so reading only the directory-targeted page
  // would miss versions.  The range cursor continues into following pages
  // exactly until it has seen a larger key, so the single-version common
  // case still reads directory + one data page (+ its chain).
  return ScanRange(key, /*lo_inclusive=*/true, key, /*hi_inclusive=*/true);
}

Result<std::vector<uint8_t>> IsamFile::Fetch(const Tid& tid) {
  TDB_ASSIGN_OR_RETURN(uint8_t* frame,
                       pager_->ReadPage(tid.page, CategoryOf(tid.page)));
  Page page(frame, layout_.record_size, pager_->usable_size());
  if (!page.SlotUsed(tid.slot)) return Status::NotFound("fetch of unused slot");
  return std::vector<uint8_t>(page.RecordAt(tid.slot),
                              page.RecordAt(tid.slot) + layout_.record_size);
}

}  // namespace tdb
