#ifndef CHRONOQUEL_STORAGE_BUFFER_POOL_H_
#define CHRONOQUEL_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "storage/io_stats.h"
#include "storage/page.h"
#include "util/status.h"

namespace tdb {

class Pager;

/// Process-shared buffer pool: one LRU frame cache spanning every relation
/// file of a Database (production storage mode, ROADMAP item 3).  Pagers
/// opened with `StorageOptions::pool` keep NO private frames — every
/// ReadPage / AllocatePage / Flush delegates here, while I/O accounting
/// stays on the owning pager's per-file `IoCounters`, so the paper's
/// per-file page-I/O tables remain meaningful with the pool enabled.
///
/// Paper equivalence: with `per_file_frames == 1` each file is capped at a
/// single resident page and replacement degenerates to exactly the paper's
/// single-frame discipline — the same hits, misses, eviction writes, and
/// frame-pointer invalidation points as a private one-frame pager, which the
/// differential tests in tests/buffer_pool_test.cc verify byte-for-byte.
///
/// Threading: one mutex guards all pool state.  Parallel scan workers from
/// different files (PR 7) may call in concurrently; the pin rule below keeps
/// their frame pointers stable.  The pool NEVER writes back a frame on
/// behalf of a foreign pager — journal hooks and IoCounters are
/// single-threaded per owner — so eviction considers only clean foreign
/// frames (bumping the owner's generation so its stale pointers trip the
/// debug generation check) or the requester's own frames.
///
/// Pinning: a pager's most recently returned frame is pinned against
/// FOREIGN eviction until its next ReadPage/AllocatePage — that is exactly
/// the lifetime the Pager API already grants the returned pointer.  The
/// requester itself may still replace its own pinned frame (at
/// per_file_frames == 1 it always does), matching the single-frame
/// pointer-invalidation contract.
class BufferPool {
 public:
  struct Options {
    /// LRU capacity across every attached file.  When every frame is pinned
    /// or foreign-dirty the pool overflow-allocates past this rather than
    /// stalling a reader.
    int total_frames = 128;
    /// Max resident pages per file; 0 = uncapped.  1 reproduces the paper's
    /// single-frame-per-relation semantics exactly.
    int per_file_frames = 0;
    uint32_t page_size = kPageSize;
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;          // occupied frames recycled
    uint64_t foreign_evictions = 0;  // ... that belonged to another file
    uint64_t write_backs = 0;        // dirty pages flushed by eviction
    size_t frames = 0;               // frames currently allocated
    size_t resident = 0;             // frames currently holding a page
  };

  explicit BufferPool(const Options& opts) : opts_(opts) {}
  ~BufferPool() = default;

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  uint32_t page_size() const { return opts_.page_size; }
  int per_file_frames() const { return opts_.per_file_frames; }
  int total_frames() const { return opts_.total_frames; }

  Stats GetStats() const;

 private:
  friend class Pager;

  struct Frame {
    std::vector<uint8_t> data;
    Pager* owner = nullptr;
    uint32_t pno = kNoPage;
    bool dirty = false;
    IoCategory category = IoCategory::kData;
    uint64_t last_use = 0;
  };

  // The Pager-facing surface (all take the pool mutex; called only from
  // Pager methods of the owning pager `p`).
  Result<uint8_t*> ReadPage(Pager* p, uint32_t pno, IoCategory cat);
  void MarkDirty(Pager* p);
  Status ReadPageInto(Pager* p, uint32_t pno, IoCategory cat, uint8_t* out);
  Status PrimeFrame(Pager* p, uint32_t pno, IoCategory cat);
  Result<uint8_t*> AllocatePage(Pager* p, uint32_t pno, IoCategory cat);
  std::vector<uint32_t> ResidentPages(const Pager* p) const;
  /// Counted load of `pno` into the pool without touching `p`'s pin
  /// (history-chain readahead; only called behind the readahead lever).
  Status Prefetch(Pager* p, uint32_t pno, IoCategory cat);
  /// Writes back `p`'s dirty frames in ascending page order.
  Status Flush(Pager* p);
  /// Flush + forget all of `p`'s frames (measurement barrier / close).
  Status FlushAndDrop(Pager* p);
  /// Forget `p`'s frames WITHOUT writing dirty ones back (rollback).
  void DiscardAll(Pager* p);

  // All require mu_ held.
  Frame* Find(const Pager* p, uint32_t pno) const;
  Result<Frame*> Victim(Pager* p);
  Status Detach(Frame* f, bool flush_dirty);
  bool PinnedByOwner(const Frame* f) const;

  mutable std::mutex mu_;
  const Options opts_;
  std::vector<std::unique_ptr<Frame>> frames_;
  std::vector<Frame*> free_;
  std::map<std::pair<const Pager*, uint32_t>, Frame*> index_;
  /// Per-pager most recently returned frame (the pinned one); MarkDirty
  /// targets it.
  std::map<const Pager*, Frame*> last_;
  uint64_t tick_ = 0;
  Stats stats_;
};

}  // namespace tdb

#endif  // CHRONOQUEL_STORAGE_BUFFER_POOL_H_
