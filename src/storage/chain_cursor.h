#ifndef CHRONOQUEL_STORAGE_CHAIN_CURSOR_H_
#define CHRONOQUEL_STORAGE_CHAIN_CURSOR_H_

#include <functional>
#include <optional>

#include "storage/storage_file.h"

namespace tdb {

/// Cursor over one overflow chain: the start page and every page linked
/// through next_overflow.  Optionally filters to records whose key attribute
/// equals `key` — note the whole chain is still read (and counted), which is
/// precisely the "hashed access reads the entire ever-lengthening chain"
/// behaviour the paper analyzes.
class ChainCursor : public Cursor {
 public:
  ChainCursor(Pager* pager, const RecordLayout& layout, uint32_t start_page,
              std::function<IoCategory(uint32_t)> category_of,
              std::optional<Value> key = std::nullopt)
      : pager_(pager),
        layout_(layout),
        page_(start_page),
        category_of_(std::move(category_of)),
        key_(std::move(key)) {}

  Result<bool> Next() override {
    while (true) {
      if (page_ == kNoPage) return false;
      TDB_ASSIGN_OR_RETURN(uint8_t* frame,
                           pager_->ReadPage(page_, category_of_(page_)));
      Page page(frame, layout_.record_size, pager_->usable_size());
      while (slot_ < page.capacity()) {
        uint16_t s = slot_++;
        if (!page.SlotUsed(s)) continue;
        if (key_.has_value() &&
            !layout_.KeyOf(page.RecordAt(s)).Equals(*key_)) {
          continue;
        }
        record_.assign(page.RecordAt(s),
                       page.RecordAt(s) + layout_.record_size);
        tid_ = Tid{page_, s};
        return true;
      }
      page_ = page.next_overflow();
      slot_ = 0;
    }
  }

  Result<size_t> NextBatch(RecordBatch* batch, size_t max) override {
    // Zero-copy gather of one chain page at a time (key filter applied
    // inline).  The overflow link is read from the frame before returning,
    // so no slice outlives a page fetch.
    while (true) {
      if (page_ == kNoPage) return 0;
      TDB_ASSIGN_OR_RETURN(uint8_t* frame,
                           pager_->ReadPage(page_, category_of_(page_)));
      Page page(frame, layout_.record_size, pager_->usable_size());
      size_t n = 0;
      while (slot_ < page.capacity() && n < max) {
        uint16_t s = slot_++;
        if (!page.SlotUsed(s)) continue;
        if (key_.has_value() &&
            !layout_.KeyOf(page.RecordAt(s)).Equals(*key_)) {
          continue;
        }
        batch->AppendSlice(page.RecordAt(s), Tid{page_, s});
        ++n;
      }
      if (slot_ >= page.capacity()) {
        page_ = page.next_overflow();
        slot_ = 0;
      }
      if (n > 0) {
        batch->SetSource(pager_);
        return n;
      }
    }
  }

 private:
  Pager* pager_;
  RecordLayout layout_;
  uint32_t page_;
  std::function<IoCategory(uint32_t)> category_of_;
  std::optional<Value> key_;
  uint16_t slot_ = 0;
};

}  // namespace tdb

#endif  // CHRONOQUEL_STORAGE_CHAIN_CURSOR_H_
