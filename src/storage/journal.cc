#include "storage/journal.h"

#include <chrono>
#include <cstring>
#include <thread>

#include "obs/metrics.h"
#include "storage/page.h"
#include "util/stringx.h"

namespace tdb {

const char* DurabilityModeName(DurabilityMode mode) {
  switch (mode) {
    case DurabilityMode::kOff:
      return "off";
    case DurabilityMode::kJournal:
      return "journal";
    case DurabilityMode::kJournalSync:
      return "journal+sync";
  }
  return "?";
}

uint32_t Crc32(const uint8_t* data, size_t n, uint32_t seed) {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

namespace {

void PutU8(std::vector<uint8_t>* out, uint8_t v) { out->push_back(v); }

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

bool GetU8(const std::vector<uint8_t>& buf, size_t* off, uint8_t* v) {
  if (*off + 1 > buf.size()) return false;
  *v = buf[*off];
  *off += 1;
  return true;
}

bool GetU32(const std::vector<uint8_t>& buf, size_t* off, uint32_t* v) {
  if (*off + 4 > buf.size()) return false;
  *v = 0;
  for (int i = 0; i < 4; ++i) *v |= static_cast<uint32_t>(buf[*off + i]) << (8 * i);
  *off += 4;
  return true;
}

bool GetU64(const std::vector<uint8_t>& buf, size_t* off, uint64_t* v) {
  if (*off + 8 > buf.size()) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i) *v |= static_cast<uint64_t>(buf[*off + i]) << (8 * i);
  *off += 8;
  return true;
}

}  // namespace

std::vector<uint8_t> Journal::EncodeRecord(const Record& rec) {
  std::vector<uint8_t> out;
  PutU8(&out, static_cast<uint8_t>(rec.type));
  PutU32(&out, static_cast<uint32_t>(rec.path.size()));
  out.insert(out.end(), rec.path.begin(), rec.path.end());
  switch (rec.type) {
    case kFileSize:
      PutU8(&out, rec.existed ? 1 : 0);
      PutU64(&out, rec.size);
      break;
    case kPageImage:
      PutU32(&out, rec.pno);
      PutU32(&out, static_cast<uint32_t>(rec.payload.size()));
      out.insert(out.end(), rec.payload.begin(), rec.payload.end());
      break;
    case kFileImage:
      PutU8(&out, rec.existed ? 1 : 0);
      PutU64(&out, static_cast<uint64_t>(rec.payload.size()));
      out.insert(out.end(), rec.payload.begin(), rec.payload.end());
      break;
    case kCommit:
      break;
  }
  PutU32(&out, Crc32(out.data(), out.size()));
  return out;
}

bool Journal::DecodeRecord(const std::vector<uint8_t>& buf, size_t* offset,
                           Record* out) {
  size_t off = *offset;
  const size_t start = off;
  uint8_t type = 0;
  uint32_t path_len = 0;
  if (!GetU8(buf, &off, &type) || !GetU32(buf, &off, &path_len)) return false;
  if (type < kFileSize || type > kCommit) return false;
  if (off + path_len > buf.size()) return false;
  out->type = static_cast<RecordType>(type);
  out->path.assign(reinterpret_cast<const char*>(buf.data() + off), path_len);
  off += path_len;
  out->payload.clear();
  switch (out->type) {
    case kFileSize: {
      uint8_t existed = 0;
      if (!GetU8(buf, &off, &existed) || !GetU64(buf, &off, &out->size)) {
        return false;
      }
      out->existed = existed != 0;
      break;
    }
    case kPageImage: {
      uint32_t len = 0;
      if (!GetU32(buf, &off, &out->pno) || !GetU32(buf, &off, &len)) {
        return false;
      }
      if (len == 0 || off + len > buf.size()) return false;
      out->payload.assign(buf.begin() + static_cast<long>(off),
                          buf.begin() + static_cast<long>(off + len));
      off += len;
      break;
    }
    case kFileImage: {
      uint8_t existed = 0;
      uint64_t len = 0;
      if (!GetU8(buf, &off, &existed) || !GetU64(buf, &off, &len)) return false;
      out->existed = existed != 0;
      if (off + len > buf.size()) return false;
      out->payload.assign(buf.begin() + static_cast<long>(off),
                          buf.begin() + static_cast<long>(off + len));
      off += static_cast<size_t>(len);
      break;
    }
    case kCommit:
      break;
  }
  uint32_t stored_crc = 0;
  if (!GetU32(buf, &off, &stored_crc)) return false;
  if (Crc32(buf.data() + start, off - 4 - start) != stored_crc) return false;
  *offset = off;
  return true;
}

Result<std::unique_ptr<Journal>> Journal::Open(Env* env,
                                               const std::string& dir,
                                               DurabilityMode mode) {
  std::string path = PathFor(dir);
  TDB_ASSIGN_OR_RETURN(auto file, env->OpenOrCreate(path));
  std::unique_ptr<Journal> journal(
      new Journal(env, std::move(path), std::move(file), mode));
  // Any prior batch was resolved by Recover(); discard leftovers.
  TDB_RETURN_NOT_OK(journal->file_->Truncate(0));
  return journal;
}

void Journal::set_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    m_batches_ = m_commits_ = m_rollbacks_ = nullptr;
    m_records_ = m_pre_image_bytes_ = m_replay_ops_ = nullptr;
    return;
  }
  m_batches_ = metrics->counter("journal.batches");
  m_commits_ = metrics->counter("journal.commits");
  m_rollbacks_ = metrics->counter("journal.rollbacks");
  m_records_ = metrics->counter("journal.records");
  m_pre_image_bytes_ = metrics->counter("journal.pre_image_bytes");
  m_replay_ops_ = metrics->counter("journal.replay_ops");
  m_group_syncs_ = metrics->counter("journal.group_syncs");
}

Status Journal::Begin() {
  if (!healthy_) {
    return Status::IOError(
        "journal rollback failed earlier; reopen the database to recover");
  }
  if (active_) return Status::Internal("journal batch already active");
  if (m_batches_ != nullptr) m_batches_->Increment();
  // Reclaim the file only once every sealed batch's commit mark is durable;
  // marks awaiting a WaitDurable() fsync must survive until then.  The
  // single-session protocol (Commit syncs + truncates) always takes this
  // branch, preserving the legacy empty-at-Begin invariant.
  if (committed_seq_.load(std::memory_order_acquire) ==
      synced_seq_.load(std::memory_order_acquire)) {
    TDB_RETURN_NOT_OK(file_->Truncate(0));
    write_offset_ = 0;
  }
  batch_start_offset_ = write_offset_;
  sync_pending_ = false;
  batch_.clear();
  files_.clear();
  active_ = true;
  return Status::OK();
}

Status Journal::AppendRecord(const Record& rec) {
  if (m_records_ != nullptr) {
    m_records_->Increment();
    m_pre_image_bytes_->Add(rec.payload.size());
  }
  std::vector<uint8_t> bytes = EncodeRecord(rec);
  TDB_RETURN_NOT_OK(file_->Write(write_offset_, bytes.data(), bytes.size()));
  write_offset_ += bytes.size();
  batch_.push_back(rec);
  sync_pending_ = true;
  return Status::OK();
}

Status Journal::SyncPending() {
  if (mode_ == DurabilityMode::kJournalSync && sync_pending_) {
    TDB_RETURN_NOT_OK(file_->Sync());
    sync_pending_ = false;
  }
  return Status::OK();
}

Result<Journal::FileState*> Journal::EnsureFileLogged(const std::string& path,
                                                      RandomRWFile* file) {
  auto it = files_.find(path);
  if (it != files_.end()) return &it->second;
  FileState fs;
  fs.existed = env_->FileExists(path);
  if (fs.existed) {
    if (file != nullptr) {
      TDB_ASSIGN_OR_RETURN(fs.batch_start_size, file->Size());
    } else {
      TDB_ASSIGN_OR_RETURN(auto probe, env_->OpenOrCreate(path));
      TDB_ASSIGN_OR_RETURN(fs.batch_start_size, probe->Size());
    }
  }
  Record rec;
  rec.type = kFileSize;
  rec.path = path;
  rec.existed = fs.existed;
  rec.size = fs.batch_start_size;
  TDB_RETURN_NOT_OK(AppendRecord(rec));
  return &files_.emplace(path, fs).first->second;
}

Status Journal::CaptureWholeFile(const std::string& path, FileState* fs) {
  if (fs->whole_file_captured) return Status::OK();
  Record rec;
  rec.type = kFileImage;
  rec.path = path;
  rec.existed = fs->existed || env_->FileExists(path);
  if (rec.existed) {
    TDB_ASSIGN_OR_RETURN(std::string content, env_->ReadFileToString(path));
    rec.payload.assign(content.begin(), content.end());
  }
  TDB_RETURN_NOT_OK(AppendRecord(rec));
  fs->whole_file_captured = true;
  return Status::OK();
}

Status Journal::BeforePageWrite(const std::string& path, RandomRWFile* file,
                                uint32_t pno) {

  if (!active_) return Status::OK();
  TDB_ASSIGN_OR_RETURN(FileState * fs, EnsureFileLogged(path, file));
  uint64_t end = (static_cast<uint64_t>(pno) + 1) * page_size_;
  if (!fs->whole_file_captured && end <= fs->batch_start_size &&
      fs->pages_logged.insert(pno).second) {
    Record rec;
    rec.type = kPageImage;
    rec.path = path;
    rec.pno = pno;
    rec.payload.resize(page_size_);
    // Read the pre-image straight from the file, bypassing the pager so the
    // paper's page-I/O accounting never sees journal traffic.
    TDB_RETURN_NOT_OK(file->Read(static_cast<uint64_t>(pno) * page_size_,
                                 page_size_, rec.payload.data()));
    TDB_RETURN_NOT_OK(AppendRecord(rec));
  }
  return SyncPending();
}

Status Journal::BeforeTruncate(const std::string& path, RandomRWFile* file,
                               uint64_t new_size) {
  if (!active_) return Status::OK();
  TDB_ASSIGN_OR_RETURN(FileState * fs, EnsureFileLogged(path, file));
  if (!fs->whole_file_captured && file != nullptr) {
    TDB_ASSIGN_OR_RETURN(uint64_t cur, file->Size());
    if (new_size < cur) {
      // A shrink destroys bytes the page records do not cover; keep the
      // whole current image (earlier page records still restore the bytes
      // this batch already overwrote before the shrink).
      TDB_RETURN_NOT_OK(CaptureWholeFile(path, fs));
    }
  }
  return SyncPending();
}

Status Journal::BeforeFileRewrite(const std::string& path) {
  if (!active_) return Status::OK();
  TDB_ASSIGN_OR_RETURN(FileState * fs, EnsureFileLogged(path, nullptr));
  TDB_RETURN_NOT_OK(CaptureWholeFile(path, fs));
  return SyncPending();
}

Status Journal::BeforeDeleteFile(const std::string& path) {
  if (!active_) return Status::OK();
  if (!env_->FileExists(path)) return Status::OK();
  return BeforeFileRewrite(path);
}

Status Journal::Commit() {
  if (!active_) return Status::OK();
  active_ = false;
  if (m_commits_ != nullptr) m_commits_->Increment();
  if (batch_.empty()) return Status::OK();  // read-only statement
  Record mark;
  mark.type = kCommit;
  std::vector<uint8_t> bytes = EncodeRecord(mark);
  TDB_RETURN_NOT_OK(file_->Write(write_offset_, bytes.data(), bytes.size()));
  if (mode_ == DurabilityMode::kJournalSync) {
    TDB_RETURN_NOT_OK(file_->Sync());
  }
  // The statement is now durable.  Emptying the journal is tidy-up only:
  // if it fails (or we crash first), recovery sees the mark and discards.
  (void)file_->Truncate(0);
  write_offset_ = 0;
  batch_start_offset_ = 0;
  committed_seq_.fetch_add(1, std::memory_order_acq_rel);
  synced_seq_.store(committed_seq_.load(std::memory_order_acquire),
                    std::memory_order_release);
  batch_.clear();
  files_.clear();
  sync_pending_ = false;
  return Status::OK();
}

Result<uint64_t> Journal::CommitGroup() {
  if (!active_) return synced_seq_.load(std::memory_order_acquire);
  active_ = false;
  if (m_commits_ != nullptr) m_commits_->Increment();
  if (batch_.empty()) {
    // Read-only batch: nothing on disk, nothing to make durable.
    files_.clear();
    sync_pending_ = false;
    return synced_seq_.load(std::memory_order_acquire);
  }
  Record mark;
  mark.type = kCommit;
  std::vector<uint8_t> bytes = EncodeRecord(mark);
  TDB_RETURN_NOT_OK(file_->Write(write_offset_, bytes.data(), bytes.size()));
  write_offset_ += bytes.size();
  uint64_t ticket = committed_seq_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (mode_ != DurabilityMode::kJournalSync) {
    // Nothing ever fsyncs in these modes; the mark is as durable as it
    // will get, so Begin() may reclaim the file immediately.
    synced_seq_.store(ticket, std::memory_order_release);
  }
  batch_.clear();
  files_.clear();
  sync_pending_ = false;
  return ticket;
}

Status Journal::WaitDurable(uint64_t ticket) {
  if (mode_ != DurabilityMode::kJournalSync) return Status::OK();
  if (synced_seq_.load(std::memory_order_acquire) >= ticket) {
    return Status::OK();
  }
  // Leader election by mutex: the first waiter in fsyncs on behalf of every
  // mark appended so far; waiters arriving meanwhile find their ticket
  // already covered and return without touching the file.
  std::lock_guard<std::mutex> lock(sync_mu_);
  if (synced_seq_.load(std::memory_order_acquire) >= ticket) {
    return Status::OK();
  }
  // Group window: hold the fsync briefly so commits racing through the
  // writer path can append their marks and ride this sync for free.
  const int window = group_window_micros_.load(std::memory_order_relaxed);
  if (window > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(window));
  }
  // Capture before the fsync: marks appended during the sync may or may not
  // be covered, so only claim the ones that provably were.
  uint64_t covers = committed_seq_.load(std::memory_order_acquire);
  TDB_RETURN_NOT_OK(file_->Sync());
  if (m_group_syncs_ != nullptr) m_group_syncs_->Increment();
  synced_seq_.store(covers, std::memory_order_release);
  return Status::OK();
}

Status Journal::Rollback() {
  if (!active_) return Status::OK();
  active_ = false;
  if (m_rollbacks_ != nullptr) {
    m_rollbacks_->Increment();
    m_replay_ops_->Add(batch_.size());
  }
  Status applied = ApplyReversed(env_, batch_);
  if (!applied.ok()) {
    healthy_ = false;
    return applied;
  }
  // Truncate only this batch's records: sealed group-commit batches before
  // batch_start_offset_ must keep their marks until they are synced.
  (void)file_->Truncate(batch_start_offset_);
  write_offset_ = batch_start_offset_;
  batch_.clear();
  files_.clear();
  sync_pending_ = false;
  return Status::OK();
}

Status Journal::ApplyReversed(Env* env, const std::vector<Record>& records) {
  std::vector<std::string> touched;
  for (auto it = records.rbegin(); it != records.rend(); ++it) {
    const Record& rec = *it;
    switch (rec.type) {
      case kCommit:
        break;
      case kPageImage: {
        // The offset derives from the record's own payload length, so
        // recovery is correct for any page size the writer was using.
        TDB_ASSIGN_OR_RETURN(auto file, env->OpenOrCreate(rec.path));
        TDB_RETURN_NOT_OK(file->Write(
            static_cast<uint64_t>(rec.pno) * rec.payload.size(),
            rec.payload.data(), rec.payload.size()));
        touched.push_back(rec.path);
        break;
      }
      case kFileImage: {
        if (!rec.existed) {
          if (env->FileExists(rec.path)) {
            TDB_RETURN_NOT_OK(env->DeleteFile(rec.path));
          }
          break;
        }
        TDB_ASSIGN_OR_RETURN(auto file, env->OpenOrCreate(rec.path));
        TDB_RETURN_NOT_OK(file->Truncate(rec.payload.size()));
        if (!rec.payload.empty()) {
          TDB_RETURN_NOT_OK(
              file->Write(0, rec.payload.data(), rec.payload.size()));
        }
        touched.push_back(rec.path);
        break;
      }
      case kFileSize: {
        if (!rec.existed) {
          if (env->FileExists(rec.path)) {
            TDB_RETURN_NOT_OK(env->DeleteFile(rec.path));
          }
          break;
        }
        TDB_ASSIGN_OR_RETURN(auto file, env->OpenOrCreate(rec.path));
        TDB_RETURN_NOT_OK(file->Truncate(rec.size));
        touched.push_back(rec.path);
        break;
      }
    }
  }
  for (const std::string& path : touched) {
    if (!env->FileExists(path)) continue;
    TDB_ASSIGN_OR_RETURN(auto file, env->OpenOrCreate(path));
    TDB_RETURN_NOT_OK(file->Sync());
  }
  return Status::OK();
}

Status Journal::Recover(Env* env, const std::string& dir) {
  std::string path = PathFor(dir);
  if (!env->FileExists(path)) return Status::OK();
  TDB_ASSIGN_OR_RETURN(std::string text, env->ReadFileToString(path));
  std::vector<uint8_t> buf(text.begin(), text.end());
  std::vector<Record> records;
  size_t off = 0;
  while (off < buf.size()) {
    Record rec;
    if (!DecodeRecord(buf, &off, &rec)) break;  // torn tail: append was cut
    records.push_back(std::move(rec));
  }
  // Group commit leaves several sealed batches in one file; everything up
  // to the LAST commit mark committed, and only the records after it (a
  // batch cut off mid-statement) roll back.  The single-session protocol is
  // the one-batch special case.
  size_t resume = 0;
  for (size_t i = 0; i < records.size(); ++i) {
    if (records[i].type == kCommit) resume = i + 1;
  }
  if (resume < records.size()) {
    std::vector<Record> open_batch(
        std::make_move_iterator(records.begin() + static_cast<long>(resume)),
        std::make_move_iterator(records.end()));
    TDB_RETURN_NOT_OK(ApplyReversed(env, open_batch));
  }
  // Committed (or empty, or fully undone): the journal is spent.
  TDB_ASSIGN_OR_RETURN(auto file, env->OpenOrCreate(path));
  TDB_RETURN_NOT_OK(file->Truncate(0));
  return file->Sync();
}

}  // namespace tdb
