#ifndef CHRONOQUEL_STORAGE_HEAP_FILE_H_
#define CHRONOQUEL_STORAGE_HEAP_FILE_H_

#include <memory>

#include "storage/storage_file.h"

namespace tdb {

/// Unordered file of fixed-width records; inserts append to the tail page.
/// Used for freshly-created relations (before `modify`), temporary
/// relations, and the simple (non-clustered) history store.
class HeapFile : public StorageFile {
 public:
  /// Opens an existing (possibly empty) heap file.
  static Result<std::unique_ptr<HeapFile>> Open(std::unique_ptr<Pager> pager,
                                                const RecordLayout& layout,
                                                IoCategory category = IoCategory::kData);

  Organization org() const override { return Organization::kHeap; }

  Status Insert(const uint8_t* rec, size_t size, Tid* tid) override;

  /// Inserts into `page_hint` if it has a free slot, otherwise into a brand
  /// new page.  Used by the *clustered* history store to keep all versions
  /// of one tuple on a minimal number of (per-tuple) pages.
  Status InsertAtPage(uint32_t page_hint, const uint8_t* rec, size_t size,
                      Tid* tid);

  /// Inserts into a freshly allocated page (starting a per-tuple cluster).
  Status InsertFreshPage(const uint8_t* rec, size_t size, Tid* tid);
  Status UpdateInPlace(const Tid& tid, const uint8_t* rec,
                       size_t size) override;
  Status Erase(const Tid& tid) override;
  Result<std::unique_ptr<Cursor>> Scan() override;
  Result<std::unique_ptr<Cursor>> ScanKey(const Value& key) override;
  Result<std::vector<uint8_t>> Fetch(const Tid& tid) override;
  Pager* pager() override { return pager_.get(); }

  bool LinearScan() const override { return true; }
  IoCategory ScanCategory(uint32_t pno) const override {
    (void)pno;
    return category_;
  }

 private:
  HeapFile(std::unique_ptr<Pager> pager, const RecordLayout& layout,
           IoCategory category)
      : StorageFile(layout), pager_(std::move(pager)), category_(category) {}

  std::unique_ptr<Pager> pager_;
  /// Temp relations tag their I/O kTemp so the harness can separate the
  /// fixed cost; ordinary heaps use kData.
  IoCategory category_;
  /// Slots freed by Erase, reused by Insert so a heap with a stable live
  /// set (e.g. the current file of a 2-level index) does not grow without
  /// bound.  A session-local hint: slots freed before reopen stay as holes.
  std::vector<Tid> free_hints_;
};

}  // namespace tdb

#endif  // CHRONOQUEL_STORAGE_HEAP_FILE_H_
