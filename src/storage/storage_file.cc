#include "storage/storage_file.h"

#include <cstring>

namespace tdb {

const char* OrganizationName(Organization o) {
  switch (o) {
    case Organization::kHeap:
      return "heap";
    case Organization::kHash:
      return "hash";
    case Organization::kIsam:
      return "isam";
    case Organization::kBtree:
      return "btree";
  }
  return "?";
}

Result<size_t> Cursor::NextBatch(RecordBatch* batch, size_t max) {
  // Fallback for cursors without a zero-copy override (e.g. the B-tree's
  // buffered leaf groups): drain Next() into the batch arena.  The copies
  // survive any later page I/O, so this never needs a page-boundary cut.
  size_t n = 0;
  while (n < max) {
    TDB_ASSIGN_OR_RETURN(bool have, Next());
    if (!have) break;
    if (n == 0) batch->EnsureArena(batch->size() == 0 ? max * record_.size()
                                                      : record_.size() * max);
    batch->AppendCopy(record_.data(), record_.size(), tid_);
    ++n;
  }
  return n;
}

Value RecordLayout::KeyFromBytes(const uint8_t* p) const {
  switch (key_type) {
    case TypeId::kInt1: {
      int8_t v;
      std::memcpy(&v, p, 1);
      return Value::Int1(v);
    }
    case TypeId::kInt2: {
      int16_t v;
      std::memcpy(&v, p, 2);
      return Value::Int2(v);
    }
    case TypeId::kInt4: {
      int32_t v;
      std::memcpy(&v, p, 4);
      return Value::Int4(v);
    }
    case TypeId::kFloat8: {
      double v;
      std::memcpy(&v, p, 8);
      return Value::Float8(v);
    }
    case TypeId::kChar:
      return Value::Char(
          std::string(reinterpret_cast<const char*>(p), key_width));
    case TypeId::kTime: {
      int32_t v;
      std::memcpy(&v, p, 4);
      return Value::Time(TimePoint(v));
    }
  }
  return Value();
}

}  // namespace tdb
