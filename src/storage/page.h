#ifndef CHRONOQUEL_STORAGE_PAGE_H_
#define CHRONOQUEL_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>

namespace tdb {

/// The prototype's page size (Section 5.1: "The page size in our prototype
/// is 1024 bytes").  With the benchmark's 108-byte user payload this yields
/// 9 tuples per page for static relations and 8 per page for rollback /
/// historical / temporal relations, matching the paper.
inline constexpr uint32_t kPageSize = 1024;

/// Bytes of page header: overflow link (4) + slot bitmap (8).
inline constexpr uint32_t kPageHeaderSize = 12;

/// Sentinel "no overflow page" link.
inline constexpr uint32_t kNoPage = 0xFFFFFFFFu;

/// A fixed-width-record slotted page.  Page is a *view* over a page-sized
/// frame owned by the Pager; it never allocates.  `usable` is the byte span
/// available to header + slots — `Pager::usable_size()`, which is the page
/// size minus the CRC trailer when checksums are on.  The default is the
/// paper's 1024-byte page.
///
/// Layout:
///   [0..3]   next overflow page number (kNoPage if none)
///   [4..11]  bitmap of used slots (at most 64 slots per page; benchmark
///            relations use 8-9, index/anchor entries up to 64)
///   [12.. ]  record slots, record_size bytes each
class Page {
 public:
  Page(uint8_t* frame, uint16_t record_size, uint32_t usable = kPageSize)
      : frame_(frame), record_size_(record_size), usable_(usable) {}

  /// Number of record slots a page with `usable` bytes holds for this
  /// record size.
  static uint16_t Capacity(uint16_t record_size, uint32_t usable = kPageSize) {
    uint16_t cap = static_cast<uint16_t>((usable - kPageHeaderSize) /
                                         record_size);
    return cap > 64 ? 64 : cap;  // bitmap is 64 bits wide
  }

  uint16_t capacity() const { return Capacity(record_size_, usable_); }

  uint32_t next_overflow() const {
    uint32_t v;
    std::memcpy(&v, frame_, 4);
    return v;
  }
  void set_next_overflow(uint32_t pno) { std::memcpy(frame_, &pno, 4); }

  uint64_t used_bitmap() const {
    uint64_t v;
    std::memcpy(&v, frame_ + 4, 8);
    return v;
  }
  void set_used_bitmap(uint64_t v) { std::memcpy(frame_ + 4, &v, 8); }

  bool SlotUsed(uint16_t slot) const {
    return (used_bitmap() >> slot) & 1u;
  }
  void SetSlotUsed(uint16_t slot, bool used) {
    uint64_t bm = used_bitmap();
    if (used) {
      bm |= uint64_t{1} << slot;
    } else {
      bm &= ~(uint64_t{1} << slot);
    }
    set_used_bitmap(bm);
  }

  /// Number of used slots.
  uint16_t SlotCount() const {
    return static_cast<uint16_t>(__builtin_popcountll(used_bitmap()));
  }

  bool Full() const { return SlotCount() >= capacity(); }

  /// First free slot index, or -1 if the page is full.
  int FirstFreeSlot() const {
    uint64_t bm = used_bitmap();
    for (uint16_t i = 0; i < capacity(); ++i) {
      if (!((bm >> i) & 1u)) return i;
    }
    return -1;
  }

  uint8_t* RecordAt(uint16_t slot) {
    return frame_ + kPageHeaderSize + slot * record_size_;
  }
  const uint8_t* RecordAt(uint16_t slot) const {
    return frame_ + kPageHeaderSize + slot * record_size_;
  }

  /// Zeroes the header (fresh page, no overflow, no slots).
  void Format() {
    set_next_overflow(kNoPage);
    set_used_bitmap(0);
  }

 private:
  uint8_t* frame_;
  uint16_t record_size_;
  uint32_t usable_;
};

}  // namespace tdb

#endif  // CHRONOQUEL_STORAGE_PAGE_H_
