#ifndef CHRONOQUEL_STORAGE_IO_STATS_H_
#define CHRONOQUEL_STORAGE_IO_STATS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace tdb {

namespace obs {
struct PagerMetrics;
class MetricsRegistry;
}  // namespace obs

/// Role of a page read/write.  Categorizing lets the Fig. 9 harness
/// *measure* (not estimate) the fixed portion of a query's cost, which the
/// paper defines as ISAM directory traversal plus temporary-relation I/O.
enum class IoCategory : uint8_t {
  kData = 0,       // primary data pages
  kOverflow = 1,   // overflow-chain pages
  kDirectory = 2,  // ISAM directory pages
  kIndex = 3,      // secondary index pages
  kTemp = 4,       // temporary relations
};
inline constexpr int kNumIoCategories = 5;

const char* IoCategoryName(IoCategory c);

/// One physical page access, in issue order.
struct IoEvent {
  uint32_t file_id = 0;  // registry-assigned id of the file
  uint32_t page = 0;
  bool write = false;
};

/// An ordered trace of page accesses, appended to by pagers when enabled.
/// The disk model (src/diskmodel) replays it to turn the paper's page
/// counts into modeled device times.
class IoTrace {
 public:
  void Record(uint32_t file_id, uint32_t page, bool write) {
    if (!enabled_) return;
    events_.push_back({file_id, page, write});
  }

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }
  void Clear() { events_.clear(); }
  const std::vector<IoEvent>& events() const { return events_; }

 private:
  bool enabled_ = false;
  std::vector<IoEvent> events_;
};

/// Page-granularity I/O counters for one file.
struct IoCounters {
  uint64_t reads[kNumIoCategories] = {0, 0, 0, 0, 0};
  uint64_t writes[kNumIoCategories] = {0, 0, 0, 0, 0};

  uint64_t TotalReads() const {
    uint64_t t = 0;
    for (uint64_t r : reads) t += r;
    return t;
  }
  uint64_t TotalWrites() const {
    uint64_t t = 0;
    for (uint64_t w : writes) t += w;
    return t;
  }
  void Reset() {
    for (uint64_t& r : reads) r = 0;
    for (uint64_t& w : writes) w = 0;
  }

  /// Optional trace hook (owned by the registry); pagers record each
  /// physical access through it.
  IoTrace* trace = nullptr;
  uint32_t trace_file_id = 0;

  /// Optional buffer-pool/pager metrics for this file (owned by the
  /// Database's obs::MetricsRegistry).  Null when metrics are disabled —
  /// the Pager's only added cost is then one predictable branch per site.
  obs::PagerMetrics* metrics = nullptr;

  IoCounters& operator+=(const IoCounters& o) {
    for (int i = 0; i < kNumIoCategories; ++i) {
      reads[i] += o.reads[i];
      writes[i] += o.writes[i];
    }
    return *this;
  }
};

/// Adds `after - before` (per category, reads and writes) into `into`.
/// Used by the executor to attribute registry-wide I/O to the plan node
/// whose storage operation ran between the two snapshots; the trace fields
/// are not touched.
void AccumulateDelta(IoCounters* into, const IoCounters& before,
                     const IoCounters& after);

/// Registry of per-file counters owned by a Database.  The paper's metric —
/// "we counted only disk accesses to user relations, and allocated only 1
/// buffer for each user relation" — is implemented by giving every file a
/// single-frame Pager whose counters live here.  System-catalog I/O is not
/// routed through the registry, matching the paper's exclusion of system
/// relations.
///
/// NOT thread-safe, by design: counters and the logical clock are plain
/// fields so the measured page counts stay deterministic.  The parallel
/// benchmark driver (bench/bench_util.h) therefore gives every concurrent
/// cell its own Env + Database — one writer per registry, ever.  Debug
/// builds enforce the rule: the registry binds to the first thread that
/// touches it and asserts on any other.
class IoRegistry {
 public:
  /// Returns (creating if needed) the counters for `file_name`.  The
  /// returned pointer stays valid for the registry's lifetime.
  IoCounters* ForFile(const std::string& file_name);

  /// Zeroes every counter (called before each measured query).
  void ResetAll();

  /// Binds the registry to the calling thread on first use and asserts
  /// (debug builds) that every later call arrives on the same thread.
  /// Kept out of the per-tuple Total() path; ForFile / ResetAll and
  /// Database::Execute call it.
  void CheckOwnerThread() const;

  /// Sum over all files.
  IoCounters Total() const;

  /// Sum over files whose name contains/excludes the temp marker is not
  /// needed: temp pagers tag their I/O with IoCategory::kTemp instead.
  const std::map<std::string, std::unique_ptr<IoCounters>>& by_file() const {
    return by_file_;
  }

  /// The shared access trace: disabled by default; enable around a query to
  /// feed the disk model.
  IoTrace* trace() { return &trace_; }

  /// Attaches (or detaches, with nullptr) an observability registry: every
  /// present and future per-file IoCounters gets its `metrics` pointer set
  /// to that registry's PagerMetrics block for the same file name.  The
  /// Database calls this once at Open when metrics are enabled; when it
  /// never does, instrumentation stays entirely unwired.
  void set_metrics(obs::MetricsRegistry* metrics);
  obs::MetricsRegistry* metrics() const { return metrics_; }

 private:
  std::map<std::string, std::unique_ptr<IoCounters>> by_file_;
  obs::MetricsRegistry* metrics_ = nullptr;
  IoTrace trace_;
  /// Id of the thread the registry is bound to; default-constructed until
  /// the first CheckOwnerThread.  Atomic so the guard itself is race-free.
  mutable std::atomic<std::thread::id> owner_{};
};

}  // namespace tdb

#endif  // CHRONOQUEL_STORAGE_IO_STATS_H_
