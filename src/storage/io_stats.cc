#include "storage/io_stats.h"

#include <cassert>

#include "obs/metrics.h"

namespace tdb {

const char* IoCategoryName(IoCategory c) {
  switch (c) {
    case IoCategory::kData:
      return "data";
    case IoCategory::kOverflow:
      return "overflow";
    case IoCategory::kDirectory:
      return "directory";
    case IoCategory::kIndex:
      return "index";
    case IoCategory::kTemp:
      return "temp";
  }
  return "?";
}

void AccumulateDelta(IoCounters* into, const IoCounters& before,
                     const IoCounters& after) {
  for (int i = 0; i < kNumIoCategories; ++i) {
    into->reads[i] += after.reads[i] - before.reads[i];
    into->writes[i] += after.writes[i] - before.writes[i];
  }
}

void IoRegistry::CheckOwnerThread() const {
  std::thread::id self = std::this_thread::get_id();
  std::thread::id expected{};
  if (owner_.compare_exchange_strong(expected, self,
                                     std::memory_order_relaxed)) {
    return;  // first use: bound to this thread
  }
  assert(expected == self &&
         "IoRegistry touched from a second thread: each concurrent benchmark "
         "cell must own its Env/Database exclusively (one writer per Env)");
  (void)self;
  (void)expected;
}

IoCounters* IoRegistry::ForFile(const std::string& file_name) {
  CheckOwnerThread();
  auto it = by_file_.find(file_name);
  if (it == by_file_.end()) {
    it = by_file_.emplace(file_name, std::make_unique<IoCounters>()).first;
    it->second->trace = &trace_;
    it->second->trace_file_id = static_cast<uint32_t>(by_file_.size() - 1);
    if (metrics_ != nullptr) it->second->metrics = metrics_->pager(file_name);
  }
  return it->second.get();
}

void IoRegistry::set_metrics(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  for (auto& [name, counters] : by_file_) {
    counters->metrics = metrics_ == nullptr ? nullptr : metrics_->pager(name);
  }
}

void IoRegistry::ResetAll() {
  CheckOwnerThread();
  for (auto& [_, counters] : by_file_) counters->Reset();
}

IoCounters IoRegistry::Total() const {
  IoCounters total;
  for (const auto& [_, counters] : by_file_) total += *counters;
  return total;
}

}  // namespace tdb
