#include "storage/pager.h"

#include <cstring>

#include "obs/metrics.h"
#include "util/stringx.h"

namespace tdb {

void Pager::Count(bool write, IoCategory cat, uint32_t pno) {
  if (counters_ == nullptr) return;
  if (write) {
    ++counters_->writes[static_cast<int>(cat)];
  } else {
    ++counters_->reads[static_cast<int>(cat)];
  }
  if (counters_->trace != nullptr) {
    counters_->trace->Record(counters_->trace_file_id, pno, write);
  }
  if (counters_->metrics != nullptr) {
    (write ? counters_->metrics->write_pages : counters_->metrics->read_pages)
        .Increment();
  }
}

Result<std::unique_ptr<Pager>> Pager::Open(Env* env, const std::string& path,
                                           IoCounters* counters, int frames,
                                           Journal* journal) {
  if (frames < 1 || frames > 1024) {
    return Status::Invalid("pager frame count must be in [1, 1024]");
  }
  // Journal the creation before it happens, so rolling back a statement
  // that made this relation's first file deletes the file again.
  if (journal != nullptr && !env->FileExists(path)) {
    TDB_RETURN_NOT_OK(journal->BeforeFileRewrite(path));
  }
  TDB_ASSIGN_OR_RETURN(auto file, env->OpenOrCreate(path));
  TDB_ASSIGN_OR_RETURN(uint64_t size, file->Size());
  if (size % kPageSize != 0) {
    return Status::Corruption(
        StrPrintf("file '%s' size %llu is not page aligned", path.c_str(),
                  static_cast<unsigned long long>(size)));
  }
  return std::unique_ptr<Pager>(
      new Pager(std::move(file), path, counters,
                static_cast<uint32_t>(size / kPageSize), frames, journal));
}

Pager::Frame* Pager::FindFrame(uint32_t pno) {
  for (Frame& frame : frames_) {
    if (frame.pno == pno) return &frame;
  }
  return nullptr;
}

Status Pager::FlushFrame(Frame* frame) {
  if (!frame->dirty || frame->pno == kNoPage) return Status::OK();
  // WAL discipline: the on-disk pre-image of this page must be in the
  // journal (and, in sync mode, on stable storage) before the overwrite.
  if (journal_ != nullptr) {
    TDB_RETURN_NOT_OK(
        journal_->BeforePageWrite(path_, file_.get(), frame->pno));
  }
  TDB_RETURN_NOT_OK(file_->Write(
      static_cast<uint64_t>(frame->pno) * kPageSize, frame->data, kPageSize));
  Count(/*write=*/true, frame->category, frame->pno);
  frame->dirty = false;
  return Status::OK();
}

Result<Pager::Frame*> Pager::EvictableFrame() {
  Frame* victim = &frames_[0];
  for (Frame& frame : frames_) {
    if (frame.pno == kNoPage) {
      victim = &frame;
      break;
    }
    if (frame.last_use < victim->last_use) victim = &frame;
  }
  if (victim->pno != kNoPage && metrics() != nullptr) {
    metrics()->evictions.Increment();
  }
  TDB_RETURN_NOT_OK(FlushFrame(victim));
  return victim;
}

Result<uint8_t*> Pager::ReadPage(uint32_t pno, IoCategory cat) {
  if (pno >= page_count_) {
    return Status::OutOfRange(StrPrintf("page %u >= page count %u in '%s'",
                                        pno, page_count_, path_.c_str()));
  }
  Frame* frame = FindFrame(pno);
  if (metrics() != nullptr) {
    metrics()->requests.Increment();
    (frame != nullptr ? metrics()->hits : metrics()->misses).Increment();
  }
  if (frame == nullptr) {
    TDB_ASSIGN_OR_RETURN(frame, EvictableFrame());
    TDB_RETURN_NOT_OK(file_->Read(static_cast<uint64_t>(pno) * kPageSize,
                                  kPageSize, frame->data));
    Count(/*write=*/false, cat, pno);
    frame->pno = pno;
    frame->category = cat;
    frame->dirty = false;
    ++generation_;
  }
  frame->last_use = ++tick_;
  last_touched_ = frame;
  return frame->data;
}

void Pager::MarkDirty() {
  if (last_touched_ != nullptr) last_touched_->dirty = true;
}

Status Pager::ReadPageInto(uint32_t pno, IoCategory cat, uint8_t* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (pno >= page_count_) {
    return Status::OutOfRange(StrPrintf("page %u >= page count %u in '%s'",
                                        pno, page_count_, path_.c_str()));
  }
  Frame* frame = FindFrame(pno);
  if (metrics() != nullptr) {
    metrics()->requests.Increment();
    (frame != nullptr ? metrics()->hits : metrics()->misses).Increment();
  }
  if (frame != nullptr) {
    std::memcpy(out, frame->data, kPageSize);
    return Status::OK();
  }
  TDB_RETURN_NOT_OK(
      file_->Read(static_cast<uint64_t>(pno) * kPageSize, kPageSize, out));
  Count(/*write=*/false, cat, pno);
  return Status::OK();
}

Status Pager::PrimeFrame(uint32_t pno, IoCategory cat) {
  if (pno >= page_count_) return Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  Frame* frame = FindFrame(pno);
  if (frame == nullptr) {
    TDB_ASSIGN_OR_RETURN(frame, EvictableFrame());
    // Deliberately uncounted: the parallel workers already charged the read
    // of this page; this load only restores the serial scan's end state.
    TDB_RETURN_NOT_OK(file_->Read(static_cast<uint64_t>(pno) * kPageSize,
                                  kPageSize, frame->data));
    frame->pno = pno;
    frame->category = cat;
    frame->dirty = false;
    ++generation_;
  }
  frame->last_use = ++tick_;
  last_touched_ = frame;
  return Status::OK();
}

std::vector<uint32_t> Pager::ResidentPages() const {
  std::vector<uint32_t> pnos;
  for (const Frame& frame : frames_) {
    if (frame.pno != kNoPage) pnos.push_back(frame.pno);
  }
  return pnos;
}

Result<uint32_t> Pager::AllocatePage(IoCategory cat) {
  TDB_ASSIGN_OR_RETURN(Frame * frame, EvictableFrame());
  uint32_t pno = page_count_;
  std::memset(frame->data, 0, kPageSize);
  // Format a valid empty page header (no overflow link).
  uint32_t none = kNoPage;
  std::memcpy(frame->data, &none, 4);
  frame->pno = pno;
  frame->category = cat;
  frame->dirty = true;
  frame->last_use = ++tick_;
  last_touched_ = frame;
  ++generation_;
  ++page_count_;
  // Extend the file now so page_count derived from size stays consistent
  // even if the frame is evicted later.
  uint64_t new_size = static_cast<uint64_t>(page_count_) * kPageSize;
  if (journal_ != nullptr) {
    TDB_RETURN_NOT_OK(journal_->BeforeTruncate(path_, file_.get(), new_size));
  }
  TDB_RETURN_NOT_OK(file_->Truncate(new_size));
  return pno;
}

Status Pager::Sync() {
  if (metrics() != nullptr) metrics()->syncs.Increment();
  return file_->Sync();
}

Status Pager::Flush() {
  for (Frame& frame : frames_) TDB_RETURN_NOT_OK(FlushFrame(&frame));
  return Status::OK();
}

Status Pager::FlushAndDrop() {
  TDB_RETURN_NOT_OK(Flush());
  for (Frame& frame : frames_) frame.pno = kNoPage;
  last_touched_ = nullptr;
  ++generation_;
  return Status::OK();
}

Status Pager::Reset() {
  if (journal_ != nullptr) {
    TDB_RETURN_NOT_OK(journal_->BeforeTruncate(path_, file_.get(), 0));
  }
  for (Frame& frame : frames_) {
    frame.pno = kNoPage;
    frame.dirty = false;
  }
  last_touched_ = nullptr;
  ++generation_;
  page_count_ = 0;
  return file_->Truncate(0);
}

void Pager::DiscardAll() {
  for (Frame& frame : frames_) {
    frame.pno = kNoPage;
    frame.dirty = false;
  }
  last_touched_ = nullptr;
  ++generation_;
}

}  // namespace tdb
