#include "storage/pager.h"

#include <cstring>

#include "obs/metrics.h"
#include "storage/buffer_pool.h"
#include "util/stringx.h"

namespace tdb {

namespace {
bool AllZero(const uint8_t* data, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (data[i] != 0) return false;
  }
  return true;
}
}  // namespace

Pager::Pager(std::unique_ptr<RandomRWFile> file, std::string path,
             IoCounters* counters, uint32_t page_count, int frames,
             Journal* journal, const StorageOptions& sopts)
    : file_(std::move(file)),
      path_(std::move(path)),
      counters_(counters),
      journal_(journal),
      page_count_(page_count),
      page_size_(sopts.page_size),
      usable_size_(sopts.page_size - (sopts.checksum ? 4u : 0u)),
      checksum_(sopts.checksum),
      pool_(sopts.pool),
      readahead_(sopts.readahead) {
  if (pool_ != nullptr) {
    pool_cap_ = pool_->per_file_frames();
  } else {
    frames_.resize(static_cast<size_t>(frames));
    for (Frame& frame : frames_) frame.data.resize(page_size_);
  }
}

Pager::~Pager() {
  if (pool_ != nullptr) {
    (void)pool_->FlushAndDrop(this);
  } else {
    (void)Flush();
  }
}

void Pager::Count(bool write, IoCategory cat, uint32_t pno) {
  if (counters_ == nullptr) return;
  if (write) {
    ++counters_->writes[static_cast<int>(cat)];
  } else {
    ++counters_->reads[static_cast<int>(cat)];
  }
  if (counters_->trace != nullptr) {
    counters_->trace->Record(counters_->trace_file_id, pno, write);
  }
  if (counters_->metrics != nullptr) {
    (write ? counters_->metrics->write_pages : counters_->metrics->read_pages)
        .Increment();
  }
}

void Pager::NoteRequest(bool hit) {
  if (metrics() == nullptr) return;
  metrics()->requests.Increment();
  (hit ? metrics()->hits : metrics()->misses).Increment();
}

void Pager::StampChecksum(uint8_t* data) const {
  if (!checksum_) return;
  const uint32_t crc = Crc32(data, usable_size_);
  std::memcpy(data + usable_size_, &crc, 4);
}

Status Pager::VerifyChecksum(const uint8_t* data, uint32_t pno) const {
  if (!checksum_) return Status::OK();
  uint32_t stored = 0;
  std::memcpy(&stored, data + usable_size_, 4);
  const uint32_t actual = Crc32(data, usable_size_);
  if (stored == actual) return Status::OK();
  // A page the file grew over but never wrote back (e.g. allocated then
  // rolled back) reads as all zeros; that is not corruption.
  if (stored == 0 && AllZero(data, usable_size_)) return Status::OK();
  return Status::Corruption(
      StrPrintf("page %u of '%s' fails CRC (stored %08x, computed %08x)", pno,
                path_.c_str(), stored, actual));
}

Result<std::unique_ptr<Pager>> Pager::Open(Env* env, const std::string& path,
                                           IoCounters* counters, int frames,
                                           Journal* journal,
                                           const StorageOptions& sopts) {
  if (frames < 1 || frames > 1024) {
    return Status::Invalid("pager frame count must be in [1, 1024]");
  }
  if (sopts.page_size < 512 || sopts.page_size > 65536 ||
      sopts.page_size % 256 != 0) {
    return Status::Invalid(
        StrPrintf("page size %u must be in [512, 65536] and a multiple of 256",
                  sopts.page_size));
  }
  if (sopts.pool != nullptr && sopts.pool->page_size() != sopts.page_size) {
    return Status::Invalid(
        StrPrintf("pager page size %u does not match buffer pool page size %u",
                  sopts.page_size, sopts.pool->page_size()));
  }
  // Journal the creation before it happens, so rolling back a statement
  // that made this relation's first file deletes the file again.
  if (journal != nullptr && !env->FileExists(path)) {
    TDB_RETURN_NOT_OK(journal->BeforeFileRewrite(path));
  }
  TDB_ASSIGN_OR_RETURN(auto file, env->OpenOrCreate(path));
  TDB_ASSIGN_OR_RETURN(uint64_t size, file->Size());
  if (size % sopts.page_size != 0) {
    return Status::Corruption(
        StrPrintf("file '%s' size %llu is not page aligned", path.c_str(),
                  static_cast<unsigned long long>(size)));
  }
  return std::unique_ptr<Pager>(
      new Pager(std::move(file), path, counters,
                static_cast<uint32_t>(size / sopts.page_size), frames, journal,
                sopts));
}

Status Pager::WriteBack(uint32_t pno, uint8_t* data, IoCategory cat) {
  // WAL discipline: the on-disk pre-image of this page must be in the
  // journal (and, in sync mode, on stable storage) before the overwrite.
  if (journal_ != nullptr) {
    TDB_RETURN_NOT_OK(journal_->BeforePageWrite(path_, file_.get(), pno));
  }
  StampChecksum(data);
  TDB_RETURN_NOT_OK(file_->Write(static_cast<uint64_t>(pno) * page_size_,
                                 data, page_size_));
  Count(/*write=*/true, cat, pno);
  return Status::OK();
}

Status Pager::LoadFrom(uint32_t pno, uint8_t* out, bool count,
                       IoCategory cat) {
  TDB_RETURN_NOT_OK(file_->Read(static_cast<uint64_t>(pno) * page_size_,
                                page_size_, out));
  TDB_RETURN_NOT_OK(VerifyChecksum(out, pno));
  if (count) Count(/*write=*/false, cat, pno);
  return Status::OK();
}

Status Pager::GrowFile() {
  const uint64_t new_size = static_cast<uint64_t>(page_count_) * page_size_;
  if (journal_ != nullptr) {
    TDB_RETURN_NOT_OK(journal_->BeforeTruncate(path_, file_.get(), new_size));
  }
  return file_->Truncate(new_size);
}

Pager::Frame* Pager::FindFrame(uint32_t pno) {
  for (Frame& frame : frames_) {
    if (frame.pno == pno) return &frame;
  }
  return nullptr;
}

Status Pager::FlushFrame(Frame* frame) {
  if (!frame->dirty || frame->pno == kNoPage) return Status::OK();
  TDB_RETURN_NOT_OK(WriteBack(frame->pno, frame->data.data(),
                              frame->category));
  frame->dirty = false;
  return Status::OK();
}

Result<Pager::Frame*> Pager::EvictableFrame() {
  Frame* victim = &frames_[0];
  for (Frame& frame : frames_) {
    if (frame.pno == kNoPage) {
      victim = &frame;
      break;
    }
    if (frame.last_use < victim->last_use) victim = &frame;
  }
  if (victim->pno != kNoPage && metrics() != nullptr) {
    metrics()->evictions.Increment();
  }
  TDB_RETURN_NOT_OK(FlushFrame(victim));
  return victim;
}

Result<uint8_t*> Pager::ReadPage(uint32_t pno, IoCategory cat) {
  if (pno >= page_count_) {
    return Status::OutOfRange(StrPrintf("page %u >= page count %u in '%s'",
                                        pno, page_count_, path_.c_str()));
  }
  if (pool_ != nullptr) return pool_->ReadPage(this, pno, cat);
  Frame* frame = FindFrame(pno);
  NoteRequest(frame != nullptr);
  if (frame == nullptr) {
    TDB_ASSIGN_OR_RETURN(frame, EvictableFrame());
    TDB_RETURN_NOT_OK(LoadFrom(pno, frame->data.data(), /*count=*/true, cat));
    frame->pno = pno;
    frame->category = cat;
    frame->dirty = false;
    BumpGeneration();
  }
  frame->last_use = ++tick_;
  last_touched_ = frame;
  return frame->data.data();
}

void Pager::MarkDirty() {
  if (pool_ != nullptr) {
    pool_->MarkDirty(this);
    return;
  }
  if (last_touched_ != nullptr) last_touched_->dirty = true;
}

Status Pager::ReadPageInto(uint32_t pno, IoCategory cat, uint8_t* out) {
  if (pool_ != nullptr) {
    if (pno >= page_count_) {
      return Status::OutOfRange(StrPrintf("page %u >= page count %u in '%s'",
                                          pno, page_count_, path_.c_str()));
    }
    return pool_->ReadPageInto(this, pno, cat, out);
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (pno >= page_count_) {
    return Status::OutOfRange(StrPrintf("page %u >= page count %u in '%s'",
                                        pno, page_count_, path_.c_str()));
  }
  Frame* frame = FindFrame(pno);
  NoteRequest(frame != nullptr);
  if (frame != nullptr) {
    std::memcpy(out, frame->data.data(), page_size_);
    return Status::OK();
  }
  return LoadFrom(pno, out, /*count=*/true, cat);
}

Status Pager::PrimeFrame(uint32_t pno, IoCategory cat) {
  if (pno >= page_count_) return Status::OK();
  if (pool_ != nullptr) return pool_->PrimeFrame(this, pno, cat);
  std::lock_guard<std::mutex> lock(mu_);
  Frame* frame = FindFrame(pno);
  if (frame == nullptr) {
    TDB_ASSIGN_OR_RETURN(frame, EvictableFrame());
    // Deliberately uncounted: the parallel workers already charged the read
    // of this page; this load only restores the serial scan's end state.
    TDB_RETURN_NOT_OK(LoadFrom(pno, frame->data.data(), /*count=*/false, cat));
    frame->pno = pno;
    frame->category = cat;
    frame->dirty = false;
    BumpGeneration();
  }
  frame->last_use = ++tick_;
  last_touched_ = frame;
  return Status::OK();
}

std::vector<uint32_t> Pager::ResidentPages() const {
  if (pool_ != nullptr) return pool_->ResidentPages(this);
  std::vector<uint32_t> pnos;
  for (const Frame& frame : frames_) {
    if (frame.pno != kNoPage) pnos.push_back(frame.pno);
  }
  return pnos;
}

Result<uint32_t> Pager::AllocatePage(IoCategory cat) {
  const uint32_t pno = page_count_;
  uint8_t* data = nullptr;
  if (pool_ != nullptr) {
    TDB_ASSIGN_OR_RETURN(data, pool_->AllocatePage(this, pno, cat));
  } else {
    TDB_ASSIGN_OR_RETURN(Frame * frame, EvictableFrame());
    std::memset(frame->data.data(), 0, page_size_);
    frame->pno = pno;
    frame->category = cat;
    frame->dirty = true;
    frame->last_use = ++tick_;
    last_touched_ = frame;
    BumpGeneration();
    data = frame->data.data();
  }
  // Format a valid empty page header (no overflow link).
  uint32_t none = kNoPage;
  std::memcpy(data, &none, 4);
  ++page_count_;
  // Extend the file now so page_count derived from size stays consistent
  // even if the frame is evicted later.
  TDB_RETURN_NOT_OK(GrowFile());
  return pno;
}

Status Pager::Readahead(uint32_t pno, int n, IoCategory cat) {
  if (pool_ == nullptr || n <= 0) return Status::OK();
  for (int i = 0; i < n; ++i) {
    const uint64_t p = static_cast<uint64_t>(pno) + static_cast<uint64_t>(i);
    if (p >= page_count_) break;
    TDB_RETURN_NOT_OK(pool_->Prefetch(this, static_cast<uint32_t>(p), cat));
  }
  return Status::OK();
}

Status Pager::Sync() {
  if (metrics() != nullptr) metrics()->syncs.Increment();
  return file_->Sync();
}

Status Pager::Flush() {
  if (pool_ != nullptr) return pool_->Flush(this);
  for (Frame& frame : frames_) TDB_RETURN_NOT_OK(FlushFrame(&frame));
  return Status::OK();
}

Status Pager::FlushAndDrop() {
  if (pool_ != nullptr) return pool_->FlushAndDrop(this);
  TDB_RETURN_NOT_OK(Flush());
  for (Frame& frame : frames_) frame.pno = kNoPage;
  last_touched_ = nullptr;
  BumpGeneration();
  return Status::OK();
}

Status Pager::Reset() {
  if (journal_ != nullptr) {
    TDB_RETURN_NOT_OK(journal_->BeforeTruncate(path_, file_.get(), 0));
  }
  if (pool_ != nullptr) {
    pool_->DiscardAll(this);
  } else {
    for (Frame& frame : frames_) {
      frame.pno = kNoPage;
      frame.dirty = false;
    }
    last_touched_ = nullptr;
  }
  BumpGeneration();
  page_count_ = 0;
  return file_->Truncate(0);
}

void Pager::DiscardAll() {
  if (pool_ != nullptr) {
    pool_->DiscardAll(this);
  } else {
    for (Frame& frame : frames_) {
      frame.pno = kNoPage;
      frame.dirty = false;
    }
    last_touched_ = nullptr;
  }
  BumpGeneration();
}

}  // namespace tdb
