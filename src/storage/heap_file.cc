#include "storage/heap_file.h"

#include <cstring>

namespace tdb {

namespace {

/// Visits every used slot of pages [0, page_count) in order.
class LinearCursor : public Cursor {
 public:
  LinearCursor(Pager* pager, const RecordLayout& layout, IoCategory cat)
      : pager_(pager), layout_(layout), cat_(cat) {}

  Result<bool> Next() override {
    while (true) {
      if (page_ >= pager_->page_count()) return false;
      TDB_ASSIGN_OR_RETURN(uint8_t* frame, pager_->ReadPage(page_, cat_));
      Page page(frame, layout_.record_size, pager_->usable_size());
      while (slot_ < page.capacity()) {
        uint16_t s = slot_++;
        if (page.SlotUsed(s)) {
          record_.assign(page.RecordAt(s),
                         page.RecordAt(s) + layout_.record_size);
          tid_ = Tid{page_, s};
          return true;
        }
      }
      ++page_;
      slot_ = 0;
    }
  }

  Result<size_t> NextBatch(RecordBatch* batch, size_t max) override {
    // Zero-copy: slices alias the frame of the page just read, so the batch
    // is cut at every page fetch — identical I/O order/counts to Next().
    while (true) {
      if (page_ >= pager_->page_count()) return 0;
      TDB_ASSIGN_OR_RETURN(uint8_t* frame, pager_->ReadPage(page_, cat_));
      Page page(frame, layout_.record_size, pager_->usable_size());
      size_t n = 0;
      while (slot_ < page.capacity() && n < max) {
        uint16_t s = slot_++;
        if (!page.SlotUsed(s)) continue;
        batch->AppendSlice(page.RecordAt(s), Tid{page_, s});
        ++n;
      }
      if (slot_ >= page.capacity()) {
        ++page_;
        slot_ = 0;
      }
      if (n > 0) {
        batch->SetSource(pager_);
        return n;
      }
    }
  }

 private:
  Pager* pager_;
  RecordLayout layout_;
  IoCategory cat_;
  uint32_t page_ = 0;
  uint16_t slot_ = 0;
};

}  // namespace

Result<std::unique_ptr<HeapFile>> HeapFile::Open(std::unique_ptr<Pager> pager,
                                                 const RecordLayout& layout,
                                                 IoCategory category) {
  if (layout.record_size == 0 ||
      layout.record_size > pager->usable_size() - kPageHeaderSize) {
    return Status::Invalid("record size out of range for a page");
  }
  return std::unique_ptr<HeapFile>(
      new HeapFile(std::move(pager), layout, category));
}

Status HeapFile::Insert(const uint8_t* rec, size_t size, Tid* tid) {
  if (size != layout_.record_size) {
    return Status::Invalid("record size mismatch on insert");
  }
  // Reuse a slot freed earlier in this session, if any.
  while (!free_hints_.empty()) {
    Tid hint = free_hints_.back();
    free_hints_.pop_back();
    if (hint.page >= pager_->page_count()) continue;
    TDB_ASSIGN_OR_RETURN(uint8_t* frame, pager_->ReadPage(hint.page,
                                                          category_));
    Page page(frame, layout_.record_size, pager_->usable_size());
    if (page.SlotUsed(hint.slot)) continue;  // stale hint
    std::memcpy(page.RecordAt(hint.slot), rec, size);
    page.SetSlotUsed(hint.slot, true);
    pager_->MarkDirty();
    if (tid != nullptr) *tid = hint;
    return Status::OK();
  }
  uint32_t target;
  if (pager_->page_count() == 0) {
    TDB_ASSIGN_OR_RETURN(target, pager_->AllocatePage(category_));
  } else {
    target = pager_->page_count() - 1;
  }
  TDB_ASSIGN_OR_RETURN(uint8_t* frame, pager_->ReadPage(target, category_));
  Page page(frame, layout_.record_size, pager_->usable_size());
  int slot = page.FirstFreeSlot();
  if (slot < 0) {
    TDB_ASSIGN_OR_RETURN(target, pager_->AllocatePage(category_));
    TDB_ASSIGN_OR_RETURN(frame, pager_->ReadPage(target, category_));
    page = Page(frame, layout_.record_size, pager_->usable_size());
    slot = page.FirstFreeSlot();
  }
  std::memcpy(page.RecordAt(static_cast<uint16_t>(slot)), rec, size);
  page.SetSlotUsed(static_cast<uint16_t>(slot), true);
  pager_->MarkDirty();
  if (tid != nullptr) *tid = Tid{target, static_cast<uint16_t>(slot)};
  return Status::OK();
}

Status HeapFile::InsertAtPage(uint32_t page_hint, const uint8_t* rec,
                              size_t size, Tid* tid) {
  if (size != layout_.record_size) {
    return Status::Invalid("record size mismatch on insert");
  }
  if (page_hint < pager_->page_count()) {
    TDB_ASSIGN_OR_RETURN(uint8_t* frame,
                         pager_->ReadPage(page_hint, category_));
    Page page(frame, layout_.record_size, pager_->usable_size());
    int slot = page.FirstFreeSlot();
    if (slot >= 0) {
      std::memcpy(page.RecordAt(static_cast<uint16_t>(slot)), rec, size);
      page.SetSlotUsed(static_cast<uint16_t>(slot), true);
      pager_->MarkDirty();
      if (tid != nullptr) *tid = Tid{page_hint, static_cast<uint16_t>(slot)};
      return Status::OK();
    }
  }
  return InsertFreshPage(rec, size, tid);
}

Status HeapFile::InsertFreshPage(const uint8_t* rec, size_t size, Tid* tid) {
  if (size != layout_.record_size) {
    return Status::Invalid("record size mismatch on insert");
  }
  TDB_ASSIGN_OR_RETURN(uint32_t pno, pager_->AllocatePage(category_));
  TDB_ASSIGN_OR_RETURN(uint8_t* frame, pager_->ReadPage(pno, category_));
  Page page(frame, layout_.record_size, pager_->usable_size());
  page.Format();
  std::memcpy(page.RecordAt(0), rec, size);
  page.SetSlotUsed(0, true);
  pager_->MarkDirty();
  if (tid != nullptr) *tid = Tid{pno, 0};
  return Status::OK();
}

Status HeapFile::UpdateInPlace(const Tid& tid, const uint8_t* rec,
                               size_t size) {
  if (size != layout_.record_size) {
    return Status::Invalid("record size mismatch on update");
  }
  TDB_ASSIGN_OR_RETURN(uint8_t* frame, pager_->ReadPage(tid.page, category_));
  Page page(frame, layout_.record_size, pager_->usable_size());
  if (!page.SlotUsed(tid.slot)) {
    return Status::NotFound("update of unused slot");
  }
  std::memcpy(page.RecordAt(tid.slot), rec, size);
  pager_->MarkDirty();
  return Status::OK();
}

Status HeapFile::Erase(const Tid& tid) {
  TDB_ASSIGN_OR_RETURN(uint8_t* frame, pager_->ReadPage(tid.page, category_));
  Page page(frame, layout_.record_size, pager_->usable_size());
  if (!page.SlotUsed(tid.slot)) return Status::NotFound("erase of unused slot");
  page.SetSlotUsed(tid.slot, false);
  pager_->MarkDirty();
  free_hints_.push_back(tid);
  return Status::OK();
}

Result<std::unique_ptr<Cursor>> HeapFile::Scan() {
  return std::unique_ptr<Cursor>(
      new LinearCursor(pager_.get(), layout_, category_));
}

Result<std::unique_ptr<Cursor>> HeapFile::ScanKey(const Value&) {
  return Status::NotSupported("heap files have no key access path");
}

Result<std::vector<uint8_t>> HeapFile::Fetch(const Tid& tid) {
  TDB_ASSIGN_OR_RETURN(uint8_t* frame, pager_->ReadPage(tid.page, category_));
  Page page(frame, layout_.record_size, pager_->usable_size());
  if (!page.SlotUsed(tid.slot)) return Status::NotFound("fetch of unused slot");
  return std::vector<uint8_t>(page.RecordAt(tid.slot),
                              page.RecordAt(tid.slot) + layout_.record_size);
}

}  // namespace tdb
