#include "storage/btree_file.h"

#include <algorithm>
#include <cstring>
#include <set>
#include <vector>

#include "util/stringx.h"

namespace tdb {

namespace {

// ---------------------------------------------------------------------------
// Node layouts over a 1024-byte frame.
//
// Leaf (and leaf-overflow) pages:
//   [0..3]   next leaf in key order (kNoPage at the right edge / on
//            overflow pages)
//   [4..7]   next overflow page of this leaf (kNoPage if none)
//   [8..15]  64-bit slot bitmap
//   [16.. ]  record slots
//
// Internal pages:
//   [0..3]   marker kInternalMarker
//   [4..5]   entry count
//   [6..7]   reserved
//   [8..11]  leftmost child
//   [12.. ]  entries: (separator key bytes, child page) pairs, sorted
// ---------------------------------------------------------------------------

constexpr uint32_t kInternalMarker = 0xFFFFFFFE;
constexpr uint32_t kLeafHeader = 16;
constexpr uint32_t kInternalHeader = 12;

class LeafView {
 public:
  LeafView(uint8_t* frame, uint16_t record_size, uint32_t usable = kPageSize)
      : frame_(frame), record_size_(record_size), usable_(usable) {}

  static uint16_t Capacity(uint16_t record_size, uint32_t usable = kPageSize) {
    uint16_t cap = static_cast<uint16_t>((usable - kLeafHeader) /
                                         record_size);
    return cap > 64 ? 64 : cap;
  }
  uint16_t capacity() const { return Capacity(record_size_, usable_); }

  uint32_t next_leaf() const { return Get32(0); }
  void set_next_leaf(uint32_t v) { Put32(0, v); }
  uint32_t overflow() const { return Get32(4); }
  void set_overflow(uint32_t v) { Put32(4, v); }

  uint64_t bitmap() const {
    uint64_t v;
    std::memcpy(&v, frame_ + 8, 8);
    return v;
  }
  void set_bitmap(uint64_t v) { std::memcpy(frame_ + 8, &v, 8); }
  bool SlotUsed(uint16_t slot) const { return (bitmap() >> slot) & 1u; }
  void SetSlotUsed(uint16_t slot, bool used) {
    uint64_t bm = bitmap();
    if (used) {
      bm |= uint64_t{1} << slot;
    } else {
      bm &= ~(uint64_t{1} << slot);
    }
    set_bitmap(bm);
  }
  int FirstFreeSlot() const {
    uint64_t bm = bitmap();
    for (uint16_t i = 0; i < capacity(); ++i) {
      if (!((bm >> i) & 1u)) return i;
    }
    return -1;
  }
  uint8_t* RecordAt(uint16_t slot) {
    return frame_ + kLeafHeader + slot * record_size_;
  }
  const uint8_t* RecordAt(uint16_t slot) const {
    return frame_ + kLeafHeader + slot * record_size_;
  }
  void Format() {
    set_next_leaf(kNoPage);
    set_overflow(kNoPage);
    set_bitmap(0);
  }

 private:
  uint32_t Get32(size_t off) const {
    uint32_t v;
    std::memcpy(&v, frame_ + off, 4);
    return v;
  }
  void Put32(size_t off, uint32_t v) { std::memcpy(frame_ + off, &v, 4); }

  uint8_t* frame_;
  uint16_t record_size_;
  uint32_t usable_;
};

class InternalView {
 public:
  InternalView(uint8_t* frame, uint16_t key_width, uint32_t usable = kPageSize)
      : frame_(frame), key_width_(key_width), usable_(usable) {}

  static bool IsInternal(const uint8_t* frame) {
    uint32_t marker;
    std::memcpy(&marker, frame, 4);
    return marker == kInternalMarker;
  }

  uint16_t Capacity() const {
    return static_cast<uint16_t>((usable_ - kInternalHeader) /
                                 (key_width_ + 4u));
  }
  uint16_t count() const {
    uint16_t v;
    std::memcpy(&v, frame_ + 4, 2);
    return v;
  }
  void set_count(uint16_t v) { std::memcpy(frame_ + 4, &v, 2); }
  uint32_t child0() const {
    uint32_t v;
    std::memcpy(&v, frame_ + 8, 4);
    return v;
  }
  void set_child0(uint32_t v) { std::memcpy(frame_ + 8, &v, 4); }

  const uint8_t* KeyAt(uint16_t i) const {
    return frame_ + kInternalHeader + i * (key_width_ + 4u);
  }
  uint32_t ChildAt(uint16_t i) const {
    uint32_t v;
    std::memcpy(&v, KeyAt(i) + key_width_, 4);
    return v;
  }
  void SetEntry(uint16_t i, const uint8_t* key, uint32_t child) {
    uint8_t* p = frame_ + kInternalHeader + i * (key_width_ + 4u);
    std::memcpy(p, key, key_width_);
    std::memcpy(p + key_width_, &child, 4);
  }
  /// Shifts entries [i, count) right by one and writes the new entry at i.
  void InsertEntry(uint16_t i, const uint8_t* key, uint32_t child) {
    uint8_t* base = frame_ + kInternalHeader;
    size_t entry = key_width_ + 4u;
    std::memmove(base + (i + 1) * entry, base + i * entry,
                 (count() - i) * entry);
    SetEntry(i, key, child);
    set_count(static_cast<uint16_t>(count() + 1));
  }
  void Format() {
    uint32_t marker = kInternalMarker;
    std::memcpy(frame_, &marker, 4);
    set_count(0);
    frame_[6] = frame_[7] = 0;
    set_child0(kNoPage);
  }

 private:
  uint8_t* frame_;
  uint16_t key_width_;
  uint32_t usable_;
};

/// Cursor over the leaf chain.  Slots inside a leaf (and its overflow
/// pages) are unsorted, so each *leaf group* (primary page + overflow
/// chain) is buffered and sorted by key before being emitted — the pages
/// read (and counted) are identical, but the stream is globally key
/// ordered.  With range bounds the walk stops once a whole group lies
/// beyond the upper bound.
class BtreeCursor : public Cursor {
 public:
  BtreeCursor(Pager* pager, const RecordLayout& layout, uint32_t start_leaf,
              std::optional<Value> lo, bool lo_inclusive,
              std::optional<Value> hi, bool hi_inclusive, bool single_leaf)
      : pager_(pager),
        layout_(layout),
        next_group_(start_leaf),
        lo_(std::move(lo)),
        lo_inclusive_(lo_inclusive),
        hi_(std::move(hi)),
        hi_inclusive_(hi_inclusive),
        single_leaf_(single_leaf) {}

  Result<bool> Next() override {
    while (true) {
      if (pos_ < buffered_.size()) {
        const BufferedRecord& r = buffered_[pos_++];
        record_ = r.bytes;
        tid_ = r.tid;
        return true;
      }
      if (done_) return false;
      TDB_RETURN_NOT_OK(LoadNextGroup());
    }
  }

 private:
  struct BufferedRecord {
    std::vector<uint8_t> bytes;
    Tid tid;
  };

  /// Reads one leaf group (primary + overflow chain), filters by bounds,
  /// sorts by key, and decides whether the walk can stop.
  Status LoadNextGroup() {
    buffered_.clear();
    pos_ = 0;
    if (next_group_ == kNoPage) {
      done_ = true;
      return Status::OK();
    }
    uint32_t page = next_group_;
    bool on_overflow = false;
    bool group_had_records = false;
    bool group_all_above_hi = true;
    uint32_t next_leaf = kNoPage;
    while (page != kNoPage) {
      TDB_ASSIGN_OR_RETURN(
          uint8_t* frame,
          pager_->ReadPage(page, on_overflow ? IoCategory::kOverflow
                                             : IoCategory::kData));
      LeafView leaf(frame, layout_.record_size, pager_->usable_size());
      if (!on_overflow) next_leaf = leaf.next_leaf();
      for (uint16_t s = 0; s < leaf.capacity(); ++s) {
        if (!leaf.SlotUsed(s)) continue;
        group_had_records = true;
        Value key = layout_.KeyOf(leaf.RecordAt(s));
        if (hi_.has_value()) {
          TDB_ASSIGN_OR_RETURN(int c, Value::Compare(key, *hi_));
          bool above = c > 0 || (c == 0 && !hi_inclusive_);
          if (above) continue;
          group_all_above_hi = false;
        } else {
          group_all_above_hi = false;
        }
        if (lo_.has_value()) {
          TDB_ASSIGN_OR_RETURN(int c, Value::Compare(key, *lo_));
          if (c < 0 || (c == 0 && !lo_inclusive_)) continue;
        }
        buffered_.push_back(
            {std::vector<uint8_t>(leaf.RecordAt(s),
                                  leaf.RecordAt(s) + layout_.record_size),
             Tid{page, s}});
      }
      page = leaf.overflow();
      on_overflow = true;
    }
    Status cmp_error = Status::OK();
    std::stable_sort(buffered_.begin(), buffered_.end(),
                     [&](const BufferedRecord& a, const BufferedRecord& b) {
                       auto c = Value::Compare(layout_.KeyOf(a.bytes.data()),
                                               layout_.KeyOf(b.bytes.data()));
                       if (!c.ok()) {
                         cmp_error = c.status();
                         return false;
                       }
                       return *c < 0;
                     });
    TDB_RETURN_NOT_OK(cmp_error);
    if (single_leaf_ ||
        (hi_.has_value() && group_had_records && group_all_above_hi)) {
      done_ = true;  // no later leaf can contribute
    } else {
      next_group_ = next_leaf;
      if (next_group_ == kNoPage) done_ = true;
    }
    return Status::OK();
  }

  Pager* pager_;
  RecordLayout layout_;
  uint32_t next_group_;
  std::optional<Value> lo_;
  bool lo_inclusive_;
  std::optional<Value> hi_;
  bool hi_inclusive_;
  bool single_leaf_;
  std::vector<BufferedRecord> buffered_;
  size_t pos_ = 0;
  bool done_ = false;
};

}  // namespace

Result<std::unique_ptr<BtreeFile>> BtreeFile::Create(
    std::unique_ptr<Pager> pager, const RecordLayout& layout) {
  if (!layout.has_key()) return Status::Invalid("btree file needs a key");
  if (LeafView::Capacity(layout.record_size, pager->usable_size()) < 2) {
    return Status::Invalid("record too large for a btree leaf");
  }
  TDB_RETURN_NOT_OK(pager->Reset());
  TDB_ASSIGN_OR_RETURN(uint32_t root, pager->AllocatePage(IoCategory::kData));
  TDB_ASSIGN_OR_RETURN(uint8_t* frame, pager->ReadPage(root, IoCategory::kData));
  LeafView leaf(frame, layout.record_size, pager->usable_size());
  leaf.Format();
  pager->MarkDirty();
  TDB_RETURN_NOT_OK(pager->Flush());
  return Open(std::move(pager), layout);
}

Result<std::unique_ptr<BtreeFile>> BtreeFile::Open(
    std::unique_ptr<Pager> pager, const RecordLayout& layout) {
  if (!layout.has_key()) return Status::Invalid("btree file needs a key");
  if (pager->page_count() == 0) {
    return Status::Corruption("btree file has no root page");
  }
  return std::unique_ptr<BtreeFile>(new BtreeFile(std::move(pager), layout));
}

Result<uint32_t> BtreeFile::FindLeaf(const Value& key) {
  uint32_t pno = 0;
  while (true) {
    TDB_ASSIGN_OR_RETURN(uint8_t* frame,
                         pager_->ReadPage(pno, IoCategory::kDirectory));
    if (!InternalView::IsInternal(frame)) return pno;
    InternalView node(frame, layout_.key_width, pager_->usable_size());
    uint32_t child = node.child0();
    for (uint16_t i = 0; i < node.count(); ++i) {
      Value sep = layout_.KeyFromBytes(node.KeyAt(i));
      TDB_ASSIGN_OR_RETURN(int c, Value::Compare(sep, key));
      if (c <= 0) {
        child = node.ChildAt(i);
      } else {
        break;
      }
    }
    pno = child;
  }
}

Result<uint32_t> BtreeFile::LeftmostLeaf() {
  uint32_t pno = 0;
  while (true) {
    TDB_ASSIGN_OR_RETURN(uint8_t* frame,
                         pager_->ReadPage(pno, IoCategory::kDirectory));
    if (!InternalView::IsInternal(frame)) return pno;
    InternalView node(frame, layout_.key_width, pager_->usable_size());
    pno = node.child0();
  }
}

Result<int> BtreeFile::Height() {
  int height = 1;
  uint32_t pno = 0;
  while (true) {
    TDB_ASSIGN_OR_RETURN(uint8_t* frame,
                         pager_->ReadPage(pno, IoCategory::kDirectory));
    if (!InternalView::IsInternal(frame)) return height;
    InternalView node(frame, layout_.key_width, pager_->usable_size());
    pno = node.child0();
    ++height;
  }
}

Result<BtreeFile::SplitResult> BtreeFile::SplitLeaf(uint32_t pno) {
  // Snapshot the records (the frame is a single buffer; we cannot hold two
  // pages at once).
  std::vector<std::vector<uint8_t>> records;
  uint32_t next_leaf;
  {
    TDB_ASSIGN_OR_RETURN(uint8_t* frame,
                         pager_->ReadPage(pno, IoCategory::kData));
    LeafView leaf(frame, layout_.record_size, pager_->usable_size());
    next_leaf = leaf.next_leaf();
    for (uint16_t s = 0; s < leaf.capacity(); ++s) {
      if (leaf.SlotUsed(s)) {
        records.emplace_back(leaf.RecordAt(s),
                             leaf.RecordAt(s) + layout_.record_size);
      }
    }
  }
  // Median distinct key becomes the separator.
  Status cmp_error = Status::OK();
  std::sort(records.begin(), records.end(),
            [&](const std::vector<uint8_t>& a, const std::vector<uint8_t>& b) {
              auto c = Value::Compare(layout_.KeyOf(a.data()),
                                      layout_.KeyOf(b.data()));
              if (!c.ok()) {
                cmp_error = c.status();
                return false;
              }
              return *c < 0;
            });
  TDB_RETURN_NOT_OK(cmp_error);
  std::vector<size_t> distinct_starts = {0};
  for (size_t i = 1; i < records.size(); ++i) {
    if (!layout_.KeyOf(records[i].data())
             .Equals(layout_.KeyOf(records[i - 1].data()))) {
      distinct_starts.push_back(i);
    }
  }
  if (distinct_starts.size() < 2) {
    return Status::Internal("split of a single-key leaf");
  }
  size_t sep_at = distinct_starts[distinct_starts.size() / 2];
  if (sep_at == 0) sep_at = distinct_starts[1];
  SplitResult result;
  result.split = true;
  result.sep_key.assign(
      records[sep_at].data() + layout_.key_offset,
      records[sep_at].data() + layout_.key_offset + layout_.key_width);

  // Build the right sibling.
  TDB_ASSIGN_OR_RETURN(uint32_t right, pager_->AllocatePage(IoCategory::kData));
  result.right = right;
  {
    TDB_ASSIGN_OR_RETURN(uint8_t* frame,
                         pager_->ReadPage(right, IoCategory::kData));
    LeafView leaf(frame, layout_.record_size, pager_->usable_size());
    leaf.Format();
    leaf.set_next_leaf(next_leaf);
    for (size_t i = sep_at; i < records.size(); ++i) {
      uint16_t slot = static_cast<uint16_t>(i - sep_at);
      std::memcpy(leaf.RecordAt(slot), records[i].data(),
                  layout_.record_size);
      leaf.SetSlotUsed(slot, true);
    }
    pager_->MarkDirty();
  }
  // Rewrite the left leaf with the lower half.
  {
    TDB_ASSIGN_OR_RETURN(uint8_t* frame,
                         pager_->ReadPage(pno, IoCategory::kData));
    LeafView leaf(frame, layout_.record_size, pager_->usable_size());
    leaf.Format();
    leaf.set_next_leaf(right);
    for (size_t i = 0; i < sep_at; ++i) {
      std::memcpy(leaf.RecordAt(static_cast<uint16_t>(i)), records[i].data(),
                  layout_.record_size);
      leaf.SetSlotUsed(static_cast<uint16_t>(i), true);
    }
    pager_->MarkDirty();
  }
  return result;
}

Result<BtreeFile::SplitResult> BtreeFile::InsertRec(uint32_t pno,
                                                    const uint8_t* rec,
                                                    Tid* tid) {
  Value key = layout_.KeyOf(rec);
  bool is_internal;
  {
    TDB_ASSIGN_OR_RETURN(uint8_t* frame,
                         pager_->ReadPage(pno, IoCategory::kDirectory));
    is_internal = InternalView::IsInternal(frame);
  }

  if (is_internal) {
    uint32_t child;
    uint16_t child_pos;  // 0 = child0, i+1 = entry i's child
    {
      TDB_ASSIGN_OR_RETURN(uint8_t* frame,
                           pager_->ReadPage(pno, IoCategory::kDirectory));
      InternalView node(frame, layout_.key_width, pager_->usable_size());
      child = node.child0();
      child_pos = 0;
      for (uint16_t i = 0; i < node.count(); ++i) {
        Value sep = layout_.KeyFromBytes(node.KeyAt(i));
        TDB_ASSIGN_OR_RETURN(int c, Value::Compare(sep, key));
        if (c <= 0) {
          child = node.ChildAt(i);
          child_pos = static_cast<uint16_t>(i + 1);
        } else {
          break;
        }
      }
    }
    TDB_ASSIGN_OR_RETURN(SplitResult child_split, InsertRec(child, rec, tid));
    if (!child_split.split) return SplitResult{};

    // Install (sep, right) after the child's position.
    TDB_ASSIGN_OR_RETURN(uint8_t* frame,
                         pager_->ReadPage(pno, IoCategory::kDirectory));
    InternalView node(frame, layout_.key_width, pager_->usable_size());
    if (node.count() < node.Capacity()) {
      node.InsertEntry(child_pos, child_split.sep_key.data(),
                       child_split.right);
      pager_->MarkDirty();
      return SplitResult{};
    }
    // Split this internal node: snapshot entries, keep the lower half here,
    // promote the middle separator, move the rest to a new node.
    struct Entry {
      std::vector<uint8_t> key;
      uint32_t child;
    };
    std::vector<Entry> entries;
    uint32_t c0 = node.child0();
    for (uint16_t i = 0; i < node.count(); ++i) {
      entries.push_back({std::vector<uint8_t>(node.KeyAt(i),
                                              node.KeyAt(i) +
                                                  layout_.key_width),
                         node.ChildAt(i)});
    }
    entries.insert(entries.begin() + child_pos,
                   {child_split.sep_key, child_split.right});

    size_t mid = entries.size() / 2;
    SplitResult result;
    result.split = true;
    result.sep_key = entries[mid].key;
    TDB_ASSIGN_OR_RETURN(uint32_t right_pno,
                         pager_->AllocatePage(IoCategory::kDirectory));
    result.right = right_pno;
    {
      TDB_ASSIGN_OR_RETURN(uint8_t* rframe,
                           pager_->ReadPage(right_pno, IoCategory::kDirectory));
      InternalView right(rframe, layout_.key_width, pager_->usable_size());
      right.Format();
      right.set_child0(entries[mid].child);
      uint16_t n = 0;
      for (size_t i = mid + 1; i < entries.size(); ++i, ++n) {
        right.SetEntry(n, entries[i].key.data(), entries[i].child);
      }
      right.set_count(n);
      pager_->MarkDirty();
    }
    {
      TDB_ASSIGN_OR_RETURN(uint8_t* lframe,
                           pager_->ReadPage(pno, IoCategory::kDirectory));
      InternalView left(lframe, layout_.key_width, pager_->usable_size());
      left.Format();
      left.set_child0(c0);
      for (size_t i = 0; i < mid; ++i) {
        left.SetEntry(static_cast<uint16_t>(i), entries[i].key.data(),
                      entries[i].child);
      }
      left.set_count(static_cast<uint16_t>(mid));
      pager_->MarkDirty();
    }
    return result;
  }

  // --- leaf ---
  {
    TDB_ASSIGN_OR_RETURN(uint8_t* frame,
                         pager_->ReadPage(pno, IoCategory::kData));
    LeafView leaf(frame, layout_.record_size, pager_->usable_size());
    int slot = leaf.FirstFreeSlot();
    if (slot >= 0) {
      std::memcpy(leaf.RecordAt(static_cast<uint16_t>(slot)), rec,
                  layout_.record_size);
      leaf.SetSlotUsed(static_cast<uint16_t>(slot), true);
      pager_->MarkDirty();
      if (tid != nullptr) *tid = Tid{pno, static_cast<uint16_t>(slot)};
      return SplitResult{};
    }
  }
  // Full primary page.  If the leaf already spilled (or holds one distinct
  // key), grow/extend its overflow chain — the multi-version pile-up.
  bool single_key = true;
  uint32_t overflow;
  {
    TDB_ASSIGN_OR_RETURN(uint8_t* frame,
                         pager_->ReadPage(pno, IoCategory::kData));
    LeafView leaf(frame, layout_.record_size, pager_->usable_size());
    overflow = leaf.overflow();
    Value first;
    bool have_first = false;
    for (uint16_t s = 0; s < leaf.capacity() && single_key; ++s) {
      if (!leaf.SlotUsed(s)) continue;
      Value k = layout_.KeyOf(leaf.RecordAt(s));
      if (!have_first) {
        first = k;
        have_first = true;
      } else if (!k.Equals(first)) {
        single_key = false;
      }
    }
  }
  if (overflow != kNoPage || single_key) {
    // Walk (or start) the overflow chain.
    uint32_t prev = pno;
    uint32_t cur = overflow;
    while (cur != kNoPage) {
      TDB_ASSIGN_OR_RETURN(uint8_t* frame,
                           pager_->ReadPage(cur, IoCategory::kOverflow));
      LeafView page(frame, layout_.record_size, pager_->usable_size());
      int slot = page.FirstFreeSlot();
      if (slot >= 0) {
        std::memcpy(page.RecordAt(static_cast<uint16_t>(slot)), rec,
                    layout_.record_size);
        page.SetSlotUsed(static_cast<uint16_t>(slot), true);
        pager_->MarkDirty();
        if (tid != nullptr) *tid = Tid{cur, static_cast<uint16_t>(slot)};
        return SplitResult{};
      }
      prev = cur;
      cur = page.overflow();
    }
    TDB_ASSIGN_OR_RETURN(uint32_t fresh,
                         pager_->AllocatePage(IoCategory::kOverflow));
    {
      TDB_ASSIGN_OR_RETURN(uint8_t* frame,
                           pager_->ReadPage(fresh, IoCategory::kOverflow));
      LeafView page(frame, layout_.record_size, pager_->usable_size());
      page.Format();
      std::memcpy(page.RecordAt(0), rec, layout_.record_size);
      page.SetSlotUsed(0, true);
      pager_->MarkDirty();
    }
    {
      TDB_ASSIGN_OR_RETURN(
          uint8_t* frame,
          pager_->ReadPage(prev, prev == pno ? IoCategory::kData
                                             : IoCategory::kOverflow));
      LeafView page(frame, layout_.record_size, pager_->usable_size());
      page.set_overflow(fresh);
      pager_->MarkDirty();
    }
    if (tid != nullptr) *tid = Tid{fresh, 0};
    return SplitResult{};
  }
  // Multiple distinct keys: split, then place the record on the proper side.
  TDB_ASSIGN_OR_RETURN(SplitResult split, SplitLeaf(pno));
  Value sep = layout_.KeyFromBytes(split.sep_key.data());
  TDB_ASSIGN_OR_RETURN(int c, Value::Compare(key, sep));
  uint32_t target = c < 0 ? pno : split.right;
  {
    TDB_ASSIGN_OR_RETURN(uint8_t* frame,
                         pager_->ReadPage(target, IoCategory::kData));
    LeafView leaf(frame, layout_.record_size, pager_->usable_size());
    int slot = leaf.FirstFreeSlot();
    if (slot < 0) return Status::Internal("no slot after leaf split");
    std::memcpy(leaf.RecordAt(static_cast<uint16_t>(slot)), rec,
                layout_.record_size);
    leaf.SetSlotUsed(static_cast<uint16_t>(slot), true);
    pager_->MarkDirty();
    if (tid != nullptr) *tid = Tid{target, static_cast<uint16_t>(slot)};
  }
  return split;
}

Status BtreeFile::Insert(const uint8_t* rec, size_t size, Tid* tid) {
  if (size != layout_.record_size) {
    return Status::Invalid("record size mismatch on insert");
  }
  TDB_ASSIGN_OR_RETURN(SplitResult split, InsertRec(0, rec, tid));
  if (!split.split) return Status::OK();

  // The root split: move its (already-halved) content to a fresh `left`
  // page and turn page 0 into an internal node over {left, right}.
  TDB_ASSIGN_OR_RETURN(uint32_t left, pager_->AllocatePage(IoCategory::kData));
  std::vector<uint8_t> snapshot(pager_->page_size());
  {
    TDB_ASSIGN_OR_RETURN(uint8_t* frame,
                         pager_->ReadPage(0, IoCategory::kDirectory));
    std::memcpy(snapshot.data(), frame, pager_->page_size());
  }
  {
    TDB_ASSIGN_OR_RETURN(uint8_t* frame,
                         pager_->ReadPage(left, IoCategory::kData));
    std::memcpy(frame, snapshot.data(), pager_->page_size());
    pager_->MarkDirty();
  }
  // Records that were in the root (if it was a leaf) moved to `left`; the
  // caller-visible tid must follow.
  if (tid != nullptr && tid->page == 0) tid->page = left;
  {
    TDB_ASSIGN_OR_RETURN(uint8_t* frame,
                         pager_->ReadPage(0, IoCategory::kDirectory));
    InternalView root(frame, layout_.key_width, pager_->usable_size());
    root.Format();
    root.set_child0(left);
    root.SetEntry(0, split.sep_key.data(), split.right);
    root.set_count(1);
    pager_->MarkDirty();
  }
  return Status::OK();
}

Status BtreeFile::UpdateInPlace(const Tid& tid, const uint8_t* rec,
                                size_t size) {
  if (size != layout_.record_size) {
    return Status::Invalid("record size mismatch on update");
  }
  TDB_ASSIGN_OR_RETURN(uint8_t* frame,
                       pager_->ReadPage(tid.page, IoCategory::kData));
  if (InternalView::IsInternal(frame)) {
    return Status::Invalid("tid points at an internal btree node");
  }
  LeafView leaf(frame, layout_.record_size, pager_->usable_size());
  if (!leaf.SlotUsed(tid.slot)) return Status::NotFound("update of unused slot");
  std::memcpy(leaf.RecordAt(tid.slot), rec, size);
  pager_->MarkDirty();
  return Status::OK();
}

Status BtreeFile::Erase(const Tid& tid) {
  TDB_ASSIGN_OR_RETURN(uint8_t* frame,
                       pager_->ReadPage(tid.page, IoCategory::kData));
  if (InternalView::IsInternal(frame)) {
    return Status::Invalid("tid points at an internal btree node");
  }
  LeafView leaf(frame, layout_.record_size, pager_->usable_size());
  if (!leaf.SlotUsed(tid.slot)) return Status::NotFound("erase of unused slot");
  leaf.SetSlotUsed(tid.slot, false);
  pager_->MarkDirty();
  return Status::OK();
}

Result<std::unique_ptr<Cursor>> BtreeFile::Scan() {
  TDB_ASSIGN_OR_RETURN(uint32_t leftmost, LeftmostLeaf());
  return std::unique_ptr<Cursor>(new BtreeCursor(
      pager_.get(), layout_, leftmost, std::nullopt, true, std::nullopt, true,
      /*single_leaf=*/false));
}

Result<std::unique_ptr<Cursor>> BtreeFile::ScanKey(const Value& key) {
  TDB_ASSIGN_OR_RETURN(uint32_t leaf, FindLeaf(key));
  return std::unique_ptr<Cursor>(new BtreeCursor(
      pager_.get(), layout_, leaf, key, true, key, true,
      /*single_leaf=*/true));
}

Result<std::unique_ptr<Cursor>> BtreeFile::ScanRange(
    const std::optional<Value>& lo, bool lo_inclusive,
    const std::optional<Value>& hi, bool hi_inclusive) {
  uint32_t start;
  if (lo.has_value()) {
    TDB_ASSIGN_OR_RETURN(start, FindLeaf(*lo));
  } else {
    TDB_ASSIGN_OR_RETURN(start, LeftmostLeaf());
  }
  return std::unique_ptr<Cursor>(new BtreeCursor(
      pager_.get(), layout_, start, lo, lo_inclusive, hi, hi_inclusive,
      /*single_leaf=*/false));
}

Result<std::vector<uint8_t>> BtreeFile::Fetch(const Tid& tid) {
  TDB_ASSIGN_OR_RETURN(uint8_t* frame,
                       pager_->ReadPage(tid.page, IoCategory::kData));
  if (InternalView::IsInternal(frame)) {
    return Status::NotFound("tid points at an internal btree node");
  }
  LeafView leaf(frame, layout_.record_size, pager_->usable_size());
  if (!leaf.SlotUsed(tid.slot)) return Status::NotFound("fetch of unused slot");
  return std::vector<uint8_t>(leaf.RecordAt(tid.slot),
                              leaf.RecordAt(tid.slot) + layout_.record_size);
}

}  // namespace tdb
