#ifndef CHRONOQUEL_STORAGE_PAGER_H_
#define CHRONOQUEL_STORAGE_PAGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "env/env.h"
#include "storage/io_stats.h"
#include "storage/journal.h"
#include "storage/page.h"
#include "util/status.h"

namespace tdb {

class BufferPool;

/// Production-storage knobs for one file (ROADMAP item 3).  The defaults
/// reproduce the paper's measurement discipline exactly: 1024-byte pages,
/// no checksums, private frames, no readahead.
struct StorageOptions {
  /// Bytes per page.  1024 is the paper's mandated size; production uses
  /// 4096.  Must be in [512, 65536] and a multiple of 256.
  uint32_t page_size = kPageSize;
  /// CRC32-stamp every page in a 4-byte trailer (reusing the journal's
  /// CRC32), verified on every load.  Costs 4 bytes of usable space.
  bool checksum = false;
  /// Shared buffer pool; when set the pager keeps NO private frames and
  /// every page lives in the pool (its page_size must match).
  BufferPool* pool = nullptr;
  /// History-chain readahead depth in pages (pool mode only; 0 = off).
  /// Plumbed to Relation, which prefetches ahead of segment chain walks.
  int readahead = 0;
};

/// Page-granularity access to one relation file through a small pool of
/// buffer frames (LRU).  The default — and the paper's measurement
/// discipline — is a SINGLE frame: "allocated only 1 buffer for each user
/// relation so that a page resides in main memory only until another page
/// from the same relation is brought in."  `bench/ablation_buffers` sweeps
/// the pool size to show why the paper controlled for it.
///
/// Accounting rules:
///  * ReadPage(p) of a resident page is free; a miss costs one read
///    (tagged with the caller-supplied category).
///  * Writes are buffered in the frame and cost one write when the dirty
///    frame is evicted or flushed.
///
/// With `StorageOptions::pool` set, the frames live in a process-shared
/// BufferPool instead of this pager; the accounting rules and this file's
/// IoCounters are unchanged (and bit-identical to the private single-frame
/// pager when the pool is capped at 1 frame per file).
class Pager {
 public:
  /// Opens (or creates empty) the file at `path` within `env`.  `counters`
  /// may be null (I/O not accounted, e.g. catalog internals).  `journal`
  /// may be null (no durability): when set, the pre-image of every page
  /// overwritten in place is journaled before the write, and file
  /// creation / growth / truncation is recorded so a rollback can undo it.
  /// Journal traffic never touches `counters`.  `sopts` selects the
  /// production storage mode; the default is the paper configuration.
  static Result<std::unique_ptr<Pager>> Open(Env* env, const std::string& path,
                                             IoCounters* counters,
                                             int frames = 1,
                                             Journal* journal = nullptr,
                                             const StorageOptions& sopts = {});

  ~Pager();

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  /// Brings page `pno` into a frame (evicting the LRU frame as needed) and
  /// returns the frame pointer.  The pointer is invalidated by the next
  /// ReadPage/AllocatePage call.
  Result<uint8_t*> ReadPage(uint32_t pno, IoCategory cat);

  /// Marks the most recently returned frame dirty (its write will be
  /// counted on eviction).
  void MarkDirty();

  /// Thread-safe copy-out read for parallel scan workers.  Never disturbs
  /// the resident frame state: a resident page is memcpy'd out (a buffer
  /// hit, free), anything else is read from the file straight into `out`
  /// and counted as one page read — exactly what a single-frame serial
  /// scan would have counted for that page.  In private-frame mode an
  /// internal mutex serializes the workers of one parallel pipeline while
  /// the serial ReadPage path stays lock-free; in pool mode the shared
  /// pool's mutex serializes everything, so workers of DIFFERENT files are
  /// also safe against each other and against pool eviction.
  Status ReadPageInto(uint32_t pno, IoCategory cat, uint8_t* out);

  /// Coordinator-only repair after a parallel scan: makes `pno` the
  /// resident page, replaying the frame state a serial scan would have left
  /// behind.  A resident `pno` is just touched (dirty preserved); otherwise
  /// the LRU victim is evicted (its write counted if dirty — the same
  /// mid-scan eviction write the serial scan performs) and `pno` is loaded
  /// WITHOUT counting a read, because the parallel workers already counted
  /// it.  No-op for out-of-range pages (empty file).
  Status PrimeFrame(uint32_t pno, IoCategory cat);

  /// Page numbers currently held in frames (coordinator-only; used to
  /// normalize buffer state before dispatching parallel workers).
  std::vector<uint32_t> ResidentPages() const;

  /// Appends a fresh zeroed page, loads it into a frame, and returns its
  /// page number.  The new page is dirty.
  Result<uint32_t> AllocatePage(IoCategory cat);

  /// Pool-mode readahead: loads pages [pno, pno+n) that are not already
  /// resident, each counted as one read, without moving this pager's
  /// pinned frame.  No-op in private-frame mode or past EOF.
  Status Readahead(uint32_t pno, int n, IoCategory cat);

  /// Writes back every dirty frame.
  Status Flush();

  /// Flushes and empties every frame, so the next ReadPage of any page is
  /// counted.  Measurement harnesses call this between queries so one
  /// query's resident pages cannot subsidize the next.
  Status FlushAndDrop();

  /// Empties every frame WITHOUT writing dirty ones back.  Used when a
  /// statement rolls back: the journal restores the file image, and the
  /// in-memory frames holding the aborted writes must not reach disk.
  void DiscardAll();

  /// Fsyncs the underlying file (the durability point of the commit
  /// protocol; no-op cost for the in-memory env).
  Status Sync();

  uint32_t page_count() const { return page_count_; }
  const std::string& path() const { return path_; }
  IoCounters* counters() const { return counters_; }

  /// Bytes per page on disk.
  uint32_t page_size() const { return page_size_; }
  /// Bytes per page available to records (page_size minus the CRC trailer
  /// when checksums are on).  Page views must be built with this.
  uint32_t usable_size() const { return usable_size_; }
  /// Readahead depth requested for this file (0 = off).
  int readahead() const { return readahead_; }
  BufferPool* pool() const { return pool_; }

  /// Resident-page budget: the private frame count, or the pool's per-file
  /// cap in pool mode (0 = uncapped).  Parallel-scan planning requires 1 —
  /// the I/O-replay bracketing is derived for single-frame replacement,
  /// which a pool capped at 1 frame/file reproduces exactly.
  int num_frames() const {
    return pool_ != nullptr ? pool_cap_ : static_cast<int>(frames_.size());
  }

  /// Monotonic count of frame-content changes: bumped whenever any frame is
  /// (re)loaded, allocated, or invalidated (ReadPage miss, AllocatePage,
  /// FlushAndDrop, DiscardAll, Reset — and, in pool mode, whenever the
  /// shared pool recycles one of this file's frames for another file).  A
  /// frame pointer returned by ReadPage — and every record slice cut from
  /// it — is valid only while the generation is unchanged; batch consumers
  /// snapshot it and assert (debug builds) before dereferencing their
  /// slices.
  uint64_t generation() const {
    return generation_.load(std::memory_order_relaxed);
  }

  /// Truncates to zero pages (used by `modify`, which rebuilds the file).
  Status Reset();

 private:
  friend class BufferPool;

  struct Frame {
    std::vector<uint8_t> data;
    uint32_t pno = kNoPage;
    bool dirty = false;
    IoCategory category = IoCategory::kData;
    uint64_t last_use = 0;
  };

  Pager(std::unique_ptr<RandomRWFile> file, std::string path,
        IoCounters* counters, uint32_t page_count, int frames,
        Journal* journal, const StorageOptions& sopts);

  void Count(bool write, IoCategory cat, uint32_t pno);

  /// This file's observability counters, or null when the Database has no
  /// metrics registry wired (the zero-cost-off path).
  obs::PagerMetrics* metrics() const {
    return counters_ == nullptr ? nullptr : counters_->metrics;
  }

  /// Frame holding `pno`, or null.
  Frame* FindFrame(uint32_t pno);
  /// The least recently used frame (flushing it if dirty).
  Result<Frame*> EvictableFrame();
  Status FlushFrame(Frame* frame);

  // Shared between the private-frame path and the BufferPool.
  /// Journal hook + checksum stamp + file write + write count for `pno`.
  Status WriteBack(uint32_t pno, uint8_t* data, IoCategory cat);
  /// File read (+ checksum verify) into `out`; counted when `count`.
  Status LoadFrom(uint32_t pno, uint8_t* out, bool count, IoCategory cat);
  /// Journal hook + truncate backing the page_count_ extension of
  /// AllocatePage.
  Status GrowFile();
  void NoteRequest(bool hit);
  void BumpGeneration() {
    generation_.fetch_add(1, std::memory_order_relaxed);
  }

  void StampChecksum(uint8_t* data) const;
  Status VerifyChecksum(const uint8_t* data, uint32_t pno) const;

  std::unique_ptr<RandomRWFile> file_;
  /// Serializes ReadPageInto between parallel scan workers (frame lookup,
  /// file read, counter bump) in private-frame mode.  The serial
  /// single-thread paths never take it; pool mode synchronizes through the
  /// pool's own mutex instead.
  std::mutex mu_;
  std::string path_;
  IoCounters* counters_;
  Journal* journal_;
  uint32_t page_count_;
  uint32_t page_size_;
  uint32_t usable_size_;
  bool checksum_ = false;
  BufferPool* pool_ = nullptr;
  int pool_cap_ = 0;
  int readahead_ = 0;
  std::vector<Frame> frames_;
  Frame* last_touched_ = nullptr;
  uint64_t tick_ = 0;
  std::atomic<uint64_t> generation_{0};
};

}  // namespace tdb

#endif  // CHRONOQUEL_STORAGE_PAGER_H_
