#ifndef CHRONOQUEL_STORAGE_PAGER_H_
#define CHRONOQUEL_STORAGE_PAGER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "env/env.h"
#include "storage/io_stats.h"
#include "storage/journal.h"
#include "storage/page.h"
#include "util/status.h"

namespace tdb {

/// Page-granularity access to one relation file through a small pool of
/// buffer frames (LRU).  The default — and the paper's measurement
/// discipline — is a SINGLE frame: "allocated only 1 buffer for each user
/// relation so that a page resides in main memory only until another page
/// from the same relation is brought in."  `bench/ablation_buffers` sweeps
/// the pool size to show why the paper controlled for it.
///
/// Accounting rules:
///  * ReadPage(p) of a resident page is free; a miss costs one read
///    (tagged with the caller-supplied category).
///  * Writes are buffered in the frame and cost one write when the dirty
///    frame is evicted or flushed.
class Pager {
 public:
  /// Opens (or creates empty) the file at `path` within `env`.  `counters`
  /// may be null (I/O not accounted, e.g. catalog internals).  `journal`
  /// may be null (no durability): when set, the pre-image of every page
  /// overwritten in place is journaled before the write, and file
  /// creation / growth / truncation is recorded so a rollback can undo it.
  /// Journal traffic never touches `counters`.
  static Result<std::unique_ptr<Pager>> Open(Env* env, const std::string& path,
                                             IoCounters* counters,
                                             int frames = 1,
                                             Journal* journal = nullptr);

  ~Pager() { (void)Flush(); }

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  /// Brings page `pno` into a frame (evicting the LRU frame as needed) and
  /// returns the frame pointer.  The pointer is invalidated by the next
  /// ReadPage/AllocatePage call.
  Result<uint8_t*> ReadPage(uint32_t pno, IoCategory cat);

  /// Marks the most recently returned frame dirty (its write will be
  /// counted on eviction).
  void MarkDirty();

  /// Thread-safe copy-out read for parallel scan workers.  Never disturbs
  /// the frame pool: a resident page is memcpy'd out (a buffer hit, free),
  /// anything else is read from the file straight into `out` and counted as
  /// one page read — exactly what a single-frame serial scan would have
  /// counted for that page.  Guarded by an internal mutex so workers of one
  /// parallel pipeline may share the pager; the serial ReadPage path takes
  /// no lock and is byte-for-byte unchanged.
  Status ReadPageInto(uint32_t pno, IoCategory cat, uint8_t* out);

  /// Coordinator-only repair after a parallel scan: makes `pno` the
  /// resident page, replaying the frame state a serial scan would have left
  /// behind.  A resident `pno` is just touched (dirty preserved); otherwise
  /// the LRU victim is evicted (its write counted if dirty — the same
  /// mid-scan eviction write the serial scan performs) and `pno` is loaded
  /// WITHOUT counting a read, because the parallel workers already counted
  /// it.  No-op for out-of-range pages (empty file).
  Status PrimeFrame(uint32_t pno, IoCategory cat);

  /// Page numbers currently held in frames (coordinator-only; used to
  /// normalize buffer state before dispatching parallel workers).
  std::vector<uint32_t> ResidentPages() const;

  /// Appends a fresh zeroed page, loads it into a frame, and returns its
  /// page number.  The new page is dirty.
  Result<uint32_t> AllocatePage(IoCategory cat);

  /// Writes back every dirty frame.
  Status Flush();

  /// Flushes and empties every frame, so the next ReadPage of any page is
  /// counted.  Measurement harnesses call this between queries so one
  /// query's resident pages cannot subsidize the next.
  Status FlushAndDrop();

  /// Empties every frame WITHOUT writing dirty ones back.  Used when a
  /// statement rolls back: the journal restores the file image, and the
  /// in-memory frames holding the aborted writes must not reach disk.
  void DiscardAll();

  /// Fsyncs the underlying file (the durability point of the commit
  /// protocol; no-op cost for the in-memory env).
  Status Sync();

  uint32_t page_count() const { return page_count_; }
  const std::string& path() const { return path_; }
  IoCounters* counters() const { return counters_; }
  int num_frames() const { return static_cast<int>(frames_.size()); }

  /// Monotonic count of frame-content changes: bumped whenever any frame is
  /// (re)loaded, allocated, or invalidated (ReadPage miss, AllocatePage,
  /// FlushAndDrop, DiscardAll, Reset).  A frame pointer returned by
  /// ReadPage — and every record slice cut from it — is valid only while
  /// the generation is unchanged; batch consumers snapshot it and assert
  /// (debug builds) before dereferencing their slices.
  uint64_t generation() const { return generation_; }

  /// Truncates to zero pages (used by `modify`, which rebuilds the file).
  Status Reset();

 private:
  struct Frame {
    uint8_t data[kPageSize];
    uint32_t pno = kNoPage;
    bool dirty = false;
    IoCategory category = IoCategory::kData;
    uint64_t last_use = 0;
  };

  Pager(std::unique_ptr<RandomRWFile> file, std::string path,
        IoCounters* counters, uint32_t page_count, int frames,
        Journal* journal)
      : file_(std::move(file)),
        path_(std::move(path)),
        counters_(counters),
        journal_(journal),
        page_count_(page_count),
        frames_(static_cast<size_t>(frames)) {}

  void Count(bool write, IoCategory cat, uint32_t pno);

  /// This file's observability counters, or null when the Database has no
  /// metrics registry wired (the zero-cost-off path).
  obs::PagerMetrics* metrics() const {
    return counters_ == nullptr ? nullptr : counters_->metrics;
  }

  /// Frame holding `pno`, or null.
  Frame* FindFrame(uint32_t pno);
  /// The least recently used frame (flushing it if dirty).
  Result<Frame*> EvictableFrame();
  Status FlushFrame(Frame* frame);

  std::unique_ptr<RandomRWFile> file_;
  /// Serializes ReadPageInto between parallel scan workers (frame lookup,
  /// file read, counter bump).  The serial single-thread paths never take
  /// it.
  std::mutex mu_;
  std::string path_;
  IoCounters* counters_;
  Journal* journal_;
  uint32_t page_count_;
  std::vector<Frame> frames_;
  Frame* last_touched_ = nullptr;
  uint64_t tick_ = 0;
  uint64_t generation_ = 0;
};

}  // namespace tdb

#endif  // CHRONOQUEL_STORAGE_PAGER_H_
