#ifndef CHRONOQUEL_STORAGE_STORAGE_FILE_H_
#define CHRONOQUEL_STORAGE_STORAGE_FILE_H_

#include <cassert>
#include <cstdint>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "storage/pager.h"
#include "types/value.h"
#include "util/status.h"

namespace tdb {

/// Storage organizations available through `modify` — the access methods the
/// paper benchmarks (heap for temps/bulk load, static hashing, ISAM) plus
/// the B+-tree its Section 6 contemplates as a dynamic alternative.
enum class Organization : uint8_t {
  kHeap,
  kHash,
  kIsam,
  kBtree,
};

const char* OrganizationName(Organization o);

/// Physical tuple identifier: page number + slot within the page.
struct Tid {
  uint32_t page = 0;
  uint16_t slot = 0;

  friend bool operator==(const Tid& a, const Tid& b) {
    return a.page == b.page && a.slot == b.slot;
  }
};

/// How records of a file are laid out, plus where its key lives (for hash /
/// ISAM organizations).  Derived from the relation's Schema by the catalog.
struct RecordLayout {
  uint16_t record_size = 0;
  int key_offset = -1;  // -1 when the organization is keyless (heap)
  TypeId key_type = TypeId::kInt4;
  uint16_t key_width = 4;

  bool has_key() const { return key_offset >= 0; }

  /// Decodes the key attribute out of an encoded record.
  Value KeyOf(const uint8_t* rec) const { return KeyFromBytes(rec + key_offset); }

  /// Decodes a bare key (as stored in ISAM directory entries).
  Value KeyFromBytes(const uint8_t* p) const;
};

/// A batch of record pointers gathered by Cursor::NextBatch — the morsel
/// currency of the vectorized executor.  Entries are either *slices*
/// (zero-copy pointers into the producing Pager's current frame, valid only
/// until that pager's next ReadPage/AllocatePage) or *copies* (bytes owned
/// by the batch's arena, valid until the next Clear).  A single batch never
/// mixes lifetimes with a page fetch in between: zero-copy producers CUT
/// the batch at every page fetch, so all slices alias one resident frame.
///
/// The source pager's generation is snapshotted at gather time; debug
/// builds assert it is unchanged on every access, catching any consumer
/// that holds slices across an eviction boundary.
class RecordBatch {
 public:
  void Clear() {
    recs_.clear();
    tids_.clear();
    arena_used_ = 0;
    src_pager_ = nullptr;
    src_generation_ = 0;
  }

  size_t size() const { return recs_.size(); }
  bool empty() const { return recs_.empty(); }

  const uint8_t* rec(size_t i) const {
    AssertFresh();
    return recs_[i];
  }
  const Tid& tid(size_t i) const { return tids_[i]; }

  /// Zero-copy append: `p` points into the producing pager's frame.
  void AppendSlice(const uint8_t* p, const Tid& tid) {
    recs_.push_back(p);
    tids_.push_back(tid);
  }

  /// Owning append: copies `n` bytes into the arena.  EnsureArena must have
  /// reserved room first — the arena never reallocates while entries point
  /// into it.
  void AppendCopy(const uint8_t* p, size_t n, const Tid& tid) {
    assert(arena_used_ + n <= arena_.size());
    uint8_t* dst = arena_.data() + arena_used_;
    std::memcpy(dst, p, n);
    arena_used_ += n;
    recs_.push_back(dst);
    tids_.push_back(tid);
  }

  /// Reserves arena capacity for owning appends.  Only legal while the
  /// batch holds no copies (growing would dangle their pointers).
  void EnsureArena(size_t bytes) {
    if (arena_.size() < bytes) {
      assert(arena_used_ == 0);
      arena_.resize(bytes);
    }
  }

  /// Records the pager (and its current generation) the slices alias.
  void SetSource(const Pager* pager) {
    src_pager_ = pager;
    src_generation_ = pager == nullptr ? 0 : pager->generation();
  }

  /// Debug-build stale-slice check: the source pager must not have loaded
  /// or dropped any frame since the batch was gathered.
  void AssertFresh() const {
    assert(src_pager_ == nullptr ||
           src_pager_->generation() == src_generation_);
  }

 private:
  std::vector<const uint8_t*> recs_;
  std::vector<Tid> tids_;
  std::vector<uint8_t> arena_;
  size_t arena_used_ = 0;
  const Pager* src_pager_ = nullptr;
  uint64_t src_generation_ = 0;
};

/// Iterator over the records of a file (or of one key's chain).  Usage:
///   auto cur = file->Scan();
///   while (true) {
///     TDB_ASSIGN_OR_RETURN(bool have, cur->Next());
///     if (!have) break;
///     use(cur->record(), cur->tid());
///   }
class Cursor {
 public:
  virtual ~Cursor() = default;

  /// Advances to the next record; returns false at end of stream.
  virtual Result<bool> Next() = 0;

  /// Appends up to `max` records to `batch` and returns how many were
  /// added; 0 means end of stream.  Page-I/O order and counts are identical
  /// to an equivalent sequence of Next() calls.  The base implementation
  /// copies records into the batch arena (safe across any later I/O);
  /// zero-copy overrides append frame slices instead and cut the batch at
  /// every page fetch, so a returned batch never spans a ReadPage.
  /// Interleaving Next() and NextBatch() on one cursor is supported.
  virtual Result<size_t> NextBatch(RecordBatch* batch, size_t max);

  /// Valid after Next() returned true, until the next call to Next().
  const std::vector<uint8_t>& record() const { return record_; }
  const Tid& tid() const { return tid_; }

 protected:
  std::vector<uint8_t> record_;
  Tid tid_;
};

/// A record file in one of the three organizations.  All mutations go
/// through the owning relation's single-frame Pager, so every page touched
/// is accounted exactly as the paper counts it.
class StorageFile {
 public:
  virtual ~StorageFile() = default;

  virtual Organization org() const = 0;

  /// Inserts a record (respecting the organization's placement rule) and
  /// reports where it landed.
  virtual Status Insert(const uint8_t* rec, size_t size, Tid* tid) = 0;

  /// Overwrites the record at `tid` in place (used for stamping transaction
  /// stop / valid to on the current version; never moves the record).
  virtual Status UpdateInPlace(const Tid& tid, const uint8_t* rec,
                               size_t size) = 0;

  /// Removes the record at `tid` (static relations only — versioned types
  /// never physically delete).
  virtual Status Erase(const Tid& tid) = 0;

  /// Full scan: data pages and overflow chains; ISAM directory pages are
  /// skipped, exactly as a Quel sequential scan reads them.
  virtual Result<std::unique_ptr<Cursor>> Scan() = 0;

  /// Keyed access: all records in the chain(s) a key hashes/maps to whose
  /// key attribute equals `key`.  Reads the entire chain (the paper's
  /// "version scan" behaviour).  Heap files return NotSupported.
  virtual Result<std::unique_ptr<Cursor>> ScanKey(const Value& key) = 0;

  /// Key-range access: records with lo (<|<=) key (<|<=) hi; either bound
  /// may be absent.  Only order-preserving organizations (ISAM) support
  /// this; others return NotSupported.
  virtual Result<std::unique_ptr<Cursor>> ScanRange(
      const std::optional<Value>& lo, bool lo_inclusive,
      const std::optional<Value>& hi, bool hi_inclusive) {
    (void)lo;
    (void)lo_inclusive;
    (void)hi;
    (void)hi_inclusive;
    return Status::NotSupported("this organization has no range access path");
  }

  /// Reads the single record at `tid`.
  virtual Result<std::vector<uint8_t>> Fetch(const Tid& tid) = 0;

  /// True when Scan() visits pages 0..page_count-1 in ascending order,
  /// reading each exactly once with no auxiliary (directory) pages — the
  /// contract the parallel executor relies on to cut page-range morsels
  /// that replay the cursor's exact record order and I/O counts.  Heap and
  /// hash files qualify; ISAM/B-tree scans stay cursor-driven.
  virtual bool LinearScan() const { return false; }

  /// I/O accounting category a sequential scan charges for page `pno`.
  virtual IoCategory ScanCategory(uint32_t pno) const {
    (void)pno;
    return IoCategory::kData;
  }

  virtual Pager* pager() = 0;
  uint32_t page_count() { return pager()->page_count(); }

  const RecordLayout& layout() const { return layout_; }

 protected:
  explicit StorageFile(RecordLayout layout) : layout_(layout) {}
  RecordLayout layout_;
};

}  // namespace tdb

#endif  // CHRONOQUEL_STORAGE_STORAGE_FILE_H_
