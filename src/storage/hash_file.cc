#include "storage/hash_file.h"

#include <cstring>

#include "storage/chain_cursor.h"

namespace tdb {

namespace {

/// Linear full scan over every page of the file (primary + overflow), with
/// per-page category accounting.
class HashScanCursor : public Cursor {
 public:
  HashScanCursor(HashFile* file, Pager* pager, const RecordLayout& layout)
      : file_(file), pager_(pager), layout_(layout) {}

  Result<bool> Next() override {
    while (true) {
      if (page_ >= pager_->page_count()) return false;
      TDB_ASSIGN_OR_RETURN(uint8_t* frame,
                           pager_->ReadPage(page_, file_->CategoryOf(page_)));
      Page page(frame, layout_.record_size, pager_->usable_size());
      while (slot_ < page.capacity()) {
        uint16_t s = slot_++;
        if (page.SlotUsed(s)) {
          record_.assign(page.RecordAt(s),
                         page.RecordAt(s) + layout_.record_size);
          tid_ = Tid{page_, s};
          return true;
        }
      }
      ++page_;
      slot_ = 0;
    }
  }

  Result<size_t> NextBatch(RecordBatch* batch, size_t max) override {
    // Zero-copy page-at-a-time gather; cut at every page fetch so slices
    // only ever alias the single resident frame.
    while (true) {
      if (page_ >= pager_->page_count()) return 0;
      TDB_ASSIGN_OR_RETURN(uint8_t* frame,
                           pager_->ReadPage(page_, file_->CategoryOf(page_)));
      Page page(frame, layout_.record_size, pager_->usable_size());
      size_t n = 0;
      while (slot_ < page.capacity() && n < max) {
        uint16_t s = slot_++;
        if (!page.SlotUsed(s)) continue;
        batch->AppendSlice(page.RecordAt(s), Tid{page_, s});
        ++n;
      }
      if (slot_ >= page.capacity()) {
        ++page_;
        slot_ = 0;
      }
      if (n > 0) {
        batch->SetSource(pager_);
        return n;
      }
    }
  }

 private:
  HashFile* file_;
  Pager* pager_;
  RecordLayout layout_;
  uint32_t page_ = 0;
  uint16_t slot_ = 0;
};

}  // namespace

uint32_t HashFile::BucketsFor(uint64_t ntuples, uint16_t record_size,
                              uint32_t usable, int fillfactor) {
  uint32_t cap = Page::Capacity(record_size, usable);
  double per_page = cap * (fillfactor / 100.0);
  if (per_page < 1.0) per_page = 1.0;
  uint64_t buckets = static_cast<uint64_t>(
      (static_cast<double>(ntuples) + per_page - 1) / per_page);
  return buckets == 0 ? 1 : static_cast<uint32_t>(buckets);
}

Result<std::unique_ptr<HashFile>> HashFile::Create(
    std::unique_ptr<Pager> pager, const RecordLayout& layout,
    uint32_t nbuckets) {
  if (!layout.has_key()) return Status::Invalid("hash file needs a key");
  if (nbuckets == 0) return Status::Invalid("hash file needs >= 1 bucket");
  TDB_RETURN_NOT_OK(pager->Reset());
  for (uint32_t i = 0; i < nbuckets; ++i) {
    TDB_RETURN_NOT_OK(pager->AllocatePage(IoCategory::kData).status());
  }
  TDB_RETURN_NOT_OK(pager->Flush());
  return Open(std::move(pager), layout, nbuckets);
}

Result<std::unique_ptr<HashFile>> HashFile::Open(std::unique_ptr<Pager> pager,
                                                 const RecordLayout& layout,
                                                 uint32_t nbuckets) {
  if (!layout.has_key()) return Status::Invalid("hash file needs a key");
  if (pager->page_count() < nbuckets) {
    return Status::Corruption("hash file shorter than its bucket region");
  }
  return std::unique_ptr<HashFile>(
      new HashFile(std::move(pager), layout, nbuckets));
}

Status HashFile::Insert(const uint8_t* rec, size_t size, Tid* tid) {
  if (size != layout_.record_size) {
    return Status::Invalid("record size mismatch on insert");
  }
  Value key = layout_.KeyOf(rec);
  uint32_t pno = BucketOf(key);
  // Walk the chain to its end, stopping at the first page with a free slot
  // (new versions fill slack left by a lower fill factor before the chain
  // grows — the effect behind the jagged lines of Figure 8(b)).
  while (true) {
    TDB_ASSIGN_OR_RETURN(uint8_t* frame, pager_->ReadPage(pno, CategoryOf(pno)));
    Page page(frame, layout_.record_size, pager_->usable_size());
    int slot = page.FirstFreeSlot();
    if (slot >= 0) {
      std::memcpy(page.RecordAt(static_cast<uint16_t>(slot)), rec, size);
      page.SetSlotUsed(static_cast<uint16_t>(slot), true);
      pager_->MarkDirty();
      if (tid != nullptr) *tid = Tid{pno, static_cast<uint16_t>(slot)};
      return Status::OK();
    }
    uint32_t next = page.next_overflow();
    if (next == kNoPage) break;
    pno = next;
  }
  // Chain exhausted: append an overflow page and link it.
  TDB_ASSIGN_OR_RETURN(uint32_t fresh,
                       pager_->AllocatePage(IoCategory::kOverflow));
  {
    TDB_ASSIGN_OR_RETURN(uint8_t* frame,
                         pager_->ReadPage(fresh, IoCategory::kOverflow));
    Page page(frame, layout_.record_size, pager_->usable_size());
    page.Format();
    std::memcpy(page.RecordAt(0), rec, size);
    page.SetSlotUsed(0, true);
    pager_->MarkDirty();
  }
  // Re-read the chain tail to link the new page.
  {
    TDB_ASSIGN_OR_RETURN(uint8_t* frame, pager_->ReadPage(pno, CategoryOf(pno)));
    Page page(frame, layout_.record_size, pager_->usable_size());
    page.set_next_overflow(fresh);
    pager_->MarkDirty();
  }
  if (tid != nullptr) *tid = Tid{fresh, 0};
  return Status::OK();
}

Status HashFile::UpdateInPlace(const Tid& tid, const uint8_t* rec,
                               size_t size) {
  if (size != layout_.record_size) {
    return Status::Invalid("record size mismatch on update");
  }
  TDB_ASSIGN_OR_RETURN(uint8_t* frame,
                       pager_->ReadPage(tid.page, CategoryOf(tid.page)));
  Page page(frame, layout_.record_size, pager_->usable_size());
  if (!page.SlotUsed(tid.slot)) return Status::NotFound("update of unused slot");
  std::memcpy(page.RecordAt(tid.slot), rec, size);
  pager_->MarkDirty();
  return Status::OK();
}

Status HashFile::Erase(const Tid& tid) {
  TDB_ASSIGN_OR_RETURN(uint8_t* frame,
                       pager_->ReadPage(tid.page, CategoryOf(tid.page)));
  Page page(frame, layout_.record_size, pager_->usable_size());
  if (!page.SlotUsed(tid.slot)) return Status::NotFound("erase of unused slot");
  page.SetSlotUsed(tid.slot, false);
  pager_->MarkDirty();
  return Status::OK();
}

Result<std::unique_ptr<Cursor>> HashFile::Scan() {
  return std::unique_ptr<Cursor>(
      new HashScanCursor(this, pager_.get(), layout_));
}

Result<std::unique_ptr<Cursor>> HashFile::ScanKey(const Value& key) {
  uint32_t bucket = BucketOf(key);
  return std::unique_ptr<Cursor>(new ChainCursor(
      pager_.get(), layout_, bucket,
      [this](uint32_t pno) { return CategoryOf(pno); }, key));
}

Result<std::vector<uint8_t>> HashFile::Fetch(const Tid& tid) {
  TDB_ASSIGN_OR_RETURN(uint8_t* frame,
                       pager_->ReadPage(tid.page, CategoryOf(tid.page)));
  Page page(frame, layout_.record_size, pager_->usable_size());
  if (!page.SlotUsed(tid.slot)) return Status::NotFound("fetch of unused slot");
  return std::vector<uint8_t>(page.RecordAt(tid.slot),
                              page.RecordAt(tid.slot) + layout_.record_size);
}

}  // namespace tdb
