#include "storage/buffer_pool.h"

#include <algorithm>
#include <cstring>

#include "obs/metrics.h"
#include "storage/pager.h"

namespace tdb {

BufferPool::Stats BufferPool::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.frames = frames_.size();
  s.resident = index_.size();
  return s;
}

BufferPool::Frame* BufferPool::Find(const Pager* p, uint32_t pno) const {
  auto it = index_.find({p, pno});
  return it == index_.end() ? nullptr : it->second;
}

bool BufferPool::PinnedByOwner(const Frame* f) const {
  auto it = last_.find(f->owner);
  return it != last_.end() && it->second == f;
}

Status BufferPool::Detach(Frame* f, bool flush_dirty) {
  if (f->dirty && flush_dirty) {
    TDB_RETURN_NOT_OK(f->owner->WriteBack(f->pno, f->data.data(),
                                          f->category));
    ++stats_.write_backs;
  }
  index_.erase({f->owner, f->pno});
  auto it = last_.find(f->owner);
  if (it != last_.end() && it->second == f) last_.erase(it);
  // The owner's outstanding frame pointers (and record slices cut from
  // them) die with this frame; trip its generation check.
  f->owner->BumpGeneration();
  f->owner = nullptr;
  f->pno = kNoPage;
  f->dirty = false;
  return Status::OK();
}

Result<BufferPool::Frame*> BufferPool::Victim(Pager* p) {
  // Per-file cap first: once `p` holds its budget of resident pages, it
  // recycles its own LRU frame — at cap 1 this IS the paper's single-frame
  // replacement, evictions and dirty write-backs included.  The requester's
  // own pinned frame is fair game: the Pager contract already invalidates
  // the previous pointer on the next ReadPage/AllocatePage.
  if (opts_.per_file_frames > 0) {
    Frame* own_lru = nullptr;
    int own_count = 0;
    for (auto it = index_.lower_bound({p, 0});
         it != index_.end() && it->first.first == p; ++it) {
      ++own_count;
      if (own_lru == nullptr || it->second->last_use < own_lru->last_use) {
        own_lru = it->second;
      }
    }
    if (own_count >= opts_.per_file_frames) {
      ++stats_.evictions;
      if (p->metrics() != nullptr) p->metrics()->evictions.Increment();
      TDB_RETURN_NOT_OK(Detach(own_lru, /*flush_dirty=*/true));
      return own_lru;
    }
  }
  if (!free_.empty()) {
    Frame* f = free_.back();
    free_.pop_back();
    return f;
  }
  if (static_cast<int>(frames_.size()) < opts_.total_frames) {
    frames_.push_back(std::make_unique<Frame>());
    frames_.back()->data.resize(opts_.page_size);
    return frames_.back().get();
  }
  // Global LRU over evictable frames: skip foreign pinned frames (their
  // owner's returned pointer must stay valid) and foreign DIRTY frames —
  // the pool never runs another file's journal hook or bumps its write
  // counters, that is strictly the owner's (single-threaded) job.
  Frame* best = nullptr;
  for (auto& owned : frames_) {
    Frame* f = owned.get();
    if (f->owner == nullptr) {
      best = f;
      break;
    }
    if (f->owner != p && (f->dirty || PinnedByOwner(f))) continue;
    if (f->owner == p && PinnedByOwner(f) && opts_.per_file_frames == 0) {
      // Uncapped mode: prefer not to cannibalize our own pinned frame
      // unless nothing else is evictable.
      continue;
    }
    if (best == nullptr || f->last_use < best->last_use) best = f;
  }
  if (best != nullptr) {
    if (best->owner != nullptr) {
      ++stats_.evictions;
      if (best->owner != p) ++stats_.foreign_evictions;
      if (best->owner->metrics() != nullptr) {
        best->owner->metrics()->evictions.Increment();
      }
      TDB_RETURN_NOT_OK(Detach(best, /*flush_dirty=*/true));
    }
    return best;
  }
  // Everything is pinned or foreign-dirty: overflow-allocate past capacity
  // rather than stall a reader (parallel workers may legitimately pin more
  // frames than total_frames on a tiny pool).
  frames_.push_back(std::make_unique<Frame>());
  frames_.back()->data.resize(opts_.page_size);
  return frames_.back().get();
}

Result<uint8_t*> BufferPool::ReadPage(Pager* p, uint32_t pno,
                                      IoCategory cat) {
  std::lock_guard<std::mutex> lock(mu_);
  Frame* f = Find(p, pno);
  p->NoteRequest(f != nullptr);
  if (f != nullptr) {
    ++stats_.hits;
    f->last_use = ++tick_;
    last_[p] = f;
    return f->data.data();
  }
  ++stats_.misses;
  TDB_ASSIGN_OR_RETURN(f, Victim(p));
  TDB_RETURN_NOT_OK(p->LoadFrom(pno, f->data.data(), /*count=*/true, cat));
  f->owner = p;
  f->pno = pno;
  f->category = cat;
  f->dirty = false;
  f->last_use = ++tick_;
  index_[{p, pno}] = f;
  last_[p] = f;
  p->BumpGeneration();
  return f->data.data();
}

void BufferPool::MarkDirty(Pager* p) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = last_.find(p);
  if (it != last_.end()) it->second->dirty = true;
}

Status BufferPool::ReadPageInto(Pager* p, uint32_t pno, IoCategory cat,
                                uint8_t* out) {
  std::lock_guard<std::mutex> lock(mu_);
  Frame* f = Find(p, pno);
  p->NoteRequest(f != nullptr);
  if (f != nullptr) {
    ++stats_.hits;
    std::memcpy(out, f->data.data(), opts_.page_size);
    return Status::OK();
  }
  ++stats_.misses;
  return p->LoadFrom(pno, out, /*count=*/true, cat);
}

Status BufferPool::PrimeFrame(Pager* p, uint32_t pno, IoCategory cat) {
  std::lock_guard<std::mutex> lock(mu_);
  Frame* f = Find(p, pno);
  if (f == nullptr) {
    TDB_ASSIGN_OR_RETURN(f, Victim(p));
    // Uncounted: the parallel workers already charged this page's read;
    // this only restores the frame state a serial scan would have left.
    TDB_RETURN_NOT_OK(p->LoadFrom(pno, f->data.data(), /*count=*/false, cat));
    f->owner = p;
    f->pno = pno;
    f->category = cat;
    f->dirty = false;
    index_[{p, pno}] = f;
    p->BumpGeneration();
  }
  f->last_use = ++tick_;
  last_[p] = f;
  return Status::OK();
}

Result<uint8_t*> BufferPool::AllocatePage(Pager* p, uint32_t pno,
                                          IoCategory cat) {
  std::lock_guard<std::mutex> lock(mu_);
  TDB_ASSIGN_OR_RETURN(Frame * f, Victim(p));
  std::memset(f->data.data(), 0, opts_.page_size);
  f->owner = p;
  f->pno = pno;
  f->category = cat;
  f->dirty = true;
  f->last_use = ++tick_;
  index_[{p, pno}] = f;
  last_[p] = f;
  p->BumpGeneration();
  return f->data.data();
}

Status BufferPool::Prefetch(Pager* p, uint32_t pno, IoCategory cat) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Find(p, pno) != nullptr) return Status::OK();
  ++stats_.misses;
  TDB_ASSIGN_OR_RETURN(Frame * f, Victim(p));
  TDB_RETURN_NOT_OK(p->LoadFrom(pno, f->data.data(), /*count=*/true, cat));
  f->owner = p;
  f->pno = pno;
  f->category = cat;
  f->dirty = false;
  f->last_use = ++tick_;
  index_[{p, pno}] = f;
  p->BumpGeneration();
  return Status::OK();
}

std::vector<uint32_t> BufferPool::ResidentPages(const Pager* p) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint32_t> pnos;
  for (auto it = index_.lower_bound({p, 0});
       it != index_.end() && it->first.first == p; ++it) {
    pnos.push_back(it->first.second);
  }
  return pnos;
}

Status BufferPool::Flush(Pager* p) {
  std::lock_guard<std::mutex> lock(mu_);
  // Ascending page order (the index is sorted by (pager, pno)) for a
  // deterministic write sequence; identical to the private path at 1 frame.
  for (auto it = index_.lower_bound({p, 0});
       it != index_.end() && it->first.first == p; ++it) {
    Frame* f = it->second;
    if (!f->dirty) continue;
    TDB_RETURN_NOT_OK(p->WriteBack(f->pno, f->data.data(), f->category));
    ++stats_.write_backs;
    f->dirty = false;
  }
  return Status::OK();
}

Status BufferPool::FlushAndDrop(Pager* p) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.lower_bound({p, 0});
  while (it != index_.end() && it->first.first == p) {
    Frame* f = it->second;
    ++it;  // Detach erases the current entry.
    TDB_RETURN_NOT_OK(Detach(f, /*flush_dirty=*/true));
    free_.push_back(f);
  }
  last_.erase(p);
  p->BumpGeneration();
  return Status::OK();
}

void BufferPool::DiscardAll(Pager* p) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.lower_bound({p, 0});
  while (it != index_.end() && it->first.first == p) {
    Frame* f = it->second;
    ++it;
    f->dirty = false;  // aborted writes must not reach disk
    (void)Detach(f, /*flush_dirty=*/false);
    free_.push_back(f);
  }
  last_.erase(p);
  p->BumpGeneration();
}

}  // namespace tdb
