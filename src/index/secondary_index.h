#ifndef CHRONOQUEL_INDEX_SECONDARY_INDEX_H_
#define CHRONOQUEL_INDEX_SECONDARY_INDEX_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "env/env.h"
#include "storage/hash_file.h"
#include "storage/heap_file.h"
#include "storage/storage_file.h"
#include "types/schema.h"

namespace tdb {

namespace obs {
class Counter;
class MetricsRegistry;
}  // namespace obs

/// A tuple-id reference stored in an index entry.  `in_history` says which
/// store of a two-level relation the version lives in.
struct IndexEntryRef {
  Tid tid;
  bool in_history = false;
};

/// Secondary index on a non-key attribute (Section 6).  Entries are
/// (attribute value, tid) pairs:
///   * 1-level: one structure indexes every version of the relation;
///   * 2-level: a *current* index holds exactly the current versions and a
///     *history* index accumulates retired versions, so queries against the
///     current state touch a far smaller structure (the paper's
///     3717-pages-to-2 improvement for Q07).
/// Each structure is a heap (lookup scans the whole index) or a hash file
/// (lookup reads one bucket chain).  All index I/O is tagged
/// IoCategory::kIndex.
class SecondaryIndex {
 public:
  /// Opens (creating empty files as needed) the index described by `meta`
  /// over an attribute of type `attr`.  Counter objects come from the
  /// owning database's IoRegistry; `journal` (nullable) pre-images index
  /// page overwrites when durability is on; `metrics` (nullable) wires
  /// index.<name>.{probes,entries_scanned,inserts,moves,removes}.
  static Result<std::unique_ptr<SecondaryIndex>> Open(
      Env* env, const std::string& dir, const IndexMeta& meta,
      const Attribute& attr, IoCounters* current_counters,
      IoCounters* history_counters, int buffer_frames = 1,
      Journal* journal = nullptr, obs::MetricsRegistry* metrics = nullptr,
      const StorageOptions& sopts = {});

  const IndexMeta& meta() const { return meta_; }

  /// Adds an entry for a (new) current version.
  Status InsertCurrent(const Value& key, Tid tid, bool in_history_store);

  /// Adds an entry for a history version: the history file for a 2-level
  /// index, the single file for a 1-level index.
  Status InsertHistory(const Value& key, Tid tid, bool in_history_store);

  /// Removes the entry (key, tid) from the current/single file; NotFound if
  /// absent.
  Status RemoveCurrent(const Value& key, Tid tid);

  /// For a 2-level index: drops (key, tid) from the current file and
  /// re-adds it to the history file (possibly at a new location).  For a
  /// 1-level index the entry's location/flags are rewritten in place if the
  /// tid changed.
  Status MoveToHistory(const Value& key, Tid old_tid, Tid new_tid,
                       bool new_in_history_store);

  /// All version references for `key`.  With `current_only`, a 2-level
  /// index reads just the current structure; a 1-level index cannot
  /// distinguish and returns everything.
  Result<std::vector<IndexEntryRef>> Lookup(const Value& key,
                                            bool current_only);

  /// I/O counters of the index's structures (history null for a 1-level
  /// index).  The executor sums these — instead of walking the whole
  /// registry — when attributing per-node I/O.
  IoCounters* current_counters() { return current_->pager()->counters(); }
  IoCounters* history_counters() {
    return history_ == nullptr ? nullptr : history_->pager()->counters();
  }

  /// Flushes and empties the buffer frames of both structures.
  Status FlushAndDrop() {
    TDB_RETURN_NOT_OK(current_->pager()->FlushAndDrop());
    if (history_ != nullptr) {
      TDB_RETURN_NOT_OK(history_->pager()->FlushAndDrop());
    }
    return Status::OK();
  }

  /// Writes dirty frames back; frames stay resident (commit protocol).
  Status Flush() {
    TDB_RETURN_NOT_OK(current_->pager()->Flush());
    if (history_ != nullptr) TDB_RETURN_NOT_OK(history_->pager()->Flush());
    return Status::OK();
  }

  /// Fsyncs both structures' files (kJournalSync commit protocol).
  Status Sync() {
    TDB_RETURN_NOT_OK(current_->pager()->Sync());
    if (history_ != nullptr) TDB_RETURN_NOT_OK(history_->pager()->Sync());
    return Status::OK();
  }

  /// Drops frames without writing dirty ones back (rollback).
  void Discard() {
    current_->pager()->DiscardAll();
    if (history_ != nullptr) history_->pager()->DiscardAll();
  }

 private:
  SecondaryIndex(IndexMeta meta, RecordLayout layout,
                 std::unique_ptr<StorageFile> current,
                 std::unique_ptr<StorageFile> history)
      : meta_(std::move(meta)),
        layout_(layout),
        current_(std::move(current)),
        history_(std::move(history)) {}

  std::vector<uint8_t> EncodeEntry(const Value& key, Tid tid,
                                   bool in_history_store) const;
  static IndexEntryRef DecodeEntry(const RecordLayout& layout,
                                   const uint8_t* rec);

  /// Finds the slot of entry (key, tid) in `file`.
  Result<Tid> FindEntry(StorageFile* file, const Value& key, Tid tid);

  Status CollectMatches(StorageFile* file, const Value& key,
                        std::vector<IndexEntryRef>* out);

  IndexMeta meta_;
  RecordLayout layout_;  // entry layout: key + page(4) + slot(2) + flags(2)
  std::unique_ptr<StorageFile> current_;
  std::unique_ptr<StorageFile> history_;  // null for 1-level

  // Observability counters; all null when metrics are disabled.
  obs::Counter* m_probes_ = nullptr;
  obs::Counter* m_entries_scanned_ = nullptr;
  obs::Counter* m_inserts_ = nullptr;
  obs::Counter* m_moves_ = nullptr;
  obs::Counter* m_removes_ = nullptr;
};

}  // namespace tdb

#endif  // CHRONOQUEL_INDEX_SECONDARY_INDEX_H_
