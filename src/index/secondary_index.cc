#include "index/secondary_index.h"

#include <cstring>

#include "obs/metrics.h"
#include "util/stringx.h"

namespace tdb {

namespace {

/// Default bucket count for a hash-structured index: sized for one entry
/// per tuple of a benchmark-scale relation; chains grow beyond that.
constexpr uint32_t kDefaultIndexBuckets = 16;

Result<std::unique_ptr<StorageFile>> OpenIndexFile(
    Env* env, const std::string& path, const RecordLayout& layout,
    Organization org, uint32_t nbuckets, IoCounters* counters, int frames,
    Journal* journal, const StorageOptions& sopts) {
  bool fresh = !env->FileExists(path);
  TDB_ASSIGN_OR_RETURN(
      auto pager, Pager::Open(env, path, counters, frames, journal, sopts));
  if (org == Organization::kHash) {
    if (fresh || pager->page_count() == 0) {
      TDB_ASSIGN_OR_RETURN(auto file,
                           HashFile::Create(std::move(pager), layout, nbuckets));
      return std::unique_ptr<StorageFile>(std::move(file));
    }
    TDB_ASSIGN_OR_RETURN(auto file,
                         HashFile::Open(std::move(pager), layout, nbuckets));
    return std::unique_ptr<StorageFile>(std::move(file));
  }
  TDB_ASSIGN_OR_RETURN(auto file, HeapFile::Open(std::move(pager), layout,
                                                 IoCategory::kIndex));
  return std::unique_ptr<StorageFile>(std::move(file));
}

}  // namespace

Result<std::unique_ptr<SecondaryIndex>> SecondaryIndex::Open(
    Env* env, const std::string& dir, const IndexMeta& meta,
    const Attribute& attr, IoCounters* current_counters,
    IoCounters* history_counters, int buffer_frames, Journal* journal,
    obs::MetricsRegistry* metrics, const StorageOptions& sopts) {
  if (meta.org != Organization::kHeap && meta.org != Organization::kHash) {
    return Status::Invalid("index structure must be heap or hash");
  }
  RecordLayout layout;
  layout.key_offset = 0;
  layout.key_type = attr.type;
  layout.key_width = attr.width;
  layout.record_size = static_cast<uint16_t>(attr.width + 8);

  uint32_t nbuckets = meta.nbuckets > 0 ? meta.nbuckets : kDefaultIndexBuckets;
  TDB_ASSIGN_OR_RETURN(
      auto current,
      OpenIndexFile(env, dir + "/" + meta.CurrentFileName(), layout, meta.org,
                    nbuckets, current_counters, buffer_frames, journal,
                    sopts));
  std::unique_ptr<StorageFile> history;
  if (meta.levels == 2) {
    uint32_t hbuckets =
        meta.history_nbuckets > 0 ? meta.history_nbuckets : kDefaultIndexBuckets;
    TDB_ASSIGN_OR_RETURN(
        history,
        OpenIndexFile(env, dir + "/" + meta.HistoryFileName(), layout,
                      meta.org, hbuckets, history_counters, buffer_frames,
                      journal, sopts));
  }
  std::unique_ptr<SecondaryIndex> index(new SecondaryIndex(
      meta, layout, std::move(current), std::move(history)));
  if (metrics != nullptr) {
    const std::string prefix = "index." + meta.name + ".";
    index->m_probes_ = metrics->counter(prefix + "probes");
    index->m_entries_scanned_ = metrics->counter(prefix + "entries_scanned");
    index->m_inserts_ = metrics->counter(prefix + "inserts");
    index->m_moves_ = metrics->counter(prefix + "moves");
    index->m_removes_ = metrics->counter(prefix + "removes");
  }
  return index;
}

std::vector<uint8_t> SecondaryIndex::EncodeEntry(const Value& key, Tid tid,
                                                 bool in_history_store) const {
  std::vector<uint8_t> rec(layout_.record_size, 0);
  // Key bytes.
  switch (layout_.key_type) {
    case TypeId::kInt1:
    case TypeId::kInt2:
    case TypeId::kInt4: {
      int64_t v = key.AsInt();
      std::memcpy(rec.data(), &v, layout_.key_width);
      break;
    }
    case TypeId::kFloat8: {
      double v = key.AsDouble();
      std::memcpy(rec.data(), &v, 8);
      break;
    }
    case TypeId::kChar: {
      const std::string& s = key.AsString();
      size_t n = std::min<size_t>(s.size(), layout_.key_width);
      std::memcpy(rec.data(), s.data(), n);
      std::memset(rec.data() + n, ' ', layout_.key_width - n);
      break;
    }
    case TypeId::kTime: {
      int32_t v = key.AsTime().seconds();
      std::memcpy(rec.data(), &v, 4);
      break;
    }
  }
  uint8_t* p = rec.data() + layout_.key_width;
  std::memcpy(p, &tid.page, 4);
  std::memcpy(p + 4, &tid.slot, 2);
  uint16_t flags = in_history_store ? 1 : 0;
  std::memcpy(p + 6, &flags, 2);
  return rec;
}

IndexEntryRef SecondaryIndex::DecodeEntry(const RecordLayout& layout,
                                          const uint8_t* rec) {
  const uint8_t* p = rec + layout.key_width;
  IndexEntryRef ref;
  std::memcpy(&ref.tid.page, p, 4);
  std::memcpy(&ref.tid.slot, p + 4, 2);
  uint16_t flags = 0;
  std::memcpy(&flags, p + 6, 2);
  ref.in_history = (flags & 1) != 0;
  return ref;
}

Status SecondaryIndex::InsertCurrent(const Value& key, Tid tid,
                                     bool in_history_store) {
  if (m_inserts_ != nullptr) m_inserts_->Increment();
  std::vector<uint8_t> rec = EncodeEntry(key, tid, in_history_store);
  return current_->Insert(rec.data(), rec.size(), nullptr);
}

Status SecondaryIndex::InsertHistory(const Value& key, Tid tid,
                                     bool in_history_store) {
  if (m_inserts_ != nullptr) m_inserts_->Increment();
  StorageFile* file = meta_.levels == 2 ? history_.get() : current_.get();
  std::vector<uint8_t> rec = EncodeEntry(key, tid, in_history_store);
  return file->Insert(rec.data(), rec.size(), nullptr);
}

Result<Tid> SecondaryIndex::FindEntry(StorageFile* file, const Value& key,
                                      Tid tid) {
  std::unique_ptr<Cursor> cur;
  if (file->org() == Organization::kHash) {
    TDB_ASSIGN_OR_RETURN(cur, file->ScanKey(key));
  } else {
    TDB_ASSIGN_OR_RETURN(cur, file->Scan());
  }
  while (true) {
    TDB_ASSIGN_OR_RETURN(bool have, cur->Next());
    if (!have) break;
    if (!layout_.KeyOf(cur->record().data()).Equals(key)) continue;
    IndexEntryRef ref = DecodeEntry(layout_, cur->record().data());
    if (ref.tid == tid) return cur->tid();
  }
  return Status::NotFound("index entry not found");
}

Status SecondaryIndex::RemoveCurrent(const Value& key, Tid tid) {
  if (m_removes_ != nullptr) m_removes_->Increment();
  TDB_ASSIGN_OR_RETURN(Tid slot, FindEntry(current_.get(), key, tid));
  return current_->Erase(slot);
}

Status SecondaryIndex::MoveToHistory(const Value& key, Tid old_tid,
                                     Tid new_tid, bool new_in_history_store) {
  if (m_moves_ != nullptr) m_moves_->Increment();
  if (meta_.levels == 2) {
    TDB_RETURN_NOT_OK(RemoveCurrent(key, old_tid));
    return InsertHistory(key, new_tid, new_in_history_store);
  }
  // 1-level: rewrite the entry in place if the version moved.
  if (old_tid == new_tid) return Status::OK();
  TDB_ASSIGN_OR_RETURN(Tid slot, FindEntry(current_.get(), key, old_tid));
  std::vector<uint8_t> rec = EncodeEntry(key, new_tid, new_in_history_store);
  return current_->UpdateInPlace(slot, rec.data(), rec.size());
}

Status SecondaryIndex::CollectMatches(StorageFile* file, const Value& key,
                                      std::vector<IndexEntryRef>* out) {
  std::unique_ptr<Cursor> cur;
  if (file->org() == Organization::kHash) {
    TDB_ASSIGN_OR_RETURN(cur, file->ScanKey(key));
  } else {
    TDB_ASSIGN_OR_RETURN(cur, file->Scan());
  }
  while (true) {
    TDB_ASSIGN_OR_RETURN(bool have, cur->Next());
    if (!have) break;
    if (m_entries_scanned_ != nullptr) m_entries_scanned_->Increment();
    if (!layout_.KeyOf(cur->record().data()).Equals(key)) continue;
    out->push_back(DecodeEntry(layout_, cur->record().data()));
  }
  return Status::OK();
}

Result<std::vector<IndexEntryRef>> SecondaryIndex::Lookup(const Value& key,
                                                          bool current_only) {
  if (m_probes_ != nullptr) m_probes_->Increment();
  std::vector<IndexEntryRef> out;
  TDB_RETURN_NOT_OK(CollectMatches(current_.get(), key, &out));
  if (!current_only && history_ != nullptr) {
    TDB_RETURN_NOT_OK(CollectMatches(history_.get(), key, &out));
  }
  return out;
}

}  // namespace tdb
