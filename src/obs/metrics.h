#ifndef CHRONOQUEL_OBS_METRICS_H_
#define CHRONOQUEL_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace tdb {
namespace obs {

/// True unless the TDB_METRICS environment variable is set to "0".  The
/// default for Database instrumentation; consulted once per process (a
/// test override short-circuits the cached value).
bool MetricsEnabled();

/// Test hook: forces MetricsEnabled() to `enabled` (or back to the
/// environment value with nullopt) without re-exec'ing the process.
void SetMetricsEnabledForTest(std::optional<bool> enabled);

/// A monotonically increasing count.  The write path is a single relaxed
/// atomic add and the read path a relaxed load: no locks anywhere, so
/// readers (snapshots) never stall the instrumented hot path.
class Counter {
 public:
  void Add(uint64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// A value that can move both ways (e.g. resident frames, active spans).
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// A latency/size distribution over fixed log2 buckets: bucket i counts
/// samples v with bit_width(v) == i, i.e. bucket 0 holds v == 0, bucket i
/// holds 2^(i-1) <= v < 2^i.  Fixed buckets keep recording allocation-free
/// and the read path lock-free, at the cost of power-of-two resolution —
/// plenty for order-of-magnitude latency work.
class Histogram {
 public:
  /// 64 buckets cover the full uint64 range (bit_width in [0, 64]).
  static constexpr int kNumBuckets = 65;

  void Record(uint64_t v) {
    buckets_[BucketOf(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  static int BucketOf(uint64_t v) {
    int b = 0;
    while (v != 0) {
      v >>= 1;
      ++b;
    }
    return b;
  }

  /// Inclusive upper bound of bucket `i` (the largest value it can hold).
  static uint64_t BucketUpperBound(int i) {
    if (i <= 0) return 0;
    if (i >= 64) return ~uint64_t{0};
    return (uint64_t{1} << i) - 1;
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// The per-file buffer-pool / pager counters a Pager bumps on its hot
/// path.  Owned by the MetricsRegistry (one per instrumented file) and
/// reached through IoCounters::metrics, so the Pager needs no extra
/// constructor plumbing.  Structural invariants the differential tests
/// assert:  requests == hits + misses, and misses == read_pages (every
/// physical read is a buffer miss under the one-frame discipline).
struct PagerMetrics {
  Counter requests;     // ReadPage calls
  Counter hits;         // served from a resident frame
  Counter misses;       // required a physical read
  Counter evictions;    // a resident frame was displaced
  Counter read_pages;   // physical page reads
  Counter write_pages;  // physical page writes
  Counter syncs;        // fsync calls
};

/// Point-in-time dump of one histogram.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  /// Bucket counts, trimmed after the last non-zero bucket.
  std::vector<uint64_t> buckets;

  /// The p-th percentile (p in [0, 100]), as the inclusive upper bound of
  /// the log2 bucket holding the p-th sample — an over-estimate by at most
  /// 2x, which is the histogram's resolution.  p=100 bounds the maximum.
  /// 0 when the snapshot is empty.
  uint64_t Quantile(double p) const;
};

/// A structured, detached copy of every metric: safe to keep after the
/// Database is gone, cheap to diff (exact-count tests subtract two
/// snapshots), and serializable for the --metrics JSON artifacts.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Value of a named counter; 0 when absent.
  uint64_t counter(const std::string& name) const;

  /// Sum of every counter whose name starts with `prefix` and ends with
  /// `suffix` (either may be empty) — e.g. SumCounters("bufpool.",
  /// ".misses") is the database-wide miss count.
  uint64_t SumCounters(const std::string& prefix,
                       const std::string& suffix) const;

  /// Single-line JSON object:
  ///   {"counters":{...},"gauges":{...},
  ///    "histograms":{"name":{"count":n,"sum":s,"buckets":[...]}}}
  std::string ToJson() const;
};

/// Registry of named metrics owned by one Database.  Creation (the first
/// counter()/histogram() call for a name) allocates under an internal
/// mutex so concurrent sessions can share one registry; the returned
/// pointers are stable for the registry's lifetime, so steady-state
/// instrumentation is pointer-chasing plus relaxed atomics — after the
/// one-time lookup, no locks on either the write or the read path.
///
/// A disabled registry (TDB_METRICS=0, or DatabaseOptions::metrics =
/// false) is never wired into the storage layer at all: every metrics
/// pointer down the stack stays null and the hot paths pay a single
/// predictable branch, keeping figure output byte-identical.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(bool enabled) : enabled_(enabled) {}

  bool enabled() const { return enabled_; }

  /// Named metric accessors: create on first use, stable thereafter.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  /// The buffer-pool/pager counter block for one file (created on first
  /// use).  Surfaced in snapshots as "bufpool.<file>.<counter>" and
  /// "pager.<file>.<counter>".
  PagerMetrics* pager(const std::string& file_name);

  /// The ring-buffer trace sink spans record into.
  TraceSink* trace() { return &trace_; }

  MetricsSnapshot Snapshot() const;

 private:
  bool enabled_;
  mutable std::mutex mu_;  // guards the four name maps, not the metrics
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<PagerMetrics>> pagers_;
  TraceSink trace_;
};

}  // namespace obs
}  // namespace tdb

#endif  // CHRONOQUEL_OBS_METRICS_H_
