#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace tdb {
namespace obs {

namespace {

std::optional<bool> g_metrics_override;

bool MetricsEnabledFromEnv() {
  const char* v = std::getenv("TDB_METRICS");
  return v == nullptr || std::string_view(v) != "0";
}

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

bool MetricsEnabled() {
  if (g_metrics_override.has_value()) return *g_metrics_override;
  static const bool enabled = MetricsEnabledFromEnv();
  return enabled;
}

void SetMetricsEnabledForTest(std::optional<bool> enabled) {
  g_metrics_override = enabled;
}

uint64_t HistogramSnapshot::Quantile(double p) const {
  if (count == 0) return 0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  // Rank of the target sample, 1-based; p=0 selects the first sample.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(p / 100.0 * static_cast<double>(count) + 0.5));
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= rank) return Histogram::BucketUpperBound(static_cast<int>(i));
  }
  return Histogram::BucketUpperBound(static_cast<int>(buckets.size()) - 1);
}

uint64_t MetricsSnapshot::counter(const std::string& name) const {
  auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

uint64_t MetricsSnapshot::SumCounters(const std::string& prefix,
                                      const std::string& suffix) const {
  uint64_t total = 0;
  for (auto it = counters.lower_bound(prefix); it != counters.end(); ++it) {
    const std::string& name = it->first;
    if (!prefix.empty() && name.compare(0, prefix.size(), prefix) != 0) break;
    if (name.size() >= suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0) {
      total += it->second;
    }
  }
  return total;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(name, &out);
    out.push_back(':');
    out.append(std::to_string(value));
  }
  out.append("},\"gauges\":{");
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(name, &out);
    out.push_back(':');
    out.append(std::to_string(value));
  }
  out.append("},\"histograms\":{");
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(name, &out);
    out.append(":{\"count\":");
    out.append(std::to_string(h.count));
    out.append(",\"sum\":");
    out.append(std::to_string(h.sum));
    out.append(",\"buckets\":[");
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      if (i != 0) out.push_back(',');
      out.append(std::to_string(h.buckets[i]));
    }
    out.append("]}");
  }
  out.append("}}");
  return out;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

PagerMetrics* MetricsRegistry::pager(const std::string& file_name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = pagers_[file_name];
  if (slot == nullptr) slot = std::make_unique<PagerMetrics>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.count = h->count();
    hs.sum = h->sum();
    int last = -1;
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      if (h->bucket(i) != 0) last = i;
    }
    for (int i = 0; i <= last; ++i) hs.buckets.push_back(h->bucket(i));
    snap.histograms[name] = std::move(hs);
  }
  for (const auto& [file, pm] : pagers_) {
    snap.counters["bufpool." + file + ".requests"] = pm->requests.value();
    snap.counters["bufpool." + file + ".hits"] = pm->hits.value();
    snap.counters["bufpool." + file + ".misses"] = pm->misses.value();
    snap.counters["bufpool." + file + ".evictions"] = pm->evictions.value();
    snap.counters["pager." + file + ".read_pages"] = pm->read_pages.value();
    snap.counters["pager." + file + ".write_pages"] = pm->write_pages.value();
    snap.counters["pager." + file + ".syncs"] = pm->syncs.value();
  }
  return snap;
}

}  // namespace obs
}  // namespace tdb
