#ifndef CHRONOQUEL_OBS_TRACE_H_
#define CHRONOQUEL_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace tdb {
namespace obs {

class MetricsRegistry;

/// One completed span: a named region of execution with monotonic start
/// time and duration.  `depth` reflects span nesting at record time so a
/// flat dump still shows the call structure.
struct TraceEvent {
  std::string name;
  uint64_t start_nanos = 0;     // steady_clock, since an arbitrary epoch
  uint64_t duration_nanos = 0;
  uint32_t depth = 0;
};

/// Fixed-capacity ring buffer of the most recent spans.  Recording is
/// O(1) with no allocation in steady state (slots are reused); the sink
/// deliberately keeps only the tail so tracing can stay on in long
/// sessions without growing.  Internally mutex-guarded — concurrent
/// sessions share one sink, and span sites are statement/operator
/// granularity, far off any per-tuple path.
class TraceSink {
 public:
  static constexpr size_t kDefaultCapacity = 256;

  explicit TraceSink(size_t capacity = kDefaultCapacity)
      : ring_(capacity) {}

  void Record(TraceEvent ev) {
    std::lock_guard<std::mutex> lock(mu_);
    ring_[next_] = std::move(ev);
    next_ = (next_ + 1) % ring_.size();
    if (count_ < ring_.size()) ++count_;
  }

  /// Retained events, oldest first.
  std::vector<TraceEvent> Events() const;

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }
  size_t capacity() const { return ring_.size(); }
  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    next_ = 0;
    count_ = 0;
  }

  /// Current span nesting depth (maintained by TraceSpan).  Concurrent
  /// sessions interleave their spans in one sink, so depth is advisory
  /// under concurrency — the flat dump stays readable either way.
  uint32_t depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return depth_;
  }
  void EnterSpan() {
    std::lock_guard<std::mutex> lock(mu_);
    ++depth_;
  }
  void ExitSpan() {
    std::lock_guard<std::mutex> lock(mu_);
    if (depth_ > 0) --depth_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  size_t next_ = 0;
  size_t count_ = 0;
  uint32_t depth_ = 0;
};

/// RAII span: times the enclosing scope and records a TraceEvent into the
/// registry's sink on destruction.  A null registry makes the span a
/// no-op, which is how tracing stays zero-cost when metrics are disabled
/// — callers pass Database::metrics() straight through.
class TraceSpan {
 public:
  TraceSpan(MetricsRegistry* registry, const char* name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  MetricsRegistry* registry_;
  const char* name_;
  uint32_t depth_ = 0;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace obs
}  // namespace tdb

#endif  // CHRONOQUEL_OBS_TRACE_H_
