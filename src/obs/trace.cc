#include "obs/trace.h"

#include "obs/metrics.h"

namespace tdb {
namespace obs {

std::vector<TraceEvent> TraceSink::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(count_);
  size_t start = (next_ + ring_.size() - count_) % ring_.size();
  for (size_t i = 0; i < count_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

TraceSpan::TraceSpan(MetricsRegistry* registry, const char* name)
    : registry_(registry), name_(name) {
  if (registry_ == nullptr) return;
  depth_ = registry_->trace()->depth();
  registry_->trace()->EnterSpan();
  start_ = std::chrono::steady_clock::now();
}

TraceSpan::~TraceSpan() {
  if (registry_ == nullptr) return;
  auto end = std::chrono::steady_clock::now();
  registry_->trace()->ExitSpan();
  TraceEvent ev;
  ev.name = name_;
  ev.start_nanos = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          start_.time_since_epoch())
          .count());
  ev.duration_nanos = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start_)
          .count());
  ev.depth = depth_;
  registry_->trace()->Record(std::move(ev));
}

}  // namespace obs
}  // namespace tdb
