#include "diskmodel/disk_model.h"

namespace tdb {

DiskEstimate DiskModel::Estimate(const std::vector<IoEvent>& events) const {
  DiskEstimate estimate;
  bool have_prev = false;
  IoEvent prev;
  for (const IoEvent& e : events) {
    bool sequential = have_prev && e.file_id == prev.file_id &&
                      e.page == prev.page + 1;
    if (sequential) {
      ++estimate.sequential_accesses;
      estimate.total_ms += params_.sequential_ms_per_page;
    } else {
      ++estimate.random_accesses;
      estimate.total_ms += params_.average_seek_ms +
                           params_.rotation_ms / 2 +
                           params_.transfer_ms_per_page;
    }
    prev = e;
    have_prev = true;
  }
  return estimate;
}

}  // namespace tdb
