#ifndef CHRONOQUEL_DISKMODEL_DISK_MODEL_H_
#define CHRONOQUEL_DISKMODEL_DISK_MODEL_H_

#include <cstdint>
#include <vector>

#include "storage/io_stats.h"
#include "util/status.h"

namespace tdb {

/// Parameters of a mid-1980s moving-head disk (defaults approximate the
/// DEC RA81 drives a VAX 11/780 of the paper's vintage would use).
struct DiskParameters {
  double average_seek_ms = 28.0;
  double rotation_ms = 16.7;       // 3600 rpm full rotation
  double transfer_ms_per_page = 0.6;  // 1 KiB at ~1.7 MB/s
  /// Accesses to the next physical page of the same file skip the seek and
  /// most rotational delay (read-ahead within a track).
  double sequential_ms_per_page = 0.8;
};

/// Estimated device time for a trace.
struct DiskEstimate {
  uint64_t random_accesses = 0;
  uint64_t sequential_accesses = 0;
  double total_ms = 0;
};

/// Replays an I/O trace against the disk parameters: an access is
/// *sequential* when it touches the page following the previous access in
/// the same file (a scan); anything else pays a seek plus half a rotation.
/// This turns the paper's page counts into modeled response times,
/// quantifying the "highly correlated with ... response time" claim and
/// exposing the scan-vs-probe asymmetry page counts alone hide.
class DiskModel {
 public:
  explicit DiskModel(DiskParameters params = DiskParameters())
      : params_(params) {}

  DiskEstimate Estimate(const std::vector<IoEvent>& events) const;

  const DiskParameters& params() const { return params_; }

 private:
  DiskParameters params_;
};

}  // namespace tdb

#endif  // CHRONOQUEL_DISKMODEL_DISK_MODEL_H_
