#include "exec/join_method.h"

#include "core/database.h"
#include "util/stringx.h"

namespace tdb {

namespace {
std::optional<JoinMethod> g_join_override;
}  // namespace

const char* JoinMethodName(JoinMethod m) {
  switch (m) {
    case JoinMethod::kPaper:
      return "paper";
    case JoinMethod::kAuto:
      return "auto";
    case JoinMethod::kNestedLoop:
      return "nlj";
    case JoinMethod::kHash:
      return "hash";
    case JoinMethod::kMerge:
      return "merge";
  }
  return "?";
}

std::optional<JoinMethod> ParseJoinMethod(const std::string& text) {
  std::string t = ToLower(Trim(text));
  if (t == "paper") return JoinMethod::kPaper;
  if (t == "auto" || t == "cost") return JoinMethod::kAuto;
  if (t == "nlj" || t == "nested-loop") return JoinMethod::kNestedLoop;
  if (t == "hash") return JoinMethod::kHash;
  if (t == "merge" || t == "interval") return JoinMethod::kMerge;
  return std::nullopt;
}

JoinMethod JoinMethodFromEnv() {
  return DatabaseOptions::FromEnv().join_method.value_or(JoinMethod::kPaper);
}

JoinMethod EffectiveJoinMethod(std::optional<JoinMethod> option) {
  if (g_join_override.has_value()) return *g_join_override;
  return option.value_or(JoinMethodFromEnv());
}

void SetJoinMethodForTest(std::optional<JoinMethod> method) {
  g_join_override = method;
}

}  // namespace tdb
