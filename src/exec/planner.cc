#include "exec/planner.h"

#include "exec/compiled_expr.h"
#include "exec/eval.h"
#include "util/stringx.h"

namespace tdb {

void CollectExprVars(const Expr* expr, std::set<int>* out) {
  if (expr == nullptr) return;
  switch (expr->kind) {
    case Expr::Kind::kColumn:
      out->insert(expr->var_index);
      return;
    case Expr::Kind::kBinary:
      CollectExprVars(expr->left.get(), out);
      CollectExprVars(expr->right.get(), out);
      return;
    case Expr::Kind::kUnary:
      CollectExprVars(expr->left.get(), out);
      return;
    case Expr::Kind::kAggregate:
      CollectExprVars(expr->agg_arg.get(), out);
      CollectExprVars(expr->agg_by.get(), out);
      CollectExprVars(expr->agg_where.get(), out);
      return;
    default:
      return;
  }
}

void CollectTemporalExprVars(const TemporalExpr* expr, std::set<int>* out) {
  if (expr == nullptr) return;
  if (expr->kind == TemporalExpr::Kind::kVar) {
    out->insert(expr->var_index);
    return;
  }
  CollectTemporalExprVars(expr->left.get(), out);
  CollectTemporalExprVars(expr->right.get(), out);
}

void CollectTemporalPredVars(const TemporalPred* pred, std::set<int>* out) {
  if (pred == nullptr) return;
  CollectTemporalExprVars(pred->lexpr.get(), out);
  CollectTemporalExprVars(pred->rexpr.get(), out);
  CollectTemporalPredVars(pred->left.get(), out);
  CollectTemporalPredVars(pred->right.get(), out);
}

void SplitWhere(const Expr* where, std::vector<Conjunct>* out) {
  if (where == nullptr) return;
  if (where->kind == Expr::Kind::kBinary && where->op == ExprOp::kAnd) {
    SplitWhere(where->left.get(), out);
    SplitWhere(where->right.get(), out);
    return;
  }
  Conjunct c;
  c.expr = where;
  CollectExprVars(where, &c.vars);
  out->push_back(std::move(c));
}

void SplitWhen(const TemporalPred* when, std::vector<TemporalConjunct>* out) {
  if (when == nullptr) return;
  if (when->kind == TemporalPred::Kind::kAnd) {
    SplitWhen(when->left.get(), out);
    SplitWhen(when->right.get(), out);
    return;
  }
  TemporalConjunct c;
  c.pred = when;
  CollectTemporalPredVars(when, &c.vars);
  out->push_back(std::move(c));
}

namespace {

bool IsSubset(const std::set<int>& sub, const std::set<int>& super) {
  for (int v : sub) {
    if (super.count(v) == 0) return false;
  }
  return true;
}

/// If `conj` is `var.attr OP e` (either side, OP from `ops`) where e's
/// variables are all in `available`, returns the probe expression, the
/// attribute index, and the operator as seen with the column on the left.
const Expr* MatchCmpOnAttr(const Conjunct& conj, int var,
                           const std::set<int>& available,
                           std::initializer_list<ExprOp> ops, int* attr_index,
                           ExprOp* op_out) {
  const Expr* e = conj.expr;
  if (e->kind != Expr::Kind::kBinary) return nullptr;
  bool wanted = false;
  for (ExprOp op : ops) wanted = wanted || e->op == op;
  if (!wanted) return nullptr;
  for (int side = 0; side < 2; ++side) {
    const Expr* col = side == 0 ? e->left.get() : e->right.get();
    const Expr* other = side == 0 ? e->right.get() : e->left.get();
    if (col->kind != Expr::Kind::kColumn || col->var_index != var) continue;
    std::set<int> other_vars;
    CollectExprVars(other, &other_vars);
    if (other_vars.count(var) > 0) continue;
    if (!IsSubset(other_vars, available)) continue;
    *attr_index = col->attr_index;
    ExprOp op = e->op;
    if (side == 1) {  // mirror: `c < var.attr` is `var.attr > c`
      switch (e->op) {
        case ExprOp::kLt:
          op = ExprOp::kGt;
          break;
        case ExprOp::kLe:
          op = ExprOp::kGe;
          break;
        case ExprOp::kGt:
          op = ExprOp::kLt;
          break;
        case ExprOp::kGe:
          op = ExprOp::kLe;
          break;
        default:
          break;
      }
    }
    *op_out = op;
    return other;
  }
  return nullptr;
}

const Expr* MatchEqOnAttr(const Conjunct& conj, int var,
                          const std::set<int>& available, int* attr_index) {
  ExprOp op;
  return MatchCmpOnAttr(conj, var, available, {ExprOp::kEq}, attr_index, &op);
}

}  // namespace

AccessChoice ChooseAccess(int var, Relation* rel,
                          const std::vector<Conjunct>& conjuncts,
                          const std::set<int>& available) {
  AccessChoice choice;
  const Schema& schema = rel->schema();
  int key_idx = rel->meta().key_attr.empty()
                    ? -1
                    : schema.FindAttr(rel->meta().key_attr);
  const Expr* index_probe = nullptr;
  SecondaryIndex* index = nullptr;

  for (const Conjunct& conj : conjuncts) {
    if (conj.vars.count(var) == 0) continue;
    int attr_index = -1;
    const Expr* probe = MatchEqOnAttr(conj, var, available, &attr_index);
    if (probe == nullptr) continue;
    // The organization key wins outright.
    if (attr_index == key_idx && rel->primary()->org() != Organization::kHeap) {
      choice.kind = AccessChoice::Kind::kKeyed;
      choice.key_expr = probe;
      return choice;
    }
    if (index == nullptr) {
      SecondaryIndex* idx =
          rel->FindIndex(schema.attr(static_cast<size_t>(attr_index)).name);
      if (idx != nullptr) {
        index = idx;
        index_probe = probe;
      }
    }
  }
  if (index != nullptr) {
    choice.kind = AccessChoice::Kind::kIndexEq;
    choice.key_expr = index_probe;
    choice.index = index;
    return choice;
  }
  // Order-preserving organizations (ISAM, B-tree) also support key-range
  // access for inequality predicates on the key.
  if (key_idx >= 0 && (rel->primary()->org() == Organization::kIsam ||
                       rel->primary()->org() == Organization::kBtree)) {
    for (const Conjunct& conj : conjuncts) {
      if (conj.vars.count(var) == 0) continue;
      int attr_index = -1;
      ExprOp op;
      const Expr* bound = MatchCmpOnAttr(
          conj, var, available,
          {ExprOp::kLt, ExprOp::kLe, ExprOp::kGt, ExprOp::kGe}, &attr_index,
          &op);
      if (bound == nullptr || attr_index != key_idx) continue;
      if (op == ExprOp::kGt || op == ExprOp::kGe) {
        if (choice.lo_expr == nullptr) {
          choice.lo_expr = bound;
          choice.lo_inclusive = op == ExprOp::kGe;
        }
      } else {
        if (choice.hi_expr == nullptr) {
          choice.hi_expr = bound;
          choice.hi_inclusive = op == ExprOp::kLe;
        }
      }
    }
    if (choice.lo_expr != nullptr || choice.hi_expr != nullptr) {
      choice.kind = AccessChoice::Kind::kRange;
    }
  }
  return choice;
}

namespace {

bool IsNowExpr(const TemporalExpr* e) {
  return e != nullptr && e->kind == TemporalExpr::Kind::kNow;
}

bool IsVarExpr(const TemporalExpr* e, int var) {
  return e != nullptr && e->kind == TemporalExpr::Kind::kVar &&
         e->var_index == var;
}

/// Matches `var overlap "now"` in either operand order, in both the bare
/// (kNonEmpty over an overlap expression) and explicit kOverlap forms.
bool IsVarOverlapNow(const TemporalPred* pred, int var) {
  const TemporalExpr* a = nullptr;
  const TemporalExpr* b = nullptr;
  if (pred->kind == TemporalPred::Kind::kOverlap) {
    a = pred->lexpr.get();
    b = pred->rexpr.get();
  } else if (pred->kind == TemporalPred::Kind::kNonEmpty &&
             pred->lexpr->kind == TemporalExpr::Kind::kOverlap) {
    a = pred->lexpr->left.get();
    b = pred->lexpr->right.get();
  } else {
    return false;
  }
  return (IsVarExpr(a, var) && IsNowExpr(b)) ||
         (IsVarExpr(b, var) && IsNowExpr(a));
}

}  // namespace

bool WantsCurrentOnly(int var, const Relation* rel,
                      const std::vector<TemporalConjunct>& when_conjuncts,
                      bool as_of_is_now) {
  const Schema& schema = rel->schema();
  DbType type = schema.db_type();
  if (HasValidTime(type) && schema.entity_kind() == EntityKind::kInterval) {
    for (const TemporalConjunct& c : when_conjuncts) {
      if (IsVarOverlapNow(c.pred, var)) return true;
    }
    return false;
  }
  // Rollback relations (transaction time only): rolling back to "now"
  // selects the versions whose transaction interval is still open.
  return HasTransactionTime(type) && as_of_is_now;
}

namespace {

/// Variables still referenced once aggregates fold: a plain (ungrouped)
/// aggregate becomes a constant before iteration starts, so it keeps none
/// of its variables live; a `by` aggregate keeps its node (group lookup per
/// output row) and therefore all of them.
void CollectPostFoldVars(const Expr* expr, std::set<int>* out) {
  if (expr == nullptr) return;
  switch (expr->kind) {
    case Expr::Kind::kColumn:
      out->insert(expr->var_index);
      return;
    case Expr::Kind::kBinary:
      CollectPostFoldVars(expr->left.get(), out);
      CollectPostFoldVars(expr->right.get(), out);
      return;
    case Expr::Kind::kUnary:
      CollectPostFoldVars(expr->left.get(), out);
      return;
    case Expr::Kind::kAggregate:
      if (expr->agg_by != nullptr) {
        CollectExprVars(expr->agg_arg.get(), out);
        CollectExprVars(expr->agg_by.get(), out);
        CollectExprVars(expr->agg_where.get(), out);
      }
      return;
    default:
      return;
  }
}

/// Converts an AccessChoice into the corresponding plan leaf, rendering the
/// probe/bound expressions for display.
std::unique_ptr<AccessNode> NodeForChoice(const AccessChoice& choice, int var,
                                          const std::string& var_name,
                                          Relation* rel, bool current_only) {
  std::unique_ptr<AccessNode> node;
  switch (choice.kind) {
    case AccessChoice::Kind::kScan:
      node = std::make_unique<SeqScanNode>();
      break;
    case AccessChoice::Kind::kKeyed: {
      auto keyed = std::make_unique<KeyedLookupNode>();
      keyed->key_expr = choice.key_expr;
      keyed->key_text = choice.key_expr->ToString();
      if (CompiledExprEnabled()) {
        keyed->key_prog = CompiledProgram::CompileExpr(*choice.key_expr);
      }
      node = std::move(keyed);
      break;
    }
    case AccessChoice::Kind::kIndexEq: {
      auto ix = std::make_unique<IndexEqNode>();
      ix->key_expr = choice.key_expr;
      ix->key_text = choice.key_expr->ToString();
      if (CompiledExprEnabled()) {
        ix->key_prog = CompiledProgram::CompileExpr(*choice.key_expr);
      }
      ix->index = choice.index;
      ix->index_attr = choice.index->meta().attr;
      node = std::move(ix);
      break;
    }
    case AccessChoice::Kind::kRange: {
      auto range = std::make_unique<RangeScanNode>();
      range->lo_expr = choice.lo_expr;
      range->hi_expr = choice.hi_expr;
      range->lo_inclusive = choice.lo_inclusive;
      range->hi_inclusive = choice.hi_inclusive;
      if (choice.lo_expr != nullptr) range->lo_text = choice.lo_expr->ToString();
      if (choice.hi_expr != nullptr) range->hi_text = choice.hi_expr->ToString();
      if (CompiledExprEnabled()) {
        if (choice.lo_expr != nullptr) {
          range->lo_prog = CompiledProgram::CompileExpr(*choice.lo_expr);
        }
        if (choice.hi_expr != nullptr) {
          range->hi_prog = CompiledProgram::CompileExpr(*choice.hi_expr);
        }
      }
      node = std::move(range);
      break;
    }
  }
  node->var = var;
  node->var_name = var_name;
  node->rel_name = rel->meta().name;
  node->rel = rel;
  node->current_only = current_only;
  return node;
}

/// The residual conjuncts one nesting level applies.
struct LevelConjuncts {
  std::vector<const Conjunct*> where;
  std::vector<const TemporalConjunct*> when;
};

/// Assigns each top-level conjunct to the first level (in binding order)
/// at which all its variables are bound.  Variable-free conjuncts go to the
/// outermost level — evaluating them once is equivalent to the historical
/// executor's re-evaluation at every level.
std::vector<LevelConjuncts> AssignConjuncts(
    const std::vector<int>& order, const std::vector<Conjunct>& where,
    const std::vector<TemporalConjunct>& when) {
  std::vector<LevelConjuncts> out(order.size());
  std::set<int> bound;
  for (size_t level = 0; level < order.size(); ++level) {
    bound.insert(order[level]);
    for (const Conjunct& c : where) {
      if (c.vars.empty()) {
        if (level == 0) out[0].where.push_back(&c);
        continue;
      }
      if (c.vars.count(order[level]) == 0) continue;  // not newly covered
      if (!IsSubset(c.vars, bound)) continue;
      out[level].where.push_back(&c);
    }
    for (const TemporalConjunct& c : when) {
      if (c.vars.empty()) {
        if (level == 0) out[0].when.push_back(&c);
        continue;
      }
      if (c.vars.count(order[level]) == 0) continue;
      if (!IsSubset(c.vars, bound)) continue;
      out[level].when.push_back(&c);
    }
  }
  return out;
}

/// Wraps an access leaf in a FilterNode when its level has residual
/// conjuncts to apply.
std::unique_ptr<PlanNode> WrapLevel(std::unique_ptr<AccessNode> access,
                                    const LevelConjuncts& residual) {
  if (residual.where.empty() && residual.when.empty()) return access;
  auto filter = std::make_unique<FilterNode>();
  for (const Conjunct* c : residual.where) {
    filter->where.push_back(c->expr);
    filter->pred_text.push_back(c->expr->ToString());
  }
  for (const TemporalConjunct* c : residual.when) {
    filter->when.push_back(c->pred);
    filter->pred_text.push_back("when " + c->pred->ToString());
  }
  if (CompiledExprEnabled()) {
    // All-or-nothing: the executor takes the compiled path only when every
    // conjunct of the level lowered (aggregates in `where` are rejected by
    // the binder, so in practice this always succeeds).
    bool all = true;
    for (const Expr* e : filter->where) {
      auto prog = CompiledProgram::CompileExpr(*e);
      if (!prog.has_value()) {
        all = false;
        break;
      }
      filter->where_prog.push_back(std::move(*prog));
    }
    if (all) {
      for (const TemporalPred* p : filter->when) {
        filter->when_prog.push_back(CompiledProgram::CompilePred(*p));
      }
    } else {
      filter->where_prog.clear();
    }
  }
  filter->child = std::move(access);
  return filter;
}

}  // namespace

Result<std::shared_ptr<PhysicalPlan>> BuildPlan(const RetrieveStmt& stmt,
                                                const BoundStatement& bound,
                                                const ExecEnv& env) {
  auto plan = std::make_shared<PhysicalPlan>();
  Evaluator eval(env.now);

  std::vector<Relation*> rels;
  for (const BoundVar& bv : bound.vars) {
    TDB_ASSIGN_OR_RETURN(Relation * rel, env.GetRelation(bv.rel->name));
    rels.push_back(rel);
  }

  std::vector<Conjunct> where_conjuncts;
  std::vector<TemporalConjunct> when_conjuncts;
  SplitWhere(stmt.where.get(), &where_conjuncts);
  SplitWhen(stmt.when.get(), &when_conjuncts);

  // TQuel semantics: without an explicit `as of`, relations with
  // transaction time are viewed as of *now*.  The rollback point is a
  // constant of the statement, so it is evaluated at plan time.
  plan->as_of_at = env.now;
  std::string as_of_text;
  if (stmt.as_of.has_value()) {
    Binding empty;
    TDB_ASSIGN_OR_RETURN(Interval at, eval.EvalTemporal(*stmt.as_of->at, empty));
    plan->as_of_at = at.from;
    as_of_text = stmt.as_of->at->ToString();
    if (stmt.as_of->through != nullptr) {
      plan->has_through = true;
      TDB_ASSIGN_OR_RETURN(Interval through,
                           eval.EvalTemporal(*stmt.as_of->through, empty));
      plan->as_of_through = through.from;
      as_of_text += " through " + stmt.as_of->through->ToString();
    }
  }
  bool as_of_is_now = !plan->has_through && plan->as_of_at == env.now;

  std::vector<bool> current_only(rels.size(), false);
  for (size_t i = 0; i < rels.size(); ++i) {
    current_only[i] = WantsCurrentOnly(static_cast<int>(i), rels[i],
                                       when_conjuncts, as_of_is_now);
  }

  // Variables that stay live once plain aggregates fold to constants; a
  // query with none (e.g. `retrieve (n = count(p.id))`) emits one row.
  std::set<int> live;
  for (const TargetItem& t : stmt.targets) {
    CollectPostFoldVars(t.expr.get(), &live);
  }
  CollectExprVars(stmt.where.get(), &live);
  CollectTemporalPredVars(stmt.when.get(), &live);
  if (stmt.valid.has_value()) {
    CollectTemporalExprVars(stmt.valid->from.get(), &live);
    CollectTemporalExprVars(stmt.valid->to.get(), &live);
  }

  // Does the result carry a valid interval?
  bool valid_output = stmt.valid.has_value();
  if (!valid_output && !rels.empty()) {
    valid_output = true;
    for (Relation* rel : rels) {
      if (!HasValidTime(rel->schema().db_type())) valid_output = false;
    }
  }

  auto root = std::make_unique<ProjectNode>();
  root->unique = stmt.unique;
  root->into = stmt.into;
  root->valid_output = valid_output;
  root->as_of_text = as_of_text;
  for (const TargetItem& t : stmt.targets) {
    // The binder derives a name for bare column targets; showing it would
    // just repeat the attribute ("id = h.id"), so keep implicit names out.
    bool implicit = t.name.empty() || (t.expr->kind == Expr::Kind::kColumn &&
                                       t.name == t.expr->attr);
    root->target_text.push_back(
        implicit ? t.expr->ToString() : t.name + " = " + t.expr->ToString());
  }
  {
    std::vector<std::string> keys;
    for (const SortKey& key : stmt.sort_by) {
      keys.push_back(key.target + (key.descending ? " desc" : ""));
    }
    root->sort_text = Join(keys, ", ");
  }

  auto access_for = [&](int var, const std::set<int>& available) {
    AccessChoice choice = ChooseAccess(var, rels[static_cast<size_t>(var)],
                                       where_conjuncts, available);
    return NodeForChoice(choice, var, bound.vars[static_cast<size_t>(var)].name,
                         rels[static_cast<size_t>(var)],
                         current_only[static_cast<size_t>(var)]);
  };
  auto nested_plan = [&]() {
    std::vector<int> order;
    for (size_t i = 0; i < rels.size(); ++i) order.push_back(static_cast<int>(i));
    std::vector<LevelConjuncts> residual =
        AssignConjuncts(order, where_conjuncts, when_conjuncts);
    auto nested = std::make_unique<NestedLoopNode>();
    std::set<int> outer;
    for (size_t level = 0; level < order.size(); ++level) {
      nested->levels.push_back(
          WrapLevel(access_for(order[level], outer), residual[level]));
      outer.insert(order[level]);
    }
    return nested;
  };

  if (rels.empty() || live.empty()) {
    // Constant plan: root without input.
  } else if (rels.size() == 1) {
    std::vector<LevelConjuncts> residual =
        AssignConjuncts({0}, where_conjuncts, when_conjuncts);
    root->child = WrapLevel(access_for(0, {}), residual[0]);
  } else if (rels.size() == 2) {
    // Prefer tuple substitution into a keyed inner variable (the Ingres
    // decomposition the paper's two-variable queries measure).
    int inner = -1;
    AccessChoice inner_choice;
    for (int cand = 0; cand < 2; ++cand) {
      std::set<int> avail = {1 - cand};
      AccessChoice c = ChooseAccess(cand, rels[static_cast<size_t>(cand)],
                                    where_conjuncts, avail);
      if (c.kind == AccessChoice::Kind::kKeyed ||
          (c.kind == AccessChoice::Kind::kIndexEq && inner < 0)) {
        inner = cand;
        inner_choice = c;
        if (c.kind == AccessChoice::Kind::kKeyed) break;
      }
    }
    if (inner >= 0) {
      int outer = 1 - inner;
      std::vector<LevelConjuncts> residual =
          AssignConjuncts({outer, inner}, where_conjuncts, when_conjuncts);
      auto sub = std::make_unique<SubstitutionNode>();
      sub->outer = WrapLevel(access_for(outer, {}), residual[0]);
      sub->inner = WrapLevel(
          NodeForChoice(inner_choice, inner,
                        bound.vars[static_cast<size_t>(inner)].name,
                        rels[static_cast<size_t>(inner)],
                        current_only[static_cast<size_t>(inner)]),
          residual[1]);
      root->child = std::move(sub);
    } else {
      root->child = nested_plan();
    }
  } else {
    root->child = nested_plan();
  }

  plan->root = std::move(root);
  return plan;
}

}  // namespace tdb
