#include "exec/planner.h"

#include "util/stringx.h"

namespace tdb {

void CollectExprVars(const Expr* expr, std::set<int>* out) {
  if (expr == nullptr) return;
  switch (expr->kind) {
    case Expr::Kind::kColumn:
      out->insert(expr->var_index);
      return;
    case Expr::Kind::kBinary:
      CollectExprVars(expr->left.get(), out);
      CollectExprVars(expr->right.get(), out);
      return;
    case Expr::Kind::kUnary:
      CollectExprVars(expr->left.get(), out);
      return;
    case Expr::Kind::kAggregate:
      CollectExprVars(expr->agg_arg.get(), out);
      CollectExprVars(expr->agg_by.get(), out);
      CollectExprVars(expr->agg_where.get(), out);
      return;
    default:
      return;
  }
}

void CollectTemporalExprVars(const TemporalExpr* expr, std::set<int>* out) {
  if (expr == nullptr) return;
  if (expr->kind == TemporalExpr::Kind::kVar) {
    out->insert(expr->var_index);
    return;
  }
  CollectTemporalExprVars(expr->left.get(), out);
  CollectTemporalExprVars(expr->right.get(), out);
}

void CollectTemporalPredVars(const TemporalPred* pred, std::set<int>* out) {
  if (pred == nullptr) return;
  CollectTemporalExprVars(pred->lexpr.get(), out);
  CollectTemporalExprVars(pred->rexpr.get(), out);
  CollectTemporalPredVars(pred->left.get(), out);
  CollectTemporalPredVars(pred->right.get(), out);
}

void SplitWhere(const Expr* where, std::vector<Conjunct>* out) {
  if (where == nullptr) return;
  if (where->kind == Expr::Kind::kBinary && where->op == ExprOp::kAnd) {
    SplitWhere(where->left.get(), out);
    SplitWhere(where->right.get(), out);
    return;
  }
  Conjunct c;
  c.expr = where;
  CollectExprVars(where, &c.vars);
  out->push_back(std::move(c));
}

void SplitWhen(const TemporalPred* when, std::vector<TemporalConjunct>* out) {
  if (when == nullptr) return;
  if (when->kind == TemporalPred::Kind::kAnd) {
    SplitWhen(when->left.get(), out);
    SplitWhen(when->right.get(), out);
    return;
  }
  TemporalConjunct c;
  c.pred = when;
  CollectTemporalPredVars(when, &c.vars);
  out->push_back(std::move(c));
}

namespace {

bool IsSubset(const std::set<int>& sub, const std::set<int>& super) {
  for (int v : sub) {
    if (super.count(v) == 0) return false;
  }
  return true;
}

/// If `conj` is `var.attr OP e` (either side, OP from `ops`) where e's
/// variables are all in `available`, returns the probe expression, the
/// attribute index, and the operator as seen with the column on the left.
const Expr* MatchCmpOnAttr(const Conjunct& conj, int var,
                           const std::set<int>& available,
                           std::initializer_list<ExprOp> ops, int* attr_index,
                           ExprOp* op_out) {
  const Expr* e = conj.expr;
  if (e->kind != Expr::Kind::kBinary) return nullptr;
  bool wanted = false;
  for (ExprOp op : ops) wanted = wanted || e->op == op;
  if (!wanted) return nullptr;
  for (int side = 0; side < 2; ++side) {
    const Expr* col = side == 0 ? e->left.get() : e->right.get();
    const Expr* other = side == 0 ? e->right.get() : e->left.get();
    if (col->kind != Expr::Kind::kColumn || col->var_index != var) continue;
    std::set<int> other_vars;
    CollectExprVars(other, &other_vars);
    if (other_vars.count(var) > 0) continue;
    if (!IsSubset(other_vars, available)) continue;
    *attr_index = col->attr_index;
    ExprOp op = e->op;
    if (side == 1) {  // mirror: `c < var.attr` is `var.attr > c`
      switch (e->op) {
        case ExprOp::kLt:
          op = ExprOp::kGt;
          break;
        case ExprOp::kLe:
          op = ExprOp::kGe;
          break;
        case ExprOp::kGt:
          op = ExprOp::kLt;
          break;
        case ExprOp::kGe:
          op = ExprOp::kLe;
          break;
        default:
          break;
      }
    }
    *op_out = op;
    return other;
  }
  return nullptr;
}

const Expr* MatchEqOnAttr(const Conjunct& conj, int var,
                          const std::set<int>& available, int* attr_index) {
  ExprOp op;
  return MatchCmpOnAttr(conj, var, available, {ExprOp::kEq}, attr_index, &op);
}

}  // namespace

AccessChoice ChooseAccess(int var, Relation* rel,
                          const std::vector<Conjunct>& conjuncts,
                          const std::set<int>& available) {
  AccessChoice choice;
  const Schema& schema = rel->schema();
  int key_idx = rel->meta().key_attr.empty()
                    ? -1
                    : schema.FindAttr(rel->meta().key_attr);
  const Expr* index_probe = nullptr;
  SecondaryIndex* index = nullptr;

  for (const Conjunct& conj : conjuncts) {
    if (conj.vars.count(var) == 0) continue;
    int attr_index = -1;
    const Expr* probe = MatchEqOnAttr(conj, var, available, &attr_index);
    if (probe == nullptr) continue;
    // The organization key wins outright.
    if (attr_index == key_idx && rel->primary()->org() != Organization::kHeap) {
      choice.kind = AccessChoice::Kind::kKeyed;
      choice.key_expr = probe;
      return choice;
    }
    if (index == nullptr) {
      SecondaryIndex* idx =
          rel->FindIndex(schema.attr(static_cast<size_t>(attr_index)).name);
      if (idx != nullptr) {
        index = idx;
        index_probe = probe;
      }
    }
  }
  if (index != nullptr) {
    choice.kind = AccessChoice::Kind::kIndexEq;
    choice.key_expr = index_probe;
    choice.index = index;
    return choice;
  }
  // Order-preserving organizations (ISAM, B-tree) also support key-range
  // access for inequality predicates on the key.
  if (key_idx >= 0 && (rel->primary()->org() == Organization::kIsam ||
                       rel->primary()->org() == Organization::kBtree)) {
    for (const Conjunct& conj : conjuncts) {
      if (conj.vars.count(var) == 0) continue;
      int attr_index = -1;
      ExprOp op;
      const Expr* bound = MatchCmpOnAttr(
          conj, var, available,
          {ExprOp::kLt, ExprOp::kLe, ExprOp::kGt, ExprOp::kGe}, &attr_index,
          &op);
      if (bound == nullptr || attr_index != key_idx) continue;
      if (op == ExprOp::kGt || op == ExprOp::kGe) {
        if (choice.lo_expr == nullptr) {
          choice.lo_expr = bound;
          choice.lo_inclusive = op == ExprOp::kGe;
        }
      } else {
        if (choice.hi_expr == nullptr) {
          choice.hi_expr = bound;
          choice.hi_inclusive = op == ExprOp::kLe;
        }
      }
    }
    if (choice.lo_expr != nullptr || choice.hi_expr != nullptr) {
      choice.kind = AccessChoice::Kind::kRange;
    }
  }
  return choice;
}

namespace {

bool IsNowExpr(const TemporalExpr* e) {
  return e != nullptr && e->kind == TemporalExpr::Kind::kNow;
}

bool IsVarExpr(const TemporalExpr* e, int var) {
  return e != nullptr && e->kind == TemporalExpr::Kind::kVar &&
         e->var_index == var;
}

/// Matches `var overlap "now"` in either operand order, in both the bare
/// (kNonEmpty over an overlap expression) and explicit kOverlap forms.
bool IsVarOverlapNow(const TemporalPred* pred, int var) {
  const TemporalExpr* a = nullptr;
  const TemporalExpr* b = nullptr;
  if (pred->kind == TemporalPred::Kind::kOverlap) {
    a = pred->lexpr.get();
    b = pred->rexpr.get();
  } else if (pred->kind == TemporalPred::Kind::kNonEmpty &&
             pred->lexpr->kind == TemporalExpr::Kind::kOverlap) {
    a = pred->lexpr->left.get();
    b = pred->lexpr->right.get();
  } else {
    return false;
  }
  return (IsVarExpr(a, var) && IsNowExpr(b)) ||
         (IsVarExpr(b, var) && IsNowExpr(a));
}

}  // namespace

bool WantsCurrentOnly(int var, const Relation* rel,
                      const std::vector<TemporalConjunct>& when_conjuncts,
                      bool as_of_is_now) {
  const Schema& schema = rel->schema();
  DbType type = schema.db_type();
  if (HasValidTime(type) && schema.entity_kind() == EntityKind::kInterval) {
    for (const TemporalConjunct& c : when_conjuncts) {
      if (IsVarOverlapNow(c.pred, var)) return true;
    }
    return false;
  }
  // Rollback relations (transaction time only): rolling back to "now"
  // selects the versions whose transaction interval is still open.
  return HasTransactionTime(type) && as_of_is_now;
}

}  // namespace tdb
