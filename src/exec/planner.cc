#include "exec/planner.h"

#include <algorithm>

#include "exec/compiled_expr.h"
#include "exec/cost.h"
#include "exec/eval.h"
#include "obs/metrics.h"
#include "util/stringx.h"

namespace tdb {

void CollectExprVars(const Expr* expr, std::set<int>* out) {
  if (expr == nullptr) return;
  switch (expr->kind) {
    case Expr::Kind::kColumn:
      out->insert(expr->var_index);
      return;
    case Expr::Kind::kBinary:
      CollectExprVars(expr->left.get(), out);
      CollectExprVars(expr->right.get(), out);
      return;
    case Expr::Kind::kUnary:
      CollectExprVars(expr->left.get(), out);
      return;
    case Expr::Kind::kAggregate:
      CollectExprVars(expr->agg_arg.get(), out);
      CollectExprVars(expr->agg_by.get(), out);
      CollectExprVars(expr->agg_where.get(), out);
      return;
    default:
      return;
  }
}

void CollectTemporalExprVars(const TemporalExpr* expr, std::set<int>* out) {
  if (expr == nullptr) return;
  if (expr->kind == TemporalExpr::Kind::kVar) {
    out->insert(expr->var_index);
    return;
  }
  CollectTemporalExprVars(expr->left.get(), out);
  CollectTemporalExprVars(expr->right.get(), out);
}

void CollectTemporalPredVars(const TemporalPred* pred, std::set<int>* out) {
  if (pred == nullptr) return;
  CollectTemporalExprVars(pred->lexpr.get(), out);
  CollectTemporalExprVars(pred->rexpr.get(), out);
  CollectTemporalPredVars(pred->left.get(), out);
  CollectTemporalPredVars(pred->right.get(), out);
}

void SplitWhere(const Expr* where, std::vector<Conjunct>* out) {
  if (where == nullptr) return;
  if (where->kind == Expr::Kind::kBinary && where->op == ExprOp::kAnd) {
    SplitWhere(where->left.get(), out);
    SplitWhere(where->right.get(), out);
    return;
  }
  Conjunct c;
  c.expr = where;
  CollectExprVars(where, &c.vars);
  out->push_back(std::move(c));
}

void SplitWhen(const TemporalPred* when, std::vector<TemporalConjunct>* out) {
  if (when == nullptr) return;
  if (when->kind == TemporalPred::Kind::kAnd) {
    SplitWhen(when->left.get(), out);
    SplitWhen(when->right.get(), out);
    return;
  }
  TemporalConjunct c;
  c.pred = when;
  CollectTemporalPredVars(when, &c.vars);
  out->push_back(std::move(c));
}

namespace {

bool IsSubset(const std::set<int>& sub, const std::set<int>& super) {
  for (int v : sub) {
    if (super.count(v) == 0) return false;
  }
  return true;
}

/// If `conj` is `var.attr OP e` (either side, OP from `ops`) where e's
/// variables are all in `available`, returns the probe expression, the
/// attribute index, and the operator as seen with the column on the left.
const Expr* MatchCmpOnAttr(const Conjunct& conj, int var,
                           const std::set<int>& available,
                           std::initializer_list<ExprOp> ops, int* attr_index,
                           ExprOp* op_out) {
  const Expr* e = conj.expr;
  if (e->kind != Expr::Kind::kBinary) return nullptr;
  bool wanted = false;
  for (ExprOp op : ops) wanted = wanted || e->op == op;
  if (!wanted) return nullptr;
  for (int side = 0; side < 2; ++side) {
    const Expr* col = side == 0 ? e->left.get() : e->right.get();
    const Expr* other = side == 0 ? e->right.get() : e->left.get();
    if (col->kind != Expr::Kind::kColumn || col->var_index != var) continue;
    std::set<int> other_vars;
    CollectExprVars(other, &other_vars);
    if (other_vars.count(var) > 0) continue;
    if (!IsSubset(other_vars, available)) continue;
    *attr_index = col->attr_index;
    ExprOp op = e->op;
    if (side == 1) {  // mirror: `c < var.attr` is `var.attr > c`
      switch (e->op) {
        case ExprOp::kLt:
          op = ExprOp::kGt;
          break;
        case ExprOp::kLe:
          op = ExprOp::kGe;
          break;
        case ExprOp::kGt:
          op = ExprOp::kLt;
          break;
        case ExprOp::kGe:
          op = ExprOp::kLe;
          break;
        default:
          break;
      }
    }
    *op_out = op;
    return other;
  }
  return nullptr;
}

const Expr* MatchEqOnAttr(const Conjunct& conj, int var,
                          const std::set<int>& available, int* attr_index) {
  ExprOp op;
  return MatchCmpOnAttr(conj, var, available, {ExprOp::kEq}, attr_index, &op);
}

}  // namespace

AccessChoice ChooseAccess(int var, Relation* rel,
                          const std::vector<Conjunct>& conjuncts,
                          const std::set<int>& available) {
  AccessChoice choice;
  const Schema& schema = rel->schema();
  int key_idx = rel->meta().key_attr.empty()
                    ? -1
                    : schema.FindAttr(rel->meta().key_attr);
  const Expr* index_probe = nullptr;
  SecondaryIndex* index = nullptr;

  for (const Conjunct& conj : conjuncts) {
    if (conj.vars.count(var) == 0) continue;
    int attr_index = -1;
    const Expr* probe = MatchEqOnAttr(conj, var, available, &attr_index);
    if (probe == nullptr) continue;
    // The organization key wins outright.
    if (attr_index == key_idx && rel->primary()->org() != Organization::kHeap) {
      choice.kind = AccessChoice::Kind::kKeyed;
      choice.key_expr = probe;
      return choice;
    }
    if (index == nullptr) {
      SecondaryIndex* idx =
          rel->FindIndex(schema.attr(static_cast<size_t>(attr_index)).name);
      if (idx != nullptr) {
        index = idx;
        index_probe = probe;
      }
    }
  }
  if (index != nullptr) {
    choice.kind = AccessChoice::Kind::kIndexEq;
    choice.key_expr = index_probe;
    choice.index = index;
    return choice;
  }
  // Order-preserving organizations (ISAM, B-tree) also support key-range
  // access for inequality predicates on the key.
  if (key_idx >= 0 && (rel->primary()->org() == Organization::kIsam ||
                       rel->primary()->org() == Organization::kBtree)) {
    for (const Conjunct& conj : conjuncts) {
      if (conj.vars.count(var) == 0) continue;
      int attr_index = -1;
      ExprOp op;
      const Expr* bound = MatchCmpOnAttr(
          conj, var, available,
          {ExprOp::kLt, ExprOp::kLe, ExprOp::kGt, ExprOp::kGe}, &attr_index,
          &op);
      if (bound == nullptr || attr_index != key_idx) continue;
      if (op == ExprOp::kGt || op == ExprOp::kGe) {
        if (choice.lo_expr == nullptr) {
          choice.lo_expr = bound;
          choice.lo_inclusive = op == ExprOp::kGe;
        }
      } else {
        if (choice.hi_expr == nullptr) {
          choice.hi_expr = bound;
          choice.hi_inclusive = op == ExprOp::kLe;
        }
      }
    }
    if (choice.lo_expr != nullptr || choice.hi_expr != nullptr) {
      choice.kind = AccessChoice::Kind::kRange;
    }
  }
  return choice;
}

namespace {

bool IsNowExpr(const TemporalExpr* e) {
  return e != nullptr && e->kind == TemporalExpr::Kind::kNow;
}

bool IsVarExpr(const TemporalExpr* e, int var) {
  return e != nullptr && e->kind == TemporalExpr::Kind::kVar &&
         e->var_index == var;
}

/// Matches `var overlap "now"` in either operand order, in both the bare
/// (kNonEmpty over an overlap expression) and explicit kOverlap forms.
bool IsVarOverlapNow(const TemporalPred* pred, int var) {
  const TemporalExpr* a = nullptr;
  const TemporalExpr* b = nullptr;
  if (pred->kind == TemporalPred::Kind::kOverlap) {
    a = pred->lexpr.get();
    b = pred->rexpr.get();
  } else if (pred->kind == TemporalPred::Kind::kNonEmpty &&
             pred->lexpr->kind == TemporalExpr::Kind::kOverlap) {
    a = pred->lexpr->left.get();
    b = pred->lexpr->right.get();
  } else {
    return false;
  }
  return (IsVarExpr(a, var) && IsNowExpr(b)) ||
         (IsVarExpr(b, var) && IsNowExpr(a));
}

}  // namespace

bool WantsCurrentOnly(int var, const Relation* rel,
                      const std::vector<TemporalConjunct>& when_conjuncts,
                      bool as_of_is_now) {
  const Schema& schema = rel->schema();
  DbType type = schema.db_type();
  if (HasValidTime(type) && schema.entity_kind() == EntityKind::kInterval) {
    for (const TemporalConjunct& c : when_conjuncts) {
      if (IsVarOverlapNow(c.pred, var)) return true;
    }
    return false;
  }
  // Rollback relations (transaction time only): rolling back to "now"
  // selects the versions whose transaction interval is still open.
  return HasTransactionTime(type) && as_of_is_now;
}

namespace {

/// Variables still referenced once aggregates fold: a plain (ungrouped)
/// aggregate becomes a constant before iteration starts, so it keeps none
/// of its variables live; a `by` aggregate keeps its node (group lookup per
/// output row) and therefore all of them.
void CollectPostFoldVars(const Expr* expr, std::set<int>* out) {
  if (expr == nullptr) return;
  switch (expr->kind) {
    case Expr::Kind::kColumn:
      out->insert(expr->var_index);
      return;
    case Expr::Kind::kBinary:
      CollectPostFoldVars(expr->left.get(), out);
      CollectPostFoldVars(expr->right.get(), out);
      return;
    case Expr::Kind::kUnary:
      CollectPostFoldVars(expr->left.get(), out);
      return;
    case Expr::Kind::kAggregate:
      if (expr->agg_by != nullptr) {
        CollectExprVars(expr->agg_arg.get(), out);
        CollectExprVars(expr->agg_by.get(), out);
        CollectExprVars(expr->agg_where.get(), out);
      }
      return;
    default:
      return;
  }
}

/// Converts an AccessChoice into the corresponding plan leaf, rendering the
/// probe/bound expressions for display.
std::unique_ptr<AccessNode> NodeForChoice(const AccessChoice& choice, int var,
                                          const std::string& var_name,
                                          Relation* rel, bool current_only) {
  std::unique_ptr<AccessNode> node;
  switch (choice.kind) {
    case AccessChoice::Kind::kScan:
      node = std::make_unique<SeqScanNode>();
      break;
    case AccessChoice::Kind::kKeyed: {
      auto keyed = std::make_unique<KeyedLookupNode>();
      keyed->key_expr = choice.key_expr;
      keyed->key_text = choice.key_expr->ToString();
      if (CompiledExprEnabled()) {
        keyed->key_prog = CompiledProgram::CompileExpr(*choice.key_expr);
      }
      node = std::move(keyed);
      break;
    }
    case AccessChoice::Kind::kIndexEq: {
      auto ix = std::make_unique<IndexEqNode>();
      ix->key_expr = choice.key_expr;
      ix->key_text = choice.key_expr->ToString();
      if (CompiledExprEnabled()) {
        ix->key_prog = CompiledProgram::CompileExpr(*choice.key_expr);
      }
      ix->index = choice.index;
      ix->index_attr = choice.index->meta().attr;
      node = std::move(ix);
      break;
    }
    case AccessChoice::Kind::kRange: {
      auto range = std::make_unique<RangeScanNode>();
      range->lo_expr = choice.lo_expr;
      range->hi_expr = choice.hi_expr;
      range->lo_inclusive = choice.lo_inclusive;
      range->hi_inclusive = choice.hi_inclusive;
      if (choice.lo_expr != nullptr) range->lo_text = choice.lo_expr->ToString();
      if (choice.hi_expr != nullptr) range->hi_text = choice.hi_expr->ToString();
      if (CompiledExprEnabled()) {
        if (choice.lo_expr != nullptr) {
          range->lo_prog = CompiledProgram::CompileExpr(*choice.lo_expr);
        }
        if (choice.hi_expr != nullptr) {
          range->hi_prog = CompiledProgram::CompileExpr(*choice.hi_expr);
        }
      }
      node = std::move(range);
      break;
    }
  }
  node->var = var;
  node->var_name = var_name;
  node->rel_name = rel->meta().name;
  node->rel = rel;
  node->current_only = current_only;
  return node;
}

/// The residual conjuncts one nesting level applies.
struct LevelConjuncts {
  std::vector<const Conjunct*> where;
  std::vector<const TemporalConjunct*> when;
};

/// Assigns each top-level conjunct to the first level (in binding order)
/// at which all its variables are bound.  Variable-free conjuncts go to the
/// outermost level — evaluating them once is equivalent to the historical
/// executor's re-evaluation at every level.
std::vector<LevelConjuncts> AssignConjuncts(
    const std::vector<int>& order, const std::vector<Conjunct>& where,
    const std::vector<TemporalConjunct>& when) {
  std::vector<LevelConjuncts> out(order.size());
  std::set<int> bound;
  for (size_t level = 0; level < order.size(); ++level) {
    bound.insert(order[level]);
    for (const Conjunct& c : where) {
      if (c.vars.empty()) {
        if (level == 0) out[0].where.push_back(&c);
        continue;
      }
      if (c.vars.count(order[level]) == 0) continue;  // not newly covered
      if (!IsSubset(c.vars, bound)) continue;
      out[level].where.push_back(&c);
    }
    for (const TemporalConjunct& c : when) {
      if (c.vars.empty()) {
        if (level == 0) out[0].when.push_back(&c);
        continue;
      }
      if (c.vars.count(order[level]) == 0) continue;
      if (!IsSubset(c.vars, bound)) continue;
      out[level].when.push_back(&c);
    }
  }
  return out;
}

/// Populates `filter` with the given conjuncts: ASTs, rendered text, and —
/// all-or-nothing — compiled programs when compiled evaluation is enabled.
void FillFilterNode(FilterNode* filter, const LevelConjuncts& residual) {
  for (const Conjunct* c : residual.where) {
    filter->where.push_back(c->expr);
    filter->pred_text.push_back(c->expr->ToString());
  }
  for (const TemporalConjunct* c : residual.when) {
    filter->when.push_back(c->pred);
    filter->pred_text.push_back("when " + c->pred->ToString());
  }
  if (CompiledExprEnabled()) {
    // All-or-nothing: the executor takes the compiled path only when every
    // conjunct of the level lowered (aggregates in `where` are rejected by
    // the binder, so in practice this always succeeds).
    bool all = true;
    for (const Expr* e : filter->where) {
      auto prog = CompiledProgram::CompileExpr(*e);
      if (!prog.has_value()) {
        all = false;
        break;
      }
      filter->where_prog.push_back(std::move(*prog));
    }
    if (all) {
      for (const TemporalPred* p : filter->when) {
        filter->when_prog.push_back(CompiledProgram::CompilePred(*p));
      }
    } else {
      filter->where_prog.clear();
    }
  }
}

/// Wraps an access leaf in a FilterNode when its level has residual
/// conjuncts to apply.
std::unique_ptr<PlanNode> WrapLevel(std::unique_ptr<AccessNode> access,
                                    const LevelConjuncts& residual) {
  if (residual.where.empty() && residual.when.empty()) return access;
  auto filter = std::make_unique<FilterNode>();
  FillFilterNode(filter.get(), residual);
  filter->child = std::move(access);
  return filter;
}

/// If `conj` is an equality linking exactly variables `a` and `b` — one
/// operand referencing only `a`, the other only `b` — returns true and
/// outputs the two operand expressions by variable.
bool MatchCrossEq(const Conjunct& conj, int a, int b, const Expr** a_side,
                  const Expr** b_side) {
  const Expr* e = conj.expr;
  if (e->kind != Expr::Kind::kBinary || e->op != ExprOp::kEq) return false;
  std::set<int> lv;
  std::set<int> rv;
  CollectExprVars(e->left.get(), &lv);
  CollectExprVars(e->right.get(), &rv);
  if (lv == std::set<int>{a} && rv == std::set<int>{b}) {
    *a_side = e->left.get();
    *b_side = e->right.get();
    return true;
  }
  if (lv == std::set<int>{b} && rv == std::set<int>{a}) {
    *a_side = e->right.get();
    *b_side = e->left.get();
    return true;
  }
  return false;
}

/// If `conj` is `x overlap y` over two bare variables (explicit kOverlap or
/// the bare kNonEmpty form), returns true and outputs the variable pair.
bool MatchCrossOverlap(const TemporalConjunct& conj, int* x, int* y) {
  const TemporalExpr* a = nullptr;
  const TemporalExpr* b = nullptr;
  const TemporalPred* pred = conj.pred;
  if (pred->kind == TemporalPred::Kind::kOverlap) {
    a = pred->lexpr.get();
    b = pred->rexpr.get();
  } else if (pred->kind == TemporalPred::Kind::kNonEmpty &&
             pred->lexpr->kind == TemporalExpr::Kind::kOverlap) {
    a = pred->lexpr->left.get();
    b = pred->lexpr->right.get();
  } else {
    return false;
  }
  if (a == nullptr || b == nullptr) return false;
  if (a->kind != TemporalExpr::Kind::kVar ||
      b->kind != TemporalExpr::Kind::kVar) {
    return false;
  }
  if (a->var_index == b->var_index) return false;
  *x = a->var_index;
  *y = b->var_index;
  return true;
}

}  // namespace

Result<std::shared_ptr<PhysicalPlan>> BuildPlan(const RetrieveStmt& stmt,
                                                const BoundStatement& bound,
                                                const ExecEnv& env) {
  if (env.registry != nullptr && env.registry->metrics() != nullptr) {
    env.registry->metrics()->counter("plan.builds")->Increment();
  }
  auto plan = std::make_shared<PhysicalPlan>();
  Evaluator eval(env.now);

  std::vector<Relation*> rels;
  for (const BoundVar& bv : bound.vars) {
    TDB_ASSIGN_OR_RETURN(Relation * rel, env.GetRelation(bv.rel->name));
    rels.push_back(rel);
  }

  std::vector<Conjunct> where_conjuncts;
  std::vector<TemporalConjunct> when_conjuncts;
  SplitWhere(stmt.where.get(), &where_conjuncts);
  SplitWhen(stmt.when.get(), &when_conjuncts);

  // TQuel semantics: without an explicit `as of`, relations with
  // transaction time are viewed as of *now*.  The rollback point is a
  // constant of the statement, so it is evaluated at plan time.
  plan->as_of_at = env.now;
  std::string as_of_text;
  if (stmt.as_of.has_value()) {
    Binding empty;
    TDB_ASSIGN_OR_RETURN(Interval at, eval.EvalTemporal(*stmt.as_of->at, empty));
    plan->as_of_at = at.from;
    as_of_text = stmt.as_of->at->ToString();
    if (stmt.as_of->through != nullptr) {
      plan->has_through = true;
      TDB_ASSIGN_OR_RETURN(Interval through,
                           eval.EvalTemporal(*stmt.as_of->through, empty));
      plan->as_of_through = through.from;
      as_of_text += " through " + stmt.as_of->through->ToString();
    }
  }
  bool as_of_is_now = !plan->has_through && plan->as_of_at == env.now;

  std::vector<bool> current_only(rels.size(), false);
  for (size_t i = 0; i < rels.size(); ++i) {
    current_only[i] = WantsCurrentOnly(static_cast<int>(i), rels[i],
                                       when_conjuncts, as_of_is_now);
  }

  // Variables that stay live once plain aggregates fold to constants; a
  // query with none (e.g. `retrieve (n = count(p.id))`) emits one row.
  std::set<int> live;
  for (const TargetItem& t : stmt.targets) {
    CollectPostFoldVars(t.expr.get(), &live);
  }
  CollectExprVars(stmt.where.get(), &live);
  CollectTemporalPredVars(stmt.when.get(), &live);
  if (stmt.valid.has_value()) {
    CollectTemporalExprVars(stmt.valid->from.get(), &live);
    CollectTemporalExprVars(stmt.valid->to.get(), &live);
  }

  // Does the result carry a valid interval?
  bool valid_output = stmt.valid.has_value();
  if (!valid_output && !rels.empty()) {
    valid_output = true;
    for (Relation* rel : rels) {
      if (!HasValidTime(rel->schema().db_type())) valid_output = false;
    }
  }

  auto root = std::make_unique<ProjectNode>();
  root->unique = stmt.unique;
  root->into = stmt.into;
  root->valid_output = valid_output;
  root->as_of_text = as_of_text;
  for (const TargetItem& t : stmt.targets) {
    // The binder derives a name for bare column targets; showing it would
    // just repeat the attribute ("id = h.id"), so keep implicit names out.
    bool implicit = t.name.empty() || (t.expr->kind == Expr::Kind::kColumn &&
                                       t.name == t.expr->attr);
    root->target_text.push_back(
        implicit ? t.expr->ToString() : t.name + " = " + t.expr->ToString());
  }
  {
    std::vector<std::string> keys;
    for (const SortKey& key : stmt.sort_by) {
      keys.push_back(key.target + (key.descending ? " desc" : ""));
    }
    root->sort_text = Join(keys, ", ");
  }

  auto access_for = [&](int var, const std::set<int>& available) {
    AccessChoice choice = ChooseAccess(var, rels[static_cast<size_t>(var)],
                                       where_conjuncts, available);
    return NodeForChoice(choice, var, bound.vars[static_cast<size_t>(var)].name,
                         rels[static_cast<size_t>(var)],
                         current_only[static_cast<size_t>(var)]);
  };
  auto nested_plan = [&](const std::vector<int>& order) {
    std::vector<LevelConjuncts> residual =
        AssignConjuncts(order, where_conjuncts, when_conjuncts);
    auto nested = std::make_unique<NestedLoopNode>();
    std::set<int> outer;
    for (size_t level = 0; level < order.size(); ++level) {
      nested->levels.push_back(
          WrapLevel(access_for(order[level], outer), residual[level]));
      outer.insert(order[level]);
    }
    return nested;
  };
  auto identity_order = [&]() {
    std::vector<int> order;
    for (size_t i = 0; i < rels.size(); ++i) order.push_back(static_cast<int>(i));
    return order;
  };

  // The historical multi-variable plan: tuple substitution into a keyed
  // inner variable when one exists (the Ingres decomposition the paper's
  // two-variable queries measure), left-deep nested loops otherwise.
  auto paper_join = [&]() -> std::unique_ptr<PlanNode> {
    if (rels.size() == 2) {
      int inner = -1;
      AccessChoice inner_choice;
      for (int cand = 0; cand < 2; ++cand) {
        std::set<int> avail = {1 - cand};
        AccessChoice c = ChooseAccess(cand, rels[static_cast<size_t>(cand)],
                                      where_conjuncts, avail);
        if (c.kind == AccessChoice::Kind::kKeyed ||
            (c.kind == AccessChoice::Kind::kIndexEq && inner < 0)) {
          inner = cand;
          inner_choice = c;
          if (c.kind == AccessChoice::Kind::kKeyed) break;
        }
      }
      if (inner >= 0) {
        int outer = 1 - inner;
        std::vector<LevelConjuncts> residual =
            AssignConjuncts({outer, inner}, where_conjuncts, when_conjuncts);
        auto sub = std::make_unique<SubstitutionNode>();
        sub->outer = WrapLevel(access_for(outer, {}), residual[0]);
        sub->inner = WrapLevel(
            NodeForChoice(inner_choice, inner,
                          bound.vars[static_cast<size_t>(inner)].name,
                          rels[static_cast<size_t>(inner)],
                          current_only[static_cast<size_t>(inner)]),
            residual[1]);
        return sub;
      }
    }
    return nested_plan(identity_order());
  };

  // Cost-based join planning (join_method != kPaper): estimate modeled
  // disk time from catalog stats for every candidate method/order and pick
  // (or force) one.  See DESIGN.md §11 for the formulas.
  auto cost_join = [&]() -> Result<std::unique_ptr<PlanNode>> {
    std::vector<const RelationStats*> st(rels.size());
    for (size_t i = 0; i < rels.size(); ++i) {
      TDB_ASSIGN_OR_RETURN(st[i], GetOrComputeStats(env.catalog, rels[i]));
    }
    CostModel cm;

    auto pages_of = [&](int v) -> uint64_t {
      const RelationStats& s = *st[static_cast<size_t>(v)];
      uint64_t pages =
          s.primary_pages +
          (current_only[static_cast<size_t>(v)] ? 0 : s.history_pages);
      return pages == 0 ? 1 : pages;
    };
    // Input cardinality after this variable's single-variable restrictions.
    auto est_input = [&](int v) {
      const RelationStats& s = *st[static_cast<size_t>(v)];
      double sel = 1.0;
      std::set<int> self{v};
      for (const Conjunct& c : where_conjuncts) {
        if (c.vars != self) continue;
        int attr_index = -1;
        if (MatchEqOnAttr(c, v, {}, &attr_index) != nullptr) {
          sel *= EstimateEqSelectivity(
              s, rels[static_cast<size_t>(v)]->schema().attr(
                     static_cast<size_t>(attr_index)).name);
        } else {
          sel *= DefaultSelectivity();
        }
      }
      return static_cast<double>(s.rows) * sel;
    };
    std::vector<double> est_in(rels.size());
    for (size_t i = 0; i < rels.size(); ++i) {
      est_in[i] = est_input(static_cast<int>(i));
    }

    if (rels.size() > 2) {
      // Beyond two variables only the join *order* is optimized: levels run
      // smallest estimated input first, so inner reopen counts shrink.
      // Forced hash/merge fall back to the paper plan (they are two-way
      // operators here).
      if (env.join_method == JoinMethod::kHash ||
          env.join_method == JoinMethod::kMerge) {
        return paper_join();
      }
      std::vector<int> order = identity_order();
      std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return est_in[static_cast<size_t>(a)] < est_in[static_cast<size_t>(b)];
      });
      auto nested = nested_plan(order);
      for (size_t level = 0; level < nested->levels.size(); ++level) {
        nested->levels[level]->est_rows =
            est_in[static_cast<size_t>(order[level])];
      }
      return std::unique_ptr<PlanNode>(std::move(nested));
    }

    // Two variables: find the cross conjuncts the specialized joins consume.
    const Conjunct* equi = nullptr;
    const Expr* key0 = nullptr;  // equi operand referencing variable 0
    const Expr* key1 = nullptr;
    for (const Conjunct& c : where_conjuncts) {
      if (MatchCrossEq(c, 0, 1, &key0, &key1)) {
        equi = &c;
        break;
      }
    }
    const TemporalConjunct* overlap = nullptr;
    bool both_valid = HasValidTime(rels[0]->schema().db_type()) &&
                      HasValidTime(rels[1]->schema().db_type());
    if (both_valid) {
      for (const TemporalConjunct& c : when_conjuncts) {
        int x = -1;
        int y = -1;
        if (MatchCrossOverlap(c, &x, &y) &&
            ((x == 0 && y == 1) || (x == 1 && y == 0))) {
          overlap = &c;
          break;
        }
      }
    }

    auto distinct_for = [&](int v, const Expr* side) -> uint64_t {
      const RelationStats& s = *st[static_cast<size_t>(v)];
      uint64_t fallback = s.rows == 0 ? 1 : s.rows;
      if (side != nullptr && side->kind == Expr::Kind::kColumn) {
        return s.DistinctOr(rels[static_cast<size_t>(v)]->schema().attr(
                                static_cast<size_t>(side->attr_index)).name,
                            fallback);
      }
      return fallback;
    };
    double est_join;
    if (equi != nullptr) {
      est_join = EstimateEqJoinRows(est_in[0], est_in[1],
                                    distinct_for(0, key0),
                                    distinct_for(1, key1));
    } else if (overlap != nullptr) {
      est_join = EstimateOverlapJoinRows(est_in[0], est_in[1]);
    } else {
      est_join = est_in[0] * est_in[1] * DefaultSelectivity();
    }

    // Candidate costs (modeled ms).
    auto nlj_cost = [&](int o) {
      int i = 1 - o;
      AccessChoice c = ChooseAccess(i, rels[static_cast<size_t>(i)],
                                    where_conjuncts, {o});
      // A keyed/indexed reopen touches ~2 random pages (bucket or directory
      // plus data/history); a scan reopen re-reads the inner file.
      double per_row = c.kind == AccessChoice::Kind::kScan
                           ? cm.ScanMs(pages_of(i))
                           : cm.ProbeMs(2.0);
      return cm.ScanMs(pages_of(o)) + est_in[static_cast<size_t>(o)] * per_row;
    };
    auto sub_cost = [&](int o) {
      int i = 1 - o;
      AccessChoice c = ChooseAccess(i, rels[static_cast<size_t>(i)],
                                    where_conjuncts, {o});
      if (c.kind != AccessChoice::Kind::kKeyed &&
          c.kind != AccessChoice::Kind::kIndexEq) {
        return 1e18;  // substitution needs a keyed inner
      }
      // Scan + detach to the temp relation (write + re-read, sequential) +
      // one keyed probe per temp row.
      return cm.ScanMs(pages_of(o)) +
             2.0 * static_cast<double>(pages_of(o)) * cm.SeqMs() +
             est_in[static_cast<size_t>(o)] * cm.ProbeMs(2.0);
    };
    auto hash_cost = [&](int b) {
      int p = 1 - b;
      return cm.ScanMs(pages_of(b)) + cm.ScanMs(pages_of(p)) +
             cm.cpu_row_ms * (est_in[static_cast<size_t>(b)] +
                              est_in[static_cast<size_t>(p)] + est_join);
    };
    auto merge_cost = [&]() {
      return cm.ScanMs(pages_of(0)) + cm.ScanMs(pages_of(1)) +
             cm.cpu_row_ms * (est_in[0] + est_in[1] + est_join);
    };

    // Partition the conjuncts: per-side restrictions and variable-free
    // factors become side filters (variable-free ones run on the side that
    // executes once); the consumed cross conjunct is dropped; every other
    // cross conjunct becomes the join node's residual filter.
    auto partition = [&](int once_side, const void* consumed,
                         LevelConjuncts sides[2], LevelConjuncts* cross) {
      for (const Conjunct& c : where_conjuncts) {
        if (static_cast<const void*>(&c) == consumed) continue;
        if (c.vars.empty()) {
          sides[once_side].where.push_back(&c);
        } else if (c.vars == std::set<int>{0}) {
          sides[0].where.push_back(&c);
        } else if (c.vars == std::set<int>{1}) {
          sides[1].where.push_back(&c);
        } else {
          cross->where.push_back(&c);
        }
      }
      for (const TemporalConjunct& c : when_conjuncts) {
        if (static_cast<const void*>(&c) == consumed) continue;
        if (c.vars.empty()) {
          sides[once_side].when.push_back(&c);
        } else if (c.vars == std::set<int>{0}) {
          sides[0].when.push_back(&c);
        } else if (c.vars == std::set<int>{1}) {
          sides[1].when.push_back(&c);
        } else {
          cross->when.push_back(&c);
        }
      }
    };
    auto side_node = [&](int v, const LevelConjuncts& lc) {
      auto node = WrapLevel(access_for(v, {}), lc);
      node->est_rows = est_in[static_cast<size_t>(v)];
      return node;
    };

    auto build_hash = [&]() -> std::unique_ptr<PlanNode> {
      // Build on the smaller estimated input.
      int b = est_in[0] <= est_in[1] ? 0 : 1;
      int p = 1 - b;
      LevelConjuncts sides[2];
      LevelConjuncts cross;
      partition(b, equi, sides, &cross);
      auto node = std::make_unique<HashJoinNode>();
      node->build = side_node(b, sides[b]);
      node->probe = side_node(p, sides[p]);
      node->build_key = b == 0 ? key0 : key1;
      node->probe_key = p == 0 ? key0 : key1;
      node->key_text =
          node->build_key->ToString() + " = " + node->probe_key->ToString();
      if (CompiledExprEnabled()) {
        node->build_prog = CompiledProgram::CompileExpr(*node->build_key);
        node->probe_prog = CompiledProgram::CompileExpr(*node->probe_key);
      }
      FillFilterNode(&node->residual, cross);
      node->est_rows = est_join;
      return node;
    };
    auto build_merge = [&]() -> std::unique_ptr<PlanNode> {
      LevelConjuncts sides[2];
      LevelConjuncts cross;
      partition(0, overlap, sides, &cross);
      auto node = std::make_unique<IntervalJoinNode>();
      node->left = side_node(0, sides[0]);
      node->right = side_node(1, sides[1]);
      node->pred_text = overlap->pred->ToString();
      FillFilterNode(&node->residual, cross);
      node->est_rows = est_join;
      return node;
    };
    auto build_nlj = [&](int o) -> std::unique_ptr<PlanNode> {
      auto nested = nested_plan({o, 1 - o});
      nested->levels[0]->est_rows = est_in[static_cast<size_t>(o)];
      nested->levels[1]->est_rows = est_join;
      nested->est_rows = est_join;
      return nested;
    };

    switch (env.join_method) {
      case JoinMethod::kNestedLoop:
        return build_nlj(nlj_cost(0) <= nlj_cost(1) ? 0 : 1);
      case JoinMethod::kHash:
        if (equi == nullptr) return paper_join();
        return build_hash();
      case JoinMethod::kMerge:
        if (overlap == nullptr) return paper_join();
        return build_merge();
      default:
        break;
    }

    // kAuto: cheapest of every applicable candidate.
    double best = std::min(
        {nlj_cost(0), nlj_cost(1), std::min(sub_cost(0), sub_cost(1))});
    enum class Pick { kSub, kNlj, kHash, kMerge };
    Pick pick = std::min(sub_cost(0), sub_cost(1)) <= std::min(nlj_cost(0),
                                                               nlj_cost(1))
                    ? Pick::kSub
                    : Pick::kNlj;
    if (equi != nullptr && hash_cost(est_in[0] <= est_in[1] ? 0 : 1) < best) {
      best = hash_cost(est_in[0] <= est_in[1] ? 0 : 1);
      pick = Pick::kHash;
    }
    if (overlap != nullptr && merge_cost() < best) {
      best = merge_cost();
      pick = Pick::kMerge;
    }
    switch (pick) {
      case Pick::kHash:
        return build_hash();
      case Pick::kMerge:
        return build_merge();
      case Pick::kNlj:
        return build_nlj(nlj_cost(0) <= nlj_cost(1) ? 0 : 1);
      case Pick::kSub: {
        auto node = paper_join();
        node->est_rows = est_join;
        return node;
      }
    }
    return paper_join();
  };

  if (rels.empty() || live.empty()) {
    // Constant plan: root without input.
  } else if (rels.size() == 1) {
    std::vector<LevelConjuncts> residual =
        AssignConjuncts({0}, where_conjuncts, when_conjuncts);
    root->child = WrapLevel(access_for(0, {}), residual[0]);
  } else if (env.join_method != JoinMethod::kPaper) {
    TDB_ASSIGN_OR_RETURN(root->child, cost_join());
  } else {
    root->child = paper_join();
  }

  plan->root = std::move(root);
  return plan;
}

namespace {

Result<std::unique_ptr<PlanNode>> CloneNode(const PlanNode* node,
                                            const ExecEnv& env);

/// Copies the shared AccessNode fields and re-resolves the relation handle
/// against the executing environment.
Status FillAccess(const AccessNode& src, AccessNode* dst, const ExecEnv& env) {
  dst->var = src.var;
  dst->var_name = src.var_name;
  dst->rel_name = src.rel_name;
  dst->current_only = src.current_only;
  dst->est_rows = src.est_rows;
  TDB_ASSIGN_OR_RETURN(dst->rel, env.GetRelation(src.rel_name));
  return Status::OK();
}

/// Copies a FilterNode's conjuncts and programs into `dst`; the child is
/// cloned only when present (join residual filters keep it null).
Status CloneFilterInto(const FilterNode& src, FilterNode* dst,
                       const ExecEnv& env) {
  dst->where = src.where;
  dst->when = src.when;
  dst->where_prog = src.where_prog;
  dst->when_prog = src.when_prog;
  dst->pred_text = src.pred_text;
  dst->est_rows = src.est_rows;
  if (src.child != nullptr) {
    TDB_ASSIGN_OR_RETURN(dst->child, CloneNode(src.child.get(), env));
  }
  return Status::OK();
}

Result<std::unique_ptr<PlanNode>> CloneNode(const PlanNode* node,
                                            const ExecEnv& env) {
  switch (node->kind) {
    case PlanNode::Kind::kSeqScan: {
      auto out = std::make_unique<SeqScanNode>();
      TDB_RETURN_NOT_OK(
          FillAccess(*static_cast<const SeqScanNode*>(node), out.get(), env));
      return std::unique_ptr<PlanNode>(std::move(out));
    }
    case PlanNode::Kind::kKeyedLookup: {
      const auto& src = *static_cast<const KeyedLookupNode*>(node);
      auto out = std::make_unique<KeyedLookupNode>();
      TDB_RETURN_NOT_OK(FillAccess(src, out.get(), env));
      out->key_expr = src.key_expr;
      out->key_prog = src.key_prog;
      out->key_text = src.key_text;
      return std::unique_ptr<PlanNode>(std::move(out));
    }
    case PlanNode::Kind::kIndexEq: {
      const auto& src = *static_cast<const IndexEqNode*>(node);
      auto out = std::make_unique<IndexEqNode>();
      TDB_RETURN_NOT_OK(FillAccess(src, out.get(), env));
      out->key_expr = src.key_expr;
      out->key_prog = src.key_prog;
      out->key_text = src.key_text;
      out->index_attr = src.index_attr;
      out->index = out->rel->FindIndex(src.index_attr);
      if (out->index == nullptr) {
        return Status::NotFound("cached plan references a dropped index on " +
                                src.rel_name + "." + src.index_attr);
      }
      return std::unique_ptr<PlanNode>(std::move(out));
    }
    case PlanNode::Kind::kRangeScan: {
      const auto& src = *static_cast<const RangeScanNode*>(node);
      auto out = std::make_unique<RangeScanNode>();
      TDB_RETURN_NOT_OK(FillAccess(src, out.get(), env));
      out->lo_expr = src.lo_expr;
      out->hi_expr = src.hi_expr;
      out->lo_prog = src.lo_prog;
      out->hi_prog = src.hi_prog;
      out->lo_inclusive = src.lo_inclusive;
      out->hi_inclusive = src.hi_inclusive;
      out->lo_text = src.lo_text;
      out->hi_text = src.hi_text;
      return std::unique_ptr<PlanNode>(std::move(out));
    }
    case PlanNode::Kind::kFilter: {
      auto out = std::make_unique<FilterNode>();
      TDB_RETURN_NOT_OK(CloneFilterInto(*static_cast<const FilterNode*>(node),
                                        out.get(), env));
      return std::unique_ptr<PlanNode>(std::move(out));
    }
    case PlanNode::Kind::kNestedLoop: {
      const auto& src = *static_cast<const NestedLoopNode*>(node);
      auto out = std::make_unique<NestedLoopNode>();
      out->est_rows = src.est_rows;
      for (const auto& level : src.levels) {
        TDB_ASSIGN_OR_RETURN(auto cloned, CloneNode(level.get(), env));
        out->levels.push_back(std::move(cloned));
      }
      return std::unique_ptr<PlanNode>(std::move(out));
    }
    case PlanNode::Kind::kSubstitution: {
      const auto& src = *static_cast<const SubstitutionNode*>(node);
      auto out = std::make_unique<SubstitutionNode>();
      out->est_rows = src.est_rows;
      TDB_ASSIGN_OR_RETURN(out->outer, CloneNode(src.outer.get(), env));
      TDB_ASSIGN_OR_RETURN(out->inner, CloneNode(src.inner.get(), env));
      return std::unique_ptr<PlanNode>(std::move(out));
    }
    case PlanNode::Kind::kHashJoin: {
      const auto& src = *static_cast<const HashJoinNode*>(node);
      auto out = std::make_unique<HashJoinNode>();
      out->est_rows = src.est_rows;
      TDB_ASSIGN_OR_RETURN(out->build, CloneNode(src.build.get(), env));
      TDB_ASSIGN_OR_RETURN(out->probe, CloneNode(src.probe.get(), env));
      out->build_key = src.build_key;
      out->probe_key = src.probe_key;
      out->build_prog = src.build_prog;
      out->probe_prog = src.probe_prog;
      out->key_text = src.key_text;
      TDB_RETURN_NOT_OK(CloneFilterInto(src.residual, &out->residual, env));
      return std::unique_ptr<PlanNode>(std::move(out));
    }
    case PlanNode::Kind::kIntervalJoin: {
      const auto& src = *static_cast<const IntervalJoinNode*>(node);
      auto out = std::make_unique<IntervalJoinNode>();
      out->est_rows = src.est_rows;
      TDB_ASSIGN_OR_RETURN(out->left, CloneNode(src.left.get(), env));
      TDB_ASSIGN_OR_RETURN(out->right, CloneNode(src.right.get(), env));
      out->pred_text = src.pred_text;
      TDB_RETURN_NOT_OK(CloneFilterInto(src.residual, &out->residual, env));
      return std::unique_ptr<PlanNode>(std::move(out));
    }
    case PlanNode::Kind::kProject:
      return Status::Internal("project nodes are cloned only at the root");
  }
  return Status::Internal("unreachable plan node kind");
}

}  // namespace

Result<std::shared_ptr<PhysicalPlan>> ClonePlanForExec(const PhysicalPlan& tmpl,
                                                       const ExecEnv& env) {
  auto plan = std::make_shared<PhysicalPlan>();
  plan->from_plan_cache = true;
  // Cacheable statements carry no `as of` clause, so the rollback point is
  // always the executing statement's "now".
  plan->as_of_at = env.now;
  plan->has_through = false;

  const ProjectNode& src = *tmpl.root;
  auto root = std::make_unique<ProjectNode>();
  root->target_text = src.target_text;
  root->unique = src.unique;
  root->valid_output = src.valid_output;
  root->into = src.into;
  root->as_of_text = src.as_of_text;
  root->sort_text = src.sort_text;
  root->est_rows = src.est_rows;
  if (src.child != nullptr) {
    TDB_ASSIGN_OR_RETURN(root->child, CloneNode(src.child.get(), env));
  }
  plan->root = std::move(root);
  return plan;
}

}  // namespace tdb
