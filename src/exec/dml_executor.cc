#include "exec/dml_executor.h"

#include "exec/version_source.h"
#include "util/stringx.h"

namespace tdb {

namespace {

/// Overwrites a time attribute inside an encoded record.
void StampTime(const Schema& schema, int attr_index, TimePoint tp,
               std::vector<uint8_t>* rec) {
  EncodeAttrInPlace(schema, static_cast<size_t>(attr_index), Value::Time(tp),
                    rec->data());
}

Value DefaultFor(const Attribute& a) {
  switch (a.type) {
    case TypeId::kChar:
      return Value::Char("");
    case TypeId::kFloat8:
      return Value::Float8(0);
    case TypeId::kTime:
      return Value::Time(TimePoint(0));
    default:
      return Value::Int4(0);
  }
}

}  // namespace

Result<Interval> DmlExecutor::EffectiveValid(
    const std::optional<ValidClause>& valid, const Binding& binding) {
  TimePoint from = env_.now;
  TimePoint to = TimePoint::Forever();
  if (valid.has_value()) {
    TDB_ASSIGN_OR_RETURN(Interval f, eval_.EvalTemporal(*valid->from, binding));
    from = f.from;
    if (valid->at) {
      to = from;
    } else if (valid->to != nullptr) {
      TDB_ASSIGN_OR_RETURN(Interval t, eval_.EvalTemporal(*valid->to, binding));
      to = t.from;
    }
  }
  return Interval(from, to);
}

Result<Row> DmlExecutor::ApplyTargets(const Schema& schema, const Row& base,
                                      const std::vector<TargetItem>& targets,
                                      const Binding& binding) {
  Row row = base;
  for (const TargetItem& item : targets) {
    int idx = schema.FindAttr(item.name);
    if (idx < 0) return Status::Internal("target attr vanished");
    TDB_ASSIGN_OR_RETURN(Value v, eval_.Eval(*item.expr, binding));
    row[static_cast<size_t>(idx)] = std::move(v);
  }
  return row;
}

Result<std::vector<DmlExecutor::Victim>> DmlExecutor::CollectVictims(
    Relation* rel, const Expr* where, const TemporalPred* when,
    const std::vector<BoundVar>& vars) {
  const Schema& schema = rel->schema();
  std::vector<Conjunct> conjuncts;
  SplitWhere(where, &conjuncts);

  AccessChoice choice = ChooseAccess(0, rel, conjuncts, {});
  AccessSpec spec;
  spec.current_only = rel->two_level();  // current versions live in primary
  Binding empty(vars.size(), nullptr);
  switch (choice.kind) {
    case AccessChoice::Kind::kScan:
      spec.kind = AccessSpec::Kind::kScan;
      break;
    case AccessChoice::Kind::kRange: {
      spec.kind = AccessSpec::Kind::kRange;
      spec.lo_inclusive = choice.lo_inclusive;
      spec.hi_inclusive = choice.hi_inclusive;
      if (choice.lo_expr != nullptr) {
        TDB_ASSIGN_OR_RETURN(Value lo, eval_.Eval(*choice.lo_expr, empty));
        spec.lo = std::move(lo);
      }
      if (choice.hi_expr != nullptr) {
        TDB_ASSIGN_OR_RETURN(Value hi, eval_.Eval(*choice.hi_expr, empty));
        spec.hi = std::move(hi);
      }
      break;
    }
    case AccessChoice::Kind::kKeyed:
    case AccessChoice::Kind::kIndexEq: {
      TDB_ASSIGN_OR_RETURN(spec.key, eval_.Eval(*choice.key_expr, empty));
      spec.kind = choice.kind == AccessChoice::Kind::kKeyed
                      ? AccessSpec::Kind::kKeyed
                      : AccessSpec::Kind::kIndexEq;
      spec.index = choice.index;
      break;
    }
  }

  TDB_ASSIGN_OR_RETURN(auto src, VersionSource::Create(rel, std::move(spec)));
  std::vector<Victim> victims;
  Binding binding(vars.size(), nullptr);
  while (true) {
    TDB_ASSIGN_OR_RETURN(bool have, src->Next());
    if (!have) break;
    if (!src->ref().IsCurrent(schema)) continue;
    binding[0] = &src->ref();
    if (where != nullptr) {
      TDB_ASSIGN_OR_RETURN(bool ok, eval_.EvalBool(*where, binding));
      if (!ok) continue;
    }
    if (when != nullptr) {
      TDB_ASSIGN_OR_RETURN(bool ok, eval_.EvalPred(*when, binding));
      if (!ok) continue;
    }
    Victim v;
    v.tid = src->ref().tid;
    TDB_ASSIGN_OR_RETURN(v.rec, EncodeRecord(schema, src->ref().FullRow()));
    victims.push_back(std::move(v));
  }
  binding[0] = nullptr;
  return victims;
}

Result<DmlExecutor::Victim> DmlExecutor::Relocate(Relation* rel,
                                                  const Victim& victim) {
  // B-tree splits relocate records, so a Tid captured during victim
  // collection may be stale by the time this victim is mutated (an earlier
  // victim's replace inserted a version and split a leaf).  Re-find the
  // exact record by key + byte equality.
  if (rel->primary()->org() != Organization::kBtree) return victim;
  {
    auto current = rel->FetchPrimary(victim.tid);
    if (current.ok() && *current == victim.rec) return victim;  // still there
  }
  Value key = rel->KeyOf(victim.rec.data());
  TDB_ASSIGN_OR_RETURN(auto cur, rel->primary()->ScanKey(key));
  while (true) {
    TDB_ASSIGN_OR_RETURN(bool have, cur->Next());
    if (!have) break;
    if (cur->record() == victim.rec) {
      Victim moved = victim;
      moved.tid = cur->tid();
      return moved;
    }
  }
  return Status::Internal("btree victim vanished during mutation");
}

Result<ExecResult> DmlExecutor::Append(AppendStmt* stmt,
                                       const BoundStatement& bound) {
  TDB_ASSIGN_OR_RETURN(Relation * rel, env_.GetRelation(stmt->relation));
  const Schema& schema = rel->schema();

  auto insert_one = [&](const Binding& binding) -> Status {
    Row row(schema.num_attrs());
    for (size_t i = 0; i < schema.num_attrs(); ++i) {
      row[i] = DefaultFor(schema.attr(i));
    }
    // Implicit time attributes.
    TDB_ASSIGN_OR_RETURN(Interval valid, EffectiveValid(stmt->valid, binding));
    if (schema.valid_from_index() >= 0) {
      row[static_cast<size_t>(schema.valid_from_index())] =
          Value::Time(valid.from);
      row[static_cast<size_t>(schema.valid_to_index())] =
          Value::Time(schema.entity_kind() == EntityKind::kEvent ? valid.from
                                                                 : valid.to);
    }
    if (schema.tx_start_index() >= 0) {
      row[static_cast<size_t>(schema.tx_start_index())] =
          Value::Time(env_.now);
      row[static_cast<size_t>(schema.tx_stop_index())] =
          Value::Time(TimePoint::Forever());
    }
    // User attributes from the target list.
    for (const TargetItem& item : stmt->targets) {
      int idx = schema.FindAttr(item.name);
      TDB_ASSIGN_OR_RETURN(Value v, eval_.Eval(*item.expr, binding));
      row[static_cast<size_t>(idx)] = std::move(v);
    }
    TDB_ASSIGN_OR_RETURN(auto rec, EncodeRecord(schema, row));
    Tid tid;
    TDB_RETURN_NOT_OK(rel->InsertPrimary(rec, &tid));
    VersionRef ref;
    ref.SetRow(std::move(row));
    RefreshIntervals(schema, &ref);
    if (ref.IsCurrent(schema)) {
      return rel->IndexInsertCurrent(rec, tid, /*in_history_store=*/false);
    }
    // A retro/post-active append (closed valid interval) is history data.
    return rel->IndexInsertHistory(rec, tid, /*in_history_store=*/false);
  };

  ExecResult out;
  if (bound.vars.empty()) {
    Binding none;
    TDB_RETURN_NOT_OK(insert_one(none));
    out.affected = 1;
  } else if (bound.vars.size() == 1) {
    // append ... (a = t.x, ...) where ... : one insert per qualifying tuple.
    TDB_ASSIGN_OR_RETURN(Relation * src_rel,
                         env_.GetRelation(bound.vars[0].rel->name));
    TDB_ASSIGN_OR_RETURN(
        auto victims,
        CollectVictims(src_rel, stmt->where.get(), stmt->when.get(),
                       bound.vars));
    Binding binding(1, nullptr);
    for (const Victim& v : victims) {
      TDB_ASSIGN_OR_RETURN(
          VersionRef ref,
          DecodeVersion(src_rel->schema(), v.rec.data(), v.rec.size(), v.tid,
                        false));
      binding[0] = &ref;
      TDB_RETURN_NOT_OK(insert_one(binding));
      ++out.affected;
    }
  } else {
    return Status::NotSupported(
        "append from more than one tuple variable is not supported");
  }
  TDB_RETURN_NOT_OK(rel->primary()->pager()->Flush());
  env_.catalog->InvalidateStats(stmt->relation);
  out.message = StrPrintf("appended %lld tuples to %s",
                          static_cast<long long>(out.affected),
                          stmt->relation.c_str());
  return out;
}

Status DmlExecutor::RetireVersion(Relation* rel, const Victim& victim,
                                  const Interval& valid_override,
                                  bool has_valid) {
  const Schema& schema = rel->schema();
  DbType type = schema.db_type();
  bool event = schema.entity_kind() == EntityKind::kEvent;
  TimePoint now = env_.now;
  TimePoint t_eff = has_valid ? valid_override.from : now;

  switch (type) {
    case DbType::kStatic:
      TDB_RETURN_NOT_OK(rel->ErasePrimary(victim.tid));
      return rel->IndexRemoveCurrent(victim.rec, victim.tid);

    case DbType::kRollback: {
      std::vector<uint8_t> stamped = victim.rec;
      StampTime(schema, schema.tx_stop_index(), now, &stamped);
      if (rel->two_level()) {
        Tid htid;
        TDB_RETURN_NOT_OK(rel->AppendHistory(stamped, &htid));
        TDB_RETURN_NOT_OK(rel->ErasePrimary(victim.tid));
        return rel->IndexMoveToHistory(victim.rec, victim.tid, htid, true);
      }
      TDB_RETURN_NOT_OK(rel->OverwritePrimary(victim.tid, stamped));
      return rel->IndexMoveToHistory(victim.rec, victim.tid, victim.tid,
                                     false);
    }

    case DbType::kHistorical: {
      if (event) {
        // An event cannot "stop being valid"; deleting one (error
        // correction without transaction time) erases it.
        TDB_RETURN_NOT_OK(rel->ErasePrimary(victim.tid));
        return rel->IndexRemoveCurrent(victim.rec, victim.tid);
      }
      std::vector<uint8_t> stamped = victim.rec;
      StampTime(schema, schema.valid_to_index(), t_eff, &stamped);
      if (rel->two_level()) {
        Tid htid;
        TDB_RETURN_NOT_OK(rel->AppendHistory(stamped, &htid));
        TDB_RETURN_NOT_OK(rel->ErasePrimary(victim.tid));
        return rel->IndexMoveToHistory(victim.rec, victim.tid, htid, true);
      }
      TDB_RETURN_NOT_OK(rel->OverwritePrimary(victim.tid, stamped));
      return rel->IndexMoveToHistory(victim.rec, victim.tid, victim.tid,
                                     false);
    }

    case DbType::kTemporal: {
      // Close the old version in transaction time...
      std::vector<uint8_t> stamped = victim.rec;
      StampTime(schema, schema.tx_stop_index(), now, &stamped);
      // ...and (interval relations) record the corrected version stating
      // the tuple was valid only until t_eff.
      std::vector<uint8_t> corrected = victim.rec;
      bool with_correction = !event;
      if (with_correction) {
        StampTime(schema, schema.valid_to_index(), t_eff, &corrected);
        StampTime(schema, schema.tx_start_index(), now, &corrected);
        StampTime(schema, schema.tx_stop_index(), TimePoint::Forever(),
                  &corrected);
      }
      if (rel->two_level()) {
        Tid htid1;
        TDB_RETURN_NOT_OK(rel->AppendHistory(stamped, &htid1));
        Tid htid2;
        if (with_correction) {
          TDB_RETURN_NOT_OK(rel->AppendHistory(corrected, &htid2));
        }
        TDB_RETURN_NOT_OK(rel->ErasePrimary(victim.tid));
        TDB_RETURN_NOT_OK(
            rel->IndexMoveToHistory(victim.rec, victim.tid, htid1, true));
        if (with_correction) {
          TDB_RETURN_NOT_OK(rel->IndexInsertHistory(corrected, htid2, true));
        }
        return Status::OK();
      }
      TDB_RETURN_NOT_OK(rel->OverwritePrimary(victim.tid, stamped));
      TDB_RETURN_NOT_OK(rel->IndexMoveToHistory(victim.rec, victim.tid,
                                                victim.tid, false));
      if (with_correction) {
        Tid ctid;
        TDB_RETURN_NOT_OK(rel->InsertPrimary(corrected, &ctid));
        TDB_RETURN_NOT_OK(rel->IndexInsertHistory(corrected, ctid, false));
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable db type");
}

Result<ExecResult> DmlExecutor::Delete(DeleteStmt* stmt,
                                       const BoundStatement& bound) {
  Relation* rel;
  TDB_ASSIGN_OR_RETURN(rel, env_.GetRelation(bound.vars[0].rel->name));
  TDB_ASSIGN_OR_RETURN(
      auto victims,
      CollectVictims(rel, stmt->where.get(), stmt->when.get(), bound.vars));

  for (const Victim& stale : victims) {
    TDB_ASSIGN_OR_RETURN(Victim v, Relocate(rel, stale));
    Binding binding(bound.vars.size(), nullptr);
    TDB_ASSIGN_OR_RETURN(
        VersionRef ref,
        DecodeVersion(rel->schema(), v.rec.data(), v.rec.size(), v.tid,
                      false));
    binding[0] = &ref;
    TDB_ASSIGN_OR_RETURN(Interval valid, EffectiveValid(stmt->valid, binding));
    TDB_RETURN_NOT_OK(
        RetireVersion(rel, v, valid, stmt->valid.has_value()));
  }
  TDB_RETURN_NOT_OK(rel->primary()->pager()->Flush());
  if (rel->history() != nullptr) {
    TDB_RETURN_NOT_OK(rel->history()->pager()->Flush());
  }
  env_.catalog->InvalidateStats(bound.vars[0].rel->name);
  ExecResult out;
  out.affected = static_cast<int64_t>(victims.size());
  out.message = StrPrintf("deleted %lld tuples",
                          static_cast<long long>(out.affected));
  return out;
}

Result<ExecResult> DmlExecutor::Replace(ReplaceStmt* stmt,
                                        const BoundStatement& bound) {
  Relation* rel;
  TDB_ASSIGN_OR_RETURN(rel, env_.GetRelation(bound.vars[0].rel->name));
  const Schema& schema = rel->schema();
  TDB_ASSIGN_OR_RETURN(
      auto victims,
      CollectVictims(rel, stmt->where.get(), stmt->when.get(), bound.vars));

  for (const Victim& stale : victims) {
    TDB_ASSIGN_OR_RETURN(Victim v, Relocate(rel, stale));
    Binding binding(bound.vars.size(), nullptr);
    TDB_ASSIGN_OR_RETURN(
        VersionRef ref,
        DecodeVersion(schema, v.rec.data(), v.rec.size(), v.tid, false));
    binding[0] = &ref;
    TDB_ASSIGN_OR_RETURN(Interval valid, EffectiveValid(stmt->valid, binding));
    TDB_ASSIGN_OR_RETURN(Row new_row,
                         ApplyTargets(schema, ref.FullRow(), stmt->targets,
                                      binding));

    if (schema.db_type() == DbType::kStatic) {
      TDB_ASSIGN_OR_RETURN(auto new_rec, EncodeRecord(schema, new_row));
      bool key_changed =
          rel->layout().has_key() &&
          !rel->KeyOf(new_rec.data()).Equals(rel->KeyOf(v.rec.data()));
      TDB_RETURN_NOT_OK(rel->IndexRemoveCurrent(v.rec, v.tid));
      if (key_changed && rel->primary()->org() != Organization::kHeap) {
        TDB_RETURN_NOT_OK(rel->ErasePrimary(v.tid));
        Tid tid;
        TDB_RETURN_NOT_OK(rel->InsertPrimary(new_rec, &tid));
        TDB_RETURN_NOT_OK(rel->IndexInsertCurrent(new_rec, tid, false));
      } else {
        TDB_RETURN_NOT_OK(rel->OverwritePrimary(v.tid, new_rec));
        TDB_RETURN_NOT_OK(rel->IndexInsertCurrent(new_rec, v.tid, false));
      }
      continue;
    }

    // Versioned relations: retire the old version, then insert the new one.
    TDB_RETURN_NOT_OK(RetireVersion(rel, v, valid, stmt->valid.has_value()));

    // New version timestamps.
    if (schema.valid_from_index() >= 0) {
      new_row[static_cast<size_t>(schema.valid_from_index())] =
          Value::Time(valid.from);
      new_row[static_cast<size_t>(schema.valid_to_index())] = Value::Time(
          schema.entity_kind() == EntityKind::kEvent ? valid.from : valid.to);
    }
    if (schema.tx_start_index() >= 0) {
      new_row[static_cast<size_t>(schema.tx_start_index())] =
          Value::Time(env_.now);
      new_row[static_cast<size_t>(schema.tx_stop_index())] =
          Value::Time(TimePoint::Forever());
    }
    TDB_ASSIGN_OR_RETURN(auto new_rec, EncodeRecord(schema, new_row));
    Tid tid;
    TDB_RETURN_NOT_OK(rel->InsertPrimary(new_rec, &tid));
    TDB_RETURN_NOT_OK(rel->IndexInsertCurrent(new_rec, tid, false));
  }
  TDB_RETURN_NOT_OK(rel->primary()->pager()->Flush());
  if (rel->history() != nullptr) {
    TDB_RETURN_NOT_OK(rel->history()->pager()->Flush());
  }
  env_.catalog->InvalidateStats(bound.vars[0].rel->name);
  ExecResult out;
  out.affected = static_cast<int64_t>(victims.size());
  out.message = StrPrintf("replaced %lld tuples",
                          static_cast<long long>(out.affected));
  return out;
}

}  // namespace tdb
