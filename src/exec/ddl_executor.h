#ifndef CHRONOQUEL_EXEC_DDL_EXECUTOR_H_
#define CHRONOQUEL_EXEC_DDL_EXECUTOR_H_

#include <vector>

#include "core/result_set.h"
#include "exec/exec_env.h"
#include "tquel/ast.h"

namespace tdb {

/// Executes the schema / storage statements: create, destroy, modify
/// (reorganize into heap / hash / ISAM, optionally as a two-level store),
/// index (build a secondary index), and copy (batch load/dump with temporal
/// attributes in human-readable form).
class DdlExecutor {
 public:
  explicit DdlExecutor(const ExecEnv& env) : env_(env) {}

  Result<ExecResult> Create(const CreateStmt& stmt);
  Result<ExecResult> Destroy(const DestroyStmt& stmt);
  Result<ExecResult> Modify(const ModifyStmt& stmt);
  Result<ExecResult> Vacuum(const VacuumStmt& stmt);
  Result<ExecResult> Index(const IndexStmt& stmt);
  Result<ExecResult> Copy(const CopyStmt& stmt);
  Result<ExecResult> Help(const HelpStmt& stmt);

 private:
  /// Deletes every physical file belonging to `meta` (data, history,
  /// anchors, index files).
  void DeleteFiles(const RelationMeta& meta, bool indexes_too);

  /// Re-derives every secondary index of `name` from its stored versions.
  Status RebuildIndexes(const std::string& name);

  ExecEnv env_;
};

/// Parses a surface type name ("i1", "i2", "i4", "f8", "c96") into an
/// attribute type and width.
Result<Attribute> ParseAttrType(const std::string& name,
                                const std::string& type_name);

}  // namespace tdb

#endif  // CHRONOQUEL_EXEC_DDL_EXECUTOR_H_
