#include "exec/version_source.h"

#include <algorithm>

namespace tdb {

std::vector<ScanChunk> CutScanChunks(Relation* rel, bool current_only,
                                     uint32_t chunk_pages) {
  if (chunk_pages == 0) chunk_pages = 1;
  std::vector<ScanChunk> chunks;
  auto add_store = [&](StorageFile* file, bool in_history) {
    const uint32_t pages = file->page_count();
    if (pages == 0) return;
    if (!file->LinearScan()) {
      ScanChunk c;
      c.file = file;
      c.in_history = in_history;
      c.use_cursor = true;
      chunks.push_back(c);
      return;
    }
    for (uint32_t begin = 0; begin < pages; begin += chunk_pages) {
      ScanChunk c;
      c.file = file;
      c.in_history = in_history;
      c.begin = begin;
      c.end = std::min(pages, begin + chunk_pages);
      chunks.push_back(c);
    }
  };
  add_store(rel->primary(), /*in_history=*/false);
  if (rel->two_level() && !current_only && rel->history() != nullptr) {
    add_store(rel->history(), /*in_history=*/true);
    // Vacuumed history segments come after the active history store, in
    // segment order — the same order the serial scan visits them.
    for (const Relation::Segment& seg : rel->segments()) {
      add_store(seg.file.get(), /*in_history=*/true);
    }
  }
  return chunks;
}

Result<std::unique_ptr<VersionSource>> VersionSource::Create(Relation* rel,
                                                             AccessSpec spec) {
  if (spec.kind == AccessSpec::Kind::kKeyed &&
      rel->primary()->org() == Organization::kHeap) {
    return Status::Invalid("keyed access on a heap relation");
  }
  if (spec.kind == AccessSpec::Kind::kIndexEq && spec.index == nullptr) {
    return Status::Internal("index access without an index");
  }
  return std::unique_ptr<VersionSource>(
      new VersionSource(rel, std::move(spec)));
}

void VersionSource::MaybePrefetch(StorageFile* file, uint32_t from_page) {
  if (spec_.readahead_hint <= 0 || file == nullptr) return;
  // Advisory: a prefetch failure just means the page is read (and any
  // error surfaced) at the normal fetch.
  (void)file->pager()->Readahead(from_page, spec_.readahead_hint,
                                 IoCategory::kData);
}

void VersionSource::PrefetchChain() {
  if (spec_.readahead_hint <= 0 || !chain_next_.has_value()) return;
  const HistoryTid& at = *chain_next_;
  StorageFile* file = at.seg == 0
                          ? static_cast<StorageFile*>(rel_->history())
                          : static_cast<StorageFile*>(rel_->SegmentFile(at.seg));
  MaybePrefetch(file, at.tid.page);
}

Result<bool> VersionSource::Next() {
  switch (spec_.kind) {
    case AccessSpec::Kind::kScan:
    case AccessSpec::Kind::kRange:
      return NextScan();
    case AccessSpec::Kind::kKeyed:
      return NextKeyed();
    case AccessSpec::Kind::kIndexEq:
      return NextIndex();
  }
  return Status::Internal("unreachable access kind");
}

Result<size_t> VersionSource::NextBatch(Morsel* m, size_t max) {
  m->Clear();
  switch (spec_.kind) {
    case AccessSpec::Kind::kScan:
    case AccessSpec::Kind::kRange:
      return NextScanBatch(m, max);
    case AccessSpec::Kind::kKeyed:
      return NextKeyedBatch(m, max);
    case AccessSpec::Kind::kIndexEq:
      return NextIndexBatch(m, max);
  }
  return Status::Internal("unreachable access kind");
}

Result<bool> VersionSource::NextScan() {
  const Schema& schema = rel_->schema();
  while (true) {
    if (stage_ == Stage::kDone) return false;
    if (cursor_ == nullptr) {
      if (stage_ == Stage::kPrimary) {
        if (spec_.kind == AccessSpec::Kind::kRange) {
          TDB_ASSIGN_OR_RETURN(
              cursor_, rel_->primary()->ScanRange(spec_.lo, spec_.lo_inclusive,
                                                  spec_.hi,
                                                  spec_.hi_inclusive));
        } else {
          TDB_ASSIGN_OR_RETURN(cursor_, rel_->primary()->Scan());
        }
      } else if (stage_ == Stage::kHistoryScan) {
        // The history store is a heap: range bounds cannot be used here;
        // the executor re-applies every predicate, so a full scan is
        // correct (just not accelerated).
        MaybePrefetch(rel_->history(), 0);
        TDB_ASSIGN_OR_RETURN(cursor_, rel_->history()->Scan());
      } else {
        MaybePrefetch(rel_->segments()[seg_pos_].file.get(), 0);
        TDB_ASSIGN_OR_RETURN(cursor_,
                             rel_->segments()[seg_pos_].file->Scan());
      }
    }
    TDB_ASSIGN_OR_RETURN(bool have, cursor_->Next());
    if (!have) {
      cursor_.reset();
      if (stage_ == Stage::kPrimary && rel_->two_level() &&
          !spec_.current_only) {
        stage_ = Stage::kHistoryScan;
        continue;
      }
      if (stage_ == Stage::kHistoryScan && !rel_->segments().empty()) {
        stage_ = Stage::kSegmentScan;
        seg_pos_ = 0;
        continue;
      }
      if (stage_ == Stage::kSegmentScan &&
          seg_pos_ + 1 < rel_->segments().size()) {
        ++seg_pos_;
        continue;
      }
      stage_ = Stage::kDone;
      return false;
    }
    bool in_history = stage_ != Stage::kPrimary;
    // Zero-copy: the cursor's record buffer stays valid until the next
    // Next(), so the ref borrows it and decodes attributes on demand.
    // (History records carry an 8-byte back pointer past the schema record,
    // which lazy decode never touches.)
    ref_.BindRaw(schema, cursor_->record().data());
    ref_.tid = cursor_->tid();
    ref_.in_history = in_history;
    return true;
  }
}

Result<size_t> VersionSource::NextScanBatch(Morsel* m, size_t max) {
  while (true) {
    if (stage_ == Stage::kDone) return 0;
    if (cursor_ == nullptr) {
      if (stage_ == Stage::kPrimary) {
        if (spec_.kind == AccessSpec::Kind::kRange) {
          TDB_ASSIGN_OR_RETURN(
              cursor_, rel_->primary()->ScanRange(spec_.lo, spec_.lo_inclusive,
                                                  spec_.hi,
                                                  spec_.hi_inclusive));
        } else {
          TDB_ASSIGN_OR_RETURN(cursor_, rel_->primary()->Scan());
        }
      } else if (stage_ == Stage::kHistoryScan) {
        MaybePrefetch(rel_->history(), 0);
        TDB_ASSIGN_OR_RETURN(cursor_, rel_->history()->Scan());
      } else {
        MaybePrefetch(rel_->segments()[seg_pos_].file.get(), 0);
        TDB_ASSIGN_OR_RETURN(cursor_,
                             rel_->segments()[seg_pos_].file->Scan());
      }
    }
    TDB_ASSIGN_OR_RETURN(size_t n, cursor_->NextBatch(m, max));
    if (n == 0) {
      cursor_.reset();
      if (stage_ == Stage::kPrimary && rel_->two_level() &&
          !spec_.current_only) {
        stage_ = Stage::kHistoryScan;
        continue;
      }
      if (stage_ == Stage::kHistoryScan && !rel_->segments().empty()) {
        stage_ = Stage::kSegmentScan;
        seg_pos_ = 0;
        continue;
      }
      if (stage_ == Stage::kSegmentScan &&
          seg_pos_ + 1 < rel_->segments().size()) {
        ++seg_pos_;
        continue;
      }
      stage_ = Stage::kDone;
      return 0;
    }
    m->in_history = stage_ != Stage::kPrimary;
    return n;
  }
}

Result<size_t> VersionSource::NextKeyedBatch(Morsel* m, size_t max) {
  while (true) {
    switch (stage_) {
      case Stage::kPrimary: {
        if (cursor_ == nullptr) {
          TDB_ASSIGN_OR_RETURN(cursor_, rel_->primary()->ScanKey(spec_.key));
        }
        TDB_ASSIGN_OR_RETURN(size_t n, cursor_->NextBatch(m, max));
        if (n > 0) {
          m->in_history = false;
          return n;
        }
        cursor_.reset();
        if (rel_->two_level() && !spec_.current_only) {
          TDB_ASSIGN_OR_RETURN(chain_next_, rel_->AnchorLookup(spec_.key));
          PrefetchChain();
          stage_ = Stage::kHistoryChain;
          continue;
        }
        stage_ = Stage::kDone;
        return 0;
      }
      case Stage::kHistoryChain: {
        // Point fetches: the bytes go into the morsel arena, so they stay
        // valid across the chain's page walks.
        size_t n = 0;
        while (chain_next_.has_value() && n < max) {
          HistoryTid at = *chain_next_;
          TDB_ASSIGN_OR_RETURN(owned_rec_, rel_->FetchHistoryAt(at));
          TDB_ASSIGN_OR_RETURN(chain_next_, rel_->HistoryBackPtr(at));
          if (n == 0) m->EnsureArena(max * owned_rec_.size());
          m->AppendCopy(owned_rec_.data(), owned_rec_.size(), at.tid);
          ++n;
        }
        if (n == 0) {
          stage_ = Stage::kDone;
          return 0;
        }
        m->in_history = true;
        return n;
      }
      default:
        return 0;
    }
  }
}

Result<size_t> VersionSource::NextIndexBatch(Morsel* m, size_t max) {
  if (!entries_loaded_) {
    TDB_ASSIGN_OR_RETURN(entries_,
                         spec_.index->Lookup(spec_.key, spec_.current_only));
    entries_loaded_ = true;
    entry_pos_ = 0;
  }
  if (entry_pos_ >= entries_.size()) return 0;
  // Cut the morsel where in_history flips so the flag stays uniform.
  const bool hist = entries_[entry_pos_].in_history;
  size_t n = 0;
  while (entry_pos_ < entries_.size() && n < max &&
         entries_[entry_pos_].in_history == hist) {
    const IndexEntryRef& entry = entries_[entry_pos_++];
    TDB_ASSIGN_OR_RETURN(owned_rec_, hist ? rel_->FetchHistory(entry.tid)
                                          : rel_->FetchPrimary(entry.tid));
    if (n == 0) m->EnsureArena(max * owned_rec_.size());
    m->AppendCopy(owned_rec_.data(), owned_rec_.size(), entry.tid);
    ++n;
  }
  m->in_history = hist;
  return n;
}

Result<bool> VersionSource::NextKeyed() {
  const Schema& schema = rel_->schema();
  while (true) {
    switch (stage_) {
      case Stage::kPrimary: {
        if (cursor_ == nullptr) {
          TDB_ASSIGN_OR_RETURN(cursor_, rel_->primary()->ScanKey(spec_.key));
        }
        TDB_ASSIGN_OR_RETURN(bool have, cursor_->Next());
        if (have) {
          ref_.BindRaw(schema, cursor_->record().data());
          ref_.tid = cursor_->tid();
          ref_.in_history = false;
          return true;
        }
        cursor_.reset();
        if (rel_->two_level() && !spec_.current_only) {
          TDB_ASSIGN_OR_RETURN(chain_next_, rel_->AnchorLookup(spec_.key));
          PrefetchChain();
          stage_ = Stage::kHistoryChain;
          continue;
        }
        stage_ = Stage::kDone;
        return false;
      }
      case Stage::kHistoryChain: {
        if (!chain_next_.has_value()) {
          stage_ = Stage::kDone;
          return false;
        }
        HistoryTid at = *chain_next_;
        // Fetch returns a temporary buffer; keep the bytes alive in
        // owned_rec_ (reused across iterations) for the lazy ref.
        TDB_ASSIGN_OR_RETURN(owned_rec_, rel_->FetchHistoryAt(at));
        TDB_ASSIGN_OR_RETURN(chain_next_, rel_->HistoryBackPtr(at));
        ref_.BindRaw(schema, owned_rec_.data());
        ref_.tid = at.tid;
        ref_.in_history = true;
        return true;
      }
      default:
        return false;
    }
  }
}

Result<bool> VersionSource::NextIndex() {
  const Schema& schema = rel_->schema();
  if (!entries_loaded_) {
    TDB_ASSIGN_OR_RETURN(entries_,
                         spec_.index->Lookup(spec_.key, spec_.current_only));
    entries_loaded_ = true;
    entry_pos_ = 0;
  }
  while (entry_pos_ < entries_.size()) {
    const IndexEntryRef& entry = entries_[entry_pos_++];
    Result<std::vector<uint8_t>> rec =
        entry.in_history ? rel_->FetchHistory(entry.tid)
                         : rel_->FetchPrimary(entry.tid);
    if (!rec.ok()) return rec.status();
    owned_rec_ = std::move(rec).value();
    ref_.BindRaw(schema, owned_rec_.data());
    ref_.tid = entry.tid;
    ref_.in_history = entry.in_history;
    return true;
  }
  return false;
}

}  // namespace tdb
