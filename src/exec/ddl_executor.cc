#include "exec/ddl_executor.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "exec/eval.h"
#include "exec/version.h"
#include "storage/btree_file.h"
#include "storage/page.h"
#include "exec/version_source.h"
#include "util/stringx.h"

namespace tdb {

Result<Attribute> ParseAttrType(const std::string& name,
                                const std::string& type_name) {
  Attribute a;
  a.name = name;
  std::string t = ToLower(type_name);
  if (t == "i1") {
    a.type = TypeId::kInt1;
  } else if (t == "i2") {
    a.type = TypeId::kInt2;
  } else if (t == "i4") {
    a.type = TypeId::kInt4;
  } else if (t == "f8" || t == "f4") {
    a.type = TypeId::kFloat8;  // f4 stored at double precision
  } else if (t.size() > 1 && t[0] == 'c') {
    int64_t w = 0;
    if (!ParseInt64(t.substr(1), &w) || w < 1 || w > 255) {
      return Status::Invalid("bad char width in type '" + type_name + "'");
    }
    a.type = TypeId::kChar;
    a.width = static_cast<uint16_t>(w);
    return a;
  } else {
    return Status::Invalid("unknown type '" + type_name +
                           "' (use i1, i2, i4, f8, or c<N>)");
  }
  a.width = TypeWidth(a.type);
  return a;
}

Result<ExecResult> DdlExecutor::Create(const CreateStmt& stmt) {
  DbType type;
  if (stmt.persistent && stmt.has_valid_time) {
    type = DbType::kTemporal;
  } else if (stmt.persistent) {
    type = DbType::kRollback;
  } else if (stmt.has_valid_time) {
    type = DbType::kHistorical;
  } else {
    type = DbType::kStatic;
  }
  std::vector<Attribute> attrs;
  for (const CreateStmt::AttrDef& def : stmt.attrs) {
    TDB_ASSIGN_OR_RETURN(Attribute a, ParseAttrType(def.name, def.type_name));
    attrs.push_back(std::move(a));
  }
  TDB_ASSIGN_OR_RETURN(
      Schema schema,
      Schema::Create(std::move(attrs), type,
                     stmt.event ? EntityKind::kEvent : EntityKind::kInterval));
  // Records must fit a page under every organization, with headroom for
  // the largest page header (B-tree leaf, 16 bytes) and the two-level
  // history store's 8-byte back pointer.
  const uint32_t kMaxRecordSize = env_.usable_page_size() - 16 - 8;
  if (schema.record_size() > kMaxRecordSize) {
    return Status::Invalid(StrPrintf(
        "record size %u exceeds the maximum of %u bytes",
        schema.record_size(), kMaxRecordSize));
  }
  RelationMeta meta;
  meta.name = stmt.relation;
  meta.schema = std::move(schema);
  meta.org = Organization::kHeap;
  TDB_RETURN_NOT_OK(env_.catalog->Create(meta));
  ExecResult out;
  out.message = StrPrintf("created %s relation %s", DbTypeName(type),
                          stmt.relation.c_str());
  return out;
}

void DdlExecutor::DeleteFiles(const RelationMeta& meta, bool indexes_too) {
  std::vector<std::string> paths = {
      env_.dir + "/" + meta.DataFileName(),
      env_.dir + "/" + meta.HistoryFileName(),
      env_.dir + "/" + meta.name + ".anc",
  };
  for (const SegmentMeta& sm : meta.segments) {
    paths.push_back(env_.dir + "/" + meta.SegmentFileName(sm.id));
  }
  if (indexes_too) {
    for (const IndexMeta& idx : meta.indexes) {
      paths.push_back(env_.dir + "/" + idx.CurrentFileName());
      paths.push_back(env_.dir + "/" + idx.HistoryFileName());
    }
  }
  for (const std::string& path : paths) {
    // Pre-image the whole file so destroy / modify roll back to intact
    // storage if the statement dies after this point.
    if (env_.journal != nullptr) {
      (void)env_.journal->BeforeDeleteFile(path);
    }
    (void)env_.env->DeleteFile(path);
  }
}

Result<ExecResult> DdlExecutor::Destroy(const DestroyStmt& stmt) {
  const RelationMeta* meta = env_.catalog->Find(stmt.relation);
  if (meta == nullptr) {
    return Status::NotFound("relation '" + stmt.relation + "' does not exist");
  }
  env_.CloseRelation(stmt.relation);
  DeleteFiles(*meta, /*indexes_too=*/true);
  TDB_RETURN_NOT_OK(env_.catalog->Drop(stmt.relation));
  ExecResult out;
  out.message = "destroyed relation " + stmt.relation;
  return out;
}

namespace {

struct StoredVersion {
  std::vector<uint8_t> rec;
  bool is_current = false;
};

/// Dumps every version of a relation (history first, so chain rebuilds see
/// the oldest versions first).
Result<std::vector<StoredVersion>> CollectAll(Relation* rel) {
  const Schema& schema = rel->schema();
  std::vector<StoredVersion> history;
  std::vector<StoredVersion> primary;
  AccessSpec spec;
  spec.kind = AccessSpec::Kind::kScan;
  TDB_ASSIGN_OR_RETURN(auto src, VersionSource::Create(rel, spec));
  while (true) {
    TDB_ASSIGN_OR_RETURN(bool have, src->Next());
    if (!have) break;
    StoredVersion v;
    TDB_ASSIGN_OR_RETURN(v.rec, EncodeRecord(schema, src->ref().FullRow()));
    v.is_current = src->ref().IsCurrent(schema);
    (src->ref().in_history ? history : primary).push_back(std::move(v));
  }
  history.insert(history.end(), std::make_move_iterator(primary.begin()),
                 std::make_move_iterator(primary.end()));
  return history;
}

}  // namespace

Status DdlExecutor::RebuildIndexes(const std::string& name) {
  TDB_ASSIGN_OR_RETURN(Relation * rel, env_.GetRelation(name));
  if (rel->indexes().empty()) return Status::OK();
  const Schema& schema = rel->schema();
  AccessSpec spec;
  spec.kind = AccessSpec::Kind::kScan;
  TDB_ASSIGN_OR_RETURN(auto src, VersionSource::Create(rel, spec));
  while (true) {
    TDB_ASSIGN_OR_RETURN(bool have, src->Next());
    if (!have) break;
    TDB_ASSIGN_OR_RETURN(auto rec, EncodeRecord(schema, src->ref().FullRow()));
    if (src->ref().IsCurrent(schema)) {
      TDB_RETURN_NOT_OK(rel->IndexInsertCurrent(rec, src->ref().tid,
                                                src->ref().in_history));
    } else {
      TDB_RETURN_NOT_OK(rel->IndexInsertHistory(rec, src->ref().tid,
                                                src->ref().in_history));
    }
  }
  return Status::OK();
}

Result<ExecResult> DdlExecutor::Modify(const ModifyStmt& stmt) {
  RelationMeta* existing = env_.catalog->Find(stmt.relation);
  if (existing == nullptr) {
    return Status::NotFound("relation '" + stmt.relation + "' does not exist");
  }
  RelationMeta meta = *existing;  // copy to mutate
  const Schema& schema = meta.schema;

  Organization org;
  if (stmt.organization == "heap") {
    org = Organization::kHeap;
  } else if (stmt.organization == "hash") {
    org = Organization::kHash;
  } else if (stmt.organization == "btree") {
    org = Organization::kBtree;
  } else {
    org = Organization::kIsam;
  }
  if (stmt.two_level && org == Organization::kHeap) {
    return Status::Invalid("a two-level store needs a keyed (hash, isam, "
                           "or btree) primary organization");
  }
  std::string key_attr = stmt.key_attr.empty() ? meta.key_attr : stmt.key_attr;
  if (org != Organization::kHeap) {
    if (key_attr.empty()) {
      return Status::Invalid(
          "modify to hash/isam/btree needs `on <attribute>`");
    }
    if (schema.FindAttr(key_attr) < 0) {
      return Status::Invalid("relation has no attribute '" + key_attr + "'");
    }
  }
  if (stmt.two_level && !HasTransactionTime(schema.db_type()) &&
      !HasValidTime(schema.db_type())) {
    return Status::Invalid("a static relation has no history to two-level");
  }
  if (org == Organization::kBtree && !meta.indexes.empty()) {
    return Status::NotSupported(
        "secondary indexes cannot be kept consistent across B-tree leaf "
        "splits; drop the indexes before `modify ... to btree`");
  }

  // 1. Collect every stored version.
  TDB_ASSIGN_OR_RETURN(Relation * old_rel, env_.GetRelation(stmt.relation));
  TDB_ASSIGN_OR_RETURN(auto versions, CollectAll(old_rel));
  size_t current_count = 0;
  for (const StoredVersion& v : versions) {
    if (v.is_current) ++current_count;
  }

  // 2. Drop the old physical files (indexes are rebuilt below).
  env_.CloseRelation(stmt.relation);
  DeleteFiles(meta, /*indexes_too=*/true);

  // 3. New metadata.  CollectAll already drained any vacuum segments, so
  // the rebuilt relation starts with everything back in the active stores.
  meta.segments.clear();
  meta.org = org;
  meta.key_attr = org == Organization::kHeap ? meta.key_attr : key_attr;
  meta.fillfactor = stmt.fillfactor;
  meta.two_level = stmt.two_level;
  meta.clustered_history = stmt.clustered_history;
  TDB_ASSIGN_OR_RETURN(RecordLayout layout, LayoutFor(schema, key_attr));

  size_t primary_count = stmt.two_level ? current_count : versions.size();
  if (org == Organization::kHash) {
    meta.hash_buckets = HashFile::BucketsFor(
        std::max<uint64_t>(primary_count, 1), schema.record_size(),
        env_.usable_page_size(), stmt.fillfactor);
  }
  if (stmt.two_level) {
    // Anchor file: one (key, head-tid) entry per tuple.
    uint16_t anchor_rec = static_cast<uint16_t>(layout.key_width + 8);
    meta.history_buckets = HashFile::BucketsFor(
        std::max<uint64_t>(current_count, 1), anchor_rec,
        env_.usable_page_size(), 100);
  }

  // 4. Build the new primary file.
  std::string data_path = env_.dir + "/" + meta.DataFileName();
  auto primary_records = [&]() {
    std::vector<std::vector<uint8_t>> recs;
    for (const StoredVersion& v : versions) {
      if (!stmt.two_level || v.is_current) recs.push_back(v.rec);
    }
    return recs;
  };
  switch (org) {
    case Organization::kHeap: {
      TDB_ASSIGN_OR_RETURN(
          auto pager,
          Pager::Open(env_.env, data_path, env_.registry->ForFile(meta.name),
                      /*frames=*/1, env_.journal, env_.storage));
      TDB_RETURN_NOT_OK(pager->Reset());
      TDB_ASSIGN_OR_RETURN(auto heap, HeapFile::Open(std::move(pager), layout));
      for (const auto& rec : primary_records()) {
        TDB_RETURN_NOT_OK(heap->Insert(rec.data(), rec.size(), nullptr));
      }
      TDB_RETURN_NOT_OK(heap->pager()->Flush());
      break;
    }
    case Organization::kHash: {
      TDB_ASSIGN_OR_RETURN(
          auto pager,
          Pager::Open(env_.env, data_path, env_.registry->ForFile(meta.name),
                      /*frames=*/1, env_.journal, env_.storage));
      TDB_ASSIGN_OR_RETURN(
          auto hash,
          HashFile::Create(std::move(pager), layout, meta.hash_buckets));
      for (const auto& rec : primary_records()) {
        TDB_RETURN_NOT_OK(hash->Insert(rec.data(), rec.size(), nullptr));
      }
      TDB_RETURN_NOT_OK(hash->pager()->Flush());
      break;
    }
    case Organization::kIsam: {
      TDB_ASSIGN_OR_RETURN(
          auto pager,
          Pager::Open(env_.env, data_path, env_.registry->ForFile(meta.name),
                      /*frames=*/1, env_.journal, env_.storage));
      TDB_ASSIGN_OR_RETURN(
          auto isam,
          IsamFile::BulkLoad(std::move(pager), layout, primary_records(),
                             stmt.fillfactor, &meta.isam));
      TDB_RETURN_NOT_OK(isam->pager()->Flush());
      break;
    }
    case Organization::kBtree: {
      // B-trees build incrementally; the fill factor does not apply.
      TDB_ASSIGN_OR_RETURN(
          auto pager,
          Pager::Open(env_.env, data_path, env_.registry->ForFile(meta.name),
                      /*frames=*/1, env_.journal, env_.storage));
      TDB_ASSIGN_OR_RETURN(auto btree,
                           BtreeFile::Create(std::move(pager), layout));
      for (const auto& rec : primary_records()) {
        TDB_RETURN_NOT_OK(btree->Insert(rec.data(), rec.size(), nullptr));
      }
      TDB_RETURN_NOT_OK(btree->pager()->Flush());
      break;
    }
  }

  TDB_RETURN_NOT_OK(env_.catalog->Update(meta));

  // 5. Two-level: feed history versions through the relation so chains and
  // anchors are built (oldest first, as CollectAll returns them).
  TDB_ASSIGN_OR_RETURN(Relation * rel, env_.GetRelation(stmt.relation));
  if (stmt.two_level) {
    for (const StoredVersion& v : versions) {
      if (v.is_current) continue;
      TDB_RETURN_NOT_OK(rel->AppendHistory(v.rec, nullptr));
    }
    TDB_RETURN_NOT_OK(rel->history()->pager()->Flush());
    TDB_RETURN_NOT_OK(rel->anchors()->pager()->Flush());
  }

  // 6. Rebuild secondary indexes over the new locations.
  TDB_RETURN_NOT_OK(RebuildIndexes(stmt.relation));

  ExecResult out;
  out.message = StrPrintf(
      "modified %s to %s%s (fillfactor %d, %zu versions)",
      stmt.relation.c_str(), stmt.two_level ? "twolevel " : "",
      stmt.organization.c_str(), stmt.fillfactor, versions.size());
  return out;
}

Result<ExecResult> DdlExecutor::Vacuum(const VacuumStmt& stmt) {
  RelationMeta* existing = env_.catalog->Find(stmt.relation);
  if (existing == nullptr) {
    return Status::NotFound("relation '" + stmt.relation + "' does not exist");
  }
  if (!existing->two_level) {
    return Status::Invalid("vacuum needs a two-level relation; use "
                           "`modify " + stmt.relation +
                           " to twolevel ...` first");
  }
  if (!existing->indexes.empty()) {
    return Status::NotSupported(
        "secondary index entries pin history tids in the active store; "
        "drop the indexes before `vacuum " + stmt.relation + "`");
  }

  TDB_ASSIGN_OR_RETURN(Relation * rel, env_.GetRelation(stmt.relation));
  const Schema& schema = rel->schema();

  // A version is cold once its end stamp precedes the cutoff: transaction
  // stop when the relation carries transaction time (vacuum must never move
  // a version rollback could still surface as current), else the valid
  // time's end (events carry a single instant).
  int stamp_idx = schema.tx_stop_index();
  if (stamp_idx < 0) stamp_idx = schema.valid_to_index();
  if (stamp_idx < 0) stamp_idx = schema.valid_from_index();
  if (stamp_idx < 0) {
    return Status::Invalid("relation '" + stmt.relation +
                           "' has no temporal attributes to vacuum by");
  }

  TimePoint cutoff = env_.now;
  if (stmt.before != nullptr) {
    Evaluator eval(env_.now);
    Binding empty;
    TDB_ASSIGN_OR_RETURN(Interval at, eval.EvalTemporal(*stmt.before, empty));
    cutoff = at.from;
  }

  // Partition policy: one wide segment, or one segment per epoch of the
  // version's end stamp.
  int64_t epoch = 0;
  const std::string& policy = env_.vacuum_partition;
  if (policy.rfind("epoch:", 0) == 0) {
    if (!ParseInt64(policy.substr(6), &epoch) || epoch <= 0) {
      return Status::Invalid("bad vacuum partition policy '" + policy + "'");
    }
  } else if (!policy.empty() && policy != "single") {
    return Status::Invalid("bad vacuum partition policy '" + policy +
                           "' (use \"single\" or \"epoch:<seconds>\")");
  }

  // Anchor records hold the primary key at offset 0.
  RecordLayout alayout;
  {
    int kidx = schema.FindAttr(rel->meta().key_attr);
    if (kidx < 0) {
      return Status::Corruption("two-level relation lost its key attribute");
    }
    alayout.key_offset = 0;
    alayout.key_type = schema.attr(static_cast<size_t>(kidx)).type;
    alayout.key_width = schema.attr(static_cast<size_t>(kidx)).width;
  }

  // Snapshot the keys first: migration rewrites anchor records in place,
  // which is not safe under the same hash file's scan cursor.
  std::vector<Value> keys;
  {
    TDB_ASSIGN_OR_RETURN(auto cur, rel->anchors()->Scan());
    while (true) {
      TDB_ASSIGN_OR_RETURN(bool have, cur->Next());
      if (!have) break;
      keys.push_back(alayout.KeyOf(cur->record().data()));
    }
  }

  const uint16_t rec_size = schema.record_size();
  size_t migrated = 0;
  for (const Value& key : keys) {
    TDB_ASSIGN_OR_RETURN(std::optional<HistoryTid> head,
                         rel->AnchorLookup(key));
    // seg != 0: a prior vacuum already moved the whole chain.
    if (!head.has_value() || head->seg != 0) continue;

    // Walk the active-store chain newest-first, keeping the raw records
    // (back pointers included).  The walk stops where a prior vacuum's
    // segment tail begins; that link is preserved below.
    struct Link {
      Tid tid;
      std::vector<uint8_t> hrec;
      bool cold = false;
    };
    std::vector<Link> chain;
    std::optional<HistoryTid> at = head;
    while (at.has_value() && at->seg == 0) {
      Link l;
      l.tid = at->tid;
      TDB_ASSIGN_OR_RETURN(l.hrec, rel->history()->Fetch(at->tid));
      TimePoint stamp = DecodeAttr(schema, static_cast<size_t>(stamp_idx),
                                   l.hrec.data())
                            .AsTime();
      l.cold = stamp.seconds() < cutoff.seconds() &&
               stamp.seconds() != TimePoint::Forever().seconds();
      const uint8_t* bp = l.hrec.data() + rec_size;
      HistoryTid prev;
      std::memcpy(&prev.tid.page, bp, 4);
      std::memcpy(&prev.tid.slot, bp + 4, 2);
      std::memcpy(&prev.seg, bp + 6, 2);
      chain.push_back(std::move(l));
      if (prev.tid.page == kNoPage) {
        at.reset();
      } else {
        at = prev;
      }
    }

    // Only a maximal cold *suffix* (the oldest versions) moves: the chain
    // is cut at one point, so the segment part must stay contiguous.
    size_t split = chain.size();
    while (split > 0 && chain[split - 1].cold) --split;
    if (split == chain.size()) continue;

    // Migrate oldest-first so each appended record can point back at the
    // one before it, starting from any prior vacuum's tail.
    std::optional<HistoryTid> prev = at;
    for (size_t j = chain.size(); j > split; --j) {
      Link& l = chain[j - 1];
      int64_t secs = DecodeAttr(schema, static_cast<size_t>(stamp_idx),
                                l.hrec.data())
                         .AsTime()
                         .seconds();
      int64_t lo = 0;
      int64_t hi = std::numeric_limits<int64_t>::max();
      if (epoch > 0) {
        lo = (secs / epoch) * epoch;
        hi = lo + epoch;
      }
      TDB_ASSIGN_OR_RETURN(HeapFile * segfile, rel->EnsureSegment(lo, hi));
      uint16_t seg_id = 0;
      for (const Relation::Segment& s : rel->segments()) {
        if (s.file.get() == segfile) {
          seg_id = s.meta.id;
          break;
        }
      }
      uint8_t* bp = l.hrec.data() + rec_size;
      uint32_t ppage = kNoPage;
      uint16_t pslot = 0;
      uint16_t pseg = 0;
      if (prev.has_value()) {
        ppage = prev->tid.page;
        pslot = prev->tid.slot;
        pseg = prev->seg;
      }
      std::memcpy(bp, &ppage, 4);
      std::memcpy(bp + 4, &pslot, 2);
      std::memcpy(bp + 6, &pseg, 2);
      Tid ntid;
      TDB_RETURN_NOT_OK(rel->AppendToSegment(seg_id, l.hrec, &ntid));
      prev = HistoryTid{ntid, seg_id};
      ++migrated;
    }

    // Reconnect: the oldest warm version — or the anchor, when the whole
    // chain moved — now points at the migrated head.
    if (split == 0) {
      TDB_RETURN_NOT_OK(rel->UpdateAnchor(key, *prev));
    } else {
      TDB_RETURN_NOT_OK(
          rel->PatchHistoryBackPtr(HistoryTid{chain[split - 1].tid, 0}, prev));
    }
    for (size_t j = split; j < chain.size(); ++j) {
      TDB_RETURN_NOT_OK(rel->EraseHistory(chain[j].tid));
    }
  }

  // Persist the segment roster and flush everything the migration touched.
  // The statement journal pre-imaged each page write, so a crash anywhere
  // above rolls back to the pre-vacuum image.
  TDB_RETURN_NOT_OK(env_.catalog->Update(rel->meta()));
  TDB_RETURN_NOT_OK(rel->history()->pager()->Flush());
  TDB_RETURN_NOT_OK(rel->anchors()->pager()->Flush());
  for (const Relation::Segment& s : rel->segments()) {
    TDB_RETURN_NOT_OK(s.file->pager()->Flush());
  }

  ExecResult out;
  out.affected = static_cast<int64_t>(migrated);
  out.message = StrPrintf("vacuumed %zu versions of %s into %zu segments",
                          migrated, stmt.relation.c_str(),
                          rel->segments().size());
  return out;
}

Result<ExecResult> DdlExecutor::Index(const IndexStmt& stmt) {
  RelationMeta* existing = env_.catalog->Find(stmt.relation);
  if (existing == nullptr) {
    return Status::NotFound("relation '" + stmt.relation + "' does not exist");
  }
  RelationMeta meta = *existing;
  int attr_idx = meta.schema.FindAttr(stmt.attr);
  if (attr_idx < 0 ||
      static_cast<size_t>(attr_idx) >= meta.schema.num_user_attrs()) {
    return Status::Invalid("relation has no user attribute '" + stmt.attr +
                           "'");
  }
  if (meta.FindIndex(stmt.attr) != nullptr) {
    return Status::AlreadyExists("attribute '" + stmt.attr +
                                 "' is already indexed");
  }
  if (meta.org == Organization::kBtree) {
    return Status::NotSupported(
        "secondary indexes are not supported on btree relations (leaf "
        "splits move records, which would stale index entries)");
  }

  // Size hash buckets at roughly one bucket per distinct value, assuming
  // the indexed attribute is near-unique (the paper's amount attribute).
  TDB_ASSIGN_OR_RETURN(Relation * rel, env_.GetRelation(stmt.relation));
  size_t current_count = 0;
  {
    AccessSpec spec;
    spec.kind = AccessSpec::Kind::kScan;
    spec.current_only = true;
    TDB_ASSIGN_OR_RETURN(auto src, VersionSource::Create(rel, spec));
    while (true) {
      TDB_ASSIGN_OR_RETURN(bool have, src->Next());
      if (!have) break;
      if (src->ref().IsCurrent(rel->schema())) ++current_count;
    }
  }

  IndexMeta idx;
  idx.name = stmt.index_name;
  idx.attr = meta.schema.attr(static_cast<size_t>(attr_idx)).name;
  idx.org = stmt.structure == "hash" ? Organization::kHash
                                     : Organization::kHeap;
  idx.levels = stmt.levels;
  if (idx.org == Organization::kHash) {
    idx.nbuckets = static_cast<uint32_t>(std::max<size_t>(current_count, 16));
    idx.history_nbuckets = idx.nbuckets;
  }
  meta.indexes.push_back(idx);
  TDB_RETURN_NOT_OK(env_.catalog->Update(meta));
  env_.CloseRelation(stmt.relation);
  TDB_RETURN_NOT_OK(RebuildIndexes(stmt.relation));

  ExecResult out;
  out.message = StrPrintf("indexed %s.%s as %s (%s, %d-level)",
                          stmt.relation.c_str(), stmt.attr.c_str(),
                          stmt.index_name.c_str(), stmt.structure.c_str(),
                          stmt.levels);
  return out;
}

Result<ExecResult> DdlExecutor::Help(const HelpStmt& stmt) {
  ExecResult out;
  if (stmt.relation.empty()) {
    out.result.columns = {"relation", "type", "kind", "organization",
                          "attributes"};
    for (const std::string& name : env_.catalog->RelationNames()) {
      const RelationMeta* meta = env_.catalog->Find(name);
      std::string org = OrganizationName(meta->org);
      if (meta->two_level) org = "twolevel " + org;
      out.result.rows.push_back(
          {Value::Char(meta->name), Value::Char(DbTypeName(meta->schema.db_type())),
           Value::Char(EntityKindName(meta->schema.entity_kind())),
           Value::Char(org),
           Value::Int4(static_cast<int64_t>(meta->schema.num_user_attrs()))});
    }
    out.affected = static_cast<int64_t>(out.result.rows.size());
    return out;
  }
  const RelationMeta* meta = env_.catalog->Find(stmt.relation);
  if (meta == nullptr) {
    return Status::NotFound("relation '" + stmt.relation + "' does not exist");
  }
  out.result.columns = {"attribute", "type", "width", "implicit", "notes"};
  for (size_t i = 0; i < meta->schema.num_attrs(); ++i) {
    const Attribute& a = meta->schema.attr(i);
    std::string type = TypeIdName(a.type);
    if (a.type == TypeId::kChar) type = StrPrintf("c%u", a.width);
    std::string notes;
    if (EqualsIgnoreCase(a.name, meta->key_attr)) {
      notes = std::string(OrganizationName(meta->org)) + " key";
    } else if (meta->FindIndex(a.name) != nullptr) {
      notes = "indexed";
    }
    out.result.rows.push_back({Value::Char(a.name), Value::Char(type),
                               Value::Int4(a.width),
                               Value::Char(a.implicit ? "yes" : ""),
                               Value::Char(notes)});
  }
  out.affected = static_cast<int64_t>(out.result.rows.size());
  return out;
}

Result<ExecResult> DdlExecutor::Copy(const CopyStmt& stmt) {
  TDB_ASSIGN_OR_RETURN(Relation * rel, env_.GetRelation(stmt.relation));
  const Schema& schema = rel->schema();
  ExecResult out;

  if (!stmt.from) {
    // Dump every version, tab separated, times human readable.
    std::string text;
    AccessSpec spec;
    spec.kind = AccessSpec::Kind::kScan;
    TDB_ASSIGN_OR_RETURN(auto src, VersionSource::Create(rel, spec));
    while (true) {
      TDB_ASSIGN_OR_RETURN(bool have, src->Next());
      if (!have) break;
      std::string line;
      for (size_t i = 0; i < schema.num_attrs(); ++i) {
        if (i > 0) line += '\t';
        line += src->ref().attr(i).ToString(TimeResolution::kSecond);
      }
      text += line + "\n";
      ++out.affected;
    }
    TDB_RETURN_NOT_OK(env_.env->WriteStringToFile(stmt.path, text));
    out.message = StrPrintf("copied %lld tuples to %s",
                            static_cast<long long>(out.affected),
                            stmt.path.c_str());
    return out;
  }

  // Batch load.  Each line supplies either the user attributes (implicit
  // times defaulted) or every attribute including the temporal ones.
  TDB_ASSIGN_OR_RETURN(std::string text, env_.env->ReadFileToString(stmt.path));
  for (const std::string& raw : Split(text, '\n')) {
    if (Trim(raw).empty()) continue;
    std::vector<std::string> fields = Split(raw, '\t');
    if (fields.size() != schema.num_user_attrs() &&
        fields.size() != schema.num_attrs()) {
      return Status::Invalid(StrPrintf(
          "copy line has %zu fields; expected %zu (user) or %zu (all)",
          fields.size(), schema.num_user_attrs(), schema.num_attrs()));
    }
    Row row(schema.num_attrs());
    for (size_t i = 0; i < schema.num_attrs(); ++i) {
      const Attribute& a = schema.attr(i);
      if (i >= fields.size()) {
        // Default implicit attributes: valid/transaction from now to forever.
        bool is_stop = static_cast<int>(i) == schema.tx_stop_index() ||
                       (static_cast<int>(i) == schema.valid_to_index() &&
                        schema.entity_kind() == EntityKind::kInterval);
        row[i] = Value::Time(is_stop ? TimePoint::Forever() : env_.now);
        continue;
      }
      const std::string& f = fields[i];
      switch (a.type) {
        case TypeId::kInt1:
        case TypeId::kInt2:
        case TypeId::kInt4: {
          int64_t v = 0;
          if (!ParseInt64(f, &v)) {
            return Status::Invalid("bad integer '" + f + "' in copy input");
          }
          row[i] = Value::Int4(v);
          break;
        }
        case TypeId::kFloat8: {
          double v = 0;
          if (!ParseDouble(f, &v)) {
            return Status::Invalid("bad float '" + f + "' in copy input");
          }
          row[i] = Value::Float8(v);
          break;
        }
        case TypeId::kChar:
          row[i] = Value::Char(f);
          break;
        case TypeId::kTime: {
          if (EqualsIgnoreCase(Trim(f), "now")) {
            row[i] = Value::Time(env_.now);
          } else {
            TDB_ASSIGN_OR_RETURN(TimePoint tp, TimePoint::Parse(f));
            row[i] = Value::Time(tp);
          }
          break;
        }
      }
    }
    TDB_ASSIGN_OR_RETURN(auto rec, EncodeRecord(schema, row));
    Tid tid;
    TDB_RETURN_NOT_OK(rel->InsertPrimary(rec, &tid));
    VersionRef ref;
    ref.SetRow(std::move(row));
    RefreshIntervals(schema, &ref);
    if (ref.IsCurrent(schema)) {
      TDB_RETURN_NOT_OK(rel->IndexInsertCurrent(rec, tid, false));
    } else {
      TDB_RETURN_NOT_OK(rel->IndexInsertHistory(rec, tid, false));
    }
    ++out.affected;
  }
  TDB_RETURN_NOT_OK(rel->primary()->pager()->Flush());
  env_.catalog->InvalidateStats(stmt.relation);
  out.message = StrPrintf("copied %lld tuples from %s",
                          static_cast<long long>(out.affected),
                          stmt.path.c_str());
  return out;
}

}  // namespace tdb
