#ifndef CHRONOQUEL_EXEC_DML_EXECUTOR_H_
#define CHRONOQUEL_EXEC_DML_EXECUTOR_H_

#include <vector>

#include "core/result_set.h"
#include "exec/eval.h"
#include "exec/exec_env.h"
#include "exec/planner.h"
#include "tquel/ast.h"
#include "tquel/binder.h"

namespace tdb {

/// Executes append / delete / replace with the per-type semantics of
/// Section 4 of the paper:
///
///   static      append inserts; delete erases; replace overwrites.
///   rollback    append inserts [Ts=now, Te=forever); delete stamps Te=now
///               in place; replace = delete + insert.
///   historical  like rollback with valid_from / valid_to (the `valid`
///               clause can override the timestamps).
///   temporal    delete stamps Te=now AND inserts a corrected version with
///               Vt=now; replace additionally inserts the new version — two
///               new versions per replace, the paper's 2x growth rate.
///
/// For two-level relations the same logical operations keep only current
/// versions in the primary store: retired versions are appended to the
/// history store and the new version overwrites the old one in place.
class DmlExecutor {
 public:
  explicit DmlExecutor(const ExecEnv& env)
      : env_(env), eval_(env.now, env.params) {}

  Result<ExecResult> Append(AppendStmt* stmt, const BoundStatement& bound);
  Result<ExecResult> Delete(DeleteStmt* stmt, const BoundStatement& bound);
  Result<ExecResult> Replace(ReplaceStmt* stmt, const BoundStatement& bound);

 private:
  /// A version qualified for mutation.
  struct Victim {
    Tid tid;
    std::vector<uint8_t> rec;
  };

  /// Collects the current versions of `var` (index 0 in `bound`) matching
  /// the statement's where / when clauses.
  Result<std::vector<Victim>> CollectVictims(
      Relation* rel, const Expr* where, const TemporalPred* when,
      const std::vector<BoundVar>& vars);

  /// The effective valid-from/to for new or stamped versions.
  Result<Interval> EffectiveValid(const std::optional<ValidClause>& valid,
                                  const Binding& binding);

  /// Applies `targets` over `base` (user attrs only).
  Result<Row> ApplyTargets(const Schema& schema, const Row& base,
                           const std::vector<TargetItem>& targets,
                           const Binding& binding);

  /// delete semantics for one version; `erase_only` distinguishes delete
  /// from the delete-phase of replace (identical behaviour, kept for
  /// clarity).
  Status RetireVersion(Relation* rel, const Victim& victim,
                       const Interval& valid_override, bool has_valid);

  /// Re-finds a victim whose Tid may be stale (B-tree splits move records).
  Result<Victim> Relocate(Relation* rel, const Victim& victim);

  ExecEnv env_;
  Evaluator eval_;
};

}  // namespace tdb

#endif  // CHRONOQUEL_EXEC_DML_EXECUTOR_H_
