#include "exec/exec_env.h"

#include "util/stringx.h"

namespace tdb {

Result<Relation*> ExecEnv::GetRelation(const std::string& name) const {
  std::string key = ToLower(name);
  auto it = relations->find(key);
  if (it != relations->end()) return it->second.get();
  const RelationMeta* meta = catalog->Find(name);
  if (meta == nullptr) {
    return Status::NotFound("relation '" + name + "' does not exist");
  }
  TDB_ASSIGN_OR_RETURN(
      auto rel, Relation::Open(env, dir, *meta, registry, buffer_frames,
                               journal, storage));
  Relation* ptr = rel.get();
  (*relations)[key] = std::move(rel);
  return ptr;
}

void ExecEnv::CloseRelation(const std::string& name) const {
  relations->erase(ToLower(name));
}

}  // namespace tdb
