#include "exec/morsel.h"

#include <cstdlib>
#include <string_view>

#include "util/stringx.h"

namespace tdb {

namespace {
std::optional<bool> g_vector_override;
}  // namespace

bool ResolveVectorExec(const std::optional<bool>& option) {
  if (g_vector_override.has_value()) return *g_vector_override;
  if (option.has_value()) return *option;
  const char* v = std::getenv("TDB_VECTOR_EXEC");
  return v == nullptr || std::string_view(v) != "0";
}

void SetVectorExecEnabledForTest(std::optional<bool> enabled) {
  g_vector_override = enabled;
}

size_t ResolveMorselCapacity(int option) {
  int64_t cap = 0;
  if (option > 0) {
    cap = option;
  } else {
    const char* v = std::getenv("TDB_MORSEL_CAP");
    if (v == nullptr || !ParseInt64(v, &cap)) cap = 1024;
  }
  if (cap < 1) cap = 1;
  if (cap > 65535) cap = 65535;
  return static_cast<size_t>(cap);
}

}  // namespace tdb
