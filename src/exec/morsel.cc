#include "exec/morsel.h"

#include "core/database.h"

namespace tdb {

namespace {
std::optional<bool> g_vector_override;
}  // namespace

bool ResolveVectorExec(const std::optional<bool>& option) {
  if (g_vector_override.has_value()) return *g_vector_override;
  if (option.has_value()) return *option;
  return DatabaseOptions::FromEnv().vector_exec.value_or(true);
}

void SetVectorExecEnabledForTest(std::optional<bool> enabled) {
  g_vector_override = enabled;
}

size_t ResolveMorselCapacity(int option) {
  int cap = option > 0 ? option : DatabaseOptions::FromEnv().morsel_capacity;
  if (cap < 1) cap = 1024;
  if (cap > 65535) cap = 65535;
  return static_cast<size_t>(cap);
}

}  // namespace tdb
