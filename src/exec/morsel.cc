#include "exec/morsel.h"

#include <cstdlib>
#include <string_view>

#include "util/stringx.h"

namespace tdb {

namespace {
std::optional<bool> g_vector_override;
}  // namespace

bool VectorExecEnabled() {
  if (g_vector_override.has_value()) return *g_vector_override;
  static const bool enabled = [] {
    const char* v = std::getenv("TDB_VECTOR_EXEC");
    return v == nullptr || std::string_view(v) != "0";
  }();
  return enabled;
}

void SetVectorExecEnabledForTest(std::optional<bool> enabled) {
  g_vector_override = enabled;
}

size_t MorselCapacity() {
  static const size_t cap = [] {
    const char* v = std::getenv("TDB_MORSEL_CAP");
    int64_t parsed = 0;
    if (v == nullptr || !ParseInt64(v, &parsed)) return int64_t{1024};
    if (parsed < 1) return int64_t{1};
    if (parsed > 65535) return int64_t{65535};
    return parsed;
  }();
  return cap;
}

}  // namespace tdb
