#ifndef CHRONOQUEL_EXEC_PLAN_H_
#define CHRONOQUEL_EXEC_PLAN_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "exec/compiled_expr.h"
#include "storage/io_stats.h"
#include "tquel/ast.h"
#include "types/timepoint.h"

namespace tdb {

class Relation;
class SecondaryIndex;

/// Runtime statistics accumulated on a plan node while the executor
/// interprets it.  All zero (and `executed` false) for a plan produced by
/// `explain`, which never runs.
struct PlanNodeStats {
  bool executed = false;
  /// Times the operator was (re)opened — inner levels of a nested loop are
  /// reopened once per outer row; a substitution inner probe opens once per
  /// distinct probe key (consecutive equal keys are served from the cache).
  uint64_t loops = 0;
  /// Versions surfaced by the access path (before as-of qualification for
  /// access nodes; before predicate evaluation for filter nodes).
  uint64_t rows_examined = 0;
  /// Rows this node passed to its parent.
  uint64_t rows_emitted = 0;
  /// Page I/O attributed to this node, scoped via IoCounters deltas around
  /// the node's own storage operations (children's I/O is excluded).
  IoCounters io;
  /// Inclusive wall time spent inside this node (children included), summed
  /// over loops.  Populated only when the Database has a metrics registry
  /// wired; stays 0 otherwise so timed renderings remain deterministic.
  uint64_t wall_nanos = 0;
};

/// A node of the physical plan: the tree the planner builds *before*
/// execution and the executor interprets.  Nodes reference expressions in
/// the parsed statement (valid only while it lives) but also pre-render
/// every display string, so an annotated plan attached to an ExecResult can
/// be printed after the statement is gone.
struct PlanNode {
  enum class Kind {
    kSeqScan,       // sequential scan: data + overflow (+ history) pages
    kKeyedLookup,   // hashed / ISAM / B-tree access on the organization key
    kIndexEq,       // secondary-index equality probe
    kRangeScan,     // key-range scan of an order-preserving organization
    kNestedLoop,    // left-deep nested iteration over its levels
    kSubstitution,  // detach outer to a temp, probe keyed inner per temp row
    kHashJoin,      // build a hash table on one side, probe with the other
    kIntervalJoin,  // sort/merge sweep over valid-time intervals (overlap)
    kFilter,        // residual where/when conjuncts applied at one level
    kProject,       // target-list evaluation, unique/sort/into (plan root)
  };

  explicit PlanNode(Kind k) : kind(k) {}
  virtual ~PlanNode() = default;

  Kind kind;
  PlanNodeStats stats;
  /// The cost model's output-cardinality estimate, set only when cost-based
  /// join planning is active.  Negative means "not estimated" and renders
  /// nothing, so paper-mode explain output is byte-identical.
  double est_rows = -1.0;
};

const char* PlanNodeKindName(PlanNode::Kind k);

/// Base of the four leaf access paths: how one tuple variable's versions
/// are produced at its nesting level.  Carries the variable, its relation,
/// and the `current_only` qualifier (skip history stores — set when the
/// statement restricts the variable to current versions).
struct AccessNode : PlanNode {
  explicit AccessNode(Kind k) : PlanNode(k) {}

  int var = -1;               // index into the statement's bound variables
  std::string var_name;       // the range variable, for display
  std::string rel_name;
  Relation* rel = nullptr;    // valid while the owning Database stays open
  bool current_only = false;

  /// `rel:kind` summary fragment, e.g. "bench_h:keyed(current)" — the
  /// historical ExecResult plan-message vocabulary.
  std::string Brief() const;
};

struct SeqScanNode : AccessNode {
  SeqScanNode() : AccessNode(Kind::kSeqScan) {}
};

struct KeyedLookupNode : AccessNode {
  KeyedLookupNode() : AccessNode(Kind::kKeyedLookup) {}
  /// Probe expression; references only variables bound by outer levels.
  const Expr* key_expr = nullptr;
  /// Lowered form of key_expr, built at plan time when compiled evaluation
  /// is enabled and the expression is compilable.
  std::optional<CompiledProgram> key_prog;
  std::string key_text;
};

struct IndexEqNode : AccessNode {
  IndexEqNode() : AccessNode(Kind::kIndexEq) {}
  const Expr* key_expr = nullptr;
  std::optional<CompiledProgram> key_prog;
  std::string key_text;
  SecondaryIndex* index = nullptr;
  std::string index_attr;  // the indexed attribute, for display
};

struct RangeScanNode : AccessNode {
  RangeScanNode() : AccessNode(Kind::kRangeScan) {}
  // Either bound may be null (one-sided range).
  const Expr* lo_expr = nullptr;
  const Expr* hi_expr = nullptr;
  std::optional<CompiledProgram> lo_prog;
  std::optional<CompiledProgram> hi_prog;
  bool lo_inclusive = true;
  bool hi_inclusive = true;
  std::string lo_text;
  std::string hi_text;
};

/// Residual conjuncts applied as its child access node produces versions:
/// the top-level where / when factors whose variables are all bound once
/// this level binds, and that no outer level already applied.
struct FilterNode : PlanNode {
  FilterNode() : PlanNode(Kind::kFilter) {}
  std::vector<const Expr*> where;
  std::vector<const TemporalPred*> when;
  /// Lowered forms of the conjuncts, 1:1 with where / when.  Populated at
  /// plan time only when compiled evaluation is enabled and every conjunct
  /// at this level compiles; otherwise left empty and the executor walks
  /// the ASTs.
  std::vector<CompiledProgram> where_prog;
  std::vector<CompiledProgram> when_prog;
  std::vector<std::string> pred_text;  // rendered, where factors then when
  std::unique_ptr<PlanNode> child;     // the access node this level guards
};

/// Left-deep nested iteration: levels run outermost first; inner levels are
/// reopened per outer row with the outer binding available to their probe
/// expressions.
struct NestedLoopNode : PlanNode {
  NestedLoopNode() : PlanNode(Kind::kNestedLoop) {}
  std::vector<std::unique_ptr<PlanNode>> levels;  // FilterNode or AccessNode
};

/// The Ingres decomposition plan for two-variable queries: one-variable
/// detachment of the outer variable into a temporary relation, then tuple
/// substitution probing the keyed inner variable once per temp row.  The
/// temporary relation's I/O is attributed to this node itself.
struct SubstitutionNode : PlanNode {
  SubstitutionNode() : PlanNode(Kind::kSubstitution) {}
  std::unique_ptr<PlanNode> outer;  // detached into the temp relation
  std::unique_ptr<PlanNode> inner;  // probed per temp row
};

/// The batched hash join (cost-based planning only): the build side runs to
/// completion populating an in-memory table keyed on its join expression,
/// then the probe side streams — vectorized through the morsel machinery
/// when TDB_VECTOR_EXEC is on — looking up matches per row.  `residual`
/// holds the cross-variable conjuncts beyond the consumed equality; its
/// child stays null (both sides are this node's own children).
struct HashJoinNode : PlanNode {
  HashJoinNode() : PlanNode(Kind::kHashJoin) {}
  std::unique_ptr<PlanNode> build;  // FilterNode or AccessNode
  std::unique_ptr<PlanNode> probe;
  const Expr* build_key = nullptr;  // references only the build variable
  const Expr* probe_key = nullptr;  // references only the probe variable
  std::optional<CompiledProgram> build_prog;
  std::optional<CompiledProgram> probe_prog;
  std::string key_text;  // rendered `build = probe` equality
  /// Residual cross conjuncts evaluated per candidate match (child null).
  FilterNode residual;
};

/// The sort/merge temporal interval join (cost-based planning only): both
/// sides materialize, sort by valid-interval start, and a two-pointer sweep
/// emits pairs whose valid intervals overlap — the consumed `a overlap b`
/// conjunct.  Extra cross conjuncts land in `residual` (child null).
struct IntervalJoinNode : PlanNode {
  IntervalJoinNode() : PlanNode(Kind::kIntervalJoin) {}
  std::unique_ptr<PlanNode> left;
  std::unique_ptr<PlanNode> right;
  std::string pred_text;  // rendered `a overlap b`
  FilterNode residual;
};

/// Root of every retrieve plan: evaluates the target list (plus the default
/// or explicit valid interval), applies `unique` and `sort by`, and
/// materializes `into` when present.  A constant plan — no live variables
/// after aggregate folding — has no child and emits exactly one row.
struct ProjectNode : PlanNode {
  ProjectNode() : PlanNode(Kind::kProject) {}
  std::vector<std::string> target_text;
  bool unique = false;
  bool valid_output = false;  // result carries valid_from / valid_to
  std::string into;           // empty: rows go to the caller
  std::string as_of_text;     // empty: the implicit `as of now`
  std::string sort_text;      // empty: unsorted
  std::unique_ptr<PlanNode> child;  // null: constant plan
};

/// A complete physical plan for one retrieve statement, decided entirely
/// before execution.  The rollback point is evaluated at plan time (it is
/// constant within a statement) so the executor and the explain output
/// agree on it.
struct PhysicalPlan {
  std::unique_ptr<ProjectNode> root;

  /// Set on clones the plan cache hands out (ClonePlanForExec): the
  /// statement is hot — it has run before and will likely run again — so
  /// the executor passes history-readahead hints to its version sources.
  bool from_plan_cache = false;

  // The statement's rollback point: `as of` when given, the logical now
  // otherwise (TQuel's default view of transaction time).
  TimePoint as_of_at;
  bool has_through = false;
  TimePoint as_of_through;

  /// Multi-line tree rendering (the `explain` output).  With `with_stats`,
  /// each line is annotated with the node's runtime statistics — the
  /// post-execution form attached to ExecResult.  `with_timing`
  /// additionally appends each node's wall time (the `explain analyze`
  /// form); the benchmark figures never pass it, keeping their stdout
  /// byte-identical whether or not metrics are compiled in and enabled.
  std::string Describe(bool with_stats = false, bool with_timing = false) const;

  /// One-line access-path summary, e.g. "substitution(a:keyed); b:scan" or
  /// "constant" — byte-compatible with the historical ExecResult message.
  std::string Summary() const;
};

/// The access node beneath `node` (through a FilterNode), or the node
/// itself when it already is one.  Null for composite nodes.
const AccessNode* AccessOf(const PlanNode* node);
AccessNode* AccessOf(PlanNode* node);

}  // namespace tdb

#endif  // CHRONOQUEL_EXEC_PLAN_H_
