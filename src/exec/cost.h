#ifndef CHRONOQUEL_EXEC_COST_H_
#define CHRONOQUEL_EXEC_COST_H_

#include <cstdint>

#include "catalog/catalog.h"
#include "core/relation.h"
#include "diskmodel/disk_model.h"
#include "util/status.h"

namespace tdb {

/// Profiles `rel` with one full version scan: counts versions, collects a
/// distinct-value count per user attribute, and records the page counts of
/// the primary and history stores.  The scan goes through the measured
/// pagers (a real read), which is why stats are computed lazily and only
/// when cost-based join planning is active — paper mode never calls this
/// and its page-I/O goldens stay exact.
Result<RelationStats> ComputeRelationStats(Relation* rel);

/// Cached stats for `rel`: returns the catalog's copy, computing and
/// caching it on miss.  The cache is invalidated by DML/DDL against the
/// relation (see Catalog::InvalidateStats), so stats can be stale only in
/// the benign direction — a worse plan, never a wrong answer.
Result<const RelationStats*> GetOrComputeStats(Catalog* catalog,
                                               Relation* rel);

/// The planner's cost model: modeled milliseconds of disk time derived
/// from the diskmodel parameters, plus a small per-row CPU charge so
/// in-memory work (hash probes, merge comparisons) is not free.  All
/// formulas are documented in DESIGN.md §11.
struct CostModel {
  DiskParameters disk;
  /// CPU charge per row handled (build, probe, or comparison).
  double cpu_row_ms = 1e-4;

  /// One random page access: average seek + half rotation + transfer.
  double RandomMs() const {
    return disk.average_seek_ms + disk.rotation_ms / 2 +
           disk.transfer_ms_per_page;
  }
  double SeqMs() const { return disk.sequential_ms_per_page; }
  /// Full-file scan: one random access to reach the file, then sequential.
  double ScanMs(uint64_t pages) const {
    if (pages == 0) return 0;
    return RandomMs() + static_cast<double>(pages - 1) * SeqMs();
  }
  /// One keyed/index probe touching `pages` expected pages, each random.
  double ProbeMs(double pages) const {
    return RandomMs() * (pages < 1.0 ? 1.0 : pages);
  }
};

/// Estimated output cardinality of an equi-join: |L| * |R| / max(d_l, d_r),
/// the textbook uniform-distribution estimate over the join attribute's
/// distinct counts.
double EstimateEqJoinRows(double left_rows, double right_rows,
                          uint64_t left_distinct, uint64_t right_distinct);

/// Estimated output cardinality of a valid-time `overlap` join.  The
/// paper's databases keep long-lived versions (most intervals run to
/// forever), so overlap is common; 0.5 is deliberately coarse — the
/// estimate only ranks plans.
double EstimateOverlapJoinRows(double left_rows, double right_rows);

/// Selectivity of one restriction conjunct: 1/d for an equality against a
/// profiled attribute, 1/3 for anything else (Selinger's catch-all).
double EstimateEqSelectivity(const RelationStats& stats,
                             const std::string& attr);
inline double DefaultSelectivity() { return 1.0 / 3.0; }

}  // namespace tdb

#endif  // CHRONOQUEL_EXEC_COST_H_
