#include "exec/query_executor.h"

#include <algorithm>

#include "storage/heap_file.h"
#include "util/stringx.h"

namespace tdb {

namespace {

/// Infers the output attribute for a target expression (used by
/// `retrieve into` and temp-relation schemas).
Attribute InferAttribute(const std::string& name, const Expr& expr,
                         const std::vector<BoundVar>& vars) {
  Attribute a;
  a.name = name;
  switch (expr.kind) {
    case Expr::Kind::kColumn: {
      const Schema& schema = vars[static_cast<size_t>(expr.var_index)]
                                 .rel->schema;
      a.type = schema.attr(static_cast<size_t>(expr.attr_index)).type;
      a.width = schema.attr(static_cast<size_t>(expr.attr_index)).width;
      return a;
    }
    case Expr::Kind::kConstString:
      a.type = TypeId::kChar;
      a.width = static_cast<uint16_t>(std::max<size_t>(1, expr.str_val.size()));
      return a;
    case Expr::Kind::kConstFloat:
      a.type = TypeId::kFloat8;
      a.width = 8;
      return a;
    case Expr::Kind::kAggregate:
      a.type = (expr.agg == AggFunc::kAvg) ? TypeId::kFloat8 : TypeId::kInt4;
      a.width = TypeWidth(a.type);
      return a;
    default:
      a.type = TypeId::kInt4;
      a.width = 4;
      return a;
  }
}

/// Collects the attribute indexes of `var` referenced by `expr`.
void CollectAttrRefs(const Expr* expr, int var, std::set<int>* out) {
  if (expr == nullptr) return;
  if (expr->kind == Expr::Kind::kColumn) {
    if (expr->var_index == var) out->insert(expr->attr_index);
    return;
  }
  CollectAttrRefs(expr->left.get(), var, out);
  CollectAttrRefs(expr->right.get(), var, out);
  CollectAttrRefs(expr->agg_arg.get(), var, out);
  CollectAttrRefs(expr->agg_where.get(), var, out);
}

}  // namespace

bool QueryExecutor::QualifiesAsOf(const Interval& tx) const {
  if (!has_as_of_) return true;
  if (!has_through_) return tx.Contains(as_of_at_);
  // `as of t1 through t2`: current at any moment of the closed range.
  return tx.Overlaps(Interval(as_of_at_, as_of_through_)) ||
         tx.Contains(as_of_through_);
}

Result<bool> QueryExecutor::ApplyFilters(const Binding& binding,
                                         const std::set<int>& bound_vars,
                                         const std::set<int>& outer_vars) {
  auto covered_now = [&](const std::set<int>& vs) {
    // All variables bound, and at least one NOT bound before this level
    // (otherwise an outer level already applied the filter).
    for (int v : vs) {
      if (bound_vars.count(v) == 0) return false;
    }
    for (int v : vs) {
      if (outer_vars.count(v) == 0) return true;
    }
    return vs.empty();  // constant predicates apply at the innermost level 0
  };
  for (const Conjunct& c : where_conjuncts_) {
    if (!covered_now(c.vars)) continue;
    TDB_ASSIGN_OR_RETURN(bool ok, eval_.EvalBool(*c.expr, binding));
    if (!ok) return false;
  }
  for (const TemporalConjunct& c : when_conjuncts_) {
    if (!covered_now(c.vars)) continue;
    TDB_ASSIGN_OR_RETURN(bool ok, eval_.EvalPred(*c.pred, binding));
    if (!ok) return false;
  }
  return true;
}

Result<AccessSpec> QueryExecutor::SpecFor(int var, const AccessChoice& choice,
                                          const Binding& binding) const {
  AccessSpec spec;
  spec.current_only = vars_[static_cast<size_t>(var)].current_only;
  switch (choice.kind) {
    case AccessChoice::Kind::kScan:
      spec.kind = AccessSpec::Kind::kScan;
      return spec;
    case AccessChoice::Kind::kRange: {
      spec.kind = AccessSpec::Kind::kRange;
      spec.lo_inclusive = choice.lo_inclusive;
      spec.hi_inclusive = choice.hi_inclusive;
      if (choice.lo_expr != nullptr) {
        TDB_ASSIGN_OR_RETURN(Value lo, eval_.Eval(*choice.lo_expr, binding));
        spec.lo = std::move(lo);
      }
      if (choice.hi_expr != nullptr) {
        TDB_ASSIGN_OR_RETURN(Value hi, eval_.Eval(*choice.hi_expr, binding));
        spec.hi = std::move(hi);
      }
      return spec;
    }
    case AccessChoice::Kind::kKeyed:
      spec.kind = AccessSpec::Kind::kKeyed;
      break;
    case AccessChoice::Kind::kIndexEq:
      spec.kind = AccessSpec::Kind::kIndexEq;
      spec.index = choice.index;
      break;
  }
  TDB_ASSIGN_OR_RETURN(spec.key, eval_.Eval(*choice.key_expr, binding));
  return spec;
}

std::string QueryExecutor::DescribeChoice(int var,
                                          const AccessChoice& choice) const {
  const char* kind = "scan";
  switch (choice.kind) {
    case AccessChoice::Kind::kScan:
      kind = "scan";
      break;
    case AccessChoice::Kind::kKeyed:
      kind = "keyed";
      break;
    case AccessChoice::Kind::kIndexEq:
      kind = "index";
      break;
    case AccessChoice::Kind::kRange:
      kind = "range";
      break;
  }
  std::string note = StrPrintf(
      "%s:%s", vars_[static_cast<size_t>(var)].rel->meta().name.c_str(), kind);
  if (vars_[static_cast<size_t>(var)].current_only) note += "(current)";
  return note;
}

Status QueryExecutor::IterateVar(int var, const std::set<int>& outer_vars,
                                 Binding* binding, const EmitFn& body) {
  Relation* rel = vars_[static_cast<size_t>(var)].rel;
  AccessChoice choice = ChooseAccess(var, rel, where_conjuncts_, outer_vars);
  plan_notes_.push_back(DescribeChoice(var, choice));
  TDB_ASSIGN_OR_RETURN(AccessSpec spec, SpecFor(var, choice, *binding));
  TDB_ASSIGN_OR_RETURN(auto src, VersionSource::Create(rel, std::move(spec)));

  std::set<int> bound_vars = outer_vars;
  bound_vars.insert(var);

  while (true) {
    TDB_ASSIGN_OR_RETURN(bool have, src->Next());
    if (!have) break;
    (*binding)[static_cast<size_t>(var)] = &src->ref();
    bool pass = true;
    if (HasTransactionTime(rel->schema().db_type()) &&
        !QualifiesAsOf(src->ref().tx)) {
      pass = false;
    }
    if (pass) {
      TDB_ASSIGN_OR_RETURN(pass, ApplyFilters(*binding, bound_vars,
                                              outer_vars));
    }
    if (pass) {
      TDB_RETURN_NOT_OK(body(*binding));
    }
  }
  (*binding)[static_cast<size_t>(var)] = nullptr;
  return Status::OK();
}

Status QueryExecutor::Nested(size_t level, std::set<int> bound_vars,
                             Binding* binding, const EmitFn& emit) {
  if (level == vars_.size()) return emit(*binding);
  int var = static_cast<int>(level);
  return IterateVar(var, bound_vars, binding, [&](const Binding&) -> Status {
    std::set<int> next = bound_vars;
    next.insert(var);
    return Nested(level + 1, std::move(next), binding, emit);
  });
}

Status QueryExecutor::Substitution(int outer, int inner,
                                   const AccessChoice& inner_choice,
                                   Binding* binding, const EmitFn& emit) {
  Relation* outer_rel = vars_[static_cast<size_t>(outer)].rel;
  const Schema& oschema = outer_rel->schema();
  plan_notes_.push_back(
      "substitution(" + DescribeChoice(inner, inner_choice) + ")");

  // ---- one-variable detachment: project the outer variable's qualifying
  // versions into a temporary relation ----
  std::set<int> proj;
  for (const TargetItem& t : stmt_->targets) {
    CollectAttrRefs(t.expr.get(), outer, &proj);
  }
  for (const Conjunct& c : where_conjuncts_) {
    CollectAttrRefs(c.expr, outer, &proj);
  }
  // The implicit time attributes travel along for when / as-of / valid
  // evaluation against the temp rows.
  for (size_t i = oschema.num_user_attrs(); i < oschema.num_attrs(); ++i) {
    proj.insert(static_cast<int>(i));
  }
  std::vector<int> proj_attrs(proj.begin(), proj.end());

  std::vector<Attribute> temp_attrs;
  for (size_t i = 0; i < proj_attrs.size(); ++i) {
    Attribute a = oschema.attr(static_cast<size_t>(proj_attrs[i]));
    a.name = StrPrintf("a%zu", i);  // positional names avoid reserved ones
    a.implicit = false;
    temp_attrs.push_back(std::move(a));
  }
  TDB_ASSIGN_OR_RETURN(Schema temp_schema,
                       Schema::CreateStatic(std::move(temp_attrs)));

  std::string temp_name = StrPrintf("__temp%d", temp_counter_++);
  std::string temp_path = env_.dir + "/" + temp_name + ".dat";
  RecordLayout temp_layout;
  temp_layout.record_size = temp_schema.record_size();
  TDB_ASSIGN_OR_RETURN(
      auto temp_pager,
      Pager::Open(env_.env, temp_path, env_.registry->ForFile(temp_name),
                  env_.buffer_frames));
  TDB_RETURN_NOT_OK(temp_pager->Reset());
  TDB_ASSIGN_OR_RETURN(auto temp, HeapFile::Open(std::move(temp_pager),
                                                 temp_layout,
                                                 IoCategory::kTemp));

  std::set<int> none;
  TDB_RETURN_NOT_OK(IterateVar(outer, none, binding,
                               [&](const Binding& b) -> Status {
    const VersionRef* ref = b[static_cast<size_t>(outer)];
    Row trow;
    trow.reserve(proj_attrs.size());
    for (int ai : proj_attrs) {
      trow.push_back(ref->row[static_cast<size_t>(ai)]);
    }
    TDB_ASSIGN_OR_RETURN(auto rec, EncodeRecord(temp_schema, trow));
    return temp->Insert(rec.data(), rec.size(), nullptr);
  }));

  // ---- tuple substitution: probe the inner variable per temp row ----
  std::set<int> outer_set = {outer};
  VersionRef outer_ref;  // reconstructed full-schema version
  Status status = Status::OK();
  // Consecutive temp rows often probe the same key (all versions of one
  // tuple share it); the matching inner versions are cached so the chain is
  // read once per distinct key, as Ingres achieves by sorting.
  bool have_cached_key = false;
  Value cached_key;
  std::vector<VersionRef> cached_matches;
  {
    TDB_ASSIGN_OR_RETURN(auto cur, temp->Scan());
    while (status.ok()) {
      TDB_ASSIGN_OR_RETURN(bool have, cur->Next());
      if (!have) break;
      TDB_ASSIGN_OR_RETURN(Row trow, DecodeRecord(temp_schema,
                                                  cur->record().data(),
                                                  cur->record().size()));
      // Expand into a full-schema row (unprojected attributes default).
      Row full(oschema.num_attrs());
      for (size_t i = 0; i < oschema.num_attrs(); ++i) {
        const Attribute& a = oschema.attr(i);
        switch (a.type) {
          case TypeId::kChar:
            full[i] = Value::Char("");
            break;
          case TypeId::kFloat8:
            full[i] = Value::Float8(0);
            break;
          case TypeId::kTime:
            full[i] = Value::Time(TimePoint(0));
            break;
          default:
            full[i] = Value::Int4(0);
        }
      }
      for (size_t i = 0; i < proj_attrs.size(); ++i) {
        full[static_cast<size_t>(proj_attrs[i])] = trow[i];
      }
      outer_ref.row = std::move(full);
      RefreshIntervals(oschema, &outer_ref);
      (*binding)[static_cast<size_t>(outer)] = &outer_ref;

      TDB_ASSIGN_OR_RETURN(AccessSpec spec,
                           SpecFor(inner, inner_choice, *binding));
      Relation* inner_rel = vars_[static_cast<size_t>(inner)].rel;
      if (!have_cached_key || !cached_key.Equals(spec.key)) {
        cached_key = spec.key;
        have_cached_key = true;
        cached_matches.clear();
        TDB_ASSIGN_OR_RETURN(auto src, VersionSource::Create(inner_rel,
                                                             std::move(spec)));
        while (true) {
          TDB_ASSIGN_OR_RETURN(bool have_inner, src->Next());
          if (!have_inner) break;
          cached_matches.push_back(src->ref());
        }
      }
      std::set<int> both = {outer, inner};
      for (const VersionRef& iref : cached_matches) {
        (*binding)[static_cast<size_t>(inner)] = &iref;
        bool pass = true;
        if (HasTransactionTime(inner_rel->schema().db_type()) &&
            !QualifiesAsOf(iref.tx)) {
          pass = false;
        }
        if (pass) {
          TDB_ASSIGN_OR_RETURN(pass, ApplyFilters(*binding, both, outer_set));
        }
        if (pass) {
          status = emit(*binding);
          if (!status.ok()) break;
        }
      }
      (*binding)[static_cast<size_t>(inner)] = nullptr;
    }
  }
  (*binding)[static_cast<size_t>(outer)] = nullptr;
  temp.reset();  // flush before deleting
  (void)env_.env->DeleteFile(temp_path);
  return status;
}

namespace {

/// Accumulator for one aggregate group.
struct AggAccumulator {
  int64_t count = 0;
  double sum = 0;
  bool sum_is_float = false;
  bool have_minmax = false;
  Value minv;
  Value maxv;

  Status Add(const Value& v) {
    ++count;
    if (v.is_numeric()) {
      sum += v.AsDouble();
      if (v.type() == TypeId::kFloat8) sum_is_float = true;
    }
    if (!have_minmax) {
      minv = maxv = v;
      have_minmax = true;
    } else {
      TDB_ASSIGN_OR_RETURN(int cmin, Value::Compare(v, minv));
      if (cmin < 0) minv = v;
      TDB_ASSIGN_OR_RETURN(int cmax, Value::Compare(v, maxv));
      if (cmax > 0) maxv = v;
    }
    return Status::OK();
  }

  Value Finish(AggFunc func) const {
    switch (func) {
      case AggFunc::kCount:
        return Value::Int4(count);
      case AggFunc::kAny:
        return Value::Int4(count > 0 ? 1 : 0);
      case AggFunc::kSum:
        return sum_is_float ? Value::Float8(sum)
                            : Value::Int4(static_cast<int64_t>(sum));
      case AggFunc::kAvg:
        return Value::Float8(count > 0 ? sum / static_cast<double>(count)
                                       : 0);
      case AggFunc::kMin:
        return have_minmax ? minv : Value::Int4(0);
      case AggFunc::kMax:
        return have_minmax ? maxv : Value::Int4(0);
    }
    return Value::Int4(0);
  }
};

}  // namespace

Status QueryExecutor::FoldAggregate(Expr* expr, const BoundStatement& bound) {
  if (expr == nullptr) return Status::OK();
  if (expr->kind != Expr::Kind::kAggregate) {
    TDB_RETURN_NOT_OK(FoldAggregate(expr->left.get(), bound));
    TDB_RETURN_NOT_OK(FoldAggregate(expr->right.get(), bound));
    return Status::OK();
  }
  std::set<int> agg_vars;
  CollectExprVars(expr->agg_arg.get(), &agg_vars);
  CollectExprVars(expr->agg_by.get(), &agg_vars);
  CollectExprVars(expr->agg_where.get(), &agg_vars);
  if (agg_vars.size() != 1) {
    return Status::NotSupported(
        "aggregates must reference exactly one tuple variable");
  }
  int var = *agg_vars.begin();
  Relation* rel = vars_[static_cast<size_t>(var)].rel;
  const Schema& schema = rel->schema();

  // Aggregates are independent one-variable subqueries over the state of
  // the relation at the statement's rollback point (`as of`, defaulting to
  // now): versions whose transaction interval covers the rollback point and
  // — for interval relations — that are valid at it.  `by` aggregates
  // accumulate per group.
  AccessSpec spec;
  spec.kind = AccessSpec::Kind::kScan;
  TDB_ASSIGN_OR_RETURN(auto src, VersionSource::Create(rel, spec));
  Binding binding(vars_.size(), nullptr);

  std::map<std::string, AggAccumulator> groups;
  while (true) {
    TDB_ASSIGN_OR_RETURN(bool have, src->Next());
    if (!have) break;
    const VersionRef& ref = src->ref();
    if (HasTransactionTime(schema.db_type()) && !QualifiesAsOf(ref.tx)) {
      continue;
    }
    if (HasValidTime(schema.db_type()) &&
        schema.entity_kind() == EntityKind::kInterval &&
        !ref.valid.Contains(as_of_at_)) {
      continue;
    }
    binding[static_cast<size_t>(var)] = &src->ref();
    if (expr->agg_where != nullptr) {
      TDB_ASSIGN_OR_RETURN(bool ok, eval_.EvalBool(*expr->agg_where, binding));
      if (!ok) continue;
    }
    std::string group;
    if (expr->agg_by != nullptr) {
      TDB_ASSIGN_OR_RETURN(Value by, eval_.Eval(*expr->agg_by, binding));
      group = by.ToString();
    }
    TDB_ASSIGN_OR_RETURN(Value v, eval_.Eval(*expr->agg_arg, binding));
    TDB_RETURN_NOT_OK(groups[group].Add(v));
  }

  AggFunc func = expr->agg;
  if (expr->agg_by != nullptr) {
    // Keep the node; evaluation looks the group up per output row.
    auto result = std::make_shared<std::map<std::string, Value>>();
    for (const auto& [key, acc] : groups) {
      (*result)[key] = acc.Finish(func);
    }
    expr->agg_groups = std::move(result);
    return Status::OK();
  }

  // Plain aggregate: replace the node with a constant.
  Value v = groups[""].Finish(func);
  expr->agg_arg.reset();
  expr->agg_where.reset();
  if (v.type() == TypeId::kChar) {
    expr->kind = Expr::Kind::kConstString;
    expr->str_val = v.ToString();
  } else if (v.type() == TypeId::kFloat8) {
    expr->kind = Expr::Kind::kConstFloat;
    expr->float_val = v.AsDouble();
  } else {
    expr->kind = Expr::Kind::kConstInt;
    expr->int_val = v.AsInt();
  }
  return Status::OK();
}

Status QueryExecutor::FoldAggregates(RetrieveStmt* stmt,
                                     const BoundStatement& bound) {
  for (TargetItem& item : stmt->targets) {
    TDB_RETURN_NOT_OK(FoldAggregate(item.expr.get(), bound));
  }
  return Status::OK();
}

Result<ExecResult> QueryExecutor::Retrieve(RetrieveStmt* stmt,
                                           const BoundStatement& bound) {
  stmt_ = stmt;
  vars_.clear();
  where_conjuncts_.clear();
  when_conjuncts_.clear();
  plan_notes_.clear();

  for (const BoundVar& bv : bound.vars) {
    VarInfo info;
    TDB_ASSIGN_OR_RETURN(info.rel, env_.GetRelation(bv.rel->name));
    vars_.push_back(info);
  }
  SplitWhere(stmt->where.get(), &where_conjuncts_);
  SplitWhen(stmt->when.get(), &when_conjuncts_);

  // TQuel semantics: a query without an explicit `as of` views relations
  // with transaction time as of *now*, so superseded versions never leak
  // into results.  (Relations without transaction time are unaffected —
  // QualifiesAsOf is only consulted for them.)
  has_as_of_ = true;
  has_through_ = false;
  as_of_at_ = env_.now;
  if (stmt->as_of.has_value()) {
    Binding empty;
    TDB_ASSIGN_OR_RETURN(Interval at,
                         eval_.EvalTemporal(*stmt->as_of->at, empty));
    as_of_at_ = at.from;
    if (stmt->as_of->through != nullptr) {
      has_through_ = true;
      TDB_ASSIGN_OR_RETURN(Interval th,
                           eval_.EvalTemporal(*stmt->as_of->through, empty));
      as_of_through_ = th.from;
    }
  }
  bool as_of_is_now = !has_through_ && as_of_at_ == env_.now;
  for (size_t i = 0; i < vars_.size(); ++i) {
    vars_[i].current_only = WantsCurrentOnly(static_cast<int>(i),
                                             vars_[i].rel, when_conjuncts_,
                                             as_of_is_now);
  }

  TDB_RETURN_NOT_OK(FoldAggregates(stmt, bound));

  // Folding aggregates may leave the statement with no live variable
  // references at all (e.g. `retrieve (n = count(p.id))`) — such a query
  // emits exactly one row.
  std::set<int> live_vars;
  for (const TargetItem& t : stmt->targets) {
    CollectExprVars(t.expr.get(), &live_vars);
  }
  CollectExprVars(stmt->where.get(), &live_vars);
  CollectTemporalPredVars(stmt->when.get(), &live_vars);
  if (stmt->valid.has_value()) {
    CollectTemporalExprVars(stmt->valid->from.get(), &live_vars);
    CollectTemporalExprVars(stmt->valid->to.get(), &live_vars);
  }
  bool no_live_vars = live_vars.empty();

  // Does the result carry a valid interval?
  bool valid_output = stmt->valid.has_value();
  if (!valid_output && !vars_.empty()) {
    valid_output = true;
    for (const VarInfo& v : vars_) {
      if (!HasValidTime(v.rel->schema().db_type())) valid_output = false;
    }
  }

  ResultSet result;
  for (const TargetItem& t : stmt->targets) result.columns.push_back(t.name);
  if (valid_output) {
    result.columns.push_back(kAttrValidFrom);
    result.columns.push_back(kAttrValidTo);
  }

  std::set<std::string> seen;  // for `unique`
  Status emit_error = Status::OK();
  EmitFn emit = [&](const Binding& binding) -> Status {
    Row row;
    row.reserve(stmt->targets.size() + 2);
    for (const TargetItem& t : stmt->targets) {
      TDB_ASSIGN_OR_RETURN(Value v, eval_.Eval(*t.expr, binding));
      row.push_back(std::move(v));
    }
    if (valid_output) {
      Interval iv(TimePoint::Beginning(), TimePoint::Forever());
      if (stmt->valid.has_value()) {
        TDB_ASSIGN_OR_RETURN(Interval from,
                             eval_.EvalTemporal(*stmt->valid->from, binding));
        if (stmt->valid->at) {
          iv = Interval::Event(from.from);
        } else {
          TDB_ASSIGN_OR_RETURN(Interval to,
                               eval_.EvalTemporal(*stmt->valid->to, binding));
          iv = Interval(from.from, to.from);
        }
      } else {
        // Default: the overlap of every participating tuple's lifespan;
        // vacuous rows (no shared instant) are dropped.
        bool first = true;
        for (const VersionRef* ref : binding) {
          if (ref == nullptr) continue;
          iv = first ? ref->valid : Interval::Intersect(iv, ref->valid);
          first = false;
        }
        if (iv.empty()) return Status::OK();
      }
      row.push_back(Value::Time(iv.from));
      row.push_back(Value::Time(iv.to));
    }
    if (stmt->unique) {
      std::string key;
      for (const Value& v : row) {
        key += v.ToString();
        key += '\x1f';
      }
      if (!seen.insert(std::move(key)).second) return Status::OK();
    }
    result.rows.push_back(std::move(row));
    return Status::OK();
  };

  Binding binding(vars_.size(), nullptr);
  if (vars_.empty() || no_live_vars) {
    TDB_RETURN_NOT_OK(emit(binding));
  } else if (vars_.size() == 1) {
    std::set<int> none;
    TDB_RETURN_NOT_OK(IterateVar(0, none, &binding, emit));
  } else if (vars_.size() == 2) {
    // Prefer tuple substitution into a keyed inner variable.
    int inner = -1;
    AccessChoice inner_choice;
    for (int cand = 0; cand < 2; ++cand) {
      std::set<int> avail = {1 - cand};
      AccessChoice c = ChooseAccess(cand, vars_[static_cast<size_t>(cand)].rel,
                                    where_conjuncts_, avail);
      if (c.kind == AccessChoice::Kind::kKeyed ||
          (c.kind == AccessChoice::Kind::kIndexEq && inner < 0)) {
        inner = cand;
        inner_choice = c;
        if (c.kind == AccessChoice::Kind::kKeyed) break;
      }
    }
    if (inner >= 0) {
      TDB_RETURN_NOT_OK(
          Substitution(1 - inner, inner, inner_choice, &binding, emit));
    } else {
      TDB_RETURN_NOT_OK(Nested(0, {}, &binding, emit));
    }
  } else {
    TDB_RETURN_NOT_OK(Nested(0, {}, &binding, emit));
  }
  TDB_RETURN_NOT_OK(emit_error);

  // `sort by` orders the result by named output columns (stable, so
  // secondary keys listed later act as tie breakers of earlier ones).
  if (!stmt->sort_by.empty()) {
    for (SortKey& key : stmt->sort_by) {
      key.target_index = -1;
      for (size_t i = 0; i < result.columns.size(); ++i) {
        if (EqualsIgnoreCase(result.columns[i], key.target)) {
          key.target_index = static_cast<int>(i);
          break;
        }
      }
      if (key.target_index < 0) {
        return Status::BindError("sort by: no output column named '" +
                                 key.target + "'");
      }
    }
    Status sort_error = Status::OK();
    std::stable_sort(result.rows.begin(), result.rows.end(),
                     [&](const Row& a, const Row& b) {
                       for (const SortKey& key : stmt->sort_by) {
                         size_t i = static_cast<size_t>(key.target_index);
                         auto c = Value::Compare(a[i], b[i]);
                         if (!c.ok()) {
                           sort_error = c.status();
                           return false;
                         }
                         if (*c != 0) return key.descending ? *c > 0 : *c < 0;
                       }
                       return false;
                     });
    TDB_RETURN_NOT_OK(sort_error);
  }

  ExecResult out;
  if (!stmt->into.empty()) {
    // Materialize into a new relation: historical when a valid interval was
    // computed, plain static otherwise.
    std::vector<Attribute> attrs;
    for (const TargetItem& t : stmt->targets) {
      attrs.push_back(InferAttribute(t.name, *t.expr, bound.vars));
    }
    DbType type = valid_output ? DbType::kHistorical : DbType::kStatic;
    TDB_ASSIGN_OR_RETURN(Schema schema, Schema::Create(std::move(attrs), type));
    RelationMeta meta;
    meta.name = stmt->into;
    meta.schema = schema;
    meta.org = Organization::kHeap;
    TDB_RETURN_NOT_OK(env_.catalog->Create(meta));
    TDB_ASSIGN_OR_RETURN(Relation * rel, env_.GetRelation(stmt->into));
    for (const Row& row : result.rows) {
      TDB_ASSIGN_OR_RETURN(auto rec, EncodeRecord(schema, row));
      Tid tid;
      TDB_RETURN_NOT_OK(rel->InsertPrimary(rec, &tid));
    }
    TDB_RETURN_NOT_OK(rel->primary()->pager()->Flush());
    out.affected = static_cast<int64_t>(result.rows.size());
    out.message = StrPrintf("retrieved %lld tuples into %s",
                            static_cast<long long>(out.affected),
                            stmt->into.c_str());
  } else {
    out.affected = static_cast<int64_t>(result.rows.size());
    out.result = std::move(result);
  }
  if (out.message.empty()) {
    out.message = "plan: " + (plan_notes_.empty()
                                  ? std::string("constant")
                                  : Join(plan_notes_, "; "));
  }
  return out;
}

}  // namespace tdb
