#include "exec/query_executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <set>
#include <unordered_map>

#include "exec/worker_pool.h"
#include "obs/metrics.h"
#include "storage/heap_file.h"
#include "storage/page.h"
#include "util/stringx.h"

namespace tdb {

namespace {

/// Pages per parallel-scan chunk.  Fixed (never derived from the thread
/// count) so the chunk boundaries — and therefore every per-chunk merge —
/// are identical at any TDB_EXEC_THREADS, which is what makes row order,
/// stats, and IoCounters reproducible across thread counts.
constexpr uint32_t kParallelChunkPages = 4;

/// True when the planner lowered every conjunct of this filter — the
/// all-or-nothing compiled-path gate both EvalFilter variants share.
bool FilterCompiled(const FilterNode& filter) {
  return filter.where_prog.size() == filter.where.size() &&
         filter.when_prog.size() == filter.when.size() &&
         (!filter.where_prog.empty() || !filter.when_prog.empty());
}

/// Accumulates the scope's wall time into a node's inclusive wall_nanos.
/// Disabled (no clock reads at all) unless the executor runs with timing —
/// i.e. unless the Database has a metrics registry wired.
class ScopedNodeTimer {
 public:
  ScopedNodeTimer(bool enabled, PlanNodeStats* stats)
      : stats_(enabled ? stats : nullptr) {
    if (stats_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedNodeTimer() {
    if (stats_ == nullptr) return;
    stats_->wall_nanos += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }

  ScopedNodeTimer(const ScopedNodeTimer&) = delete;
  ScopedNodeTimer& operator=(const ScopedNodeTimer&) = delete;

 private:
  PlanNodeStats* stats_;
  std::chrono::steady_clock::time_point start_;
};

/// Sums a fixed set of per-file IoCounters — the files one plan node's
/// storage operations can touch — so scoping an operation's I/O costs a
/// handful of array adds instead of a registry-wide map walk per tuple.
/// Correct because a VersionSource (or temp-relation operation) only ever
/// performs I/O through the pagers registered here; every other file's
/// counters are provably unchanged across the window.
class IoWindow {
 public:
  void Add(const IoCounters* c) {
    if (c != nullptr) files_.push_back(c);
  }
  void AddRelation(Relation* rel) {
    Add(rel->primary()->pager()->counters());
    if (rel->history() != nullptr) Add(rel->history()->pager()->counters());
    if (rel->anchors() != nullptr) Add(rel->anchors()->pager()->counters());
    for (const auto& idx : rel->indexes()) {
      Add(idx->current_counters());
      Add(idx->history_counters());
    }
  }
  void Begin() { Snapshot(&before_); }
  /// Adds the delta since the last Begin() into `into`.
  void End(IoCounters* into) {
    IoCounters after;
    Snapshot(&after);
    AccumulateDelta(into, before_, after);
  }

 private:
  void Snapshot(IoCounters* out) const {
    out->Reset();
    for (const IoCounters* c : files_) *out += *c;
  }

  std::vector<const IoCounters*> files_;
  IoCounters before_;
};

/// Little-endian int32 load, matching the record codec in types/schema.cc.
int32_t GetI32LE(const uint8_t* p) {
  uint32_t v = static_cast<uint32_t>(p[0]) |
               (static_cast<uint32_t>(p[1]) << 8) |
               (static_cast<uint32_t>(p[2]) << 16) |
               (static_cast<uint32_t>(p[3]) << 24);
  return static_cast<int32_t>(v);
}

/// Infers the output attribute for a target expression (used by
/// `retrieve into` and temp-relation schemas).
Attribute InferAttribute(const std::string& name, const Expr& expr,
                         const std::vector<BoundVar>& vars) {
  Attribute a;
  a.name = name;
  switch (expr.kind) {
    case Expr::Kind::kColumn: {
      const Schema& schema = vars[static_cast<size_t>(expr.var_index)]
                                 .rel->schema;
      a.type = schema.attr(static_cast<size_t>(expr.attr_index)).type;
      a.width = schema.attr(static_cast<size_t>(expr.attr_index)).width;
      return a;
    }
    case Expr::Kind::kConstString:
      a.type = TypeId::kChar;
      a.width = static_cast<uint16_t>(std::max<size_t>(1, expr.str_val.size()));
      return a;
    case Expr::Kind::kConstFloat:
      a.type = TypeId::kFloat8;
      a.width = 8;
      return a;
    case Expr::Kind::kAggregate:
      a.type = (expr.agg == AggFunc::kAvg) ? TypeId::kFloat8 : TypeId::kInt4;
      a.width = TypeWidth(a.type);
      return a;
    default:
      a.type = TypeId::kInt4;
      a.width = 4;
      return a;
  }
}

/// Collects the attribute indexes of `var` referenced by `expr`.
void CollectAttrRefs(const Expr* expr, int var, std::set<int>* out) {
  if (expr == nullptr) return;
  if (expr->kind == Expr::Kind::kColumn) {
    if (expr->var_index == var) out->insert(expr->attr_index);
    return;
  }
  CollectAttrRefs(expr->left.get(), var, out);
  CollectAttrRefs(expr->right.get(), var, out);
  CollectAttrRefs(expr->agg_arg.get(), var, out);
  CollectAttrRefs(expr->agg_where.get(), var, out);
}

}  // namespace

bool QueryExecutor::QualifiesAsOf(const Interval& tx) const {
  if (!has_through_) return tx.Contains(as_of_at_);
  // `as of t1 through t2`: current at any moment of the closed range.
  return tx.Overlaps(Interval(as_of_at_, as_of_through_)) ||
         tx.Contains(as_of_through_);
}

Result<bool> QueryExecutor::EvalFilter(const FilterNode& filter,
                                       const Binding& binding) {
  return EvalFilterWith(filter, filter.where_prog, filter.when_prog,
                        FilterCompiled(filter), binding);
}

Result<bool> QueryExecutor::EvalFilterWith(
    const FilterNode& filter, const std::vector<CompiledProgram>& where_prog,
    const std::vector<CompiledProgram>& when_prog, bool compiled,
    const Binding& binding) const {
  // Compiled fast path: the planner lowered every conjunct of this level.
  if (compiled) {
    for (const CompiledProgram& prog : where_prog) {
      TDB_ASSIGN_OR_RETURN(bool ok, prog.EvalBool(binding, env_.now));
      if (!ok) return false;
    }
    for (const CompiledProgram& prog : when_prog) {
      TDB_ASSIGN_OR_RETURN(bool ok, prog.EvalPred(binding, env_.now));
      if (!ok) return false;
    }
    return true;
  }
  for (const Expr* e : filter.where) {
    TDB_ASSIGN_OR_RETURN(bool ok, eval_.EvalBool(*e, binding));
    if (!ok) return false;
  }
  for (const TemporalPred* p : filter.when) {
    TDB_ASSIGN_OR_RETURN(bool ok, eval_.EvalPred(*p, binding));
    if (!ok) return false;
  }
  return true;
}

Result<AccessSpec> QueryExecutor::SpecFor(const AccessNode& node,
                                          const Binding& binding) const {
  AccessSpec spec;
  spec.current_only = node.current_only;
  // Hot (plan-cached) statements prime history reads through the shared
  // pool; the depth lever is the storage readahead setting.
  if (hot_plan_) spec.readahead_hint = env_.storage.readahead;
  switch (node.kind) {
    case PlanNode::Kind::kSeqScan:
      spec.kind = AccessSpec::Kind::kScan;
      return spec;
    case PlanNode::Kind::kRangeScan: {
      const auto& range = static_cast<const RangeScanNode&>(node);
      spec.kind = AccessSpec::Kind::kRange;
      spec.lo_inclusive = range.lo_inclusive;
      spec.hi_inclusive = range.hi_inclusive;
      if (range.lo_expr != nullptr) {
        TDB_ASSIGN_OR_RETURN(
            Value lo, range.lo_prog.has_value()
                          ? range.lo_prog->Eval(binding, env_.now)
                          : eval_.Eval(*range.lo_expr, binding));
        spec.lo = std::move(lo);
      }
      if (range.hi_expr != nullptr) {
        TDB_ASSIGN_OR_RETURN(
            Value hi, range.hi_prog.has_value()
                          ? range.hi_prog->Eval(binding, env_.now)
                          : eval_.Eval(*range.hi_expr, binding));
        spec.hi = std::move(hi);
      }
      return spec;
    }
    case PlanNode::Kind::kKeyedLookup: {
      const auto& keyed = static_cast<const KeyedLookupNode&>(node);
      spec.kind = AccessSpec::Kind::kKeyed;
      TDB_ASSIGN_OR_RETURN(spec.key,
                           keyed.key_prog.has_value()
                               ? keyed.key_prog->Eval(binding, env_.now)
                               : eval_.Eval(*keyed.key_expr, binding));
      return spec;
    }
    case PlanNode::Kind::kIndexEq: {
      const auto& ix = static_cast<const IndexEqNode&>(node);
      spec.kind = AccessSpec::Kind::kIndexEq;
      spec.index = ix.index;
      TDB_ASSIGN_OR_RETURN(spec.key,
                           ix.key_prog.has_value()
                               ? ix.key_prog->Eval(binding, env_.now)
                               : eval_.Eval(*ix.key_expr, binding));
      return spec;
    }
    default:
      return Status::Internal("SpecFor: not an access node");
  }
}

Status QueryExecutor::ExecuteAccess(AccessNode* node, Binding* binding,
                                    const EmitFn& body) {
  ScopedNodeTimer timer(timing_, &node->stats);
  node->stats.executed = true;
  ++node->stats.loops;
  TDB_ASSIGN_OR_RETURN(AccessSpec spec, SpecFor(*node, *binding));

  IoWindow win;
  win.AddRelation(node->rel);
  win.Begin();
  auto src_result = VersionSource::Create(node->rel, std::move(spec));
  win.End(&node->stats.io);
  if (!src_result.ok()) return src_result.status();
  std::unique_ptr<VersionSource> src = std::move(*src_result);

  bool tx_time = HasTransactionTime(node->rel->schema().db_type());
  // Row counters accumulate locally and land on the node once per scan,
  // keeping the stats stores out of the inner loop.
  uint64_t examined = 0;
  uint64_t emitted = 0;
  Status status = Status::OK();
  while (true) {
    win.Begin();
    auto have_result = src->Next();
    win.End(&node->stats.io);
    if (!have_result.ok()) {
      status = have_result.status();
      break;
    }
    if (!*have_result) break;
    ++examined;
    (*binding)[static_cast<size_t>(node->var)] = &src->ref();
    if (tx_time && !QualifiesAsOf(src->ref().tx)) continue;
    ++emitted;
    status = body(*binding);
    if (!status.ok()) break;
  }
  (*binding)[static_cast<size_t>(node->var)] = nullptr;
  node->stats.rows_examined += examined;
  node->stats.rows_emitted += emitted;
  return status;
}

std::unique_ptr<QueryExecutor::VecScratch> QueryExecutor::AcquireVecScratch() {
  if (vec_pool_.empty()) return std::make_unique<VecScratch>();
  auto s = std::move(vec_pool_.back());
  vec_pool_.pop_back();
  return s;
}

void QueryExecutor::ReleaseVecScratch(std::unique_ptr<VecScratch> s) {
  vec_pool_.push_back(std::move(s));
}

void QueryExecutor::FilterAsOfBatch(const Schema& schema, const Morsel& m,
                                    SelVec* sel) const {
  const uint16_t so = schema.offset(static_cast<size_t>(schema.tx_start_index()));
  const uint16_t eo = schema.offset(static_cast<size_t>(schema.tx_stop_index()));
  size_t out = 0;
  for (uint16_t idx : *sel) {
    const uint8_t* rec = m.rec(idx);
    Interval tx(TimePoint(GetI32LE(rec + so)), TimePoint(GetI32LE(rec + eo)));
    (*sel)[out] = idx;
    out += QualifiesAsOf(tx) ? 1 : 0;
  }
  sel->resize(out);
}

Status QueryExecutor::EvalFilterBatch(const FilterNode& filter,
                                      const Schema& schema, int var,
                                      const Morsel& m, Binding* binding,
                                      VersionRef* scratch, SelVec* sel) {
  return EvalFilterBatchWith(filter, filter.where_prog, filter.when_prog,
                             FilterCompiled(filter), schema, var, m, binding,
                             scratch, sel);
}

Status QueryExecutor::EvalFilterBatchWith(
    const FilterNode& filter, const std::vector<CompiledProgram>& where_prog,
    const std::vector<CompiledProgram>& when_prog, bool compiled,
    const Schema& schema, int var, const Morsel& m, Binding* binding,
    VersionRef* scratch, SelVec* sel) const {
  // Compiled fast path, mirroring EvalFilter's all-or-nothing gate: every
  // conjunct runs as a batch kernel (or the program's generic row loop),
  // refining `sel` in short-circuit order.
  if (compiled) {
    for (const CompiledProgram& prog : where_prog) {
      if (sel->empty()) return Status::OK();
      TDB_RETURN_NOT_OK(prog.EvalBoolBatch(schema, var, m, binding, scratch,
                                           env_.now, sel));
    }
    for (const CompiledProgram& prog : when_prog) {
      if (sel->empty()) return Status::OK();
      TDB_RETURN_NOT_OK(prog.EvalPredBatch(schema, var, m, binding, scratch,
                                           env_.now, sel));
    }
    return Status::OK();
  }
  // AST fallback: interpret per row over the selection.
  (*binding)[static_cast<size_t>(var)] = scratch;
  size_t out = 0;
  for (uint16_t idx : *sel) {
    scratch->BindRaw(schema, m.rec(idx));
    scratch->in_history = m.in_history;
    bool pass = true;
    for (const Expr* e : filter.where) {
      TDB_ASSIGN_OR_RETURN(pass, eval_.EvalBool(*e, *binding));
      if (!pass) break;
    }
    if (pass) {
      for (const TemporalPred* p : filter.when) {
        TDB_ASSIGN_OR_RETURN(pass, eval_.EvalPred(*p, *binding));
        if (!pass) break;
      }
    }
    if (pass) (*sel)[out++] = idx;
  }
  (*binding)[static_cast<size_t>(var)] = nullptr;
  sel->resize(out);
  return Status::OK();
}

Status QueryExecutor::ExecuteAccessVectorized(AccessNode* node,
                                              FilterNode* filter,
                                              Binding* binding,
                                              const EmitFn& body) {
  ScopedNodeTimer timer(timing_, &node->stats);
  node->stats.executed = true;
  ++node->stats.loops;
  TDB_ASSIGN_OR_RETURN(AccessSpec spec, SpecFor(*node, *binding));

  IoWindow win;
  win.AddRelation(node->rel);
  win.Begin();
  auto src_result = VersionSource::Create(node->rel, std::move(spec));
  win.End(&node->stats.io);
  if (!src_result.ok()) return src_result.status();
  std::unique_ptr<VersionSource> src = std::move(*src_result);

  const Schema& schema = node->rel->schema();
  const bool tx_time = HasTransactionTime(schema.db_type());
  const size_t cap = env_.morsel_cap;
  const size_t var = static_cast<size_t>(node->var);

  std::unique_ptr<VecScratch> scratch = AcquireVecScratch();
  Morsel& m = scratch->morsel;
  SelVec& sel = scratch->sel;
  VersionRef& ref = scratch->ref;

  uint64_t examined = 0;
  uint64_t emitted = 0;
  uint64_t filter_examined = 0;
  uint64_t filter_emitted = 0;
  Status status = Status::OK();
  while (status.ok()) {
    win.Begin();
    auto n_result = src->NextBatch(&m, cap);
    win.End(&node->stats.io);
    if (!n_result.ok()) {
      status = n_result.status();
      break;
    }
    const size_t n = *n_result;
    if (n == 0) break;
    examined += n;
    FillIdentity(&sel, n);
    if (tx_time) FilterAsOfBatch(schema, m, &sel);
    emitted += sel.size();
    if (filter != nullptr) {
      filter_examined += sel.size();
      status = EvalFilterBatch(*filter, schema, node->var, m, binding, &ref,
                               &sel);
      if (!status.ok()) break;
      filter_emitted += sel.size();
    }
    // Emit the survivors tuple-wise; the consumer never sees morsels, so
    // every downstream path (join recursion, projection) is unchanged.
    for (uint16_t idx : sel) {
      ref.BindRaw(schema, m.rec(idx));
      ref.tid = m.tid(idx);
      ref.in_history = m.in_history;
      (*binding)[var] = &ref;
      status = body(*binding);
      if (!status.ok()) break;
    }
  }
  (*binding)[var] = nullptr;
  node->stats.rows_examined += examined;
  node->stats.rows_emitted += emitted;
  if (filter != nullptr) {
    filter->stats.rows_examined += filter_examined;
    filter->stats.rows_emitted += filter_emitted;
  }
  ReleaseVecScratch(std::move(scratch));
  return status;
}

Status QueryExecutor::ExecuteLevelVectorized(PlanNode* level, Binding* binding,
                                             const EmitFn& body) {
  if (level->kind == PlanNode::Kind::kFilter) {
    auto* filter = static_cast<FilterNode*>(level);
    ScopedNodeTimer timer(timing_, &filter->stats);
    filter->stats.executed = true;
    ++filter->stats.loops;
    return ExecuteAccessVectorized(
        static_cast<AccessNode*>(filter->child.get()), filter, binding, body);
  }
  return ExecuteAccessVectorized(static_cast<AccessNode*>(level), nullptr,
                                 binding, body);
}

// ---------------------------------------------------------------------------
// Morsel-driven intra-query parallelism.
//
// A parallel scan replays the serial scan's exact page-I/O accounting.  The
// serial engine reads a store's pages 0..N-1 through its single buffer
// frame, so its counters are: a free hit if page 0 was already resident, a
// dirty-eviction write if some other page was resident and dirty, one
// physical read per non-resident page, and the last page left resident.
// Workers instead read through Pager::ReadPageInto — resident frames serve
// hits, everything else is a counted read into worker-private memory that
// leaves the frames untouched.  RunParallelScan brackets the dispatch with
// a normalization (below) and a re-prime so the counter deltas, observed
// only at this coordinator level, are bit-identical to serial.
// ---------------------------------------------------------------------------

/// The row-building half of Retrieve's emit path: evaluates the target list
/// and the valid-interval output columns for one fully-bound row.  Copyable
/// so each parallel task evaluates through private program copies (compiled
/// operand stacks are per-object scratch); the ordering-sensitive half —
/// `unique` dedup and the result push — stays on the coordinator sink.
struct RowProjector {
  const RetrieveStmt* stmt = nullptr;
  bool valid_output = false;
  std::vector<std::optional<CompiledProgram>> target_progs;
  std::optional<CompiledProgram> valid_from_prog;
  std::optional<CompiledProgram> valid_to_prog;
  TimePoint now;
  const Evaluator* eval = nullptr;

  /// Builds the output row; false = drop it (vacuous default valid
  /// interval), mirroring the serial emit path exactly.
  Result<bool> BuildRow(const Binding& binding, Row* row) const {
    row->clear();
    row->reserve(stmt->targets.size() + 2);
    for (size_t ti = 0; ti < stmt->targets.size(); ++ti) {
      Value v;
      if (target_progs[ti].has_value()) {
        TDB_ASSIGN_OR_RETURN(v, target_progs[ti]->Eval(binding, now));
      } else {
        TDB_ASSIGN_OR_RETURN(v, eval->Eval(*stmt->targets[ti].expr, binding));
      }
      row->push_back(std::move(v));
    }
    if (valid_output) {
      Interval iv(TimePoint::Beginning(), TimePoint::Forever());
      if (stmt->valid.has_value()) {
        Interval from;
        if (valid_from_prog.has_value()) {
          TDB_ASSIGN_OR_RETURN(from, valid_from_prog->EvalInterval(binding,
                                                                   now));
        } else {
          TDB_ASSIGN_OR_RETURN(from,
                               eval->EvalTemporal(*stmt->valid->from, binding));
        }
        if (stmt->valid->at) {
          iv = Interval::Event(from.from);
        } else {
          Interval to;
          if (valid_to_prog.has_value()) {
            TDB_ASSIGN_OR_RETURN(to, valid_to_prog->EvalInterval(binding,
                                                                 now));
          } else {
            TDB_ASSIGN_OR_RETURN(to,
                                 eval->EvalTemporal(*stmt->valid->to, binding));
          }
          iv = Interval(from.from, to.from);
        }
      } else {
        // Default: the overlap of every participating tuple's lifespan;
        // vacuous rows (no shared instant) are dropped.
        bool first = true;
        for (const VersionRef* ref : binding) {
          if (ref == nullptr) continue;
          iv = first ? ref->valid : Interval::Intersect(iv, ref->valid);
          first = false;
        }
        if (iv.empty()) return false;
      }
      row->push_back(Value::Time(iv.from));
      row->push_back(Value::Time(iv.to));
    }
    return true;
  }
};

/// Per-worker scratch for a parallel scan: a private binding, morsel,
/// selection vector, scratch ref, filter-program copies, and the page
/// buffer ReadPageInto fills (so workers never share buffer frames).
struct QueryExecutor::ScanWorkerState {
  ScanWorkerState(const Binding& b, uint32_t page_size)
      : binding(b), page_buf(page_size) {}

  Binding binding;  // the scanned variable's slot is rebound per row
  Morsel morsel;
  SelVec sel;
  VersionRef ref;
  // Lazily-taken private copies of the fused filter's compiled programs:
  // their operand stacks are scratch, so the plan node's own copies cannot
  // be shared across workers.
  bool progs_init = false;
  bool compiled = false;
  std::vector<CompiledProgram> where_prog;
  std::vector<CompiledProgram> when_prog;
  std::vector<uint8_t> page_buf;  // sized to the file's page size
};

std::optional<QueryExecutor::ParScan> QueryExecutor::TryPlanParallelScan(
    PlanNode* level) {
  if (env_.exec_threads < 2 || !vectorized_) return std::nullopt;
  // An enabled I/O trace logs every page touch in serial order; concurrent
  // workers would interleave it, so tracing pins the serial engine (this is
  // also what keeps the figure drivers' traced goldens byte-identical).
  if (env_.registry->trace()->enabled()) return std::nullopt;
  ParScan ps;
  PlanNode* leaf = level;
  if (level->kind == PlanNode::Kind::kFilter) {
    ps.filter = static_cast<FilterNode*>(level);
    leaf = ps.filter->child.get();
  }
  if (leaf->kind != PlanNode::Kind::kSeqScan) return std::nullopt;
  ps.node = static_cast<AccessNode*>(leaf);
  ps.chunks = CutScanChunks(ps.node->rel, ps.node->current_only,
                            kParallelChunkPages);
  if (ps.chunks.size() < 2) return std::nullopt;
  for (const ScanChunk& c : ps.chunks) {
    // The I/O-replay bracketing below is derived for the paper's
    // single-frame pager; larger pools keep the serial engine.
    if (!c.use_cursor && c.file->pager()->num_frames() != 1) {
      return std::nullopt;
    }
  }
  return ps;
}

Status QueryExecutor::RunParallelScan(ParScan* ps, const Binding& binding,
                                      const ParallelRowFn& row) {
  AccessNode* node = ps->node;
  FilterNode* filter = ps->filter;
  ScopedNodeTimer timer(timing_, &node->stats);
  std::optional<ScopedNodeTimer> filter_timer;
  if (filter != nullptr) {
    filter_timer.emplace(timing_, &filter->stats);
    filter->stats.executed = true;
    ++filter->stats.loops;
  }
  node->stats.executed = true;
  ++node->stats.loops;

  IoWindow win;
  win.AddRelation(node->rel);
  win.Begin();

  // Normalize each page-range-chunked store's buffer frame so the workers'
  // frame-bypassing reads reproduce the serial counts: an empty frame needs
  // nothing; page 0 resident stays (the serial scan's first read — and the
  // workers' ReadPageInto(0) — hit it for free); any other resident page,
  // which the serial scan would evict (writing it first if dirty) before
  // its cold reads, is flushed and dropped up front.
  std::vector<StorageFile*> chunked;
  for (const ScanChunk& c : ps->chunks) {
    if (c.use_cursor) continue;
    if (!chunked.empty() && chunked.back() == c.file) continue;
    chunked.push_back(c.file);
  }
  Status status = Status::OK();
  for (StorageFile* f : chunked) {
    std::vector<uint32_t> resident = f->pager()->ResidentPages();
    if (resident.empty()) continue;
    status = (resident.size() == 1 && resident[0] == 0)
                 ? f->pager()->Flush()
                 : f->pager()->FlushAndDrop();
    if (!status.ok()) break;
  }

  const size_t ntasks = ps->chunks.size();
  std::vector<ChunkStats> stats(ntasks);
  std::vector<Status> errors(ntasks, Status::OK());
  if (status.ok()) {
    // Work stealing: workers claim chunk indexes from a shared counter, so
    // a skewed chunk (one giant store) never idles the rest of the pool.
    std::atomic<size_t> next{0};
    std::atomic<bool> abort{false};
    const int workers = static_cast<int>(
        std::min<size_t>(static_cast<size_t>(env_.exec_threads), ntasks));
    WorkerPool::Shared().Run(workers, [&](int) {
      ScanWorkerState ws(binding, env_.storage.page_size);
      while (true) {
        const size_t t = next.fetch_add(1, std::memory_order_relaxed);
        if (t >= ntasks) break;
        if (abort.load(std::memory_order_relaxed)) continue;
        Status st =
            ProcessScanChunk(*ps, ps->chunks[t], t, &ws, row, &stats[t]);
        if (!st.ok()) {
          errors[t] = std::move(st);
          abort.store(true, std::memory_order_relaxed);
        }
      }
    });
    // Re-prime: the serial scan ends with each store's last page resident
    // (its read already counted), so install it without counting before
    // the window closes.
    for (StorageFile* f : chunked) {
      const uint32_t pages = f->page_count();
      if (pages == 0) continue;
      status = f->pager()->PrimeFrame(pages - 1, f->ScanCategory(pages - 1));
      if (!status.ok()) break;
    }
  }
  win.End(&node->stats.io);
  TDB_RETURN_NOT_OK(status);
  // First error in chunk order — the same failure a serial scan reports.
  for (size_t t = 0; t < ntasks; ++t) TDB_RETURN_NOT_OK(errors[t]);

  ChunkStats total;
  for (const ChunkStats& cs : stats) {
    total.examined += cs.examined;
    total.emitted += cs.emitted;
    total.filter_examined += cs.filter_examined;
    total.filter_emitted += cs.filter_emitted;
  }
  node->stats.rows_examined += total.examined;
  node->stats.rows_emitted += total.emitted;
  if (filter != nullptr) {
    filter->stats.rows_examined += total.filter_examined;
    filter->stats.rows_emitted += total.filter_emitted;
  }
  return Status::OK();
}

Status QueryExecutor::ProcessScanChunk(const ParScan& ps,
                                       const ScanChunk& chunk, size_t task,
                                       ScanWorkerState* ws,
                                       const ParallelRowFn& row,
                                       ChunkStats* stats) const {
  AccessNode* node = ps.node;
  FilterNode* filter = ps.filter;
  const Schema& schema = node->rel->schema();
  const bool tx_time = HasTransactionTime(schema.db_type());
  const size_t var = static_cast<size_t>(node->var);
  if (filter != nullptr && !ws->progs_init) {
    ws->progs_init = true;
    ws->compiled = FilterCompiled(*filter);
    if (ws->compiled) {
      ws->where_prog = filter->where_prog;
      ws->when_prog = filter->when_prog;
    }
  }
  Morsel& m = ws->morsel;
  SelVec& sel = ws->sel;
  VersionRef& ref = ws->ref;
  Binding* binding = &ws->binding;

  auto flush_batch = [&]() -> Status {
    const size_t n = m.size();
    stats->examined += n;
    FillIdentity(&sel, n);
    if (tx_time) FilterAsOfBatch(schema, m, &sel);
    stats->emitted += sel.size();
    if (filter != nullptr) {
      stats->filter_examined += sel.size();
      TDB_RETURN_NOT_OK(EvalFilterBatchWith(*filter, ws->where_prog,
                                            ws->when_prog, ws->compiled,
                                            schema, node->var, m, binding,
                                            &ref, &sel));
      stats->filter_emitted += sel.size();
    }
    for (uint16_t idx : sel) {
      ref.BindRaw(schema, m.rec(idx));
      ref.tid = m.tid(idx);
      ref.in_history = m.in_history;
      (*binding)[var] = &ref;
      TDB_RETURN_NOT_OK(row(task, binding));
    }
    (*binding)[var] = nullptr;
    return Status::OK();
  };

  if (chunk.use_cursor) {
    // Whole-store chunk (ISAM/B-tree primaries): this worker is the pager's
    // only user, so the ordinary cursor path — buffer frame included —
    // behaves exactly as it does serially.
    TDB_ASSIGN_OR_RETURN(auto cur, chunk.file->Scan());
    while (true) {
      m.Clear();
      TDB_ASSIGN_OR_RETURN(size_t n, cur->NextBatch(&m, env_.morsel_cap));
      if (n == 0) break;
      m.in_history = chunk.in_history;
      TDB_RETURN_NOT_OK(flush_batch());
    }
    return Status::OK();
  }

  // Page-range chunk: replay the linear cursor's walk — pages ascending,
  // used slots ascending — against a private copy of each page.
  const uint16_t record_size = chunk.file->layout().record_size;
  Pager* pager = chunk.file->pager();
  for (uint32_t pno = chunk.begin; pno < chunk.end; ++pno) {
    TDB_RETURN_NOT_OK(pager->ReadPageInto(pno, chunk.file->ScanCategory(pno),
                                          ws->page_buf.data()));
    Page page(ws->page_buf.data(), record_size, pager->usable_size());
    m.Clear();
    m.in_history = chunk.in_history;
    for (uint16_t s = 0; s < page.capacity(); ++s) {
      if (page.SlotUsed(s)) m.AppendSlice(page.RecordAt(s), Tid{pno, s});
    }
    if (m.empty()) continue;
    TDB_RETURN_NOT_OK(flush_batch());
  }
  return Status::OK();
}

Status QueryExecutor::ExecuteLevel(PlanNode* level, Binding* binding,
                                   const EmitFn& body) {
  if (level->kind == PlanNode::Kind::kFilter) {
    auto* filter = static_cast<FilterNode*>(level);
    ScopedNodeTimer timer(timing_, &filter->stats);
    filter->stats.executed = true;
    ++filter->stats.loops;
    auto* access = static_cast<AccessNode*>(filter->child.get());
    return ExecuteAccess(access, binding, [&](const Binding& b) -> Status {
      ++filter->stats.rows_examined;
      TDB_ASSIGN_OR_RETURN(bool pass, EvalFilter(*filter, b));
      if (!pass) return Status::OK();
      ++filter->stats.rows_emitted;
      return body(b);
    });
  }
  return ExecuteAccess(static_cast<AccessNode*>(level), binding, body);
}

Status QueryExecutor::ExecuteNestedLoop(NestedLoopNode* node, size_t level,
                                        Binding* binding, const EmitFn& emit) {
  ScopedNodeTimer timer(timing_ && level == 0, &node->stats);
  if (level == 0) {
    node->stats.executed = true;
    ++node->stats.loops;
    if (vectorized_) {
      // Batching routing rule: a non-innermost level holds zero-copy morsel
      // slices pinned in its relation's buffer frame while the levels below
      // it run, so it may batch only when no inner level reads the same
      // relation (a self-join's inner rescans would evict the pinned frame
      // and change the outer's page re-read counts).  The innermost level
      // is always safe: its per-row body performs no page I/O.
      std::set<const Relation*> rels;
      nlj_distinct_rels_ = true;
      for (const auto& lv : node->levels) {
        if (!rels.insert(AccessOf(lv.get())->rel).second) {
          nlj_distinct_rels_ = false;
          break;
        }
      }
    }
  }
  if (level == node->levels.size()) {
    ++node->stats.rows_emitted;
    return emit(*binding);
  }
  const bool innermost = level + 1 == node->levels.size();
  const bool batch = vectorized_ && (innermost || nlj_distinct_rels_);
  const EmitFn next = [&](const Binding&) -> Status {
    return ExecuteNestedLoop(node, level + 1, binding, emit);
  };
  return batch ? ExecuteLevelVectorized(node->levels[level].get(), binding,
                                        next)
               : ExecuteLevel(node->levels[level].get(), binding, next);
}

Status QueryExecutor::ExecuteSubstitution(SubstitutionNode* node,
                                          Binding* binding,
                                          const EmitFn& emit) {
  ScopedNodeTimer timer(timing_, &node->stats);
  obs::TraceSpan span(env_.registry->metrics(), "exec.substitution");
  node->stats.executed = true;
  ++node->stats.loops;

  AccessNode* outer_access = AccessOf(node->outer.get());
  AccessNode* inner_access = AccessOf(node->inner.get());
  FilterNode* inner_filter =
      node->inner->kind == PlanNode::Kind::kFilter
          ? static_cast<FilterNode*>(node->inner.get())
          : nullptr;
  int outer_var = outer_access->var;
  int inner_var = inner_access->var;
  Relation* outer_rel = outer_access->rel;
  Relation* inner_rel = inner_access->rel;
  const Schema& oschema = outer_rel->schema();

  // ---- one-variable detachment: project the outer variable's qualifying
  // versions into a temporary relation ----
  std::set<int> proj;
  for (const TargetItem& t : stmt_->targets) {
    CollectAttrRefs(t.expr.get(), outer_var, &proj);
  }
  CollectAttrRefs(stmt_->where.get(), outer_var, &proj);
  // The implicit time attributes travel along for when / as-of / valid
  // evaluation against the temp rows.
  for (size_t i = oschema.num_user_attrs(); i < oschema.num_attrs(); ++i) {
    proj.insert(static_cast<int>(i));
  }
  std::vector<int> proj_attrs(proj.begin(), proj.end());

  std::vector<Attribute> temp_attrs;
  for (size_t i = 0; i < proj_attrs.size(); ++i) {
    Attribute a = oschema.attr(static_cast<size_t>(proj_attrs[i]));
    a.name = StrPrintf("a%zu", i);  // positional names avoid reserved ones
    a.implicit = false;
    temp_attrs.push_back(std::move(a));
  }
  TDB_ASSIGN_OR_RETURN(Schema temp_schema,
                       Schema::CreateStatic(std::move(temp_attrs)));

  std::string temp_name =
      StrPrintf("__temp%s%d", env_.temp_tag.c_str(), temp_counter_++);
  std::string temp_path = env_.dir + "/" + temp_name + ".dat";
  RecordLayout temp_layout;
  temp_layout.record_size = temp_schema.record_size();
  // The substitution node's own I/O all flows through the temp file, so its
  // window watches just that one counter block.
  IoWindow temp_win;
  IoCounters* temp_counters = env_.registry->ForFile(temp_name);
  temp_win.Add(temp_counters);
  temp_win.Begin();
  // Detachment temporaries are scratch: deleted at the end of the query and
  // orphaned harmlessly by a crash (the catalog never references them), so
  // they deliberately bypass the journal.
  auto temp_pager_result = Pager::Open(env_.env, temp_path, temp_counters,
                                       env_.buffer_frames,
                                       /*journal=*/nullptr, env_.storage);
  temp_win.End(&node->stats.io);
  if (!temp_pager_result.ok()) return temp_pager_result.status();
  TDB_RETURN_NOT_OK((*temp_pager_result)->Reset());
  TDB_ASSIGN_OR_RETURN(auto temp,
                       HeapFile::Open(std::move(*temp_pager_result),
                                      temp_layout, IoCategory::kTemp));

  Row trow;  // scratch, reused across outer rows
  const EmitFn detach = [&](const Binding& b) -> Status {
    const VersionRef* ref = b[static_cast<size_t>(outer_var)];
    trow.clear();
    trow.reserve(proj_attrs.size());
    for (int ai : proj_attrs) {
      trow.push_back(ref->attr(static_cast<size_t>(ai)));
    }
    TDB_ASSIGN_OR_RETURN(auto rec, EncodeRecord(temp_schema, trow));
    temp_win.Begin();
    Status st = temp->Insert(rec.data(), rec.size(), nullptr);
    temp_win.End(&node->stats.io);
    return st;
  };
  // The detachment body writes only to the temp pager, never to the outer
  // relation's files, so the outer level may batch with zero-copy morsels.
  TDB_RETURN_NOT_OK(vectorized_
                        ? ExecuteLevelVectorized(node->outer.get(), binding,
                                                 detach)
                        : ExecuteLevel(node->outer.get(), binding, detach));

  // ---- tuple substitution: probe the inner variable per temp row ----
  VersionRef outer_ref;  // reconstructed full-schema version
  Status status = Status::OK();
  // Consecutive temp rows often probe the same key (all versions of one
  // tuple share it); the matching inner versions are cached so the chain is
  // read once per distinct key, as Ingres achieves by sorting.
  bool have_cached_key = false;
  Value cached_key;
  std::vector<VersionRef> cached_matches;
  bool inner_tx_time = HasTransactionTime(inner_rel->schema().db_type());
  IoWindow inner_win;
  inner_win.AddRelation(inner_rel);
  {
    temp_win.Begin();
    auto cur_result = temp->Scan();
    temp_win.End(&node->stats.io);
    if (!cur_result.ok()) return cur_result.status();
    auto cur = std::move(*cur_result);
    while (status.ok()) {
      temp_win.Begin();
      auto have_result = cur->Next();
      temp_win.End(&node->stats.io);
      if (!have_result.ok()) return have_result.status();
      if (!*have_result) break;
      // Expand into a full-schema row (unprojected attributes default),
      // reusing outer_ref's row storage across temp rows.
      Row& full = outer_ref.MutableRow();
      full.resize(oschema.num_attrs());
      for (size_t i = 0; i < oschema.num_attrs(); ++i) {
        const Attribute& a = oschema.attr(i);
        switch (a.type) {
          case TypeId::kChar:
            full[i] = Value::Char("");
            break;
          case TypeId::kFloat8:
            full[i] = Value::Float8(0);
            break;
          case TypeId::kTime:
            full[i] = Value::Time(TimePoint(0));
            break;
          default:
            full[i] = Value::Int4(0);
        }
      }
      for (size_t i = 0; i < proj_attrs.size(); ++i) {
        full[static_cast<size_t>(proj_attrs[i])] =
            DecodeAttr(temp_schema, i, cur->record().data());
      }
      RefreshIntervals(oschema, &outer_ref);
      (*binding)[static_cast<size_t>(outer_var)] = &outer_ref;

      TDB_ASSIGN_OR_RETURN(AccessSpec spec, SpecFor(*inner_access, *binding));
      if (!have_cached_key || !cached_key.Equals(spec.key)) {
        cached_key = spec.key;
        have_cached_key = true;
        cached_matches.clear();
        inner_access->stats.executed = true;
        ++inner_access->stats.loops;
        inner_win.Begin();
        auto src_result = VersionSource::Create(inner_rel, std::move(spec));
        if (src_result.ok()) {
          auto& src = *src_result;
          while (true) {
            auto have_inner = src->Next();
            if (!have_inner.ok()) {
              status = have_inner.status();
              break;
            }
            if (!*have_inner) break;
            ++inner_access->stats.rows_examined;
            // Materialize: the source's ref borrows cursor bytes that die on
            // the next advance, so the cache needs an owning copy.
            cached_matches.push_back(src->ref().Clone());
          }
        }
        inner_win.End(&inner_access->stats.io);
        if (!src_result.ok()) return src_result.status();
        TDB_RETURN_NOT_OK(status);
      }
      for (const VersionRef& iref : cached_matches) {
        (*binding)[static_cast<size_t>(inner_var)] = &iref;
        bool pass = true;
        if (inner_tx_time && !QualifiesAsOf(iref.tx)) pass = false;
        if (pass) ++inner_access->stats.rows_emitted;
        if (pass && inner_filter != nullptr) {
          inner_filter->stats.executed = true;
          ++inner_filter->stats.rows_examined;
          TDB_ASSIGN_OR_RETURN(pass, EvalFilter(*inner_filter, *binding));
          if (pass) ++inner_filter->stats.rows_emitted;
        }
        if (pass) {
          ++node->stats.rows_emitted;
          status = emit(*binding);
          if (!status.ok()) break;
        }
      }
      (*binding)[static_cast<size_t>(inner_var)] = nullptr;
    }
  }
  (*binding)[static_cast<size_t>(outer_var)] = nullptr;
  temp_win.Begin();
  temp.reset();  // flush before deleting
  (void)env_.env->DeleteFile(temp_path);
  temp_win.End(&node->stats.io);
  return status;
}

namespace {

/// Hash key for one join-key value, normalized so that cross-type numeric
/// equality (int vs float) lands on the same bucket — matching the kEq
/// semantics the nested-loop plans evaluate.  Numerics key on the bit
/// pattern of their double value (one memcpy, no formatting) with -0.0
/// collapsed into +0.0.  Reuses the caller's buffer; returns false for a
/// key that can never compare equal under kEq (NaN), which the caller
/// skips on both sides.
bool NormalizedJoinKey(const Value& v, std::string* out) {
  if (v.is_numeric()) {
    double d = v.AsDouble();
    if (d != d) return false;   // NaN: kEq is always false
    if (d == 0.0) d = 0.0;      // -0.0 == +0.0 under kEq
    out->assign(1 + sizeof(double), 'n');
    std::memcpy(out->data() + 1, &d, sizeof(double));
    return true;
  }
  if (v.type() == TypeId::kChar) {
    out->assign(1, 's');
  } else {
    out->assign(1, 't');
  }
  out->append(v.ToString());
  return true;
}

}  // namespace

Status QueryExecutor::ExecuteHashJoin(HashJoinNode* node, Binding* binding,
                                      const EmitFn& emit) {
  ScopedNodeTimer timer(timing_, &node->stats);
  obs::TraceSpan span(env_.registry->metrics(), "exec.hash_join");
  node->stats.executed = true;
  ++node->stats.loops;

  AccessNode* build_access = AccessOf(node->build.get());
  size_t build_var = static_cast<size_t>(build_access->var);
  bool has_residual =
      !node->residual.where.empty() || !node->residual.when.empty();

  // ---- build: run the build side to completion into the hash table.  The
  // per-row body only evaluates the key and copies the version into the
  // table — no page I/O — so morsel batching is always safe here.
  std::unordered_map<std::string, std::vector<VersionRef>> table;
  std::string keybuf;
  std::optional<ParScan> par_build = TryPlanParallelScan(node->build.get());
  if (par_build.has_value()) {
    // Parallel build: workers evaluate keys and clone versions into
    // per-chunk staging vectors; the coordinator inserts them in chunk
    // order, so every bucket's match list keeps the serial row order.
    struct TaskBuild {
      std::optional<CompiledProgram> prog;  // private build-key program
      std::string keybuf;
      std::vector<std::pair<std::string, VersionRef>> out;
    };
    std::vector<std::unique_ptr<TaskBuild>> tasks(par_build->chunks.size());
    ParallelRowFn build_chunk_row = [&](size_t task, Binding* b) -> Status {
      auto& t = tasks[task];
      if (t == nullptr) {
        t = std::make_unique<TaskBuild>();
        t->prog = node->build_prog;
      }
      Value key;
      if (t->prog.has_value()) {
        TDB_ASSIGN_OR_RETURN(key, t->prog->Eval(*b, env_.now));
      } else {
        TDB_ASSIGN_OR_RETURN(key, eval_.Eval(*node->build_key, *b));
      }
      if (!NormalizedJoinKey(key, &t->keybuf)) return Status::OK();
      t->out.emplace_back(t->keybuf, (*b)[build_var]->Clone());
      return Status::OK();
    };
    TDB_RETURN_NOT_OK(RunParallelScan(&*par_build, *binding, build_chunk_row));
    for (auto& t : tasks) {
      if (t == nullptr) continue;
      for (auto& [k, v] : t->out) table[k].push_back(std::move(v));
    }
  } else {
    const EmitFn build_row = [&](const Binding& b) -> Status {
      Value key;
      if (node->build_prog.has_value()) {
        TDB_ASSIGN_OR_RETURN(key, node->build_prog->Eval(b, env_.now));
      } else {
        TDB_ASSIGN_OR_RETURN(key, eval_.Eval(*node->build_key, b));
      }
      if (!NormalizedJoinKey(key, &keybuf)) return Status::OK();
      // Materialize: the producer's ref borrows cursor/morsel bytes that
      // die on the next advance, so the table needs an owning copy.
      table[keybuf].push_back(b[build_var]->Clone());
      return Status::OK();
    };
    TDB_RETURN_NOT_OK(
        vectorized_
            ? ExecuteLevelVectorized(node->build.get(), binding, build_row)
            : ExecuteLevel(node->build.get(), binding, build_row));
  }

  // ---- probe: stream the probe side, looking up matches per row.  The
  // emit body does no page I/O (into-materialization runs after iteration),
  // so the probe side batches too.
  uint64_t candidates = 0;
  uint64_t matches = 0;
  Status status = Status::OK();
  // A hash join always sits directly under the plan root, so `emit` is the
  // root's projector+sink pair; the parallel probe needs them split (rows
  // built on workers, ordering-sensitive sink on the coordinator).
  std::optional<ParScan> par_probe =
      root_proj_ != nullptr && root_sink_ != nullptr
          ? TryPlanParallelScan(node->probe.get())
          : std::nullopt;
  if (par_probe.has_value()) {
    // Freeze the table for concurrent probing: materialize every entry's
    // row up front so the workers' attr() reads never race on the refs'
    // lazy-decode caches.
    for (auto& [k, vec] : table) {
      (void)k;
      for (VersionRef& v : vec) v.FullRow();
    }
    const bool residual_compiled = FilterCompiled(node->residual);
    struct TaskProbe {
      std::optional<CompiledProgram> prog;  // private probe-key program
      std::vector<CompiledProgram> res_where;
      std::vector<CompiledProgram> res_when;
      RowProjector proj;
      std::string keybuf;
      std::vector<Row> rows;
      uint64_t candidates = 0;
      uint64_t matches = 0;
    };
    std::vector<std::unique_ptr<TaskProbe>> tasks(par_probe->chunks.size());
    ParallelRowFn probe_chunk_row = [&](size_t task, Binding* b) -> Status {
      auto& t = tasks[task];
      if (t == nullptr) {
        t = std::make_unique<TaskProbe>();
        t->prog = node->probe_prog;
        if (residual_compiled) {
          t->res_where = node->residual.where_prog;
          t->res_when = node->residual.when_prog;
        }
        t->proj = *root_proj_;
      }
      Value key;
      if (t->prog.has_value()) {
        TDB_ASSIGN_OR_RETURN(key, t->prog->Eval(*b, env_.now));
      } else {
        TDB_ASSIGN_OR_RETURN(key, eval_.Eval(*node->probe_key, *b));
      }
      if (!NormalizedJoinKey(key, &t->keybuf)) return Status::OK();
      auto it = table.find(t->keybuf);
      if (it == table.end()) return Status::OK();
      for (const VersionRef& bref : it->second) {
        ++t->candidates;
        (*b)[build_var] = &bref;
        bool pass = true;
        if (has_residual) {
          auto pr = EvalFilterWith(node->residual, t->res_where, t->res_when,
                                   residual_compiled, *b);
          if (!pr.ok()) {
            (*b)[build_var] = nullptr;
            return pr.status();
          }
          pass = *pr;
        }
        if (!pass) continue;
        ++t->matches;
        Row row;
        TDB_ASSIGN_OR_RETURN(bool keep, t->proj.BuildRow(*b, &row));
        if (keep) t->rows.push_back(std::move(row));
      }
      (*b)[build_var] = nullptr;
      return Status::OK();
    };
    status = RunParallelScan(&*par_probe, *binding, probe_chunk_row);
    if (status.ok()) {
      // Merge in chunk order = the serial emit order.
      for (auto& t : tasks) {
        if (t == nullptr) continue;
        candidates += t->candidates;
        matches += t->matches;
        for (Row& row : t->rows) {
          status = (*root_sink_)(std::move(row));
          if (!status.ok()) break;
        }
        if (!status.ok()) break;
      }
    }
  } else {
    const EmitFn probe_row = [&](const Binding& b) -> Status {
      Value key;
      if (node->probe_prog.has_value()) {
        TDB_ASSIGN_OR_RETURN(key, node->probe_prog->Eval(b, env_.now));
      } else {
        TDB_ASSIGN_OR_RETURN(key, eval_.Eval(*node->probe_key, b));
      }
      if (!NormalizedJoinKey(key, &keybuf)) return Status::OK();
      auto it = table.find(keybuf);
      if (it == table.end()) return Status::OK();
      for (const VersionRef& bref : it->second) {
        ++candidates;
        (*binding)[build_var] = &bref;
        bool pass = true;
        if (has_residual) {
          TDB_ASSIGN_OR_RETURN(pass, EvalFilter(node->residual, *binding));
        }
        if (!pass) continue;
        ++matches;
        TDB_RETURN_NOT_OK(emit(*binding));
      }
      (*binding)[build_var] = nullptr;
      return Status::OK();
    };
    status = vectorized_
                 ? ExecuteLevelVectorized(node->probe.get(), binding,
                                          probe_row)
                 : ExecuteLevel(node->probe.get(), binding, probe_row);
  }
  (*binding)[build_var] = nullptr;
  node->stats.rows_examined += candidates;
  node->stats.rows_emitted += matches;
  return status;
}

Status QueryExecutor::ExecuteIntervalJoin(IntervalJoinNode* node,
                                          Binding* binding,
                                          const EmitFn& emit) {
  ScopedNodeTimer timer(timing_, &node->stats);
  obs::TraceSpan span(env_.registry->metrics(), "exec.interval_join");
  node->stats.executed = true;
  ++node->stats.loops;

  size_t lvar = static_cast<size_t>(AccessOf(node->left.get())->var);
  size_t rvar = static_cast<size_t>(AccessOf(node->right.get())->var);
  bool has_residual =
      !node->residual.where.empty() || !node->residual.when.empty();

  // Materialize both sides; as-of qualification and the per-side filters
  // already ran inside the levels.  Each side's gather body only clones the
  // bound version, so it parallelizes as per-chunk staging vectors merged
  // in chunk order (= the serial gather order, preserved through the
  // stable sort below).
  auto gather = [&](PlanNode* side, size_t var,
                    std::vector<VersionRef>* out) -> Status {
    std::optional<ParScan> par = TryPlanParallelScan(side);
    if (par.has_value()) {
      std::vector<std::vector<VersionRef>> tasks(par->chunks.size());
      ParallelRowFn chunk_row = [&](size_t task, Binding* b) -> Status {
        tasks[task].push_back((*b)[var]->Clone());
        return Status::OK();
      };
      TDB_RETURN_NOT_OK(RunParallelScan(&*par, *binding, chunk_row));
      for (auto& t : tasks) {
        for (VersionRef& v : t) out->push_back(std::move(v));
      }
      return Status::OK();
    }
    const EmitFn keep = [&](const Binding& b) -> Status {
      out->push_back(b[var]->Clone());
      return Status::OK();
    };
    return vectorized_ ? ExecuteLevelVectorized(side, binding, keep)
                       : ExecuteLevel(side, binding, keep);
  };
  std::vector<VersionRef> left;
  std::vector<VersionRef> right;
  TDB_RETURN_NOT_OK(gather(node->left.get(), lvar, &left));
  TDB_RETURN_NOT_OK(gather(node->right.get(), rvar, &right));

  // Sort by valid-interval start (stable, ties by end) so the sweep can
  // retire each version once.
  auto by_start = [](const VersionRef& a, const VersionRef& b) {
    if (!(a.valid.from == b.valid.from)) return a.valid.from < b.valid.from;
    return a.valid.to < b.valid.to;
  };
  std::stable_sort(left.begin(), left.end(), by_start);
  std::stable_sort(right.begin(), right.end(), by_start);

  // Two-pointer sweep: retire the side with the smaller start, scanning the
  // other side from its pointer while starts stay within the retired
  // interval (an inclusive bound — a safe superset of overlap, and exact
  // for the event-interval equality case).  Every overlapping pair is
  // examined exactly once, at the first retirement of either version.
  uint64_t candidates = 0;
  uint64_t matches = 0;
  Status status = Status::OK();
  auto pair_body = [&](const VersionRef& l, const VersionRef& r) -> Status {
    ++candidates;
    if (!l.valid.Overlaps(r.valid)) return Status::OK();
    (*binding)[lvar] = &l;
    (*binding)[rvar] = &r;
    bool pass = true;
    if (has_residual) {
      TDB_ASSIGN_OR_RETURN(pass, EvalFilter(node->residual, *binding));
    }
    if (!pass) return Status::OK();
    ++matches;
    return emit(*binding);
  };
  size_t li = 0;
  size_t rj = 0;
  while (li < left.size() && rj < right.size() && status.ok()) {
    if (left[li].valid.from <= right[rj].valid.from) {
      const VersionRef& cur = left[li];
      for (size_t k = rj; k < right.size() && status.ok(); ++k) {
        if (cur.valid.to < right[k].valid.from) break;
        status = pair_body(cur, right[k]);
      }
      ++li;
    } else {
      const VersionRef& cur = right[rj];
      for (size_t k = li; k < left.size() && status.ok(); ++k) {
        if (cur.valid.to < left[k].valid.from) break;
        status = pair_body(left[k], cur);
      }
      ++rj;
    }
  }
  (*binding)[lvar] = nullptr;
  (*binding)[rvar] = nullptr;
  node->stats.rows_examined += candidates;
  node->stats.rows_emitted += matches;
  return status;
}

namespace {

/// Accumulator for one aggregate group.
struct AggAccumulator {
  int64_t count = 0;
  double sum = 0;
  bool sum_is_float = false;
  bool have_minmax = false;
  Value minv;
  Value maxv;

  Status Add(const Value& v) {
    ++count;
    if (v.is_numeric()) {
      sum += v.AsDouble();
      if (v.type() == TypeId::kFloat8) sum_is_float = true;
    }
    if (!have_minmax) {
      minv = maxv = v;
      have_minmax = true;
    } else {
      int cmin = 0;
      if (!Value::TryCompare(v, minv, &cmin)) {
        return Value::Compare(v, minv).status();
      }
      if (cmin < 0) minv = v;
      int cmax = 0;
      if (!Value::TryCompare(v, maxv, &cmax)) {
        return Value::Compare(v, maxv).status();
      }
      if (cmax > 0) maxv = v;
    }
    return Status::OK();
  }

  Value Finish(AggFunc func) const {
    switch (func) {
      case AggFunc::kCount:
        return Value::Int4(count);
      case AggFunc::kAny:
        return Value::Int4(count > 0 ? 1 : 0);
      case AggFunc::kSum:
        return sum_is_float ? Value::Float8(sum)
                            : Value::Int4(static_cast<int64_t>(sum));
      case AggFunc::kAvg:
        return Value::Float8(count > 0 ? sum / static_cast<double>(count)
                                       : 0);
      case AggFunc::kMin:
        return have_minmax ? minv : Value::Int4(0);
      case AggFunc::kMax:
        return have_minmax ? maxv : Value::Int4(0);
    }
    return Value::Int4(0);
  }
};

}  // namespace

Status QueryExecutor::FoldAggregate(Expr* expr, const BoundStatement& bound) {
  if (expr == nullptr) return Status::OK();
  if (expr->kind != Expr::Kind::kAggregate) {
    TDB_RETURN_NOT_OK(FoldAggregate(expr->left.get(), bound));
    TDB_RETURN_NOT_OK(FoldAggregate(expr->right.get(), bound));
    return Status::OK();
  }
  std::set<int> agg_vars;
  CollectExprVars(expr->agg_arg.get(), &agg_vars);
  CollectExprVars(expr->agg_by.get(), &agg_vars);
  CollectExprVars(expr->agg_where.get(), &agg_vars);
  if (agg_vars.size() != 1) {
    return Status::NotSupported(
        "aggregates must reference exactly one tuple variable");
  }
  int var = *agg_vars.begin();
  Relation* rel = rels_[static_cast<size_t>(var)];
  const Schema& schema = rel->schema();

  // Aggregates are independent one-variable subqueries over the state of
  // the relation at the statement's rollback point (`as of`, defaulting to
  // now): versions whose transaction interval covers the rollback point and
  // — for interval relations — that are valid at it.  `by` aggregates
  // accumulate per group.
  AccessSpec spec;
  spec.kind = AccessSpec::Kind::kScan;
  TDB_ASSIGN_OR_RETURN(auto src, VersionSource::Create(rel, spec));
  Binding binding(rels_.size(), nullptr);

  std::map<std::string, AggAccumulator> groups;
  while (true) {
    TDB_ASSIGN_OR_RETURN(bool have, src->Next());
    if (!have) break;
    const VersionRef& ref = src->ref();
    if (HasTransactionTime(schema.db_type()) && !QualifiesAsOf(ref.tx)) {
      continue;
    }
    if (HasValidTime(schema.db_type()) &&
        schema.entity_kind() == EntityKind::kInterval &&
        !ref.valid.Contains(as_of_at_)) {
      continue;
    }
    binding[static_cast<size_t>(var)] = &src->ref();
    if (expr->agg_where != nullptr) {
      TDB_ASSIGN_OR_RETURN(bool ok, eval_.EvalBool(*expr->agg_where, binding));
      if (!ok) continue;
    }
    std::string group;
    if (expr->agg_by != nullptr) {
      TDB_ASSIGN_OR_RETURN(Value by, eval_.Eval(*expr->agg_by, binding));
      group = by.ToString();
    }
    TDB_ASSIGN_OR_RETURN(Value v, eval_.Eval(*expr->agg_arg, binding));
    TDB_RETURN_NOT_OK(groups[group].Add(v));
  }

  AggFunc func = expr->agg;
  if (expr->agg_by != nullptr) {
    // Keep the node; evaluation looks the group up per output row.
    auto result = std::make_shared<std::map<std::string, Value>>();
    for (const auto& [key, acc] : groups) {
      (*result)[key] = acc.Finish(func);
    }
    expr->agg_groups = std::move(result);
    return Status::OK();
  }

  // Plain aggregate: replace the node with a constant.
  Value v = groups[""].Finish(func);
  expr->agg_arg.reset();
  expr->agg_where.reset();
  if (v.type() == TypeId::kChar) {
    expr->kind = Expr::Kind::kConstString;
    expr->str_val = v.ToString();
  } else if (v.type() == TypeId::kFloat8) {
    expr->kind = Expr::Kind::kConstFloat;
    expr->float_val = v.AsDouble();
  } else {
    expr->kind = Expr::Kind::kConstInt;
    expr->int_val = v.AsInt();
  }
  return Status::OK();
}

Status QueryExecutor::FoldAggregates(RetrieveStmt* stmt,
                                     const BoundStatement& bound) {
  for (TargetItem& item : stmt->targets) {
    TDB_RETURN_NOT_OK(FoldAggregate(item.expr.get(), bound));
  }
  return Status::OK();
}

Result<ExecResult> QueryExecutor::Retrieve(RetrieveStmt* stmt,
                                           const BoundStatement& bound,
                                           std::shared_ptr<PhysicalPlan> prebuilt) {
  timing_ = env_.registry->metrics() != nullptr;
  vectorized_ = env_.vector_exec;
  obs::TraceSpan span(env_.registry->metrics(), "exec.retrieve");
  stmt_ = stmt;
  rels_.clear();
  for (const BoundVar& bv : bound.vars) {
    TDB_ASSIGN_OR_RETURN(Relation * rel, env_.GetRelation(bv.rel->name));
    rels_.push_back(rel);
  }

  // All planning decisions — access paths, join order, residual-filter
  // placement, the rollback point — are made up front (or were, for a
  // cached plan cloned into `prebuilt`).
  std::shared_ptr<PhysicalPlan> plan = std::move(prebuilt);
  if (plan == nullptr) {
    TDB_ASSIGN_OR_RETURN(plan, BuildPlan(*stmt, bound, env_));
  }
  hot_plan_ = plan->from_plan_cache;
  // Root wall time covers everything from here on (folding, iteration,
  // sort, materialization); the stats object outlives this frame through
  // the shared plan, so the timer's late write lands safely.
  ScopedNodeTimer root_timer(timing_, &plan->root->stats);
  as_of_at_ = plan->as_of_at;
  has_through_ = plan->has_through;
  as_of_through_ = plan->as_of_through;

  // Aggregate folding runs before iteration starts (it performs its own
  // one-variable scans); its I/O is deliberately outside the plan tree.
  TDB_RETURN_NOT_OK(FoldAggregates(stmt, bound));

  // Lower the target list and valid clause AFTER folding: plain aggregates
  // are constants by now, and grouped aggregates (which keep their node)
  // fail to compile and stay on the Evaluator per target.
  std::vector<std::optional<CompiledProgram>> target_progs;
  std::optional<CompiledProgram> valid_from_prog;
  std::optional<CompiledProgram> valid_to_prog;
  if (CompiledExprEnabled()) {
    target_progs.reserve(stmt->targets.size());
    for (const TargetItem& t : stmt->targets) {
      target_progs.push_back(CompiledProgram::CompileExpr(*t.expr));
    }
    if (stmt->valid.has_value()) {
      valid_from_prog = CompiledProgram::CompileTemporal(*stmt->valid->from);
      if (!stmt->valid->at) {
        valid_to_prog = CompiledProgram::CompileTemporal(*stmt->valid->to);
      }
    }
  } else {
    target_progs.resize(stmt->targets.size());
  }

  bool valid_output = plan->root->valid_output;

  ResultSet result;
  for (const TargetItem& t : stmt->targets) result.columns.push_back(t.name);
  if (valid_output) {
    result.columns.push_back(kAttrValidFrom);
    result.columns.push_back(kAttrValidTo);
  }

  // The emit path is split in two: the projector builds output rows (pure
  // given a binding — parallel scans copy it per task and run it on worker
  // threads), the sink applies `unique` dedup and appends to the result
  // (ordering-sensitive — always coordinator-side, in serial row order).
  RowProjector proj;
  proj.stmt = stmt;
  proj.valid_output = valid_output;
  proj.target_progs = std::move(target_progs);
  proj.valid_from_prog = std::move(valid_from_prog);
  proj.valid_to_prog = std::move(valid_to_prog);
  proj.now = env_.now;
  proj.eval = &eval_;

  std::set<std::string> seen;  // for `unique`
  std::function<Status(Row&&)> sink = [&](Row&& row) -> Status {
    if (stmt->unique) {
      std::string key;
      for (const Value& v : row) {
        key += v.ToString();
        key += '\x1f';
      }
      if (!seen.insert(std::move(key)).second) return Status::OK();
    }
    result.rows.push_back(std::move(row));
    return Status::OK();
  };
  EmitFn emit = [&](const Binding& binding) -> Status {
    Row row;
    TDB_ASSIGN_OR_RETURN(bool keep, proj.BuildRow(binding, &row));
    if (!keep) return Status::OK();
    return sink(std::move(row));
  };
  root_proj_ = &proj;
  root_sink_ = &sink;

  Binding binding(rels_.size(), nullptr);
  PlanNode* input = plan->root->child.get();
  if (input == nullptr) {
    // Constant plan: one row from an empty binding.
    TDB_RETURN_NOT_OK(emit(binding));
  } else if (input->kind == PlanNode::Kind::kNestedLoop) {
    TDB_RETURN_NOT_OK(ExecuteNestedLoop(static_cast<NestedLoopNode*>(input),
                                        0, &binding, emit));
  } else if (input->kind == PlanNode::Kind::kSubstitution) {
    TDB_RETURN_NOT_OK(ExecuteSubstitution(
        static_cast<SubstitutionNode*>(input), &binding, emit));
  } else if (input->kind == PlanNode::Kind::kHashJoin) {
    TDB_RETURN_NOT_OK(
        ExecuteHashJoin(static_cast<HashJoinNode*>(input), &binding, emit));
  } else if (input->kind == PlanNode::Kind::kIntervalJoin) {
    TDB_RETURN_NOT_OK(ExecuteIntervalJoin(
        static_cast<IntervalJoinNode*>(input), &binding, emit));
  } else if (std::optional<ParScan> par = TryPlanParallelScan(input);
             par.has_value()) {
    // Parallel lone level: workers project rows into per-chunk buffers;
    // the coordinator drains them through the sink in chunk order, which
    // IS the serial row order.
    struct TaskOut {
      RowProjector proj;
      std::vector<Row> rows;
    };
    std::vector<std::unique_ptr<TaskOut>> tasks(par->chunks.size());
    ParallelRowFn chunk_row = [&](size_t task, Binding* b) -> Status {
      auto& t = tasks[task];
      if (t == nullptr) {
        t = std::make_unique<TaskOut>();
        t->proj = proj;
      }
      Row row;
      TDB_ASSIGN_OR_RETURN(bool keep, t->proj.BuildRow(*b, &row));
      if (keep) t->rows.push_back(std::move(row));
      return Status::OK();
    };
    TDB_RETURN_NOT_OK(RunParallelScan(&*par, binding, chunk_row));
    for (auto& t : tasks) {
      if (t == nullptr) continue;
      for (Row& row : t->rows) TDB_RETURN_NOT_OK(sink(std::move(row)));
    }
  } else {
    // A lone level's emit body does no page I/O, so batching is always safe.
    TDB_RETURN_NOT_OK(vectorized_
                          ? ExecuteLevelVectorized(input, &binding, emit)
                          : ExecuteLevel(input, &binding, emit));
  }
  root_proj_ = nullptr;
  root_sink_ = nullptr;

  // `sort by` orders the result by named output columns (stable, so
  // secondary keys listed later act as tie breakers of earlier ones).
  // Keys are resolved into a local copy: the statement may be a cached
  // AST shared by concurrent sessions, so it is never written here.
  if (!stmt->sort_by.empty()) {
    std::vector<SortKey> sort_keys = stmt->sort_by;
    for (SortKey& key : sort_keys) {
      key.target_index = -1;
      for (size_t i = 0; i < result.columns.size(); ++i) {
        if (EqualsIgnoreCase(result.columns[i], key.target)) {
          key.target_index = static_cast<int>(i);
          break;
        }
      }
      if (key.target_index < 0) {
        return Status::BindError("sort by: no output column named '" +
                                 key.target + "'");
      }
    }
    Status sort_error = Status::OK();
    std::stable_sort(result.rows.begin(), result.rows.end(),
                     [&](const Row& a, const Row& b) {
                       for (const SortKey& key : sort_keys) {
                         size_t i = static_cast<size_t>(key.target_index);
                         int c = 0;
                         if (!Value::TryCompare(a[i], b[i], &c)) {
                           sort_error = Value::Compare(a[i], b[i]).status();
                           return false;
                         }
                         if (c != 0) return key.descending ? c > 0 : c < 0;
                       }
                       return false;
                     });
    TDB_RETURN_NOT_OK(sort_error);
  }

  plan->root->stats.executed = true;
  plan->root->stats.loops = 1;
  plan->root->stats.rows_emitted = result.rows.size();

  ExecResult out;
  if (!stmt->into.empty()) {
    // Materialize into a new relation: historical when a valid interval was
    // computed, plain static otherwise.
    std::vector<Attribute> attrs;
    for (const TargetItem& t : stmt->targets) {
      attrs.push_back(InferAttribute(t.name, *t.expr, bound.vars));
    }
    DbType type = valid_output ? DbType::kHistorical : DbType::kStatic;
    TDB_ASSIGN_OR_RETURN(Schema schema, Schema::Create(std::move(attrs), type));
    RelationMeta meta;
    meta.name = stmt->into;
    meta.schema = schema;
    meta.org = Organization::kHeap;
    TDB_RETURN_NOT_OK(env_.catalog->Create(meta));
    TDB_ASSIGN_OR_RETURN(Relation * rel, env_.GetRelation(stmt->into));
    for (const Row& row : result.rows) {
      TDB_ASSIGN_OR_RETURN(auto rec, EncodeRecord(schema, row));
      Tid tid;
      TDB_RETURN_NOT_OK(rel->InsertPrimary(rec, &tid));
    }
    TDB_RETURN_NOT_OK(rel->primary()->pager()->Flush());
    out.affected = static_cast<int64_t>(result.rows.size());
    out.message = StrPrintf("retrieved %lld tuples into %s",
                            static_cast<long long>(out.affected),
                            stmt->into.c_str());
  } else {
    out.affected = static_cast<int64_t>(result.rows.size());
    out.result = std::move(result);
  }
  if (out.message.empty()) {
    out.message = "plan: " + plan->Summary();
  }
  out.plan = std::move(plan);
  return out;
}

}  // namespace tdb
