#include "exec/cost.h"

#include <set>
#include <string>
#include <vector>

#include "exec/version_source.h"
#include "util/stringx.h"

namespace tdb {

Result<RelationStats> ComputeRelationStats(Relation* rel) {
  RelationStats stats;
  const Schema& schema = rel->schema();
  size_t nuser = schema.num_user_attrs();
  // Distinct values per user attribute, via the printed form: exact for
  // the fixed-width types involved, and cheap enough for one lazy pass.
  std::vector<std::set<std::string>> seen(nuser);

  AccessSpec spec;
  spec.kind = AccessSpec::Kind::kScan;
  TDB_ASSIGN_OR_RETURN(auto src, VersionSource::Create(rel, spec));
  while (true) {
    TDB_ASSIGN_OR_RETURN(bool have, src->Next());
    if (!have) break;
    ++stats.rows;
    for (size_t i = 0; i < nuser; ++i) {
      seen[i].insert(src->ref().attr(i).ToString(TimeResolution::kSecond));
    }
  }
  for (size_t i = 0; i < nuser; ++i) {
    stats.distinct[ToLower(schema.attr(i).name)] =
        static_cast<uint64_t>(seen[i].size());
  }
  stats.primary_pages = rel->primary()->page_count();
  if (rel->history() != nullptr) {
    stats.history_pages = rel->history()->page_count();
  }
  return stats;
}

Result<const RelationStats*> GetOrComputeStats(Catalog* catalog,
                                               Relation* rel) {
  const std::string& name = rel->meta().name;
  if (const RelationStats* cached = catalog->FindStats(name)) return cached;
  TDB_ASSIGN_OR_RETURN(RelationStats stats, ComputeRelationStats(rel));
  catalog->SetStats(name, std::move(stats));
  return catalog->FindStats(name);
}

double EstimateEqJoinRows(double left_rows, double right_rows,
                          uint64_t left_distinct, uint64_t right_distinct) {
  uint64_t d = left_distinct > right_distinct ? left_distinct : right_distinct;
  if (d == 0) d = 1;
  return left_rows * right_rows / static_cast<double>(d);
}

double EstimateOverlapJoinRows(double left_rows, double right_rows) {
  return left_rows * right_rows * 0.5;
}

double EstimateEqSelectivity(const RelationStats& stats,
                             const std::string& attr) {
  uint64_t d = stats.DistinctOr(attr, stats.rows == 0 ? 1 : stats.rows);
  if (d == 0) d = 1;
  return 1.0 / static_cast<double>(d);
}

}  // namespace tdb
