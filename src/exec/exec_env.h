#ifndef CHRONOQUEL_EXEC_EXEC_ENV_H_
#define CHRONOQUEL_EXEC_EXEC_ENV_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "core/relation.h"
#include "env/env.h"
#include "exec/join_method.h"
#include "storage/io_stats.h"
#include "storage/journal.h"
#include "storage/pager.h"
#include "types/timepoint.h"

namespace tdb {

/// Everything an executor needs from the owning Database: the environment,
/// the catalog, the open-relation cache, the I/O registry, and the current
/// logical time.  A plain struct so executors stay decoupled from the
/// Database facade.
struct ExecEnv {
  Env* env = nullptr;
  std::string dir;
  Catalog* catalog = nullptr;
  IoRegistry* registry = nullptr;
  std::map<std::string, std::unique_ptr<Relation>>* relations = nullptr;
  TimePoint now;
  /// Buffer frames per relation file (1 = the paper's discipline).
  int buffer_frames = 1;
  /// The owning database's write-ahead journal; null when durability is
  /// off.  Executors route every pager and every file deletion through it.
  Journal* journal = nullptr;
  /// How the planner chooses join order/method.  kPaper (the default)
  /// reproduces the tuple-substitution plans of the paper exactly.
  JoinMethod join_method = JoinMethod::kPaper;
  /// Resolved engine knobs (DatabaseOptions > TDB_* env > defaults; see
  /// ResolveVectorExec / ResolveMorselCapacity / ResolveExecThreads).
  bool vector_exec = true;
  size_t morsel_cap = 1024;
  /// Worker threads for morsel-driven parallel pipelines.  1 (the paper's
  /// measurement discipline) keeps execution strictly single-threaded.
  int exec_threads = 1;
  /// Session tag folded into scratch-file names ("__temp<tag><n>.dat") so
  /// concurrent sessions never collide on temporaries.  Empty for the
  /// default session, keeping embedded scratch names byte-identical.
  std::string temp_tag;
  /// Production storage mode for every file the executors open or rebuild
  /// (page size, checksums, shared pool, readahead).  Defaults reproduce
  /// the paper byte-for-byte.
  StorageOptions storage;
  /// Vacuum segment-partition policy: "single" (one segment absorbs every
  /// cold version) or "epoch:<seconds>" (segments bucket versions by stamp
  /// into fixed epochs).
  std::string vacuum_partition = "single";
  /// Argument values of an `execute` of a prepared statement; `$N`
  /// expressions resolve to (*params)[N-1].  Null outside prepared
  /// execution — a raw statement containing `$N` then fails to evaluate.
  const std::vector<Value>* params = nullptr;

  /// Usable bytes per page under `storage` (page size minus the CRC
  /// trailer when checksums are on); sizing computations (hash bucket
  /// counts, record-size caps) must use this, not kPageSize.
  uint32_t usable_page_size() const {
    return storage.page_size - (storage.checksum ? 4u : 0u);
  }

  /// Returns the open handle for `name`, opening it from the catalog on
  /// first use.
  Result<Relation*> GetRelation(const std::string& name) const;

  /// Drops the open handle (the files stay); used before destroy / modify.
  void CloseRelation(const std::string& name) const;
};

}  // namespace tdb

#endif  // CHRONOQUEL_EXEC_EXEC_ENV_H_
