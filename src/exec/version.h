#ifndef CHRONOQUEL_EXEC_VERSION_H_
#define CHRONOQUEL_EXEC_VERSION_H_

#include <cstdint>
#include <vector>

#include "storage/storage_file.h"
#include "temporal/interval.h"
#include "types/schema.h"

namespace tdb {

/// One tuple version bound to a range variable during evaluation: the
/// decoded row plus its two lifespans.  Relations without valid
/// (transaction) time get the universal interval for valid (tx), so the
/// same evaluation code covers all four database types.
struct VersionRef {
  Row row;
  Interval valid{TimePoint::Beginning(), TimePoint::Forever()};
  Interval tx{TimePoint::Beginning(), TimePoint::Forever()};
  Tid tid;
  bool in_history = false;  // lives in a two-level relation's history store

  /// "Current" in the sense the DML layer qualifies versions: still open in
  /// transaction time, and (for interval relations) still open in valid
  /// time.
  bool IsCurrent(const Schema& schema) const {
    if (schema.tx_stop_index() >= 0 && !tx.to.is_forever()) return false;
    if (HasValidTime(schema.db_type()) &&
        schema.entity_kind() == EntityKind::kInterval &&
        !valid.to.is_forever()) {
      return false;
    }
    return true;
  }
};

/// Decodes a stored record into a VersionRef (row + lifespans).
Result<VersionRef> DecodeVersion(const Schema& schema, const uint8_t* rec,
                                 size_t size, Tid tid, bool in_history);

/// Re-derives the lifespans of a VersionRef whose row was modified.
void RefreshIntervals(const Schema& schema, VersionRef* ref);

}  // namespace tdb

#endif  // CHRONOQUEL_EXEC_VERSION_H_
