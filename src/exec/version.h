#ifndef CHRONOQUEL_EXEC_VERSION_H_
#define CHRONOQUEL_EXEC_VERSION_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "storage/storage_file.h"
#include "temporal/interval.h"
#include "types/schema.h"

namespace tdb {

/// One tuple version bound to a range variable during evaluation: the
/// attribute values plus the two lifespans.  Relations without valid
/// (transaction) time get the universal interval for valid (tx), so the
/// same evaluation code covers all four database types.
///
/// A VersionRef is either *raw* — bound to the encoded record bytes of a
/// live cursor position, decoding attributes lazily on first access — or
/// *materialized*, owning a fully decoded Row.  Raw mode is the zero-copy
/// fast path: a scan whose predicate touches two integer attributes decodes
/// exactly those two and never pays for the 96-byte char payload.  The raw
/// pointer is valid only until the underlying cursor advances, which is why
/// copies are deleted: aliasing the bytes past their lifetime must not
/// compile.  Use Clone() where an owning snapshot is genuinely needed.
class VersionRef {
 public:
  VersionRef() = default;
  VersionRef(VersionRef&&) noexcept = default;
  VersionRef& operator=(VersionRef&&) noexcept = default;
  VersionRef(const VersionRef&) = delete;
  VersionRef& operator=(const VersionRef&) = delete;

  Interval valid{TimePoint::Beginning(), TimePoint::Forever()};
  Interval tx{TimePoint::Beginning(), TimePoint::Forever()};
  Tid tid;
  bool in_history = false;  // lives in a two-level relation's history store

  /// Rebinds to the encoded record `rec` (laid out per `schema`), resetting
  /// the decode cache but keeping its capacity, and re-derives the
  /// lifespans from the implicit time attributes.  `rec` must stay valid
  /// until the next rebind or materialization.
  void BindRaw(const Schema& schema, const uint8_t* rec);

  /// Materializes with an already decoded row (temp relations, DML).
  /// Lifespans are NOT derived; call RefreshIntervals if they matter.
  void SetRow(Row row) {
    schema_ = nullptr;
    raw_ = nullptr;
    owned_.reset();
    row_ = std::move(row);
    full_ = true;
  }

  /// Attribute `i`, decoding it on first access in raw mode.
  const Value& attr(size_t i) const {
    if (!full_) {
      if (i < 64) {
        uint64_t bit = uint64_t{1} << i;
        if (!(decoded_ & bit)) {
          row_[i] = DecodeAttr(*schema_, i, raw_);
          decoded_ |= bit;
        }
      } else {
        row_[i] = DecodeAttr(*schema_, i, raw_);  // beyond the cache bitmap
      }
    }
    return row_[i];
  }

  /// The complete row, decoding any attributes not yet touched.
  const Row& FullRow() const;

  /// FullRow with mutable access; once taken, the version is materialized
  /// and no longer reads the raw bytes.
  Row& MutableRow() {
    FullRow();
    return row_;
  }

  size_t num_attrs() const { return row_.size(); }

  /// An owning copy, safe past cursor advances.  A raw-bound source is
  /// cloned by copying its record bytes — attribute decode stays lazy, so
  /// operators that materialize many versions (hash build, interval-join
  /// gather) never pay for attributes they don't read.  The source schema
  /// must outlive the clone (relation schemas outlive any execution).
  VersionRef Clone() const;

  /// "Current" in the sense the DML layer qualifies versions: still open in
  /// transaction time, and (for interval relations) still open in valid
  /// time.
  bool IsCurrent(const Schema& schema) const {
    if (schema.tx_stop_index() >= 0 && !tx.to.is_forever()) return false;
    if (HasValidTime(schema.db_type()) &&
        schema.entity_kind() == EntityKind::kInterval &&
        !valid.to.is_forever()) {
      return false;
    }
    return true;
  }

 private:
  const Schema* schema_ = nullptr;  // non-null only in raw mode
  const uint8_t* raw_ = nullptr;
  /// A Clone()'s private copy of the record bytes; raw_ aliases it.  Moves
  /// keep raw_ valid because the heap block itself doesn't move.
  std::unique_ptr<uint8_t[]> owned_;
  mutable Row row_;
  mutable uint64_t decoded_ = 0;  // bit i set → row_[i] decoded (raw mode)
  mutable bool full_ = true;      // materialized, or every attribute decoded
};

/// Decodes a stored record into a materialized VersionRef (row + lifespans).
Result<VersionRef> DecodeVersion(const Schema& schema, const uint8_t* rec,
                                 size_t size, Tid tid, bool in_history);

/// Re-derives the lifespans of a VersionRef whose row was modified.
void RefreshIntervals(const Schema& schema, VersionRef* ref);

}  // namespace tdb

#endif  // CHRONOQUEL_EXEC_VERSION_H_
