#ifndef CHRONOQUEL_EXEC_COMPILED_EXPR_H_
#define CHRONOQUEL_EXEC_COMPILED_EXPR_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "exec/eval.h"
#include "exec/morsel.h"
#include "temporal/interval.h"
#include "tquel/ast.h"
#include "types/value.h"

namespace tdb {

/// Whether the planner lowers expressions to compiled programs, resolved
/// through the one precedence chain (test override > per-statement scope >
/// TDB_COMPILED_EXPR > on).  Disabling it forces every evaluation back
/// through the AST-walking Evaluator, which is the A/B lever the micro
/// benchmarks and the golden I/O test use.  The planner calls this from
/// free functions with no ExecEnv in reach, so session/database options
/// are injected via ScopedCompiledExprChoice rather than a parameter.
bool CompiledExprEnabled();

/// Test hook: forces CompiledExprEnabled() to `enabled` (or back to the
/// environment value with nullopt).  Lets the differential harness run the
/// same query compiled and interpreted inside one process.  Outranks any
/// ScopedCompiledExprChoice.
void SetCompiledExprEnabledForTest(std::optional<bool> enabled);

/// Installs a resolved session/database compiled_expr choice for the
/// current thread for the lifetime of the scope (statement execution).
/// nullopt leaves the environment default in force.  Nests: the innermost
/// scope wins, and the previous choice is restored on destruction.
class ScopedCompiledExprChoice {
 public:
  explicit ScopedCompiledExprChoice(std::optional<bool> choice);
  ~ScopedCompiledExprChoice();
  ScopedCompiledExprChoice(const ScopedCompiledExprChoice&) = delete;
  ScopedCompiledExprChoice& operator=(const ScopedCompiledExprChoice&) = delete;

 private:
  std::optional<bool> previous_;
};

/// A flat postfix evaluation program lowered from an `Expr`,
/// `TemporalExpr`, or `TemporalPred` tree at plan-build time.  Execution
/// replaces the per-tuple recursive `Evaluator` walk (one virtual-free
/// switch dispatch per instruction, operands on a small reused stack) and
/// reads column operands lazily through `VersionRef::attr`, so a predicate
/// touching two attributes of a 108-byte tuple decodes exactly those two.
///
/// Semantics — including numeric promotion, char blank-padding, division
/// errors, and short-circuit evaluation — are bit-identical to the
/// Evaluator; the program performs no page I/O, so the paper's page-read
/// accounting is structurally unaffected.
///
/// A program reuses its operand stacks across calls and is therefore NOT
/// thread-safe; each executor owns its plan (and thus its programs)
/// exclusively, matching the one-writer-per-Env isolation rule.
class CompiledProgram {
 public:
  enum class Kind : uint8_t { kScalar, kInterval, kPredicate };

  /// Lowers a scalar expression.  Returns nullopt when the tree contains a
  /// construct the compiler does not handle (grouped aggregates) — callers
  /// fall back to the Evaluator for that expression.
  static std::optional<CompiledProgram> CompileExpr(const Expr& expr);

  /// Lowers a temporal expression to an interval program (never fails —
  /// every TemporalExpr kind is supported).
  static CompiledProgram CompileTemporal(const TemporalExpr& expr);

  /// Lowers a temporal predicate to a boolean program (never fails).
  static CompiledProgram CompilePred(const TemporalPred& pred);

  Kind kind() const { return kind_; }
  size_t size() const { return code_.size(); }

  /// Scalar programs.
  Result<Value> Eval(const Binding& binding, TimePoint now) const;
  Result<bool> EvalBool(const Binding& binding, TimePoint now) const;

  /// Interval programs.
  Result<Interval> EvalInterval(const Binding& binding, TimePoint now) const;

  /// Predicate programs.
  Result<bool> EvalPred(const Binding& binding, TimePoint now) const;

  /// Batch variants over a morsel of raw records (laid out per `schema`)
  /// bound to variable `var`.  `sel` holds the morsel indexes still live
  /// and is refined in place, order preserved; rows outside `sel` are
  /// never evaluated.  `binding` supplies any other (outer) variables;
  /// `scratch` is a caller-owned VersionRef the generic per-row path
  /// rebinds row by row (binding[var] is pointed at it and restored to
  /// null on return).
  ///
  /// Per-row semantics are identical to EvalBool/EvalPred.  The fast path
  /// — an AND-chain of fixed-width integer `attr OP const` compares, or a
  /// single interval predicate against a constant/now — runs branch-light
  /// kernels straight over the record bytes.  The only observable
  /// divergence is error *ordering*: a batch finishes one conjunct over
  /// all live rows before starting the next, so when several rows would
  /// error, a different row's error can surface first (the query fails
  /// either way).
  Status EvalBoolBatch(const Schema& schema, int var, const Morsel& m,
                       Binding* binding, VersionRef* scratch, TimePoint now,
                       SelVec* sel) const;
  Status EvalPredBatch(const Schema& schema, int var, const Morsel& m,
                       Binding* binding, VersionRef* scratch, TimePoint now,
                       SelVec* sel) const;

 private:
  enum class Op : uint8_t {
    // scalar value stack
    kPushInt,     // push Int4(ival)
    kPushFloat,   // push Float8(fval)
    kPushStr,     // push Char(sval)
    kLoadCol,     // push binding[a]->attr(b)
    kAdd, kSub, kMul, kDiv, kMod,
    kCmpEq, kCmpNe, kCmpLt, kCmpLe, kCmpGt, kCmpGe,
    kNot,         // pop, push Int4(!truthy)
    kNeg,         // pop, push numeric negation
    kAndJump,     // pop; if !truthy push Int4(0) and jump a
    kOrJump,      // pop; if truthy push Int4(1) and jump a
    kCoerceBool,  // pop, push Int4(truthy ? 1 : 0)
    // interval stack
    kIvalVar,     // push binding[a]->valid
    kIvalConst,   // push Event(tval)
    kIvalNow,     // push Event(now)
    kIvalStart, kIvalEnd,        // pop 1, push event
    kIvalIntersect, kIvalSpan,   // pop 2, push 1
    // predicate (bool) stack
    kPredPrecede, kPredOverlap, kPredEqual,  // pop 2 intervals, push bool
    kPredNonEmpty,                           // pop 1 interval, push bool
    kPredNot,                                // invert top bool
    kPredAndJump,  // if !top jump a (keep as result) else pop and continue
    kPredOrJump,   // if top jump a (keep as result) else pop and continue
  };

  struct Instr {
    Op op;
    int32_t a = 0;  // var index or jump target
    int32_t b = 0;  // attr index
    int64_t ival = 0;
    double fval = 0;
    TimePoint tval;
    std::string sval;  // string constant, or name for error messages
  };

  explicit CompiledProgram(Kind kind) : kind_(kind) {}

  bool EmitExpr(const Expr& expr);
  void EmitTemporal(const TemporalExpr& expr);
  void EmitPred(const TemporalPred& pred);

  /// Runs the program; on success the result is the top of the stack
  /// matching kind_.
  Status Run(const Binding& binding, TimePoint now) const;

  /// One-time structural analysis of code_ for the batch kernels; defined
  /// in the .cc.  Shared (not cloned) on program copy — it is derived
  /// purely from the immutable code_.
  struct BatchKernelCache;
  const BatchKernelCache& Analysis() const;
  Status EvalBatchGeneric(const Schema& schema, int var, const Morsel& m,
                          Binding* binding, VersionRef* scratch,
                          TimePoint now, SelVec* sel) const;

  Kind kind_;
  std::vector<Instr> code_;
  mutable std::shared_ptr<BatchKernelCache> batch_cache_;

  // Operand stacks, reused across calls (cleared, capacity kept).
  mutable std::vector<Value> vals_;
  mutable std::vector<Interval> ivals_;
  mutable std::vector<char> bools_;
};

}  // namespace tdb

#endif  // CHRONOQUEL_EXEC_COMPILED_EXPR_H_
