#ifndef CHRONOQUEL_EXEC_WORKER_POOL_H_
#define CHRONOQUEL_EXEC_WORKER_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace tdb {

/// Process-wide pool of helper threads for morsel-driven intra-query
/// parallelism.  One pool is shared by every Database in the process so that
/// concurrent queries (e.g. benchmark cells under RunCells) never multiply
/// thread counts.
///
/// The unit of dispatch is a worker id, not a task queue: Run(n, body)
/// guarantees body(id) executes exactly once for every id in [0, n).  The
/// calling thread participates as a worker (claiming ids alongside the
/// helpers), so Run never blocks on helper availability, and a busy pool —
/// a concurrent or nested Run — degrades to the caller executing every id
/// inline.  Parallelism is best-effort; the id contract is not.
///
/// Helpers are spawned lazily on the first multi-worker Run and joined in
/// the destructor, so single-threaded (paper-mode) processes never create a
/// thread.
class WorkerPool {
 public:
  static WorkerPool& Shared();

  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Runs body(id) for every id in [0, workers) and returns when all have
  /// finished.  workers <= 1 runs body(0) inline with zero synchronization.
  void Run(int workers, const std::function<void(int)>& body);

  /// Helper threads created so far (test observability).
  int thread_count() const;

 private:
  WorkerPool() = default;

  void EnsureThreads(int want);
  void HelperLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::vector<std::thread> threads_;
  const std::function<void(int)>* body_ = nullptr;  // non-null while busy
  int total_ = 0;       // worker ids in the current Run
  int next_id_ = 0;     // next unclaimed id
  int completed_ = 0;   // bodies finished
  uint64_t epoch_ = 0;  // bumped per Run so helpers never re-enter old work
  bool busy_ = false;
  bool shutdown_ = false;
};

/// A bounded FIFO task queue drained by a fixed set of threads — the
/// dispatch half of the epoll server (net/server.cc): the event loop
/// enqueues one closure per ready connection and the workers run them to
/// completion.  Distinct from WorkerPool on purpose: WorkerPool's unit is
/// a worker id inside one fork-join region, while TaskPool's is an
/// independent task, and the bounded queue gives the producer backpressure
/// (Submit blocks while full) instead of inline degradation.
class TaskPool {
 public:
  /// `threads` workers are spawned immediately; `queue_capacity` bounds
  /// the number of queued-but-unstarted tasks.
  TaskPool(int threads, size_t queue_capacity);

  /// Runs Shutdown (drains the queue, joins every worker).
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Enqueues one task, blocking while the queue is at capacity.  Returns
  /// false (task dropped) once Shutdown has begun.
  bool Submit(std::function<void()> task);

  /// Stops accepting tasks, lets the workers drain what is queued, and
  /// joins them.  Idempotent.
  void Shutdown();

  int thread_count() const { return static_cast<int>(threads_.size()); }

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_task_;   // queue non-empty or shutdown
  std::condition_variable cv_space_;  // queue below capacity
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  size_t capacity_;
  bool shutdown_ = false;
};

/// Resolves the executor thread count for one Database: test override >
/// `option` (when > 0) > TDB_EXEC_THREADS env > 1 (the paper's
/// single-threaded measurement discipline), clamped to [1, 64].
int ResolveExecThreads(int option);

/// Process-wide override for tests (nullopt restores normal resolution).
void SetExecThreadsForTest(std::optional<int> threads);

}  // namespace tdb

#endif  // CHRONOQUEL_EXEC_WORKER_POOL_H_
