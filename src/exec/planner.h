#ifndef CHRONOQUEL_EXEC_PLANNER_H_
#define CHRONOQUEL_EXEC_PLANNER_H_

#include <memory>
#include <set>
#include <vector>

#include "core/relation.h"
#include "exec/exec_env.h"
#include "exec/plan.h"
#include "tquel/ast.h"
#include "tquel/binder.h"

namespace tdb {

/// One top-level AND factor of the where clause, with the set of tuple
/// variables it references.
struct Conjunct {
  const Expr* expr;
  std::set<int> vars;
};

/// One top-level AND factor of the when clause.
struct TemporalConjunct {
  const TemporalPred* pred;
  std::set<int> vars;
};

/// Splits a where expression on top-level ANDs.
void SplitWhere(const Expr* where, std::vector<Conjunct>* out);

/// Splits a when predicate on top-level ANDs.
void SplitWhen(const TemporalPred* when, std::vector<TemporalConjunct>* out);

void CollectExprVars(const Expr* expr, std::set<int>* out);
void CollectTemporalExprVars(const TemporalExpr* expr, std::set<int>* out);
void CollectTemporalPredVars(const TemporalPred* pred, std::set<int>* out);

/// The access path chosen for one variable at one nesting level.
struct AccessChoice {
  enum class Kind {
    kScan,     // sequential scan (data + overflow pages)
    kKeyed,    // hashed / ISAM access on the organization key
    kIndexEq,  // secondary index equality probe
    kRange,    // ISAM key-range scan
  };
  Kind kind = Kind::kScan;
  /// For kKeyed / kIndexEq: the expression producing the probe value; it
  /// references only variables in the `available` set given to ChooseAccess.
  const Expr* key_expr = nullptr;
  SecondaryIndex* index = nullptr;  // kIndexEq
  // kRange bounds (either may be null).
  const Expr* lo_expr = nullptr;
  const Expr* hi_expr = nullptr;
  bool lo_inclusive = true;
  bool hi_inclusive = true;
};

/// Picks the cheapest access path for variable `var` of relation `rel`
/// given the where conjuncts and the set of variables already bound by
/// outer loops.  Preference: organization key > secondary index > scan —
/// the same choices Ingres's one-variable query processor makes.
AccessChoice ChooseAccess(int var, Relation* rel,
                          const std::vector<Conjunct>& conjuncts,
                          const std::set<int>& available);

/// True when the statement's clauses restrict `var` to *current* versions:
/// a `when` conjunct of the shape `var overlap "now"` (interval relations),
/// or — for relations with transaction time but no valid time — an
/// effective rollback point of "now" (`as_of_is_now`).  Lets the two-level
/// store and 2-level indexes skip history data.
bool WantsCurrentOnly(int var, const Relation* rel,
                      const std::vector<TemporalConjunct>& when_conjuncts,
                      bool as_of_is_now);

/// Builds the complete physical plan for a bound retrieve statement: every
/// access-path and join-order decision is made here, before execution.  The
/// shape mirrors the Ingres decomposition the executor implements:
///   * no tuple variables left live after aggregate folding -> a constant
///     plan (ProjectNode without input) emitting exactly one row;
///   * one variable -> its chosen access path, wrapped in a FilterNode when
///     residual conjuncts remain;
///   * two variables with a keyed/indexed candidate -> SubstitutionNode
///     (detach the other variable to a temp, probe this one per temp row);
///   * otherwise -> left-deep NestedLoopNode with per-level access choice.
/// The rollback point (`as of`, defaulting to now) is evaluated here so the
/// plan and the executor agree on it.  The returned plan aliases
/// expressions owned by `stmt` — execute it while the statement is alive;
/// the pre-rendered node text stays printable afterwards.
Result<std::shared_ptr<PhysicalPlan>> BuildPlan(const RetrieveStmt& stmt,
                                                const BoundStatement& bound,
                                                const ExecEnv& env);

/// Deep-copies a cached plan template for one execution: fresh (zeroed)
/// node stats, relation and index handles re-resolved against `env`,
/// compiled programs copied (their operand stacks are per-object scratch,
/// so concurrent executions must never share them), and the rollback
/// point re-stamped to env.now — only statements without an explicit
/// `as of` clause are cacheable, for which as_of is always "now".
/// Expression pointers keep aliasing the cache entry's AST, which must
/// stay alive while the clone executes.
Result<std::shared_ptr<PhysicalPlan>> ClonePlanForExec(const PhysicalPlan& tmpl,
                                                       const ExecEnv& env);

}  // namespace tdb

#endif  // CHRONOQUEL_EXEC_PLANNER_H_
