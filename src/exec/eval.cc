#include "exec/eval.h"

#include "util/stringx.h"

namespace tdb {

namespace {

bool Truthy(const Value& v) {
  if (v.is_integer()) return v.AsInt() != 0;
  if (v.type() == TypeId::kFloat8) return v.AsDouble() != 0;
  return false;
}

Result<Value> Arith(ExprOp op, const Value& a, const Value& b) {
  if (!a.is_numeric() || !b.is_numeric()) {
    return Status::Invalid("arithmetic requires numeric operands");
  }
  bool flt = a.type() == TypeId::kFloat8 || b.type() == TypeId::kFloat8;
  if (flt) {
    double x = a.AsDouble();
    double y = b.AsDouble();
    switch (op) {
      case ExprOp::kAdd:
        return Value::Float8(x + y);
      case ExprOp::kSub:
        return Value::Float8(x - y);
      case ExprOp::kMul:
        return Value::Float8(x * y);
      case ExprOp::kDiv:
        if (y == 0) return Status::Invalid("division by zero");
        return Value::Float8(x / y);
      case ExprOp::kMod:
        return Status::Invalid("modulo requires integer operands");
      default:
        break;
    }
  } else {
    int64_t x = a.AsInt();
    int64_t y = b.AsInt();
    switch (op) {
      case ExprOp::kAdd:
        return Value::Int4(x + y);
      case ExprOp::kSub:
        return Value::Int4(x - y);
      case ExprOp::kMul:
        return Value::Int4(x * y);
      case ExprOp::kDiv:
        if (y == 0) return Status::Invalid("division by zero");
        return Value::Int4(x / y);
      case ExprOp::kMod:
        if (y == 0) return Status::Invalid("modulo by zero");
        return Value::Int4(x % y);
      default:
        break;
    }
  }
  return Status::Internal("non-arithmetic operator in Arith");
}

}  // namespace

Result<Value> Evaluator::Eval(const Expr& expr, const Binding& binding) const {
  switch (expr.kind) {
    case Expr::Kind::kConstInt:
      return Value::Int4(expr.int_val);
    case Expr::Kind::kConstFloat:
      return Value::Float8(expr.float_val);
    case Expr::Kind::kConstString:
      return Value::Char(expr.str_val);
    case Expr::Kind::kParam: {
      if (params_ == nullptr || expr.param_index < 1 ||
          static_cast<size_t>(expr.param_index) > params_->size()) {
        return Status::Invalid(
            StrPrintf("parameter $%d is not bound (statement executed with "
                      "%zu argument(s))",
                      expr.param_index,
                      params_ == nullptr ? size_t{0} : params_->size()));
      }
      return (*params_)[static_cast<size_t>(expr.param_index - 1)];
    }
    case Expr::Kind::kColumn: {
      if (expr.var_index < 0 ||
          static_cast<size_t>(expr.var_index) >= binding.size() ||
          binding[static_cast<size_t>(expr.var_index)] == nullptr) {
        return Status::Internal("column '" + expr.var + "." + expr.attr +
                                "' evaluated without a bound tuple");
      }
      const VersionRef* ref = binding[static_cast<size_t>(expr.var_index)];
      return ref->attr(static_cast<size_t>(expr.attr_index));
    }
    case Expr::Kind::kUnary: {
      TDB_ASSIGN_OR_RETURN(Value v, Eval(*expr.left, binding));
      if (expr.op == ExprOp::kNot) return Value::Int4(Truthy(v) ? 0 : 1);
      // unary minus
      if (v.is_integer()) return Value::Int4(-v.AsInt());
      if (v.type() == TypeId::kFloat8) return Value::Float8(-v.AsDouble());
      return Status::Invalid("unary minus requires a numeric operand");
    }
    case Expr::Kind::kBinary: {
      if (expr.op == ExprOp::kAnd || expr.op == ExprOp::kOr) {
        TDB_ASSIGN_OR_RETURN(Value l, Eval(*expr.left, binding));
        bool lv = Truthy(l);
        if (expr.op == ExprOp::kAnd && !lv) return Value::Int4(0);
        if (expr.op == ExprOp::kOr && lv) return Value::Int4(1);
        TDB_ASSIGN_OR_RETURN(Value r, Eval(*expr.right, binding));
        return Value::Int4(Truthy(r) ? 1 : 0);
      }
      TDB_ASSIGN_OR_RETURN(Value l, Eval(*expr.left, binding));
      TDB_ASSIGN_OR_RETURN(Value r, Eval(*expr.right, binding));
      switch (expr.op) {
        case ExprOp::kEq:
        case ExprOp::kNe:
        case ExprOp::kLt:
        case ExprOp::kLe:
        case ExprOp::kGt:
        case ExprOp::kGe: {
          TDB_ASSIGN_OR_RETURN(int c, Value::Compare(l, r));
          bool out = false;
          switch (expr.op) {
            case ExprOp::kEq:
              out = c == 0;
              break;
            case ExprOp::kNe:
              out = c != 0;
              break;
            case ExprOp::kLt:
              out = c < 0;
              break;
            case ExprOp::kLe:
              out = c <= 0;
              break;
            case ExprOp::kGt:
              out = c > 0;
              break;
            default:
              out = c >= 0;
              break;
          }
          return Value::Int4(out ? 1 : 0);
        }
        default:
          return Arith(expr.op, l, r);
      }
    }
    case Expr::Kind::kAggregate: {
      // `by` aggregates are pre-computed into a group map by the executor;
      // evaluation keys it with the current row's group value.  (Plain
      // aggregates are folded into constants and never reach here.)
      if (expr.agg_groups != nullptr && expr.agg_by != nullptr) {
        TDB_ASSIGN_OR_RETURN(Value by, Eval(*expr.agg_by, binding));
        auto it = expr.agg_groups->find(by.ToString());
        if (it != expr.agg_groups->end()) return it->second;
        // Empty group: count/any are 0; others default to zero too.
        return expr.agg == AggFunc::kAvg ? Value::Float8(0) : Value::Int4(0);
      }
      return Status::Internal(
          "aggregate reached the evaluator (should be pre-computed)");
    }
  }
  return Status::Internal("unreachable expression kind");
}

Result<bool> Evaluator::EvalBool(const Expr& expr,
                                 const Binding& binding) const {
  TDB_ASSIGN_OR_RETURN(Value v, Eval(expr, binding));
  return Truthy(v);
}

Result<Interval> Evaluator::EvalTemporal(const TemporalExpr& expr,
                                         const Binding& binding) const {
  switch (expr.kind) {
    case TemporalExpr::Kind::kVar: {
      if (expr.var_index < 0 ||
          static_cast<size_t>(expr.var_index) >= binding.size() ||
          binding[static_cast<size_t>(expr.var_index)] == nullptr) {
        return Status::Internal("temporal variable '" + expr.var +
                                "' evaluated without a bound tuple");
      }
      return binding[static_cast<size_t>(expr.var_index)]->valid;
    }
    case TemporalExpr::Kind::kConst:
      return Interval::Event(expr.const_time);
    case TemporalExpr::Kind::kNow:
      return Interval::Event(now_);
    case TemporalExpr::Kind::kStartOf: {
      TDB_ASSIGN_OR_RETURN(Interval i, EvalTemporal(*expr.left, binding));
      return Interval::Event(i.from);
    }
    case TemporalExpr::Kind::kEndOf: {
      TDB_ASSIGN_OR_RETURN(Interval i, EvalTemporal(*expr.left, binding));
      return Interval::Event(i.to);
    }
    case TemporalExpr::Kind::kOverlap: {
      TDB_ASSIGN_OR_RETURN(Interval a, EvalTemporal(*expr.left, binding));
      TDB_ASSIGN_OR_RETURN(Interval b, EvalTemporal(*expr.right, binding));
      return Interval::Intersect(a, b);
    }
    case TemporalExpr::Kind::kExtend: {
      TDB_ASSIGN_OR_RETURN(Interval a, EvalTemporal(*expr.left, binding));
      TDB_ASSIGN_OR_RETURN(Interval b, EvalTemporal(*expr.right, binding));
      return Interval::Span(a, b);
    }
  }
  return Status::Internal("unreachable temporal expression kind");
}

Result<bool> Evaluator::EvalPred(const TemporalPred& pred,
                                 const Binding& binding) const {
  switch (pred.kind) {
    case TemporalPred::Kind::kPrecede: {
      TDB_ASSIGN_OR_RETURN(Interval a, EvalTemporal(*pred.lexpr, binding));
      TDB_ASSIGN_OR_RETURN(Interval b, EvalTemporal(*pred.rexpr, binding));
      return a.Precedes(b);
    }
    case TemporalPred::Kind::kOverlap: {
      TDB_ASSIGN_OR_RETURN(Interval a, EvalTemporal(*pred.lexpr, binding));
      TDB_ASSIGN_OR_RETURN(Interval b, EvalTemporal(*pred.rexpr, binding));
      return a.Overlaps(b);
    }
    case TemporalPred::Kind::kEqual: {
      TDB_ASSIGN_OR_RETURN(Interval a, EvalTemporal(*pred.lexpr, binding));
      TDB_ASSIGN_OR_RETURN(Interval b, EvalTemporal(*pred.rexpr, binding));
      return a == b;
    }
    case TemporalPred::Kind::kNonEmpty: {
      // A bare `a overlap b` predicate uses the precise overlap test (the
      // intersection of two half-open intervals that merely touch is not an
      // overlap); any other bare interval expression tests non-emptiness.
      const TemporalExpr& e = *pred.lexpr;
      if (e.kind == TemporalExpr::Kind::kOverlap) {
        TDB_ASSIGN_OR_RETURN(Interval a, EvalTemporal(*e.left, binding));
        TDB_ASSIGN_OR_RETURN(Interval b, EvalTemporal(*e.right, binding));
        return a.Overlaps(b);
      }
      TDB_ASSIGN_OR_RETURN(Interval i, EvalTemporal(e, binding));
      return !i.empty();
    }
    case TemporalPred::Kind::kAnd: {
      TDB_ASSIGN_OR_RETURN(bool l, EvalPred(*pred.left, binding));
      if (!l) return false;
      return EvalPred(*pred.right, binding);
    }
    case TemporalPred::Kind::kOr: {
      TDB_ASSIGN_OR_RETURN(bool l, EvalPred(*pred.left, binding));
      if (l) return true;
      return EvalPred(*pred.right, binding);
    }
    case TemporalPred::Kind::kNot: {
      TDB_ASSIGN_OR_RETURN(bool l, EvalPred(*pred.left, binding));
      return !l;
    }
  }
  return Status::Internal("unreachable temporal predicate kind");
}

}  // namespace tdb
