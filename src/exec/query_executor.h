#ifndef CHRONOQUEL_EXEC_QUERY_EXECUTOR_H_
#define CHRONOQUEL_EXEC_QUERY_EXECUTOR_H_

#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "core/result_set.h"
#include "exec/eval.h"
#include "exec/exec_env.h"
#include "exec/planner.h"
#include "exec/version_source.h"
#include "tquel/ast.h"
#include "tquel/binder.h"

namespace tdb {

/// Executes retrieve statements the way the prototype (and Ingres) does:
///   * one-variable queries through the one-variable query processor with
///     access-path selection (hashed access, ISAM access, secondary index,
///     or sequential scan);
///   * two-variable queries by one-variable detachment of the outer
///     variable into a temporary relation followed by tuple substitution
///     into the keyed inner variable (the asymmetric Q09/Q10 plans), or by
///     nested sequential scans when no keyed path exists (Q11);
///   * more variables by left-deep nested iteration with per-level access
///     selection.
class QueryExecutor {
 public:
  explicit QueryExecutor(const ExecEnv& env) : env_(env), eval_(env.now) {}

  Result<ExecResult> Retrieve(RetrieveStmt* stmt, const BoundStatement& bound);

 private:
  struct VarInfo {
    Relation* rel = nullptr;
    bool current_only = false;
  };

  /// Callback receiving each fully-bound row candidate.
  using EmitFn = std::function<Status(const Binding&)>;

  /// Pre-computes aggregate target sub-expressions into constants.
  Status FoldAggregates(RetrieveStmt* stmt, const BoundStatement& bound);
  Status FoldAggregate(Expr* expr, const BoundStatement& bound);

  /// True when the version's transaction interval qualifies under `as of`.
  bool QualifiesAsOf(const Interval& tx) const;

  /// Applies the where/when conjuncts whose variables are covered by
  /// `bound_vars` and not yet applied at an outer level.
  Result<bool> ApplyFilters(const Binding& binding,
                            const std::set<int>& bound_vars,
                            const std::set<int>& outer_vars);

  /// Iterates variable `var` through `choice`, calling `body` per version
  /// that passes its per-level filters.
  Status IterateVar(int var, const std::set<int>& outer_vars,
                    Binding* binding, const EmitFn& body);

  /// Generic left-deep nested iteration starting at `level`.
  Status Nested(size_t level, std::set<int> bound_vars, Binding* binding,
                const EmitFn& emit);

  /// Two-variable plan: detach `outer` into a temp relation, then probe
  /// `inner` through `inner_choice` per temp row.
  Status Substitution(int outer, int inner, const AccessChoice& inner_choice,
                      Binding* binding, const EmitFn& emit);

  /// Builds the AccessSpec (evaluating the probe expression) for a choice.
  Result<AccessSpec> SpecFor(int var, const AccessChoice& choice,
                             const Binding& binding) const;

  /// Human-readable summary of the chosen access path for `var`.
  std::string DescribeChoice(int var, const AccessChoice& choice) const;

  ExecEnv env_;
  Evaluator eval_;

  // Per-statement state.
  RetrieveStmt* stmt_ = nullptr;
  std::vector<VarInfo> vars_;
  std::vector<Conjunct> where_conjuncts_;
  std::vector<TemporalConjunct> when_conjuncts_;
  bool has_as_of_ = false;
  TimePoint as_of_at_;
  bool has_through_ = false;
  TimePoint as_of_through_;
  int temp_counter_ = 0;
  /// Plan decisions accumulated during execution, reported in the result
  /// message (e.g. "h: keyed; i: scan->temp; substitution").
  std::vector<std::string> plan_notes_;
};

}  // namespace tdb

#endif  // CHRONOQUEL_EXEC_QUERY_EXECUTOR_H_
