#ifndef CHRONOQUEL_EXEC_QUERY_EXECUTOR_H_
#define CHRONOQUEL_EXEC_QUERY_EXECUTOR_H_

#include <functional>
#include <memory>
#include <vector>

#include "core/result_set.h"
#include "exec/eval.h"
#include "exec/exec_env.h"
#include "exec/plan.h"
#include "exec/planner.h"
#include "exec/version_source.h"
#include "tquel/ast.h"
#include "tquel/binder.h"

namespace tdb {

/// Interprets the physical plan BuildPlan produces for a retrieve
/// statement.  All access-path and join-order decisions were made by the
/// planner; this class only evaluates the tree, the way the prototype (and
/// Ingres) executes it:
///   * an access leaf streams one variable's versions through the chosen
///     path (hashed/ISAM lookup, secondary index, key range, or scan);
///   * a FilterNode applies that level's residual where/when conjuncts;
///   * a NestedLoopNode iterates its levels left-deep;
///   * a SubstitutionNode detaches the outer variable into a temporary
///     relation, then probes the keyed inner variable per temp row (the
///     asymmetric Q09/Q10 plans).
/// While executing it annotates every node's PlanNodeStats — loops, rows,
/// and page I/O scoped via IoCounters deltas — and attaches the annotated
/// plan to the ExecResult.
class QueryExecutor {
 public:
  explicit QueryExecutor(const ExecEnv& env) : env_(env), eval_(env.now) {}

  Result<ExecResult> Retrieve(RetrieveStmt* stmt, const BoundStatement& bound);

 private:
  /// Callback receiving each fully-bound row candidate.
  using EmitFn = std::function<Status(const Binding&)>;

  /// Pre-computes aggregate target sub-expressions into constants.
  Status FoldAggregates(RetrieveStmt* stmt, const BoundStatement& bound);
  Status FoldAggregate(Expr* expr, const BoundStatement& bound);

  /// True when the version's transaction interval qualifies under `as of`.
  bool QualifiesAsOf(const Interval& tx) const;

  /// Evaluates a FilterNode's residual conjuncts against the binding.
  Result<bool> EvalFilter(const FilterNode& filter, const Binding& binding);

  /// Runs one nesting level (FilterNode or access leaf), calling `body` per
  /// version that passes the level's as-of check and residual filters.
  Status ExecuteLevel(PlanNode* level, Binding* binding, const EmitFn& body);

  /// Streams an access leaf, accumulating its stats and I/O.
  Status ExecuteAccess(AccessNode* node, Binding* binding, const EmitFn& body);

  // --- vectorized (morsel-at-a-time) variants, used when VectorExecEnabled()
  // and the level is safe to batch (see ExecuteNestedLoop's routing rule) ---

  /// Morsel-driven ExecuteLevel: fuses the level's access leaf and optional
  /// FilterNode — versions are gathered in batches, the as-of check and the
  /// residual conjuncts run as selection-vector kernels, and `body` is
  /// invoked per surviving row.  Row/IO/loop stats match the tuple path.
  Status ExecuteLevelVectorized(PlanNode* level, Binding* binding,
                                const EmitFn& body);
  Status ExecuteAccessVectorized(AccessNode* node, FilterNode* filter,
                                 Binding* binding, const EmitFn& body);

  /// Drops from `sel` the morsel rows whose transaction interval fails the
  /// statement's as-of qualification.  Only called for schemas with
  /// transaction time.
  void FilterAsOfBatch(const Schema& schema, const Morsel& m,
                       SelVec* sel) const;

  /// Batch form of EvalFilter over `sel` (refined in place).  Uses the
  /// compiled batch kernels when the node's conjuncts all compiled,
  /// otherwise interprets the ASTs row by row through `scratch`.
  Status EvalFilterBatch(const FilterNode& filter, const Schema& schema,
                         int var, const Morsel& m, Binding* binding,
                         VersionRef* scratch, SelVec* sel);

  Status ExecuteNestedLoop(NestedLoopNode* node, size_t level,
                           Binding* binding, const EmitFn& emit);
  Status ExecuteSubstitution(SubstitutionNode* node, Binding* binding,
                             const EmitFn& emit);

  /// Batched hash join (cost-based planning): runs the build side to
  /// completion into an in-memory table keyed on the normalized build-key
  /// value, then streams the probe side — both sides morsel-batched when
  /// vectorized execution is on — emitting per matching pair that passes
  /// the residual filter.
  Status ExecuteHashJoin(HashJoinNode* node, Binding* binding,
                         const EmitFn& emit);
  /// Sort/merge temporal interval join (cost-based planning): materializes
  /// both sides, sorts by valid-interval start, and sweeps with two
  /// pointers emitting pairs whose valid intervals overlap.
  Status ExecuteIntervalJoin(IntervalJoinNode* node, Binding* binding,
                             const EmitFn& emit);

  /// Builds the AccessSpec (evaluating the probe expression) for a leaf.
  Result<AccessSpec> SpecFor(const AccessNode& node,
                             const Binding& binding) const;

  ExecEnv env_;
  Evaluator eval_;

  // Per-statement state.
  /// True when the owning Database has a metrics registry wired: per-node
  /// wall clocks run and trace spans record.  False keeps the clock out of
  /// the hot path entirely (the zero-cost-when-disabled guarantee).
  bool timing_ = false;
  RetrieveStmt* stmt_ = nullptr;
  std::vector<Relation*> rels_;  // per bound variable
  TimePoint as_of_at_;
  bool has_through_ = false;
  TimePoint as_of_through_;
  int temp_counter_ = 0;

  /// True when this statement runs the morsel-driven engine (the
  /// TDB_VECTOR_EXEC lever, sampled once per Retrieve).
  bool vectorized_ = false;
  /// Within a nested loop: true when every level reads a distinct relation.
  /// Zero-copy morsels pin one buffer frame of their relation's pager, so a
  /// non-innermost level may batch only if the levels below it never touch
  /// the same pager (a self-join's inner rescans would both evict the
  /// outer's pinned frame and change the re-read counts).  The innermost
  /// level is always safe: its per-row body does no page I/O.
  bool nlj_distinct_rels_ = true;

  /// Reusable per-level batch state (morsel arena, selection vector, and the
  /// scratch VersionRef rows are bound through).  Pooled so inner levels —
  /// reopened once per outer row — do not reallocate every time.
  struct VecScratch {
    Morsel morsel;
    SelVec sel;
    VersionRef ref;
  };
  std::unique_ptr<VecScratch> AcquireVecScratch();
  void ReleaseVecScratch(std::unique_ptr<VecScratch> s);
  std::vector<std::unique_ptr<VecScratch>> vec_pool_;
};

}  // namespace tdb

#endif  // CHRONOQUEL_EXEC_QUERY_EXECUTOR_H_
