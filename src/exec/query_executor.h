#ifndef CHRONOQUEL_EXEC_QUERY_EXECUTOR_H_
#define CHRONOQUEL_EXEC_QUERY_EXECUTOR_H_

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/result_set.h"
#include "exec/eval.h"
#include "exec/exec_env.h"
#include "exec/plan.h"
#include "exec/planner.h"
#include "exec/version_source.h"
#include "tquel/ast.h"
#include "tquel/binder.h"

namespace tdb {

struct RowProjector;  // query_executor.cc

/// Interprets the physical plan BuildPlan produces for a retrieve
/// statement.  All access-path and join-order decisions were made by the
/// planner; this class only evaluates the tree, the way the prototype (and
/// Ingres) executes it:
///   * an access leaf streams one variable's versions through the chosen
///     path (hashed/ISAM lookup, secondary index, key range, or scan);
///   * a FilterNode applies that level's residual where/when conjuncts;
///   * a NestedLoopNode iterates its levels left-deep;
///   * a SubstitutionNode detaches the outer variable into a temporary
///     relation, then probes the keyed inner variable per temp row (the
///     asymmetric Q09/Q10 plans).
/// While executing it annotates every node's PlanNodeStats — loops, rows,
/// and page I/O scoped via IoCounters deltas — and attaches the annotated
/// plan to the ExecResult.
class QueryExecutor {
 public:
  explicit QueryExecutor(const ExecEnv& env)
      : env_(env), eval_(env.now, env.params) {}

  /// Executes a retrieve.  `prebuilt`, when given, skips planning and
  /// interprets the supplied plan instead — the plan-cache path; it must
  /// have been cloned for this execution (fresh stats, relation handles
  /// resolved against this env) and `stmt` is treated as read-only so a
  /// cached AST can be shared across sessions.
  Result<ExecResult> Retrieve(RetrieveStmt* stmt, const BoundStatement& bound,
                              std::shared_ptr<PhysicalPlan> prebuilt = nullptr);

 private:
  /// Callback receiving each fully-bound row candidate.
  using EmitFn = std::function<Status(const Binding&)>;

  /// Pre-computes aggregate target sub-expressions into constants.
  Status FoldAggregates(RetrieveStmt* stmt, const BoundStatement& bound);
  Status FoldAggregate(Expr* expr, const BoundStatement& bound);

  /// True when the version's transaction interval qualifies under `as of`.
  bool QualifiesAsOf(const Interval& tx) const;

  /// Evaluates a FilterNode's residual conjuncts against the binding.
  Result<bool> EvalFilter(const FilterNode& filter, const Binding& binding);

  /// Runs one nesting level (FilterNode or access leaf), calling `body` per
  /// version that passes the level's as-of check and residual filters.
  Status ExecuteLevel(PlanNode* level, Binding* binding, const EmitFn& body);

  /// Streams an access leaf, accumulating its stats and I/O.
  Status ExecuteAccess(AccessNode* node, Binding* binding, const EmitFn& body);

  // --- vectorized (morsel-at-a-time) variants, used when env_.vector_exec
  // and the level is safe to batch (see ExecuteNestedLoop's routing rule) ---

  /// Morsel-driven ExecuteLevel: fuses the level's access leaf and optional
  /// FilterNode — versions are gathered in batches, the as-of check and the
  /// residual conjuncts run as selection-vector kernels, and `body` is
  /// invoked per surviving row.  Row/IO/loop stats match the tuple path.
  Status ExecuteLevelVectorized(PlanNode* level, Binding* binding,
                                const EmitFn& body);
  Status ExecuteAccessVectorized(AccessNode* node, FilterNode* filter,
                                 Binding* binding, const EmitFn& body);

  /// Drops from `sel` the morsel rows whose transaction interval fails the
  /// statement's as-of qualification.  Only called for schemas with
  /// transaction time.
  void FilterAsOfBatch(const Schema& schema, const Morsel& m,
                       SelVec* sel) const;

  /// Batch form of EvalFilter over `sel` (refined in place).  Uses the
  /// compiled batch kernels when the node's conjuncts all compiled,
  /// otherwise interprets the ASTs row by row through `scratch`.
  Status EvalFilterBatch(const FilterNode& filter, const Schema& schema,
                         int var, const Morsel& m, Binding* binding,
                         VersionRef* scratch, SelVec* sel);

  /// EvalFilter / EvalFilterBatch against caller-owned compiled-program
  /// copies: a CompiledProgram's operand stacks are per-object scratch, so
  /// parallel scan workers must never share the plan node's own programs.
  /// `compiled` is the node's all-or-nothing lowering gate, pre-computed.
  Result<bool> EvalFilterWith(const FilterNode& filter,
                              const std::vector<CompiledProgram>& where_prog,
                              const std::vector<CompiledProgram>& when_prog,
                              bool compiled, const Binding& binding) const;
  Status EvalFilterBatchWith(const FilterNode& filter,
                             const std::vector<CompiledProgram>& where_prog,
                             const std::vector<CompiledProgram>& when_prog,
                             bool compiled, const Schema& schema, int var,
                             const Morsel& m, Binding* binding,
                             VersionRef* scratch, SelVec* sel) const;

  // --- morsel-driven intra-query parallelism (see exec/worker_pool.h) ---

  /// A planned parallel scan: the sequential-scan leaf (with its optional
  /// fused FilterNode) plus the store chunks workers claim.
  struct ParScan {
    AccessNode* node = nullptr;
    FilterNode* filter = nullptr;
    std::vector<ScanChunk> chunks;
  };

  /// Per-chunk row counters, accumulated worker-locally and merged into the
  /// plan nodes in chunk order after the pool joins, so the annotated stats
  /// are identical to a serial run at any thread count.
  struct ChunkStats {
    uint64_t examined = 0;
    uint64_t emitted = 0;
    uint64_t filter_examined = 0;
    uint64_t filter_emitted = 0;
  };

  struct ScanWorkerState;  // per-worker scratch, defined in the .cc

  /// Receives each surviving row of a parallel scan ON A WORKER THREAD:
  /// `task` is the chunk index (index per-task output buffers with it; one
  /// worker owns a task at a time), `binding` is the worker's private copy
  /// with the scanned variable bound.  Must not touch shared mutable state.
  using ParallelRowFn = std::function<Status(size_t task, Binding* binding)>;

  /// Decides whether `level` — an access leaf, optionally under a
  /// FilterNode — can run as a parallel scan.  Requires >= 2 exec threads,
  /// the vectorized engine, no active I/O trace (workers would interleave
  /// its per-page log), a plain kSeqScan leaf, >= 2 chunks, and the paper's
  /// single-frame pager on every page-range-chunked store (the I/O
  /// replay rules below are derived for exactly that configuration).
  std::optional<ParScan> TryPlanParallelScan(PlanNode* level);

  /// Runs the scan's chunks on the shared worker pool, calling `row` per
  /// surviving version.  Deterministic by construction: chunks are cut in
  /// the serial visit order, claimed via an atomic counter, and every
  /// merge (stats, errors, and the caller's per-task outputs) happens in
  /// chunk order after the join.  Buffer-frame normalization before
  /// dispatch plus re-priming after it keep the relation's IoCounters
  /// bit-identical to the serial scan's at any thread count.
  Status RunParallelScan(ParScan* ps, const Binding& binding,
                         const ParallelRowFn& row);

  /// Scans one chunk on a worker: page-range chunks read through
  /// Pager::ReadPageInto into private memory and replay the serial
  /// cursor's slot walk; use_cursor chunks stream the store's ordinary
  /// Scan() (that worker is the pager's only user).
  Status ProcessScanChunk(const ParScan& ps, const ScanChunk& chunk,
                          size_t task, ScanWorkerState* ws,
                          const ParallelRowFn& row, ChunkStats* stats) const;

  Status ExecuteNestedLoop(NestedLoopNode* node, size_t level,
                           Binding* binding, const EmitFn& emit);
  Status ExecuteSubstitution(SubstitutionNode* node, Binding* binding,
                             const EmitFn& emit);

  /// Batched hash join (cost-based planning): runs the build side to
  /// completion into an in-memory table keyed on the normalized build-key
  /// value, then streams the probe side — both sides morsel-batched when
  /// vectorized execution is on — emitting per matching pair that passes
  /// the residual filter.
  Status ExecuteHashJoin(HashJoinNode* node, Binding* binding,
                         const EmitFn& emit);
  /// Sort/merge temporal interval join (cost-based planning): materializes
  /// both sides, sorts by valid-interval start, and sweeps with two
  /// pointers emitting pairs whose valid intervals overlap.
  Status ExecuteIntervalJoin(IntervalJoinNode* node, Binding* binding,
                             const EmitFn& emit);

  /// Builds the AccessSpec (evaluating the probe expression) for a leaf.
  Result<AccessSpec> SpecFor(const AccessNode& node,
                             const Binding& binding) const;

  ExecEnv env_;
  Evaluator eval_;

  // Per-statement state.
  /// True when the owning Database has a metrics registry wired: per-node
  /// wall clocks run and trace spans record.  False keeps the clock out of
  /// the hot path entirely (the zero-cost-when-disabled guarantee).
  bool timing_ = false;
  RetrieveStmt* stmt_ = nullptr;
  std::vector<Relation*> rels_;  // per bound variable
  TimePoint as_of_at_;
  bool has_through_ = false;
  TimePoint as_of_through_;
  int temp_counter_ = 0;

  /// True when this statement runs the morsel-driven engine (the
  /// TDB_VECTOR_EXEC lever, sampled once per Retrieve).
  bool vectorized_ = false;
  /// True when the executing plan came from the plan cache: access specs
  /// carry the storage readahead depth as a history-prefetch hint.
  bool hot_plan_ = false;
  /// Root projector/sink split of Retrieve's emit path, wired while a
  /// statement runs: the projector is the thread-safe row-building half
  /// (copied per parallel-probe task), the sink the ordering-sensitive
  /// half (`unique` dedup + result push) that stays on the coordinator.
  const RowProjector* root_proj_ = nullptr;
  const std::function<Status(Row&&)>* root_sink_ = nullptr;
  /// Within a nested loop: true when every level reads a distinct relation.
  /// Zero-copy morsels pin one buffer frame of their relation's pager, so a
  /// non-innermost level may batch only if the levels below it never touch
  /// the same pager (a self-join's inner rescans would both evict the
  /// outer's pinned frame and change the re-read counts).  The innermost
  /// level is always safe: its per-row body does no page I/O.
  bool nlj_distinct_rels_ = true;

  /// Reusable per-level batch state (morsel arena, selection vector, and the
  /// scratch VersionRef rows are bound through).  Pooled so inner levels —
  /// reopened once per outer row — do not reallocate every time.
  struct VecScratch {
    Morsel morsel;
    SelVec sel;
    VersionRef ref;
  };
  std::unique_ptr<VecScratch> AcquireVecScratch();
  void ReleaseVecScratch(std::unique_ptr<VecScratch> s);
  std::vector<std::unique_ptr<VecScratch>> vec_pool_;
};

}  // namespace tdb

#endif  // CHRONOQUEL_EXEC_QUERY_EXECUTOR_H_
