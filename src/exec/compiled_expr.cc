#include "exec/compiled_expr.h"

#include <cstdlib>

namespace tdb {

namespace {
std::optional<bool> g_compiled_override;
}  // namespace

bool CompiledExprEnabled() {
  if (g_compiled_override.has_value()) return *g_compiled_override;
  static const bool enabled = [] {
    const char* v = std::getenv("TDB_COMPILED_EXPR");
    return v == nullptr || std::string_view(v) != "0";
  }();
  return enabled;
}

void SetCompiledExprEnabledForTest(std::optional<bool> enabled) {
  g_compiled_override = enabled;
}

namespace {

bool Truthy(const Value& v) {
  if (v.is_integer()) return v.AsInt() != 0;
  if (v.type() == TypeId::kFloat8) return v.AsDouble() != 0;
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

std::optional<CompiledProgram> CompiledProgram::CompileExpr(const Expr& expr) {
  CompiledProgram prog(Kind::kScalar);
  if (!prog.EmitExpr(expr)) return std::nullopt;
  return prog;
}

CompiledProgram CompiledProgram::CompileTemporal(const TemporalExpr& expr) {
  CompiledProgram prog(Kind::kInterval);
  prog.EmitTemporal(expr);
  return prog;
}

CompiledProgram CompiledProgram::CompilePred(const TemporalPred& pred) {
  CompiledProgram prog(Kind::kPredicate);
  prog.EmitPred(pred);
  return prog;
}

bool CompiledProgram::EmitExpr(const Expr& expr) {
  switch (expr.kind) {
    case Expr::Kind::kConstInt: {
      Instr in{Op::kPushInt};
      in.ival = expr.int_val;
      code_.push_back(std::move(in));
      return true;
    }
    case Expr::Kind::kConstFloat: {
      Instr in{Op::kPushFloat};
      in.fval = expr.float_val;
      code_.push_back(std::move(in));
      return true;
    }
    case Expr::Kind::kConstString: {
      Instr in{Op::kPushStr};
      in.sval = expr.str_val;
      code_.push_back(std::move(in));
      return true;
    }
    case Expr::Kind::kColumn: {
      Instr in{Op::kLoadCol};
      in.a = expr.var_index;
      in.b = expr.attr_index;
      in.sval = expr.var + "." + expr.attr;  // for the unbound-tuple error
      code_.push_back(std::move(in));
      return true;
    }
    case Expr::Kind::kUnary: {
      if (!EmitExpr(*expr.left)) return false;
      code_.push_back(
          Instr{expr.op == ExprOp::kNot ? Op::kNot : Op::kNeg});
      return true;
    }
    case Expr::Kind::kBinary: {
      if (expr.op == ExprOp::kAnd || expr.op == ExprOp::kOr) {
        // Short circuit exactly like the Evaluator: a falsy (truthy) left
        // operand yields Int4(0) (Int4(1)) without touching the right one;
        // otherwise the result is the right operand coerced to 0/1.
        if (!EmitExpr(*expr.left)) return false;
        size_t jump_at = code_.size();
        code_.push_back(
            Instr{expr.op == ExprOp::kAnd ? Op::kAndJump : Op::kOrJump});
        if (!EmitExpr(*expr.right)) return false;
        code_.push_back(Instr{Op::kCoerceBool});
        code_[jump_at].a = static_cast<int32_t>(code_.size());
        return true;
      }
      if (!EmitExpr(*expr.left)) return false;
      if (!EmitExpr(*expr.right)) return false;
      switch (expr.op) {
        case ExprOp::kEq:
          code_.push_back(Instr{Op::kCmpEq});
          return true;
        case ExprOp::kNe:
          code_.push_back(Instr{Op::kCmpNe});
          return true;
        case ExprOp::kLt:
          code_.push_back(Instr{Op::kCmpLt});
          return true;
        case ExprOp::kLe:
          code_.push_back(Instr{Op::kCmpLe});
          return true;
        case ExprOp::kGt:
          code_.push_back(Instr{Op::kCmpGt});
          return true;
        case ExprOp::kGe:
          code_.push_back(Instr{Op::kCmpGe});
          return true;
        case ExprOp::kAdd:
          code_.push_back(Instr{Op::kAdd});
          return true;
        case ExprOp::kSub:
          code_.push_back(Instr{Op::kSub});
          return true;
        case ExprOp::kMul:
          code_.push_back(Instr{Op::kMul});
          return true;
        case ExprOp::kDiv:
          code_.push_back(Instr{Op::kDiv});
          return true;
        case ExprOp::kMod:
          code_.push_back(Instr{Op::kMod});
          return true;
        default:
          return false;
      }
    }
    case Expr::Kind::kAggregate:
      // Plain aggregates are folded into constants before target programs
      // are compiled; grouped (`by`) aggregates keep their node and look a
      // map up per row — those stay on the Evaluator path.
      return false;
  }
  return false;
}

void CompiledProgram::EmitTemporal(const TemporalExpr& expr) {
  switch (expr.kind) {
    case TemporalExpr::Kind::kVar: {
      Instr in{Op::kIvalVar};
      in.a = expr.var_index;
      in.sval = expr.var;
      code_.push_back(std::move(in));
      return;
    }
    case TemporalExpr::Kind::kConst: {
      Instr in{Op::kIvalConst};
      in.tval = expr.const_time;
      code_.push_back(std::move(in));
      return;
    }
    case TemporalExpr::Kind::kNow:
      code_.push_back(Instr{Op::kIvalNow});
      return;
    case TemporalExpr::Kind::kStartOf:
      EmitTemporal(*expr.left);
      code_.push_back(Instr{Op::kIvalStart});
      return;
    case TemporalExpr::Kind::kEndOf:
      EmitTemporal(*expr.left);
      code_.push_back(Instr{Op::kIvalEnd});
      return;
    case TemporalExpr::Kind::kOverlap:
      EmitTemporal(*expr.left);
      EmitTemporal(*expr.right);
      code_.push_back(Instr{Op::kIvalIntersect});
      return;
    case TemporalExpr::Kind::kExtend:
      EmitTemporal(*expr.left);
      EmitTemporal(*expr.right);
      code_.push_back(Instr{Op::kIvalSpan});
      return;
  }
}

void CompiledProgram::EmitPred(const TemporalPred& pred) {
  switch (pred.kind) {
    case TemporalPred::Kind::kPrecede:
      EmitTemporal(*pred.lexpr);
      EmitTemporal(*pred.rexpr);
      code_.push_back(Instr{Op::kPredPrecede});
      return;
    case TemporalPred::Kind::kOverlap:
      EmitTemporal(*pred.lexpr);
      EmitTemporal(*pred.rexpr);
      code_.push_back(Instr{Op::kPredOverlap});
      return;
    case TemporalPred::Kind::kEqual:
      EmitTemporal(*pred.lexpr);
      EmitTemporal(*pred.rexpr);
      code_.push_back(Instr{Op::kPredEqual});
      return;
    case TemporalPred::Kind::kNonEmpty: {
      // Bare `a overlap b` uses the precise overlap test (touching
      // half-open intervals do not overlap); any other bare interval
      // expression tests non-emptiness — mirroring Evaluator::EvalPred.
      const TemporalExpr& e = *pred.lexpr;
      if (e.kind == TemporalExpr::Kind::kOverlap) {
        EmitTemporal(*e.left);
        EmitTemporal(*e.right);
        code_.push_back(Instr{Op::kPredOverlap});
        return;
      }
      EmitTemporal(e);
      code_.push_back(Instr{Op::kPredNonEmpty});
      return;
    }
    case TemporalPred::Kind::kAnd: {
      EmitPred(*pred.left);
      size_t jump_at = code_.size();
      code_.push_back(Instr{Op::kPredAndJump});
      EmitPred(*pred.right);
      code_[jump_at].a = static_cast<int32_t>(code_.size());
      return;
    }
    case TemporalPred::Kind::kOr: {
      EmitPred(*pred.left);
      size_t jump_at = code_.size();
      code_.push_back(Instr{Op::kPredOrJump});
      EmitPred(*pred.right);
      code_[jump_at].a = static_cast<int32_t>(code_.size());
      return;
    }
    case TemporalPred::Kind::kNot:
      EmitPred(*pred.left);
      code_.push_back(Instr{Op::kPredNot});
      return;
  }
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

Status CompiledProgram::Run(const Binding& binding, TimePoint now) const {
  vals_.clear();
  ivals_.clear();
  bools_.clear();

  size_t i = 0;
  const size_t n = code_.size();
  while (i < n) {
    const Instr& in = code_[i];
    ++i;
    switch (in.op) {
      case Op::kPushInt:
        vals_.push_back(Value::Int4(in.ival));
        break;
      case Op::kPushFloat:
        vals_.push_back(Value::Float8(in.fval));
        break;
      case Op::kPushStr:
        vals_.push_back(Value::Char(in.sval));
        break;
      case Op::kLoadCol: {
        if (in.a < 0 || static_cast<size_t>(in.a) >= binding.size() ||
            binding[static_cast<size_t>(in.a)] == nullptr) {
          return Status::Internal("column '" + in.sval +
                                  "' evaluated without a bound tuple");
        }
        vals_.push_back(binding[static_cast<size_t>(in.a)]->attr(
            static_cast<size_t>(in.b)));
        break;
      }
      case Op::kAdd:
      case Op::kSub:
      case Op::kMul:
      case Op::kDiv:
      case Op::kMod: {
        Value b = std::move(vals_.back());
        vals_.pop_back();
        Value& a = vals_.back();
        if (!a.is_numeric() || !b.is_numeric()) {
          return Status::Invalid("arithmetic requires numeric operands");
        }
        if (a.type() == TypeId::kFloat8 || b.type() == TypeId::kFloat8) {
          double x = a.AsDouble();
          double y = b.AsDouble();
          switch (in.op) {
            case Op::kAdd:
              a = Value::Float8(x + y);
              break;
            case Op::kSub:
              a = Value::Float8(x - y);
              break;
            case Op::kMul:
              a = Value::Float8(x * y);
              break;
            case Op::kDiv:
              if (y == 0) return Status::Invalid("division by zero");
              a = Value::Float8(x / y);
              break;
            default:
              return Status::Invalid("modulo requires integer operands");
          }
        } else {
          int64_t x = a.AsInt();
          int64_t y = b.AsInt();
          switch (in.op) {
            case Op::kAdd:
              a = Value::Int4(x + y);
              break;
            case Op::kSub:
              a = Value::Int4(x - y);
              break;
            case Op::kMul:
              a = Value::Int4(x * y);
              break;
            case Op::kDiv:
              if (y == 0) return Status::Invalid("division by zero");
              a = Value::Int4(x / y);
              break;
            default:
              if (y == 0) return Status::Invalid("modulo by zero");
              a = Value::Int4(x % y);
              break;
          }
        }
        break;
      }
      case Op::kCmpEq:
      case Op::kCmpNe:
      case Op::kCmpLt:
      case Op::kCmpLe:
      case Op::kCmpGt:
      case Op::kCmpGe: {
        Value b = std::move(vals_.back());
        vals_.pop_back();
        Value& a = vals_.back();
        int c = 0;
        if (!Value::TryCompare(a, b, &c)) {
          return Value::Compare(a, b).status();
        }
        bool out = false;
        switch (in.op) {
          case Op::kCmpEq:
            out = c == 0;
            break;
          case Op::kCmpNe:
            out = c != 0;
            break;
          case Op::kCmpLt:
            out = c < 0;
            break;
          case Op::kCmpLe:
            out = c <= 0;
            break;
          case Op::kCmpGt:
            out = c > 0;
            break;
          default:
            out = c >= 0;
            break;
        }
        a = Value::Int4(out ? 1 : 0);
        break;
      }
      case Op::kNot: {
        Value& a = vals_.back();
        a = Value::Int4(Truthy(a) ? 0 : 1);
        break;
      }
      case Op::kNeg: {
        Value& a = vals_.back();
        if (a.is_integer()) {
          a = Value::Int4(-a.AsInt());
        } else if (a.type() == TypeId::kFloat8) {
          a = Value::Float8(-a.AsDouble());
        } else {
          return Status::Invalid("unary minus requires a numeric operand");
        }
        break;
      }
      case Op::kAndJump: {
        bool t = Truthy(vals_.back());
        vals_.pop_back();
        if (!t) {
          vals_.push_back(Value::Int4(0));
          i = static_cast<size_t>(in.a);
        }
        break;
      }
      case Op::kOrJump: {
        bool t = Truthy(vals_.back());
        vals_.pop_back();
        if (t) {
          vals_.push_back(Value::Int4(1));
          i = static_cast<size_t>(in.a);
        }
        break;
      }
      case Op::kCoerceBool: {
        Value& a = vals_.back();
        a = Value::Int4(Truthy(a) ? 1 : 0);
        break;
      }
      case Op::kIvalVar: {
        if (in.a < 0 || static_cast<size_t>(in.a) >= binding.size() ||
            binding[static_cast<size_t>(in.a)] == nullptr) {
          return Status::Internal("temporal variable '" + in.sval +
                                  "' evaluated without a bound tuple");
        }
        ivals_.push_back(binding[static_cast<size_t>(in.a)]->valid);
        break;
      }
      case Op::kIvalConst:
        ivals_.push_back(Interval::Event(in.tval));
        break;
      case Op::kIvalNow:
        ivals_.push_back(Interval::Event(now));
        break;
      case Op::kIvalStart: {
        Interval& a = ivals_.back();
        a = Interval::Event(a.from);
        break;
      }
      case Op::kIvalEnd: {
        Interval& a = ivals_.back();
        a = Interval::Event(a.to);
        break;
      }
      case Op::kIvalIntersect: {
        Interval b = ivals_.back();
        ivals_.pop_back();
        Interval& a = ivals_.back();
        a = Interval::Intersect(a, b);
        break;
      }
      case Op::kIvalSpan: {
        Interval b = ivals_.back();
        ivals_.pop_back();
        Interval& a = ivals_.back();
        a = Interval::Span(a, b);
        break;
      }
      case Op::kPredPrecede: {
        Interval b = ivals_.back();
        ivals_.pop_back();
        Interval a = ivals_.back();
        ivals_.pop_back();
        bools_.push_back(a.Precedes(b) ? 1 : 0);
        break;
      }
      case Op::kPredOverlap: {
        Interval b = ivals_.back();
        ivals_.pop_back();
        Interval a = ivals_.back();
        ivals_.pop_back();
        bools_.push_back(a.Overlaps(b) ? 1 : 0);
        break;
      }
      case Op::kPredEqual: {
        Interval b = ivals_.back();
        ivals_.pop_back();
        Interval a = ivals_.back();
        ivals_.pop_back();
        bools_.push_back(a == b ? 1 : 0);
        break;
      }
      case Op::kPredNonEmpty: {
        Interval a = ivals_.back();
        ivals_.pop_back();
        bools_.push_back(a.empty() ? 0 : 1);
        break;
      }
      case Op::kPredNot:
        bools_.back() = bools_.back() ? 0 : 1;
        break;
      case Op::kPredAndJump:
        if (!bools_.back()) {
          i = static_cast<size_t>(in.a);
        } else {
          bools_.pop_back();
        }
        break;
      case Op::kPredOrJump:
        if (bools_.back()) {
          i = static_cast<size_t>(in.a);
        } else {
          bools_.pop_back();
        }
        break;
    }
  }
  return Status::OK();
}

Result<Value> CompiledProgram::Eval(const Binding& binding,
                                    TimePoint now) const {
  TDB_RETURN_NOT_OK(Run(binding, now));
  return std::move(vals_.back());
}

Result<bool> CompiledProgram::EvalBool(const Binding& binding,
                                       TimePoint now) const {
  TDB_RETURN_NOT_OK(Run(binding, now));
  return Truthy(vals_.back());
}

Result<Interval> CompiledProgram::EvalInterval(const Binding& binding,
                                               TimePoint now) const {
  TDB_RETURN_NOT_OK(Run(binding, now));
  return ivals_.back();
}

Result<bool> CompiledProgram::EvalPred(const Binding& binding,
                                       TimePoint now) const {
  TDB_RETURN_NOT_OK(Run(binding, now));
  return bools_.back() != 0;
}

}  // namespace tdb
