#include "exec/compiled_expr.h"

#include "core/database.h"

namespace tdb {

namespace {
std::optional<bool> g_compiled_override;
thread_local std::optional<bool> t_compiled_choice;
}  // namespace

bool CompiledExprEnabled() {
  if (g_compiled_override.has_value()) return *g_compiled_override;
  if (t_compiled_choice.has_value()) return *t_compiled_choice;
  return DatabaseOptions::FromEnv().compiled_expr.value_or(true);
}

void SetCompiledExprEnabledForTest(std::optional<bool> enabled) {
  g_compiled_override = enabled;
}

ScopedCompiledExprChoice::ScopedCompiledExprChoice(std::optional<bool> choice)
    : previous_(t_compiled_choice) {
  if (choice.has_value()) t_compiled_choice = choice;
}

ScopedCompiledExprChoice::~ScopedCompiledExprChoice() {
  t_compiled_choice = previous_;
}

namespace {

bool Truthy(const Value& v) {
  if (v.is_integer()) return v.AsInt() != 0;
  if (v.type() == TypeId::kFloat8) return v.AsDouble() != 0;
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

std::optional<CompiledProgram> CompiledProgram::CompileExpr(const Expr& expr) {
  CompiledProgram prog(Kind::kScalar);
  if (!prog.EmitExpr(expr)) return std::nullopt;
  return prog;
}

CompiledProgram CompiledProgram::CompileTemporal(const TemporalExpr& expr) {
  CompiledProgram prog(Kind::kInterval);
  prog.EmitTemporal(expr);
  return prog;
}

CompiledProgram CompiledProgram::CompilePred(const TemporalPred& pred) {
  CompiledProgram prog(Kind::kPredicate);
  prog.EmitPred(pred);
  return prog;
}

bool CompiledProgram::EmitExpr(const Expr& expr) {
  switch (expr.kind) {
    case Expr::Kind::kConstInt: {
      Instr in{Op::kPushInt};
      in.ival = expr.int_val;
      code_.push_back(std::move(in));
      return true;
    }
    case Expr::Kind::kConstFloat: {
      Instr in{Op::kPushFloat};
      in.fval = expr.float_val;
      code_.push_back(std::move(in));
      return true;
    }
    case Expr::Kind::kConstString: {
      Instr in{Op::kPushStr};
      in.sval = expr.str_val;
      code_.push_back(std::move(in));
      return true;
    }
    case Expr::Kind::kColumn: {
      Instr in{Op::kLoadCol};
      in.a = expr.var_index;
      in.b = expr.attr_index;
      in.sval = expr.var + "." + expr.attr;  // for the unbound-tuple error
      code_.push_back(std::move(in));
      return true;
    }
    case Expr::Kind::kUnary: {
      if (!EmitExpr(*expr.left)) return false;
      code_.push_back(
          Instr{expr.op == ExprOp::kNot ? Op::kNot : Op::kNeg});
      return true;
    }
    case Expr::Kind::kBinary: {
      if (expr.op == ExprOp::kAnd || expr.op == ExprOp::kOr) {
        // Short circuit exactly like the Evaluator: a falsy (truthy) left
        // operand yields Int4(0) (Int4(1)) without touching the right one;
        // otherwise the result is the right operand coerced to 0/1.
        if (!EmitExpr(*expr.left)) return false;
        size_t jump_at = code_.size();
        code_.push_back(
            Instr{expr.op == ExprOp::kAnd ? Op::kAndJump : Op::kOrJump});
        if (!EmitExpr(*expr.right)) return false;
        code_.push_back(Instr{Op::kCoerceBool});
        code_[jump_at].a = static_cast<int32_t>(code_.size());
        return true;
      }
      if (!EmitExpr(*expr.left)) return false;
      if (!EmitExpr(*expr.right)) return false;
      switch (expr.op) {
        case ExprOp::kEq:
          code_.push_back(Instr{Op::kCmpEq});
          return true;
        case ExprOp::kNe:
          code_.push_back(Instr{Op::kCmpNe});
          return true;
        case ExprOp::kLt:
          code_.push_back(Instr{Op::kCmpLt});
          return true;
        case ExprOp::kLe:
          code_.push_back(Instr{Op::kCmpLe});
          return true;
        case ExprOp::kGt:
          code_.push_back(Instr{Op::kCmpGt});
          return true;
        case ExprOp::kGe:
          code_.push_back(Instr{Op::kCmpGe});
          return true;
        case ExprOp::kAdd:
          code_.push_back(Instr{Op::kAdd});
          return true;
        case ExprOp::kSub:
          code_.push_back(Instr{Op::kSub});
          return true;
        case ExprOp::kMul:
          code_.push_back(Instr{Op::kMul});
          return true;
        case ExprOp::kDiv:
          code_.push_back(Instr{Op::kDiv});
          return true;
        case ExprOp::kMod:
          code_.push_back(Instr{Op::kMod});
          return true;
        default:
          return false;
      }
    }
    case Expr::Kind::kAggregate:
      // Plain aggregates are folded into constants before target programs
      // are compiled; grouped (`by`) aggregates keep their node and look a
      // map up per row — those stay on the Evaluator path.
      return false;
    case Expr::Kind::kParam:
      // Parameters resolve against the per-execution argument list, which
      // compiled programs do not carry — those stay on the Evaluator path.
      return false;
  }
  return false;
}

void CompiledProgram::EmitTemporal(const TemporalExpr& expr) {
  switch (expr.kind) {
    case TemporalExpr::Kind::kVar: {
      Instr in{Op::kIvalVar};
      in.a = expr.var_index;
      in.sval = expr.var;
      code_.push_back(std::move(in));
      return;
    }
    case TemporalExpr::Kind::kConst: {
      Instr in{Op::kIvalConst};
      in.tval = expr.const_time;
      code_.push_back(std::move(in));
      return;
    }
    case TemporalExpr::Kind::kNow:
      code_.push_back(Instr{Op::kIvalNow});
      return;
    case TemporalExpr::Kind::kStartOf:
      EmitTemporal(*expr.left);
      code_.push_back(Instr{Op::kIvalStart});
      return;
    case TemporalExpr::Kind::kEndOf:
      EmitTemporal(*expr.left);
      code_.push_back(Instr{Op::kIvalEnd});
      return;
    case TemporalExpr::Kind::kOverlap:
      EmitTemporal(*expr.left);
      EmitTemporal(*expr.right);
      code_.push_back(Instr{Op::kIvalIntersect});
      return;
    case TemporalExpr::Kind::kExtend:
      EmitTemporal(*expr.left);
      EmitTemporal(*expr.right);
      code_.push_back(Instr{Op::kIvalSpan});
      return;
  }
}

void CompiledProgram::EmitPred(const TemporalPred& pred) {
  switch (pred.kind) {
    case TemporalPred::Kind::kPrecede:
      EmitTemporal(*pred.lexpr);
      EmitTemporal(*pred.rexpr);
      code_.push_back(Instr{Op::kPredPrecede});
      return;
    case TemporalPred::Kind::kOverlap:
      EmitTemporal(*pred.lexpr);
      EmitTemporal(*pred.rexpr);
      code_.push_back(Instr{Op::kPredOverlap});
      return;
    case TemporalPred::Kind::kEqual:
      EmitTemporal(*pred.lexpr);
      EmitTemporal(*pred.rexpr);
      code_.push_back(Instr{Op::kPredEqual});
      return;
    case TemporalPred::Kind::kNonEmpty: {
      // Bare `a overlap b` uses the precise overlap test (touching
      // half-open intervals do not overlap); any other bare interval
      // expression tests non-emptiness — mirroring Evaluator::EvalPred.
      const TemporalExpr& e = *pred.lexpr;
      if (e.kind == TemporalExpr::Kind::kOverlap) {
        EmitTemporal(*e.left);
        EmitTemporal(*e.right);
        code_.push_back(Instr{Op::kPredOverlap});
        return;
      }
      EmitTemporal(e);
      code_.push_back(Instr{Op::kPredNonEmpty});
      return;
    }
    case TemporalPred::Kind::kAnd: {
      EmitPred(*pred.left);
      size_t jump_at = code_.size();
      code_.push_back(Instr{Op::kPredAndJump});
      EmitPred(*pred.right);
      code_[jump_at].a = static_cast<int32_t>(code_.size());
      return;
    }
    case TemporalPred::Kind::kOr: {
      EmitPred(*pred.left);
      size_t jump_at = code_.size();
      code_.push_back(Instr{Op::kPredOrJump});
      EmitPred(*pred.right);
      code_[jump_at].a = static_cast<int32_t>(code_.size());
      return;
    }
    case TemporalPred::Kind::kNot:
      EmitPred(*pred.left);
      code_.push_back(Instr{Op::kPredNot});
      return;
  }
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

Status CompiledProgram::Run(const Binding& binding, TimePoint now) const {
  vals_.clear();
  ivals_.clear();
  bools_.clear();

  size_t i = 0;
  const size_t n = code_.size();
  while (i < n) {
    const Instr& in = code_[i];
    ++i;
    switch (in.op) {
      case Op::kPushInt:
        vals_.push_back(Value::Int4(in.ival));
        break;
      case Op::kPushFloat:
        vals_.push_back(Value::Float8(in.fval));
        break;
      case Op::kPushStr:
        vals_.push_back(Value::Char(in.sval));
        break;
      case Op::kLoadCol: {
        if (in.a < 0 || static_cast<size_t>(in.a) >= binding.size() ||
            binding[static_cast<size_t>(in.a)] == nullptr) {
          return Status::Internal("column '" + in.sval +
                                  "' evaluated without a bound tuple");
        }
        vals_.push_back(binding[static_cast<size_t>(in.a)]->attr(
            static_cast<size_t>(in.b)));
        break;
      }
      case Op::kAdd:
      case Op::kSub:
      case Op::kMul:
      case Op::kDiv:
      case Op::kMod: {
        Value b = std::move(vals_.back());
        vals_.pop_back();
        Value& a = vals_.back();
        if (!a.is_numeric() || !b.is_numeric()) {
          return Status::Invalid("arithmetic requires numeric operands");
        }
        if (a.type() == TypeId::kFloat8 || b.type() == TypeId::kFloat8) {
          double x = a.AsDouble();
          double y = b.AsDouble();
          switch (in.op) {
            case Op::kAdd:
              a = Value::Float8(x + y);
              break;
            case Op::kSub:
              a = Value::Float8(x - y);
              break;
            case Op::kMul:
              a = Value::Float8(x * y);
              break;
            case Op::kDiv:
              if (y == 0) return Status::Invalid("division by zero");
              a = Value::Float8(x / y);
              break;
            default:
              return Status::Invalid("modulo requires integer operands");
          }
        } else {
          int64_t x = a.AsInt();
          int64_t y = b.AsInt();
          switch (in.op) {
            case Op::kAdd:
              a = Value::Int4(x + y);
              break;
            case Op::kSub:
              a = Value::Int4(x - y);
              break;
            case Op::kMul:
              a = Value::Int4(x * y);
              break;
            case Op::kDiv:
              if (y == 0) return Status::Invalid("division by zero");
              a = Value::Int4(x / y);
              break;
            default:
              if (y == 0) return Status::Invalid("modulo by zero");
              a = Value::Int4(x % y);
              break;
          }
        }
        break;
      }
      case Op::kCmpEq:
      case Op::kCmpNe:
      case Op::kCmpLt:
      case Op::kCmpLe:
      case Op::kCmpGt:
      case Op::kCmpGe: {
        Value b = std::move(vals_.back());
        vals_.pop_back();
        Value& a = vals_.back();
        int c = 0;
        if (!Value::TryCompare(a, b, &c)) {
          return Value::Compare(a, b).status();
        }
        bool out = false;
        switch (in.op) {
          case Op::kCmpEq:
            out = c == 0;
            break;
          case Op::kCmpNe:
            out = c != 0;
            break;
          case Op::kCmpLt:
            out = c < 0;
            break;
          case Op::kCmpLe:
            out = c <= 0;
            break;
          case Op::kCmpGt:
            out = c > 0;
            break;
          default:
            out = c >= 0;
            break;
        }
        a = Value::Int4(out ? 1 : 0);
        break;
      }
      case Op::kNot: {
        Value& a = vals_.back();
        a = Value::Int4(Truthy(a) ? 0 : 1);
        break;
      }
      case Op::kNeg: {
        Value& a = vals_.back();
        if (a.is_integer()) {
          a = Value::Int4(-a.AsInt());
        } else if (a.type() == TypeId::kFloat8) {
          a = Value::Float8(-a.AsDouble());
        } else {
          return Status::Invalid("unary minus requires a numeric operand");
        }
        break;
      }
      case Op::kAndJump: {
        bool t = Truthy(vals_.back());
        vals_.pop_back();
        if (!t) {
          vals_.push_back(Value::Int4(0));
          i = static_cast<size_t>(in.a);
        }
        break;
      }
      case Op::kOrJump: {
        bool t = Truthy(vals_.back());
        vals_.pop_back();
        if (t) {
          vals_.push_back(Value::Int4(1));
          i = static_cast<size_t>(in.a);
        }
        break;
      }
      case Op::kCoerceBool: {
        Value& a = vals_.back();
        a = Value::Int4(Truthy(a) ? 1 : 0);
        break;
      }
      case Op::kIvalVar: {
        if (in.a < 0 || static_cast<size_t>(in.a) >= binding.size() ||
            binding[static_cast<size_t>(in.a)] == nullptr) {
          return Status::Internal("temporal variable '" + in.sval +
                                  "' evaluated without a bound tuple");
        }
        ivals_.push_back(binding[static_cast<size_t>(in.a)]->valid);
        break;
      }
      case Op::kIvalConst:
        ivals_.push_back(Interval::Event(in.tval));
        break;
      case Op::kIvalNow:
        ivals_.push_back(Interval::Event(now));
        break;
      case Op::kIvalStart: {
        Interval& a = ivals_.back();
        a = Interval::Event(a.from);
        break;
      }
      case Op::kIvalEnd: {
        Interval& a = ivals_.back();
        a = Interval::Event(a.to);
        break;
      }
      case Op::kIvalIntersect: {
        Interval b = ivals_.back();
        ivals_.pop_back();
        Interval& a = ivals_.back();
        a = Interval::Intersect(a, b);
        break;
      }
      case Op::kIvalSpan: {
        Interval b = ivals_.back();
        ivals_.pop_back();
        Interval& a = ivals_.back();
        a = Interval::Span(a, b);
        break;
      }
      case Op::kPredPrecede: {
        Interval b = ivals_.back();
        ivals_.pop_back();
        Interval a = ivals_.back();
        ivals_.pop_back();
        bools_.push_back(a.Precedes(b) ? 1 : 0);
        break;
      }
      case Op::kPredOverlap: {
        Interval b = ivals_.back();
        ivals_.pop_back();
        Interval a = ivals_.back();
        ivals_.pop_back();
        bools_.push_back(a.Overlaps(b) ? 1 : 0);
        break;
      }
      case Op::kPredEqual: {
        Interval b = ivals_.back();
        ivals_.pop_back();
        Interval a = ivals_.back();
        ivals_.pop_back();
        bools_.push_back(a == b ? 1 : 0);
        break;
      }
      case Op::kPredNonEmpty: {
        Interval a = ivals_.back();
        ivals_.pop_back();
        bools_.push_back(a.empty() ? 0 : 1);
        break;
      }
      case Op::kPredNot:
        bools_.back() = bools_.back() ? 0 : 1;
        break;
      case Op::kPredAndJump:
        if (!bools_.back()) {
          i = static_cast<size_t>(in.a);
        } else {
          bools_.pop_back();
        }
        break;
      case Op::kPredOrJump:
        if (bools_.back()) {
          i = static_cast<size_t>(in.a);
        } else {
          bools_.pop_back();
        }
        break;
    }
  }
  return Status::OK();
}

Result<Value> CompiledProgram::Eval(const Binding& binding,
                                    TimePoint now) const {
  TDB_RETURN_NOT_OK(Run(binding, now));
  return std::move(vals_.back());
}

Result<bool> CompiledProgram::EvalBool(const Binding& binding,
                                       TimePoint now) const {
  TDB_RETURN_NOT_OK(Run(binding, now));
  return Truthy(vals_.back());
}

Result<Interval> CompiledProgram::EvalInterval(const Binding& binding,
                                               TimePoint now) const {
  TDB_RETURN_NOT_OK(Run(binding, now));
  return ivals_.back();
}

Result<bool> CompiledProgram::EvalPred(const Binding& binding,
                                       TimePoint now) const {
  TDB_RETURN_NOT_OK(Run(binding, now));
  return bools_.back() != 0;
}

// ---------------------------------------------------------------------------
// Batch execution
// ---------------------------------------------------------------------------

namespace {

// Local replicas of the record codec's little-endian helpers (they live in
// schema.cc's anonymous namespace); the decode must match DecodeAttr bit
// for bit so kernel and interpreter agree on every value.
inline uint64_t BatchGetIntLE(const uint8_t* p, size_t width) {
  uint64_t v = 0;
  for (size_t i = 0; i < width; ++i) {
    v |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

inline int64_t BatchSignExtend(uint64_t v, size_t width) {
  if (width >= 8) return static_cast<int64_t>(v);
  uint64_t sign = 1ULL << (8 * width - 1);
  if (v & sign) v |= ~((sign << 1) - 1);
  return static_cast<int64_t>(v);
}

/// Valid-time lifespan decoded straight from the record bytes — the same
/// derivation RefreshIntervals performs through attr().AsTime().  Events
/// share one stored attribute (valid_from_index == valid_to_index), so
/// they decode to the degenerate [t, t] exactly as in the scalar path.
inline Interval DecodeValidInterval(const Schema& schema, const uint8_t* rec) {
  int from_idx = schema.valid_from_index();
  if (from_idx < 0) {
    return Interval(TimePoint::Beginning(), TimePoint::Forever());
  }
  auto at = [&](int idx) {
    return TimePoint(static_cast<int32_t>(
        BatchGetIntLE(rec + schema.offset(static_cast<size_t>(idx)), 4)));
  };
  return Interval(at(from_idx), at(schema.valid_to_index()));
}

}  // namespace

struct CompiledProgram::BatchKernelCache {
  // --- scalar: AND-chain of `column OP integer-constant` compares ---
  struct CmpUnit {
    int var = 0;
    int attr = 0;
    Op op = Op::kCmpEq;  // normalized to (column OP constant)
    int64_t rhs = 0;
    std::string name;  // column name for the unbound-tuple error
  };
  bool scalar_kernel = false;
  std::vector<CmpUnit> units;

  // --- predicate: one temporal predicate, var interval vs constant ---
  enum class IvalSel : uint8_t { kWhole, kStart, kEnd };
  bool pred_kernel = false;
  int pred_var = 0;
  IvalSel pred_sel = IvalSel::kWhole;
  Op pred_op = Op::kPredOverlap;  // kPredPrecede / kPredOverlap / kPredEqual
  bool var_is_left = true;
  bool negate = false;
  bool const_is_now = false;  // constant side is `now`, resolved per call
  TimePoint const_time;
};

namespace {

/// Branch-light selection-vector compaction: decode a W-byte little-endian
/// integer at `off` in every live record and keep the rows where `cmp`
/// holds.  The store is unconditional and the increment predicated, so the
/// loop carries no data-dependent branch.
template <size_t W, typename Cmp>
size_t CompactCmp(const Morsel& m, uint16_t off, Cmp cmp, SelVec* sel) {
  size_t out = 0;
  for (uint16_t idx : *sel) {
    int64_t v = BatchSignExtend(BatchGetIntLE(m.rec(idx) + off, W), W);
    (*sel)[out] = idx;
    out += cmp(v) ? 1 : 0;
  }
  return out;
}

}  // namespace

const CompiledProgram::BatchKernelCache& CompiledProgram::Analysis() const {
  if (batch_cache_ != nullptr) return *batch_cache_;
  auto cache = std::make_shared<BatchKernelCache>();
  const size_t n = code_.size();

  if (kind_ == Kind::kScalar) {
    // Grammar: unit (AndJump unit CoerceBool)*, a unit being the three
    // instructions of one column-vs-integer-constant compare, with every
    // AndJump landing immediately after its matching CoerceBool (the shape
    // EmitExpr produces for left-associated AND chains).  Refining the
    // selection by each unit in order is then exactly the interpreter's
    // short-circuit evaluation.
    auto parse_unit = [&](size_t pos, BatchKernelCache::CmpUnit* u) {
      if (pos + 3 > n) return false;
      const Instr& i0 = code_[pos];
      const Instr& i1 = code_[pos + 1];
      const Instr& cmp = code_[pos + 2];
      bool col_first;
      if (i0.op == Op::kLoadCol && i1.op == Op::kPushInt) {
        col_first = true;
      } else if (i0.op == Op::kPushInt && i1.op == Op::kLoadCol) {
        col_first = false;
      } else {
        return false;
      }
      switch (cmp.op) {
        case Op::kCmpEq:
        case Op::kCmpNe:
        case Op::kCmpLt:
        case Op::kCmpLe:
        case Op::kCmpGt:
        case Op::kCmpGe:
          break;
        default:
          return false;
      }
      const Instr& col = col_first ? i0 : i1;
      const Instr& cst = col_first ? i1 : i0;
      u->var = col.a;
      u->attr = col.b;
      u->name = col.sval;
      u->rhs = cst.ival;
      u->op = cmp.op;
      if (!col_first) {
        // constant OP column → column mirrored-OP constant
        switch (cmp.op) {
          case Op::kCmpLt:
            u->op = Op::kCmpGt;
            break;
          case Op::kCmpLe:
            u->op = Op::kCmpGe;
            break;
          case Op::kCmpGt:
            u->op = Op::kCmpLt;
            break;
          case Op::kCmpGe:
            u->op = Op::kCmpLe;
            break;
          default:
            break;  // Eq / Ne are symmetric
        }
      }
      return true;
    };
    BatchKernelCache::CmpUnit u;
    if (parse_unit(0, &u)) {
      cache->units.push_back(u);
      size_t pos = 3;
      bool ok = true;
      while (ok && pos < n) {
        if (code_[pos].op != Op::kAndJump || !parse_unit(pos + 1, &u) ||
            pos + 4 >= n || code_[pos + 4].op != Op::kCoerceBool ||
            static_cast<size_t>(code_[pos].a) != pos + 5) {
          ok = false;
          break;
        }
        cache->units.push_back(u);
        pos += 5;
      }
      cache->scalar_kernel = ok && pos == n;
    }
    if (!cache->scalar_kernel) cache->units.clear();
  }

  if (kind_ == Kind::kPredicate) {
    // Grammar: side side PredOp [PredNot], one side being the variable's
    // interval (optionally `start of` / `end of`) and the other a constant
    // or `now` event.  `start of` / `end of` an event is the event itself,
    // so the transform folds away on the constant side.
    struct Side {
      bool is_var = false;
      int var = 0;
      BatchKernelCache::IvalSel sel = BatchKernelCache::IvalSel::kWhole;
      bool is_now = false;
      TimePoint time;
      size_t len = 0;
    };
    auto parse_side = [&](size_t pos, Side* s) {
      if (pos >= n) return false;
      const Instr& i0 = code_[pos];
      if (i0.op == Op::kIvalVar) {
        s->is_var = true;
        s->var = i0.a;
      } else if (i0.op == Op::kIvalConst) {
        s->is_var = false;
        s->is_now = false;
        s->time = i0.tval;
      } else if (i0.op == Op::kIvalNow) {
        s->is_var = false;
        s->is_now = true;
      } else {
        return false;
      }
      s->len = 1;
      s->sel = BatchKernelCache::IvalSel::kWhole;
      if (pos + 1 < n && (code_[pos + 1].op == Op::kIvalStart ||
                          code_[pos + 1].op == Op::kIvalEnd)) {
        s->sel = code_[pos + 1].op == Op::kIvalStart
                     ? BatchKernelCache::IvalSel::kStart
                     : BatchKernelCache::IvalSel::kEnd;
        s->len = 2;
      }
      return true;
    };
    Side s1, s2;
    if (parse_side(0, &s1) && parse_side(s1.len, &s2)) {
      size_t pos = s1.len + s2.len;
      if (pos < n && (code_[pos].op == Op::kPredPrecede ||
                      code_[pos].op == Op::kPredOverlap ||
                      code_[pos].op == Op::kPredEqual)) {
        Op pop = code_[pos].op;
        ++pos;
        bool neg = false;
        if (pos < n && code_[pos].op == Op::kPredNot) {
          neg = true;
          ++pos;
        }
        if (pos == n && s1.is_var != s2.is_var) {
          const Side& vs = s1.is_var ? s1 : s2;
          const Side& cs = s1.is_var ? s2 : s1;
          cache->pred_kernel = true;
          cache->pred_var = vs.var;
          cache->pred_sel = vs.sel;
          cache->pred_op = pop;
          cache->var_is_left = s1.is_var;
          cache->negate = neg;
          cache->const_is_now = cs.is_now;
          cache->const_time = cs.time;
        }
      }
    }
  }

  batch_cache_ = std::move(cache);
  return *batch_cache_;
}

Status CompiledProgram::EvalBatchGeneric(const Schema& schema, int var,
                                         const Morsel& m, Binding* binding,
                                         VersionRef* scratch, TimePoint now,
                                         SelVec* sel) const {
  if (var < 0 || static_cast<size_t>(var) >= binding->size()) {
    return Status::Internal("batch filter variable out of range");
  }
  (*binding)[static_cast<size_t>(var)] = scratch;
  size_t out = 0;
  for (uint16_t idx : *sel) {
    scratch->BindRaw(schema, m.rec(idx));
    Result<bool> pass = kind_ == Kind::kPredicate ? EvalPred(*binding, now)
                                                  : EvalBool(*binding, now);
    if (!pass.ok()) {
      (*binding)[static_cast<size_t>(var)] = nullptr;
      return pass.status();
    }
    if (*pass) (*sel)[out++] = idx;
  }
  (*binding)[static_cast<size_t>(var)] = nullptr;
  sel->resize(out);
  return Status::OK();
}

Status CompiledProgram::EvalBoolBatch(const Schema& schema, int var,
                                      const Morsel& m, Binding* binding,
                                      VersionRef* scratch, TimePoint now,
                                      SelVec* sel) const {
  const BatchKernelCache& k = Analysis();
  if (!k.scalar_kernel) {
    return EvalBatchGeneric(schema, var, m, binding, scratch, now, sel);
  }
  // The fixed-width kernels only cover integer attributes of the morsel's
  // variable; anything else (float promotion, char/time operands whose
  // compare errors) takes the interpreter so semantics stay identical.
  for (const auto& u : k.units) {
    if (u.var != var) continue;
    TypeId t = schema.attr(static_cast<size_t>(u.attr)).type;
    if (t != TypeId::kInt1 && t != TypeId::kInt2 && t != TypeId::kInt4) {
      return EvalBatchGeneric(schema, var, m, binding, scratch, now, sel);
    }
  }
  for (const auto& u : k.units) {
    if (sel->empty()) return Status::OK();
    if (u.var != var) {
      // Outer variable: one value for the whole morsel — compare once.
      if (u.var < 0 || static_cast<size_t>(u.var) >= binding->size() ||
          (*binding)[static_cast<size_t>(u.var)] == nullptr) {
        return Status::Internal("column '" + u.name +
                                "' evaluated without a bound tuple");
      }
      const Value& cv = (*binding)[static_cast<size_t>(u.var)]->attr(
          static_cast<size_t>(u.attr));
      Value rhs = Value::Int4(u.rhs);
      int c = 0;
      if (!Value::TryCompare(cv, rhs, &c)) {
        return Value::Compare(cv, rhs).status();
      }
      bool pass = false;
      switch (u.op) {
        case Op::kCmpEq:
          pass = c == 0;
          break;
        case Op::kCmpNe:
          pass = c != 0;
          break;
        case Op::kCmpLt:
          pass = c < 0;
          break;
        case Op::kCmpLe:
          pass = c <= 0;
          break;
        case Op::kCmpGt:
          pass = c > 0;
          break;
        default:
          pass = c >= 0;
          break;
      }
      if (!pass) sel->clear();
      continue;
    }
    const uint16_t off = schema.offset(static_cast<size_t>(u.attr));
    const size_t w = schema.attr(static_cast<size_t>(u.attr)).width;
    const int64_t rhs = u.rhs;
    auto run_cmp = [&](auto cmp) {
      size_t out;
      switch (w) {
        case 1:
          out = CompactCmp<1>(m, off, cmp, sel);
          break;
        case 2:
          out = CompactCmp<2>(m, off, cmp, sel);
          break;
        default:
          out = CompactCmp<4>(m, off, cmp, sel);
          break;
      }
      sel->resize(out);
    };
    switch (u.op) {
      case Op::kCmpEq:
        run_cmp([rhs](int64_t v) { return v == rhs; });
        break;
      case Op::kCmpNe:
        run_cmp([rhs](int64_t v) { return v != rhs; });
        break;
      case Op::kCmpLt:
        run_cmp([rhs](int64_t v) { return v < rhs; });
        break;
      case Op::kCmpLe:
        run_cmp([rhs](int64_t v) { return v <= rhs; });
        break;
      case Op::kCmpGt:
        run_cmp([rhs](int64_t v) { return v > rhs; });
        break;
      default:
        run_cmp([rhs](int64_t v) { return v >= rhs; });
        break;
    }
  }
  return Status::OK();
}

Status CompiledProgram::EvalPredBatch(const Schema& schema, int var,
                                      const Morsel& m, Binding* binding,
                                      VersionRef* scratch, TimePoint now,
                                      SelVec* sel) const {
  const BatchKernelCache& k = Analysis();
  if (!k.pred_kernel || k.pred_var != var) {
    return EvalBatchGeneric(schema, var, m, binding, scratch, now, sel);
  }
  const Interval cst = Interval::Event(k.const_is_now ? now : k.const_time);
  size_t out = 0;
  for (uint16_t idx : *sel) {
    Interval v = DecodeValidInterval(schema, m.rec(idx));
    switch (k.pred_sel) {
      case BatchKernelCache::IvalSel::kStart:
        v = Interval::Event(v.from);
        break;
      case BatchKernelCache::IvalSel::kEnd:
        v = Interval::Event(v.to);
        break;
      default:
        break;
    }
    const Interval& a = k.var_is_left ? v : cst;
    const Interval& b = k.var_is_left ? cst : v;
    bool r;
    switch (k.pred_op) {
      case Op::kPredPrecede:
        r = a.Precedes(b);
        break;
      case Op::kPredEqual:
        r = a == b;
        break;
      default:
        r = a.Overlaps(b);
        break;
    }
    r = r != k.negate;
    (*sel)[out] = idx;
    out += r ? 1 : 0;
  }
  sel->resize(out);
  return Status::OK();
}

}  // namespace tdb
