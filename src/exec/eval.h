#ifndef CHRONOQUEL_EXEC_EVAL_H_
#define CHRONOQUEL_EXEC_EVAL_H_

#include <vector>

#include "exec/version.h"
#include "tquel/ast.h"

namespace tdb {

/// A (possibly partial) binding of the statement's tuple variables:
/// binding[var_index] is the version currently bound, or null.  Evaluating
/// an expression that touches an unbound variable is an error — planners
/// only apply predicates whose variables are all bound.
using Binding = std::vector<const VersionRef*>;

/// Evaluates scalar expressions, temporal expressions, and temporal
/// predicates against a binding.  `now` resolves the "now" literal — the
/// Database's logical clock at statement start.
class Evaluator {
 public:
  /// `params`, when given, resolves `$N` references of a prepared
  /// statement (params->at(N-1)); it must outlive the evaluator.
  explicit Evaluator(TimePoint now,
                     const std::vector<Value>* params = nullptr)
      : now_(now), params_(params) {}

  Result<Value> Eval(const Expr& expr, const Binding& binding) const;

  /// Truthiness of a scalar expression (non-zero numeric).
  Result<bool> EvalBool(const Expr& expr, const Binding& binding) const;

  /// Evaluates a temporal expression to an interval (events are degenerate
  /// [t, t] intervals).
  Result<Interval> EvalTemporal(const TemporalExpr& expr,
                                const Binding& binding) const;

  Result<bool> EvalPred(const TemporalPred& pred, const Binding& binding) const;

  TimePoint now() const { return now_; }

 private:
  TimePoint now_;
  const std::vector<Value>* params_;
};

}  // namespace tdb

#endif  // CHRONOQUEL_EXEC_EVAL_H_
