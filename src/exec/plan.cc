#include "exec/plan.h"

#include "util/stringx.h"

namespace tdb {

const char* PlanNodeKindName(PlanNode::Kind k) {
  switch (k) {
    case PlanNode::Kind::kSeqScan:
      return "seq-scan";
    case PlanNode::Kind::kKeyedLookup:
      return "keyed-lookup";
    case PlanNode::Kind::kIndexEq:
      return "index-eq";
    case PlanNode::Kind::kRangeScan:
      return "range-scan";
    case PlanNode::Kind::kNestedLoop:
      return "nested-loop";
    case PlanNode::Kind::kSubstitution:
      return "substitution";
    case PlanNode::Kind::kHashJoin:
      return "hash-join";
    case PlanNode::Kind::kIntervalJoin:
      return "interval-join";
    case PlanNode::Kind::kFilter:
      return "filter";
    case PlanNode::Kind::kProject:
      return "project";
  }
  return "?";
}

std::string AccessNode::Brief() const {
  const char* word = "scan";
  switch (kind) {
    case Kind::kSeqScan:
      word = "scan";
      break;
    case Kind::kKeyedLookup:
      word = "keyed";
      break;
    case Kind::kIndexEq:
      word = "index";
      break;
    case Kind::kRangeScan:
      word = "range";
      break;
    default:
      break;
  }
  std::string s = rel_name + ":" + word;
  if (current_only) s += "(current)";
  return s;
}

const AccessNode* AccessOf(const PlanNode* node) {
  if (node == nullptr) return nullptr;
  if (node->kind == PlanNode::Kind::kFilter) {
    return AccessOf(static_cast<const FilterNode*>(node)->child.get());
  }
  switch (node->kind) {
    case PlanNode::Kind::kSeqScan:
    case PlanNode::Kind::kKeyedLookup:
    case PlanNode::Kind::kIndexEq:
    case PlanNode::Kind::kRangeScan:
      return static_cast<const AccessNode*>(node);
    default:
      return nullptr;
  }
}

AccessNode* AccessOf(PlanNode* node) {
  return const_cast<AccessNode*>(AccessOf(const_cast<const PlanNode*>(node)));
}

namespace {

/// The `[...]` annotation appended to a line when stats are requested.
/// `with_timing` adds the node's inclusive wall time (explain analyze).
std::string StatsSuffix(const PlanNode& node, bool with_timing) {
  if (!node.stats.executed) return " [not executed]";
  std::string s;
  if (node.kind == PlanNode::Kind::kProject) {
    s = StrPrintf(" [rows=%llu",
                  static_cast<unsigned long long>(node.stats.rows_emitted));
  } else {
    s = StrPrintf(
        " [loops=%llu examined=%llu emitted=%llu",
        static_cast<unsigned long long>(node.stats.loops),
        static_cast<unsigned long long>(node.stats.rows_examined),
        static_cast<unsigned long long>(node.stats.rows_emitted));
  }
  // Estimated vs. actual: present only under cost-based planning, so
  // paper-mode stats lines never change.
  if (node.est_rows >= 0) s += StrPrintf(" est=%.0f", node.est_rows);
  uint64_t reads = node.stats.io.TotalReads();
  uint64_t writes = node.stats.io.TotalWrites();
  if (reads > 0 || writes > 0) {
    s += StrPrintf(" reads=%llu", static_cast<unsigned long long>(reads));
    std::vector<std::string> parts;
    for (int i = 0; i < kNumIoCategories; ++i) {
      if (node.stats.io.reads[i] == 0) continue;
      parts.push_back(StrPrintf(
          "%s=%llu", IoCategoryName(static_cast<IoCategory>(i)),
          static_cast<unsigned long long>(node.stats.io.reads[i])));
    }
    if (!parts.empty()) s += " (" + Join(parts, " ") + ")";
    if (writes > 0) {
      s += StrPrintf(" writes=%llu", static_cast<unsigned long long>(writes));
    }
  }
  if (with_timing) {
    s += StrPrintf(" time=%.3fms",
                   static_cast<double>(node.stats.wall_nanos) / 1e6);
  }
  s += "]";
  return s;
}

/// Appends the line terminator shared by every node: the `[est=N]` tag on
/// an unexecuted (plain explain) rendering, or the stats suffix.
void FinishLine(const PlanNode& node, bool with_stats, bool with_timing,
                std::string* line) {
  if (with_stats) {
    *line += StatsSuffix(node, with_timing);
  } else if (node.est_rows >= 0) {
    *line += StrPrintf(" [est=%.0f]", node.est_rows);
  }
}

void DescribeNode(const PlanNode* node, int depth, const std::string& label,
                  bool with_stats, bool with_timing, std::string* out) {
  std::string line(static_cast<size_t>(depth) * 2, ' ');
  line += label;
  if (node == nullptr) {
    // A project without input: the single-row constant plan.
    line += "constant";
    out->append(line);
    out->push_back('\n');
    return;
  }
  switch (node->kind) {
    case PlanNode::Kind::kSeqScan:
    case PlanNode::Kind::kKeyedLookup:
    case PlanNode::Kind::kIndexEq:
    case PlanNode::Kind::kRangeScan: {
      const auto* a = static_cast<const AccessNode*>(node);
      line += PlanNodeKindName(node->kind);
      line += " " + a->var_name + "=" + a->rel_name;
      if (node->kind == PlanNode::Kind::kKeyedLookup) {
        line += " key=" + static_cast<const KeyedLookupNode*>(a)->key_text;
      } else if (node->kind == PlanNode::Kind::kIndexEq) {
        const auto* ix = static_cast<const IndexEqNode*>(a);
        line += " index=" + ix->index_attr + " key=" + ix->key_text;
      } else if (node->kind == PlanNode::Kind::kRangeScan) {
        const auto* r = static_cast<const RangeScanNode*>(a);
        if (!r->lo_text.empty()) {
          line += std::string(" key>") + (r->lo_inclusive ? "=" : "") +
                  r->lo_text;
        }
        if (!r->hi_text.empty()) {
          line += std::string(" key<") + (r->hi_inclusive ? "=" : "") +
                  r->hi_text;
        }
      }
      if (a->current_only) line += " (current)";
      FinishLine(*node, with_stats, with_timing, &line);
      out->append(line);
      out->push_back('\n');
      return;
    }
    case PlanNode::Kind::kFilter: {
      const auto* f = static_cast<const FilterNode*>(node);
      line += "filter [" + Join(f->pred_text, "; ") + "]";
      FinishLine(*node, with_stats, with_timing, &line);
      out->append(line);
      out->push_back('\n');
      DescribeNode(f->child.get(), depth + 1, "", with_stats, with_timing, out);
      return;
    }
    case PlanNode::Kind::kNestedLoop: {
      const auto* n = static_cast<const NestedLoopNode*>(node);
      line += "nested-loop";
      FinishLine(*node, with_stats, with_timing, &line);
      out->append(line);
      out->push_back('\n');
      for (const auto& level : n->levels) {
        DescribeNode(level.get(), depth + 1, "", with_stats, with_timing, out);
      }
      return;
    }
    case PlanNode::Kind::kSubstitution: {
      const auto* s = static_cast<const SubstitutionNode*>(node);
      line += "substitution";
      FinishLine(*node, with_stats, with_timing, &line);
      out->append(line);
      out->push_back('\n');
      DescribeNode(s->outer.get(), depth + 1, "outer: ", with_stats,
                   with_timing, out);
      DescribeNode(s->inner.get(), depth + 1, "inner: ", with_stats,
                   with_timing, out);
      return;
    }
    case PlanNode::Kind::kHashJoin: {
      const auto* h = static_cast<const HashJoinNode*>(node);
      line += "hash-join key=(" + h->key_text + ")";
      if (!h->residual.pred_text.empty()) {
        line += " filter [" + Join(h->residual.pred_text, "; ") + "]";
      }
      FinishLine(*node, with_stats, with_timing, &line);
      out->append(line);
      out->push_back('\n');
      DescribeNode(h->build.get(), depth + 1, "build: ", with_stats,
                   with_timing, out);
      DescribeNode(h->probe.get(), depth + 1, "probe: ", with_stats,
                   with_timing, out);
      return;
    }
    case PlanNode::Kind::kIntervalJoin: {
      const auto* j = static_cast<const IntervalJoinNode*>(node);
      // pred_text is an Expr rendering, already parenthesized.
      line += "interval-join when=" + j->pred_text;
      if (!j->residual.pred_text.empty()) {
        line += " filter [" + Join(j->residual.pred_text, "; ") + "]";
      }
      FinishLine(*node, with_stats, with_timing, &line);
      out->append(line);
      out->push_back('\n');
      DescribeNode(j->left.get(), depth + 1, "left: ", with_stats,
                   with_timing, out);
      DescribeNode(j->right.get(), depth + 1, "right: ", with_stats,
                   with_timing, out);
      return;
    }
    case PlanNode::Kind::kProject: {
      const auto* p = static_cast<const ProjectNode*>(node);
      line += "project (" + Join(p->target_text, ", ") + ")";
      if (p->unique) line += " unique";
      if (!p->into.empty()) line += " into " + p->into;
      if (!p->as_of_text.empty()) line += " as of " + p->as_of_text;
      if (!p->sort_text.empty()) line += " sort by " + p->sort_text;
      FinishLine(*node, with_stats, with_timing, &line);
      out->append(line);
      out->push_back('\n');
      DescribeNode(p->child.get(), depth + 1, "", with_stats, with_timing, out);
      return;
    }
  }
}

void CollectBriefs(const PlanNode* node, std::vector<std::string>* out) {
  if (node == nullptr) return;
  if (const AccessNode* a = AccessOf(node)) {
    out->push_back(a->Brief());
    return;
  }
  switch (node->kind) {
    case PlanNode::Kind::kNestedLoop: {
      const auto* n = static_cast<const NestedLoopNode*>(node);
      for (const auto& level : n->levels) CollectBriefs(level.get(), out);
      return;
    }
    case PlanNode::Kind::kSubstitution: {
      // Historical note order: the substitution decision (naming the inner
      // access) is recorded first, then the outer detachment's own path.
      const auto* s = static_cast<const SubstitutionNode*>(node);
      const AccessNode* inner = AccessOf(s->inner.get());
      out->push_back("substitution(" +
                     (inner != nullptr ? inner->Brief() : std::string("?")) +
                     ")");
      CollectBriefs(s->outer.get(), out);
      return;
    }
    case PlanNode::Kind::kHashJoin: {
      const auto* h = static_cast<const HashJoinNode*>(node);
      const AccessNode* b = AccessOf(h->build.get());
      const AccessNode* p = AccessOf(h->probe.get());
      out->push_back("hash-join(" +
                     (b != nullptr ? b->Brief() : std::string("?")) + " x " +
                     (p != nullptr ? p->Brief() : std::string("?")) + ")");
      return;
    }
    case PlanNode::Kind::kIntervalJoin: {
      const auto* j = static_cast<const IntervalJoinNode*>(node);
      const AccessNode* l = AccessOf(j->left.get());
      const AccessNode* r = AccessOf(j->right.get());
      out->push_back("interval-join(" +
                     (l != nullptr ? l->Brief() : std::string("?")) + " x " +
                     (r != nullptr ? r->Brief() : std::string("?")) + ")");
      return;
    }
    default:
      return;
  }
}

}  // namespace

std::string PhysicalPlan::Describe(bool with_stats, bool with_timing) const {
  std::string out;
  DescribeNode(root.get(), 0, "", with_stats, with_timing, &out);
  return out;
}

std::string PhysicalPlan::Summary() const {
  if (root == nullptr || root->child == nullptr) return "constant";
  std::vector<std::string> briefs;
  CollectBriefs(root->child.get(), &briefs);
  if (briefs.empty()) return "constant";
  return Join(briefs, "; ");
}

}  // namespace tdb
