#include "exec/plan.h"

#include "util/stringx.h"

namespace tdb {

const char* PlanNodeKindName(PlanNode::Kind k) {
  switch (k) {
    case PlanNode::Kind::kSeqScan:
      return "seq-scan";
    case PlanNode::Kind::kKeyedLookup:
      return "keyed-lookup";
    case PlanNode::Kind::kIndexEq:
      return "index-eq";
    case PlanNode::Kind::kRangeScan:
      return "range-scan";
    case PlanNode::Kind::kNestedLoop:
      return "nested-loop";
    case PlanNode::Kind::kSubstitution:
      return "substitution";
    case PlanNode::Kind::kFilter:
      return "filter";
    case PlanNode::Kind::kProject:
      return "project";
  }
  return "?";
}

std::string AccessNode::Brief() const {
  const char* word = "scan";
  switch (kind) {
    case Kind::kSeqScan:
      word = "scan";
      break;
    case Kind::kKeyedLookup:
      word = "keyed";
      break;
    case Kind::kIndexEq:
      word = "index";
      break;
    case Kind::kRangeScan:
      word = "range";
      break;
    default:
      break;
  }
  std::string s = rel_name + ":" + word;
  if (current_only) s += "(current)";
  return s;
}

const AccessNode* AccessOf(const PlanNode* node) {
  if (node == nullptr) return nullptr;
  if (node->kind == PlanNode::Kind::kFilter) {
    return AccessOf(static_cast<const FilterNode*>(node)->child.get());
  }
  switch (node->kind) {
    case PlanNode::Kind::kSeqScan:
    case PlanNode::Kind::kKeyedLookup:
    case PlanNode::Kind::kIndexEq:
    case PlanNode::Kind::kRangeScan:
      return static_cast<const AccessNode*>(node);
    default:
      return nullptr;
  }
}

AccessNode* AccessOf(PlanNode* node) {
  return const_cast<AccessNode*>(AccessOf(const_cast<const PlanNode*>(node)));
}

namespace {

/// The `[...]` annotation appended to a line when stats are requested.
/// `with_timing` adds the node's inclusive wall time (explain analyze).
std::string StatsSuffix(const PlanNode& node, bool with_timing) {
  if (!node.stats.executed) return " [not executed]";
  std::string s;
  if (node.kind == PlanNode::Kind::kProject) {
    s = StrPrintf(" [rows=%llu",
                  static_cast<unsigned long long>(node.stats.rows_emitted));
  } else {
    s = StrPrintf(
        " [loops=%llu examined=%llu emitted=%llu",
        static_cast<unsigned long long>(node.stats.loops),
        static_cast<unsigned long long>(node.stats.rows_examined),
        static_cast<unsigned long long>(node.stats.rows_emitted));
  }
  uint64_t reads = node.stats.io.TotalReads();
  uint64_t writes = node.stats.io.TotalWrites();
  if (reads > 0 || writes > 0) {
    s += StrPrintf(" reads=%llu", static_cast<unsigned long long>(reads));
    std::vector<std::string> parts;
    for (int i = 0; i < kNumIoCategories; ++i) {
      if (node.stats.io.reads[i] == 0) continue;
      parts.push_back(StrPrintf(
          "%s=%llu", IoCategoryName(static_cast<IoCategory>(i)),
          static_cast<unsigned long long>(node.stats.io.reads[i])));
    }
    if (!parts.empty()) s += " (" + Join(parts, " ") + ")";
    if (writes > 0) {
      s += StrPrintf(" writes=%llu", static_cast<unsigned long long>(writes));
    }
  }
  if (with_timing) {
    s += StrPrintf(" time=%.3fms",
                   static_cast<double>(node.stats.wall_nanos) / 1e6);
  }
  s += "]";
  return s;
}

void DescribeNode(const PlanNode* node, int depth, const std::string& label,
                  bool with_stats, bool with_timing, std::string* out) {
  std::string line(static_cast<size_t>(depth) * 2, ' ');
  line += label;
  if (node == nullptr) {
    // A project without input: the single-row constant plan.
    line += "constant";
    out->append(line);
    out->push_back('\n');
    return;
  }
  switch (node->kind) {
    case PlanNode::Kind::kSeqScan:
    case PlanNode::Kind::kKeyedLookup:
    case PlanNode::Kind::kIndexEq:
    case PlanNode::Kind::kRangeScan: {
      const auto* a = static_cast<const AccessNode*>(node);
      line += PlanNodeKindName(node->kind);
      line += " " + a->var_name + "=" + a->rel_name;
      if (node->kind == PlanNode::Kind::kKeyedLookup) {
        line += " key=" + static_cast<const KeyedLookupNode*>(a)->key_text;
      } else if (node->kind == PlanNode::Kind::kIndexEq) {
        const auto* ix = static_cast<const IndexEqNode*>(a);
        line += " index=" + ix->index_attr + " key=" + ix->key_text;
      } else if (node->kind == PlanNode::Kind::kRangeScan) {
        const auto* r = static_cast<const RangeScanNode*>(a);
        if (!r->lo_text.empty()) {
          line += std::string(" key>") + (r->lo_inclusive ? "=" : "") +
                  r->lo_text;
        }
        if (!r->hi_text.empty()) {
          line += std::string(" key<") + (r->hi_inclusive ? "=" : "") +
                  r->hi_text;
        }
      }
      if (a->current_only) line += " (current)";
      if (with_stats) line += StatsSuffix(*node, with_timing);
      out->append(line);
      out->push_back('\n');
      return;
    }
    case PlanNode::Kind::kFilter: {
      const auto* f = static_cast<const FilterNode*>(node);
      line += "filter [" + Join(f->pred_text, "; ") + "]";
      if (with_stats) line += StatsSuffix(*node, with_timing);
      out->append(line);
      out->push_back('\n');
      DescribeNode(f->child.get(), depth + 1, "", with_stats, with_timing, out);
      return;
    }
    case PlanNode::Kind::kNestedLoop: {
      const auto* n = static_cast<const NestedLoopNode*>(node);
      line += "nested-loop";
      if (with_stats) line += StatsSuffix(*node, with_timing);
      out->append(line);
      out->push_back('\n');
      for (const auto& level : n->levels) {
        DescribeNode(level.get(), depth + 1, "", with_stats, with_timing, out);
      }
      return;
    }
    case PlanNode::Kind::kSubstitution: {
      const auto* s = static_cast<const SubstitutionNode*>(node);
      line += "substitution";
      if (with_stats) line += StatsSuffix(*node, with_timing);
      out->append(line);
      out->push_back('\n');
      DescribeNode(s->outer.get(), depth + 1, "outer: ", with_stats,
                   with_timing, out);
      DescribeNode(s->inner.get(), depth + 1, "inner: ", with_stats,
                   with_timing, out);
      return;
    }
    case PlanNode::Kind::kProject: {
      const auto* p = static_cast<const ProjectNode*>(node);
      line += "project (" + Join(p->target_text, ", ") + ")";
      if (p->unique) line += " unique";
      if (!p->into.empty()) line += " into " + p->into;
      if (!p->as_of_text.empty()) line += " as of " + p->as_of_text;
      if (!p->sort_text.empty()) line += " sort by " + p->sort_text;
      if (with_stats) line += StatsSuffix(*node, with_timing);
      out->append(line);
      out->push_back('\n');
      DescribeNode(p->child.get(), depth + 1, "", with_stats, with_timing, out);
      return;
    }
  }
}

void CollectBriefs(const PlanNode* node, std::vector<std::string>* out) {
  if (node == nullptr) return;
  if (const AccessNode* a = AccessOf(node)) {
    out->push_back(a->Brief());
    return;
  }
  switch (node->kind) {
    case PlanNode::Kind::kNestedLoop: {
      const auto* n = static_cast<const NestedLoopNode*>(node);
      for (const auto& level : n->levels) CollectBriefs(level.get(), out);
      return;
    }
    case PlanNode::Kind::kSubstitution: {
      // Historical note order: the substitution decision (naming the inner
      // access) is recorded first, then the outer detachment's own path.
      const auto* s = static_cast<const SubstitutionNode*>(node);
      const AccessNode* inner = AccessOf(s->inner.get());
      out->push_back("substitution(" +
                     (inner != nullptr ? inner->Brief() : std::string("?")) +
                     ")");
      CollectBriefs(s->outer.get(), out);
      return;
    }
    default:
      return;
  }
}

}  // namespace

std::string PhysicalPlan::Describe(bool with_stats, bool with_timing) const {
  std::string out;
  DescribeNode(root.get(), 0, "", with_stats, with_timing, &out);
  return out;
}

std::string PhysicalPlan::Summary() const {
  if (root == nullptr || root->child == nullptr) return "constant";
  std::vector<std::string> briefs;
  CollectBriefs(root->child.get(), &briefs);
  if (briefs.empty()) return "constant";
  return Join(briefs, "; ");
}

}  // namespace tdb
