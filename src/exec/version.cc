#include "exec/version.h"

#include <cstring>

namespace tdb {

void VersionRef::BindRaw(const Schema& schema, const uint8_t* rec) {
  schema_ = &schema;
  raw_ = rec;
  owned_.reset();  // rebinding a recycled clone releases its copy
  row_.assign(schema.num_attrs(), Value());  // keeps the vector's capacity
  decoded_ = 0;
  full_ = false;
  // The lifespans are consulted for every tuple (temporal qualification,
  // currency checks), so derive them eagerly; attr() caches the decoded
  // time values as a side effect.
  RefreshIntervals(schema, this);
}

const Row& VersionRef::FullRow() const {
  if (!full_) {
    const size_t n = row_.size();
    for (size_t i = 0; i < n; ++i) {
      if (i < 64 && (decoded_ & (uint64_t{1} << i))) continue;
      row_[i] = DecodeAttr(*schema_, i, raw_);
    }
    full_ = true;
  }
  return row_;
}

VersionRef VersionRef::Clone() const {
  VersionRef copy;
  copy.valid = valid;
  copy.tx = tx;
  copy.tid = tid;
  copy.in_history = in_history;
  if (raw_ != nullptr) {
    // Raw mode: one memcpy of the record, attribute decode stays lazy.
    // The lifespans were derived at bind time, so they carry over as-is.
    const size_t len = schema_->record_size();
    copy.owned_ = std::make_unique<uint8_t[]>(len);
    std::memcpy(copy.owned_.get(), raw_, len);
    copy.schema_ = schema_;
    copy.raw_ = copy.owned_.get();
    copy.row_.assign(row_.size(), Value());
    copy.decoded_ = 0;
    copy.full_ = false;
  } else {
    copy.row_ = FullRow();
  }
  return copy;
}

void RefreshIntervals(const Schema& schema, VersionRef* ref) {
  ref->valid = Interval(TimePoint::Beginning(), TimePoint::Forever());
  ref->tx = Interval(TimePoint::Beginning(), TimePoint::Forever());
  if (schema.valid_from_index() >= 0) {
    TimePoint from =
        ref->attr(static_cast<size_t>(schema.valid_from_index())).AsTime();
    TimePoint to =
        ref->attr(static_cast<size_t>(schema.valid_to_index())).AsTime();
    ref->valid = Interval(from, to);  // events: from == to
  }
  if (schema.tx_start_index() >= 0) {
    TimePoint from =
        ref->attr(static_cast<size_t>(schema.tx_start_index())).AsTime();
    TimePoint to =
        ref->attr(static_cast<size_t>(schema.tx_stop_index())).AsTime();
    ref->tx = Interval(from, to);
  }
}

Result<VersionRef> DecodeVersion(const Schema& schema, const uint8_t* rec,
                                 size_t size, Tid tid, bool in_history) {
  VersionRef ref;
  TDB_ASSIGN_OR_RETURN(Row row, DecodeRecord(schema, rec, size));
  ref.SetRow(std::move(row));
  ref.tid = tid;
  ref.in_history = in_history;
  RefreshIntervals(schema, &ref);
  return ref;
}

}  // namespace tdb
