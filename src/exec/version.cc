#include "exec/version.h"

namespace tdb {

void RefreshIntervals(const Schema& schema, VersionRef* ref) {
  ref->valid = Interval(TimePoint::Beginning(), TimePoint::Forever());
  ref->tx = Interval(TimePoint::Beginning(), TimePoint::Forever());
  if (schema.valid_from_index() >= 0) {
    TimePoint from =
        ref->row[static_cast<size_t>(schema.valid_from_index())].AsTime();
    TimePoint to =
        ref->row[static_cast<size_t>(schema.valid_to_index())].AsTime();
    ref->valid = Interval(from, to);  // events: from == to
  }
  if (schema.tx_start_index() >= 0) {
    TimePoint from =
        ref->row[static_cast<size_t>(schema.tx_start_index())].AsTime();
    TimePoint to =
        ref->row[static_cast<size_t>(schema.tx_stop_index())].AsTime();
    ref->tx = Interval(from, to);
  }
}

Result<VersionRef> DecodeVersion(const Schema& schema, const uint8_t* rec,
                                 size_t size, Tid tid, bool in_history) {
  VersionRef ref;
  TDB_ASSIGN_OR_RETURN(ref.row, DecodeRecord(schema, rec, size));
  ref.tid = tid;
  ref.in_history = in_history;
  RefreshIntervals(schema, &ref);
  return ref;
}

}  // namespace tdb
