#ifndef CHRONOQUEL_EXEC_MORSEL_H_
#define CHRONOQUEL_EXEC_MORSEL_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "storage/storage_file.h"

namespace tdb {

/// Batch currency of the vectorized executor: up to MorselCapacity() raw
/// record slices from ONE store of a relation, gathered by
/// VersionSource::NextBatch.  All entries of a morsel share `in_history`
/// (the gather is cut when the source transitions between primary and
/// history stores), so batch kernels can decode intervals uniformly.
struct Morsel : RecordBatch {
  bool in_history = false;
};

/// Selection vector: indexes of the morsel entries that passed the filters
/// so far.  uint16_t bounds the morsel capacity at 65535.
using SelVec = std::vector<uint16_t>;

/// Resets `sel` to the identity selection [0, n).
inline void FillIdentity(SelVec* sel, size_t n) {
  sel->resize(n);
  for (size_t i = 0; i < n; ++i) (*sel)[i] = static_cast<uint16_t>(i);
}

/// Whether the executor runs morsel-at-a-time.  Defaults to on; the
/// TDB_VECTOR_EXEC=0 environment variable (read once) selects the
/// tuple-at-a-time fallback.  Both modes perform identical page I/O.
bool VectorExecEnabled();

/// Test hook: forces VectorExecEnabled() to `enabled` (or back to the
/// environment default with nullopt).
void SetVectorExecEnabledForTest(std::optional<bool> enabled);

/// Morsel capacity in records: TDB_MORSEL_CAP (read once), default 1024,
/// clamped to [1, 65535] so selection-vector indexes fit in uint16_t.
size_t MorselCapacity();

}  // namespace tdb

#endif  // CHRONOQUEL_EXEC_MORSEL_H_
