#ifndef CHRONOQUEL_EXEC_MORSEL_H_
#define CHRONOQUEL_EXEC_MORSEL_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "storage/storage_file.h"

namespace tdb {

/// Batch currency of the vectorized executor: up to the morsel capacity of
/// raw record slices from ONE store of a relation, gathered by
/// VersionSource::NextBatch.  All entries of a morsel share `in_history`
/// (the gather is cut when the source transitions between primary and
/// history stores), so batch kernels can decode intervals uniformly.
struct Morsel : RecordBatch {
  bool in_history = false;
};

/// Selection vector: indexes of the morsel entries that passed the filters
/// so far.  uint16_t bounds the morsel capacity at 65535.
using SelVec = std::vector<uint16_t>;

/// Resets `sel` to the identity selection [0, n).
inline void FillIdentity(SelVec* sel, size_t n) {
  sel->resize(n);
  for (size_t i = 0; i < n; ++i) (*sel)[i] = static_cast<uint16_t>(i);
}

/// Resolves whether a Database runs morsel-at-a-time: test override >
/// `option` (DatabaseOptions::vector_exec) > TDB_VECTOR_EXEC env (re-read
/// every call, so tests can flip it without a process restart) > on.  Both
/// modes perform identical page I/O.
bool ResolveVectorExec(const std::optional<bool>& option);

/// Test hook: forces ResolveVectorExec() to `enabled` (or back to the
/// option/environment default with nullopt).
void SetVectorExecEnabledForTest(std::optional<bool> enabled);

/// Resolves a Database's morsel capacity in records: `option`
/// (DatabaseOptions::morsel_capacity, when > 0) > TDB_MORSEL_CAP env
/// (re-read every call) > 1024, clamped to [1, 65535] so selection-vector
/// indexes fit in uint16_t.
size_t ResolveMorselCapacity(int option);

}  // namespace tdb

#endif  // CHRONOQUEL_EXEC_MORSEL_H_
