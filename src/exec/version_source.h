#ifndef CHRONOQUEL_EXEC_VERSION_SOURCE_H_
#define CHRONOQUEL_EXEC_VERSION_SOURCE_H_

#include <memory>
#include <optional>
#include <vector>

#include "core/relation.h"
#include "exec/version.h"
#include "index/secondary_index.h"

namespace tdb {

/// Concrete access-path arguments for one variable.
struct AccessSpec {
  enum class Kind { kScan, kKeyed, kIndexEq, kRange };
  Kind kind = Kind::kScan;
  Value key;                        // kKeyed / kIndexEq probe value
  SecondaryIndex* index = nullptr;  // kIndexEq
  // kRange bounds (ISAM primary organizations only).
  std::optional<Value> lo;
  std::optional<Value> hi;
  bool lo_inclusive = true;
  bool hi_inclusive = true;
  /// Skip history data (two-level store / 2-level index) — valid only when
  /// the statement's clauses restrict the variable to current versions.
  bool current_only = false;
};

/// Streams the VersionRefs of one relation reachable through an access
/// path.  For conventional relations everything comes from the primary
/// file.  For a two-level relation:
///   * kScan visits the primary file and then (unless current_only) the
///     entire history store;
///   * kKeyed visits the primary chain for the key and then (unless
///     current_only) walks the key's history chain from its anchor;
///   * kIndexEq resolves entries through the secondary index and fetches
///     each referenced version from the proper store.
class VersionSource {
 public:
  static Result<std::unique_ptr<VersionSource>> Create(Relation* rel,
                                                       AccessSpec spec);

  /// Advances; false at end.  The current version is `ref()`.
  Result<bool> Next();
  const VersionRef& ref() const { return ref_; }

 private:
  VersionSource(Relation* rel, AccessSpec spec)
      : rel_(rel), spec_(std::move(spec)) {}

  Result<bool> NextScan();
  Result<bool> NextKeyed();
  Result<bool> NextIndex();

  Relation* rel_;
  AccessSpec spec_;
  VersionRef ref_;
  // Backing bytes for ref_ when the record comes from a point fetch rather
  // than a live cursor; reused across iterations.
  std::vector<uint8_t> owned_rec_;

  // scan / keyed state
  enum class Stage { kPrimary, kHistoryScan, kHistoryChain, kDone };
  Stage stage_ = Stage::kPrimary;
  std::unique_ptr<Cursor> cursor_;
  std::optional<Tid> chain_next_;
  bool started_ = false;

  // index state
  std::vector<IndexEntryRef> entries_;
  size_t entry_pos_ = 0;
  bool entries_loaded_ = false;
};

}  // namespace tdb

#endif  // CHRONOQUEL_EXEC_VERSION_SOURCE_H_
