#ifndef CHRONOQUEL_EXEC_VERSION_SOURCE_H_
#define CHRONOQUEL_EXEC_VERSION_SOURCE_H_

#include <memory>
#include <optional>
#include <vector>

#include "core/relation.h"
#include "exec/morsel.h"
#include "exec/version.h"
#include "index/secondary_index.h"

namespace tdb {

/// Concrete access-path arguments for one variable.
struct AccessSpec {
  enum class Kind { kScan, kKeyed, kIndexEq, kRange };
  Kind kind = Kind::kScan;
  Value key;                        // kKeyed / kIndexEq probe value
  SecondaryIndex* index = nullptr;  // kIndexEq
  // kRange bounds (ISAM primary organizations only).
  std::optional<Value> lo;
  std::optional<Value> hi;
  bool lo_inclusive = true;
  bool hi_inclusive = true;
  /// Skip history data (two-level store / 2-level index) — valid only when
  /// the statement's clauses restrict the variable to current versions.
  bool current_only = false;
  /// Advisory prefetch depth (pages) for history reads, set by the
  /// executor when the plan came from the plan cache: a hot statement's
  /// history-store scans and chain walks are worth priming the shared
  /// buffer pool for.  0 = off; a no-op without a pool (private frames),
  /// so paper-mode page I/O is untouched.
  int readahead_hint = 0;
};

/// Streams the VersionRefs of one relation reachable through an access
/// path.  For conventional relations everything comes from the primary
/// file.  For a two-level relation:
///   * kScan visits the primary file and then (unless current_only) the
///     entire history store followed by any vacuumed history segments;
///   * kKeyed visits the primary chain for the key and then (unless
///     current_only) walks the key's history chain from its anchor;
///   * kIndexEq resolves entries through the secondary index and fetches
///     each referenced version from the proper store.
class VersionSource {
 public:
  static Result<std::unique_ptr<VersionSource>> Create(Relation* rel,
                                                       AccessSpec spec);

  /// Advances; false at end.  The current version is `ref()`.
  Result<bool> Next();
  const VersionRef& ref() const { return ref_; }

  /// Batch variant: clears `m`, gathers up to `max` versions — all from the
  /// same store, so `m->in_history` is uniform — and returns the count
  /// (0 = end of stream).  Page-I/O order and counts are identical to an
  /// equivalent sequence of Next() calls; scan-shaped paths gather
  /// zero-copy frame slices cut at every page fetch, point-fetch paths
  /// (history chains, index entries) copy into the morsel arena.
  Result<size_t> NextBatch(Morsel* m, size_t max);

 private:
  VersionSource(Relation* rel, AccessSpec spec)
      : rel_(rel), spec_(std::move(spec)) {}

  /// Advisory pool readahead of `spec_.readahead_hint` pages of `file`
  /// starting at `from_page`; no-op when the hint is unset.
  void MaybePrefetch(StorageFile* file, uint32_t from_page);
  /// Primes the pages at the head of the pending history chain.
  void PrefetchChain();

  Result<bool> NextScan();
  Result<bool> NextKeyed();
  Result<bool> NextIndex();
  Result<size_t> NextScanBatch(Morsel* m, size_t max);
  Result<size_t> NextKeyedBatch(Morsel* m, size_t max);
  Result<size_t> NextIndexBatch(Morsel* m, size_t max);

  Relation* rel_;
  AccessSpec spec_;
  VersionRef ref_;
  // Backing bytes for ref_ when the record comes from a point fetch rather
  // than a live cursor; reused across iterations.
  std::vector<uint8_t> owned_rec_;

  // scan / keyed state
  enum class Stage { kPrimary, kHistoryScan, kSegmentScan, kHistoryChain,
                     kDone };
  Stage stage_ = Stage::kPrimary;
  std::unique_ptr<Cursor> cursor_;
  std::optional<HistoryTid> chain_next_;
  // Which vacuum segment kSegmentScan is draining (index into
  // rel_->segments()).
  size_t seg_pos_ = 0;
  bool started_ = false;

  // index state
  std::vector<IndexEntryRef> entries_;
  size_t entry_pos_ = 0;
  bool entries_loaded_ = false;
};

/// One unit of parallel scan dispatch: either a page range [begin, end) of
/// a linear-scan store, or (use_cursor) the whole store read through its
/// ordinary Scan() cursor — ISAM/B-tree primaries, whose scans skip
/// directory pages and so cannot be cut by page number.
struct ScanChunk {
  StorageFile* file = nullptr;
  bool in_history = false;
  bool use_cursor = false;
  uint32_t begin = 0;  // first page of a page-range chunk
  uint32_t end = 0;    // one past the last page
};

/// Cuts the stores a kScan access path visits into chunks of at most
/// `chunk_pages` pages, in the serial scan's visit order — primary pages
/// ascending, then (for a two-level relation, unless current_only) history
/// pages ascending — so concatenating per-chunk results in chunk order
/// reproduces the serial row order exactly.
std::vector<ScanChunk> CutScanChunks(Relation* rel, bool current_only,
                                     uint32_t chunk_pages);

}  // namespace tdb

#endif  // CHRONOQUEL_EXEC_VERSION_SOURCE_H_
