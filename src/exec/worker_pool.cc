#include "exec/worker_pool.h"

#include <algorithm>

#include "core/database.h"

namespace tdb {

namespace {

std::optional<int>& ExecThreadsOverride() {
  static std::optional<int> v;
  return v;
}

int ClampThreads(long long n) {
  if (n < 1) return 1;
  if (n > 64) return 64;
  return static_cast<int>(n);
}

}  // namespace

int ResolveExecThreads(int option) {
  if (ExecThreadsOverride().has_value()) {
    return ClampThreads(*ExecThreadsOverride());
  }
  if (option > 0) return ClampThreads(option);
  int env_threads = DatabaseOptions::FromEnv().exec_threads;
  if (env_threads > 0) return ClampThreads(env_threads);
  return 1;
}

void SetExecThreadsForTest(std::optional<int> threads) {
  ExecThreadsOverride() = threads;
}

WorkerPool& WorkerPool::Shared() {
  static WorkerPool pool;
  return pool;
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : threads_) t.join();
}

int WorkerPool::thread_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(threads_.size());
}

void WorkerPool::EnsureThreads(int want) {
  want = std::min(want, 63);
  while (static_cast<int>(threads_.size()) < want) {
    threads_.emplace_back([this] { HelperLoop(); });
  }
}

void WorkerPool::Run(int workers, const std::function<void(int)>& body) {
  if (workers <= 1) {
    body(0);
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  if (busy_ || shutdown_) {
    // A concurrent (or nested) parallel region owns the pool.  Run every id
    // on this thread: correctness never depends on helper availability.
    lock.unlock();
    for (int id = 0; id < workers; ++id) body(id);
    return;
  }
  busy_ = true;
  body_ = &body;
  total_ = workers;
  next_id_ = 0;
  completed_ = 0;
  ++epoch_;
  EnsureThreads(workers - 1);
  cv_work_.notify_all();
  // The caller is a worker too: claim ids alongside the helpers
  // (work-stealing — a fast caller absorbs ids a lagging helper never gets).
  while (next_id_ < total_) {
    int id = next_id_++;
    lock.unlock();
    body(id);
    lock.lock();
    ++completed_;
  }
  cv_done_.wait(lock, [this] { return completed_ == total_; });
  body_ = nullptr;
  busy_ = false;
}

TaskPool::TaskPool(int threads, size_t queue_capacity)
    : capacity_(queue_capacity == 0 ? 1 : queue_capacity) {
  if (threads < 1) threads = 1;
  threads_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

TaskPool::~TaskPool() { Shutdown(); }

bool TaskPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_space_.wait(lock,
                   [this] { return shutdown_ || queue_.size() < capacity_; });
    if (shutdown_) return false;
    queue_.push_back(std::move(task));
  }
  cv_task_.notify_one();
  return true;
}

void TaskPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  cv_task_.notify_all();
  cv_space_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void TaskPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    cv_task_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
    if (queue_.empty()) return;  // shutdown with a drained queue
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    cv_space_.notify_one();
    lock.unlock();
    task();
    lock.lock();
  }
}

void WorkerPool::HelperLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  uint64_t seen = 0;
  while (true) {
    cv_work_.wait(lock,
                  [&] { return shutdown_ || (busy_ && epoch_ != seen); });
    if (shutdown_) return;
    seen = epoch_;
    while (busy_ && next_id_ < total_) {
      int id = next_id_++;
      const std::function<void(int)>* body = body_;
      lock.unlock();
      (*body)(id);
      lock.lock();
      if (++completed_ == total_) cv_done_.notify_one();
    }
  }
}

}  // namespace tdb
