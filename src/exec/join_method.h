#ifndef CHRONOQUEL_EXEC_JOIN_METHOD_H_
#define CHRONOQUEL_EXEC_JOIN_METHOD_H_

#include <optional>
#include <string>

namespace tdb {

/// How the planner decides multi-variable plans.
///
///   kPaper      — the historical behavior: tuple substitution into a keyed
///                 inner when one exists, left-deep nested loops otherwise.
///                 This is the paper-mode default; every page-I/O golden is
///                 pinned to it.
///   kAuto       — cost-based: the planner estimates page I/O (diskmodel
///                 parameters x catalog cardinalities) for every candidate
///                 join order and method and picks the cheapest among
///                 substitution, nested loop, batched hash join, and the
///                 sort/merge temporal interval join.
///   kNestedLoop — force left-deep nested loops (no substitution), with
///                 cost-estimated annotations.
///   kHash       — force the batched hash join when an equality conjunct
///                 links two variables; falls back to the paper plan
///                 otherwise.
///   kMerge      — force the sort/merge interval join when an `overlap`
///                 conjunct links two valid-time variables; falls back to
///                 the paper plan otherwise.
enum class JoinMethod {
  kPaper,
  kAuto,
  kNestedLoop,
  kHash,
  kMerge,
};

const char* JoinMethodName(JoinMethod m);

/// Parses "paper"/"auto"/"nlj"/"hash"/"merge" (case-insensitive).
std::optional<JoinMethod> ParseJoinMethod(const std::string& text);

/// The process-wide lever: TDB_JOIN_METHOD (read once).  Unset or
/// unparseable means kPaper, keeping every paper-mode golden byte-identical
/// by default.
JoinMethod JoinMethodFromEnv();

/// Resolves the method for one database: the test override (strongest, so
/// harnesses can flip methods per query), then the DatabaseOptions value,
/// then the environment lever.
JoinMethod EffectiveJoinMethod(std::optional<JoinMethod> option);

/// Test hook: forces EffectiveJoinMethod's result (nullopt restores the
/// option/environment resolution).
void SetJoinMethodForTest(std::optional<JoinMethod> method);

}  // namespace tdb

#endif  // CHRONOQUEL_EXEC_JOIN_METHOD_H_
