#ifndef CHRONOQUEL_CORE_SESSION_H_
#define CHRONOQUEL_CORE_SESSION_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/relation.h"
#include "core/result_set.h"
#include "exec/join_method.h"
#include "storage/io_stats.h"
#include "types/timepoint.h"
#include "types/value.h"
#include "util/status.h"

namespace tdb {

class Database;
struct Statement;          // tquel/ast.h
struct RetrieveStmt;       // tquel/ast.h
struct PrepareStmt;        // tquel/ast.h
struct ExecPreparedStmt;   // tquel/ast.h
struct BoundStatement;     // tquel/binder.h
struct CachedPlan;         // core/plan_cache.h
struct ExecEnv;            // exec/exec_env.h

/// Per-session knobs, layered between test overrides and the database's
/// DatabaseOptions in the one precedence chain
///
///   test override > session > DatabaseOptions > environment > default
///
/// (see DatabaseOptions::FromEnv).  Every field's "unset" value defers to
/// the next layer down.
struct SessionOptions {
  /// Pinned `as of` transaction timestamp for read statements: every
  /// retrieve in this session sees the database exactly as it stood at
  /// this instant, whatever concurrent writers commit meanwhile.  Unset
  /// pins each statement at its own start time (snapshot-read MVCC over
  /// the append-only stores).  Mutating statements always stamp with the
  /// live clock — history cannot be written into.
  std::optional<TimePoint> as_of;
  std::optional<JoinMethod> join_method;
  std::optional<bool> vector_exec;
  int morsel_capacity = 0;  // 0 = unset
  int exec_threads = 0;     // 0 = unset
  std::optional<bool> compiled_expr;
};

/// One client's connection to a Database: the unit of statement execution
/// and client state (range declarations, open relation handles, I/O
/// accounting, pinned as-of timestamp, per-session exec options).  The
/// embedded API (`Database::Execute`) is a thin wrapper over an implicit
/// default session; the server's connection handlers each own one.
///
/// Sessions created by Database::CreateSession() may execute statements
/// concurrently from different threads — the database's lock table
/// serializes writers per relation, readers run in parallel against
/// pinned snapshots, and the journal group-commits overlapping writers.
/// One Session is still one client: its own methods must not be called
/// concurrently with each other.  Every Session must be destroyed before
/// its Database.
class Session {
 public:
  ~Session();

  /// Statement execution, identical semantics to the Database methods of
  /// the same names (which delegate here).
  Result<std::vector<ExecResult>> ExecuteScript(const std::string& text);
  Result<ExecResult> Execute(const std::string& text);
  Result<ResultSet> Query(const std::string& text);

  int id() const { return id_; }
  Database* database() { return db_; }

  const SessionOptions& options() const { return options_; }
  void set_options(SessionOptions options) { options_ = std::move(options); }

  /// Pins (or with nullopt, unpins) the session's as-of read timestamp.
  void PinAsOf(std::optional<TimePoint> at) { options_.as_of = at; }
  std::optional<TimePoint> pinned_as_of() const { return options_.as_of; }

  /// Prepared-statement API, mirroring the TQuel surface (`prepare name as
  /// <stmt>` / `execute name (args)` / `deallocate name`) for callers that
  /// already hold the pieces — the wire protocol's kPrepare / kExecPrepared
  /// / kClose frames land here.  `ExecutePrepared` binds already-decoded
  /// values as the statement's `$N` parameters, skipping parsing entirely;
  /// with the plan cache enabled, repeated executions also skip planning.
  Result<ExecResult> Prepare(const std::string& name, const std::string& text);
  Result<ExecResult> ExecutePrepared(const std::string& name,
                                     std::vector<Value> args);
  Result<ExecResult> DeallocatePrepared(const std::string& name);

  /// This session's range declarations (variable -> relation).
  const std::map<std::string, std::string>& ranges() const { return ranges_; }

  /// This session's I/O accounting (per-file page read/write counters).
  IoRegistry* io() { return &registry_; }

  /// Flushes and empties the buffer frame of every relation file this
  /// session has open (the paper's cold-start discipline).
  Status DropAllBuffers();

 private:
  friend class Database;

  Session(Database* db, int id, SessionOptions options);

  /// The executor environment for one statement at logical time `now`,
  /// with every engine knob resolved session > database > environment.
  ExecEnv MakeExecEnv(TimePoint now);

  /// Executes one already-parsed statement through the embedded or
  /// concurrent machinery (journal batch, locks, clock) — the body of
  /// ExecuteScript's loop, also used by the prepared-statement API where
  /// there is no text to parse.
  Result<ExecResult> ExecuteOne(Statement* stmt);

  /// The per-statement kind switch, shared by the embedded and concurrent
  /// paths.  Sets *data_mutating for statements that stamp transaction
  /// time (append/delete/replace/copy-from).
  Result<ExecResult> RunStatement(Statement* stmt, ExecEnv& exec,
                                  bool* data_mutating);

  /// The statement whose reads/writes decide a LockPlan: an `execute` of a
  /// prepared statement classifies as its stored inner statement (an
  /// unknown name classifies as itself and errors later, under the default
  /// shared latch).
  const Statement* EffectiveStatement(const Statement* stmt) const;

  // --- prepared statements -----------------------------------------------

  /// `prepare name as <stmt>`.  Validates completely — inner kind, `$N`
  /// parameter numbering, bind against the live catalog — before touching
  /// any session state, so a failed prepare leaves no prepared entry, no
  /// range binding, and no scratch-file tag behind.
  Result<ExecResult> RunPrepare(PrepareStmt* prep, ExecEnv& exec);

  /// `execute name (args)`.  Evaluates the argument expressions (or takes
  /// the wire path's pre-decoded values), re-binds the stored AST against
  /// the live catalog, and runs it with `exec.params` pointing at the
  /// argument vector for the `$N` evaluator.
  Result<ExecResult> RunExecPrepared(ExecPreparedStmt* ex, ExecEnv& exec,
                                     bool* data_mutating);

  // --- shared plan cache (perf lever TDB_PLAN_CACHE) ---------------------

  /// Retrieve entry point: routes through the shared plan cache when the
  /// database enables it and the statement is cacheable, falling back to
  /// plan-and-execute otherwise (and on any cache-path failure — a cache
  /// hit may change CPU cost, never results).
  Result<ExecResult> RunRetrieve(RetrieveStmt* stmt,
                                 const BoundStatement& bound, ExecEnv& exec);
  Result<ExecResult> RetrieveViaPlanCache(RetrieveStmt* stmt,
                                          const BoundStatement& bound,
                                          ExecEnv& exec);

  /// The cache key: database directory + canonical statement text + every
  /// referenced relation's version stamp + catalog generation + engine-knob
  /// fingerprint.  Any write or DDL moves a component, so stale entries
  /// never hit.
  std::string PlanCacheKeyFor(const RetrieveStmt& stmt,
                              const BoundStatement& bound,
                              const ExecEnv& exec);

  /// Builds a self-contained cache entry: the statement printed, re-parsed
  /// (so the entry owns its AST), re-bound, and planned into a template.
  Result<std::shared_ptr<const CachedPlan>> BuildCacheEntry(
      const RetrieveStmt& stmt, ExecEnv& exec);

  /// Clones the entry's plan template for this execution and interprets it
  /// against the entry's (read-only, shared) AST.
  Result<ExecResult> ExecuteCachedPlan(const CachedPlan& entry, ExecEnv& exec);

  /// Version-stamp bump after an embedded-path write, mirroring what the
  /// concurrent path publishes under its locks — the plan cache keys off
  /// these stamps, so they must move on every write even with one session.
  /// Only runs when the plan cache is enabled, keeping paper mode free of
  /// the version mutex.
  void BumpVersionsEmbedded(const Statement* stmt);

  /// Embedded path: byte-identical to the pre-session Database behavior.
  Result<ExecResult> ExecuteStatementEmbedded(Statement* stmt);
  Status CommitStatementEmbedded();
  Status RollbackStatementEmbedded();

  /// Concurrent path: statement locks, pinned snapshot or acquired tx
  /// time, journal group commit, cross-session handle invalidation.
  Result<ExecResult> ExecuteStatementConcurrent(Statement* stmt);

  /// Drops relation handles another session's committed statement made
  /// stale.  Called at statement start while this statement's locks are
  /// held, so the handles it keeps stay fresh for the statement.
  void InvalidateStaleHandles();

  Database* db_;
  int id_;
  /// Distinguishes this session's scratch files (`__temp<tag><n>.dat`);
  /// empty for the default session, keeping embedded names byte-identical.
  std::string temp_tag_;
  SessionOptions options_;
  IoRegistry registry_;
  /// Declared after registry_ (pagers point into it) and destroyed first.
  std::map<std::string, std::unique_ptr<Relation>> relations_;
  std::map<std::string, std::string> ranges_;
  /// One prepared statement: canonical text (for display), the owned
  /// parsed AST (re-bound at every execute so DDL between executions is
  /// picked up), and its `$N` parameter count.
  struct PreparedEntry {
    std::string text;
    std::unique_ptr<Statement> stmt;
    int param_count = 0;
  };
  std::map<std::string, PreparedEntry> prepared_;
  /// While a prepared statement executes: its stored canonical text, so
  /// PlanCacheKeyFor can skip re-printing the AST on every execution (the
  /// printer is deterministic, so the stored text is exactly what a fresh
  /// print would produce).
  const std::string* prepared_text_hint_ = nullptr;
  /// Last database-wide relation versions this session reconciled with.
  std::map<std::string, uint64_t> seen_versions_;
  uint64_t seen_catalog_gen_ = 0;
};

}  // namespace tdb

#endif  // CHRONOQUEL_CORE_SESSION_H_
