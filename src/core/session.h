#ifndef CHRONOQUEL_CORE_SESSION_H_
#define CHRONOQUEL_CORE_SESSION_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/relation.h"
#include "core/result_set.h"
#include "exec/join_method.h"
#include "storage/io_stats.h"
#include "types/timepoint.h"
#include "util/status.h"

namespace tdb {

class Database;
struct Statement;  // tquel/ast.h
struct ExecEnv;    // exec/exec_env.h

/// Per-session knobs, layered between test overrides and the database's
/// DatabaseOptions in the one precedence chain
///
///   test override > session > DatabaseOptions > environment > default
///
/// (see DatabaseOptions::FromEnv).  Every field's "unset" value defers to
/// the next layer down.
struct SessionOptions {
  /// Pinned `as of` transaction timestamp for read statements: every
  /// retrieve in this session sees the database exactly as it stood at
  /// this instant, whatever concurrent writers commit meanwhile.  Unset
  /// pins each statement at its own start time (snapshot-read MVCC over
  /// the append-only stores).  Mutating statements always stamp with the
  /// live clock — history cannot be written into.
  std::optional<TimePoint> as_of;
  std::optional<JoinMethod> join_method;
  std::optional<bool> vector_exec;
  int morsel_capacity = 0;  // 0 = unset
  int exec_threads = 0;     // 0 = unset
  std::optional<bool> compiled_expr;
};

/// One client's connection to a Database: the unit of statement execution
/// and client state (range declarations, open relation handles, I/O
/// accounting, pinned as-of timestamp, per-session exec options).  The
/// embedded API (`Database::Execute`) is a thin wrapper over an implicit
/// default session; the server's connection handlers each own one.
///
/// Sessions created by Database::CreateSession() may execute statements
/// concurrently from different threads — the database's lock table
/// serializes writers per relation, readers run in parallel against
/// pinned snapshots, and the journal group-commits overlapping writers.
/// One Session is still one client: its own methods must not be called
/// concurrently with each other.  Every Session must be destroyed before
/// its Database.
class Session {
 public:
  ~Session();

  /// Statement execution, identical semantics to the Database methods of
  /// the same names (which delegate here).
  Result<std::vector<ExecResult>> ExecuteScript(const std::string& text);
  Result<ExecResult> Execute(const std::string& text);
  Result<ResultSet> Query(const std::string& text);

  int id() const { return id_; }
  Database* database() { return db_; }

  const SessionOptions& options() const { return options_; }
  void set_options(SessionOptions options) { options_ = std::move(options); }

  /// Pins (or with nullopt, unpins) the session's as-of read timestamp.
  void PinAsOf(std::optional<TimePoint> at) { options_.as_of = at; }
  std::optional<TimePoint> pinned_as_of() const { return options_.as_of; }

  /// This session's range declarations (variable -> relation).
  const std::map<std::string, std::string>& ranges() const { return ranges_; }

  /// This session's I/O accounting (per-file page read/write counters).
  IoRegistry* io() { return &registry_; }

  /// Flushes and empties the buffer frame of every relation file this
  /// session has open (the paper's cold-start discipline).
  Status DropAllBuffers();

 private:
  friend class Database;

  Session(Database* db, int id, SessionOptions options);

  /// The executor environment for one statement at logical time `now`,
  /// with every engine knob resolved session > database > environment.
  ExecEnv MakeExecEnv(TimePoint now);

  /// The per-statement kind switch, shared by the embedded and concurrent
  /// paths.  Sets *data_mutating for statements that stamp transaction
  /// time (append/delete/replace/copy-from).
  Result<ExecResult> RunStatement(Statement* stmt, ExecEnv& exec,
                                  bool* data_mutating);

  /// Embedded path: byte-identical to the pre-session Database behavior.
  Result<ExecResult> ExecuteStatementEmbedded(Statement* stmt);
  Status CommitStatementEmbedded();
  Status RollbackStatementEmbedded();

  /// Concurrent path: statement locks, pinned snapshot or acquired tx
  /// time, journal group commit, cross-session handle invalidation.
  Result<ExecResult> ExecuteStatementConcurrent(Statement* stmt);

  /// Drops relation handles another session's committed statement made
  /// stale.  Called at statement start while this statement's locks are
  /// held, so the handles it keeps stay fresh for the statement.
  void InvalidateStaleHandles();

  Database* db_;
  int id_;
  /// Distinguishes this session's scratch files (`__temp<tag><n>.dat`);
  /// empty for the default session, keeping embedded names byte-identical.
  std::string temp_tag_;
  SessionOptions options_;
  IoRegistry registry_;
  /// Declared after registry_ (pagers point into it) and destroyed first.
  std::map<std::string, std::unique_ptr<Relation>> relations_;
  std::map<std::string, std::string> ranges_;
  /// Last database-wide relation versions this session reconciled with.
  std::map<std::string, uint64_t> seen_versions_;
  uint64_t seen_catalog_gen_ = 0;
};

}  // namespace tdb

#endif  // CHRONOQUEL_CORE_SESSION_H_
