#ifndef CHRONOQUEL_CORE_DATABASE_H_
#define CHRONOQUEL_CORE_DATABASE_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include <vector>

#include "catalog/catalog.h"
#include "core/lock_table.h"
#include "core/relation.h"
#include "core/result_set.h"
#include "core/session.h"
#include "env/env.h"
#include "exec/join_method.h"
#include "obs/metrics.h"
#include "storage/buffer_pool.h"
#include "storage/io_stats.h"
#include "storage/journal.h"
#include "storage/pager.h"
#include "types/timepoint.h"
#include "util/status.h"

namespace tdb {

struct Statement;  // tquel/ast.h
struct ExecEnv;    // exec/exec_env.h

/// 1980-01-01 00:00:00 UTC — the epoch the paper's benchmark databases are
/// initialized around, and the default logical start time.
inline constexpr TimePoint kDefaultStartTime = TimePoint(315532800);

struct DatabaseOptions {
  /// Filesystem backend; null selects the shared Posix environment.  Pass a
  /// MemEnv for hermetic tests and benchmarks.
  Env* env = nullptr;
  /// Initial logical "now".
  TimePoint start_time = kDefaultStartTime;
  /// Seconds the logical clock advances after each mutating statement, so
  /// successive transactions get distinct timestamps.  0 freezes the clock.
  int auto_advance_seconds = 1;
  /// Buffer frames per relation file.  The paper's methodology (and the
  /// default) is 1; `bench/ablation_buffers` sweeps this.
  int buffer_frames = 1;
  /// Crash safety for mutating statements.  kOff (the default, and the
  /// benchmark configuration) writes pages in place with no journal.
  /// kJournal pre-images every page overwrite to a rollback journal so a
  /// process crash leaves each statement atomic; kJournalSync additionally
  /// fsyncs at the commit barriers for power-cut safety.  Recovery runs
  /// automatically in Open() whatever the mode.
  DurabilityMode durability = DurabilityMode::kOff;
  /// Observability: counters, histograms, per-node wall time, and trace
  /// spans.  Unset defers to the TDB_METRICS environment variable (on
  /// unless it is "0").  When resolved off, no instrumentation pointer is
  /// ever wired and the measured page counts / figure stdout are
  /// byte-identical to a run without the obs layer.
  std::optional<bool> metrics;
  /// Join planning mode (see exec/join_method.h).  Unset defers to the
  /// TDB_JOIN_METHOD environment variable; both default to kPaper, whose
  /// plans — and therefore every measured page count — are byte-identical
  /// to the pre-cost-model system.
  std::optional<JoinMethod> join_method;
  /// Morsel-at-a-time execution.  Unset defers to TDB_VECTOR_EXEC (on
  /// unless "0"); off selects the tuple-at-a-time engine.  Identical page
  /// I/O either way.
  std::optional<bool> vector_exec;
  /// Morsel capacity in records.  0 (unset) defers to TDB_MORSEL_CAP,
  /// default 1024, clamped to [1, 65535].
  int morsel_capacity = 0;
  /// Worker threads for morsel-driven parallel pipelines.  0 (unset)
  /// defers to TDB_EXEC_THREADS, default 1 — the paper's single-threaded
  /// measurement discipline, whose IoCounters and figure stdout are
  /// bit-identical to the pre-parallel system.  Clamped to [1, 64].
  int exec_threads = 0;
  /// Compiled postfix expression programs.  Unset defers to
  /// TDB_COMPILED_EXPR (on unless "0"); off evaluates every expression on
  /// the AST walker.  Identical results and page I/O either way.
  std::optional<bool> compiled_expr;
  /// Group-commit window at kJournalSync: before the leader of a commit
  /// group captures which marks its fsync covers, it waits this long so
  /// concurrent committers can land their marks and share the fsync
  /// (MySQL's binlog_group_commit_sync_delay plays the same role).  Only
  /// the concurrent session path pays it — the embedded single-session
  /// commit never waits.  0 disables the window.
  int group_commit_window_micros = 200;

  // --- production storage mode (ROADMAP item 3) --------------------------
  // Every field defaults to the paper configuration; the resolved page
  // size / checksum flag are persisted in a `storage` meta file inside the
  // database directory, which is AUTHORITATIVE on reopen (on-disk layout
  // cannot change under an existing database).

  /// Bytes per page.  0 (unset) defers to TDB_PAGE_SIZE, then to the
  /// directory's storage meta file, then to the paper's 1024.  Must be in
  /// [512, 65536] and a multiple of 256; production mode uses 4096.
  uint32_t page_size = 0;
  /// CRC32-stamp every data page in a 4-byte trailer, verified on load.
  /// Unset defers to TDB_PAGE_CHECKSUM (off unless "1"-ish), then to the
  /// storage meta file.
  std::optional<bool> page_checksum;
  /// Total frames of the process-shared buffer pool.  0 (unset) defers to
  /// TDB_POOL_FRAMES; both default to "no pool" — every relation keeps the
  /// paper's private single frame.  Setting any positive count enables the
  /// shared pool for every file of this database.
  int pool_frames = 0;
  /// Per-file resident-page cap inside the shared pool.  0 (unset) defers
  /// to TDB_POOL_FILE_CAP, default 1 — the paper's single-frame discipline,
  /// byte-identical row output and IoCounters.  -1 = uncapped (production).
  int pool_file_cap = 0;
  /// History-chain readahead depth in pages (pool mode only).  0 (unset)
  /// defers to TDB_READAHEAD, default off.
  int history_readahead = 0;
  /// Vacuum segment-partition policy: "" (unset) defers to
  /// TDB_VACUUM_PARTITION, default "single"; or "epoch:<seconds>".
  std::string vacuum_partition;
  /// Shared plan cache for retrieve statements (see core/plan_cache.h).
  /// Unset defers to TDB_PLAN_CACHE; both default OFF — the paper's
  /// measured page counts and figure stdout never touch the cache unless
  /// asked.  On, repeated statements (prepared or raw) skip parsing and/or
  /// planning; results and per-file IoCounters are identical either way.
  std::optional<bool> plan_cache;

  /// Reads every TDB_* engine lever from the process environment into one
  /// DatabaseOptions: TDB_VECTOR_EXEC, TDB_MORSEL_CAP, TDB_EXEC_THREADS,
  /// TDB_JOIN_METHOD, TDB_COMPILED_EXPR, and TDB_METRICS.  Fields whose
  /// variable is absent (or unparseable) stay unset, so callers can layer
  /// explicit options on top.  This is the single place the environment is
  /// consulted; every per-statement knob resolves through the one
  /// precedence chain
  ///
  ///   test override > per-session > DatabaseOptions > environment > default
  ///
  /// (see exec/morsel.h, exec/worker_pool.h, exec/join_method.h,
  /// exec/compiled_expr.h for the per-knob resolvers).
  static DatabaseOptions FromEnv();
};

/// The TQuel temporal DBMS facade: a database directory containing a
/// catalog plus one or more relation files, queried and updated through
/// TQuel text.
///
///   auto db = Database::Open("/data/mydb", {}).value();
///   db->Execute("create persistent interval emp (name = c20, sal = i4)");
///   db->Execute("range of e is emp");
///   auto rows = db->Execute("retrieve (e.name) where e.sal > 100");
///
/// The logical clock stands in for wall-clock transaction time so runs are
/// reproducible; use SetNow / AdvanceSeconds to script an evolution.
class Database {
 public:
  static Result<std::unique_ptr<Database>> Open(const std::string& dir,
                                                DatabaseOptions options = {});

  /// Parses and executes a script of one or more statements, returning one
  /// ExecResult per statement in script order.  The first error aborts the
  /// remainder; the returned Status then carries a StatementContext naming
  /// the failing statement (1-based index + source offset).  With
  /// durability on, each statement is atomic: a failure (or crash) rolls
  /// the database back to the previous statement boundary.
  ///
  /// A thin wrapper over an implicit default Session (as are Execute and
  /// Query); multi-client code holds its own sessions via CreateSession.
  Result<std::vector<ExecResult>> ExecuteScript(const std::string& text);

  /// Like ExecuteScript(), returning only the last statement's result.
  Result<ExecResult> Execute(const std::string& text);

  /// Convenience wrapper asserting the text is a single retrieve.
  Result<ResultSet> Query(const std::string& text);

  /// Opens a new client session.  The first call switches the database
  /// into concurrent mode: from then on every statement (including ones
  /// through the embedded wrappers above) takes statement locks, read
  /// statements pin an as-of snapshot, and journal commits group-batch.
  /// Until then the embedded path runs exactly as the single-session
  /// system did — no lock, mutex, or thread is ever touched.
  ///
  /// Sessions may execute concurrently from different threads (one thread
  /// per session) and must be destroyed before the Database.
  std::unique_ptr<Session> CreateSession(SessionOptions options = {});

  /// Plans `text` — a single retrieve, with or without a leading `explain`
  /// — and returns the structured physical plan WITHOUT executing anything.
  /// The plan's runtime stats are all zero; only the pre-rendered node text
  /// remains meaningful once this call returns.
  Result<std::shared_ptr<const PhysicalPlan>> Plan(const std::string& text);

  /// Like Plan(), rendered: the multi-line plan tree `explain` would print.
  Result<std::string> Explain(const std::string& text);

  TimePoint now() const {
    std::lock_guard<std::mutex> lock(clock_mu_);
    return now_;
  }
  void SetNow(TimePoint tp) {
    std::lock_guard<std::mutex> lock(clock_mu_);
    now_ = tp;
  }
  void AdvanceSeconds(int64_t secs) {
    std::lock_guard<std::mutex> lock(clock_mu_);
    now_ = now_.AddSeconds(secs);
  }

  /// Adjusts the per-statement clock advance (0 freezes the clock so a
  /// group of statements shares one transaction timestamp).
  void set_auto_advance_seconds(int secs) {
    options_.auto_advance_seconds = secs;
  }
  int auto_advance_seconds() const { return options_.auto_advance_seconds; }

  Env* env() { return env_; }
  const std::string& dir() const { return dir_; }
  Catalog* catalog() { return &catalog_; }
  IoRegistry* io() { return default_session_->io(); }

  /// The metrics registry, or null when metrics are disabled for this
  /// database — callers branch on null exactly like the storage layer.
  obs::MetricsRegistry* metrics() {
    return metrics_.enabled() ? &metrics_ : nullptr;
  }

  /// Structured dump of every metric (empty when metrics are disabled).
  obs::MetricsSnapshot Snapshot() const { return metrics_.Snapshot(); }

  /// Resolved production-storage mode every session opens files with
  /// (page size, checksums, shared pool, readahead).
  const StorageOptions& storage() const { return storage_; }
  /// The shared buffer pool, or null when running the paper's private
  /// single-frame discipline.
  BufferPool* buffer_pool() { return pool_.get(); }
  /// Resolved vacuum segment-partition policy ("single" or "epoch:<secs>").
  const std::string& vacuum_partition() const { return vacuum_partition_; }
  /// True when retrieves route through the process-shared plan cache
  /// (DatabaseOptions::plan_cache > TDB_PLAN_CACHE > off).
  bool plan_cache_enabled() const { return plan_cache_enabled_; }

  Result<Relation*> GetRelation(const std::string& name);

  /// Flushes and empties the buffer frame of every relation file the
  /// default session has open.  Measurement runs call this before each
  /// query so the single frame per relation starts cold, as in the
  /// paper's methodology.
  Status DropAllBuffers() { return default_session_->DropAllBuffers(); }

  /// The default session's range declarations (variable -> relation).
  const std::map<std::string, std::string>& ranges() const {
    return default_session_->ranges();
  }

 private:
  friend class Session;

  Database(Env* env, std::string dir, DatabaseOptions options)
      : env_(env),
        dir_(std::move(dir)),
        options_(options),
        catalog_(env, dir_),
        metrics_(options.metrics.value_or(obs::MetricsEnabled())),
        now_(options.start_time) {}

  /// The live clock (reads pin their snapshot off this).
  TimePoint NowSnapshot() const { return now(); }

  /// Stamps a concurrent writer: returns the transaction time and advances
  /// the clock atomically, so overlapping writers get distinct stamps.
  TimePoint AcquireTxTime();

  /// Resolves storage_, vacuum_partition_, and (optionally) pool_ from
  /// options > TDB_* env > the directory's `storage` meta file; called by
  /// Open() before anything touches a relation file.
  Status ResolveStorageMode();

  /// The logical clock is persisted alongside the catalog so that a
  /// reopened database resumes *after* every recorded transaction time —
  /// otherwise "now" would rewind and rollback views would hide recent
  /// updates.
  std::string ClockPath() const { return dir_ + "/clock"; }
  void PersistClock() const;
  void RestoreClock();

  Env* env_;
  std::string dir_;
  DatabaseOptions options_;
  Catalog catalog_;
  /// Declared before the registries and journal, which hold raw pointers
  /// into it while metrics are enabled.
  obs::MetricsRegistry metrics_;
  /// Declared before default_session_ (and before journal_, whose hooks
  /// pool write-backs run through) so session pagers — which flush their
  /// pool frames on destruction — die first.
  std::unique_ptr<BufferPool> pool_;
  /// Declared before default_session_ so session pagers (whose destructors
  /// flush through the journal hooks) are destroyed first.
  std::unique_ptr<Journal> journal_;
  /// Resolved storage mode (options > TDB_* env > `storage` meta file >
  /// paper defaults; the meta file wins for on-disk layout on reopen).
  StorageOptions storage_;
  std::string vacuum_partition_ = "single";
  bool plan_cache_enabled_ = false;

  // --- concurrent mode (engaged by the first CreateSession) --------------
  std::atomic<bool> concurrent_{false};
  std::atomic<int> next_session_id_{1};
  LockTable lock_table_;
  /// Serializes writer journal batches (Begin .. CommitGroup); the
  /// commit-mark fsync runs outside it via Journal::WaitDurable.
  std::mutex journal_mu_;
  mutable std::mutex clock_mu_;
  /// Cross-session cache invalidation: a writer bumps its target
  /// relations' versions (and DDL the catalog generation) at commit, and
  /// every session drops handles it discovers stale at statement start.
  std::mutex version_mu_;
  std::map<std::string, uint64_t> rel_versions_;
  uint64_t catalog_gen_ = 0;

  /// Owns the embedded API's registry/relations/ranges.
  std::unique_ptr<Session> default_session_;
  TimePoint now_;  // guarded by clock_mu_
};

}  // namespace tdb

#endif  // CHRONOQUEL_CORE_DATABASE_H_
