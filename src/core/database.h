#ifndef CHRONOQUEL_CORE_DATABASE_H_
#define CHRONOQUEL_CORE_DATABASE_H_

#include <map>
#include <memory>
#include <optional>
#include <string>

#include <vector>

#include "catalog/catalog.h"
#include "core/relation.h"
#include "core/result_set.h"
#include "env/env.h"
#include "exec/join_method.h"
#include "obs/metrics.h"
#include "storage/io_stats.h"
#include "storage/journal.h"
#include "types/timepoint.h"
#include "util/status.h"

namespace tdb {

struct Statement;  // tquel/ast.h
struct ExecEnv;    // exec/exec_env.h

/// 1980-01-01 00:00:00 UTC — the epoch the paper's benchmark databases are
/// initialized around, and the default logical start time.
inline constexpr TimePoint kDefaultStartTime = TimePoint(315532800);

struct DatabaseOptions {
  /// Filesystem backend; null selects the shared Posix environment.  Pass a
  /// MemEnv for hermetic tests and benchmarks.
  Env* env = nullptr;
  /// Initial logical "now".
  TimePoint start_time = kDefaultStartTime;
  /// Seconds the logical clock advances after each mutating statement, so
  /// successive transactions get distinct timestamps.  0 freezes the clock.
  int auto_advance_seconds = 1;
  /// Buffer frames per relation file.  The paper's methodology (and the
  /// default) is 1; `bench/ablation_buffers` sweeps this.
  int buffer_frames = 1;
  /// Crash safety for mutating statements.  kOff (the default, and the
  /// benchmark configuration) writes pages in place with no journal.
  /// kJournal pre-images every page overwrite to a rollback journal so a
  /// process crash leaves each statement atomic; kJournalSync additionally
  /// fsyncs at the commit barriers for power-cut safety.  Recovery runs
  /// automatically in Open() whatever the mode.
  DurabilityMode durability = DurabilityMode::kOff;
  /// Observability: counters, histograms, per-node wall time, and trace
  /// spans.  Unset defers to the TDB_METRICS environment variable (on
  /// unless it is "0").  When resolved off, no instrumentation pointer is
  /// ever wired and the measured page counts / figure stdout are
  /// byte-identical to a run without the obs layer.
  std::optional<bool> metrics;
  /// Join planning mode (see exec/join_method.h).  Unset defers to the
  /// TDB_JOIN_METHOD environment variable; both default to kPaper, whose
  /// plans — and therefore every measured page count — are byte-identical
  /// to the pre-cost-model system.
  std::optional<JoinMethod> join_method;
  /// Morsel-at-a-time execution.  Unset defers to TDB_VECTOR_EXEC (on
  /// unless "0"); off selects the tuple-at-a-time engine.  Identical page
  /// I/O either way.
  std::optional<bool> vector_exec;
  /// Morsel capacity in records.  0 (unset) defers to TDB_MORSEL_CAP,
  /// default 1024, clamped to [1, 65535].
  int morsel_capacity = 0;
  /// Worker threads for morsel-driven parallel pipelines.  0 (unset)
  /// defers to TDB_EXEC_THREADS, default 1 — the paper's single-threaded
  /// measurement discipline, whose IoCounters and figure stdout are
  /// bit-identical to the pre-parallel system.  Clamped to [1, 64].
  int exec_threads = 0;
};

/// The TQuel temporal DBMS facade: a database directory containing a
/// catalog plus one or more relation files, queried and updated through
/// TQuel text.
///
///   auto db = Database::Open("/data/mydb", {}).value();
///   db->Execute("create persistent interval emp (name = c20, sal = i4)");
///   db->Execute("range of e is emp");
///   auto rows = db->Execute("retrieve (e.name) where e.sal > 100");
///
/// The logical clock stands in for wall-clock transaction time so runs are
/// reproducible; use SetNow / AdvanceSeconds to script an evolution.
class Database {
 public:
  static Result<std::unique_ptr<Database>> Open(const std::string& dir,
                                                DatabaseOptions options = {});

  /// Parses and executes a script of one or more statements, returning one
  /// ExecResult per statement in script order.  The first error aborts the
  /// remainder; the returned Status then carries a StatementContext naming
  /// the failing statement (1-based index + source offset).  With
  /// durability on, each statement is atomic: a failure (or crash) rolls
  /// the database back to the previous statement boundary.
  Result<std::vector<ExecResult>> ExecuteScript(const std::string& text);

  /// Like ExecuteScript(), returning only the last statement's result.
  Result<ExecResult> Execute(const std::string& text);

  /// Convenience wrapper asserting the text is a single retrieve.
  Result<ResultSet> Query(const std::string& text);

  /// Plans `text` — a single retrieve, with or without a leading `explain`
  /// — and returns the structured physical plan WITHOUT executing anything.
  /// The plan's runtime stats are all zero; only the pre-rendered node text
  /// remains meaningful once this call returns.
  Result<std::shared_ptr<const PhysicalPlan>> Plan(const std::string& text);

  /// Like Plan(), rendered: the multi-line plan tree `explain` would print.
  Result<std::string> Explain(const std::string& text);

  TimePoint now() const { return now_; }
  void SetNow(TimePoint tp) { now_ = tp; }
  void AdvanceSeconds(int64_t secs) { now_ = now_.AddSeconds(secs); }

  /// Adjusts the per-statement clock advance (0 freezes the clock so a
  /// group of statements shares one transaction timestamp).
  void set_auto_advance_seconds(int secs) {
    options_.auto_advance_seconds = secs;
  }
  int auto_advance_seconds() const { return options_.auto_advance_seconds; }

  Env* env() { return env_; }
  const std::string& dir() const { return dir_; }
  Catalog* catalog() { return &catalog_; }
  IoRegistry* io() { return &registry_; }

  /// The metrics registry, or null when metrics are disabled for this
  /// database — callers branch on null exactly like the storage layer.
  obs::MetricsRegistry* metrics() {
    return metrics_.enabled() ? &metrics_ : nullptr;
  }

  /// Structured dump of every metric (empty when metrics are disabled).
  obs::MetricsSnapshot Snapshot() const { return metrics_.Snapshot(); }

  Result<Relation*> GetRelation(const std::string& name);

  /// Flushes and empties the buffer frame of every open relation file.
  /// Measurement runs call this before each query so the single frame per
  /// relation starts cold, as in the paper's methodology.
  Status DropAllBuffers() {
    for (auto& [_, rel] : relations_) {
      TDB_RETURN_NOT_OK(rel->FlushAndDropBuffers());
    }
    return Status::OK();
  }

  /// The active range declarations (variable -> relation).
  const std::map<std::string, std::string>& ranges() const { return ranges_; }

 private:
  Database(Env* env, std::string dir, DatabaseOptions options)
      : env_(env),
        dir_(std::move(dir)),
        options_(options),
        catalog_(env, dir_),
        metrics_(options.metrics.value_or(obs::MetricsEnabled())),
        now_(options.start_time) {}

  /// The logical clock is persisted alongside the catalog so that a
  /// reopened database resumes *after* every recorded transaction time —
  /// otherwise "now" would rewind and rollback views would hide recent
  /// updates.
  std::string ClockPath() const { return dir_ + "/clock"; }
  void PersistClock() const;
  void RestoreClock();

  /// The executor environment for one statement, with every engine knob
  /// (join method, vectorization, morsel capacity, thread count) resolved
  /// from this database's options and the TDB_* environment.
  ExecEnv MakeExecEnv();

  /// Runs one parsed statement (the per-statement switch).  Journal
  /// bracketing lives in ExecuteScript.
  Result<ExecResult> ExecuteStatement(Statement* stmt);

  /// Commit barrier with durability on: flush every open pager (each
  /// overwrite pre-imaged via the journal hooks), sync data files in
  /// kJournalSync, then write the journal's commit mark.
  Status CommitStatement();

  /// Undoes a failed statement: drops dirty frames unwritten, closes the
  /// open relations, applies the journal's pre-images, and reloads the
  /// catalog from its restored file.
  Status RollbackStatement();

  Env* env_;
  std::string dir_;
  DatabaseOptions options_;
  Catalog catalog_;
  /// Declared before registry_ and journal_, which hold raw pointers into
  /// it while metrics are enabled.
  obs::MetricsRegistry metrics_;
  IoRegistry registry_;
  /// Declared before relations_ so pagers (whose destructors flush through
  /// the journal hooks) are destroyed first.
  std::unique_ptr<Journal> journal_;
  std::map<std::string, std::unique_ptr<Relation>> relations_;
  std::map<std::string, std::string> ranges_;
  TimePoint now_;
};

}  // namespace tdb

#endif  // CHRONOQUEL_CORE_DATABASE_H_
