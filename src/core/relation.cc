#include "core/relation.h"

#include <cstring>

#include "storage/btree_file.h"
#include "util/stringx.h"

namespace tdb {

namespace {

/// Default anchor buckets when the metadata does not size them.
constexpr uint32_t kDefaultAnchorBuckets = 16;

}  // namespace

Result<RecordLayout> LayoutFor(const Schema& schema,
                               const std::string& key_attr) {
  RecordLayout layout;
  layout.record_size = schema.record_size();
  if (!key_attr.empty()) {
    int idx = schema.FindAttr(key_attr);
    if (idx < 0) {
      return Status::Invalid("key attribute '" + key_attr + "' not in schema");
    }
    layout.key_offset = schema.offset(static_cast<size_t>(idx));
    layout.key_type = schema.attr(static_cast<size_t>(idx)).type;
    layout.key_width = schema.attr(static_cast<size_t>(idx)).width;
  }
  return layout;
}

Result<std::unique_ptr<Relation>> Relation::Open(Env* env,
                                                 const std::string& dir,
                                                 const RelationMeta& meta,
                                                 IoRegistry* registry,
                                                 int buffer_frames,
                                                 Journal* journal,
                                                 const StorageOptions& sopts) {
  TDB_ASSIGN_OR_RETURN(RecordLayout layout,
                       LayoutFor(meta.schema, meta.key_attr));
  std::unique_ptr<Relation> rel(new Relation(meta, layout));
  rel->env_ = env;
  rel->dir_ = dir;
  rel->registry_ = registry;
  rel->buffer_frames_ = buffer_frames;
  rel->journal_ = journal;
  rel->sopts_ = sopts;

  IoCounters* primary_counters = registry->ForFile(meta.name);
  std::string primary_path = dir + "/" + meta.DataFileName();
  TDB_ASSIGN_OR_RETURN(
      auto pager,
      Pager::Open(env, primary_path, primary_counters, buffer_frames,
                  journal, sopts));
  switch (meta.org) {
    case Organization::kHeap: {
      TDB_ASSIGN_OR_RETURN(auto file,
                           HeapFile::Open(std::move(pager), layout));
      rel->primary_ = std::move(file);
      break;
    }
    case Organization::kHash: {
      TDB_ASSIGN_OR_RETURN(
          auto file,
          HashFile::Open(std::move(pager), layout, meta.hash_buckets));
      rel->primary_ = std::move(file);
      break;
    }
    case Organization::kIsam: {
      TDB_ASSIGN_OR_RETURN(
          auto file, IsamFile::Open(std::move(pager), layout, meta.isam));
      rel->primary_ = std::move(file);
      break;
    }
    case Organization::kBtree: {
      TDB_ASSIGN_OR_RETURN(auto file,
                           BtreeFile::Open(std::move(pager), layout));
      rel->primary_ = std::move(file);
      break;
    }
  }

  if (meta.two_level) {
    if (!layout.has_key()) {
      return Status::Invalid("a two-level store needs a key attribute");
    }
    rel->history_layout_ = layout;
    rel->history_layout_.record_size =
        static_cast<uint16_t>(layout.record_size + 8);
    std::string hist_path = dir + "/" + meta.HistoryFileName();
    TDB_ASSIGN_OR_RETURN(
        auto hist_pager,
        Pager::Open(env, hist_path, registry->ForFile(meta.name + "#hist"),
                    buffer_frames, journal, sopts));
    TDB_ASSIGN_OR_RETURN(
        rel->history_,
        HeapFile::Open(std::move(hist_pager), rel->history_layout_));
    for (const SegmentMeta& sm : meta.segments) {
      TDB_ASSIGN_OR_RETURN(auto seg_file, rel->OpenSegmentFile(sm));
      rel->segments_.push_back(Segment{sm, std::move(seg_file)});
    }

    rel->anchor_layout_ = RecordLayout();
    rel->anchor_layout_.key_offset = 0;
    rel->anchor_layout_.key_type = layout.key_type;
    rel->anchor_layout_.key_width = layout.key_width;
    rel->anchor_layout_.record_size =
        static_cast<uint16_t>(layout.key_width + 8);
    uint32_t abuckets = meta.history_buckets > 0 ? meta.history_buckets
                                                 : kDefaultAnchorBuckets;
    std::string anc_path = dir + "/" + meta.name + ".anc";
    bool fresh = !env->FileExists(anc_path);
    TDB_ASSIGN_OR_RETURN(
        auto anc_pager,
        Pager::Open(env, anc_path, registry->ForFile(meta.name + "#anc"),
                    buffer_frames, journal, sopts));
    if (fresh || anc_pager->page_count() == 0) {
      TDB_ASSIGN_OR_RETURN(rel->anchors_,
                           HashFile::Create(std::move(anc_pager),
                                            rel->anchor_layout_, abuckets));
    } else {
      TDB_ASSIGN_OR_RETURN(rel->anchors_,
                           HashFile::Open(std::move(anc_pager),
                                          rel->anchor_layout_, abuckets));
    }
  }

  for (const IndexMeta& idx : meta.indexes) {
    int attr_idx = meta.schema.FindAttr(idx.attr);
    if (attr_idx < 0) {
      return Status::Corruption("index '" + idx.name +
                                "' references missing attribute");
    }
    TDB_ASSIGN_OR_RETURN(
        auto index,
        SecondaryIndex::Open(env, dir, idx,
                             meta.schema.attr(static_cast<size_t>(attr_idx)),
                             registry->ForFile(idx.name + "#cur"),
                             registry->ForFile(idx.name + "#hist"),
                             buffer_frames, journal, registry->metrics(),
                             sopts));
    rel->indexes_.push_back(std::move(index));
  }
  return rel;
}

SecondaryIndex* Relation::FindIndex(const std::string& attr) {
  for (auto& idx : indexes_) {
    if (EqualsIgnoreCase(idx->meta().attr, attr)) return idx.get();
  }
  return nullptr;
}

Value Relation::KeyOf(const uint8_t* rec) const { return layout_.KeyOf(rec); }

Value Relation::AttrOf(const uint8_t* rec, int attr_index) const {
  return DecodeAttr(meta_.schema, static_cast<size_t>(attr_index), rec);
}

Status Relation::InsertPrimary(const std::vector<uint8_t>& rec, Tid* tid) {
  return primary_->Insert(rec.data(), rec.size(), tid);
}

Status Relation::OverwritePrimary(const Tid& tid,
                                  const std::vector<uint8_t>& rec) {
  return primary_->UpdateInPlace(tid, rec.data(), rec.size());
}

Status Relation::ErasePrimary(const Tid& tid) { return primary_->Erase(tid); }

Result<std::vector<uint8_t>> Relation::FetchPrimary(const Tid& tid) {
  return primary_->Fetch(tid);
}

Status Relation::AppendHistory(const std::vector<uint8_t>& rec, Tid* tid_out) {
  if (history_ == nullptr) {
    return Status::Invalid("relation '" + meta_.name +
                           "' has no history store");
  }
  Value key = layout_.KeyOf(rec.data());
  TDB_ASSIGN_OR_RETURN(std::optional<HistoryTid> head, AnchorLookup(key));

  std::vector<uint8_t> hrec(history_layout_.record_size, 0);
  std::memcpy(hrec.data(), rec.data(), rec.size());
  uint8_t* bp = hrec.data() + rec.size();
  uint32_t prev_page = kNoPage;
  uint16_t prev_slot = 0;
  uint16_t prev_seg = 0;
  if (head.has_value()) {
    prev_page = head->tid.page;
    prev_slot = head->tid.slot;
    prev_seg = head->seg;
  }
  std::memcpy(bp, &prev_page, 4);
  std::memcpy(bp + 4, &prev_slot, 2);
  std::memcpy(bp + 6, &prev_seg, 2);

  // Clustering targets the active history file; a head that a vacuum moved
  // into a segment no longer pins a page there, so start a fresh one.
  Tid htid;
  if (meta_.clustered_history) {
    if (head.has_value() && head->seg == 0) {
      TDB_RETURN_NOT_OK(history_->InsertAtPage(head->tid.page, hrec.data(),
                                               hrec.size(), &htid));
    } else {
      TDB_RETURN_NOT_OK(
          history_->InsertFreshPage(hrec.data(), hrec.size(), &htid));
    }
  } else {
    TDB_RETURN_NOT_OK(history_->Insert(hrec.data(), hrec.size(), &htid));
  }

  // Upsert the anchor: key -> newest history version (always seg 0: new
  // retirements land in the active history file).
  std::vector<uint8_t> arec(anchor_layout_.record_size, 0);
  std::memcpy(arec.data(), rec.data() + layout_.key_offset,
              layout_.key_width);
  std::memcpy(arec.data() + layout_.key_width, &htid.page, 4);
  std::memcpy(arec.data() + layout_.key_width + 4, &htid.slot, 2);
  if (head.has_value()) {
    // Find and overwrite the existing anchor entry.
    TDB_ASSIGN_OR_RETURN(auto cur, anchors_->ScanKey(key));
    Tid slot;
    bool found = false;
    while (true) {
      TDB_ASSIGN_OR_RETURN(bool have, cur->Next());
      if (!have) break;
      slot = cur->tid();
      found = true;
      break;
    }
    if (!found) return Status::Corruption("anchor vanished during update");
    TDB_RETURN_NOT_OK(anchors_->UpdateInPlace(slot, arec.data(), arec.size()));
  } else {
    TDB_RETURN_NOT_OK(anchors_->Insert(arec.data(), arec.size(), nullptr));
  }
  if (tid_out != nullptr) *tid_out = htid;
  return Status::OK();
}

Result<std::vector<uint8_t>> Relation::FetchHistory(const Tid& tid) {
  if (history_ == nullptr) {
    return Status::Invalid("relation has no history store");
  }
  TDB_ASSIGN_OR_RETURN(auto hrec, history_->Fetch(tid));
  hrec.resize(layout_.record_size);
  return hrec;
}

Result<std::optional<HistoryTid>> Relation::AnchorLookup(const Value& key) {
  if (anchors_ == nullptr) {
    return Status::Invalid("relation has no anchor file");
  }
  TDB_ASSIGN_OR_RETURN(auto cur, anchors_->ScanKey(key));
  TDB_ASSIGN_OR_RETURN(bool have, cur->Next());
  if (!have) return std::optional<HistoryTid>();
  const uint8_t* p = cur->record().data() + anchor_layout_.key_width;
  HistoryTid at;
  std::memcpy(&at.tid.page, p, 4);
  std::memcpy(&at.tid.slot, p + 4, 2);
  std::memcpy(&at.seg, p + 6, 2);
  return std::optional<HistoryTid>(at);
}

HeapFile* Relation::SegmentFile(uint16_t id) {
  for (Segment& seg : segments_) {
    if (seg.meta.id == id) return seg.file.get();
  }
  return nullptr;
}

Result<std::unique_ptr<HeapFile>> Relation::OpenSegmentFile(
    const SegmentMeta& sm) {
  std::string path = dir_ + "/" + meta_.SegmentFileName(sm.id);
  TDB_ASSIGN_OR_RETURN(
      auto pager,
      Pager::Open(env_, path,
                  registry_->ForFile(StrPrintf("%s#seg%u", meta_.name.c_str(),
                                               sm.id)),
                  buffer_frames_, journal_, sopts_));
  return HeapFile::Open(std::move(pager), history_layout_);
}

Result<HeapFile*> Relation::EnsureSegment(int64_t lo, int64_t hi) {
  for (Segment& seg : segments_) {
    if (seg.meta.lo == lo && seg.meta.hi == hi) return seg.file.get();
  }
  SegmentMeta sm;
  sm.id = meta_.NextSegmentId();
  sm.lo = lo;
  sm.hi = hi;
  TDB_ASSIGN_OR_RETURN(auto file, OpenSegmentFile(sm));
  meta_.segments.push_back(sm);
  segments_.push_back(Segment{sm, std::move(file)});
  return segments_.back().file.get();
}

Status Relation::AppendToSegment(uint16_t id, const std::vector<uint8_t>& hrec,
                                 Tid* tid) {
  HeapFile* file = SegmentFile(id);
  if (file == nullptr) {
    return Status::Invalid(StrPrintf("relation '%s' has no segment %u",
                                     meta_.name.c_str(), id));
  }
  return file->Insert(hrec.data(), hrec.size(), tid);
}

Result<std::vector<uint8_t>> Relation::FetchHistoryAt(const HistoryTid& at) {
  if (at.seg == 0) return FetchHistory(at.tid);
  HeapFile* file = SegmentFile(at.seg);
  if (file == nullptr) {
    return Status::Corruption(StrPrintf("history chain points at missing "
                                        "segment %u of '%s'",
                                        at.seg, meta_.name.c_str()));
  }
  if (sopts_.readahead > 0) {
    // Vacuum lays chains out contiguously oldest-first, so the rest of the
    // chain sits on the pages right after this one.
    TDB_RETURN_NOT_OK(file->pager()->Readahead(at.tid.page,
                                               sopts_.readahead,
                                               IoCategory::kData));
  }
  TDB_ASSIGN_OR_RETURN(auto hrec, file->Fetch(at.tid));
  hrec.resize(layout_.record_size);
  return hrec;
}

Result<std::optional<HistoryTid>> Relation::HistoryBackPtr(
    const HistoryTid& at) {
  std::vector<uint8_t> hrec;
  if (at.seg == 0) {
    TDB_ASSIGN_OR_RETURN(hrec, history_->Fetch(at.tid));
  } else {
    HeapFile* file = SegmentFile(at.seg);
    if (file == nullptr) {
      return Status::Corruption(StrPrintf("history chain points at missing "
                                          "segment %u of '%s'",
                                          at.seg, meta_.name.c_str()));
    }
    TDB_ASSIGN_OR_RETURN(hrec, file->Fetch(at.tid));
  }
  const uint8_t* bp = hrec.data() + layout_.record_size;
  HistoryTid prev;
  std::memcpy(&prev.tid.page, bp, 4);
  std::memcpy(&prev.tid.slot, bp + 4, 2);
  std::memcpy(&prev.seg, bp + 6, 2);
  if (prev.tid.page == kNoPage) return std::optional<HistoryTid>();
  return std::optional<HistoryTid>(prev);
}

Status Relation::PatchHistoryBackPtr(const HistoryTid& at,
                                     const std::optional<HistoryTid>& to) {
  HeapFile* file = at.seg == 0 ? history_.get() : SegmentFile(at.seg);
  if (file == nullptr) {
    return Status::Invalid(StrPrintf("no history store for segment %u",
                                     at.seg));
  }
  TDB_ASSIGN_OR_RETURN(auto hrec, file->Fetch(at.tid));
  uint8_t* bp = hrec.data() + layout_.record_size;
  uint32_t page = kNoPage;
  uint16_t slot = 0;
  uint16_t seg = 0;
  if (to.has_value()) {
    page = to->tid.page;
    slot = to->tid.slot;
    seg = to->seg;
  }
  std::memcpy(bp, &page, 4);
  std::memcpy(bp + 4, &slot, 2);
  std::memcpy(bp + 6, &seg, 2);
  return file->UpdateInPlace(at.tid, hrec.data(), hrec.size());
}

Status Relation::UpdateAnchor(const Value& key, const HistoryTid& head) {
  TDB_ASSIGN_OR_RETURN(auto cur, anchors_->ScanKey(key));
  TDB_ASSIGN_OR_RETURN(bool have, cur->Next());
  if (!have) return Status::Corruption("anchor vanished during vacuum");
  std::vector<uint8_t> arec = cur->record();
  uint8_t* p = arec.data() + anchor_layout_.key_width;
  std::memcpy(p, &head.tid.page, 4);
  std::memcpy(p + 4, &head.tid.slot, 2);
  std::memcpy(p + 6, &head.seg, 2);
  return anchors_->UpdateInPlace(cur->tid(), arec.data(), arec.size());
}

Status Relation::IndexInsertCurrent(const std::vector<uint8_t>& rec, Tid tid,
                                    bool in_history_store) {
  for (auto& idx : indexes_) {
    int attr_idx = meta_.schema.FindAttr(idx->meta().attr);
    TDB_RETURN_NOT_OK(
        idx->InsertCurrent(AttrOf(rec.data(), attr_idx), tid,
                           in_history_store));
  }
  return Status::OK();
}

Status Relation::IndexInsertHistory(const std::vector<uint8_t>& rec, Tid tid,
                                    bool in_history_store) {
  for (auto& idx : indexes_) {
    int attr_idx = meta_.schema.FindAttr(idx->meta().attr);
    TDB_RETURN_NOT_OK(
        idx->InsertHistory(AttrOf(rec.data(), attr_idx), tid,
                           in_history_store));
  }
  return Status::OK();
}

Status Relation::IndexMoveToHistory(const std::vector<uint8_t>& rec,
                                    Tid old_tid, Tid new_tid,
                                    bool new_in_history_store) {
  for (auto& idx : indexes_) {
    int attr_idx = meta_.schema.FindAttr(idx->meta().attr);
    TDB_RETURN_NOT_OK(idx->MoveToHistory(AttrOf(rec.data(), attr_idx),
                                         old_tid, new_tid,
                                         new_in_history_store));
  }
  return Status::OK();
}

Status Relation::IndexRemoveCurrent(const std::vector<uint8_t>& rec, Tid tid) {
  for (auto& idx : indexes_) {
    int attr_idx = meta_.schema.FindAttr(idx->meta().attr);
    TDB_RETURN_NOT_OK(idx->RemoveCurrent(AttrOf(rec.data(), attr_idx), tid));
  }
  return Status::OK();
}

}  // namespace tdb
