#include <cstdlib>
#include <string_view>

#include "core/database.h"
#include "exec/join_method.h"
#include "util/stringx.h"

namespace tdb {

namespace {

/// "on unless 0" boolean levers; absent -> unset.
std::optional<bool> BoolFromEnv(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr) return std::nullopt;
  return std::string_view(v) != "0";
}

/// Positive integer levers; absent or unparseable -> 0 (unset).
int IntFromEnv(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr) return 0;
  int64_t parsed = 0;
  if (!ParseInt64(v, &parsed)) return 0;
  if (parsed <= 0) return 0;
  if (parsed > INT32_MAX) parsed = INT32_MAX;
  return static_cast<int>(parsed);
}

}  // namespace

DatabaseOptions DatabaseOptions::FromEnv() {
  DatabaseOptions o;
  o.vector_exec = BoolFromEnv("TDB_VECTOR_EXEC");
  o.morsel_capacity = IntFromEnv("TDB_MORSEL_CAP");
  o.exec_threads = IntFromEnv("TDB_EXEC_THREADS");
  if (const char* v = std::getenv("TDB_JOIN_METHOD")) {
    // Present but unparseable degrades to kPaper, like a set field: the
    // historical lever never failed open, and neither does this one.
    o.join_method = ParseJoinMethod(v).value_or(JoinMethod::kPaper);
  }
  o.compiled_expr = BoolFromEnv("TDB_COMPILED_EXPR");
  o.plan_cache = BoolFromEnv("TDB_PLAN_CACHE");
  o.metrics = BoolFromEnv("TDB_METRICS");
  o.page_size = static_cast<uint32_t>(IntFromEnv("TDB_PAGE_SIZE"));
  o.page_checksum = BoolFromEnv("TDB_PAGE_CHECKSUM");
  o.pool_frames = IntFromEnv("TDB_POOL_FRAMES");
  if (const char* v = std::getenv("TDB_POOL_FILE_CAP")) {
    int64_t parsed = 0;
    if (ParseInt64(v, &parsed) && parsed != 0) {
      o.pool_file_cap = parsed < 0 ? -1 : static_cast<int>(parsed);
    }
  }
  o.history_readahead = IntFromEnv("TDB_READAHEAD");
  if (const char* v = std::getenv("TDB_VACUUM_PARTITION")) {
    o.vacuum_partition = v;
  }
  return o;
}

}  // namespace tdb
