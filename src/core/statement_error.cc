#include "core/statement_error.h"

namespace tdb {

std::string FormatStatementError(const Status& status,
                                 const std::string& script) {
  if (status.ok()) return "OK";
  std::string out = StatusCodeName(status.code());
  if (!status.message().empty()) {
    out += ": ";
    out += status.message();
  }
  const StatementContext* ctx = status.statement_context();
  if (ctx == nullptr) return out;
  out += " (statement " + std::to_string(ctx->statement_index) + ")";
  if (ctx->source_offset >= script.size()) return out;
  // The line containing the statement's first token, caret underneath.
  size_t line_start = script.rfind('\n', ctx->source_offset);
  line_start = line_start == std::string::npos ? 0 : line_start + 1;
  size_t line_end = script.find('\n', ctx->source_offset);
  if (line_end == std::string::npos) line_end = script.size();
  out += "\n  " + script.substr(line_start, line_end - line_start);
  out += "\n  " + std::string(ctx->source_offset - line_start, ' ') + "^";
  return out;
}

}  // namespace tdb
