#ifndef CHRONOQUEL_CORE_STATEMENT_ERROR_H_
#define CHRONOQUEL_CORE_STATEMENT_ERROR_H_

#include <string>

#include "util/status.h"

namespace tdb {

/// Renders a statement error against the script it came from: the status
/// text plus, when a StatementContext is attached, the offending line with
/// a caret under the statement's first token.
///
///   Bind error: relation 'emp' does not exist (statement 2)
///     range of e is emp
///     ^
///
/// This is THE user-facing rendering of an execution error: the shell
/// prints it directly, and a wire client prints it after re-materializing
/// the same Status (code, message, context) from a kError frame — so
/// embedded and remote users see identical diagnostics.
std::string FormatStatementError(const Status& status,
                                 const std::string& script);

}  // namespace tdb

#endif  // CHRONOQUEL_CORE_STATEMENT_ERROR_H_
