#ifndef CHRONOQUEL_CORE_RESULT_SET_H_
#define CHRONOQUEL_CORE_RESULT_SET_H_

#include <memory>
#include <string>
#include <vector>

#include "types/schema.h"

namespace tdb {

struct PhysicalPlan;

/// Rows returned by a retrieve statement.  Historical / temporal results
/// carry the computed valid interval as trailing valid_from / valid_to
/// columns.
struct ResultSet {
  std::vector<std::string> columns;
  std::vector<Row> rows;

  size_t num_rows() const { return rows.size(); }

  /// Renders an aligned table; times formatted at `res`.
  std::string ToString(TimeResolution res = TimeResolution::kSecond) const;
};

/// Outcome of executing one statement.
struct ExecResult {
  ResultSet result;      // retrieve only
  int64_t affected = 0;  // rows appended / deleted / replaced / copied
  std::string message;   // human-oriented note ("created relation r", ...)
  /// retrieve / explain only: the physical plan.  After a retrieve it is
  /// annotated with per-node runtime stats (`PhysicalPlan::Describe(true)`);
  /// after an explain the stats are all zero — nothing ran.
  std::shared_ptr<const PhysicalPlan> plan;
};

}  // namespace tdb

#endif  // CHRONOQUEL_CORE_RESULT_SET_H_
