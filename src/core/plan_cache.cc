#include "core/plan_cache.h"

#include <functional>

namespace tdb {

PlanCache::PlanCache(size_t capacity) {
  shard_capacity_ = capacity / kShards;
  if (shard_capacity_ == 0) shard_capacity_ = 1;
}

PlanCache::Shard* PlanCache::ShardFor(const std::string& key) {
  return &shards_[std::hash<std::string>{}(key) % kShards];
}

std::shared_ptr<const CachedPlan> PlanCache::Lookup(const std::string& key) {
  Shard* shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard->mu);
  auto it = shard->index.find(key);
  if (it == shard->index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  shard->lru.splice(shard->lru.begin(), shard->lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->second;
}

void PlanCache::Insert(const std::string& key,
                       std::shared_ptr<const CachedPlan> entry) {
  Shard* shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard->mu);
  auto it = shard->index.find(key);
  if (it != shard->index.end()) {
    // A concurrent builder won the race; keep the newer plan and refresh.
    it->second->second = std::move(entry);
    shard->lru.splice(shard->lru.begin(), shard->lru, it->second);
    return;
  }
  shard->lru.emplace_front(key, std::move(entry));
  shard->index[key] = shard->lru.begin();
  while (shard->lru.size() > shard_capacity_) {
    shard->index.erase(shard->lru.back().first);
    shard->lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void PlanCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.lru.clear();
    shard.index.clear();
  }
}

size_t PlanCache::size() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.lru.size();
  }
  return n;
}

PlanCache& GlobalPlanCache() {
  static PlanCache* cache = new PlanCache();
  return *cache;
}

}  // namespace tdb
