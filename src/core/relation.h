#ifndef CHRONOQUEL_CORE_RELATION_H_
#define CHRONOQUEL_CORE_RELATION_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "env/env.h"
#include "index/secondary_index.h"
#include "storage/hash_file.h"
#include "storage/heap_file.h"
#include "storage/io_stats.h"
#include "storage/isam_file.h"
#include "storage/pager.h"
#include "storage/storage_file.h"
#include "types/schema.h"

namespace tdb {

/// Address of one history version across the active history file and the
/// vacuumed segment files.  `seg` 0 is the active history store (the only
/// store before any vacuum, so plain Tids remain valid there); `seg` k > 0
/// is the segment with id k.  Back pointers and anchor entries carry the
/// segment id in the two bytes that were zero padding before segments
/// existed, so pre-vacuum files parse unchanged.
struct HistoryTid {
  Tid tid;
  uint16_t seg = 0;

  bool operator==(const HistoryTid& o) const {
    return tid == o.tid && seg == o.seg;
  }
};

/// A runtime handle to one relation: its primary storage file, its
/// (optional) two-level-store history pieces, and its secondary indexes.
///
/// Conventional organization: every version lives in `primary()` — the
/// prototype the paper benchmarks.
///
/// Two-level store (Section 6): `primary()` keeps only current versions;
/// retired versions are appended to the history heap, linked newest-first
/// through per-record back pointers, with a per-key *anchor* hash file
/// mapping key -> newest history version so a version scan can reach the
/// chain without scanning the store.  In clustered mode history versions of
/// one tuple share per-tuple pages; in simple mode they are appended
/// wherever the tail is, so a chain of n versions costs ~n page reads —
/// exactly the "Simple" vs "Clustered" columns of Figure 10.
class Relation {
 public:
  /// Opens every file of the relation.  Counters are obtained from
  /// `registry` (one per physical file, all summed by measurements).
  /// `journal` (nullable) is handed to every pager so in-place page writes
  /// are pre-imaged when durability is on.
  static Result<std::unique_ptr<Relation>> Open(Env* env,
                                                const std::string& dir,
                                                const RelationMeta& meta,
                                                IoRegistry* registry,
                                                int buffer_frames = 1,
                                                Journal* journal = nullptr,
                                                const StorageOptions& sopts =
                                                    StorageOptions{});

  const RelationMeta& meta() const { return meta_; }
  const Schema& schema() const { return meta_.schema; }
  StorageFile* primary() { return primary_.get(); }
  HeapFile* history() { return history_.get(); }
  HashFile* anchors() { return anchors_.get(); }
  const std::vector<std::unique_ptr<SecondaryIndex>>& indexes() const {
    return indexes_;
  }
  SecondaryIndex* FindIndex(const std::string& attr);

  bool two_level() const { return meta_.two_level; }

  /// Value of the organization key attribute of a stored record.
  Value KeyOf(const uint8_t* rec) const;
  /// Value of attribute `attr_index` of a stored record.
  Value AttrOf(const uint8_t* rec, int attr_index) const;

  // --- storage primitives (index maintenance is the DML layer's job) ---

  Status InsertPrimary(const std::vector<uint8_t>& rec, Tid* tid);
  Status OverwritePrimary(const Tid& tid, const std::vector<uint8_t>& rec);
  Status ErasePrimary(const Tid& tid);
  Result<std::vector<uint8_t>> FetchPrimary(const Tid& tid);

  /// Appends a retired version to the history store, linking it in front of
  /// the key's existing chain and updating the anchor.  Only valid for
  /// two-level relations.
  Status AppendHistory(const std::vector<uint8_t>& rec, Tid* tid);

  /// Reads a history version (without its back pointer).
  Result<std::vector<uint8_t>> FetchHistory(const Tid& tid);

  /// Newest history version for `key`, if any (reads the anchor file).
  Result<std::optional<HistoryTid>> AnchorLookup(const Value& key);

  /// Back pointer of the history version at `at` (nullopt at chain end).
  Result<std::optional<HistoryTid>> HistoryBackPtr(const HistoryTid& at);

  /// Reads a history version from the active history file or a segment
  /// (without its back pointer).  Segment reads trigger readahead of the
  /// following pages when the readahead lever is on (vacuum writes chains
  /// contiguously, so sequential prefetch covers the rest of the chain).
  Result<std::vector<uint8_t>> FetchHistoryAt(const HistoryTid& at);

  // --- vacuum primitives (driven by DdlExecutor::Vacuum) ---

  /// One vacuumed history segment: catalog bounds plus the open heap.
  struct Segment {
    SegmentMeta meta;
    std::unique_ptr<HeapFile> file;
  };

  const std::vector<Segment>& segments() const { return segments_; }
  HeapFile* SegmentFile(uint16_t id);

  /// Opens (creating if needed) the segment covering stamps [lo, hi),
  /// registering it in this relation's meta().segments.  The caller
  /// persists the updated meta through the catalog.
  Result<HeapFile*> EnsureSegment(int64_t lo, int64_t hi);

  /// Appends a raw history record (record + back pointer) to segment `id`.
  Status AppendToSegment(uint16_t id, const std::vector<uint8_t>& hrec,
                         Tid* tid);

  /// Rewrites the back pointer of the history version at `at` to `to`.
  Status PatchHistoryBackPtr(const HistoryTid& at,
                             const std::optional<HistoryTid>& to);

  /// Repoints the anchor of `key` at a migrated chain head.
  Status UpdateAnchor(const Value& key, const HistoryTid& head);

  /// Erases a migrated record from the active history file.
  Status EraseHistory(const Tid& tid) { return history_->Erase(tid); }

  /// Record layout of the history store (record + 8-byte back pointer).
  const RecordLayout& history_layout() const { return history_layout_; }

  // --- index maintenance helpers (driven by the DML executor) ---

  /// Adds current-index entries for a freshly inserted version.
  Status IndexInsertCurrent(const std::vector<uint8_t>& rec, Tid tid,
                            bool in_history_store);
  /// Adds history entries (2-level: history file; 1-level: single file).
  Status IndexInsertHistory(const std::vector<uint8_t>& rec, Tid tid,
                            bool in_history_store);
  /// Retires entries for a version that stopped being current (and possibly
  /// moved to `new_tid` in the history store).
  Status IndexMoveToHistory(const std::vector<uint8_t>& rec, Tid old_tid,
                            Tid new_tid, bool new_in_history_store);
  /// Drops current entries for a physically erased version.
  Status IndexRemoveCurrent(const std::vector<uint8_t>& rec, Tid tid);

  /// Record layout of the primary file.
  const RecordLayout& layout() const { return layout_; }

  /// Flushes and empties every buffer frame of the relation (primary,
  /// history, segments, anchors, indexes) so subsequent page reads are all
  /// counted.
  Status FlushAndDropBuffers() {
    TDB_RETURN_NOT_OK(primary_->pager()->FlushAndDrop());
    if (history_ != nullptr) {
      TDB_RETURN_NOT_OK(history_->pager()->FlushAndDrop());
    }
    for (auto& seg : segments_) {
      TDB_RETURN_NOT_OK(seg.file->pager()->FlushAndDrop());
    }
    if (anchors_ != nullptr) {
      TDB_RETURN_NOT_OK(anchors_->pager()->FlushAndDrop());
    }
    for (auto& idx : indexes_) TDB_RETURN_NOT_OK(idx->FlushAndDrop());
    return Status::OK();
  }

  /// Writes every dirty buffer frame back (frames stay resident).  The
  /// commit protocol calls this so a statement's effects are fully on disk
  /// before the journal's commit mark is written.
  Status FlushBuffers() {
    TDB_RETURN_NOT_OK(primary_->pager()->Flush());
    if (history_ != nullptr) TDB_RETURN_NOT_OK(history_->pager()->Flush());
    for (auto& seg : segments_) TDB_RETURN_NOT_OK(seg.file->pager()->Flush());
    if (anchors_ != nullptr) TDB_RETURN_NOT_OK(anchors_->pager()->Flush());
    for (auto& idx : indexes_) TDB_RETURN_NOT_OK(idx->Flush());
    return Status::OK();
  }

  /// Fsyncs every file of the relation (kJournalSync commit protocol).
  Status SyncFiles() {
    TDB_RETURN_NOT_OK(primary_->pager()->Sync());
    if (history_ != nullptr) TDB_RETURN_NOT_OK(history_->pager()->Sync());
    for (auto& seg : segments_) TDB_RETURN_NOT_OK(seg.file->pager()->Sync());
    if (anchors_ != nullptr) TDB_RETURN_NOT_OK(anchors_->pager()->Sync());
    for (auto& idx : indexes_) TDB_RETURN_NOT_OK(idx->Sync());
    return Status::OK();
  }

  /// Empties every buffer frame WITHOUT writing dirty ones back.  Rollback
  /// calls this so aborted in-memory page edits never reach the restored
  /// file image.
  void DiscardBuffers() {
    primary_->pager()->DiscardAll();
    if (history_ != nullptr) history_->pager()->DiscardAll();
    for (auto& seg : segments_) seg.file->pager()->DiscardAll();
    if (anchors_ != nullptr) anchors_->pager()->DiscardAll();
    for (auto& idx : indexes_) idx->Discard();
  }

 private:
  Relation(RelationMeta meta, RecordLayout layout)
      : meta_(std::move(meta)), layout_(layout) {}

  /// Opens one history segment heap (counters under "<name>#seg<id>").
  Result<std::unique_ptr<HeapFile>> OpenSegmentFile(const SegmentMeta& sm);

  RelationMeta meta_;
  RecordLayout layout_;
  std::unique_ptr<StorageFile> primary_;
  std::unique_ptr<HeapFile> history_;
  std::unique_ptr<HashFile> anchors_;
  RecordLayout history_layout_;  // record + 8-byte back pointer
  RecordLayout anchor_layout_;   // key + tid + seg
  std::vector<Segment> segments_;
  std::vector<std::unique_ptr<SecondaryIndex>> indexes_;

  // Open() arguments, kept so EnsureSegment can open new files with the
  // same counters/journal/storage configuration.
  Env* env_ = nullptr;
  std::string dir_;
  IoRegistry* registry_ = nullptr;
  int buffer_frames_ = 1;
  Journal* journal_ = nullptr;
  StorageOptions sopts_;
};

/// Builds the RecordLayout of a relation's primary file from its schema and
/// key attribute (empty key_attr -> keyless layout).
Result<RecordLayout> LayoutFor(const Schema& schema,
                               const std::string& key_attr);

}  // namespace tdb

#endif  // CHRONOQUEL_CORE_RELATION_H_
