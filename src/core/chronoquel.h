#ifndef CHRONOQUEL_CORE_CHRONOQUEL_H_
#define CHRONOQUEL_CORE_CHRONOQUEL_H_

/// Umbrella header: the public face of ChronoQuel.  Applications include
/// this one header and program against
///
///   * Database / DatabaseOptions  (core/database.h)  — open a database
///     directory, pick an Env, buffer frames, and a DurabilityMode;
///   * Session / SessionOptions    (core/session.h)   — one client's
///     connection: Database::CreateSession hands out sessions that may
///     execute concurrently from different threads, each with its own
///     range declarations, exec options, and pinned as-of timestamp;
///   * Database::ExecuteScript / Execute / Query / Plan / Explain — run
///     TQuel text and get ExecResult / ResultSet values back;
///   * Status / Result<T>          (util/status.h)    — every fallible call
///     returns one of these; script errors carry a StatementContext naming
///     the failing statement;
///   * Env / MemEnv                (env/env.h)        — the filesystem
///     abstraction, replaceable for hermetic tests;
///   * DurabilityMode              (storage/journal.h) — off / journal /
///     journal+sync crash safety;
///   * TimePoint / Interval        (types/timepoint.h) — the temporal
///     values TQuel queries produce and consume.
///
/// Everything else under src/ is implementation detail and may change
/// between versions.
///
///   #include "core/chronoquel.h"
///
///   auto db = tdb::Database::Open("/data/mydb", {}).value();
///   auto results = db->ExecuteScript(R"(
///     create persistent interval emp (name = c20, sal = i4);
///     range of e is emp;
///     append to emp (name = "ada", sal = 120);
///     retrieve (e.name) where e.sal > 100
///   )");

#include "core/database.h"
#include "core/result_set.h"
#include "core/session.h"
#include "env/env.h"
#include "storage/journal.h"
#include "types/timepoint.h"
#include "util/status.h"

#endif  // CHRONOQUEL_CORE_CHRONOQUEL_H_
