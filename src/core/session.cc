#include "core/session.h"

#include <chrono>
#include <set>
#include <utility>

#include "core/database.h"
#include "exec/compiled_expr.h"
#include "exec/ddl_executor.h"
#include "exec/dml_executor.h"
#include "exec/exec_env.h"
#include "exec/morsel.h"
#include "exec/plan.h"
#include "exec/planner.h"
#include "exec/query_executor.h"
#include "exec/worker_pool.h"
#include "tquel/ast.h"
#include "tquel/binder.h"
#include "tquel/parser.h"
#include "util/stringx.h"

namespace tdb {

namespace {

/// What one statement needs from the lock table, derived from its AST
/// before execution (so locks are held before any page is touched).
struct LockPlan {
  StatementLocks::DdlMode ddl = StatementLocks::DdlMode::kShared;
  /// (relation, exclusive?) pairs; shared entries cover every relation a
  /// range variable can reach, exclusive ones the statement's write target.
  std::vector<std::pair<std::string, bool>> rels;
  /// Writes database files, so it needs a journal batch and a post-commit
  /// version bump for other sessions.
  bool writes = false;
  /// DML: stamps transaction time and advances the logical clock.
  bool data_mutating = false;
};

/// Collects the tuple-variable names a statement's clauses reference, so
/// the lock plan can cover exactly the relations the statement can touch.
/// A session may hold many declared ranges; a statement that mentions one
/// of them must not contend with writers of the others.
struct VarCollector {
  std::set<std::string> vars;  // lower-cased

  void Scalar(const Expr* e) {
    if (e == nullptr) return;
    if (e->kind == Expr::Kind::kColumn) vars.insert(ToLower(e->var));
    Scalar(e->left.get());
    Scalar(e->right.get());
    Scalar(e->agg_arg.get());
    Scalar(e->agg_by.get());
    Scalar(e->agg_where.get());
  }
  void Temporal(const TemporalExpr* t) {
    if (t == nullptr) return;
    if (t->kind == TemporalExpr::Kind::kVar) vars.insert(ToLower(t->var));
    Temporal(t->left.get());
    Temporal(t->right.get());
  }
  void Pred(const TemporalPred* p) {
    if (p == nullptr) return;
    Temporal(p->lexpr.get());
    Temporal(p->rexpr.get());
    Pred(p->left.get());
    Pred(p->right.get());
  }
  void Valid(const std::optional<ValidClause>& v) {
    if (!v.has_value()) return;
    Temporal(v->from.get());
    Temporal(v->to.get());
  }
  void AsOf(const std::optional<AsOfClause>& a) {
    if (!a.has_value()) return;
    Temporal(a->at.get());
    Temporal(a->through.get());
  }
  void Targets(const std::vector<TargetItem>& targets) {
    for (const TargetItem& t : targets) Scalar(t.expr.get());
  }
};

LockPlan ClassifyStatement(const Statement* stmt,
                           const std::map<std::string, std::string>& ranges) {
  LockPlan lp;
  // Precise read set: only the relations whose range variables the
  // statement actually references.  Shared locks on every declared range
  // would make any two sessions' writes conflict as soon as each has a
  // range over the other's relation, serializing workloads that never
  // touch the same data.
  auto read_referenced = [&](const VarCollector& vc) {
    for (const std::string& var : vc.vars) {
      auto it = ranges.find(var);
      if (it != ranges.end()) lp.rels.emplace_back(it->second, false);
    }
  };
  switch (stmt->kind) {
    case Statement::Kind::kRange:
    case Statement::Kind::kHelp:
      break;  // catalog reads only; the shared DDL latch covers them
    case Statement::Kind::kRetrieve: {
      auto* r = static_cast<const RetrieveStmt*>(stmt);
      VarCollector vc;
      vc.Targets(r->targets);
      vc.Scalar(r->where.get());
      vc.Pred(r->when.get());
      vc.Valid(r->valid);
      vc.AsOf(r->as_of);
      read_referenced(vc);
      if (!r->into.empty()) {
        // `retrieve into` creates a relation: catalog shape changes.
        lp.ddl = StatementLocks::DdlMode::kExclusive;
        lp.writes = true;
      }
      break;
    }
    case Statement::Kind::kExplain: {
      // analyze executes; plain planning still reads
      auto* e = static_cast<const ExplainStmt*>(stmt);
      const RetrieveStmt* r = e->query.get();
      VarCollector vc;
      vc.Targets(r->targets);
      vc.Scalar(r->where.get());
      vc.Pred(r->when.get());
      vc.Valid(r->valid);
      vc.AsOf(r->as_of);
      read_referenced(vc);
      break;
    }
    case Statement::Kind::kAppend: {
      auto* a = static_cast<const AppendStmt*>(stmt);
      VarCollector vc;
      vc.Targets(a->targets);
      vc.Scalar(a->where.get());
      vc.Pred(a->when.get());
      vc.Valid(a->valid);
      read_referenced(vc);
      lp.rels.emplace_back(a->relation, true);
      lp.writes = lp.data_mutating = true;
      break;
    }
    case Statement::Kind::kDelete: {
      auto* d = static_cast<const DeleteStmt*>(stmt);
      VarCollector vc;
      vc.Scalar(d->where.get());
      vc.Pred(d->when.get());
      vc.Valid(d->valid);
      read_referenced(vc);
      auto it = ranges.find(ToLower(d->var));
      if (it != ranges.end()) lp.rels.emplace_back(it->second, true);
      lp.writes = lp.data_mutating = true;
      break;
    }
    case Statement::Kind::kReplace: {
      auto* r = static_cast<const ReplaceStmt*>(stmt);
      VarCollector vc;
      vc.Targets(r->targets);
      vc.Scalar(r->where.get());
      vc.Pred(r->when.get());
      vc.Valid(r->valid);
      read_referenced(vc);
      auto it = ranges.find(ToLower(r->var));
      if (it != ranges.end()) lp.rels.emplace_back(it->second, true);
      lp.writes = lp.data_mutating = true;
      break;
    }
    case Statement::Kind::kCopy: {
      auto* c = static_cast<const CopyStmt*>(stmt);
      lp.rels.emplace_back(c->relation, c->from);
      lp.writes = lp.data_mutating = c->from;
      break;
    }
    case Statement::Kind::kCreate:
    case Statement::Kind::kDestroy:
    case Statement::Kind::kModify:
    case Statement::Kind::kIndex:
    // Vacuum restructures a relation's history storage (like modify), so
    // it runs DDL-exclusive even though the logical contents don't change.
    case Statement::Kind::kVacuum:
      lp.ddl = StatementLocks::DdlMode::kExclusive;
      lp.writes = true;
      break;
  }
  return lp;
}

}  // namespace

Session::Session(Database* db, int id, SessionOptions options)
    : db_(db), id_(id), options_(std::move(options)) {
  // The default session (id 0) keeps the legacy scratch names
  // ("__temp0.dat") so embedded page accounting stays byte-identical.
  if (id_ > 0) temp_tag_ = StrPrintf("s%d_", id_);
  if (obs::MetricsRegistry* m = db_->metrics()) registry_.set_metrics(m);
}

Session::~Session() = default;

ExecEnv Session::MakeExecEnv(TimePoint now) {
  const DatabaseOptions& dbo = db_->options_;
  auto join = options_.join_method.has_value() ? options_.join_method
                                               : dbo.join_method;
  ExecEnv exec{db_->env_, db_->dir_,  &db_->catalog_,
               &registry_, &relations_, now,
               dbo.buffer_frames, db_->journal_.get(),
               EffectiveJoinMethod(join)};
  exec.vector_exec = ResolveVectorExec(
      options_.vector_exec.has_value() ? options_.vector_exec
                                       : dbo.vector_exec);
  exec.morsel_cap = ResolveMorselCapacity(options_.morsel_capacity > 0
                                              ? options_.morsel_capacity
                                              : dbo.morsel_capacity);
  exec.exec_threads = ResolveExecThreads(
      options_.exec_threads > 0 ? options_.exec_threads : dbo.exec_threads);
  exec.temp_tag = temp_tag_;
  exec.storage = db_->storage_;
  exec.vacuum_partition = db_->vacuum_partition_;
  return exec;
}

Status Session::DropAllBuffers() {
  for (auto& [_, rel] : relations_) {
    TDB_RETURN_NOT_OK(rel->FlushAndDropBuffers());
  }
  return Status::OK();
}

Result<std::vector<ExecResult>> Session::ExecuteScript(
    const std::string& text) {
  const bool concurrent = db_->concurrent_.load(std::memory_order_acquire);
  if (!concurrent) {
    // One-writer-per-Env rule (see IoRegistry): an embedded Database, its
    // registry, and its logical clock belong to a single thread.
    registry_.CheckOwnerThread();
  }
  TDB_ASSIGN_OR_RETURN(auto stmts, Parser::ParseScript(text));
  if (stmts.empty()) return Status::ParseError("empty statement");

  Journal* journal = db_->journal_.get();
  std::vector<ExecResult> results;
  results.reserve(stmts.size());
  for (size_t i = 0; i < stmts.size(); ++i) {
    Statement* stmt = stmts[i].get();
    const StatementContext ctx{static_cast<int>(i) + 1, stmt->source_offset};
    if (!concurrent && journal != nullptr) {
      Status begin = journal->Begin();
      if (!begin.ok()) return begin.WithStatementContext(ctx);
    }
    Result<ExecResult> result = ExecResult{};
    if (obs::MetricsRegistry* m = db_->metrics()) {
      obs::TraceSpan span(m, "db.statement");
      auto start = std::chrono::steady_clock::now();
      result = concurrent ? ExecuteStatementConcurrent(stmt)
                          : ExecuteStatementEmbedded(stmt);
      m->counter("db.statements")->Increment();
      m->histogram("db.statement_nanos")
          ->Record(static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - start)
                  .count()));
    } else {
      result = concurrent ? ExecuteStatementConcurrent(stmt)
                          : ExecuteStatementEmbedded(stmt);
    }
    if (!concurrent && journal != nullptr) {
      if (result.ok()) {
        Status commit = CommitStatementEmbedded();
        if (!commit.ok()) result = commit;
      }
      if (!result.ok()) {
        Status rolled_back = RollbackStatementEmbedded();
        if (!rolled_back.ok()) return rolled_back.WithStatementContext(ctx);
      }
    }
    if (!result.ok()) return result.status().WithStatementContext(ctx);
    results.push_back(std::move(*result));
  }
  return results;
}

Result<ExecResult> Session::Execute(const std::string& text) {
  TDB_ASSIGN_OR_RETURN(auto results, ExecuteScript(text));
  return std::move(results.back());
}

Result<ResultSet> Session::Query(const std::string& text) {
  TDB_ASSIGN_OR_RETURN(ExecResult r, Execute(text));
  return r.result;
}

Result<ExecResult> Session::RunStatement(Statement* stmt, ExecEnv& exec,
                                         bool* data_mutating) {
  Binder binder(&db_->catalog_, &ranges_);
  ExecResult last;
  switch (stmt->kind) {
    case Statement::Kind::kRange: {
      auto* range = static_cast<RangeStmt*>(stmt);
      if (db_->catalog_.Find(range->relation) == nullptr) {
        return Status::BindError("relation '" + range->relation +
                                 "' does not exist");
      }
      ranges_[ToLower(range->var)] = range->relation;
      last = ExecResult{};
      last.message = "range of " + range->var + " is " + range->relation;
      break;
    }
    case Statement::Kind::kRetrieve: {
      auto* retrieve = static_cast<RetrieveStmt*>(stmt);
      TDB_ASSIGN_OR_RETURN(BoundStatement bound,
                           binder.BindRetrieve(retrieve));
      QueryExecutor qexec(exec);
      TDB_ASSIGN_OR_RETURN(last, qexec.Retrieve(retrieve, bound));
      break;
    }
    case Statement::Kind::kAppend: {
      auto* append = static_cast<AppendStmt*>(stmt);
      TDB_ASSIGN_OR_RETURN(BoundStatement bound, binder.BindAppend(append));
      DmlExecutor dml(exec);
      TDB_ASSIGN_OR_RETURN(last, dml.Append(append, bound));
      *data_mutating = true;
      break;
    }
    case Statement::Kind::kDelete: {
      auto* del = static_cast<DeleteStmt*>(stmt);
      TDB_ASSIGN_OR_RETURN(BoundStatement bound, binder.BindDelete(del));
      DmlExecutor dml(exec);
      TDB_ASSIGN_OR_RETURN(last, dml.Delete(del, bound));
      *data_mutating = true;
      break;
    }
    case Statement::Kind::kReplace: {
      auto* replace = static_cast<ReplaceStmt*>(stmt);
      TDB_ASSIGN_OR_RETURN(BoundStatement bound,
                           binder.BindReplace(replace));
      DmlExecutor dml(exec);
      TDB_ASSIGN_OR_RETURN(last, dml.Replace(replace, bound));
      *data_mutating = true;
      break;
    }
    case Statement::Kind::kCreate: {
      DdlExecutor ddl(exec);
      TDB_ASSIGN_OR_RETURN(last,
                           ddl.Create(*static_cast<CreateStmt*>(stmt)));
      break;
    }
    case Statement::Kind::kDestroy: {
      DdlExecutor ddl(exec);
      TDB_ASSIGN_OR_RETURN(
          last, ddl.Destroy(*static_cast<DestroyStmt*>(stmt)));
      break;
    }
    case Statement::Kind::kModify: {
      DdlExecutor ddl(exec);
      TDB_ASSIGN_OR_RETURN(last,
                           ddl.Modify(*static_cast<ModifyStmt*>(stmt)));
      break;
    }
    case Statement::Kind::kVacuum: {
      DdlExecutor ddl(exec);
      TDB_ASSIGN_OR_RETURN(last,
                           ddl.Vacuum(*static_cast<VacuumStmt*>(stmt)));
      break;
    }
    case Statement::Kind::kIndex: {
      DdlExecutor ddl(exec);
      TDB_ASSIGN_OR_RETURN(last,
                           ddl.Index(*static_cast<IndexStmt*>(stmt)));
      break;
    }
    case Statement::Kind::kHelp: {
      DdlExecutor ddl(exec);
      TDB_ASSIGN_OR_RETURN(last,
                           ddl.Help(*static_cast<HelpStmt*>(stmt)));
      break;
    }
    case Statement::Kind::kCopy: {
      auto* copy = static_cast<CopyStmt*>(stmt);
      DdlExecutor ddl(exec);
      TDB_ASSIGN_OR_RETURN(last, ddl.Copy(*copy));
      *data_mutating = copy->from;
      break;
    }
    case Statement::Kind::kExplain: {
      // Plain explain plans the wrapped retrieve without executing it;
      // `explain analyze` runs it and annotates each node with its runtime
      // stats and wall time.  Either way the tree comes back as rows, one
      // line per node, and the query's own result rows are discarded.
      auto* explain = static_cast<ExplainStmt*>(stmt);
      TDB_ASSIGN_OR_RETURN(BoundStatement bound,
                           binder.BindRetrieve(explain->query.get()));
      std::shared_ptr<PhysicalPlan> plan;
      if (explain->analyze) {
        QueryExecutor qexec(exec);
        TDB_ASSIGN_OR_RETURN(ExecResult run,
                             qexec.Retrieve(explain->query.get(), bound));
        plan = std::const_pointer_cast<PhysicalPlan>(run.plan);
      } else {
        TDB_ASSIGN_OR_RETURN(plan, BuildPlan(*explain->query, bound, exec));
      }
      last = ExecResult{};
      last.result.columns.push_back("query plan");
      const std::string tree = explain->analyze
                                   ? plan->Describe(/*with_stats=*/true,
                                                    /*with_timing=*/true)
                                   : plan->Describe();
      for (const std::string& line : Split(tree, '\n')) {
        if (line.empty()) continue;
        Row row;
        row.push_back(Value::Char(line));
        last.result.rows.push_back(std::move(row));
      }
      last.message = "plan: " + plan->Summary();
      last.plan = std::move(plan);
      break;
    }
  }
  return last;
}

Result<ExecResult> Session::ExecuteStatementEmbedded(Statement* stmt) {
  ExecEnv exec = MakeExecEnv(options_.as_of.value_or(db_->now()));
  ScopedCompiledExprChoice compiled(options_.compiled_expr.has_value()
                                        ? options_.compiled_expr
                                        : db_->options_.compiled_expr);
  bool data_mutating = false;
  // A pinned as-of must never stamp new versions into the past: mutating
  // statements re-resolve against the live clock.
  if (options_.as_of.has_value()) {
    LockPlan lp = ClassifyStatement(stmt, ranges_);
    if (lp.data_mutating) exec.now = db_->now();
  }
  TDB_ASSIGN_OR_RETURN(ExecResult last,
                       RunStatement(stmt, exec, &data_mutating));
  if (data_mutating) {
    db_->PersistClock();
    if (db_->options_.auto_advance_seconds > 0) {
      db_->AdvanceSeconds(db_->options_.auto_advance_seconds);
    }
  }
  return last;
}

Status Session::CommitStatementEmbedded() {
  // Write back every dirty frame; each in-place overwrite first pre-images
  // the page through the journal hooks.
  for (auto& [_, rel] : relations_) {
    TDB_RETURN_NOT_OK(rel->FlushBuffers());
  }
  if (db_->journal_->mode() == DurabilityMode::kJournalSync) {
    for (auto& [_, rel] : relations_) {
      TDB_RETURN_NOT_OK(rel->SyncFiles());
    }
  }
  return db_->journal_->Commit();
}

Status Session::RollbackStatementEmbedded() {
  // Dirty frames hold aborted content; drop them unwritten so destructor
  // flushes cannot leak them to disk, then close the handles (the files
  // are about to change underneath them).
  for (auto& [_, rel] : relations_) rel->DiscardBuffers();
  relations_.clear();
  TDB_RETURN_NOT_OK(db_->journal_->Rollback());
  // The journal restored catalog.meta on disk; re-read it so the
  // in-memory image matches again.
  return db_->catalog_.Load();
}

void Session::InvalidateStaleHandles() {
  std::lock_guard<std::mutex> lock(db_->version_mu_);
  if (seen_catalog_gen_ != db_->catalog_gen_) {
    // DDL elsewhere: relation files may have been rebuilt or deleted.
    // Handles are only cached between statements, so dropping them all is
    // cheap and always safe (a reader's frames are clean by definition).
    for (auto& [_, rel] : relations_) rel->DiscardBuffers();
    relations_.clear();
    seen_versions_.clear();
    seen_catalog_gen_ = db_->catalog_gen_;
  }
  for (auto it = relations_.begin(); it != relations_.end();) {
    auto vit = db_->rel_versions_.find(it->first);
    const uint64_t current =
        vit == db_->rel_versions_.end() ? 0 : vit->second;
    auto sit = seen_versions_.find(it->first);
    const uint64_t seen = sit == seen_versions_.end() ? 0 : sit->second;
    if (seen != current) {
      it->second->DiscardBuffers();
      it = relations_.erase(it);
    } else {
      ++it;
    }
  }
  // Record what this statement will observe.  Its locks are already held,
  // so these versions cannot move until the statement is over.
  for (const auto& [name, version] : db_->rel_versions_) {
    seen_versions_[name] = version;
  }
}

Result<ExecResult> Session::ExecuteStatementConcurrent(Statement* stmt) {
  LockPlan lp = ClassifyStatement(stmt, ranges_);
  Journal* journal = db_->journal_.get();
  Result<ExecResult> result = ExecResult{};
  uint64_t ticket = 0;
  bool wait_durable = false;
  {
    StatementLocks locks(&db_->lock_table_, lp.ddl, lp.rels);
    InvalidateStaleHandles();

    // The MVCC pin: read statements freeze logical time at statement start
    // (or at the session's explicit as-of), so whatever writers commit
    // meanwhile stays invisible — their transaction stamps are later than
    // the pin.  Writers draw a fresh stamp, advancing the shared clock.
    const TimePoint stmt_now =
        lp.data_mutating ? db_->AcquireTxTime()
                         : options_.as_of.value_or(db_->NowSnapshot());
    ExecEnv exec = MakeExecEnv(stmt_now);
    ScopedCompiledExprChoice compiled(options_.compiled_expr.has_value()
                                          ? options_.compiled_expr
                                          : db_->options_.compiled_expr);
    bool data_mutating = false;

    if (lp.writes && journal != nullptr) {
      // One journal, one writer batch at a time: Begin..CommitGroup runs
      // under the database's journal mutex.  The commit-mark fsync happens
      // after unlock, where overlapping writers share it (group commit).
      std::lock_guard<std::mutex> jlock(db_->journal_mu_);
      TDB_RETURN_NOT_OK(journal->Begin());
      result = RunStatement(stmt, exec, &data_mutating);
      if (result.ok() && lp.data_mutating) db_->PersistClock();
      if (result.ok()) {
        Status commit = [&]() -> Status {
          for (auto& [_, rel] : relations_) {
            TDB_RETURN_NOT_OK(rel->FlushBuffers());
          }
          if (journal->mode() == DurabilityMode::kJournalSync) {
            // Data must be durable before the commit mark exists: a durable
            // mark asserts exactly that (see Journal group-commit contract).
            for (auto& [_, rel] : relations_) {
              TDB_RETURN_NOT_OK(rel->SyncFiles());
            }
          }
          TDB_ASSIGN_OR_RETURN(ticket, journal->CommitGroup());
          wait_durable = journal->mode() == DurabilityMode::kJournalSync;
          return Status::OK();
        }();
        if (!commit.ok()) result = commit;
      }
      if (!result.ok()) {
        for (auto& [_, rel] : relations_) rel->DiscardBuffers();
        relations_.clear();
        TDB_RETURN_NOT_OK(journal->Rollback());
        if (lp.ddl == StatementLocks::DdlMode::kExclusive) {
          // Only DDL rewrites catalog.meta; reloading it under the shared
          // latch would race other sessions' catalog reads.
          TDB_RETURN_NOT_OK(db_->catalog_.Load());
        }
      }
    } else {
      result = RunStatement(stmt, exec, &data_mutating);
      if (result.ok() && lp.data_mutating) db_->PersistClock();
      if (result.ok() && lp.writes) {
        // No journal: still write back dirty frames before the exclusive
        // lock drops, so other sessions' reopened handles see this
        // statement's pages.
        for (auto& [_, rel] : relations_) {
          Status flushed = rel->FlushBuffers();
          if (!flushed.ok()) {
            result = flushed;
            break;
          }
        }
      }
    }

    if (result.ok() && lp.writes) {
      // Publish: bump the versions of everything written (still under this
      // statement's exclusive locks) so other sessions drop stale handles.
      std::lock_guard<std::mutex> vlock(db_->version_mu_);
      for (const auto& [name, exclusive] : lp.rels) {
        if (!exclusive) continue;
        const std::string key = ToLower(name);
        seen_versions_[key] = ++db_->rel_versions_[key];
      }
      if (lp.ddl == StatementLocks::DdlMode::kExclusive) {
        seen_catalog_gen_ = ++db_->catalog_gen_;
      }
    }
  }  // locks released

  // Early lock release: the statement's effects are committed in memory
  // and published above, so the fsync wait happens without any locks held
  // and overlapping committers can batch into one sync (group commit).
  // Safe against crashes because every page overwrite is pre-imaged and
  // the pre-image is durable before the page changes: if this commit mark
  // is lost, recovery rolls this statement (and anything after it) back.
  if (result.ok() && wait_durable) {
    TDB_RETURN_NOT_OK(journal->WaitDurable(ticket));
  }
  return result;
}

}  // namespace tdb
