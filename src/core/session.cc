#include "core/session.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <utility>

#include "core/database.h"
#include "core/plan_cache.h"
#include "exec/compiled_expr.h"
#include "exec/ddl_executor.h"
#include "exec/dml_executor.h"
#include "exec/eval.h"
#include "exec/exec_env.h"
#include "exec/morsel.h"
#include "exec/plan.h"
#include "exec/planner.h"
#include "exec/query_executor.h"
#include "exec/worker_pool.h"
#include "tquel/ast.h"
#include "tquel/binder.h"
#include "tquel/parser.h"
#include "tquel/printer.h"
#include "util/stringx.h"

namespace tdb {

namespace {

/// What one statement needs from the lock table, derived from its AST
/// before execution (so locks are held before any page is touched).
struct LockPlan {
  StatementLocks::DdlMode ddl = StatementLocks::DdlMode::kShared;
  /// (relation, exclusive?) pairs; shared entries cover every relation a
  /// range variable can reach, exclusive ones the statement's write target.
  std::vector<std::pair<std::string, bool>> rels;
  /// Writes database files, so it needs a journal batch and a post-commit
  /// version bump for other sessions.
  bool writes = false;
  /// DML: stamps transaction time and advances the logical clock.
  bool data_mutating = false;
};

/// Collects the tuple-variable names a statement's clauses reference, so
/// the lock plan can cover exactly the relations the statement can touch.
/// A session may hold many declared ranges; a statement that mentions one
/// of them must not contend with writers of the others.
struct VarCollector {
  std::set<std::string> vars;  // lower-cased

  void Scalar(const Expr* e) {
    if (e == nullptr) return;
    if (e->kind == Expr::Kind::kColumn) vars.insert(ToLower(e->var));
    Scalar(e->left.get());
    Scalar(e->right.get());
    Scalar(e->agg_arg.get());
    Scalar(e->agg_by.get());
    Scalar(e->agg_where.get());
  }
  void Temporal(const TemporalExpr* t) {
    if (t == nullptr) return;
    if (t->kind == TemporalExpr::Kind::kVar) vars.insert(ToLower(t->var));
    Temporal(t->left.get());
    Temporal(t->right.get());
  }
  void Pred(const TemporalPred* p) {
    if (p == nullptr) return;
    Temporal(p->lexpr.get());
    Temporal(p->rexpr.get());
    Pred(p->left.get());
    Pred(p->right.get());
  }
  void Valid(const std::optional<ValidClause>& v) {
    if (!v.has_value()) return;
    Temporal(v->from.get());
    Temporal(v->to.get());
  }
  void AsOf(const std::optional<AsOfClause>& a) {
    if (!a.has_value()) return;
    Temporal(a->at.get());
    Temporal(a->through.get());
  }
  void Targets(const std::vector<TargetItem>& targets) {
    for (const TargetItem& t : targets) Scalar(t.expr.get());
  }
};

LockPlan ClassifyStatement(const Statement* stmt,
                           const std::map<std::string, std::string>& ranges) {
  LockPlan lp;
  // Precise read set: only the relations whose range variables the
  // statement actually references.  Shared locks on every declared range
  // would make any two sessions' writes conflict as soon as each has a
  // range over the other's relation, serializing workloads that never
  // touch the same data.
  auto read_referenced = [&](const VarCollector& vc) {
    for (const std::string& var : vc.vars) {
      auto it = ranges.find(var);
      if (it != ranges.end()) lp.rels.emplace_back(it->second, false);
    }
  };
  switch (stmt->kind) {
    case Statement::Kind::kRange:
    case Statement::Kind::kHelp:
      break;  // catalog reads only; the shared DDL latch covers them
    case Statement::Kind::kRetrieve: {
      auto* r = static_cast<const RetrieveStmt*>(stmt);
      VarCollector vc;
      vc.Targets(r->targets);
      vc.Scalar(r->where.get());
      vc.Pred(r->when.get());
      vc.Valid(r->valid);
      vc.AsOf(r->as_of);
      read_referenced(vc);
      if (!r->into.empty()) {
        // `retrieve into` creates a relation: catalog shape changes.
        lp.ddl = StatementLocks::DdlMode::kExclusive;
        lp.writes = true;
      }
      break;
    }
    case Statement::Kind::kExplain: {
      // analyze executes; plain planning still reads
      auto* e = static_cast<const ExplainStmt*>(stmt);
      const RetrieveStmt* r = e->query.get();
      VarCollector vc;
      vc.Targets(r->targets);
      vc.Scalar(r->where.get());
      vc.Pred(r->when.get());
      vc.Valid(r->valid);
      vc.AsOf(r->as_of);
      read_referenced(vc);
      break;
    }
    case Statement::Kind::kAppend: {
      auto* a = static_cast<const AppendStmt*>(stmt);
      VarCollector vc;
      vc.Targets(a->targets);
      vc.Scalar(a->where.get());
      vc.Pred(a->when.get());
      vc.Valid(a->valid);
      read_referenced(vc);
      lp.rels.emplace_back(a->relation, true);
      lp.writes = lp.data_mutating = true;
      break;
    }
    case Statement::Kind::kDelete: {
      auto* d = static_cast<const DeleteStmt*>(stmt);
      VarCollector vc;
      vc.Scalar(d->where.get());
      vc.Pred(d->when.get());
      vc.Valid(d->valid);
      read_referenced(vc);
      auto it = ranges.find(ToLower(d->var));
      if (it != ranges.end()) lp.rels.emplace_back(it->second, true);
      lp.writes = lp.data_mutating = true;
      break;
    }
    case Statement::Kind::kReplace: {
      auto* r = static_cast<const ReplaceStmt*>(stmt);
      VarCollector vc;
      vc.Targets(r->targets);
      vc.Scalar(r->where.get());
      vc.Pred(r->when.get());
      vc.Valid(r->valid);
      read_referenced(vc);
      auto it = ranges.find(ToLower(r->var));
      if (it != ranges.end()) lp.rels.emplace_back(it->second, true);
      lp.writes = lp.data_mutating = true;
      break;
    }
    case Statement::Kind::kCopy: {
      auto* c = static_cast<const CopyStmt*>(stmt);
      lp.rels.emplace_back(c->relation, c->from);
      lp.writes = lp.data_mutating = c->from;
      break;
    }
    case Statement::Kind::kCreate:
    case Statement::Kind::kDestroy:
    case Statement::Kind::kModify:
    case Statement::Kind::kIndex:
    // Vacuum restructures a relation's history storage (like modify), so
    // it runs DDL-exclusive even though the logical contents don't change.
    case Statement::Kind::kVacuum:
      lp.ddl = StatementLocks::DdlMode::kExclusive;
      lp.writes = true;
      break;
    // Prepare binds against the catalog (the shared DDL latch covers it)
    // and deallocate touches only session-local state.  An `execute` is
    // classified by its stored inner statement — callers resolve it via
    // Session::EffectiveStatement before calling here; reaching this case
    // directly means the name is unknown and the statement will error
    // under the default shared latch.
    case Statement::Kind::kPrepare:
    case Statement::Kind::kExecPrepared:
    case Statement::Kind::kDeallocate:
      break;
  }
  return lp;
}

/// Largest `$N` index referenced anywhere in an expression tree (0 when
/// parameter-free).
int MaxParamIndex(const Expr* e) {
  if (e == nullptr) return 0;
  int n = e->kind == Expr::Kind::kParam ? e->param_index : 0;
  n = std::max(n, MaxParamIndex(e->left.get()));
  n = std::max(n, MaxParamIndex(e->right.get()));
  n = std::max(n, MaxParamIndex(e->agg_arg.get()));
  n = std::max(n, MaxParamIndex(e->agg_by.get()));
  n = std::max(n, MaxParamIndex(e->agg_where.get()));
  return n;
}

/// Largest `$N` index referenced by a preparable statement's clauses.
/// Temporal expressions cannot carry parameters (the grammar has no `$N`
/// production there), so only the scalar clauses are walked.
int MaxParamIndex(const Statement* stmt) {
  int n = 0;
  switch (stmt->kind) {
    case Statement::Kind::kRetrieve: {
      auto* r = static_cast<const RetrieveStmt*>(stmt);
      for (const TargetItem& t : r->targets) {
        n = std::max(n, MaxParamIndex(t.expr.get()));
      }
      n = std::max(n, MaxParamIndex(r->where.get()));
      break;
    }
    case Statement::Kind::kAppend: {
      auto* a = static_cast<const AppendStmt*>(stmt);
      for (const TargetItem& t : a->targets) {
        n = std::max(n, MaxParamIndex(t.expr.get()));
      }
      n = std::max(n, MaxParamIndex(a->where.get()));
      break;
    }
    case Statement::Kind::kDelete: {
      auto* d = static_cast<const DeleteStmt*>(stmt);
      n = MaxParamIndex(d->where.get());
      break;
    }
    case Statement::Kind::kReplace: {
      auto* r = static_cast<const ReplaceStmt*>(stmt);
      for (const TargetItem& t : r->targets) {
        n = std::max(n, MaxParamIndex(t.expr.get()));
      }
      n = std::max(n, MaxParamIndex(r->where.get()));
      break;
    }
    default:
      break;
  }
  return n;
}

/// True when the expression can be evaluated with no row bound — the
/// requirement on `execute` arguments (literals and arithmetic over them).
bool IsConstExpr(const Expr* e) {
  if (e == nullptr) return true;
  switch (e->kind) {
    case Expr::Kind::kColumn:
    case Expr::Kind::kAggregate:
    case Expr::Kind::kParam:
      return false;
    default:
      return IsConstExpr(e->left.get()) && IsConstExpr(e->right.get());
  }
}

bool HasAggregate(const Expr* e) {
  if (e == nullptr) return false;
  if (e->kind == Expr::Kind::kAggregate) return true;
  return HasAggregate(e->left.get()) || HasAggregate(e->right.get());
}

/// The plan-cache admission gate.  Excluded:
///   * `retrieve into` — creates a relation (DDL, runs once);
///   * aggregates — FoldAggregates rewrites the AST destructively, so a
///     shared read-only AST cannot carry them;
///   * an explicit `as of` — the planner evaluates the rollback point at
///     plan time, and caching would bake an `as of`-equals-now coincidence
///     into plans reused at later clock values.
/// Everything else (including `$N` parameters, whose plans deliberately
/// outlive any one argument vector) is admissible.
bool PlanCacheable(const RetrieveStmt& stmt) {
  if (!stmt.into.empty()) return false;
  if (stmt.as_of.has_value()) return false;
  for (const TargetItem& t : stmt.targets) {
    if (HasAggregate(t.expr.get())) return false;
  }
  if (HasAggregate(stmt.where.get())) return false;
  return true;
}

}  // namespace

Session::Session(Database* db, int id, SessionOptions options)
    : db_(db), id_(id), options_(std::move(options)) {
  // The default session (id 0) keeps the legacy scratch names
  // ("__temp0.dat") so embedded page accounting stays byte-identical.
  if (id_ > 0) temp_tag_ = StrPrintf("s%d_", id_);
  if (obs::MetricsRegistry* m = db_->metrics()) registry_.set_metrics(m);
}

Session::~Session() = default;

ExecEnv Session::MakeExecEnv(TimePoint now) {
  const DatabaseOptions& dbo = db_->options_;
  auto join = options_.join_method.has_value() ? options_.join_method
                                               : dbo.join_method;
  ExecEnv exec{db_->env_, db_->dir_,  &db_->catalog_,
               &registry_, &relations_, now,
               dbo.buffer_frames, db_->journal_.get(),
               EffectiveJoinMethod(join)};
  exec.vector_exec = ResolveVectorExec(
      options_.vector_exec.has_value() ? options_.vector_exec
                                       : dbo.vector_exec);
  exec.morsel_cap = ResolveMorselCapacity(options_.morsel_capacity > 0
                                              ? options_.morsel_capacity
                                              : dbo.morsel_capacity);
  exec.exec_threads = ResolveExecThreads(
      options_.exec_threads > 0 ? options_.exec_threads : dbo.exec_threads);
  exec.temp_tag = temp_tag_;
  exec.storage = db_->storage_;
  exec.vacuum_partition = db_->vacuum_partition_;
  return exec;
}

Status Session::DropAllBuffers() {
  for (auto& [_, rel] : relations_) {
    TDB_RETURN_NOT_OK(rel->FlushAndDropBuffers());
  }
  return Status::OK();
}

Result<std::vector<ExecResult>> Session::ExecuteScript(
    const std::string& text) {
  const bool concurrent = db_->concurrent_.load(std::memory_order_acquire);
  if (!concurrent) {
    // One-writer-per-Env rule (see IoRegistry): an embedded Database, its
    // registry, and its logical clock belong to a single thread.
    registry_.CheckOwnerThread();
  }
  TDB_ASSIGN_OR_RETURN(auto stmts, Parser::ParseScript(text));
  if (stmts.empty()) return Status::ParseError("empty statement");
  if (obs::MetricsRegistry* m = db_->metrics()) {
    // Parser invocations, per statement: the prepared-statement path skips
    // this counter entirely — load generators diff it against plan.builds
    // to show what prepare/execute saves.
    m->counter("sql.parses")->Add(stmts.size());
  }

  std::vector<ExecResult> results;
  results.reserve(stmts.size());
  for (size_t i = 0; i < stmts.size(); ++i) {
    Statement* stmt = stmts[i].get();
    const StatementContext ctx{static_cast<int>(i) + 1, stmt->source_offset};
    Result<ExecResult> result = ExecuteOne(stmt);
    if (!result.ok()) return result.status().WithStatementContext(ctx);
    results.push_back(std::move(*result));
  }
  return results;
}

Result<ExecResult> Session::ExecuteOne(Statement* stmt) {
  const bool concurrent = db_->concurrent_.load(std::memory_order_acquire);
  Journal* journal = db_->journal_.get();
  if (!concurrent && journal != nullptr) {
    TDB_RETURN_NOT_OK(journal->Begin());
  }
  Result<ExecResult> result = ExecResult{};
  if (obs::MetricsRegistry* m = db_->metrics()) {
    obs::TraceSpan span(m, "db.statement");
    auto start = std::chrono::steady_clock::now();
    result = concurrent ? ExecuteStatementConcurrent(stmt)
                        : ExecuteStatementEmbedded(stmt);
    m->counter("db.statements")->Increment();
    m->histogram("db.statement_nanos")
        ->Record(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start)
                .count()));
  } else {
    result = concurrent ? ExecuteStatementConcurrent(stmt)
                        : ExecuteStatementEmbedded(stmt);
  }
  if (!concurrent && journal != nullptr) {
    if (result.ok()) {
      Status commit = CommitStatementEmbedded();
      if (!commit.ok()) result = commit;
    }
    if (!result.ok()) {
      TDB_RETURN_NOT_OK(RollbackStatementEmbedded());
    }
  }
  return result;
}

Result<ExecResult> Session::Execute(const std::string& text) {
  TDB_ASSIGN_OR_RETURN(auto results, ExecuteScript(text));
  return std::move(results.back());
}

Result<ResultSet> Session::Query(const std::string& text) {
  TDB_ASSIGN_OR_RETURN(ExecResult r, Execute(text));
  return r.result;
}

Result<ExecResult> Session::RunStatement(Statement* stmt, ExecEnv& exec,
                                         bool* data_mutating) {
  Binder binder(&db_->catalog_, &ranges_);
  ExecResult last;
  switch (stmt->kind) {
    case Statement::Kind::kRange: {
      auto* range = static_cast<RangeStmt*>(stmt);
      if (db_->catalog_.Find(range->relation) == nullptr) {
        return Status::BindError("relation '" + range->relation +
                                 "' does not exist");
      }
      ranges_[ToLower(range->var)] = range->relation;
      last = ExecResult{};
      last.message = "range of " + range->var + " is " + range->relation;
      break;
    }
    case Statement::Kind::kRetrieve: {
      auto* retrieve = static_cast<RetrieveStmt*>(stmt);
      TDB_ASSIGN_OR_RETURN(BoundStatement bound,
                           binder.BindRetrieve(retrieve));
      TDB_ASSIGN_OR_RETURN(last, RunRetrieve(retrieve, bound, exec));
      break;
    }
    case Statement::Kind::kAppend: {
      auto* append = static_cast<AppendStmt*>(stmt);
      TDB_ASSIGN_OR_RETURN(BoundStatement bound, binder.BindAppend(append));
      DmlExecutor dml(exec);
      TDB_ASSIGN_OR_RETURN(last, dml.Append(append, bound));
      *data_mutating = true;
      break;
    }
    case Statement::Kind::kDelete: {
      auto* del = static_cast<DeleteStmt*>(stmt);
      TDB_ASSIGN_OR_RETURN(BoundStatement bound, binder.BindDelete(del));
      DmlExecutor dml(exec);
      TDB_ASSIGN_OR_RETURN(last, dml.Delete(del, bound));
      *data_mutating = true;
      break;
    }
    case Statement::Kind::kReplace: {
      auto* replace = static_cast<ReplaceStmt*>(stmt);
      TDB_ASSIGN_OR_RETURN(BoundStatement bound,
                           binder.BindReplace(replace));
      DmlExecutor dml(exec);
      TDB_ASSIGN_OR_RETURN(last, dml.Replace(replace, bound));
      *data_mutating = true;
      break;
    }
    case Statement::Kind::kCreate: {
      DdlExecutor ddl(exec);
      TDB_ASSIGN_OR_RETURN(last,
                           ddl.Create(*static_cast<CreateStmt*>(stmt)));
      break;
    }
    case Statement::Kind::kDestroy: {
      DdlExecutor ddl(exec);
      TDB_ASSIGN_OR_RETURN(
          last, ddl.Destroy(*static_cast<DestroyStmt*>(stmt)));
      break;
    }
    case Statement::Kind::kModify: {
      DdlExecutor ddl(exec);
      TDB_ASSIGN_OR_RETURN(last,
                           ddl.Modify(*static_cast<ModifyStmt*>(stmt)));
      break;
    }
    case Statement::Kind::kVacuum: {
      DdlExecutor ddl(exec);
      TDB_ASSIGN_OR_RETURN(last,
                           ddl.Vacuum(*static_cast<VacuumStmt*>(stmt)));
      break;
    }
    case Statement::Kind::kIndex: {
      DdlExecutor ddl(exec);
      TDB_ASSIGN_OR_RETURN(last,
                           ddl.Index(*static_cast<IndexStmt*>(stmt)));
      break;
    }
    case Statement::Kind::kHelp: {
      DdlExecutor ddl(exec);
      TDB_ASSIGN_OR_RETURN(last,
                           ddl.Help(*static_cast<HelpStmt*>(stmt)));
      break;
    }
    case Statement::Kind::kCopy: {
      auto* copy = static_cast<CopyStmt*>(stmt);
      DdlExecutor ddl(exec);
      TDB_ASSIGN_OR_RETURN(last, ddl.Copy(*copy));
      *data_mutating = copy->from;
      break;
    }
    case Statement::Kind::kPrepare: {
      TDB_ASSIGN_OR_RETURN(last,
                           RunPrepare(static_cast<PrepareStmt*>(stmt), exec));
      break;
    }
    case Statement::Kind::kExecPrepared: {
      TDB_ASSIGN_OR_RETURN(
          last, RunExecPrepared(static_cast<ExecPreparedStmt*>(stmt), exec,
                                data_mutating));
      break;
    }
    case Statement::Kind::kDeallocate: {
      auto* dealloc = static_cast<DeallocateStmt*>(stmt);
      auto it = prepared_.find(ToLower(dealloc->name));
      if (it == prepared_.end()) {
        return Status::NotFound("prepared statement '" + dealloc->name +
                                "' does not exist");
      }
      prepared_.erase(it);
      last = ExecResult{};
      last.message = "deallocate " + dealloc->name;
      break;
    }
    case Statement::Kind::kExplain: {
      // Plain explain plans the wrapped retrieve without executing it;
      // `explain analyze` runs it and annotates each node with its runtime
      // stats and wall time.  Either way the tree comes back as rows, one
      // line per node, and the query's own result rows are discarded.
      auto* explain = static_cast<ExplainStmt*>(stmt);
      TDB_ASSIGN_OR_RETURN(BoundStatement bound,
                           binder.BindRetrieve(explain->query.get()));
      std::shared_ptr<PhysicalPlan> plan;
      if (explain->analyze) {
        QueryExecutor qexec(exec);
        TDB_ASSIGN_OR_RETURN(ExecResult run,
                             qexec.Retrieve(explain->query.get(), bound));
        plan = std::const_pointer_cast<PhysicalPlan>(run.plan);
      } else {
        TDB_ASSIGN_OR_RETURN(plan, BuildPlan(*explain->query, bound, exec));
      }
      last = ExecResult{};
      last.result.columns.push_back("query plan");
      const std::string tree = explain->analyze
                                   ? plan->Describe(/*with_stats=*/true,
                                                    /*with_timing=*/true)
                                   : plan->Describe();
      for (const std::string& line : Split(tree, '\n')) {
        if (line.empty()) continue;
        Row row;
        row.push_back(Value::Char(line));
        last.result.rows.push_back(std::move(row));
      }
      last.message = "plan: " + plan->Summary();
      last.plan = std::move(plan);
      break;
    }
  }
  return last;
}

const Statement* Session::EffectiveStatement(const Statement* stmt) const {
  if (stmt->kind != Statement::Kind::kExecPrepared) return stmt;
  auto* ex = static_cast<const ExecPreparedStmt*>(stmt);
  auto it = prepared_.find(ToLower(ex->name));
  return it == prepared_.end() ? stmt : it->second.stmt.get();
}

Result<ExecResult> Session::RunPrepare(PrepareStmt* prep, ExecEnv& exec) {
  (void)exec;
  const std::string key = ToLower(prep->name);
  // Validate everything before touching any session state: a failed
  // prepare must leave no prepared entry, range binding, or scratch tag
  // behind (early returns below are all side-effect free).
  if (prepared_.count(key) != 0) {
    return Status::Invalid("prepared statement '" + prep->name +
                           "' already exists (deallocate it first)");
  }
  Statement* inner = prep->inner.get();
  switch (inner->kind) {
    case Statement::Kind::kRetrieve:
    case Statement::Kind::kAppend:
    case Statement::Kind::kDelete:
    case Statement::Kind::kReplace:
      break;
    default:
      return Status::Invalid(
          "only retrieve, append, delete, and replace statements can be "
          "prepared");
  }
  // Bind against the live catalog so unknown relations/attributes fail at
  // prepare time.  The annotations this writes into the AST are refreshed
  // again at every execute, so drift between now and then is harmless.
  Binder binder(&db_->catalog_, &ranges_);
  switch (inner->kind) {
    case Statement::Kind::kRetrieve:
      TDB_RETURN_NOT_OK(
          binder.BindRetrieve(static_cast<RetrieveStmt*>(inner)).status());
      break;
    case Statement::Kind::kAppend:
      TDB_RETURN_NOT_OK(
          binder.BindAppend(static_cast<AppendStmt*>(inner)).status());
      break;
    case Statement::Kind::kDelete:
      TDB_RETURN_NOT_OK(
          binder.BindDelete(static_cast<DeleteStmt*>(inner)).status());
      break;
    default:
      TDB_RETURN_NOT_OK(
          binder.BindReplace(static_cast<ReplaceStmt*>(inner)).status());
      break;
  }

  PreparedEntry entry;
  entry.text = PrintStatement(*inner);
  entry.param_count = MaxParamIndex(inner);
  entry.stmt = std::move(prep->inner);
  const int params = entry.param_count;
  prepared_[key] = std::move(entry);

  ExecResult r;
  r.message = StrPrintf("prepare %s (%d parameter%s)", prep->name.c_str(),
                        params, params == 1 ? "" : "s");
  return r;
}

Result<ExecResult> Session::RunExecPrepared(ExecPreparedStmt* ex,
                                            ExecEnv& exec,
                                            bool* data_mutating) {
  auto it = prepared_.find(ToLower(ex->name));
  if (it == prepared_.end()) {
    return Status::NotFound("prepared statement '" + ex->name +
                            "' does not exist");
  }
  PreparedEntry& entry = it->second;

  std::vector<Value> args;
  if (ex->use_bound_args) {
    args = ex->bound_args;  // wire path: values arrive already decoded
  } else {
    Evaluator eval(exec.now);
    Binding no_row;
    for (const auto& arg : ex->args) {
      if (!IsConstExpr(arg.get())) {
        return Status::Invalid(
            "execute arguments must be constant expressions");
      }
      TDB_ASSIGN_OR_RETURN(Value v, eval.Eval(*arg, no_row));
      args.push_back(std::move(v));
    }
  }
  if (static_cast<int>(args.size()) != entry.param_count) {
    return Status::Invalid(StrPrintf(
        "prepared statement '%s' takes %d argument(s), got %zu",
        ex->name.c_str(), entry.param_count, args.size()));
  }

  // The `$N` evaluator reads the arguments through exec.params; the
  // executors capture the pointer at construction, inside RunStatement.
  exec.params = &args;
  prepared_text_hint_ = &entry.text;
  Result<ExecResult> result =
      RunStatement(entry.stmt.get(), exec, data_mutating);
  prepared_text_hint_ = nullptr;
  exec.params = nullptr;  // args dies with this frame
  return result;
}

Result<ExecResult> Session::RunRetrieve(RetrieveStmt* stmt,
                                        const BoundStatement& bound,
                                        ExecEnv& exec) {
  if (db_->plan_cache_enabled() && PlanCacheable(*stmt)) {
    Result<ExecResult> cached = RetrieveViaPlanCache(stmt, bound, exec);
    if (cached.ok()) return cached;
    // Any cache-path failure falls through to plan-and-execute: a genuine
    // query error reproduces below; a cache-only artifact (say, an index
    // dropped between keying and cloning) vanishes.
  }
  QueryExecutor qexec(exec);
  return qexec.Retrieve(stmt, bound);
}

std::string Session::PlanCacheKeyFor(const RetrieveStmt& stmt,
                                     const BoundStatement& bound,
                                     const ExecEnv& exec) {
  std::string key = db_->dir_;
  key += '\x1f';
  // A prepared execution already owns the statement's canonical text;
  // everything else prints it fresh (the printer is deterministic, so the
  // two spellings of the same statement produce the same key).
  key += prepared_text_hint_ != nullptr ? *prepared_text_hint_
                                        : PrintStatement(stmt);
  std::set<std::string> rels;
  for (const BoundVar& v : bound.vars) rels.insert(ToLower(v.rel->name));
  {
    std::lock_guard<std::mutex> lock(db_->version_mu_);
    for (const std::string& rel : rels) {
      auto it = db_->rel_versions_.find(rel);
      key += '\x1f';
      key += rel;
      key += '=';
      key += std::to_string(it == db_->rel_versions_.end() ? 0 : it->second);
    }
    key += '\x1f';
    key += "g=";
    key += std::to_string(db_->catalog_gen_);
  }
  key += StrPrintf("\x1f" "k=%d%d%d", static_cast<int>(exec.join_method),
                   exec.vector_exec ? 1 : 0, CompiledExprEnabled() ? 1 : 0);
  return key;
}

Result<std::shared_ptr<const CachedPlan>> Session::BuildCacheEntry(
    const RetrieveStmt& stmt, ExecEnv& exec) {
  // Print -> re-parse so the entry owns a self-contained AST the plan's
  // expression pointers can alias for as long as the entry lives.
  const std::string text = PrintStatement(stmt);
  TDB_ASSIGN_OR_RETURN(auto stmts, Parser::ParseScript(text));
  if (stmts.size() != 1 ||
      stmts[0]->kind != Statement::Kind::kRetrieve) {
    return Status::Internal("canonical statement text did not round-trip: " +
                            text);
  }
  auto owned = std::unique_ptr<RetrieveStmt>(
      static_cast<RetrieveStmt*>(stmts[0].release()));
  Binder binder(&db_->catalog_, &ranges_);
  TDB_ASSIGN_OR_RETURN(BoundStatement bound, binder.BindRetrieve(owned.get()));
  TDB_ASSIGN_OR_RETURN(std::shared_ptr<PhysicalPlan> tmpl,
                       BuildPlan(*owned, bound, exec));
  auto entry = std::make_shared<CachedPlan>();
  for (const BoundVar& v : bound.vars) {
    entry->vars.emplace_back(v.name, v.rel->name);
  }
  entry->stmt = std::move(owned);
  entry->plan = std::move(tmpl);
  return std::shared_ptr<const CachedPlan>(std::move(entry));
}

Result<ExecResult> Session::ExecuteCachedPlan(const CachedPlan& entry,
                                              ExecEnv& exec) {
  // Rebuild the BoundStatement from names: the RelationMeta pointers a
  // bound statement holds dangle whenever the catalog reloads, so the
  // cache never stores them.
  BoundStatement bound;
  for (const auto& [var, rel] : entry.vars) {
    const RelationMeta* meta = db_->catalog_.Find(rel);
    if (meta == nullptr) {
      return Status::NotFound("cached plan references dropped relation '" +
                              rel + "'");
    }
    bound.vars.push_back(BoundVar{var, meta});
  }
  TDB_ASSIGN_OR_RETURN(std::shared_ptr<PhysicalPlan> plan,
                       ClonePlanForExec(*entry.plan, exec));
  QueryExecutor qexec(exec);
  return qexec.Retrieve(entry.stmt.get(), bound, std::move(plan));
}

Result<ExecResult> Session::RetrieveViaPlanCache(RetrieveStmt* stmt,
                                                 const BoundStatement& bound,
                                                 ExecEnv& exec) {
  const std::string key = PlanCacheKeyFor(*stmt, bound, exec);
  PlanCache& cache = GlobalPlanCache();
  obs::MetricsRegistry* m = db_->metrics();
  if (std::shared_ptr<const CachedPlan> entry = cache.Lookup(key)) {
    Result<ExecResult> hit = ExecuteCachedPlan(*entry, exec);
    if (hit.ok()) {
      if (m != nullptr) m->counter("plancache.hits")->Increment();
      return hit;
    }
    // Stale in a way the key missed (should not happen; be safe): rebuild.
  }
  if (m != nullptr) m->counter("plancache.misses")->Increment();
  TDB_ASSIGN_OR_RETURN(std::shared_ptr<const CachedPlan> entry,
                       BuildCacheEntry(*stmt, exec));
  cache.Insert(key, entry);
  return ExecuteCachedPlan(*entry, exec);
}

void Session::BumpVersionsEmbedded(const Statement* stmt) {
  if (!db_->plan_cache_enabled()) return;
  LockPlan lp = ClassifyStatement(EffectiveStatement(stmt), ranges_);
  if (!lp.writes) return;
  std::lock_guard<std::mutex> lock(db_->version_mu_);
  for (const auto& [name, exclusive] : lp.rels) {
    if (exclusive) ++db_->rel_versions_[ToLower(name)];
  }
  if (lp.ddl == StatementLocks::DdlMode::kExclusive) ++db_->catalog_gen_;
}

Result<ExecResult> Session::Prepare(const std::string& name,
                                    const std::string& text) {
  TDB_ASSIGN_OR_RETURN(auto stmts, Parser::ParseScript(text));
  if (stmts.size() != 1) {
    return Status::Invalid("prepare expects exactly one statement");
  }
  PrepareStmt prep;
  prep.name = name;
  prep.inner = std::move(stmts[0]);
  return ExecuteOne(&prep);
}

Result<ExecResult> Session::ExecutePrepared(const std::string& name,
                                            std::vector<Value> args) {
  ExecPreparedStmt ex;
  ex.name = name;
  ex.bound_args = std::move(args);
  ex.use_bound_args = true;
  return ExecuteOne(&ex);
}

Result<ExecResult> Session::DeallocatePrepared(const std::string& name) {
  DeallocateStmt dealloc;
  dealloc.name = name;
  return ExecuteOne(&dealloc);
}

Result<ExecResult> Session::ExecuteStatementEmbedded(Statement* stmt) {
  ExecEnv exec = MakeExecEnv(options_.as_of.value_or(db_->now()));
  ScopedCompiledExprChoice compiled(options_.compiled_expr.has_value()
                                        ? options_.compiled_expr
                                        : db_->options_.compiled_expr);
  bool data_mutating = false;
  // A pinned as-of must never stamp new versions into the past: mutating
  // statements re-resolve against the live clock.
  if (options_.as_of.has_value()) {
    LockPlan lp = ClassifyStatement(EffectiveStatement(stmt), ranges_);
    if (lp.data_mutating) exec.now = db_->now();
  }
  TDB_ASSIGN_OR_RETURN(ExecResult last,
                       RunStatement(stmt, exec, &data_mutating));
  // With the plan cache on, even the single-session path must publish
  // version stamps — they are components of every cache key.
  BumpVersionsEmbedded(stmt);
  if (data_mutating) {
    db_->PersistClock();
    if (db_->options_.auto_advance_seconds > 0) {
      db_->AdvanceSeconds(db_->options_.auto_advance_seconds);
    }
  }
  return last;
}

Status Session::CommitStatementEmbedded() {
  // Write back every dirty frame; each in-place overwrite first pre-images
  // the page through the journal hooks.
  for (auto& [_, rel] : relations_) {
    TDB_RETURN_NOT_OK(rel->FlushBuffers());
  }
  if (db_->journal_->mode() == DurabilityMode::kJournalSync) {
    for (auto& [_, rel] : relations_) {
      TDB_RETURN_NOT_OK(rel->SyncFiles());
    }
  }
  return db_->journal_->Commit();
}

Status Session::RollbackStatementEmbedded() {
  // Dirty frames hold aborted content; drop them unwritten so destructor
  // flushes cannot leak them to disk, then close the handles (the files
  // are about to change underneath them).
  for (auto& [_, rel] : relations_) rel->DiscardBuffers();
  relations_.clear();
  TDB_RETURN_NOT_OK(db_->journal_->Rollback());
  // The journal restored catalog.meta on disk; re-read it so the
  // in-memory image matches again.
  return db_->catalog_.Load();
}

void Session::InvalidateStaleHandles() {
  std::lock_guard<std::mutex> lock(db_->version_mu_);
  if (seen_catalog_gen_ != db_->catalog_gen_) {
    // DDL elsewhere: relation files may have been rebuilt or deleted.
    // Handles are only cached between statements, so dropping them all is
    // cheap and always safe (a reader's frames are clean by definition).
    for (auto& [_, rel] : relations_) rel->DiscardBuffers();
    relations_.clear();
    seen_versions_.clear();
    seen_catalog_gen_ = db_->catalog_gen_;
  }
  for (auto it = relations_.begin(); it != relations_.end();) {
    auto vit = db_->rel_versions_.find(it->first);
    const uint64_t current =
        vit == db_->rel_versions_.end() ? 0 : vit->second;
    auto sit = seen_versions_.find(it->first);
    const uint64_t seen = sit == seen_versions_.end() ? 0 : sit->second;
    if (seen != current) {
      it->second->DiscardBuffers();
      it = relations_.erase(it);
    } else {
      ++it;
    }
  }
  // Record what this statement will observe.  Its locks are already held,
  // so these versions cannot move until the statement is over.
  for (const auto& [name, version] : db_->rel_versions_) {
    seen_versions_[name] = version;
  }
}

Result<ExecResult> Session::ExecuteStatementConcurrent(Statement* stmt) {
  // An `execute` takes the locks of its stored inner statement.
  LockPlan lp = ClassifyStatement(EffectiveStatement(stmt), ranges_);
  Journal* journal = db_->journal_.get();
  Result<ExecResult> result = ExecResult{};
  uint64_t ticket = 0;
  bool wait_durable = false;
  {
    StatementLocks locks(&db_->lock_table_, lp.ddl, lp.rels);
    InvalidateStaleHandles();

    // The MVCC pin: read statements freeze logical time at statement start
    // (or at the session's explicit as-of), so whatever writers commit
    // meanwhile stays invisible — their transaction stamps are later than
    // the pin.  Writers draw a fresh stamp, advancing the shared clock.
    const TimePoint stmt_now =
        lp.data_mutating ? db_->AcquireTxTime()
                         : options_.as_of.value_or(db_->NowSnapshot());
    ExecEnv exec = MakeExecEnv(stmt_now);
    ScopedCompiledExprChoice compiled(options_.compiled_expr.has_value()
                                          ? options_.compiled_expr
                                          : db_->options_.compiled_expr);
    bool data_mutating = false;

    if (lp.writes && journal != nullptr) {
      // One journal, one writer batch at a time: Begin..CommitGroup runs
      // under the database's journal mutex.  The commit-mark fsync happens
      // after unlock, where overlapping writers share it (group commit).
      std::lock_guard<std::mutex> jlock(db_->journal_mu_);
      TDB_RETURN_NOT_OK(journal->Begin());
      result = RunStatement(stmt, exec, &data_mutating);
      if (result.ok() && lp.data_mutating) db_->PersistClock();
      if (result.ok()) {
        Status commit = [&]() -> Status {
          for (auto& [_, rel] : relations_) {
            TDB_RETURN_NOT_OK(rel->FlushBuffers());
          }
          if (journal->mode() == DurabilityMode::kJournalSync) {
            // Data must be durable before the commit mark exists: a durable
            // mark asserts exactly that (see Journal group-commit contract).
            for (auto& [_, rel] : relations_) {
              TDB_RETURN_NOT_OK(rel->SyncFiles());
            }
          }
          TDB_ASSIGN_OR_RETURN(ticket, journal->CommitGroup());
          wait_durable = journal->mode() == DurabilityMode::kJournalSync;
          return Status::OK();
        }();
        if (!commit.ok()) result = commit;
      }
      if (!result.ok()) {
        for (auto& [_, rel] : relations_) rel->DiscardBuffers();
        relations_.clear();
        TDB_RETURN_NOT_OK(journal->Rollback());
        if (lp.ddl == StatementLocks::DdlMode::kExclusive) {
          // Only DDL rewrites catalog.meta; reloading it under the shared
          // latch would race other sessions' catalog reads.
          TDB_RETURN_NOT_OK(db_->catalog_.Load());
        }
      }
    } else {
      result = RunStatement(stmt, exec, &data_mutating);
      if (result.ok() && lp.data_mutating) db_->PersistClock();
      if (result.ok() && lp.writes) {
        // No journal: still write back dirty frames before the exclusive
        // lock drops, so other sessions' reopened handles see this
        // statement's pages.
        for (auto& [_, rel] : relations_) {
          Status flushed = rel->FlushBuffers();
          if (!flushed.ok()) {
            result = flushed;
            break;
          }
        }
      }
    }

    if (result.ok() && lp.writes) {
      // Publish: bump the versions of everything written (still under this
      // statement's exclusive locks) so other sessions drop stale handles.
      std::lock_guard<std::mutex> vlock(db_->version_mu_);
      for (const auto& [name, exclusive] : lp.rels) {
        if (!exclusive) continue;
        const std::string key = ToLower(name);
        seen_versions_[key] = ++db_->rel_versions_[key];
      }
      if (lp.ddl == StatementLocks::DdlMode::kExclusive) {
        seen_catalog_gen_ = ++db_->catalog_gen_;
      }
    }
  }  // locks released

  // Early lock release: the statement's effects are committed in memory
  // and published above, so the fsync wait happens without any locks held
  // and overlapping committers can batch into one sync (group commit).
  // Safe against crashes because every page overwrite is pre-imaged and
  // the pre-image is durable before the page changes: if this commit mark
  // is lost, recovery rolls this statement (and anything after it) back.
  if (result.ok() && wait_durable) {
    TDB_RETURN_NOT_OK(journal->WaitDurable(ticket));
  }
  return result;
}

}  // namespace tdb
