#include "core/lock_table.h"

#include <algorithm>

#include "util/stringx.h"

namespace tdb {

std::shared_mutex& LockTable::ForRelation(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = locks_[ToLower(name)];
  if (slot == nullptr) slot = std::make_unique<std::shared_mutex>();
  return *slot;
}

StatementLocks::StatementLocks(
    LockTable* table, DdlMode ddl,
    std::vector<std::pair<std::string, bool>> relations)
    : table_(table), ddl_(ddl) {
  if (ddl_ == DdlMode::kExclusive) {
    table_->ddl_latch().lock();
  } else {
    table_->ddl_latch().lock_shared();
  }
  for (auto& [name, _] : relations) name = ToLower(name);
  std::sort(relations.begin(), relations.end());
  for (const auto& [name, exclusive] : relations) {
    if (!held_.empty() &&
        &table_->ForRelation(name) == held_.back().first) {
      // Same relation twice: exclusive subsumes shared, and the sort put
      // the shared entry (false < true) first — upgrade in place before
      // the lock is taken, never after.
      held_.back().second = held_.back().second || exclusive;
      continue;
    }
    held_.emplace_back(&table_->ForRelation(name), exclusive);
  }
  for (auto& [lock, exclusive] : held_) {
    if (exclusive) {
      lock->lock();
    } else {
      lock->lock_shared();
    }
  }
}

StatementLocks::~StatementLocks() {
  for (auto it = held_.rbegin(); it != held_.rend(); ++it) {
    if (it->second) {
      it->first->unlock();
    } else {
      it->first->unlock_shared();
    }
  }
  if (ddl_ == DdlMode::kExclusive) {
    table_->ddl_latch().unlock();
  } else {
    table_->ddl_latch().unlock_shared();
  }
}

}  // namespace tdb
