#ifndef CHRONOQUEL_CORE_PLAN_CACHE_H_
#define CHRONOQUEL_CORE_PLAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "exec/plan.h"
#include "tquel/ast.h"

namespace tdb {

/// One cached compiled statement: a self-contained canonical AST plus the
/// physical-plan template built from it.  Immutable after insertion — every
/// execution deep-copies the template (ClonePlanForExec) and treats the AST
/// as read-only, so concurrent sessions can share one entry.
///
/// The AST is the *canonical* form (the statement printed and re-parsed),
/// owned by the entry itself: the plan's expression pointers alias it, so
/// the entry must outlive every clone executing against it — guaranteed by
/// handing entries out as shared_ptr<const CachedPlan>.
struct CachedPlan {
  std::unique_ptr<RetrieveStmt> stmt;
  /// (range variable, relation) name pairs in bind order.  Each execution
  /// rebuilds a fresh BoundStatement from these against the live catalog —
  /// the RelationMeta pointers a BoundStatement holds dangle whenever the
  /// catalog reloads, so they are never cached.
  std::vector<std::pair<std::string, std::string>> vars;
  std::shared_ptr<const PhysicalPlan> plan;
};

/// Process-shared, sharded LRU cache of compiled retrieve plans.
///
/// Keys are flat strings built by the session layer from the database
/// directory, the canonical statement text, every referenced relation's
/// version stamp, the catalog generation, and the engine-knob fingerprint
/// (join method / compiled expressions / vectorized execution).  Any write
/// to a referenced relation — or any DDL — changes a component of the key,
/// so stale plans simply never hit again and age out of the LRU: a cache
/// hit may change CPU cost, never results.
///
/// Sharded by key hash (8 shards, one mutex each) so concurrent sessions
/// rarely contend; within a shard, lookups refresh LRU position and
/// insertion evicts from the cold end past `capacity / kShards` entries.
class PlanCache {
 public:
  static constexpr int kShards = 8;

  explicit PlanCache(size_t capacity = 256);

  /// Returns the entry for `key` (refreshing its LRU position), or null.
  std::shared_ptr<const CachedPlan> Lookup(const std::string& key);

  /// Inserts (or replaces) the entry for `key`, evicting the shard's
  /// least-recently-used entries past its capacity.
  void Insert(const std::string& key, std::shared_ptr<const CachedPlan> entry);

  /// Drops every entry (tests; also useful after closing a database whose
  /// directory will be reused).
  void Clear();

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  size_t size() const;

 private:
  struct Shard {
    mutable std::mutex mu;
    /// Most-recently-used at the front.
    std::list<std::pair<std::string, std::shared_ptr<const CachedPlan>>> lru;
    std::unordered_map<std::string, decltype(lru)::iterator> index;
  };

  Shard* ShardFor(const std::string& key);

  size_t shard_capacity_;
  Shard shards_[kShards];
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

/// The process-wide cache every Database shares (entries are keyed by
/// database directory, so distinct databases never collide).
PlanCache& GlobalPlanCache();

}  // namespace tdb

#endif  // CHRONOQUEL_CORE_PLAN_CACHE_H_
