#ifndef CHRONOQUEL_CORE_LOCK_TABLE_H_
#define CHRONOQUEL_CORE_LOCK_TABLE_H_

#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

namespace tdb {

/// Per-relation reader-writer locks plus a database-wide DDL latch, the
/// whole concurrency control of the service layer.  Statement-granularity
/// two-phase locking: a session acquires every lock its statement needs up
/// front (DDL latch first, then relations in sorted name order — a total
/// order, so no deadlocks) and releases them when the statement finishes.
/// Readers share; a writer excludes other access to its target relation
/// only, so writers on distinct relations and readers of other relations
/// all proceed in parallel.  Logical snapshot isolation on top of this
/// comes from the temporal model itself: each read statement pins an
/// `as of` transaction timestamp, so committed-later versions are filtered
/// even after the locks are gone.
///
/// The embedded single-session path never touches this class.
class LockTable {
 public:
  /// The relation lock for `name` (case-insensitive), created on first use
  /// and never removed — entries are tiny and relation names few, so a
  /// destroyed relation leaving a lock behind is harmless.
  std::shared_mutex& ForRelation(const std::string& name);

  /// Catalog-shape latch: held shared by every ordinary statement and
  /// exclusively by DDL (create/destroy/modify/index and `retrieve into`),
  /// which mutates the shared catalog image and the relation name space.
  std::shared_mutex& ddl_latch() { return ddl_latch_; }

 private:
  std::mutex mu_;  // guards the map, not the locks
  std::shared_mutex ddl_latch_;
  std::map<std::string, std::unique_ptr<std::shared_mutex>> locks_;
};

/// RAII acquisition of everything one statement needs.  Relations are
/// deduplicated (exclusive wins) and locked in sorted order after the DDL
/// latch; destruction releases in reverse.
class StatementLocks {
 public:
  enum class DdlMode { kShared, kExclusive };

  /// `relations` holds (case-insensitive name, exclusive?) pairs in any
  /// order, duplicates allowed.
  StatementLocks(LockTable* table, DdlMode ddl,
                 std::vector<std::pair<std::string, bool>> relations);
  ~StatementLocks();

  StatementLocks(const StatementLocks&) = delete;
  StatementLocks& operator=(const StatementLocks&) = delete;

 private:
  LockTable* table_;
  DdlMode ddl_;
  /// Sorted, deduplicated (lock, exclusive) acquisition order.
  std::vector<std::pair<std::shared_mutex*, bool>> held_;
};

}  // namespace tdb

#endif  // CHRONOQUEL_CORE_LOCK_TABLE_H_
