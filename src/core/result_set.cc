#include "core/result_set.h"

#include <algorithm>

namespace tdb {

std::string ResultSet::ToString(TimeResolution res) const {
  std::vector<std::vector<std::string>> cells;
  cells.emplace_back(columns);
  for (const Row& row : rows) {
    std::vector<std::string> line;
    line.reserve(row.size());
    for (const Value& v : row) line.push_back(v.ToString(res));
    cells.push_back(std::move(line));
  }
  std::vector<size_t> widths(columns.size(), 0);
  for (const auto& line : cells) {
    for (size_t i = 0; i < line.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], line[i].size());
    }
  }
  std::string out;
  for (size_t r = 0; r < cells.size(); ++r) {
    std::string line = "|";
    for (size_t i = 0; i < widths.size(); ++i) {
      std::string cell = i < cells[r].size() ? cells[r][i] : "";
      cell.resize(widths[i], ' ');
      line += cell + "|";
    }
    out += line + "\n";
    if (r == 0) {
      std::string rule = "|";
      for (size_t w : widths) rule += std::string(w, '-') + "|";
      out += rule + "\n";
    }
  }
  return out;
}

}  // namespace tdb
