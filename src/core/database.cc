#include "core/database.h"

#include <chrono>

#include "exec/ddl_executor.h"
#include "exec/dml_executor.h"
#include "exec/exec_env.h"
#include "exec/morsel.h"
#include "exec/plan.h"
#include "exec/planner.h"
#include "exec/query_executor.h"
#include "exec/worker_pool.h"
#include "tquel/binder.h"
#include "tquel/parser.h"
#include "util/stringx.h"

namespace tdb {

Result<std::unique_ptr<Database>> Database::Open(const std::string& dir,
                                                 DatabaseOptions options) {
  Env* env = options.env != nullptr ? options.env : Env::Default();
  TDB_RETURN_NOT_OK(env->CreateDirIfMissing(dir));
  // A leftover journal means a statement was interrupted mid-write; roll
  // its pre-images back before anything reads the files.  This runs even
  // with durability off, so a crashed journaled run reopens clean under
  // any options.
  if (env->FileExists(Journal::PathFor(dir))) {
    TDB_RETURN_NOT_OK(Journal::Recover(env, dir));
  }
  std::unique_ptr<Database> db(new Database(env, dir, options));
  if (options.durability != DurabilityMode::kOff) {
    TDB_ASSIGN_OR_RETURN(db->journal_,
                         Journal::Open(env, dir, options.durability));
    db->catalog_.set_journal(db->journal_.get());
  }
  // Wire observability before any relation file opens, so every per-file
  // IoCounters is born with its PagerMetrics block attached.  When metrics
  // are disabled nothing is wired and every instrumentation pointer in the
  // storage layer stays null.
  if (obs::MetricsRegistry* m = db->metrics()) {
    db->registry_.set_metrics(m);
    if (db->journal_ != nullptr) db->journal_->set_metrics(m);
  }
  TDB_RETURN_NOT_OK(db->catalog_.Load());
  db->RestoreClock();
  return db;
}

void Database::PersistClock() const {
  if (journal_ != nullptr) {
    (void)journal_->BeforeFileRewrite(ClockPath());
  }
  (void)env_->WriteStringToFile(ClockPath(),
                                StrPrintf("%d", now_.seconds()));
}

void Database::RestoreClock() {
  if (!env_->FileExists(ClockPath())) return;
  auto text = env_->ReadFileToString(ClockPath());
  if (!text.ok()) return;
  int64_t secs = 0;
  if (ParseInt64(Trim(*text), &secs)) {
    TimePoint persisted(static_cast<int32_t>(secs));
    // Resume strictly after the last recorded transaction instant.
    if (persisted >= now_) now_ = persisted.AddSeconds(1);
  }
}

ExecEnv Database::MakeExecEnv() {
  ExecEnv exec{env_, dir_, &catalog_, &registry_, &relations_, now_,
               options_.buffer_frames, journal_.get(),
               EffectiveJoinMethod(options_.join_method)};
  exec.vector_exec = ResolveVectorExec(options_.vector_exec);
  exec.morsel_cap = ResolveMorselCapacity(options_.morsel_capacity);
  exec.exec_threads = ResolveExecThreads(options_.exec_threads);
  return exec;
}

Result<Relation*> Database::GetRelation(const std::string& name) {
  return MakeExecEnv().GetRelation(name);
}

Result<std::vector<ExecResult>> Database::ExecuteScript(
    const std::string& text) {
  // One-writer-per-Env rule (see IoRegistry): a Database, its registry, and
  // its logical clock belong to a single thread.
  registry_.CheckOwnerThread();
  TDB_ASSIGN_OR_RETURN(auto stmts, Parser::ParseScript(text));
  if (stmts.empty()) return Status::ParseError("empty statement");

  std::vector<ExecResult> results;
  results.reserve(stmts.size());
  for (size_t i = 0; i < stmts.size(); ++i) {
    Statement* stmt = stmts[i].get();
    const StatementContext ctx{static_cast<int>(i) + 1, stmt->source_offset};
    if (journal_ != nullptr) {
      Status begin = journal_->Begin();
      if (!begin.ok()) return begin.WithStatementContext(ctx);
    }
    Result<ExecResult> result = ExecResult{};
    if (obs::MetricsRegistry* m = metrics()) {
      obs::TraceSpan span(m, "db.statement");
      auto start = std::chrono::steady_clock::now();
      result = ExecuteStatement(stmt);
      m->counter("db.statements")->Increment();
      m->histogram("db.statement_nanos")
          ->Record(static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - start)
                  .count()));
    } else {
      result = ExecuteStatement(stmt);
    }
    if (journal_ != nullptr) {
      if (result.ok()) {
        Status commit = CommitStatement();
        if (!commit.ok()) result = commit;
      }
      if (!result.ok()) {
        Status rolled_back = RollbackStatement();
        if (!rolled_back.ok()) return rolled_back.WithStatementContext(ctx);
      }
    }
    if (!result.ok()) return result.status().WithStatementContext(ctx);
    results.push_back(std::move(*result));
  }
  return results;
}

Result<ExecResult> Database::ExecuteStatement(Statement* stmt) {
  ExecEnv exec = MakeExecEnv();
  Binder binder(&catalog_, &ranges_);
  bool mutating = false;
  ExecResult last;
  switch (stmt->kind) {
    case Statement::Kind::kRange: {
      auto* range = static_cast<RangeStmt*>(stmt);
      if (catalog_.Find(range->relation) == nullptr) {
        return Status::BindError("relation '" + range->relation +
                                 "' does not exist");
      }
      ranges_[ToLower(range->var)] = range->relation;
      last = ExecResult{};
      last.message = "range of " + range->var + " is " + range->relation;
      break;
    }
    case Statement::Kind::kRetrieve: {
      auto* retrieve = static_cast<RetrieveStmt*>(stmt);
      TDB_ASSIGN_OR_RETURN(BoundStatement bound,
                           binder.BindRetrieve(retrieve));
      QueryExecutor qexec(exec);
      TDB_ASSIGN_OR_RETURN(last, qexec.Retrieve(retrieve, bound));
      break;
    }
    case Statement::Kind::kAppend: {
      auto* append = static_cast<AppendStmt*>(stmt);
      TDB_ASSIGN_OR_RETURN(BoundStatement bound, binder.BindAppend(append));
      DmlExecutor dml(exec);
      TDB_ASSIGN_OR_RETURN(last, dml.Append(append, bound));
      mutating = true;
      break;
    }
    case Statement::Kind::kDelete: {
      auto* del = static_cast<DeleteStmt*>(stmt);
      TDB_ASSIGN_OR_RETURN(BoundStatement bound, binder.BindDelete(del));
      DmlExecutor dml(exec);
      TDB_ASSIGN_OR_RETURN(last, dml.Delete(del, bound));
      mutating = true;
      break;
    }
    case Statement::Kind::kReplace: {
      auto* replace = static_cast<ReplaceStmt*>(stmt);
      TDB_ASSIGN_OR_RETURN(BoundStatement bound,
                           binder.BindReplace(replace));
      DmlExecutor dml(exec);
      TDB_ASSIGN_OR_RETURN(last, dml.Replace(replace, bound));
      mutating = true;
      break;
    }
    case Statement::Kind::kCreate: {
      DdlExecutor ddl(exec);
      TDB_ASSIGN_OR_RETURN(last,
                           ddl.Create(*static_cast<CreateStmt*>(stmt)));
      break;
    }
    case Statement::Kind::kDestroy: {
      DdlExecutor ddl(exec);
      TDB_ASSIGN_OR_RETURN(
          last, ddl.Destroy(*static_cast<DestroyStmt*>(stmt)));
      break;
    }
    case Statement::Kind::kModify: {
      DdlExecutor ddl(exec);
      TDB_ASSIGN_OR_RETURN(last,
                           ddl.Modify(*static_cast<ModifyStmt*>(stmt)));
      break;
    }
    case Statement::Kind::kIndex: {
      DdlExecutor ddl(exec);
      TDB_ASSIGN_OR_RETURN(last,
                           ddl.Index(*static_cast<IndexStmt*>(stmt)));
      break;
    }
    case Statement::Kind::kHelp: {
      DdlExecutor ddl(exec);
      TDB_ASSIGN_OR_RETURN(last,
                           ddl.Help(*static_cast<HelpStmt*>(stmt)));
      break;
    }
    case Statement::Kind::kCopy: {
      auto* copy = static_cast<CopyStmt*>(stmt);
      DdlExecutor ddl(exec);
      TDB_ASSIGN_OR_RETURN(last, ddl.Copy(*copy));
      mutating = copy->from;
      break;
    }
    case Statement::Kind::kExplain: {
      // Plain explain plans the wrapped retrieve without executing it;
      // `explain analyze` runs it and annotates each node with its runtime
      // stats and wall time.  Either way the tree comes back as rows, one
      // line per node, and the query's own result rows are discarded.
      auto* explain = static_cast<ExplainStmt*>(stmt);
      TDB_ASSIGN_OR_RETURN(BoundStatement bound,
                           binder.BindRetrieve(explain->query.get()));
      std::shared_ptr<PhysicalPlan> plan;
      if (explain->analyze) {
        QueryExecutor qexec(exec);
        TDB_ASSIGN_OR_RETURN(ExecResult run,
                             qexec.Retrieve(explain->query.get(), bound));
        plan = std::const_pointer_cast<PhysicalPlan>(run.plan);
      } else {
        TDB_ASSIGN_OR_RETURN(plan, BuildPlan(*explain->query, bound, exec));
      }
      last = ExecResult{};
      last.result.columns.push_back("query plan");
      const std::string tree = explain->analyze
                                   ? plan->Describe(/*with_stats=*/true,
                                                    /*with_timing=*/true)
                                   : plan->Describe();
      for (const std::string& line : Split(tree, '\n')) {
        if (line.empty()) continue;
        Row row;
        row.push_back(Value::Char(line));
        last.result.rows.push_back(std::move(row));
      }
      last.message = "plan: " + plan->Summary();
      last.plan = std::move(plan);
      break;
    }
  }
  if (mutating) {
    PersistClock();
    if (options_.auto_advance_seconds > 0) {
      AdvanceSeconds(options_.auto_advance_seconds);
    }
  }
  return last;
}

Status Database::CommitStatement() {
  // Write back every dirty frame; each in-place overwrite first pre-images
  // the page through the journal hooks.
  for (auto& [_, rel] : relations_) {
    TDB_RETURN_NOT_OK(rel->FlushBuffers());
  }
  if (journal_->mode() == DurabilityMode::kJournalSync) {
    for (auto& [_, rel] : relations_) {
      TDB_RETURN_NOT_OK(rel->SyncFiles());
    }
  }
  return journal_->Commit();
}

Status Database::RollbackStatement() {
  // Dirty frames hold aborted content; drop them unwritten so destructor
  // flushes cannot leak them to disk, then close the handles (the files
  // are about to change underneath them).
  for (auto& [_, rel] : relations_) rel->DiscardBuffers();
  relations_.clear();
  TDB_RETURN_NOT_OK(journal_->Rollback());
  // The journal restored catalog.meta on disk; re-read it so the
  // in-memory image matches again.
  return catalog_.Load();
}

Result<ExecResult> Database::Execute(const std::string& text) {
  TDB_ASSIGN_OR_RETURN(auto results, ExecuteScript(text));
  return std::move(results.back());
}

Result<ResultSet> Database::Query(const std::string& text) {
  TDB_ASSIGN_OR_RETURN(ExecResult r, Execute(text));
  return r.result;
}

Result<std::shared_ptr<const PhysicalPlan>> Database::Plan(
    const std::string& text) {
  TDB_ASSIGN_OR_RETURN(auto stmts, Parser::ParseScript(text));
  if (stmts.size() != 1) {
    return Status::Invalid("Plan expects a single statement");
  }
  RetrieveStmt* retrieve = nullptr;
  if (stmts[0]->kind == Statement::Kind::kRetrieve) {
    retrieve = static_cast<RetrieveStmt*>(stmts[0].get());
  } else if (stmts[0]->kind == Statement::Kind::kExplain) {
    retrieve = static_cast<ExplainStmt*>(stmts[0].get())->query.get();
  } else {
    return Status::Invalid("Plan expects a retrieve statement");
  }
  Binder binder(&catalog_, &ranges_);
  TDB_ASSIGN_OR_RETURN(BoundStatement bound, binder.BindRetrieve(retrieve));
  // Journal included so relations opened (and cached) while planning carry
  // the same hooks as ones opened while executing.
  ExecEnv exec = MakeExecEnv();
  TDB_ASSIGN_OR_RETURN(std::shared_ptr<PhysicalPlan> plan,
                       BuildPlan(*retrieve, bound, exec));
  return std::shared_ptr<const PhysicalPlan>(std::move(plan));
}

Result<std::string> Database::Explain(const std::string& text) {
  TDB_ASSIGN_OR_RETURN(auto plan, Plan(text));
  return plan->Describe();
}

}  // namespace tdb
