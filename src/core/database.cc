#include "core/database.h"

#include "exec/exec_env.h"
#include "exec/plan.h"
#include "exec/planner.h"
#include "tquel/ast.h"
#include "tquel/binder.h"
#include "tquel/parser.h"
#include "util/stringx.h"

namespace tdb {

Result<std::unique_ptr<Database>> Database::Open(const std::string& dir,
                                                 DatabaseOptions options) {
  Env* env = options.env != nullptr ? options.env : Env::Default();
  TDB_RETURN_NOT_OK(env->CreateDirIfMissing(dir));
  // A leftover journal means a statement was interrupted mid-write; roll
  // its pre-images back before anything reads the files.  This runs even
  // with durability off, so a crashed journaled run reopens clean under
  // any options.
  if (env->FileExists(Journal::PathFor(dir))) {
    TDB_RETURN_NOT_OK(Journal::Recover(env, dir));
  }
  std::unique_ptr<Database> db(new Database(env, dir, options));
  TDB_RETURN_NOT_OK(db->ResolveStorageMode());
  if (options.durability != DurabilityMode::kOff) {
    TDB_ASSIGN_OR_RETURN(db->journal_,
                         Journal::Open(env, dir, options.durability));
    db->journal_->set_group_window_micros(options.group_commit_window_micros);
    db->journal_->set_page_size(db->storage_.page_size);
    db->catalog_.set_journal(db->journal_.get());
  }
  // Wire observability before any relation file opens, so every per-file
  // IoCounters is born with its PagerMetrics block attached.  When metrics
  // are disabled nothing is wired and every instrumentation pointer in the
  // storage layer stays null.  (The session constructor wires its own
  // registry the same way.)
  if (obs::MetricsRegistry* m = db->metrics()) {
    if (db->journal_ != nullptr) db->journal_->set_metrics(m);
  }
  TDB_RETURN_NOT_OK(db->catalog_.Load());
  db->RestoreClock();
  db->default_session_ =
      std::unique_ptr<Session>(new Session(db.get(), 0, SessionOptions{}));
  return db;
}

Status Database::ResolveStorageMode() {
  // Environment fallbacks for every unset field (options > TDB_* env).
  const DatabaseOptions envd = DatabaseOptions::FromEnv();
  uint32_t page_size =
      options_.page_size != 0 ? options_.page_size : envd.page_size;
  bool checksum =
      options_.page_checksum.value_or(envd.page_checksum.value_or(false));

  // The on-disk layout is fixed when the database is first created: a
  // `storage` meta file in the directory records it and is authoritative
  // on reopen, whatever the caller or environment asks for this run.
  const std::string meta_path = dir_ + "/storage";
  if (env_->FileExists(meta_path)) {
    TDB_ASSIGN_OR_RETURN(std::string text, env_->ReadFileToString(meta_path));
    for (const std::string& raw : Split(text, '\n')) {
      std::string line = Trim(raw);
      if (line.empty()) continue;
      size_t sp = line.find(' ');
      if (sp == std::string::npos) {
        return Status::Corruption("bad storage meta line: " + line);
      }
      std::string tag = line.substr(0, sp);
      int64_t v = 0;
      if (!ParseInt64(Trim(line.substr(sp + 1)), &v)) {
        return Status::Corruption("bad storage meta value: " + line);
      }
      if (tag == "page_size") {
        page_size = static_cast<uint32_t>(v);
      } else if (tag == "checksum") {
        checksum = v != 0;
      } else {
        return Status::Corruption("unknown storage meta tag: " + tag);
      }
    }
  } else if ((page_size != 0 && page_size != kPageSize) || checksum) {
    // A non-paper layout must survive reopen; the pure-default layout
    // writes nothing, keeping paper-mode directories byte-identical.
    TDB_RETURN_NOT_OK(env_->WriteStringToFile(
        meta_path, StrPrintf("page_size %u\nchecksum %d\n",
                             page_size == 0 ? kPageSize : page_size,
                             checksum ? 1 : 0)));
  }
  if (page_size == 0) page_size = kPageSize;
  if (page_size < 512 || page_size > 65536 || page_size % 256 != 0) {
    return Status::Invalid(StrPrintf("page size %u out of range", page_size));
  }

  int pool_frames =
      options_.pool_frames > 0 ? options_.pool_frames : envd.pool_frames;
  int file_cap =
      options_.pool_file_cap != 0 ? options_.pool_file_cap : envd.pool_file_cap;
  if (file_cap == 0) file_cap = 1;  // paper parity unless told otherwise
  if (pool_frames > 0) {
    BufferPool::Options po;
    po.total_frames = pool_frames;
    po.per_file_frames = file_cap < 0 ? 0 : file_cap;
    po.page_size = page_size;
    pool_ = std::make_unique<BufferPool>(po);
  }

  storage_.page_size = page_size;
  storage_.checksum = checksum;
  storage_.pool = pool_.get();
  storage_.readahead = options_.history_readahead > 0
                           ? options_.history_readahead
                           : envd.history_readahead;
  vacuum_partition_ = !options_.vacuum_partition.empty()
                          ? options_.vacuum_partition
                      : !envd.vacuum_partition.empty() ? envd.vacuum_partition
                                                       : "single";
  plan_cache_enabled_ =
      options_.plan_cache.value_or(envd.plan_cache.value_or(false));
  return Status::OK();
}

std::unique_ptr<Session> Database::CreateSession(SessionOptions options) {
  concurrent_.store(true, std::memory_order_release);
  const int id = next_session_id_.fetch_add(1, std::memory_order_relaxed);
  return std::unique_ptr<Session>(new Session(this, id, std::move(options)));
}

void Database::PersistClock() const {
  // clock_mu_ held across the file write so journal-off concurrent writers
  // cannot tear the clock file.  Lock order: journal_mu_ -> clock_mu_.
  std::lock_guard<std::mutex> lock(clock_mu_);
  if (journal_ != nullptr) {
    (void)journal_->BeforeFileRewrite(ClockPath());
  }
  (void)env_->WriteStringToFile(ClockPath(),
                                StrPrintf("%d", now_.seconds()));
}

void Database::RestoreClock() {
  if (!env_->FileExists(ClockPath())) return;
  auto text = env_->ReadFileToString(ClockPath());
  if (!text.ok()) return;
  int64_t secs = 0;
  if (ParseInt64(Trim(*text), &secs)) {
    TimePoint persisted(static_cast<int32_t>(secs));
    // Resume strictly after the last recorded transaction instant.
    if (persisted >= now_) now_ = persisted.AddSeconds(1);
  }
}

TimePoint Database::AcquireTxTime() {
  std::lock_guard<std::mutex> lock(clock_mu_);
  const TimePoint t = now_;
  if (options_.auto_advance_seconds > 0) {
    now_ = now_.AddSeconds(options_.auto_advance_seconds);
  }
  return t;
}

Result<Relation*> Database::GetRelation(const std::string& name) {
  return default_session_->MakeExecEnv(now()).GetRelation(name);
}

Result<std::vector<ExecResult>> Database::ExecuteScript(
    const std::string& text) {
  return default_session_->ExecuteScript(text);
}

Result<ExecResult> Database::Execute(const std::string& text) {
  return default_session_->Execute(text);
}

Result<ResultSet> Database::Query(const std::string& text) {
  return default_session_->Query(text);
}

Result<std::shared_ptr<const PhysicalPlan>> Database::Plan(
    const std::string& text) {
  TDB_ASSIGN_OR_RETURN(auto stmts, Parser::ParseScript(text));
  if (stmts.size() != 1) {
    return Status::Invalid("Plan expects a single statement");
  }
  RetrieveStmt* retrieve = nullptr;
  if (stmts[0]->kind == Statement::Kind::kRetrieve) {
    retrieve = static_cast<RetrieveStmt*>(stmts[0].get());
  } else if (stmts[0]->kind == Statement::Kind::kExplain) {
    retrieve = static_cast<ExplainStmt*>(stmts[0].get())->query.get();
  } else {
    return Status::Invalid("Plan expects a retrieve statement");
  }
  Binder binder(&catalog_, &default_session_->ranges_);
  TDB_ASSIGN_OR_RETURN(BoundStatement bound, binder.BindRetrieve(retrieve));
  // Journal included so relations opened (and cached) while planning carry
  // the same hooks as ones opened while executing.
  ExecEnv exec = default_session_->MakeExecEnv(now());
  TDB_ASSIGN_OR_RETURN(std::shared_ptr<PhysicalPlan> plan,
                       BuildPlan(*retrieve, bound, exec));
  return std::shared_ptr<const PhysicalPlan>(std::move(plan));
}

Result<std::string> Database::Explain(const std::string& text) {
  TDB_ASSIGN_OR_RETURN(auto plan, Plan(text));
  return plan->Describe();
}

}  // namespace tdb
