#ifndef CHRONOQUEL_TEMPORAL_DB_TYPE_H_
#define CHRONOQUEL_TEMPORAL_DB_TYPE_H_

namespace tdb {

/// The four database (relation) types of the taxonomy in Section 2 /
/// Figure 1 of the paper.  The type decides which implicit time attributes
/// a relation carries and which TQuel clauses apply to it:
///
///   static      -- no implicit attributes; no `when` / `as of`
///   rollback    -- transaction_start / transaction_stop; `as of`
///   historical  -- valid_from / valid_to (or valid_at); `when`, `valid`
///   temporal    -- all four; `when`, `valid`, `as of`
enum class DbType {
  kStatic,
  kRollback,
  kHistorical,
  kTemporal,
};

/// Historical and temporal relations model either intervals (valid_from /
/// valid_to) or instantaneous events (a single valid_at attribute).
enum class EntityKind {
  kInterval,
  kEvent,
};

const char* DbTypeName(DbType t);
const char* EntityKindName(EntityKind k);

/// True if relations of this type carry transaction time.
inline bool HasTransactionTime(DbType t) {
  return t == DbType::kRollback || t == DbType::kTemporal;
}

/// True if relations of this type carry valid time.
inline bool HasValidTime(DbType t) {
  return t == DbType::kHistorical || t == DbType::kTemporal;
}

}  // namespace tdb

#endif  // CHRONOQUEL_TEMPORAL_DB_TYPE_H_
