#include "temporal/db_type.h"

namespace tdb {

const char* DbTypeName(DbType t) {
  switch (t) {
    case DbType::kStatic:
      return "static";
    case DbType::kRollback:
      return "rollback";
    case DbType::kHistorical:
      return "historical";
    case DbType::kTemporal:
      return "temporal";
  }
  return "?";
}

const char* EntityKindName(EntityKind k) {
  switch (k) {
    case EntityKind::kInterval:
      return "interval";
    case EntityKind::kEvent:
      return "event";
  }
  return "?";
}

}  // namespace tdb
