#ifndef CHRONOQUEL_TEMPORAL_INTERVAL_H_
#define CHRONOQUEL_TEMPORAL_INTERVAL_H_

#include <algorithm>
#include <string>

#include "types/timepoint.h"

namespace tdb {

/// A half-open time interval [from, to).  Tuple lifespans (both valid time
/// and transaction time) are intervals; an event is the degenerate interval
/// [at, at] which we treat as containing exactly its instant.
///
/// TQuel's temporal operators (Section 3 of the paper) are defined here:
///   start of e   -> from
///   end of e     -> to
///   e1 overlap e2 -> the intersection (as an interval), or empty
///   e1 extend  e2 -> the span from the earliest start to the latest end
///   e1 precede e2 -> end of e1 <= start of e2
struct Interval {
  TimePoint from;
  TimePoint to;

  constexpr Interval() : from(TimePoint(0)), to(TimePoint(0)) {}
  constexpr Interval(TimePoint f, TimePoint t) : from(f), to(t) {}

  /// The degenerate interval for an event at `at`.
  static constexpr Interval Event(TimePoint at) { return Interval(at, at); }

  /// True when the interval contains no instant.  [t, t] (an event) is NOT
  /// empty; emptiness only arises from to < from (e.g. a vacuous overlap).
  bool empty() const { return to < from; }

  /// True if `t` lies within the interval.  For a proper interval the upper
  /// bound is exclusive; for an event interval [t, t] the instant itself is
  /// contained.
  bool Contains(TimePoint t) const {
    if (from == to) return t == from;
    return from <= t && t < to;
  }

  /// True for the degenerate event interval [t, t].
  bool IsEvent() const { return from == to; }

  /// Do the two intervals share at least one instant?  Handles the mixed
  /// event/interval cases: an event at `t` overlaps [f, to) iff f <= t < to;
  /// two proper half-open intervals overlap iff each starts before the
  /// other ends (sharing only an endpoint is not overlap).
  bool Overlaps(const Interval& other) const {
    if (empty() || other.empty()) return false;
    if (IsEvent() && other.IsEvent()) return from == other.from;
    if (IsEvent()) return other.Contains(from);
    if (other.IsEvent()) return Contains(other.from);
    return from < other.to && other.from < to;
  }

  /// `this` entirely before `other` (end <= other's start).
  bool Precedes(const Interval& other) const { return to <= other.from; }

  /// Intersection; empty() when disjoint.
  static Interval Intersect(const Interval& a, const Interval& b) {
    return Interval(std::max(a.from, b.from), std::min(a.to, b.to));
  }

  /// Smallest interval covering both ("extend").
  static Interval Span(const Interval& a, const Interval& b) {
    return Interval(std::min(a.from, b.from), std::max(a.to, b.to));
  }

  std::string ToString(TimeResolution res = TimeResolution::kSecond) const {
    return "[" + from.ToString(res) + ", " + to.ToString(res) + ")";
  }

  friend bool operator==(const Interval& a, const Interval& b) {
    return a.from == b.from && a.to == b.to;
  }
};

}  // namespace tdb

#endif  // CHRONOQUEL_TEMPORAL_INTERVAL_H_
