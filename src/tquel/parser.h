#ifndef CHRONOQUEL_TQUEL_PARSER_H_
#define CHRONOQUEL_TQUEL_PARSER_H_

#include <memory>
#include <string>
#include <vector>

#include "tquel/ast.h"
#include "tquel/token.h"
#include "util/status.h"

namespace tdb {

/// Recursive-descent parser for TQuel.  Statements may be separated by
/// optional ';'.  The grammar follows the paper's examples (Figures 2-4):
///
///   range of t is R
///   retrieve [into R] [unique] (targets) [valid ...] [where E]
///       [when TP] [as of TE [through TE]]
///   append [to] R (targets) [valid ...] [where E] [when TP]
///   delete t [where E] [when TP]
///   replace t (targets) [valid ...] [where E] [when TP]
///   create [persistent] [interval|event] R (a = i4, b = c96, ...)
///   destroy R
///   modify R to [twolevel] heap|hash|isam [on a]
///       [where fillfactor = n {, history = clustered|simple}]
///   index on R is I (a) [with structure = heap|hash {, levels = 1|2}]
///   copy R from|to "file"
class Parser {
 public:
  /// Parses a whole script (one or more statements).
  static Result<std::vector<std::unique_ptr<Statement>>> ParseScript(
      const std::string& text);

  /// Parses exactly one statement; trailing input is an error.
  static Result<std::unique_ptr<Statement>> ParseStatement(
      const std::string& text);
};

}  // namespace tdb

#endif  // CHRONOQUEL_TQUEL_PARSER_H_
