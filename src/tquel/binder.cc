#include "tquel/binder.h"

#include "util/stringx.h"

namespace tdb {

Result<int> Binder::BindVar(const std::string& var, BoundStatement* bound) {
  for (size_t i = 0; i < bound->vars.size(); ++i) {
    if (EqualsIgnoreCase(bound->vars[i].name, var)) return static_cast<int>(i);
  }
  auto it = ranges_->find(ToLower(var));
  if (it == ranges_->end()) {
    return Status::BindError("tuple variable '" + var +
                             "' has no range declaration");
  }
  const RelationMeta* rel = catalog_->Find(it->second);
  if (rel == nullptr) {
    return Status::BindError("relation '" + it->second + "' (range of '" +
                             var + "') does not exist");
  }
  bound->vars.push_back(BoundVar{var, rel});
  return static_cast<int>(bound->vars.size() - 1);
}

Status Binder::BindExpr(Expr* expr, BoundStatement* bound,
                        bool allow_aggregates) {
  switch (expr->kind) {
    case Expr::Kind::kConstInt:
    case Expr::Kind::kConstFloat:
    case Expr::Kind::kConstString:
    case Expr::Kind::kParam:
      return Status::OK();
    case Expr::Kind::kColumn: {
      TDB_ASSIGN_OR_RETURN(expr->var_index, BindVar(expr->var, bound));
      const RelationMeta* rel = bound->vars[expr->var_index].rel;
      expr->attr_index = rel->schema.FindAttr(expr->attr);
      if (expr->attr_index < 0) {
        return Status::BindError("relation '" + rel->name +
                                 "' has no attribute '" + expr->attr + "'");
      }
      expr->column_type =
          rel->schema.attr(static_cast<size_t>(expr->attr_index)).type;
      return Status::OK();
    }
    case Expr::Kind::kBinary:
      TDB_RETURN_NOT_OK(BindExpr(expr->left.get(), bound, allow_aggregates));
      return BindExpr(expr->right.get(), bound, allow_aggregates);
    case Expr::Kind::kUnary:
      return BindExpr(expr->left.get(), bound, allow_aggregates);
    case Expr::Kind::kAggregate: {
      if (!allow_aggregates) {
        return Status::BindError(
            "aggregates are only allowed in retrieve target lists");
      }
      TDB_RETURN_NOT_OK(BindExpr(expr->agg_arg.get(), bound, false));
      if (expr->agg_by != nullptr) {
        TDB_RETURN_NOT_OK(BindExpr(expr->agg_by.get(), bound, false));
      }
      if (expr->agg_where != nullptr) {
        TDB_RETURN_NOT_OK(BindExpr(expr->agg_where.get(), bound, false));
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable expression kind");
}

Status Binder::BindTemporalExpr(TemporalExpr* expr, BoundStatement* bound) {
  switch (expr->kind) {
    case TemporalExpr::Kind::kConst:
    case TemporalExpr::Kind::kNow:
      return Status::OK();
    case TemporalExpr::Kind::kVar: {
      TDB_ASSIGN_OR_RETURN(expr->var_index, BindVar(expr->var, bound));
      const RelationMeta* rel = bound->vars[expr->var_index].rel;
      if (!HasValidTime(rel->schema.db_type())) {
        return Status::BindError(
            "variable '" + expr->var + "' ranges over " +
            DbTypeName(rel->schema.db_type()) + " relation '" + rel->name +
            "', which carries no valid time");
      }
      return Status::OK();
    }
    case TemporalExpr::Kind::kStartOf:
    case TemporalExpr::Kind::kEndOf:
      return BindTemporalExpr(expr->left.get(), bound);
    case TemporalExpr::Kind::kOverlap:
    case TemporalExpr::Kind::kExtend:
      TDB_RETURN_NOT_OK(BindTemporalExpr(expr->left.get(), bound));
      return BindTemporalExpr(expr->right.get(), bound);
  }
  return Status::Internal("unreachable temporal expression kind");
}

Status Binder::BindTemporalPred(TemporalPred* pred, BoundStatement* bound) {
  switch (pred->kind) {
    case TemporalPred::Kind::kPrecede:
    case TemporalPred::Kind::kOverlap:
    case TemporalPred::Kind::kEqual:
      TDB_RETURN_NOT_OK(BindTemporalExpr(pred->lexpr.get(), bound));
      return BindTemporalExpr(pred->rexpr.get(), bound);
    case TemporalPred::Kind::kNonEmpty:
      return BindTemporalExpr(pred->lexpr.get(), bound);
    case TemporalPred::Kind::kAnd:
    case TemporalPred::Kind::kOr:
      TDB_RETURN_NOT_OK(BindTemporalPred(pred->left.get(), bound));
      return BindTemporalPred(pred->right.get(), bound);
    case TemporalPred::Kind::kNot:
      return BindTemporalPred(pred->left.get(), bound);
  }
  return Status::Internal("unreachable temporal predicate kind");
}

Status Binder::BindValid(ValidClause* valid, BoundStatement* bound) {
  TDB_RETURN_NOT_OK(BindTemporalExpr(valid->from.get(), bound));
  if (valid->to != nullptr) {
    TDB_RETURN_NOT_OK(BindTemporalExpr(valid->to.get(), bound));
  }
  return Status::OK();
}

namespace {

/// `as of` expressions must not mention tuple variables — the rollback
/// point is a constant of the statement.
Status CheckAsOfConstant(const TemporalExpr* expr) {
  if (expr == nullptr) return Status::OK();
  if (expr->kind == TemporalExpr::Kind::kVar) {
    return Status::BindError(
        "as-of expressions must be constant (no tuple variables)");
  }
  TDB_RETURN_NOT_OK(CheckAsOfConstant(expr->left.get()));
  return CheckAsOfConstant(expr->right.get());
}

}  // namespace

Status Binder::BindAsOf(AsOfClause* as_of, BoundStatement* bound) {
  (void)bound;
  TDB_RETURN_NOT_OK(CheckAsOfConstant(as_of->at.get()));
  return CheckAsOfConstant(as_of->through.get());
}

Status Binder::CheckWhenApplicable(const BoundStatement& bound) {
  for (const BoundVar& v : bound.vars) {
    if (!HasValidTime(v.rel->schema.db_type())) {
      return Status::BindError(
          "when/valid clause is not applicable: relation '" + v.rel->name +
          "' is " + DbTypeName(v.rel->schema.db_type()));
    }
  }
  return Status::OK();
}

Status Binder::CheckAsOfApplicable(const BoundStatement& bound) {
  for (const BoundVar& v : bound.vars) {
    if (!HasTransactionTime(v.rel->schema.db_type())) {
      return Status::BindError(
          "as-of clause is not applicable: relation '" + v.rel->name +
          "' is " + DbTypeName(v.rel->schema.db_type()));
    }
  }
  return Status::OK();
}

Result<BoundStatement> Binder::BindRetrieve(RetrieveStmt* stmt) {
  BoundStatement bound;

  // Expand `t.all` targets into one target per user attribute.
  std::vector<TargetItem> expanded;
  for (TargetItem& item : stmt->targets) {
    Expr* e = item.expr.get();
    if (e->kind == Expr::Kind::kColumn && EqualsIgnoreCase(e->attr, "all")) {
      auto it = ranges_->find(ToLower(e->var));
      if (it == ranges_->end()) {
        return Status::BindError("tuple variable '" + e->var +
                                 "' has no range declaration");
      }
      const RelationMeta* rel = catalog_->Find(it->second);
      if (rel == nullptr) {
        return Status::BindError("relation '" + it->second +
                                 "' does not exist");
      }
      for (size_t i = 0; i < rel->schema.num_user_attrs(); ++i) {
        TargetItem t;
        t.name = rel->schema.attr(i).name;
        t.expr = Expr::Column(e->var, rel->schema.attr(i).name);
        expanded.push_back(std::move(t));
      }
      continue;
    }
    expanded.push_back(std::move(item));
  }
  stmt->targets = std::move(expanded);

  // Derive missing target names and make them unique.
  for (TargetItem& item : stmt->targets) {
    if (item.name.empty()) {
      item.name = item.expr->kind == Expr::Kind::kColumn ? item.expr->attr
                                                         : "expr";
    }
  }
  for (size_t i = 0; i < stmt->targets.size(); ++i) {
    int dup = 0;
    for (size_t j = 0; j < i; ++j) {
      if (EqualsIgnoreCase(stmt->targets[j].name, stmt->targets[i].name)) {
        ++dup;
      }
    }
    if (dup > 0) {
      stmt->targets[i].name += StrPrintf("_%d", dup + 1);
    }
  }

  for (TargetItem& item : stmt->targets) {
    TDB_RETURN_NOT_OK(BindExpr(item.expr.get(), &bound,
                               /*allow_aggregates=*/true));
  }
  if (stmt->where != nullptr) {
    TDB_RETURN_NOT_OK(BindExpr(stmt->where.get(), &bound, false));
  }
  if (stmt->when != nullptr) {
    TDB_RETURN_NOT_OK(BindTemporalPred(stmt->when.get(), &bound));
  }
  if (stmt->valid.has_value()) {
    TDB_RETURN_NOT_OK(BindValid(&*stmt->valid, &bound));
  }
  if (stmt->as_of.has_value()) {
    TDB_RETURN_NOT_OK(BindAsOf(&*stmt->as_of, &bound));
  }

  if (stmt->when != nullptr || stmt->valid.has_value()) {
    TDB_RETURN_NOT_OK(CheckWhenApplicable(bound));
  }
  if (stmt->as_of.has_value()) {
    TDB_RETURN_NOT_OK(CheckAsOfApplicable(bound));
  }
  if (stmt->targets.empty()) {
    return Status::BindError("retrieve needs a non-empty target list");
  }
  if (!stmt->into.empty() && catalog_->Find(stmt->into) != nullptr) {
    return Status::BindError("retrieve into: relation '" + stmt->into +
                             "' already exists");
  }
  return bound;
}

namespace {

Status CheckTargetNames(const std::vector<TargetItem>& targets,
                        const RelationMeta* rel) {
  for (const TargetItem& item : targets) {
    if (item.name.empty()) {
      return Status::BindError(
          "append/replace targets must be written attr = expr");
    }
    int idx = rel->schema.FindAttr(item.name);
    if (idx < 0 || static_cast<size_t>(idx) >= rel->schema.num_user_attrs()) {
      return Status::BindError("relation '" + rel->name +
                               "' has no user attribute '" + item.name + "'");
    }
  }
  return Status::OK();
}

}  // namespace

Result<BoundStatement> Binder::BindAppend(AppendStmt* stmt) {
  BoundStatement bound;
  const RelationMeta* rel = catalog_->Find(stmt->relation);
  if (rel == nullptr) {
    return Status::BindError("relation '" + stmt->relation +
                             "' does not exist");
  }
  TDB_RETURN_NOT_OK(CheckTargetNames(stmt->targets, rel));
  for (TargetItem& item : stmt->targets) {
    TDB_RETURN_NOT_OK(BindExpr(item.expr.get(), &bound, false));
  }
  if (stmt->where != nullptr) {
    TDB_RETURN_NOT_OK(BindExpr(stmt->where.get(), &bound, false));
  }
  if (stmt->when != nullptr) {
    TDB_RETURN_NOT_OK(BindTemporalPred(stmt->when.get(), &bound));
    TDB_RETURN_NOT_OK(CheckWhenApplicable(bound));
  }
  if (stmt->valid.has_value()) {
    if (!HasValidTime(rel->schema.db_type())) {
      return Status::BindError("valid clause is not applicable: relation '" +
                               rel->name + "' is " +
                               DbTypeName(rel->schema.db_type()));
    }
    TDB_RETURN_NOT_OK(BindValid(&*stmt->valid, &bound));
  }
  return bound;
}

Result<BoundStatement> Binder::BindDelete(DeleteStmt* stmt) {
  BoundStatement bound;
  TDB_ASSIGN_OR_RETURN(int idx, BindVar(stmt->var, &bound));
  const RelationMeta* rel = bound.vars[static_cast<size_t>(idx)].rel;
  if (stmt->where != nullptr) {
    TDB_RETURN_NOT_OK(BindExpr(stmt->where.get(), &bound, false));
  }
  if (stmt->when != nullptr) {
    TDB_RETURN_NOT_OK(BindTemporalPred(stmt->when.get(), &bound));
    TDB_RETURN_NOT_OK(CheckWhenApplicable(bound));
  }
  if (stmt->valid.has_value()) {
    if (!HasValidTime(rel->schema.db_type())) {
      return Status::BindError("valid clause is not applicable: relation '" +
                               rel->name + "' is " +
                               DbTypeName(rel->schema.db_type()));
    }
    TDB_RETURN_NOT_OK(BindValid(&*stmt->valid, &bound));
  }
  return bound;
}

Result<BoundStatement> Binder::BindReplace(ReplaceStmt* stmt) {
  BoundStatement bound;
  TDB_ASSIGN_OR_RETURN(int idx, BindVar(stmt->var, &bound));
  const RelationMeta* rel = bound.vars[static_cast<size_t>(idx)].rel;
  TDB_RETURN_NOT_OK(CheckTargetNames(stmt->targets, rel));
  for (TargetItem& item : stmt->targets) {
    TDB_RETURN_NOT_OK(BindExpr(item.expr.get(), &bound, false));
  }
  if (stmt->where != nullptr) {
    TDB_RETURN_NOT_OK(BindExpr(stmt->where.get(), &bound, false));
  }
  if (stmt->when != nullptr) {
    TDB_RETURN_NOT_OK(BindTemporalPred(stmt->when.get(), &bound));
    TDB_RETURN_NOT_OK(CheckWhenApplicable(bound));
  }
  if (stmt->valid.has_value()) {
    if (!HasValidTime(rel->schema.db_type())) {
      return Status::BindError("valid clause is not applicable: relation '" +
                               rel->name + "' is " +
                               DbTypeName(rel->schema.db_type()));
    }
    TDB_RETURN_NOT_OK(BindValid(&*stmt->valid, &bound));
  }
  return bound;
}

}  // namespace tdb
