#include "tquel/ast.h"

#include "util/stringx.h"

namespace tdb {

namespace {

const char* OpName(ExprOp op) {
  switch (op) {
    case ExprOp::kAdd:
      return "+";
    case ExprOp::kSub:
      return "-";
    case ExprOp::kMul:
      return "*";
    case ExprOp::kDiv:
      return "/";
    case ExprOp::kMod:
      return "%";
    case ExprOp::kEq:
      return "=";
    case ExprOp::kNe:
      return "!=";
    case ExprOp::kLt:
      return "<";
    case ExprOp::kLe:
      return "<=";
    case ExprOp::kGt:
      return ">";
    case ExprOp::kGe:
      return ">=";
    case ExprOp::kAnd:
      return "and";
    case ExprOp::kOr:
      return "or";
    case ExprOp::kNot:
      return "not";
    case ExprOp::kNeg:
      return "-";
  }
  return "?";
}

const char* AggName(AggFunc f) {
  switch (f) {
    case AggFunc::kCount:
      return "count";
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kAvg:
      return "avg";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
    case AggFunc::kAny:
      return "any";
  }
  return "?";
}

}  // namespace

std::unique_ptr<Expr> Expr::Int(int64_t v) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kConstInt;
  e->int_val = v;
  return e;
}

std::unique_ptr<Expr> Expr::Float(double v) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kConstFloat;
  e->float_val = v;
  return e;
}

std::unique_ptr<Expr> Expr::Str(std::string v) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kConstString;
  e->str_val = std::move(v);
  return e;
}

std::unique_ptr<Expr> Expr::Column(std::string var, std::string attr) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kColumn;
  e->var = std::move(var);
  e->attr = std::move(attr);
  return e;
}

std::unique_ptr<Expr> Expr::Binary(ExprOp op, std::unique_ptr<Expr> l,
                                   std::unique_ptr<Expr> r) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kBinary;
  e->op = op;
  e->left = std::move(l);
  e->right = std::move(r);
  return e;
}

std::unique_ptr<Expr> Expr::Unary(ExprOp op, std::unique_ptr<Expr> operand) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kUnary;
  e->op = op;
  e->left = std::move(operand);
  return e;
}

std::unique_ptr<Expr> Expr::Param(int index) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kParam;
  e->param_index = index;
  return e;
}

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kConstInt:
      return StrPrintf("%lld", static_cast<long long>(int_val));
    case Kind::kConstFloat:
      return StrPrintf("%g", float_val);
    case Kind::kConstString:
      return "\"" + str_val + "\"";
    case Kind::kColumn:
      return var.empty() ? attr : var + "." + attr;
    case Kind::kBinary:
      return "(" + left->ToString() + " " + OpName(op) + " " +
             right->ToString() + ")";
    case Kind::kUnary:
      return std::string("(") + OpName(op) + " " + left->ToString() + ")";
    case Kind::kAggregate: {
      std::string s = std::string(AggName(agg)) + "(" +
                      (agg_arg != nullptr ? agg_arg->ToString() : "?");
      if (agg_by != nullptr) s += " by " + agg_by->ToString();
      if (agg_where != nullptr) s += " where " + agg_where->ToString();
      return s + ")";
    }
    case Kind::kParam:
      return StrPrintf("$%d", param_index);
  }
  return "?";
}

std::unique_ptr<TemporalExpr> TemporalExpr::Var(std::string name) {
  auto e = std::make_unique<TemporalExpr>();
  e->kind = Kind::kVar;
  e->var = std::move(name);
  return e;
}

std::unique_ptr<TemporalExpr> TemporalExpr::Const(TimePoint tp) {
  auto e = std::make_unique<TemporalExpr>();
  e->kind = Kind::kConst;
  e->const_time = tp;
  return e;
}

std::unique_ptr<TemporalExpr> TemporalExpr::Now() {
  auto e = std::make_unique<TemporalExpr>();
  e->kind = Kind::kNow;
  return e;
}

std::unique_ptr<TemporalExpr> TemporalExpr::Make(
    Kind k, std::unique_ptr<TemporalExpr> l, std::unique_ptr<TemporalExpr> r) {
  auto e = std::make_unique<TemporalExpr>();
  e->kind = k;
  e->left = std::move(l);
  e->right = std::move(r);
  return e;
}

std::string TemporalExpr::ToString() const {
  switch (kind) {
    case Kind::kVar:
      return var;
    case Kind::kConst:
      return "\"" + const_time.ToString() + "\"";
    case Kind::kNow:
      return "\"now\"";
    case Kind::kStartOf:
      return "start of " + left->ToString();
    case Kind::kEndOf:
      return "end of " + left->ToString();
    case Kind::kOverlap:
      return "(" + left->ToString() + " overlap " + right->ToString() + ")";
    case Kind::kExtend:
      return "(" + left->ToString() + " extend " + right->ToString() + ")";
  }
  return "?";
}

std::string TemporalPred::ToString() const {
  switch (kind) {
    case Kind::kPrecede:
      return "(" + lexpr->ToString() + " precede " + rexpr->ToString() + ")";
    case Kind::kOverlap:
      return "(" + lexpr->ToString() + " overlap " + rexpr->ToString() + ")";
    case Kind::kEqual:
      return "(" + lexpr->ToString() + " equal " + rexpr->ToString() + ")";
    case Kind::kAnd:
      return "(" + left->ToString() + " and " + right->ToString() + ")";
    case Kind::kOr:
      return "(" + left->ToString() + " or " + right->ToString() + ")";
    case Kind::kNot:
      return "(not " + left->ToString() + ")";
    case Kind::kNonEmpty:
      return lexpr->ToString();
  }
  return "?";
}

}  // namespace tdb
