#ifndef CHRONOQUEL_TQUEL_BINDER_H_
#define CHRONOQUEL_TQUEL_BINDER_H_

#include <map>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "tquel/ast.h"
#include "util/status.h"

namespace tdb {

/// One tuple variable participating in a bound statement.
struct BoundVar {
  std::string name;          // the range variable
  const RelationMeta* rel;   // its relation
};

/// Output of binding: the distinct variables the statement touches, in
/// first-reference order.  Column references and temporal variable
/// references inside the AST are annotated with var_index / attr_index.
struct BoundStatement {
  std::vector<BoundVar> vars;
};

/// Semantic analysis: resolves range variables against the catalog, resolves
/// attribute names, and enforces the clause/database-type applicability
/// rules of Figure 1:
///   * `when` and `valid` require valid time (historical / temporal),
///   * `as of` requires transaction time (rollback / temporal),
///   * static relations accept neither.
class Binder {
 public:
  /// `ranges` maps range-variable name (lower case) -> relation name, as
  /// declared by prior `range of` statements.
  Binder(const Catalog* catalog,
         const std::map<std::string, std::string>* ranges)
      : catalog_(catalog), ranges_(ranges) {}

  Result<BoundStatement> BindRetrieve(RetrieveStmt* stmt);
  Result<BoundStatement> BindAppend(AppendStmt* stmt);
  Result<BoundStatement> BindDelete(DeleteStmt* stmt);
  Result<BoundStatement> BindReplace(ReplaceStmt* stmt);

 private:
  /// Resolves `var` to a BoundVar (appending to `bound` on first use).
  Result<int> BindVar(const std::string& var, BoundStatement* bound);

  Status BindExpr(Expr* expr, BoundStatement* bound, bool allow_aggregates);
  Status BindTemporalExpr(TemporalExpr* expr, BoundStatement* bound);
  Status BindTemporalPred(TemporalPred* pred, BoundStatement* bound);
  Status BindValid(ValidClause* valid, BoundStatement* bound);
  Status BindAsOf(AsOfClause* as_of, BoundStatement* bound);

  /// Applicability checks after all vars are known.
  Status CheckWhenApplicable(const BoundStatement& bound);
  Status CheckAsOfApplicable(const BoundStatement& bound);

  const Catalog* catalog_;
  const std::map<std::string, std::string>* ranges_;
};

}  // namespace tdb

#endif  // CHRONOQUEL_TQUEL_BINDER_H_
