#include "tquel/parser.h"

#include "tquel/lexer.h"
#include "util/stringx.h"

namespace tdb {

namespace {

/// Stateful parse over a token stream.
class ParserImpl {
 public:
  explicit ParserImpl(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::vector<std::unique_ptr<Statement>>> ParseScript() {
    std::vector<std::unique_ptr<Statement>> stmts;
    while (true) {
      while (Peek().Is(TokenType::kSemi)) Advance();
      if (Peek().Is(TokenType::kEnd)) break;
      size_t offset = Peek().pos;
      auto stmt = ParseStatement();
      if (!stmt.ok()) {
        return stmt.status().WithStatementContext(
            {static_cast<int>(stmts.size()) + 1, offset});
      }
      (*stmt)->source_offset = offset;
      stmts.push_back(std::move(*stmt));
    }
    return stmts;
  }

  Result<std::unique_ptr<Statement>> ParseStatement() {
    const Token& t = Peek();
    if (!t.Is(TokenType::kIdent)) {
      return Err("expected a statement keyword");
    }
    if (t.IsKeyword("range")) return ParseRange();
    if (t.IsKeyword("retrieve")) return ParseRetrieve();
    if (t.IsKeyword("append")) return ParseAppend();
    if (t.IsKeyword("delete")) return ParseDelete();
    if (t.IsKeyword("replace")) return ParseReplace();
    if (t.IsKeyword("create")) return ParseCreate();
    if (t.IsKeyword("destroy")) return ParseDestroy();
    if (t.IsKeyword("modify")) return ParseModify();
    if (t.IsKeyword("index")) return ParseIndex();
    if (t.IsKeyword("copy")) return ParseCopy();
    if (t.IsKeyword("help")) return ParseHelp();
    if (t.IsKeyword("explain")) return ParseExplain();
    if (t.IsKeyword("vacuum")) return ParseVacuum();
    if (t.IsKeyword("prepare")) return ParsePrepare();
    if (t.IsKeyword("execute")) return ParseExecute();
    if (t.IsKeyword("deallocate")) return ParseDeallocate();
    return Err("unknown statement '" + t.text + "'");
  }

  bool AtEnd() const { return Peek().Is(TokenType::kEnd); }

 private:
  // --- token plumbing -----------------------------------------------------

  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }

  Status Err(const std::string& msg) const {
    return Status::ParseError(
        StrPrintf("%s (near offset %zu, at %s '%s')", msg.c_str(), Peek().pos,
                  TokenTypeName(Peek().type), Peek().text.c_str()));
  }

  Status Expect(TokenType t, const char* what) {
    if (!Peek().Is(t)) return Err(std::string("expected ") + what);
    Advance();
    return Status::OK();
  }

  Result<std::string> ExpectIdent(const char* what) {
    if (!Peek().Is(TokenType::kIdent)) {
      return Err(std::string("expected ") + what);
    }
    return Advance().text;
  }

  Status ExpectKeyword(const char* kw) {
    if (!Peek().IsKeyword(kw)) {
      return Err(std::string("expected keyword '") + kw + "'");
    }
    Advance();
    return Status::OK();
  }

  bool ConsumeKeyword(const char* kw) {
    if (Peek().IsKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }

  /// True when the next token ends a statement (another statement keyword,
  /// ';', or end of input).  Used to decide when optional clauses stop.
  bool AtClauseBoundary() const {
    const Token& t = Peek();
    if (t.Is(TokenType::kEnd) || t.Is(TokenType::kSemi)) return true;
    static const char* kStarters[] = {"range",  "retrieve", "append",
                                      "delete", "replace",  "create",
                                      "destroy", "modify",  "index", "copy",
                                      "help",   "explain",  "vacuum",
                                      "prepare", "execute", "deallocate"};
    for (const char* kw : kStarters) {
      if (t.IsKeyword(kw)) return true;
    }
    return false;
  }

  // --- statements ----------------------------------------------------------

  Result<std::unique_ptr<Statement>> ParseRange() {
    Advance();  // range
    TDB_RETURN_NOT_OK(ExpectKeyword("of"));
    auto stmt = std::make_unique<RangeStmt>();
    TDB_ASSIGN_OR_RETURN(stmt->var, ExpectIdent("a tuple variable"));
    TDB_RETURN_NOT_OK(ExpectKeyword("is"));
    TDB_ASSIGN_OR_RETURN(stmt->relation, ExpectIdent("a relation name"));
    return std::unique_ptr<Statement>(std::move(stmt));
  }

  Result<std::unique_ptr<Statement>> ParseRetrieve() {
    Advance();  // retrieve
    auto stmt = std::make_unique<RetrieveStmt>();
    if (ConsumeKeyword("into")) {
      TDB_ASSIGN_OR_RETURN(stmt->into, ExpectIdent("a relation name"));
    }
    if (ConsumeKeyword("unique")) stmt->unique = true;
    TDB_ASSIGN_OR_RETURN(stmt->targets, ParseTargetList());
    TDB_RETURN_NOT_OK(ParseTailClauses(&stmt->valid, &stmt->where, &stmt->when,
                                       &stmt->as_of, &stmt->sort_by));
    return std::unique_ptr<Statement>(std::move(stmt));
  }

  Result<std::unique_ptr<Statement>> ParseAppend() {
    Advance();  // append
    ConsumeKeyword("to");
    auto stmt = std::make_unique<AppendStmt>();
    TDB_ASSIGN_OR_RETURN(stmt->relation, ExpectIdent("a relation name"));
    TDB_ASSIGN_OR_RETURN(stmt->targets, ParseTargetList());
    TDB_RETURN_NOT_OK(
        ParseTailClauses(&stmt->valid, &stmt->where, &stmt->when, nullptr));
    return std::unique_ptr<Statement>(std::move(stmt));
  }

  Result<std::unique_ptr<Statement>> ParseDelete() {
    Advance();  // delete
    auto stmt = std::make_unique<DeleteStmt>();
    TDB_ASSIGN_OR_RETURN(stmt->var, ExpectIdent("a tuple variable"));
    TDB_RETURN_NOT_OK(
        ParseTailClauses(&stmt->valid, &stmt->where, &stmt->when, nullptr));
    return std::unique_ptr<Statement>(std::move(stmt));
  }

  Result<std::unique_ptr<Statement>> ParseReplace() {
    Advance();  // replace
    auto stmt = std::make_unique<ReplaceStmt>();
    TDB_ASSIGN_OR_RETURN(stmt->var, ExpectIdent("a tuple variable"));
    TDB_ASSIGN_OR_RETURN(stmt->targets, ParseTargetList());
    TDB_RETURN_NOT_OK(
        ParseTailClauses(&stmt->valid, &stmt->where, &stmt->when, nullptr));
    return std::unique_ptr<Statement>(std::move(stmt));
  }

  Result<std::unique_ptr<Statement>> ParseCreate() {
    Advance();  // create
    auto stmt = std::make_unique<CreateStmt>();
    if (ConsumeKeyword("persistent")) stmt->persistent = true;
    if (ConsumeKeyword("interval")) {
      stmt->has_valid_time = true;
    } else if (ConsumeKeyword("event")) {
      stmt->has_valid_time = true;
      stmt->event = true;
    }
    TDB_ASSIGN_OR_RETURN(stmt->relation, ExpectIdent("a relation name"));
    TDB_RETURN_NOT_OK(Expect(TokenType::kLParen, "'('"));
    while (true) {
      CreateStmt::AttrDef def;
      TDB_ASSIGN_OR_RETURN(def.name, ExpectIdent("an attribute name"));
      TDB_RETURN_NOT_OK(Expect(TokenType::kEq, "'='"));
      TDB_ASSIGN_OR_RETURN(def.type_name, ExpectIdent("a type (i4, c96, ...)"));
      stmt->attrs.push_back(std::move(def));
      if (Peek().Is(TokenType::kComma)) {
        Advance();
        continue;
      }
      break;
    }
    TDB_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
    return std::unique_ptr<Statement>(std::move(stmt));
  }

  Result<std::unique_ptr<Statement>> ParseDestroy() {
    Advance();  // destroy
    auto stmt = std::make_unique<DestroyStmt>();
    TDB_ASSIGN_OR_RETURN(stmt->relation, ExpectIdent("a relation name"));
    return std::unique_ptr<Statement>(std::move(stmt));
  }

  Result<std::unique_ptr<Statement>> ParseVacuum() {
    Advance();  // vacuum
    auto stmt = std::make_unique<VacuumStmt>();
    TDB_ASSIGN_OR_RETURN(stmt->relation, ExpectIdent("a relation name"));
    if (ConsumeKeyword("before")) {
      TDB_ASSIGN_OR_RETURN(stmt->before, ParseTemporalExpr());
    }
    return std::unique_ptr<Statement>(std::move(stmt));
  }

  Result<std::unique_ptr<Statement>> ParseModify() {
    Advance();  // modify
    auto stmt = std::make_unique<ModifyStmt>();
    TDB_ASSIGN_OR_RETURN(stmt->relation, ExpectIdent("a relation name"));
    TDB_RETURN_NOT_OK(ExpectKeyword("to"));
    if (ConsumeKeyword("twolevel")) stmt->two_level = true;
    TDB_ASSIGN_OR_RETURN(stmt->organization,
                         ExpectIdent("heap, hash, isam, or btree"));
    stmt->organization = ToLower(stmt->organization);
    if (stmt->organization != "heap" && stmt->organization != "hash" &&
        stmt->organization != "isam" && stmt->organization != "btree") {
      return Err("unknown storage organization '" + stmt->organization + "'");
    }
    if (ConsumeKeyword("on")) {
      TDB_ASSIGN_OR_RETURN(stmt->key_attr, ExpectIdent("a key attribute"));
    }
    if (ConsumeKeyword("where")) {
      while (true) {
        TDB_ASSIGN_OR_RETURN(std::string param, ExpectIdent("a parameter"));
        TDB_RETURN_NOT_OK(Expect(TokenType::kEq, "'='"));
        if (EqualsIgnoreCase(param, "fillfactor")) {
          if (!Peek().Is(TokenType::kInt)) return Err("expected an integer");
          stmt->fillfactor = static_cast<int>(Advance().int_val);
        } else if (EqualsIgnoreCase(param, "history")) {
          TDB_ASSIGN_OR_RETURN(std::string v,
                               ExpectIdent("clustered or simple"));
          if (EqualsIgnoreCase(v, "clustered")) {
            stmt->clustered_history = true;
          } else if (EqualsIgnoreCase(v, "simple")) {
            stmt->clustered_history = false;
          } else {
            return Err("history must be clustered or simple");
          }
        } else {
          return Err("unknown modify parameter '" + param + "'");
        }
        if (Peek().Is(TokenType::kComma) || Peek().IsKeyword("and")) {
          Advance();
          continue;
        }
        break;
      }
    }
    return std::unique_ptr<Statement>(std::move(stmt));
  }

  Result<std::unique_ptr<Statement>> ParseIndex() {
    Advance();  // index
    TDB_RETURN_NOT_OK(ExpectKeyword("on"));
    auto stmt = std::make_unique<IndexStmt>();
    TDB_ASSIGN_OR_RETURN(stmt->relation, ExpectIdent("a relation name"));
    TDB_RETURN_NOT_OK(ExpectKeyword("is"));
    TDB_ASSIGN_OR_RETURN(stmt->index_name, ExpectIdent("an index name"));
    TDB_RETURN_NOT_OK(Expect(TokenType::kLParen, "'('"));
    TDB_ASSIGN_OR_RETURN(stmt->attr, ExpectIdent("an attribute"));
    TDB_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
    if (ConsumeKeyword("with")) {
      while (true) {
        TDB_ASSIGN_OR_RETURN(std::string param, ExpectIdent("a parameter"));
        TDB_RETURN_NOT_OK(Expect(TokenType::kEq, "'='"));
        if (EqualsIgnoreCase(param, "structure")) {
          TDB_ASSIGN_OR_RETURN(std::string v, ExpectIdent("heap or hash"));
          stmt->structure = ToLower(v);
          if (stmt->structure != "heap" && stmt->structure != "hash") {
            return Err("index structure must be heap or hash");
          }
        } else if (EqualsIgnoreCase(param, "levels")) {
          if (!Peek().Is(TokenType::kInt)) return Err("expected an integer");
          stmt->levels = static_cast<int>(Advance().int_val);
          if (stmt->levels != 1 && stmt->levels != 2) {
            return Err("index levels must be 1 or 2");
          }
        } else {
          return Err("unknown index parameter '" + param + "'");
        }
        if (Peek().Is(TokenType::kComma) || Peek().IsKeyword("and")) {
          Advance();
          continue;
        }
        break;
      }
    }
    return std::unique_ptr<Statement>(std::move(stmt));
  }

  Result<std::unique_ptr<Statement>> ParseHelp() {
    Advance();  // help
    auto stmt = std::make_unique<HelpStmt>();
    if (Peek().Is(TokenType::kIdent) && !AtClauseBoundary()) {
      stmt->relation = Advance().text;
    }
    return std::unique_ptr<Statement>(std::move(stmt));
  }

  Result<std::unique_ptr<Statement>> ParseExplain() {
    Advance();  // explain
    bool analyze = ConsumeKeyword("analyze");
    if (!Peek().IsKeyword("retrieve")) {
      return Err("explain supports only retrieve statements");
    }
    TDB_ASSIGN_OR_RETURN(auto query, ParseRetrieve());
    auto stmt = std::make_unique<ExplainStmt>();
    stmt->analyze = analyze;
    stmt->query.reset(static_cast<RetrieveStmt*>(query.release()));
    return std::unique_ptr<Statement>(std::move(stmt));
  }

  Result<std::unique_ptr<Statement>> ParsePrepare() {
    Advance();  // prepare
    auto stmt = std::make_unique<PrepareStmt>();
    TDB_ASSIGN_OR_RETURN(stmt->name, ExpectIdent("a statement name"));
    TDB_RETURN_NOT_OK(ExpectKeyword("as"));
    if (AtEnd() || Peek().Is(TokenType::kSemi)) {
      return Err("expected a statement to prepare");
    }
    TDB_ASSIGN_OR_RETURN(stmt->inner, ParseStatement());
    return std::unique_ptr<Statement>(std::move(stmt));
  }

  Result<std::unique_ptr<Statement>> ParseExecute() {
    Advance();  // execute
    auto stmt = std::make_unique<ExecPreparedStmt>();
    TDB_ASSIGN_OR_RETURN(stmt->name, ExpectIdent("a prepared statement name"));
    if (Peek().Is(TokenType::kLParen)) {
      Advance();  // (
      if (!Peek().Is(TokenType::kRParen)) {
        while (true) {
          TDB_ASSIGN_OR_RETURN(auto arg, ParseExpr());
          stmt->args.push_back(std::move(arg));
          if (Peek().Is(TokenType::kComma)) {
            Advance();
            continue;
          }
          break;
        }
      }
      TDB_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
    }
    return std::unique_ptr<Statement>(std::move(stmt));
  }

  Result<std::unique_ptr<Statement>> ParseDeallocate() {
    Advance();  // deallocate
    auto stmt = std::make_unique<DeallocateStmt>();
    TDB_ASSIGN_OR_RETURN(stmt->name, ExpectIdent("a prepared statement name"));
    return std::unique_ptr<Statement>(std::move(stmt));
  }

  Result<std::unique_ptr<Statement>> ParseCopy() {
    Advance();  // copy
    auto stmt = std::make_unique<CopyStmt>();
    TDB_ASSIGN_OR_RETURN(stmt->relation, ExpectIdent("a relation name"));
    if (ConsumeKeyword("from")) {
      stmt->from = true;
    } else if (ConsumeKeyword("to")) {
      stmt->from = false;
    } else {
      return Err("expected 'from' or 'to'");
    }
    if (!Peek().Is(TokenType::kString)) return Err("expected a file name");
    stmt->path = Advance().text;
    return std::unique_ptr<Statement>(std::move(stmt));
  }

  // --- clauses -------------------------------------------------------------

  /// Parses the optional clause tail in any order (each at most once).
  Status ParseTailClauses(std::optional<ValidClause>* valid,
                          std::unique_ptr<Expr>* where,
                          std::unique_ptr<TemporalPred>* when,
                          std::optional<AsOfClause>* as_of,
                          std::vector<SortKey>* sort_by = nullptr) {
    while (!AtClauseBoundary()) {
      if (sort_by != nullptr && Peek().IsKeyword("sort") && sort_by->empty()) {
        Advance();
        TDB_RETURN_NOT_OK(ExpectKeyword("by"));
        while (true) {
          SortKey key;
          TDB_ASSIGN_OR_RETURN(key.target, ExpectIdent("a target name"));
          if (ConsumeKeyword("desc")) {
            key.descending = true;
          } else {
            ConsumeKeyword("asc");
          }
          sort_by->push_back(std::move(key));
          if (Peek().Is(TokenType::kComma)) {
            Advance();
            continue;
          }
          break;
        }
        continue;
      }
      if (valid != nullptr && Peek().IsKeyword("valid") &&
          !valid->has_value()) {
        Advance();
        ValidClause clause;
        if (ConsumeKeyword("at")) {
          clause.at = true;
          TDB_ASSIGN_OR_RETURN(clause.from, ParseTemporalExpr());
        } else {
          TDB_RETURN_NOT_OK(ExpectKeyword("from"));
          TDB_ASSIGN_OR_RETURN(clause.from, ParseTemporalExpr());
          TDB_RETURN_NOT_OK(ExpectKeyword("to"));
          TDB_ASSIGN_OR_RETURN(clause.to, ParseTemporalExpr());
        }
        *valid = std::move(clause);
        continue;
      }
      if (where != nullptr && Peek().IsKeyword("where") && *where == nullptr) {
        Advance();
        TDB_ASSIGN_OR_RETURN(*where, ParseExpr());
        continue;
      }
      if (when != nullptr && Peek().IsKeyword("when") && *when == nullptr) {
        Advance();
        TDB_ASSIGN_OR_RETURN(*when, ParseTemporalPred());
        continue;
      }
      if (as_of != nullptr && Peek().IsKeyword("as") && !as_of->has_value()) {
        Advance();
        TDB_RETURN_NOT_OK(ExpectKeyword("of"));
        AsOfClause clause;
        TDB_ASSIGN_OR_RETURN(clause.at, ParseTemporalExpr());
        if (ConsumeKeyword("through")) {
          TDB_ASSIGN_OR_RETURN(clause.through, ParseTemporalExpr());
        }
        *as_of = std::move(clause);
        continue;
      }
      return Err("unexpected input after statement");
    }
    return Status::OK();
  }

  Result<std::vector<TargetItem>> ParseTargetList() {
    TDB_RETURN_NOT_OK(Expect(TokenType::kLParen, "'('"));
    std::vector<TargetItem> items;
    while (true) {
      TargetItem item;
      // `name = expr` vs a bare expression (e.g. `h.id`).
      if (Peek().Is(TokenType::kIdent) && Peek(1).Is(TokenType::kEq)) {
        item.name = Advance().text;
        Advance();  // '='
      }
      TDB_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      items.push_back(std::move(item));
      if (Peek().Is(TokenType::kComma)) {
        Advance();
        continue;
      }
      break;
    }
    TDB_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
    return items;
  }

  // --- value expressions ---------------------------------------------------

  Result<std::unique_ptr<Expr>> ParseExpr() { return ParseOr(); }

  Result<std::unique_ptr<Expr>> ParseOr() {
    TDB_ASSIGN_OR_RETURN(auto lhs, ParseAnd());
    while (Peek().IsKeyword("or")) {
      Advance();
      TDB_ASSIGN_OR_RETURN(auto rhs, ParseAnd());
      lhs = Expr::Binary(ExprOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<std::unique_ptr<Expr>> ParseAnd() {
    TDB_ASSIGN_OR_RETURN(auto lhs, ParseNot());
    while (Peek().IsKeyword("and")) {
      Advance();
      TDB_ASSIGN_OR_RETURN(auto rhs, ParseNot());
      lhs = Expr::Binary(ExprOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<std::unique_ptr<Expr>> ParseNot() {
    if (Peek().IsKeyword("not")) {
      Advance();
      TDB_ASSIGN_OR_RETURN(auto operand, ParseNot());
      return Expr::Unary(ExprOp::kNot, std::move(operand));
    }
    return ParseComparison();
  }

  Result<std::unique_ptr<Expr>> ParseComparison() {
    TDB_ASSIGN_OR_RETURN(auto lhs, ParseAdditive());
    ExprOp op;
    switch (Peek().type) {
      case TokenType::kEq:
        op = ExprOp::kEq;
        break;
      case TokenType::kNe:
        op = ExprOp::kNe;
        break;
      case TokenType::kLt:
        op = ExprOp::kLt;
        break;
      case TokenType::kLe:
        op = ExprOp::kLe;
        break;
      case TokenType::kGt:
        op = ExprOp::kGt;
        break;
      case TokenType::kGe:
        op = ExprOp::kGe;
        break;
      default:
        return lhs;
    }
    Advance();
    TDB_ASSIGN_OR_RETURN(auto rhs, ParseAdditive());
    return Expr::Binary(op, std::move(lhs), std::move(rhs));
  }

  Result<std::unique_ptr<Expr>> ParseAdditive() {
    TDB_ASSIGN_OR_RETURN(auto lhs, ParseMultiplicative());
    while (Peek().Is(TokenType::kPlus) || Peek().Is(TokenType::kMinus)) {
      ExprOp op = Peek().Is(TokenType::kPlus) ? ExprOp::kAdd : ExprOp::kSub;
      Advance();
      TDB_ASSIGN_OR_RETURN(auto rhs, ParseMultiplicative());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<std::unique_ptr<Expr>> ParseMultiplicative() {
    TDB_ASSIGN_OR_RETURN(auto lhs, ParseUnary());
    while (Peek().Is(TokenType::kStar) || Peek().Is(TokenType::kSlash) ||
           Peek().Is(TokenType::kPercent)) {
      ExprOp op = Peek().Is(TokenType::kStar)
                      ? ExprOp::kMul
                      : (Peek().Is(TokenType::kSlash) ? ExprOp::kDiv
                                                      : ExprOp::kMod);
      Advance();
      TDB_ASSIGN_OR_RETURN(auto rhs, ParseUnary());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<std::unique_ptr<Expr>> ParseUnary() {
    if (Peek().Is(TokenType::kMinus)) {
      Advance();
      TDB_ASSIGN_OR_RETURN(auto operand, ParseUnary());
      return Expr::Unary(ExprOp::kNeg, std::move(operand));
    }
    return ParsePrimary();
  }

  static bool AggFromName(const std::string& name, AggFunc* out) {
    struct {
      const char* name;
      AggFunc f;
    } static const kAggs[] = {
        {"count", AggFunc::kCount}, {"sum", AggFunc::kSum},
        {"avg", AggFunc::kAvg},     {"min", AggFunc::kMin},
        {"max", AggFunc::kMax},     {"any", AggFunc::kAny},
    };
    for (const auto& a : kAggs) {
      if (EqualsIgnoreCase(name, a.name)) {
        *out = a.f;
        return true;
      }
    }
    return false;
  }

  Result<std::unique_ptr<Expr>> ParsePrimary() {
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kInt: {
        auto e = Expr::Int(t.int_val);
        Advance();
        return e;
      }
      case TokenType::kFloat: {
        auto e = Expr::Float(t.float_val);
        Advance();
        return e;
      }
      case TokenType::kString: {
        auto e = Expr::Str(t.text);
        Advance();
        return e;
      }
      case TokenType::kParam: {
        auto e = Expr::Param(static_cast<int>(t.int_val));
        Advance();
        return e;
      }
      case TokenType::kLParen: {
        Advance();
        TDB_ASSIGN_OR_RETURN(auto e, ParseExpr());
        TDB_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
        return e;
      }
      case TokenType::kIdent: {
        AggFunc agg;
        if (Peek(1).Is(TokenType::kLParen) && AggFromName(t.text, &agg)) {
          Advance();  // name
          Advance();  // '('
          auto e = std::make_unique<Expr>();
          e->kind = Expr::Kind::kAggregate;
          e->agg = agg;
          TDB_ASSIGN_OR_RETURN(e->agg_arg, ParseExpr());
          if (ConsumeKeyword("by")) {
            TDB_ASSIGN_OR_RETURN(e->agg_by, ParseExpr());
          }
          if (ConsumeKeyword("where")) {
            TDB_ASSIGN_OR_RETURN(e->agg_where, ParseExpr());
          }
          TDB_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
          return std::unique_ptr<Expr>(std::move(e));
        }
        if (Peek(1).Is(TokenType::kDot)) {
          std::string var = Advance().text;
          Advance();  // '.'
          TDB_ASSIGN_OR_RETURN(std::string attr,
                               ExpectIdent("an attribute name"));
          return Expr::Column(std::move(var), std::move(attr));
        }
        return Err("unexpected identifier '" + t.text +
                   "' (column references are written var.attr)");
      }
      default:
        return Err("expected an expression");
    }
  }

  // --- temporal expressions --------------------------------------------------

  Result<std::unique_ptr<TemporalPred>> ParseTemporalPred() {
    return ParseTemporalOr();
  }

  Result<std::unique_ptr<TemporalPred>> ParseTemporalOr() {
    TDB_ASSIGN_OR_RETURN(auto lhs, ParseTemporalAnd());
    while (Peek().IsKeyword("or")) {
      Advance();
      TDB_ASSIGN_OR_RETURN(auto rhs, ParseTemporalAnd());
      auto p = std::make_unique<TemporalPred>();
      p->kind = TemporalPred::Kind::kOr;
      p->left = std::move(lhs);
      p->right = std::move(rhs);
      lhs = std::move(p);
    }
    return lhs;
  }

  Result<std::unique_ptr<TemporalPred>> ParseTemporalAnd() {
    TDB_ASSIGN_OR_RETURN(auto lhs, ParseTemporalNot());
    while (Peek().IsKeyword("and")) {
      Advance();
      TDB_ASSIGN_OR_RETURN(auto rhs, ParseTemporalNot());
      auto p = std::make_unique<TemporalPred>();
      p->kind = TemporalPred::Kind::kAnd;
      p->left = std::move(lhs);
      p->right = std::move(rhs);
      lhs = std::move(p);
    }
    return lhs;
  }

  Result<std::unique_ptr<TemporalPred>> ParseTemporalNot() {
    if (Peek().IsKeyword("not")) {
      Advance();
      TDB_ASSIGN_OR_RETURN(auto operand, ParseTemporalNot());
      auto p = std::make_unique<TemporalPred>();
      p->kind = TemporalPred::Kind::kNot;
      p->left = std::move(operand);
      return p;
    }
    return ParseTemporalBase();
  }

  Result<std::unique_ptr<TemporalPred>> ParseTemporalBase() {
    // A '(' here is ambiguous: it may group a whole predicate
    // (`(a precede b or c equal d) and ...`) or merely a temporal
    // expression (`(h overlap i) precede x`).  Try the predicate reading
    // first and backtrack unless it consumed a closing ')' after a real
    // predicate — a parenthesized kNonEmpty is indistinguishable from a
    // parenthesized expression, so it is left to the expression path
    // (which yields the same meaning and keeps `precede` chains working).
    if (Peek().Is(TokenType::kLParen)) {
      size_t saved = pos_;
      Advance();  // (
      auto inner = ParseTemporalPred();
      if (inner.ok() && Peek().Is(TokenType::kRParen) &&
          (*inner)->kind != TemporalPred::Kind::kNonEmpty) {
        Advance();  // )
        return std::move(*inner);
      }
      pos_ = saved;
    }
    TDB_ASSIGN_OR_RETURN(auto lhs, ParseTemporalExpr());
    auto p = std::make_unique<TemporalPred>();
    if (ConsumeKeyword("precede")) {
      p->kind = TemporalPred::Kind::kPrecede;
    } else if (ConsumeKeyword("equal")) {
      p->kind = TemporalPred::Kind::kEqual;
    } else {
      // Bare interval expression: tests non-emptiness, e.g.
      // `when h overlap i` or `when h overlap "now"`.
      p->kind = TemporalPred::Kind::kNonEmpty;
      p->lexpr = std::move(lhs);
      return p;
    }
    p->lexpr = std::move(lhs);
    TDB_ASSIGN_OR_RETURN(p->rexpr, ParseTemporalExpr());
    return p;
  }

  Result<std::unique_ptr<TemporalExpr>> ParseTemporalExpr() {
    TDB_ASSIGN_OR_RETURN(auto lhs, ParseTemporalPrimary());
    while (Peek().IsKeyword("overlap") || Peek().IsKeyword("extend")) {
      TemporalExpr::Kind k = Peek().IsKeyword("overlap")
                                 ? TemporalExpr::Kind::kOverlap
                                 : TemporalExpr::Kind::kExtend;
      Advance();
      TDB_ASSIGN_OR_RETURN(auto rhs, ParseTemporalPrimary());
      lhs = TemporalExpr::Make(k, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<std::unique_ptr<TemporalExpr>> ParseTemporalPrimary() {
    const Token& t = Peek();
    if (t.IsKeyword("start") || t.IsKeyword("end")) {
      TemporalExpr::Kind k = t.IsKeyword("start") ? TemporalExpr::Kind::kStartOf
                                                  : TemporalExpr::Kind::kEndOf;
      Advance();
      TDB_RETURN_NOT_OK(ExpectKeyword("of"));
      TDB_ASSIGN_OR_RETURN(auto operand, ParseTemporalPrimary());
      return TemporalExpr::Make(k, std::move(operand), nullptr);
    }
    if (t.Is(TokenType::kLParen)) {
      Advance();
      TDB_ASSIGN_OR_RETURN(auto e, ParseTemporalExpr());
      TDB_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
      return e;
    }
    if (t.Is(TokenType::kString)) {
      std::string text = Advance().text;
      if (EqualsIgnoreCase(Trim(text), "now")) return TemporalExpr::Now();
      TDB_ASSIGN_OR_RETURN(TimePoint tp, TimePoint::Parse(text));
      return TemporalExpr::Const(tp);
    }
    if (t.Is(TokenType::kIdent)) {
      if (t.IsKeyword("now")) {
        Advance();
        return TemporalExpr::Now();
      }
      return TemporalExpr::Var(Advance().text);
    }
    return Err("expected a temporal expression");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::vector<std::unique_ptr<Statement>>> Parser::ParseScript(
    const std::string& text) {
  TDB_ASSIGN_OR_RETURN(auto tokens, Lexer::Tokenize(text));
  ParserImpl impl(std::move(tokens));
  return impl.ParseScript();
}

Result<std::unique_ptr<Statement>> Parser::ParseStatement(
    const std::string& text) {
  TDB_ASSIGN_OR_RETURN(auto stmts, ParseScript(text));
  if (stmts.size() != 1) {
    return Status::ParseError(
        StrPrintf("expected exactly one statement, got %zu", stmts.size()));
  }
  return std::move(stmts[0]);
}

}  // namespace tdb
