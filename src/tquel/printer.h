#ifndef CHRONOQUEL_TQUEL_PRINTER_H_
#define CHRONOQUEL_TQUEL_PRINTER_H_

#include <string>

#include "tquel/ast.h"

namespace tdb {

/// Renders a statement back into canonical TQuel text.  The output always
/// re-parses to an equivalent statement (the printer/parser round-trip is
/// property-tested), which makes it safe for logging, the shell's history,
/// and catalog-level replay.
std::string PrintStatement(const Statement& stmt);

/// Clause-level helpers (used by PrintStatement and tests).
std::string PrintValid(const ValidClause& valid);
std::string PrintAsOf(const AsOfClause& as_of);
std::string PrintTargets(const std::vector<TargetItem>& targets);

}  // namespace tdb

#endif  // CHRONOQUEL_TQUEL_PRINTER_H_
