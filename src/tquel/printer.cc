#include "tquel/printer.h"

#include "util/stringx.h"

namespace tdb {

namespace {

/// Predicate printing is precedence aware (not > and > or) instead of
/// parenthesized: TQuel's when-grammar has no predicate parentheses, so
/// this is what keeps the output re-parseable.  Trees produced by the
/// parser never place an `or` under an `and`, so no precedence is lost.
std::string PrintPred(const TemporalPred& pred) {
  switch (pred.kind) {
    case TemporalPred::Kind::kPrecede:
      return pred.lexpr->ToString() + " precede " + pred.rexpr->ToString();
    case TemporalPred::Kind::kOverlap:
      return pred.lexpr->ToString() + " overlap " + pred.rexpr->ToString();
    case TemporalPred::Kind::kEqual:
      return pred.lexpr->ToString() + " equal " + pred.rexpr->ToString();
    case TemporalPred::Kind::kNonEmpty:
      return pred.lexpr->ToString();
    case TemporalPred::Kind::kAnd:
      return PrintPred(*pred.left) + " and " + PrintPred(*pred.right);
    case TemporalPred::Kind::kOr:
      return PrintPred(*pred.left) + " or " + PrintPred(*pred.right);
    case TemporalPred::Kind::kNot:
      return "not " + PrintPred(*pred.left);
  }
  return "?";
}

std::string PrintTail(const std::optional<ValidClause>& valid,
                      const Expr* where, const TemporalPred* when,
                      const std::optional<AsOfClause>& as_of) {
  std::string out;
  if (valid.has_value()) out += " " + PrintValid(*valid);
  if (where != nullptr) out += " where " + where->ToString();
  if (when != nullptr) out += " when " + PrintPred(*when);
  if (as_of.has_value()) out += " " + PrintAsOf(*as_of);
  return out;
}

}  // namespace

std::string PrintValid(const ValidClause& valid) {
  if (valid.at) return "valid at " + valid.from->ToString();
  return "valid from " + valid.from->ToString() + " to " +
         valid.to->ToString();
}

std::string PrintAsOf(const AsOfClause& as_of) {
  std::string out = "as of " + as_of.at->ToString();
  if (as_of.through != nullptr) out += " through " + as_of.through->ToString();
  return out;
}

std::string PrintTargets(const std::vector<TargetItem>& targets) {
  std::string out = "(";
  for (size_t i = 0; i < targets.size(); ++i) {
    if (i > 0) out += ", ";
    if (!targets[i].name.empty()) out += targets[i].name + " = ";
    out += targets[i].expr->ToString();
  }
  return out + ")";
}

std::string PrintStatement(const Statement& stmt) {
  switch (stmt.kind) {
    case Statement::Kind::kRange: {
      const auto& s = static_cast<const RangeStmt&>(stmt);
      return "range of " + s.var + " is " + s.relation;
    }
    case Statement::Kind::kRetrieve: {
      const auto& s = static_cast<const RetrieveStmt&>(stmt);
      std::string out = "retrieve";
      if (!s.into.empty()) out += " into " + s.into;
      if (s.unique) out += " unique";
      out += " " + PrintTargets(s.targets);
      out += PrintTail(s.valid, s.where.get(), s.when.get(), s.as_of);
      if (!s.sort_by.empty()) {
        out += " sort by ";
        for (size_t i = 0; i < s.sort_by.size(); ++i) {
          if (i > 0) out += ", ";
          out += s.sort_by[i].target;
          if (s.sort_by[i].descending) out += " desc";
        }
      }
      return out;
    }
    case Statement::Kind::kAppend: {
      const auto& s = static_cast<const AppendStmt&>(stmt);
      return "append to " + s.relation + " " + PrintTargets(s.targets) +
             PrintTail(s.valid, s.where.get(), s.when.get(), std::nullopt);
    }
    case Statement::Kind::kDelete: {
      const auto& s = static_cast<const DeleteStmt&>(stmt);
      return "delete " + s.var +
             PrintTail(s.valid, s.where.get(), s.when.get(), std::nullopt);
    }
    case Statement::Kind::kReplace: {
      const auto& s = static_cast<const ReplaceStmt&>(stmt);
      return "replace " + s.var + " " + PrintTargets(s.targets) +
             PrintTail(s.valid, s.where.get(), s.when.get(), std::nullopt);
    }
    case Statement::Kind::kCreate: {
      const auto& s = static_cast<const CreateStmt&>(stmt);
      std::string out = "create ";
      if (s.persistent) out += "persistent ";
      if (s.has_valid_time) out += s.event ? "event " : "interval ";
      out += s.relation + " (";
      for (size_t i = 0; i < s.attrs.size(); ++i) {
        if (i > 0) out += ", ";
        out += s.attrs[i].name + " = " + s.attrs[i].type_name;
      }
      return out + ")";
    }
    case Statement::Kind::kDestroy: {
      const auto& s = static_cast<const DestroyStmt&>(stmt);
      return "destroy " + s.relation;
    }
    case Statement::Kind::kModify: {
      const auto& s = static_cast<const ModifyStmt&>(stmt);
      std::string out = "modify " + s.relation + " to ";
      if (s.two_level) out += "twolevel ";
      out += s.organization;
      if (!s.key_attr.empty()) out += " on " + s.key_attr;
      out += StrPrintf(" where fillfactor = %d", s.fillfactor);
      if (s.two_level) {
        out += std::string(", history = ") +
               (s.clustered_history ? "clustered" : "simple");
      }
      return out;
    }
    case Statement::Kind::kIndex: {
      const auto& s = static_cast<const IndexStmt&>(stmt);
      return StrPrintf("index on %s is %s (%s) with structure = %s, "
                       "levels = %d",
                       s.relation.c_str(), s.index_name.c_str(),
                       s.attr.c_str(), s.structure.c_str(), s.levels);
    }
    case Statement::Kind::kHelp: {
      const auto& s = static_cast<const HelpStmt&>(stmt);
      return s.relation.empty() ? "help" : "help " + s.relation;
    }
    case Statement::Kind::kCopy: {
      const auto& s = static_cast<const CopyStmt&>(stmt);
      return "copy " + s.relation + (s.from ? " from \"" : " to \"") +
             s.path + "\"";
    }
    case Statement::Kind::kExplain: {
      const auto& s = static_cast<const ExplainStmt&>(stmt);
      return "explain " + PrintStatement(*s.query);
    }
  }
  return "?";
}

}  // namespace tdb
