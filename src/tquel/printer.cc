#include "tquel/printer.h"

#include "util/stringx.h"

namespace tdb {

namespace {

/// Binding strength of a predicate node: or < and < not < atoms.
int PredPrecedence(const TemporalPred& pred) {
  switch (pred.kind) {
    case TemporalPred::Kind::kOr:
      return 0;
    case TemporalPred::Kind::kAnd:
      return 1;
    case TemporalPred::Kind::kNot:
      return 2;
    default:
      return 3;
  }
}

/// Predicate printing is precedence aware: a subtree that binds looser
/// than its context is parenthesized, so ANY tree shape — including ones a
/// naive reading of the input could not produce, like an `or` under an
/// `and` — round-trips through the parser's predicate-grouping parens.
/// Atoms are never wrapped (a parenthesized non-empty test stays on the
/// expression grammar's parens, where `(` already belongs).
std::string PrintPred(const TemporalPred& pred, int parent_prec = 0) {
  int prec = PredPrecedence(pred);
  std::string out;
  switch (pred.kind) {
    case TemporalPred::Kind::kPrecede:
      out = pred.lexpr->ToString() + " precede " + pred.rexpr->ToString();
      break;
    case TemporalPred::Kind::kOverlap:
      out = pred.lexpr->ToString() + " overlap " + pred.rexpr->ToString();
      break;
    case TemporalPred::Kind::kEqual:
      out = pred.lexpr->ToString() + " equal " + pred.rexpr->ToString();
      break;
    case TemporalPred::Kind::kNonEmpty:
      out = pred.lexpr->ToString();
      break;
    case TemporalPred::Kind::kAnd:
    case TemporalPred::Kind::kOr: {
      const char* word = pred.kind == TemporalPred::Kind::kAnd ? " and "
                                                               : " or ";
      // Left-associative: the left child may sit at this level, the right
      // child must bind strictly tighter to reproduce the same tree.
      out = PrintPred(*pred.left, prec) + word +
            PrintPred(*pred.right, prec + 1);
      break;
    }
    case TemporalPred::Kind::kNot:
      out = "not " + PrintPred(*pred.left, prec);
      break;
  }
  if (prec < parent_prec) return "(" + out + ")";
  return out;
}

std::string PrintTail(const std::optional<ValidClause>& valid,
                      const Expr* where, const TemporalPred* when,
                      const std::optional<AsOfClause>& as_of) {
  std::string out;
  if (valid.has_value()) out += " " + PrintValid(*valid);
  if (where != nullptr) out += " where " + where->ToString();
  if (when != nullptr) out += " when " + PrintPred(*when);
  if (as_of.has_value()) out += " " + PrintAsOf(*as_of);
  return out;
}

}  // namespace

std::string PrintValid(const ValidClause& valid) {
  if (valid.at) return "valid at " + valid.from->ToString();
  return "valid from " + valid.from->ToString() + " to " +
         valid.to->ToString();
}

std::string PrintAsOf(const AsOfClause& as_of) {
  std::string out = "as of " + as_of.at->ToString();
  if (as_of.through != nullptr) out += " through " + as_of.through->ToString();
  return out;
}

std::string PrintTargets(const std::vector<TargetItem>& targets) {
  std::string out = "(";
  for (size_t i = 0; i < targets.size(); ++i) {
    if (i > 0) out += ", ";
    if (!targets[i].name.empty()) out += targets[i].name + " = ";
    out += targets[i].expr->ToString();
  }
  return out + ")";
}

std::string PrintStatement(const Statement& stmt) {
  switch (stmt.kind) {
    case Statement::Kind::kRange: {
      const auto& s = static_cast<const RangeStmt&>(stmt);
      return "range of " + s.var + " is " + s.relation;
    }
    case Statement::Kind::kRetrieve: {
      const auto& s = static_cast<const RetrieveStmt&>(stmt);
      std::string out = "retrieve";
      if (!s.into.empty()) out += " into " + s.into;
      if (s.unique) out += " unique";
      out += " " + PrintTargets(s.targets);
      out += PrintTail(s.valid, s.where.get(), s.when.get(), s.as_of);
      if (!s.sort_by.empty()) {
        out += " sort by ";
        for (size_t i = 0; i < s.sort_by.size(); ++i) {
          if (i > 0) out += ", ";
          out += s.sort_by[i].target;
          if (s.sort_by[i].descending) out += " desc";
        }
      }
      return out;
    }
    case Statement::Kind::kAppend: {
      const auto& s = static_cast<const AppendStmt&>(stmt);
      return "append to " + s.relation + " " + PrintTargets(s.targets) +
             PrintTail(s.valid, s.where.get(), s.when.get(), std::nullopt);
    }
    case Statement::Kind::kDelete: {
      const auto& s = static_cast<const DeleteStmt&>(stmt);
      return "delete " + s.var +
             PrintTail(s.valid, s.where.get(), s.when.get(), std::nullopt);
    }
    case Statement::Kind::kReplace: {
      const auto& s = static_cast<const ReplaceStmt&>(stmt);
      return "replace " + s.var + " " + PrintTargets(s.targets) +
             PrintTail(s.valid, s.where.get(), s.when.get(), std::nullopt);
    }
    case Statement::Kind::kCreate: {
      const auto& s = static_cast<const CreateStmt&>(stmt);
      std::string out = "create ";
      if (s.persistent) out += "persistent ";
      if (s.has_valid_time) out += s.event ? "event " : "interval ";
      out += s.relation + " (";
      for (size_t i = 0; i < s.attrs.size(); ++i) {
        if (i > 0) out += ", ";
        out += s.attrs[i].name + " = " + s.attrs[i].type_name;
      }
      return out + ")";
    }
    case Statement::Kind::kDestroy: {
      const auto& s = static_cast<const DestroyStmt&>(stmt);
      return "destroy " + s.relation;
    }
    case Statement::Kind::kVacuum: {
      const auto& s = static_cast<const VacuumStmt&>(stmt);
      std::string out = "vacuum " + s.relation;
      if (s.before != nullptr) out += " before " + s.before->ToString();
      return out;
    }
    case Statement::Kind::kModify: {
      const auto& s = static_cast<const ModifyStmt&>(stmt);
      std::string out = "modify " + s.relation + " to ";
      if (s.two_level) out += "twolevel ";
      out += s.organization;
      if (!s.key_attr.empty()) out += " on " + s.key_attr;
      out += StrPrintf(" where fillfactor = %d", s.fillfactor);
      if (s.two_level) {
        out += std::string(", history = ") +
               (s.clustered_history ? "clustered" : "simple");
      }
      return out;
    }
    case Statement::Kind::kIndex: {
      const auto& s = static_cast<const IndexStmt&>(stmt);
      return StrPrintf("index on %s is %s (%s) with structure = %s, "
                       "levels = %d",
                       s.relation.c_str(), s.index_name.c_str(),
                       s.attr.c_str(), s.structure.c_str(), s.levels);
    }
    case Statement::Kind::kHelp: {
      const auto& s = static_cast<const HelpStmt&>(stmt);
      return s.relation.empty() ? "help" : "help " + s.relation;
    }
    case Statement::Kind::kCopy: {
      const auto& s = static_cast<const CopyStmt&>(stmt);
      return "copy " + s.relation + (s.from ? " from \"" : " to \"") +
             s.path + "\"";
    }
    case Statement::Kind::kExplain: {
      const auto& s = static_cast<const ExplainStmt&>(stmt);
      return std::string("explain ") + (s.analyze ? "analyze " : "") +
             PrintStatement(*s.query);
    }
    case Statement::Kind::kPrepare: {
      const auto& s = static_cast<const PrepareStmt&>(stmt);
      return "prepare " + s.name + " as " + PrintStatement(*s.inner);
    }
    case Statement::Kind::kExecPrepared: {
      const auto& s = static_cast<const ExecPreparedStmt&>(stmt);
      std::string out = "execute " + s.name;
      if (!s.args.empty()) {
        out += " (";
        for (size_t i = 0; i < s.args.size(); ++i) {
          if (i > 0) out += ", ";
          out += s.args[i]->ToString();
        }
        out += ")";
      }
      return out;
    }
    case Statement::Kind::kDeallocate: {
      const auto& s = static_cast<const DeallocateStmt&>(stmt);
      return "deallocate " + s.name;
    }
  }
  return "?";
}

}  // namespace tdb
