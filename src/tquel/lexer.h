#ifndef CHRONOQUEL_TQUEL_LEXER_H_
#define CHRONOQUEL_TQUEL_LEXER_H_

#include <string>
#include <vector>

#include "tquel/token.h"
#include "util/status.h"

namespace tdb {

/// Tokenizes one TQuel statement (or a ';'-separated script; ';' ends a
/// statement and is consumed by the parser driver).  Comments run from
/// "/*" to "*/" as in Quel.
class Lexer {
 public:
  /// Tokenizes all of `text`; the resulting vector always ends with kEnd.
  static Result<std::vector<Token>> Tokenize(const std::string& text);
};

}  // namespace tdb

#endif  // CHRONOQUEL_TQUEL_LEXER_H_
