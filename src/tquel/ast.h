#ifndef CHRONOQUEL_TQUEL_AST_H_
#define CHRONOQUEL_TQUEL_AST_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "types/timepoint.h"
#include "types/value.h"

namespace tdb {

// ---------------------------------------------------------------------------
// Value expressions (where clause, target lists)
// ---------------------------------------------------------------------------

/// Binary / unary operators of Quel expressions.
enum class ExprOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  kNot,
  kNeg,  // unary minus
};

/// Quel aggregate functions (supported in one-variable queries).
enum class AggFunc { kCount, kSum, kAvg, kMin, kMax, kAny };

/// A scalar expression tree.  Column references are annotated by the binder
/// (var_index / attr_index / type) before execution.
struct Expr {
  enum class Kind {
    kConstInt,
    kConstFloat,
    kConstString,
    kColumn,
    kBinary,
    kUnary,
    kAggregate,
    kParam,  // $N positional parameter of a prepared statement
  };

  Kind kind;

  // kConst*
  int64_t int_val = 0;
  double float_val = 0;
  std::string str_val;

  // kParam: 1-based position in the `execute` argument list
  int param_index = 0;

  // kColumn: var.attr
  std::string var;
  std::string attr;
  int var_index = -1;   // index into the statement's bound variables
  int attr_index = -1;  // index into the relation's stored schema
  TypeId column_type = TypeId::kInt4;

  // kBinary / kUnary
  ExprOp op = ExprOp::kAdd;
  std::unique_ptr<Expr> left;
  std::unique_ptr<Expr> right;

  // kAggregate: func(arg [by group-expr] [where agg_where])
  AggFunc agg = AggFunc::kCount;
  std::unique_ptr<Expr> agg_arg;
  std::unique_ptr<Expr> agg_by;     // Quel aggregate function: per-group
  std::unique_ptr<Expr> agg_where;
  /// Filled by the executor for `by` aggregates: group key (rendered) ->
  /// aggregate value; plain aggregates are folded to constants instead.
  std::shared_ptr<std::map<std::string, Value>> agg_groups;

  static std::unique_ptr<Expr> Int(int64_t v);
  static std::unique_ptr<Expr> Float(double v);
  static std::unique_ptr<Expr> Str(std::string v);
  static std::unique_ptr<Expr> Column(std::string var, std::string attr);
  static std::unique_ptr<Expr> Binary(ExprOp op, std::unique_ptr<Expr> l,
                                      std::unique_ptr<Expr> r);
  static std::unique_ptr<Expr> Unary(ExprOp op, std::unique_ptr<Expr> e);
  static std::unique_ptr<Expr> Param(int index);

  std::string ToString() const;
};

// ---------------------------------------------------------------------------
// Temporal expressions (valid / when / as-of clauses)
// ---------------------------------------------------------------------------

/// A temporal expression denoting an interval or an event:
///   tuple variable | time constant | now |
///   start of e | end of e | e1 overlap e2 | e1 extend e2
struct TemporalExpr {
  enum class Kind {
    kVar,      // a tuple variable's valid interval
    kConst,    // a time constant (event)
    kNow,      // the current logical time (event)
    kStartOf,  // event: start of operand
    kEndOf,    // event: end of operand
    kOverlap,  // interval: intersection
    kExtend,   // interval: span
  };

  Kind kind;
  std::string var;
  int var_index = -1;
  TimePoint const_time;
  std::unique_ptr<TemporalExpr> left;
  std::unique_ptr<TemporalExpr> right;

  static std::unique_ptr<TemporalExpr> Var(std::string name);
  static std::unique_ptr<TemporalExpr> Const(TimePoint tp);
  static std::unique_ptr<TemporalExpr> Now();
  static std::unique_ptr<TemporalExpr> Make(Kind k,
                                            std::unique_ptr<TemporalExpr> l,
                                            std::unique_ptr<TemporalExpr> r);

  std::string ToString() const;
};

/// A temporal predicate (when clause):
///   e1 precede e2 | e1 overlap e2 | e1 equal e2 |
///   p and p | p or p | not p
/// A bare interval expression used as a predicate tests non-emptiness
/// (so `when h overlap i` means the intervals share an instant).
struct TemporalPred {
  enum class Kind {
    kPrecede,
    kOverlap,
    kEqual,
    kAnd,
    kOr,
    kNot,
    kNonEmpty,  // bare interval expression
  };

  Kind kind;
  std::unique_ptr<TemporalExpr> lexpr;  // comparisons / kNonEmpty
  std::unique_ptr<TemporalExpr> rexpr;
  std::unique_ptr<TemporalPred> left;   // boolean combinations; kNot: left
  std::unique_ptr<TemporalPred> right;

  std::string ToString() const;
};

// ---------------------------------------------------------------------------
// Clauses
// ---------------------------------------------------------------------------

/// `valid from e1 to e2` or `valid at e`.
struct ValidClause {
  bool at = false;  // event form
  std::unique_ptr<TemporalExpr> from;  // also carries the `at` expression
  std::unique_ptr<TemporalExpr> to;    // null in the `at` form
};

/// `as of e [through e2]` — the rollback operation.
struct AsOfClause {
  std::unique_ptr<TemporalExpr> at;
  std::unique_ptr<TemporalExpr> through;  // optional
};

/// One element of a target list: `[name =] expr`.
struct TargetItem {
  std::string name;  // may be empty for a bare column reference
  std::unique_ptr<Expr> expr;
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

struct Statement {
  enum class Kind {
    kRange,
    kRetrieve,
    kAppend,
    kDelete,
    kReplace,
    kCreate,
    kDestroy,
    kModify,
    kIndex,
    kCopy,
    kHelp,
    kExplain,
    kVacuum,
    kPrepare,
    kExecPrepared,
    kDeallocate,
  };
  explicit Statement(Kind k) : kind(k) {}
  virtual ~Statement() = default;
  Kind kind;
  /// Byte offset of the statement's first token in the script text; lets
  /// error reporting point at the failing statement.
  size_t source_offset = 0;
};

/// `range of t is R`
struct RangeStmt : Statement {
  RangeStmt() : Statement(Kind::kRange) {}
  std::string var;
  std::string relation;
};

/// One `sort by` key: a target name, optionally descending.
struct SortKey {
  std::string target;
  bool descending = false;
  int target_index = -1;  // resolved by the binder
};

/// `retrieve [into R] [unique] (targets) [valid ...] [where ...]
///  [when ...] [as of ...] [sort by name [desc] {, ...}]`
struct RetrieveStmt : Statement {
  RetrieveStmt() : Statement(Kind::kRetrieve) {}
  std::string into;  // empty: return rows to the caller
  bool unique = false;
  std::vector<TargetItem> targets;
  std::optional<ValidClause> valid;
  std::unique_ptr<Expr> where;
  std::unique_ptr<TemporalPred> when;
  std::optional<AsOfClause> as_of;
  std::vector<SortKey> sort_by;
};

/// `append to R (a = e, ...) [valid ...] [where ...] [when ...]`
struct AppendStmt : Statement {
  AppendStmt() : Statement(Kind::kAppend) {}
  std::string relation;
  std::vector<TargetItem> targets;
  std::optional<ValidClause> valid;
  std::unique_ptr<Expr> where;
  std::unique_ptr<TemporalPred> when;
};

/// `delete t [valid ...] [where ...] [when ...]` — the valid clause gives
/// the instant the fact stopped holding (defaults to now).
struct DeleteStmt : Statement {
  DeleteStmt() : Statement(Kind::kDelete) {}
  std::string var;
  std::optional<ValidClause> valid;
  std::unique_ptr<Expr> where;
  std::unique_ptr<TemporalPred> when;
};

/// `replace t (a = e, ...) [valid ...] [where ...] [when ...]`
struct ReplaceStmt : Statement {
  ReplaceStmt() : Statement(Kind::kReplace) {}
  std::string var;
  std::vector<TargetItem> targets;
  std::optional<ValidClause> valid;
  std::unique_ptr<Expr> where;
  std::unique_ptr<TemporalPred> when;
};

/// `create [persistent] [interval|event] R (a = i4, ...)`
/// `persistent` adds transaction time; `interval`/`event` adds valid time —
/// their combination selects one of the four database types (Figure 1).
struct CreateStmt : Statement {
  CreateStmt() : Statement(Kind::kCreate) {}
  std::string relation;
  bool persistent = false;          // transaction time
  bool has_valid_time = false;      // interval/event given
  bool event = false;               // event (vs interval)
  struct AttrDef {
    std::string name;
    std::string type_name;  // "i1" "i2" "i4" "f8" "c<N>"
  };
  std::vector<AttrDef> attrs;
};

/// `destroy R`
struct DestroyStmt : Statement {
  DestroyStmt() : Statement(Kind::kDestroy) {}
  std::string relation;
};

/// `vacuum R [before e]` — history maintenance for a two-level relation:
/// migrates every history version whose end stamp precedes `e` (default:
/// now) out of the active history store into cold segment files, keeping
/// the hot store small.  Queries keep seeing every version.
struct VacuumStmt : Statement {
  VacuumStmt() : Statement(Kind::kVacuum) {}
  std::string relation;
  std::unique_ptr<TemporalExpr> before;  // null: everything before now
};

/// `modify R to heap | hash on k | isam on k [where fillfactor = n
///  {, history = clustered|simple}]`
/// The extension `modify R to twolevel hash|isam on k ...` rebuilds R as a
/// two-level store (Section 6).
struct ModifyStmt : Statement {
  ModifyStmt() : Statement(Kind::kModify) {}
  std::string relation;
  std::string organization;  // "heap" | "hash" | "isam"
  bool two_level = false;
  bool clustered_history = false;
  std::string key_attr;  // for hash / isam
  int fillfactor = 100;
};

/// `index on R is I (attr) [with structure = heap|hash, levels = 1|2]`
struct IndexStmt : Statement {
  IndexStmt() : Statement(Kind::kIndex) {}
  std::string relation;
  std::string index_name;
  std::string attr;
  std::string structure = "heap";
  int levels = 1;
};

/// `help` (list relations) or `help R` (describe one relation).
struct HelpStmt : Statement {
  HelpStmt() : Statement(Kind::kHelp) {}
  std::string relation;  // empty: list all
};

/// `copy R from "path"` / `copy R to "path"` — batch input/output with
/// temporal attributes converted to/from human-readable form.
struct CopyStmt : Statement {
  CopyStmt() : Statement(Kind::kCopy) {}
  std::string relation;
  bool from = false;  // true: load, false: dump
  std::string path;
};

/// `prepare name as <statement>` — parses and validates the wrapped
/// statement once; later `execute name (...)` runs it with `$N`
/// parameters bound to the argument list.
struct PrepareStmt : Statement {
  PrepareStmt() : Statement(Kind::kPrepare) {}
  std::string name;
  std::unique_ptr<Statement> inner;
};

/// `execute name` or `execute name (e1, e2, ...)` — arguments are
/// constant expressions supplying `$1..$n` of the prepared statement.
struct ExecPreparedStmt : Statement {
  ExecPreparedStmt() : Statement(Kind::kExecPrepared) {}
  std::string name;
  std::vector<std::unique_ptr<Expr>> args;
  /// Wire-protocol form: the client sent already-decoded argument values
  /// instead of TQuel expressions.  When set, `args` is empty and the
  /// session binds these directly as the statement's parameters.
  std::vector<Value> bound_args;
  bool use_bound_args = false;
};

/// `deallocate name` — drops a prepared statement.
struct DeallocateStmt : Statement {
  DeallocateStmt() : Statement(Kind::kDeallocate) {}
  std::string name;
};

/// `explain retrieve ...` — plans the wrapped query and returns the plan
/// tree as rows, without executing it.
struct ExplainStmt : Statement {
  ExplainStmt() : Statement(Kind::kExplain) {}
  std::unique_ptr<RetrieveStmt> query;
  /// `explain analyze`: execute the query and annotate the printed plan
  /// with per-node runtime stats and wall time.
  bool analyze = false;
};

}  // namespace tdb

#endif  // CHRONOQUEL_TQUEL_AST_H_
