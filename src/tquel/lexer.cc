#include "tquel/lexer.h"

#include <cctype>

#include "util/stringx.h"

namespace tdb {

bool Token::IsKeyword(const char* kw) const {
  return type == TokenType::kIdent && EqualsIgnoreCase(text, kw);
}

const char* TokenTypeName(TokenType t) {
  switch (t) {
    case TokenType::kEnd:
      return "end of input";
    case TokenType::kIdent:
      return "identifier";
    case TokenType::kInt:
      return "integer";
    case TokenType::kFloat:
      return "float";
    case TokenType::kString:
      return "string";
    case TokenType::kParam:
      return "parameter";
    case TokenType::kLParen:
      return "'('";
    case TokenType::kRParen:
      return "')'";
    case TokenType::kComma:
      return "','";
    case TokenType::kDot:
      return "'.'";
    case TokenType::kSemi:
      return "';'";
    case TokenType::kEq:
      return "'='";
    case TokenType::kNe:
      return "'!='";
    case TokenType::kLt:
      return "'<'";
    case TokenType::kLe:
      return "'<='";
    case TokenType::kGt:
      return "'>'";
    case TokenType::kGe:
      return "'>='";
    case TokenType::kPlus:
      return "'+'";
    case TokenType::kMinus:
      return "'-'";
    case TokenType::kStar:
      return "'*'";
    case TokenType::kSlash:
      return "'/'";
    case TokenType::kPercent:
      return "'%'";
  }
  return "?";
}

Result<std::vector<Token>> Lexer::Tokenize(const std::string& text) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = text.size();

  auto push = [&](TokenType type, size_t pos, std::string spelling = "") {
    Token t;
    t.type = type;
    t.pos = pos;
    t.text = std::move(spelling);
    tokens.push_back(std::move(t));
  };

  while (i < n) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments: /* ... */
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      size_t end = text.find("*/", i + 2);
      if (end == std::string::npos) {
        return Status::ParseError("unterminated comment");
      }
      i = end + 2;
      continue;
    }
    size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (i < n && (std::isalnum(static_cast<unsigned char>(text[i])) ||
                       text[i] == '_')) {
        ++i;
      }
      push(TokenType::kIdent, start, text.substr(start, i - start));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      while (i < n && std::isdigit(static_cast<unsigned char>(text[i]))) ++i;
      bool is_float = false;
      if (i < n && text[i] == '.' && i + 1 < n &&
          std::isdigit(static_cast<unsigned char>(text[i + 1]))) {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(text[i]))) ++i;
      }
      std::string lit = text.substr(start, i - start);
      Token t;
      t.pos = start;
      t.text = lit;
      if (is_float) {
        t.type = TokenType::kFloat;
        if (!ParseDouble(lit, &t.float_val)) {
          return Status::ParseError("bad float literal '" + lit + "'");
        }
      } else {
        t.type = TokenType::kInt;
        if (!ParseInt64(lit, &t.int_val)) {
          return Status::ParseError("bad integer literal '" + lit + "'");
        }
      }
      tokens.push_back(std::move(t));
      continue;
    }
    if (c == '$') {
      ++i;
      size_t digits = i;
      while (i < n && std::isdigit(static_cast<unsigned char>(text[i]))) ++i;
      if (i == digits) {
        return Status::ParseError(
            StrPrintf("expected a parameter number after '$' at offset %zu",
                      start));
      }
      std::string lit = text.substr(digits, i - digits);
      Token t;
      t.type = TokenType::kParam;
      t.pos = start;
      t.text = "$" + lit;
      if (!ParseInt64(lit, &t.int_val) || t.int_val < 1) {
        return Status::ParseError("bad parameter number '$" + lit + "'");
      }
      tokens.push_back(std::move(t));
      continue;
    }
    if (c == '"') {
      ++i;
      std::string val;
      while (i < n && text[i] != '"') {
        val += text[i];
        ++i;
      }
      if (i >= n) return Status::ParseError("unterminated string literal");
      ++i;  // closing quote
      push(TokenType::kString, start, std::move(val));
      continue;
    }
    switch (c) {
      case '(':
        push(TokenType::kLParen, i++);
        break;
      case ')':
        push(TokenType::kRParen, i++);
        break;
      case ',':
        push(TokenType::kComma, i++);
        break;
      case '.':
        push(TokenType::kDot, i++);
        break;
      case ';':
        push(TokenType::kSemi, i++);
        break;
      case '=':
        push(TokenType::kEq, i++);
        break;
      case '+':
        push(TokenType::kPlus, i++);
        break;
      case '-':
        push(TokenType::kMinus, i++);
        break;
      case '*':
        push(TokenType::kStar, i++);
        break;
      case '/':
        push(TokenType::kSlash, i++);
        break;
      case '%':
        push(TokenType::kPercent, i++);
        break;
      case '!':
        if (i + 1 < n && text[i + 1] == '=') {
          push(TokenType::kNe, i);
          i += 2;
        } else {
          return Status::ParseError("stray '!' (did you mean '!=') ");
        }
        break;
      case '<':
        if (i + 1 < n && text[i + 1] == '=') {
          push(TokenType::kLe, i);
          i += 2;
        } else if (i + 1 < n && text[i + 1] == '>') {
          push(TokenType::kNe, i);
          i += 2;
        } else {
          push(TokenType::kLt, i++);
        }
        break;
      case '>':
        if (i + 1 < n && text[i + 1] == '=') {
          push(TokenType::kGe, i);
          i += 2;
        } else {
          push(TokenType::kGt, i++);
        }
        break;
      default:
        return Status::ParseError(
            StrPrintf("unexpected character '%c' at offset %zu", c, i));
    }
  }
  push(TokenType::kEnd, n);
  return tokens;
}

}  // namespace tdb
