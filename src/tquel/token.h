#ifndef CHRONOQUEL_TQUEL_TOKEN_H_
#define CHRONOQUEL_TQUEL_TOKEN_H_

#include <cstdint>
#include <string>

namespace tdb {

enum class TokenType {
  kEnd,
  kIdent,
  kInt,
  kFloat,
  kString,  // double-quoted literal
  kParam,   // $N positional parameter (int_val = N, 1-based)
  // punctuation / operators
  kLParen,
  kRParen,
  kComma,
  kDot,
  kSemi,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
};

/// One lexical token with its source position (for error messages).
struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   // identifier / literal spelling (unquoted for strings)
  int64_t int_val = 0;
  double float_val = 0;
  size_t pos = 0;     // byte offset in the statement

  bool Is(TokenType t) const { return type == t; }
  /// Case-insensitive keyword test (keywords are ordinary identifiers).
  bool IsKeyword(const char* kw) const;
};

const char* TokenTypeName(TokenType t);

}  // namespace tdb

#endif  // CHRONOQUEL_TQUEL_TOKEN_H_
