#ifndef CHRONOQUEL_CATALOG_CATALOG_H_
#define CHRONOQUEL_CATALOG_CATALOG_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "env/env.h"
#include "storage/isam_file.h"
#include "storage/journal.h"
#include "storage/storage_file.h"
#include "types/schema.h"
#include "util/status.h"

namespace tdb {

/// Metadata of a secondary index (Section 6 of the paper): an index over a
/// non-key attribute whose entries are (key, tid) pairs.  `levels` selects
/// the 1-level organization (one structure over all versions) or the
/// 2-level organization (a current index plus a history index).
struct IndexMeta {
  std::string name;          // base file name of the index
  std::string attr;          // indexed user attribute
  Organization org = Organization::kHeap;  // kHeap or kHash structure
  int levels = 1;            // 1 or 2
  uint32_t nbuckets = 0;     // hash structure: buckets (current part)
  uint32_t history_nbuckets = 0;  // hash structure, 2-level history part

  std::string CurrentFileName() const { return name + ".idx"; }
  std::string HistoryFileName() const { return name + ".idh"; }
};

/// Everything the system knows about one relation.  This is the in-memory
/// image of the (modified) Ingres system relations described in Section 4.
/// One epoch-partitioned history segment of a two-level relation: history
/// versions whose retirement stamp falls in [lo, hi) that a `vacuum`
/// migrated out of the active history store.
struct SegmentMeta {
  uint32_t id = 0;  // 1-based; 0 is reserved for the active history file
  int64_t lo = 0;   // epoch bounds in seconds (half-open, [lo, hi))
  int64_t hi = 0;
};

struct RelationMeta {
  std::string name;
  Schema schema;
  Organization org = Organization::kHeap;
  std::string key_attr;        // hash / isam key attribute
  int fillfactor = 100;
  uint32_t hash_buckets = 0;   // hash organization
  IsamMeta isam;               // isam organization

  /// Two-level store (Section 6): the primary file keeps only current
  /// versions; history versions move to a history store on update.
  bool two_level = false;
  /// Clustered history: versions of one tuple share per-tuple chains
  /// (implemented as a per-key hash store); otherwise a simple heap.
  bool clustered_history = false;
  uint32_t history_buckets = 0;

  std::vector<IndexMeta> indexes;

  /// Vacuumed history segments (in creation order, ids unique).
  std::vector<SegmentMeta> segments;

  std::string DataFileName() const { return name + ".dat"; }
  std::string HistoryFileName() const { return name + ".hst"; }
  std::string SegmentFileName(uint32_t id) const;
  const SegmentMeta* FindSegmentFor(int64_t stamp) const;
  uint32_t NextSegmentId() const;

  const IndexMeta* FindIndex(const std::string& attr) const;
};

/// Cardinality statistics for one relation, the inputs of the planner's
/// cost model: version counts, page counts per store, and a per-user-
/// attribute distinct count.  Stats are advisory — they steer plan choice
/// but can never change results — so they are computed lazily (only when
/// cost-based join planning asks) and invalidated wholesale on any DML or
/// DDL against the relation.  Paper mode never computes them, keeping the
/// measured page counts untouched.
struct RelationStats {
  uint64_t rows = 0;           // versions reachable by a full scan
  uint64_t primary_pages = 0;  // primary store pages
  uint64_t history_pages = 0;  // two-level history store pages
  /// Distinct values per user attribute (by attribute name).
  std::map<std::string, uint64_t> distinct;

  uint64_t pages() const { return primary_pages + history_pages; }
  /// Distinct count for `attr`, defaulting to `rows` (every value unique)
  /// when the attribute was never profiled.
  uint64_t DistinctOr(const std::string& attr, uint64_t fallback) const;
};

/// The system catalog: relation metadata keyed by (case-insensitive) name,
/// persisted as a text file in the database directory.  Catalog I/O is not
/// routed through the measured pagers, matching the paper's exclusion of
/// system-relation accesses from the benchmark metric.
class Catalog {
 public:
  Catalog(Env* env, std::string dir) : env_(env), dir_(std::move(dir)) {}

  /// Routes catalog rewrites through the database's journal so DDL rolls
  /// back atomically.  Nullable; catalog reads stay unjournaled.
  void set_journal(Journal* journal) { journal_ = journal; }

  /// Loads the catalog file if present.
  Status Load();
  /// Writes the catalog file.
  Status Save() const;

  Status Create(RelationMeta meta);
  Status Drop(const std::string& name);
  /// Returns nullptr when absent.
  RelationMeta* Find(const std::string& name);
  const RelationMeta* Find(const std::string& name) const;

  std::vector<std::string> RelationNames() const;

  /// Replaces the stored metadata for `meta.name` (used by `modify`).
  Status Update(const RelationMeta& meta);

  /// Cached statistics for `name`, or nullptr when none have been computed
  /// since the last invalidation.  Stats live only in memory; they are never
  /// persisted with the catalog file.  The map is mutex-guarded so sessions
  /// planning different relations can race; the returned pointer stays
  /// valid while the caller holds its statement lock on `name` (only a
  /// writer with the exclusive lock invalidates that entry).
  const RelationStats* FindStats(const std::string& name) const;
  void SetStats(const std::string& name, RelationStats stats);
  /// Drops the cached stats for one relation (any DML/DDL against it).
  void InvalidateStats(const std::string& name);
  void InvalidateAllStats();

 private:
  std::string CatalogPath() const { return dir_ + "/catalog.meta"; }

  Env* env_;
  std::string dir_;
  Journal* journal_ = nullptr;
  std::map<std::string, RelationMeta> relations_;  // lower-cased name
  mutable std::mutex stats_mu_;                    // guards stats_ structure
  std::map<std::string, RelationStats> stats_;     // lower-cased name
};

/// Serialization used by Catalog (exposed for tests).
std::string SerializeRelationMeta(const RelationMeta& meta);
Result<RelationMeta> ParseRelationMeta(const std::string& block);

}  // namespace tdb

#endif  // CHRONOQUEL_CATALOG_CATALOG_H_
