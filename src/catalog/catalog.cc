#include "catalog/catalog.h"

#include <algorithm>

#include "util/stringx.h"

namespace tdb {

std::string RelationMeta::SegmentFileName(uint32_t id) const {
  return StrPrintf("%s.seg%u", name.c_str(), id);
}

const SegmentMeta* RelationMeta::FindSegmentFor(int64_t stamp) const {
  for (const SegmentMeta& s : segments) {
    if (stamp >= s.lo && stamp < s.hi) return &s;
  }
  return nullptr;
}

uint32_t RelationMeta::NextSegmentId() const {
  uint32_t next = 1;
  for (const SegmentMeta& s : segments) next = std::max(next, s.id + 1);
  return next;
}

const IndexMeta* RelationMeta::FindIndex(const std::string& attr) const {
  for (const IndexMeta& idx : indexes) {
    if (EqualsIgnoreCase(idx.attr, attr)) return &idx;
  }
  return nullptr;
}

uint64_t RelationStats::DistinctOr(const std::string& attr,
                                   uint64_t fallback) const {
  auto it = distinct.find(ToLower(attr));
  return it == distinct.end() ? fallback : it->second;
}

std::string SerializeRelationMeta(const RelationMeta& m) {
  std::string out;
  out += "relation " + m.name + "\n";
  out += "schema " + m.schema.Serialize() + "\n";
  out += StrPrintf("org %d\n", static_cast<int>(m.org));
  out += "key " + (m.key_attr.empty() ? "-" : m.key_attr) + "\n";
  out += StrPrintf("fillfactor %d\n", m.fillfactor);
  out += StrPrintf("hash_buckets %u\n", m.hash_buckets);
  out += "isam " +
         (m.org == Organization::kIsam ? m.isam.Serialize()
                                       : std::string("-")) +
         "\n";
  out += StrPrintf("two_level %d %d %u\n", m.two_level ? 1 : 0,
                   m.clustered_history ? 1 : 0, m.history_buckets);
  for (const IndexMeta& idx : m.indexes) {
    out += StrPrintf("index %s %s %d %d %u %u\n", idx.name.c_str(),
                     idx.attr.c_str(), static_cast<int>(idx.org), idx.levels,
                     idx.nbuckets, idx.history_nbuckets);
  }
  for (const SegmentMeta& seg : m.segments) {
    out += StrPrintf("segment %u %lld %lld\n", seg.id,
                     static_cast<long long>(seg.lo),
                     static_cast<long long>(seg.hi));
  }
  out += "end\n";
  return out;
}

Result<RelationMeta> ParseRelationMeta(const std::string& block) {
  RelationMeta m;
  bool saw_relation = false;
  for (const std::string& raw : Split(block, '\n')) {
    std::string line = Trim(raw);
    if (line.empty() || line == "end") continue;
    size_t sp = line.find(' ');
    if (sp == std::string::npos) {
      return Status::Corruption("bad catalog line: " + line);
    }
    std::string tag = line.substr(0, sp);
    std::string rest = Trim(line.substr(sp + 1));
    if (tag == "relation") {
      m.name = rest;
      saw_relation = true;
    } else if (tag == "schema") {
      TDB_ASSIGN_OR_RETURN(m.schema, Schema::Deserialize(rest));
    } else if (tag == "org") {
      int64_t v = 0;
      if (!ParseInt64(rest, &v)) return Status::Corruption("bad org");
      m.org = static_cast<Organization>(v);
    } else if (tag == "key") {
      m.key_attr = rest == "-" ? "" : rest;
    } else if (tag == "fillfactor") {
      int64_t v = 0;
      if (!ParseInt64(rest, &v)) return Status::Corruption("bad fillfactor");
      m.fillfactor = static_cast<int>(v);
    } else if (tag == "hash_buckets") {
      int64_t v = 0;
      if (!ParseInt64(rest, &v)) return Status::Corruption("bad buckets");
      m.hash_buckets = static_cast<uint32_t>(v);
    } else if (tag == "isam") {
      if (rest != "-") {
        TDB_ASSIGN_OR_RETURN(m.isam, IsamMeta::Parse(rest));
      }
    } else if (tag == "two_level") {
      std::vector<std::string> f = Split(rest, ' ');
      if (f.size() != 3) return Status::Corruption("bad two_level");
      int64_t a = 0;
      int64_t b = 0;
      int64_t c = 0;
      if (!ParseInt64(f[0], &a) || !ParseInt64(f[1], &b) ||
          !ParseInt64(f[2], &c)) {
        return Status::Corruption("bad two_level fields");
      }
      m.two_level = a != 0;
      m.clustered_history = b != 0;
      m.history_buckets = static_cast<uint32_t>(c);
    } else if (tag == "index") {
      std::vector<std::string> f = Split(rest, ' ');
      if (f.size() != 6) return Status::Corruption("bad index line");
      IndexMeta idx;
      idx.name = f[0];
      idx.attr = f[1];
      int64_t org = 0;
      int64_t levels = 0;
      int64_t nb = 0;
      int64_t hnb = 0;
      if (!ParseInt64(f[2], &org) || !ParseInt64(f[3], &levels) ||
          !ParseInt64(f[4], &nb) || !ParseInt64(f[5], &hnb)) {
        return Status::Corruption("bad index fields");
      }
      idx.org = static_cast<Organization>(org);
      idx.levels = static_cast<int>(levels);
      idx.nbuckets = static_cast<uint32_t>(nb);
      idx.history_nbuckets = static_cast<uint32_t>(hnb);
      m.indexes.push_back(std::move(idx));
    } else if (tag == "segment") {
      std::vector<std::string> f = Split(rest, ' ');
      if (f.size() != 3) return Status::Corruption("bad segment line");
      SegmentMeta seg;
      int64_t id = 0;
      if (!ParseInt64(f[0], &id) || !ParseInt64(f[1], &seg.lo) ||
          !ParseInt64(f[2], &seg.hi)) {
        return Status::Corruption("bad segment fields");
      }
      seg.id = static_cast<uint32_t>(id);
      m.segments.push_back(seg);
    } else {
      return Status::Corruption("unknown catalog tag: " + tag);
    }
  }
  if (!saw_relation || m.name.empty()) {
    return Status::Corruption("catalog block lacks a relation name");
  }
  return m;
}

Status Catalog::Load() {
  relations_.clear();
  if (!env_->FileExists(CatalogPath())) return Status::OK();
  TDB_ASSIGN_OR_RETURN(std::string text, env_->ReadFileToString(CatalogPath()));
  std::string block;
  for (const std::string& line : Split(text, '\n')) {
    block += line + "\n";
    if (Trim(line) == "end") {
      TDB_ASSIGN_OR_RETURN(RelationMeta meta, ParseRelationMeta(block));
      relations_[ToLower(meta.name)] = std::move(meta);
      block.clear();
    }
  }
  return Status::OK();
}

Status Catalog::Save() const {
  std::string text;
  for (const auto& [_, meta] : relations_) text += SerializeRelationMeta(meta);
  if (journal_ != nullptr) {
    TDB_RETURN_NOT_OK(journal_->BeforeFileRewrite(CatalogPath()));
  }
  return env_->WriteStringToFile(CatalogPath(), text);
}

Status Catalog::Create(RelationMeta meta) {
  std::string key = ToLower(meta.name);
  if (relations_.count(key) > 0) {
    return Status::AlreadyExists("relation '" + meta.name + "' exists");
  }
  stats_.erase(key);
  relations_[key] = std::move(meta);
  return Save();
}

Status Catalog::Drop(const std::string& name) {
  if (relations_.erase(ToLower(name)) == 0) {
    return Status::NotFound("relation '" + name + "' does not exist");
  }
  stats_.erase(ToLower(name));
  return Save();
}

RelationMeta* Catalog::Find(const std::string& name) {
  auto it = relations_.find(ToLower(name));
  return it == relations_.end() ? nullptr : &it->second;
}

const RelationMeta* Catalog::Find(const std::string& name) const {
  auto it = relations_.find(ToLower(name));
  return it == relations_.end() ? nullptr : &it->second;
}

std::vector<std::string> Catalog::RelationNames() const {
  std::vector<std::string> names;
  for (const auto& [_, meta] : relations_) names.push_back(meta.name);
  return names;
}

Status Catalog::Update(const RelationMeta& meta) {
  std::string key = ToLower(meta.name);
  if (relations_.count(key) == 0) {
    return Status::NotFound("relation '" + meta.name + "' does not exist");
  }
  stats_.erase(key);
  relations_[key] = meta;
  return Save();
}

const RelationStats* Catalog::FindStats(const std::string& name) const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  auto it = stats_.find(ToLower(name));
  return it == stats_.end() ? nullptr : &it->second;
}

void Catalog::SetStats(const std::string& name, RelationStats stats) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_[ToLower(name)] = std::move(stats);
}

void Catalog::InvalidateStats(const std::string& name) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.erase(ToLower(name));
}

void Catalog::InvalidateAllStats() {
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.clear();
}

}  // namespace tdb
