#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>

namespace tdb {
namespace net {

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<Client>> Client::ConnectUnix(
    const std::string& socket_path, const std::string& db_name) {
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError("socket: " + std::string(strerror(errno)));
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    return Status::Invalid("unix socket path too long");
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = Status::IOError("connect " + socket_path + ": " +
                               strerror(errno));
    ::close(fd);
    return s;
  }
  return Handshake(fd, db_name);
}

Result<std::unique_ptr<Client>> Client::ConnectTcp(
    int port, const std::string& db_name) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError("socket: " + std::string(strerror(errno)));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = Status::IOError("connect port " + std::to_string(port) + ": " +
                               strerror(errno));
    ::close(fd);
    return s;
  }
  return Handshake(fd, db_name);
}

Result<std::unique_ptr<Client>> Client::Handshake(
    int fd, const std::string& db_name) {
  std::unique_ptr<Client> client(new Client(fd));
  std::vector<uint8_t> payload;
  PutString(&payload, db_name);
  TDB_ASSIGN_OR_RETURN(Frame reply,
                       client->RoundTrip(FrameType::kHello, payload));
  if (reply.type != FrameType::kOk) {
    return Status::Corruption("unexpected hello reply");
  }
  return client;
}

Result<Frame> Client::RoundTrip(FrameType type,
                                const std::vector<uint8_t>& payload) {
  TDB_RETURN_NOT_OK(WriteFrame(fd_, type, payload));
  Frame reply;
  TDB_RETURN_NOT_OK(ReadFrame(fd_, &reply));
  if (reply.type == FrameType::kError) {
    Status remote;
    TDB_RETURN_NOT_OK(DecodeStatus(reply.payload, &remote));
    return remote;
  }
  return reply;
}

Result<std::vector<WireResult>> Client::Execute(const std::string& script) {
  std::vector<uint8_t> payload;
  PutString(&payload, script);
  TDB_ASSIGN_OR_RETURN(Frame reply,
                       RoundTrip(FrameType::kExecute, payload));
  if (reply.type != FrameType::kResults) {
    return Status::Corruption("unexpected execute reply");
  }
  std::vector<WireResult> results;
  TDB_RETURN_NOT_OK(DecodeResults(reply.payload, &results));
  return results;
}

Result<WireResult> Client::OneResult(FrameType type,
                                     const std::vector<uint8_t>& payload) {
  TDB_ASSIGN_OR_RETURN(Frame reply, RoundTrip(type, payload));
  if (reply.type != FrameType::kResults) {
    return Status::Corruption("unexpected prepared-statement reply");
  }
  std::vector<WireResult> results;
  TDB_RETURN_NOT_OK(DecodeResults(reply.payload, &results));
  if (results.size() != 1) {
    return Status::Corruption("prepared-statement reply is not one result");
  }
  return std::move(results[0]);
}

Result<WireResult> Client::Prepare(const std::string& name,
                                   const std::string& statement) {
  std::vector<uint8_t> payload;
  PutString(&payload, name);
  PutString(&payload, statement);
  return OneResult(FrameType::kPrepare, payload);
}

Result<WireResult> Client::ExecutePrepared(const std::string& name,
                                           const std::vector<Value>& args) {
  std::vector<uint8_t> payload;
  PutString(&payload, name);
  PutU32(&payload, static_cast<uint32_t>(args.size()));
  for (const Value& v : args) EncodeValue(&payload, v);
  return OneResult(FrameType::kExecPrepared, payload);
}

Result<WireResult> Client::ClosePrepared(const std::string& name) {
  std::vector<uint8_t> payload;
  PutString(&payload, name);
  return OneResult(FrameType::kClose, payload);
}

Status Client::PinAsOf(std::optional<TimePoint> at) {
  std::vector<uint8_t> payload;
  PutU8(&payload, at.has_value() ? 1 : 0);
  if (at.has_value()) PutI64(&payload, at->seconds());
  auto reply = RoundTrip(FrameType::kPinAsOf, payload);
  if (!reply.ok()) return reply.status();
  if (reply->type != FrameType::kOk) {
    return Status::Corruption("unexpected pin reply");
  }
  return Status::OK();
}

Status Client::Ping() {
  auto reply = RoundTrip(FrameType::kPing, {});
  if (!reply.ok()) return reply.status();
  if (reply->type != FrameType::kOk) {
    return Status::Corruption("unexpected ping reply");
  }
  return Status::OK();
}

}  // namespace net
}  // namespace tdb
