#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "core/session.h"
#include "net/protocol.h"

namespace tdb {
namespace net {

namespace {

/// "on unless 0" boolean lever, like DatabaseOptions::FromEnv's.
bool EnvFlagSet(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && std::string_view(v) != "0";
}

/// epoll_event user-data tags for the two non-connection descriptors; a
/// connection carries its Conn pointer, which is never 0 or 1.
constexpr uint64_t kListenTag = 0;
constexpr uint64_t kWakeTag = 1;

bool ValidDatabaseName(const std::string& name) {
  if (name.empty() || name.size() > 128) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

DatabaseRegistry::DatabaseRegistry(std::string root, DatabaseOptions options)
    : root_(std::move(root)), options_(options) {}

Result<Database*> DatabaseRegistry::GetOrOpen(const std::string& name) {
  if (!ValidDatabaseName(name)) {
    return Status::Invalid("invalid database name '" + name + "'");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = dbs_.find(name);
  if (it != dbs_.end()) return it->second.get();
  TDB_ASSIGN_OR_RETURN(auto db, Database::Open(root_ + "/" + name, options_));
  Database* raw = db.get();
  dbs_.emplace(name, std::move(db));
  return raw;
}

std::vector<std::string> DatabaseRegistry::OpenNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  for (const auto& [name, _] : dbs_) names.push_back(name);
  return names;
}

Server::Server(DatabaseRegistry* registry, ServerOptions options)
    : registry_(registry), options_(std::move(options)) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (!options_.unix_path.empty()) {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return Status::IOError("socket: " + std::string(strerror(errno)));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_path.size() >= sizeof(addr.sun_path)) {
      return Status::Invalid("unix socket path too long");
    }
    std::strncpy(addr.sun_path, options_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(options_.unix_path.c_str());  // stale socket from a dead server
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      return Status::IOError("bind " + options_.unix_path + ": " +
                             strerror(errno));
    }
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return Status::IOError("socket: " + std::string(strerror(errno)));
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(options_.tcp_port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      return Status::IOError("bind port " +
                             std::to_string(options_.tcp_port) + ": " +
                             strerror(errno));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    port_ = ntohs(bound.sin_port);
  }
  if (::listen(listen_fd_, 64) != 0) {
    return Status::IOError("listen: " + std::string(strerror(errno)));
  }
  use_epoll_ = options_.epoll.value_or(EnvFlagSet("TDB_SERVER_EPOLL"));
  if (use_epoll_) return StartEpoll();
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

Status Server::StartEpoll() {
  // Nonblocking listener: one readiness event drains every pending accept.
  const int lfd = listen_fd_.load();
  const int flags = ::fcntl(lfd, F_GETFL, 0);
  ::fcntl(lfd, F_SETFL, flags | O_NONBLOCK);

  epoll_fd_ = ::epoll_create1(0);
  if (epoll_fd_ < 0) {
    return Status::IOError("epoll_create1: " + std::string(strerror(errno)));
  }
  wake_fd_ = ::eventfd(0, 0);
  if (wake_fd_ < 0) {
    return Status::IOError("eventfd: " + std::string(strerror(errno)));
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenTag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, lfd, &ev) != 0) {
    return Status::IOError("epoll_ctl listener: " +
                           std::string(strerror(errno)));
  }
  ev = epoll_event{};
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeTag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    return Status::IOError("epoll_ctl wake: " + std::string(strerror(errno)));
  }

  int workers = options_.epoll_workers;
  if (workers <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    workers = std::clamp(static_cast<int>(hw), 2, 16);
  }
  // Queue bound: enough that a burst of ready connections does not stall
  // the loop, small enough that backpressure reaches the clients.
  pool_ = std::make_unique<TaskPool>(workers,
                                     static_cast<size_t>(workers) * 4);
  accept_thread_ = std::thread([this] { EpollLoop(); });
  return Status::OK();
}

void Server::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  if (use_epoll_) {
    // Poke the event loop awake; it returns on the wake tag.
    if (wake_fd_ >= 0) {
      const uint64_t one = 1;
      (void)::write(wake_fd_, &one, sizeof(one));
    }
    if (accept_thread_.joinable()) accept_thread_.join();
    // Fail any worker parked mid-frame on a slow connection, then drain
    // and join the pool before touching shared state further.
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      for (auto& [fd, conn] : epoll_conns_) ::shutdown(fd, SHUT_RDWR);
    }
    if (pool_ != nullptr) pool_->Shutdown();
    // Workers tore down the connections they owned; the rest were idle.
    std::map<int, std::unique_ptr<Conn>> leftovers;
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      leftovers.swap(epoll_conns_);
    }
    for (auto& [fd, conn] : leftovers) ::close(fd);
    leftovers.clear();  // sessions die before their databases
    const int lfd = listen_fd_.exchange(-1);
    if (lfd >= 0) ::close(lfd);
    if (epoll_fd_ >= 0) {
      ::close(epoll_fd_);
      epoll_fd_ = -1;
    }
    if (wake_fd_ >= 0) {
      ::close(wake_fd_);
      wake_fd_ = -1;
    }
    if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
    return;
  }
  // shutdown() wakes the blocked accept(); close() alone does not on all
  // platforms.
  const int fd = listen_fd_.exchange(-1);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> conns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // A connection thread blocked in ReadFrame on a still-connected
    // client would never join; fail its read so it exits.
    for (int cfd : conn_fds_) ::shutdown(cfd, SHUT_RDWR);
    conns.swap(conns_);
  }
  for (std::thread& t : conns) {
    if (t.joinable()) t.join();
  }
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
}

void Server::AcceptLoop() {
  for (;;) {
    const int listen_fd = listen_fd_.load();
    if (listen_fd < 0) return;  // Stop() already closed the listener
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed by Stop()
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    conn_fds_.push_back(fd);
    conns_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void Server::ServeConnection(int fd) {
  // Connection state: no session until a successful kHello.
  Conn conn(fd);
  for (;;) {
    Frame frame;
    Status read = ReadFrame(fd, &frame);
    if (!read.ok()) break;  // closed or torn — either way, hang up
    if (!DispatchFrame(conn, frame)) break;
  }
  {
    // Deregister before closing so Stop() never shuts down a recycled
    // descriptor number.
    std::lock_guard<std::mutex> lock(mu_);
    conn_fds_.erase(std::remove(conn_fds_.begin(), conn_fds_.end(), fd),
                    conn_fds_.end());
  }
  ::close(fd);
}

bool Server::DispatchFrame(Conn& conn, const Frame& frame) {
  const int fd = conn.fd;
  std::unique_ptr<Session>& session = conn.session;
  Status error;
  Status wrote;
  switch (frame.type) {
    case FrameType::kHello: {
      Decoder dec(frame.payload);
      std::string name;
      if (!dec.GetString(&name) || !dec.AtEnd()) {
        error = Status::Corruption("malformed hello frame");
        break;
      }
      auto db = registry_->GetOrOpen(name);
      if (!db.ok()) {
        error = db.status();
        break;
      }
      session = (*db)->CreateSession();
      wrote = WriteFrame(fd, FrameType::kOk, {});
      break;
    }
    case FrameType::kExecute: {
      if (session == nullptr) {
        error = Status::Invalid("execute before hello");
        break;
      }
      Decoder dec(frame.payload);
      std::string script;
      if (!dec.GetString(&script) || !dec.AtEnd()) {
        error = Status::Corruption("malformed execute frame");
        break;
      }
      auto results = session->ExecuteScript(script);
      if (!results.ok()) {
        error = results.status();
        break;
      }
      std::vector<WireResult> wire;
      wire.reserve(results->size());
      for (const ExecResult& r : *results) wire.push_back(ToWireResult(r));
      wrote = WriteFrame(fd, FrameType::kResults, EncodeResults(wire));
      break;
    }
    case FrameType::kPrepare: {
      if (session == nullptr) {
        error = Status::Invalid("prepare before hello");
        break;
      }
      Decoder dec(frame.payload);
      std::string name, text;
      if (!dec.GetString(&name) || !dec.GetString(&text) || !dec.AtEnd()) {
        error = Status::Corruption("malformed prepare frame");
        break;
      }
      auto res = session->Prepare(name, text);
      if (!res.ok()) {
        error = res.status();
        break;
      }
      wrote = WriteFrame(fd, FrameType::kResults,
                         EncodeResults({ToWireResult(*res)}));
      break;
    }
    case FrameType::kExecPrepared: {
      if (session == nullptr) {
        error = Status::Invalid("execute before hello");
        break;
      }
      Decoder dec(frame.payload);
      std::string name;
      uint32_t argc = 0;
      if (!dec.GetString(&name) || !dec.GetU32(&argc)) {
        error = Status::Corruption("malformed execute-prepared frame");
        break;
      }
      std::vector<Value> args;
      args.reserve(argc);
      bool ok = true;
      for (uint32_t i = 0; i < argc; ++i) {
        Value v;
        if (!DecodeValue(&dec, &v)) {
          ok = false;
          break;
        }
        args.push_back(std::move(v));
      }
      if (!ok || !dec.AtEnd()) {
        error = Status::Corruption("malformed execute-prepared frame");
        break;
      }
      auto res = session->ExecutePrepared(name, std::move(args));
      if (!res.ok()) {
        error = res.status();
        break;
      }
      wrote = WriteFrame(fd, FrameType::kResults,
                         EncodeResults({ToWireResult(*res)}));
      break;
    }
    case FrameType::kClose: {
      if (session == nullptr) {
        error = Status::Invalid("close before hello");
        break;
      }
      Decoder dec(frame.payload);
      std::string name;
      if (!dec.GetString(&name) || !dec.AtEnd()) {
        error = Status::Corruption("malformed close frame");
        break;
      }
      auto res = session->DeallocatePrepared(name);
      if (!res.ok()) {
        error = res.status();
        break;
      }
      wrote = WriteFrame(fd, FrameType::kResults,
                         EncodeResults({ToWireResult(*res)}));
      break;
    }
    case FrameType::kPinAsOf: {
      if (session == nullptr) {
        error = Status::Invalid("pin before hello");
        break;
      }
      Decoder dec(frame.payload);
      uint8_t has_pin;
      int64_t secs = 0;
      if (!dec.GetU8(&has_pin) ||
          (has_pin != 0 && !dec.GetI64(&secs)) || !dec.AtEnd()) {
        error = Status::Corruption("malformed pin frame");
        break;
      }
      if (has_pin != 0) {
        session->PinAsOf(TimePoint(static_cast<int32_t>(secs)));
      } else {
        session->PinAsOf(std::nullopt);
      }
      wrote = WriteFrame(fd, FrameType::kOk, {});
      break;
    }
    case FrameType::kPing:
      wrote = WriteFrame(fd, FrameType::kOk, {});
      break;
    default:
      error = Status::Invalid("unexpected frame type");
      break;
  }
  if (!error.ok()) {
    // Protocol errors are answered, not fatal: the client decides
    // whether to continue (statement errors) or give up (corruption).
    wrote = WriteFrame(fd, FrameType::kError, EncodeStatus(error));
  }
  return wrote.ok();
}

void Server::EpollLoop() {
  epoll_event events[64];
  for (;;) {
    const int n = ::epoll_wait(epoll_fd_, events, 64, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    for (int i = 0; i < n; ++i) {
      const uint64_t tag = events[i].data.u64;
      if (tag == kListenTag) {
        AcceptReady();
        continue;
      }
      if (tag == kWakeTag) {
        uint64_t v;
        (void)!::read(wake_fd_, &v, sizeof(v));
        return;  // the only wake is Stop()
      }
      // EPOLLONESHOT already disarmed the connection: exactly one worker
      // owns it until HandleConnReadable re-arms or tears it down, which
      // keeps its Session strictly single-threaded.
      Conn* conn = static_cast<Conn*>(events[i].data.ptr);
      if (!pool_->Submit([this, conn] { HandleConnReadable(conn); })) return;
    }
  }
}

void Server::AcceptReady() {
  for (;;) {
    const int lfd = listen_fd_.load();
    if (lfd < 0) return;
    const int fd = ::accept(lfd, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN (drained) or listener closed
    // The accepted socket stays blocking: a worker reads one whole frame
    // synchronously once epoll reports readability.
    auto conn = std::make_unique<Conn>(fd);
    Conn* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      epoll_conns_.emplace(fd, std::move(conn));
    }
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLRDHUP | EPOLLONESHOT;
    ev.data.ptr = raw;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) CloseConn(raw);
  }
}

void Server::HandleConnReadable(Conn* conn) {
  Frame frame;
  Status read = ReadFrame(conn->fd, &frame);
  if (!read.ok() || !DispatchFrame(*conn, frame)) {
    CloseConn(conn);
    return;
  }
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLRDHUP | EPOLLONESHOT;
  ev.data.ptr = conn;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev) != 0) {
    CloseConn(conn);
  }
}

void Server::CloseConn(Conn* conn) {
  const int fd = conn->fd;
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  // Remove from the table before closing so Stop() never shuts down a
  // recycled descriptor number.
  std::unique_ptr<Conn> owned;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    auto it = epoll_conns_.find(fd);
    if (it != epoll_conns_.end()) {
      owned = std::move(it->second);
      epoll_conns_.erase(it);
    }
  }
  ::close(fd);
}

}  // namespace net
}  // namespace tdb
