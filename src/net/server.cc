#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>

#include "core/session.h"
#include "net/protocol.h"

namespace tdb {
namespace net {

namespace {

bool ValidDatabaseName(const std::string& name) {
  if (name.empty() || name.size() > 128) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

DatabaseRegistry::DatabaseRegistry(std::string root, DatabaseOptions options)
    : root_(std::move(root)), options_(options) {}

Result<Database*> DatabaseRegistry::GetOrOpen(const std::string& name) {
  if (!ValidDatabaseName(name)) {
    return Status::Invalid("invalid database name '" + name + "'");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = dbs_.find(name);
  if (it != dbs_.end()) return it->second.get();
  TDB_ASSIGN_OR_RETURN(auto db, Database::Open(root_ + "/" + name, options_));
  Database* raw = db.get();
  dbs_.emplace(name, std::move(db));
  return raw;
}

std::vector<std::string> DatabaseRegistry::OpenNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  for (const auto& [name, _] : dbs_) names.push_back(name);
  return names;
}

Server::Server(DatabaseRegistry* registry, ServerOptions options)
    : registry_(registry), options_(std::move(options)) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (!options_.unix_path.empty()) {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return Status::IOError("socket: " + std::string(strerror(errno)));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_path.size() >= sizeof(addr.sun_path)) {
      return Status::Invalid("unix socket path too long");
    }
    std::strncpy(addr.sun_path, options_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(options_.unix_path.c_str());  // stale socket from a dead server
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      return Status::IOError("bind " + options_.unix_path + ": " +
                             strerror(errno));
    }
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return Status::IOError("socket: " + std::string(strerror(errno)));
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(options_.tcp_port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      return Status::IOError("bind port " +
                             std::to_string(options_.tcp_port) + ": " +
                             strerror(errno));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    port_ = ntohs(bound.sin_port);
  }
  if (::listen(listen_fd_, 64) != 0) {
    return Status::IOError("listen: " + std::string(strerror(errno)));
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Server::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  // shutdown() wakes the blocked accept(); close() alone does not on all
  // platforms.
  const int fd = listen_fd_.exchange(-1);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> conns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    conns.swap(conns_);
  }
  for (std::thread& t : conns) {
    if (t.joinable()) t.join();
  }
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
}

void Server::AcceptLoop() {
  for (;;) {
    const int listen_fd = listen_fd_.load();
    if (listen_fd < 0) return;  // Stop() already closed the listener
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed by Stop()
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    conns_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void Server::ServeConnection(int fd) {
  // Connection state: no session until a successful kHello.
  std::unique_ptr<Session> session;
  for (;;) {
    Frame frame;
    Status read = ReadFrame(fd, &frame);
    if (!read.ok()) break;  // closed or torn — either way, hang up

    Status error;
    switch (frame.type) {
      case FrameType::kHello: {
        Decoder dec(frame.payload);
        std::string name;
        if (!dec.GetString(&name) || !dec.AtEnd()) {
          error = Status::Corruption("malformed hello frame");
          break;
        }
        auto db = registry_->GetOrOpen(name);
        if (!db.ok()) {
          error = db.status();
          break;
        }
        session = (*db)->CreateSession();
        (void)WriteFrame(fd, FrameType::kOk, {});
        break;
      }
      case FrameType::kExecute: {
        if (session == nullptr) {
          error = Status::Invalid("execute before hello");
          break;
        }
        Decoder dec(frame.payload);
        std::string script;
        if (!dec.GetString(&script) || !dec.AtEnd()) {
          error = Status::Corruption("malformed execute frame");
          break;
        }
        auto results = session->ExecuteScript(script);
        if (!results.ok()) {
          error = results.status();
          break;
        }
        std::vector<WireResult> wire;
        wire.reserve(results->size());
        for (const ExecResult& r : *results) wire.push_back(ToWireResult(r));
        (void)WriteFrame(fd, FrameType::kResults, EncodeResults(wire));
        break;
      }
      case FrameType::kPinAsOf: {
        if (session == nullptr) {
          error = Status::Invalid("pin before hello");
          break;
        }
        Decoder dec(frame.payload);
        uint8_t has_pin;
        int64_t secs = 0;
        if (!dec.GetU8(&has_pin) ||
            (has_pin != 0 && !dec.GetI64(&secs)) || !dec.AtEnd()) {
          error = Status::Corruption("malformed pin frame");
          break;
        }
        if (has_pin != 0) {
          session->PinAsOf(TimePoint(static_cast<int32_t>(secs)));
        } else {
          session->PinAsOf(std::nullopt);
        }
        (void)WriteFrame(fd, FrameType::kOk, {});
        break;
      }
      case FrameType::kPing:
        (void)WriteFrame(fd, FrameType::kOk, {});
        break;
      default:
        error = Status::Invalid("unexpected frame type");
        break;
    }
    if (!error.ok()) {
      // Protocol errors are answered, not fatal: the client decides
      // whether to continue (statement errors) or give up (corruption).
      (void)WriteFrame(fd, FrameType::kError, EncodeStatus(error));
    }
  }
  ::close(fd);
}

}  // namespace net
}  // namespace tdb
