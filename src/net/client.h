#ifndef CHRONOQUEL_NET_CLIENT_H_
#define CHRONOQUEL_NET_CLIENT_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/protocol.h"
#include "types/timepoint.h"
#include "util/status.h"

namespace tdb {
namespace net {

/// A blocking client for the tquel wire protocol: one connection, one
/// server-side Session.  Mirrors the embedded Session API so code moves
/// between in-process and client/server with a connect call.
///
///   auto client = Client::ConnectUnix("/tmp/tquel.sock", "mydb").value();
///   auto results = client->Execute("range of e is emp\nretrieve (e.name)");
///
/// Not thread-safe: one Client per thread, like one Session per thread.
class Client {
 public:
  ~Client();

  /// Connects over a unix-domain socket and opens database `db_name`.
  static Result<std::unique_ptr<Client>> ConnectUnix(
      const std::string& socket_path, const std::string& db_name);

  /// Connects to 127.0.0.1:port and opens database `db_name`.
  static Result<std::unique_ptr<Client>> ConnectTcp(
      int port, const std::string& db_name);

  /// Executes a TQuel script; one WireResult per statement.  A statement
  /// error comes back as the same Status (code, message, statement
  /// context) the embedded API would return.
  Result<std::vector<WireResult>> Execute(const std::string& script);

  /// Prepared statements: `Prepare` ships the statement text once, the
  /// server parses/validates it and keeps the AST; `ExecutePrepared` ships
  /// only the `$N` argument values (already typed — no re-parsing on
  /// either side); `ClosePrepared` deallocates.  Each returns the single
  /// statement's result.
  Result<WireResult> Prepare(const std::string& name,
                             const std::string& statement);
  Result<WireResult> ExecutePrepared(const std::string& name,
                                     const std::vector<Value>& args);
  Result<WireResult> ClosePrepared(const std::string& name);

  /// Pins (nullopt: unpins) the server session's as-of read timestamp.
  Status PinAsOf(std::optional<TimePoint> at);

  /// Round-trip liveness check.
  Status Ping();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

 private:
  explicit Client(int fd) : fd_(fd) {}

  static Result<std::unique_ptr<Client>> Handshake(
      int fd, const std::string& db_name);

  /// Sends one frame and reads the one response frame every request gets.
  Result<Frame> RoundTrip(FrameType type,
                          const std::vector<uint8_t>& payload);

  /// Round-trip for requests answered with a single-result kResults frame
  /// (the prepared-statement family).
  Result<WireResult> OneResult(FrameType type,
                               const std::vector<uint8_t>& payload);

  int fd_;
};

}  // namespace net
}  // namespace tdb

#endif  // CHRONOQUEL_NET_CLIENT_H_
